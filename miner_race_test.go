package lash_test

import (
	"sync"
	"testing"

	"lash"
)

// A Miner is documented as safe for concurrent use: lashd can serve many
// jobs against one database at once, and the first calls race to populate
// the lazy frequency caches. Hammer Mine from many goroutines across
// algorithms and parameters; run under -race this catches any unguarded
// access to the caches, and the checksums catch torn results.
func TestMinerConcurrentMine(t *testing.T) {
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	opts := []lash.Options{
		{MinSupport: 2, MaxGap: 1, MaxLength: 3},
		{MinSupport: 3, MaxGap: 1, MaxLength: 3},
		{MinSupport: 2, MaxGap: 0, MaxLength: 3},
		{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: lash.AlgorithmMGFSM},
		{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: lash.AlgorithmLASHFlat},
		{MinSupport: 2, MaxGap: 1, MaxLength: 3, LocalMiner: lash.MinerBFS},
	}
	want := make([]uint64, len(opts))
	for i, opt := range opts {
		res, err := lash.Mine(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = patternChecksum(res.Patterns)
	}

	const goroutines = 8
	const iters = 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(opts)
				res, err := m.Mine(opts[i])
				if err != nil {
					errc <- err
					return
				}
				if got := patternChecksum(res.Patterns); got != want[i] {
					t.Errorf("goroutine %d: result for %+v diverges under concurrency", g, opts[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The frequency jobs must still have run at most once per hierarchy mode.
	if n := m.FrequencyJobsRun(); n > 2 {
		t.Fatalf("frequency job ran %d times under concurrency, want ≤ 2", n)
	}
}

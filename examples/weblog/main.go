// Web-usage mining with a page hierarchy (the paper's web-usage motivation,
// §1): individual URLs generalize to page sections, so navigation patterns
// such as "product page → cart → checkout" emerge even when every user
// visits different product URLs.
//
// The sessions are built by hand from a tiny navigation model so that the
// expected patterns are easy to verify by eye.
//
// Run: go run ./examples/weblog
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"lash"
)

func main() {
	b := lash.NewDatabaseBuilder()

	// URL hierarchy: /products/<id> → products → shop; /cart, /checkout →
	// shop; /blog/<id> → blog.
	for i := 0; i < 40; i++ {
		b.AddParent(fmt.Sprintf("/products/%d", i), "products")
	}
	for i := 0; i < 15; i++ {
		b.AddParent(fmt.Sprintf("/blog/%d", i), "blog")
	}
	b.AddParent("products", "shop")
	b.AddParent("/cart", "shop")
	b.AddParent("/checkout", "shop")

	// Sessions: browsers wander the blog; buyers view a few random product
	// pages, add to cart, and check out.
	r := rand.New(rand.NewSource(99))
	for u := 0; u < 300; u++ {
		var sess []string
		if r.Intn(3) == 0 { // browser
			for k := 0; k < 2+r.Intn(4); k++ {
				sess = append(sess, fmt.Sprintf("/blog/%d", r.Intn(15)))
			}
		} else { // shopper
			for k := 0; k < 1+r.Intn(3); k++ {
				sess = append(sess, fmt.Sprintf("/products/%d", r.Intn(40)))
			}
			sess = append(sess, "/cart")
			if r.Intn(4) > 0 {
				sess = append(sess, "/checkout")
			}
		}
		b.AddSequence(sess...)
	}

	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := lash.Mine(db, lash.Options{MinSupport: 30, MaxGap: 2, MaxLength: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d navigation patterns from %d sessions:\n\n", len(res.Patterns), db.NumSequences())
	for _, p := range res.Patterns {
		fmt.Printf("  %-45s %d\n", strings.Join(p.Items, "  →  "), p.Support)
	}
	fmt.Println("\nno single product URL is frequent, but the generalized pattern")
	fmt.Println("products → /cart → /checkout captures the purchase funnel.")
}

// Streaming: mine a generated corpus with live progress and incremental
// pattern delivery, cancellable with ctrl-C.
//
// The program generates a synthetic text database, then mines it with
// lash.Stream: a progress bar on stderr tracks map tasks and mined
// partitions as the MapReduce substrate works through them, and the first
// patterns print the moment their partition's local mining finishes —
// long before the run completes. Press ctrl-C to cancel: the run aborts
// cooperatively and reports how many patterns made it out.
//
// Run: go run ./examples/streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lash"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	db, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 20000, Seed: 42})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mining %d sequences (ctrl-C cancels)\n", db.NumSequences())

	opt := lash.Options{
		MinSupport: 100,
		MaxGap:     1,
		MaxLength:  4,
		Progress:   progressBar(os.Stderr),
	}

	start := time.Now()
	streamed := 0
	res, err := lash.Stream(ctx, db, opt, func(p lash.Pattern) error {
		streamed++
		// Show the first few in full; after that the bar tells the story.
		if streamed <= 10 {
			fmt.Printf("\r\x1b[K%6d  %s\n", p.Support, strings.Join(p.Items, " "))
		}
		return nil
	})
	fmt.Fprintln(os.Stderr) // finish the progress bar's line

	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "cancelled after %v — %d patterns streamed before the interrupt\n",
			time.Since(start).Round(time.Millisecond), streamed)
		os.Exit(1)
	case err != nil:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v: %d patterns streamed, %d frequent items, %d partitions\n",
		time.Since(start).Round(time.Millisecond), streamed, len(res.FrequentItems), res.NumPartitions)
}

// progressBar renders a single carriage-return progress line: the mining
// job's map tasks and mined partitions, plus the shuffle volume.
func progressBar(w *os.File) func(lash.ProgressEvent) {
	var last string
	return func(e lash.ProgressEvent) {
		var line string
		if e.Job == "flist" {
			line = fmt.Sprintf("[preprocess] %s %d/%d", e.Phase, e.MapTasksDone, e.MapTasks)
		} else {
			line = fmt.Sprintf("[%s] map %s  partitions %s  %dKiB shuffled",
				e.Job, bar(e.MapTasksDone, e.MapTasks), bar(e.PartitionsMined, e.Partitions),
				e.ShuffleBytes>>10)
		}
		if line == last {
			return
		}
		last = line
		fmt.Fprintf(w, "\r\x1b[K%s", line)
	}
}

// bar renders "done/total" as a small fixed-width meter.
func bar(done, total int) string {
	const width = 20
	if total <= 0 {
		return strings.Repeat(" ", width+len(" 0/0"))
	}
	fill := done * width / total
	return fmt.Sprintf("%s%s %d/%d",
		strings.Repeat("█", fill), strings.Repeat("░", width-fill), done, total)
}

// Quickstart: mine the running example of the LASH paper (Fig. 1).
//
// Six short sequences over a small product-style hierarchy are mined with
// σ=2, γ=1, λ=3; the program prints the generalized f-list and the ten
// expected frequent generalized sequences, including b1→D patterns that
// never occur literally in the data.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"lash"
)

func main() {
	b := lash.NewDatabaseBuilder()

	// The hierarchy of Fig. 1(b): B generalizes b1, b2, b3; b1 generalizes
	// b11, b12, b13; D generalizes d1, d2; a, c, e, f are standalone roots.
	for _, edge := range [][2]string{
		{"b1", "B"}, {"b2", "B"}, {"b3", "B"},
		{"b11", "b1"}, {"b12", "b1"}, {"b13", "b1"},
		{"d1", "D"}, {"d2", "D"},
	} {
		b.AddParent(edge[0], edge[1])
	}

	// The database of Fig. 1(a).
	for _, seq := range []string{
		"a b1 a b1",
		"a b3 c c b2",
		"a c",
		"b11 a e a",
		"a b12 d1 c",
		"b13 f d2",
	} {
		b.AddSequence(strings.Fields(seq)...)
	}

	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("generalized f-list (hierarchy-aware item frequencies):")
	for _, item := range res.FrequentItems {
		fmt.Printf("  %-3s %d\n", item.Items[0], item.Support)
	}

	fmt.Println("\nfrequent generalized sequences (σ=2, γ=1, λ=3):")
	for _, p := range res.Patterns {
		fmt.Printf("  %-7s %d\n", strings.Join(p.Items, " "), p.Support)
	}

	fmt.Println("\nnote: b1 D is frequent although it never occurs in the input —")
	fmt.Println("it is supported by b12 d1 (T5) and b13 … d2 (T6) via the hierarchy.")
}

// Generalized n-gram mining (the paper's NYT use case, §6.2).
//
// A synthetic natural-language corpus is generated with the full CLP
// hierarchy (word → case → lemma → part-of-speech) and mined with γ=0:
// patterns are contiguous n-grams whose elements may be words, lemmas, or
// POS tags — e.g. "the ADJ house"-style templates that never occur
// literally. The program reports the share of patterns that mix hierarchy
// levels.
//
// Run: go run ./examples/ngram
package main

import (
	"fmt"
	"log"
	"strings"

	"lash"
)

func main() {
	db, err := lash.GenerateTextDatabase(lash.TextConfig{
		Sentences: 4000,
		Lemmas:    1500,
		Hierarchy: "CLP",
		Seed:      2015,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d sentences, %d vocabulary items, %d hierarchy levels\n",
		db.NumSequences(), db.NumItems(), db.HierarchyDepth())

	res, err := lash.Mine(db, lash.Options{
		MinSupport: 25,
		MaxGap:     0, // contiguous: n-gram mining
		MaxLength:  3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// POS tags are all-uppercase in the generator; anything containing one
	// is a generalized (template) n-gram.
	isTag := func(s string) bool { return strings.ToUpper(s) == s && !strings.HasPrefix(s, "W") }
	var generalized, plain int
	for _, p := range res.Patterns {
		mixed := false
		for _, it := range p.Items {
			if isTag(it) {
				mixed = true
				break
			}
		}
		if mixed {
			generalized++
		} else {
			plain++
		}
	}
	fmt.Printf("mined %d n-grams: %d template n-grams (contain a POS tag), %d surface n-grams\n",
		len(res.Patterns), generalized, plain)

	fmt.Println("\nsample template n-grams:")
	shown := 0
	for _, p := range res.Patterns {
		if shown == 10 {
			break
		}
		hasTag := false
		for _, it := range p.Items {
			if isTag(it) {
				hasTag = true
				break
			}
		}
		if hasTag && len(p.Items) >= 2 {
			fmt.Printf("  %-30s %d\n", strings.Join(p.Items, " "), p.Support)
			shown++
		}
	}
	fmt.Printf("\nLASH shuffled %d bytes across %d partitions, exploring %d candidates.\n",
		res.Stats.MapOutputBytes, res.NumPartitions, res.Explored)
}

// Market-basket sequence mining with a product hierarchy (the paper's AMZN
// use case, §6.1): "users may first buy some camera, then some photography
// book, and finally some flash" — patterns over categories rather than
// individual products.
//
// A synthetic purchase-session corpus is generated with an 8-level category
// hierarchy and mined with γ=1 (one unrelated purchase may intervene). The
// program contrasts hierarchy-aware mining with flat mining on the same
// data.
//
// Run: go run ./examples/market
package main

import (
	"fmt"
	"log"
	"strings"

	"lash"
)

func main() {
	cfg := lash.MarketConfig{Users: 8000, Products: 3000, HierarchyLevels: 8, Seed: 7}
	db, err := lash.GenerateMarketDatabase(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d sessions, %d items, hierarchy depth %d\n",
		db.NumSequences(), db.NumItems(), db.HierarchyDepth())

	opt := lash.Options{MinSupport: 40, MaxGap: 1, MaxLength: 4}

	res, err := lash.Mine(db, opt)
	if err != nil {
		log.Fatal(err)
	}

	flatOpt := opt
	flatOpt.Algorithm = lash.AlgorithmMGFSM
	flat, err := lash.Mine(db, flatOpt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nhierarchy-aware (LASH): %d patterns; flat (MG-FSM): %d patterns\n",
		len(res.Patterns), len(flat.Patterns))
	fmt.Println("the extra patterns are category-level behaviours invisible to flat mining:")

	shown := 0
	for _, p := range res.Patterns {
		// Category items contain '/' or start with 'c'; products are prodN.
		categories := 0
		for _, it := range p.Items {
			if !strings.HasPrefix(it, "prod") {
				categories++
			}
		}
		if categories == len(p.Items) && shown < 10 {
			fmt.Printf("  %-40s %d\n", strings.Join(p.Items, " → "), p.Support)
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("  (no all-category patterns at this support; rerun with lower MinSupport)")
	}
}

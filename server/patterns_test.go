package server_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"lash"
	"lash/server"
)

// minePatterns runs one wait:true mine and returns nothing — the point is
// to leave a completed result behind for the patterns endpoints.
func minePatterns(t *testing.T, ts *httptest.Server, db string, opts map[string]any) {
	t.Helper()
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": db, "options": opts, "wait": true})
	if status != http.StatusOK || body["status"] != "done" {
		t.Fatalf("mine: status %d, body %v", status, body)
	}
}

// patternsOf decodes the "patterns" array of a patterns response into
// "item item..."→support.
func patternsOf(t *testing.T, body map[string]any) []string {
	t.Helper()
	raw, ok := body["patterns"].([]any)
	if !ok {
		t.Fatalf("no patterns in %v", body)
	}
	out := make([]string, 0, len(raw))
	for _, p := range raw {
		pm := p.(map[string]any)
		var items []string
		for _, it := range pm["items"].([]any) {
			items = append(items, it.(string))
		}
		out = append(out, fmt.Sprintf("%s=%d", strings.Join(items, " "), int64(pm["support"].(float64))))
	}
	return out
}

func TestPatternsPagination(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	minePatterns(t, ts, "db", map[string]any{"min_support": 1, "max_gap": 1, "max_length": 3})

	// The unpaginated listing is the reference.
	status, full := call(t, "GET", ts.URL+"/v1/patterns?db=db", nil)
	if status != http.StatusOK {
		t.Fatalf("patterns: status %d, body %v", status, full)
	}
	want := patternsOf(t, full)
	if len(want) < 4 {
		t.Fatalf("test database mined only %d patterns; want enough to paginate", len(want))
	}
	if _, hasCursor := full["next_cursor"]; hasCursor {
		t.Fatal("unlimited query returned a next_cursor")
	}

	// Page through with limit=2; pages must concatenate to the reference.
	var got []string
	pageURL := ts.URL + "/v1/patterns?db=db&limit=2"
	for pages := 0; ; pages++ {
		if pages > len(want) {
			t.Fatal("cursor chain did not terminate")
		}
		status, page := call(t, "GET", pageURL, nil)
		if status != http.StatusOK {
			t.Fatalf("page: status %d, body %v", status, page)
		}
		got = append(got, patternsOf(t, page)...)
		if int(page["total"].(float64)) != len(want) {
			t.Errorf("page total = %v, want %d", page["total"], len(want))
		}
		cur, ok := page["next_cursor"].(string)
		if !ok {
			break
		}
		pageURL = ts.URL + "/v1/patterns?db=db&limit=2&cursor=" + url.QueryEscape(cur)
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("paged patterns = %v, want %v", got, want)
	}

	// A cursor minted for one query cannot page another.
	status, page := call(t, "GET", ts.URL+"/v1/patterns?db=db&limit=2", nil)
	if status != http.StatusOK {
		t.Fatalf("mint page: status %d", status)
	}
	cur := page["next_cursor"].(string)
	status, _ = call(t, "GET", ts.URL+"/v1/patterns?db=db&limit=2&min_support=2&cursor="+url.QueryEscape(cur), nil)
	if status != http.StatusBadRequest {
		t.Errorf("cross-query cursor: status %d, want 400", status)
	}
	// Garbage cursors are a 400, not a panic.
	status, _ = call(t, "GET", ts.URL+"/v1/patterns?db=db&limit=2&cursor=%21%21not-base64", nil)
	if status != http.StatusBadRequest {
		t.Errorf("garbage cursor: status %d, want 400", status)
	}
}

func TestPatternsTopWithPagination(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	minePatterns(t, ts, "db", map[string]any{"min_support": 1, "max_gap": 1, "max_length": 3})

	status, full := call(t, "GET", ts.URL+"/v1/patterns?db=db", nil)
	if status != http.StatusOK {
		t.Fatal("patterns failed")
	}
	want := patternsOf(t, full)
	total := len(want)

	// top caps the result set but still reports the full total (the old
	// contract), and limit pages within the cap.
	status, capped := call(t, "GET", ts.URL+"/v1/patterns?db=db&top=3&limit=2", nil)
	if status != http.StatusOK {
		t.Fatalf("top page: status %d", status)
	}
	if got := patternsOf(t, capped); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("top=3&limit=2 page = %v, want first two of %v", got, want[:3])
	}
	if int(capped["total"].(float64)) != total {
		t.Errorf("total = %v, want full %d", capped["total"], total)
	}
	cur, ok := capped["next_cursor"].(string)
	if !ok {
		t.Fatal("capped page missing next_cursor")
	}
	status, last := call(t, "GET", ts.URL+"/v1/patterns?db=db&top=3&limit=2&cursor="+url.QueryEscape(cur), nil)
	if status != http.StatusOK {
		t.Fatalf("last page: status %d", status)
	}
	if got := patternsOf(t, last); len(got) != 1 || got[0] != want[2] {
		t.Errorf("last capped page = %v, want [%v]", got, want[2])
	}
	if _, hasCursor := last["next_cursor"]; hasCursor {
		t.Error("exhausted capped set still returned a next_cursor")
	}
}

func TestPatternsHierarchyQueries(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	minePatterns(t, ts, "db", map[string]any{"min_support": 1, "max_gap": 1, "max_length": 3})

	status, full := call(t, "GET", ts.URL+"/v1/patterns?db=db", nil)
	if status != http.StatusOK {
		t.Fatal("patterns failed")
	}
	all := patternsOf(t, full)

	// level=0 keeps exactly the fully generalized patterns (every item a
	// hierarchy root: a, c, B — not b1/b2).
	status, body := call(t, "GET", ts.URL+"/v1/patterns?db=db&level=0", nil)
	if status != http.StatusOK {
		t.Fatalf("level: status %d", status)
	}
	got := patternsOf(t, body)
	var want []string
	for _, p := range all {
		if !strings.Contains(p, "b1") && !strings.Contains(p, "b2") {
			want = append(want, p)
		}
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("level=0 = %v, want %v", got, want)
	}

	// prefix= keeps exactly the patterns starting with the given items, in
	// the same serving order as the full listing.
	status, body = call(t, "GET", ts.URL+"/v1/patterns?db=db&prefix=a,B", nil)
	if status != http.StatusOK {
		t.Fatalf("prefix: status %d", status)
	}
	got = patternsOf(t, body)
	want = want[:0]
	for _, p := range all {
		if strings.HasPrefix(p, "a B ") || strings.HasPrefix(p, "a B=") {
			want = append(want, p)
		}
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("prefix=a,B = %v, want %v", got, want)
	}

	// rollup= walks a pattern's generalization chain: a,b1 generalizes to
	// a,B (b1 → B), which is fully general and ends the chain.
	status, body = call(t, "GET", ts.URL+"/v1/patterns?db=db&rollup=a,b1", nil)
	if status != http.StatusOK {
		t.Fatalf("rollup: status %d, body %v", status, body)
	}
	got = patternsOf(t, body)
	if len(got) != 2 || !strings.HasPrefix(got[0], "a b1=") || !strings.HasPrefix(got[1], "a B=") {
		t.Errorf("rollup chain = %v, want [a b1, a B]", got)
	}
	// rollup of an unmined pattern is a 404; combining it with filters is
	// a 400.
	status, _ = call(t, "GET", ts.URL+"/v1/patterns?db=db&rollup=nope", nil)
	if status != http.StatusNotFound {
		t.Errorf("rollup miss: status %d, want 404", status)
	}
	status, _ = call(t, "GET", ts.URL+"/v1/patterns?db=db&rollup=a,b1&top=2", nil)
	if status != http.StatusBadRequest {
		t.Errorf("rollup+top: status %d, want 400", status)
	}

	// contains= intersects multiple items.
	status, body = call(t, "GET", ts.URL+"/v1/patterns?db=db&contains=a,B", nil)
	if status != http.StatusOK {
		t.Fatalf("contains: status %d", status)
	}
	got = patternsOf(t, body)
	want = want[:0]
	for _, p := range all {
		items := strings.Split(strings.SplitN(p, "=", 2)[0], " ")
		hasA, hasB := false, false
		for _, it := range items {
			hasA = hasA || it == "a"
			hasB = hasB || it == "B"
		}
		if hasA && hasB {
			want = append(want, p)
		}
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("contains=a,B = %v, want %v", got, want)
	}

	// An unknown level is an empty result, not an error; a bad one is 400.
	status, body = call(t, "GET", ts.URL+"/v1/patterns?db=db&level=9", nil)
	if status != http.StatusOK || int(body["total"].(float64)) != 0 {
		t.Errorf("level=9: status %d total %v, want 200/0", status, body["total"])
	}
	status, _ = call(t, "GET", ts.URL+"/v1/patterns?db=db&level=-1", nil)
	if status != http.StatusBadRequest {
		t.Errorf("level=-1: status %d, want 400", status)
	}
}

func TestJobsPagination(t *testing.T) {
	stall := make(chan struct{})
	_, ts := newTestServer(t, server.Config{
		Workers: 2,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			select {
			case <-stall:
			case <-ctx.Done():
			}
			return &lash.Result{}, nil
		},
	})
	defer close(stall)
	mustRegister(t, ts, testSpec("db"))

	// Five distinct jobs (different min_support so nothing coalesces).
	for i := 1; i <= 5; i++ {
		opts := map[string]any{"min_support": i, "max_gap": 1, "max_length": 3}
		status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{"database": "db", "options": opts})
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, body %v", i, status, body)
		}
	}

	var ids []string
	pageURL := ts.URL + "/v1/jobs?limit=2"
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("jobs cursor chain did not terminate")
		}
		status, page := call(t, "GET", pageURL, nil)
		if status != http.StatusOK {
			t.Fatalf("jobs page: status %d, body %v", status, page)
		}
		if int(page["total"].(float64)) != 5 {
			t.Errorf("jobs total = %v, want 5", page["total"])
		}
		for _, j := range page["jobs"].([]any) {
			ids = append(ids, j.(map[string]any)["job_id"].(string))
		}
		cur, ok := page["next_cursor"].(string)
		if !ok {
			break
		}
		pageURL = ts.URL + "/v1/jobs?limit=2&cursor=" + url.QueryEscape(cur)
	}
	if len(ids) != 5 {
		t.Fatalf("paged %d job ids, want 5: %v", len(ids), ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("job %s delivered twice across pages", id)
		}
		seen[id] = true
	}

	// Unpaginated listing still returns everything at once.
	status, all := call(t, "GET", ts.URL+"/v1/jobs", nil)
	if status != http.StatusOK || len(all["jobs"].([]any)) != 5 {
		t.Errorf("unpaginated jobs: status %d, %d jobs, want 5", status, len(all["jobs"].([]any)))
	}
}

package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"

	"lash/internal/obs"
	"lash/server"
)

// scrapeMetrics fetches GET /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content-type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// lintMetrics fails the test if the exposition violates the Prometheus text
// format rules (missing help, dup families, broken histograms, ...).
func lintMetrics(t *testing.T, text string) {
	t.Helper()
	problems, err := obs.LintPrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, p := range problems {
		t.Errorf("metrics lint: %s", p)
	}
}

// sampleSum sums every sample of the named metric across its label children.
func sampleSum(text, name string) float64 {
	var sum float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			sum += v
		}
	}
	return sum
}

// TestMetricsEndpoint drives a spill-mode mining job through the server and
// asserts GET /metrics exposes the whole catalog non-zero: per-phase
// duration histograms, pipeline spill counters, job/spill accounting, cache
// traffic and Go runtime gauges, all in lint-clean exposition format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	opts := testOptions()
	opts["memory_budget"] = 1 // every shuffle record spills
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": opts, "wait": true})
	if status != http.StatusOK || body["status"] != "done" {
		t.Fatalf("mine: status %d body %v", status, body)
	}

	text := scrapeMetrics(t, ts)
	lintMetrics(t, text)

	nonZero := []string{
		"lash_phase_duration_seconds_count", // per-phase histograms populated
		"lash_phase_duration_seconds_sum",
		"lash_shuffle_records_total",
		"lash_spill_runs_total",  // pipeline-level spill accounting
		"lash_spill_bytes_total", // (the run was budgeted to 1 byte)
		"lash_spill_flushes_total",
		"lash_spill_merge_seconds_count",
		"lash_partitions_mined_total",
		"lash_partition_mine_seconds_count",
		"lash_miner_explored_total",
		"lash_flist_build_seconds_count",
		"lash_corpus_load_seconds_count", // the registration above
		"lash_jobs_submitted_total",      // manager accounting
		"lash_jobs_completed_total",
		"lash_jobs_spilled_runs_total", // job-level spill accounting
		"lash_jobs_spilled_bytes_total",
		"lash_job_queue_seconds_count",
		"lash_job_run_seconds_count",
		"lash_cache_misses_total", // the submit missed the empty cache
		"lash_databases",
		"lash_http_requests_total",
		"go_goroutines", // Go runtime collector
		"go_heap_alloc_bytes",
	}
	for _, name := range nonZero {
		if sampleSum(text, name) == 0 {
			t.Errorf("metric %s is zero or missing after a spill-mode job", name)
		}
	}
}

// typeLines extracts the sorted family catalog ("name kind") of an
// exposition.
func typeLines(text string) []string {
	var fams []string
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fams = append(fams, rest)
		}
	}
	slices.Sort(fams)
	return fams
}

// TestMetricsFamilyCatalog pins the metric family catalog to a golden file
// (refresh with UPDATE_GOLDEN=1 go test ./server) and checks scrape-to-scrape
// stability: same families, each declared exactly once.
func TestMetricsFamilyCatalog(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": testOptions(), "wait": true})
	if status != http.StatusOK {
		t.Fatalf("mine: status %d body %v", status, body)
	}

	first := typeLines(scrapeMetrics(t, ts))
	second := typeLines(scrapeMetrics(t, ts))
	if !slices.Equal(first, second) {
		t.Errorf("family catalog changed between scrapes:\n%v\nvs\n%v", first, second)
	}
	for i := 1; i < len(first); i++ {
		if first[i] == first[i-1] {
			t.Errorf("family %q declared more than once", first[i])
		}
	}

	golden := filepath.Join("testdata", "metrics_families.golden")
	got := strings.Join(first, "\n") + "\n"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run UPDATE_GOLDEN=1 go test ./server to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric family catalog drifted from %s:\n got:\n%s\nwant:\n%s\n(refresh with UPDATE_GOLDEN=1 if intentional)", golden, got, want)
	}
}

// TestMetricsConcurrentScrape hammers the server from 32 goroutines
// (mining, polling stats) while other goroutines scrape /metrics, then
// lints the final exposition. Run under -race this doubles as the data-race
// check on every recording path.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				status, _ := call(t, "POST", ts.URL+"/v1/mine",
					map[string]any{"database": "db", "options": testOptions(), "wait": true})
				if status != http.StatusOK {
					t.Errorf("mine: status %d", status)
					return
				}
				call(t, "GET", ts.URL+"/v1/stats", nil)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				scrapeMetrics(t, ts)
			}
		}()
	}
	wg.Wait()
	lintMetrics(t, scrapeMetrics(t, ts))
}

// TestSpilledCountersSurviveEviction is the regression test for the spill
// counter drift: spilled_runs/spilled_bytes in GET /v1/stats must come from
// the same registry counters as GET /metrics and keep accumulating even
// after the jobs that produced them are pruned from the bounded history.
func TestSpilledCountersSurviveEviction(t *testing.T) {
	_, ts := newTestServer(t, server.Config{JobHistory: 1})
	mustRegister(t, ts, testSpec("db1"))
	mustRegister(t, ts, testSpec("db2"))

	opts := testOptions()
	opts["memory_budget"] = 1
	var wantRuns, wantBytes float64
	for _, db := range []string{"db1", "db2"} {
		status, body := call(t, "POST", ts.URL+"/v1/mine",
			map[string]any{"database": db, "options": opts, "wait": true})
		if status != http.StatusOK || body["status"] != "done" {
			t.Fatalf("mine %s: status %d body %v", db, status, body)
		}
		result := body["result"].(map[string]any)
		if result["spill_runs"].(float64) == 0 {
			t.Fatalf("mine %s did not spill: %v", db, result)
		}
		wantRuns += result["spill_runs"].(float64)
		wantBytes += result["spill_bytes"].(float64)
	}

	// The one-entry history has evicted the first job's record.
	_, jobList := call(t, "GET", ts.URL+"/v1/jobs", nil)
	if n := len(jobList["jobs"].([]any)); n != 1 {
		t.Fatalf("retained %d job records, want 1 (JobHistory: 1)", n)
	}

	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if got := jobs["spilled_runs"].(float64); got != wantRuns {
		t.Errorf("stats spilled_runs = %v, want %v (both jobs, despite eviction)", got, wantRuns)
	}
	if got := jobs["spilled_bytes"].(float64); got != wantBytes {
		t.Errorf("stats spilled_bytes = %v, want %v", got, wantBytes)
	}

	// And /metrics reports the identical totals — same underlying counters.
	text := scrapeMetrics(t, ts)
	if got := sampleSum(text, "lash_jobs_spilled_runs_total"); got != wantRuns {
		t.Errorf("lash_jobs_spilled_runs_total = %v, want %v", got, wantRuns)
	}
	if got := sampleSum(text, "lash_jobs_spilled_bytes_total"); got != wantBytes {
		t.Errorf("lash_jobs_spilled_bytes_total = %v, want %v", got, wantBytes)
	}
}

package server

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter: each remote host owns a
// bucket that refills at rate tokens per second up to burst capacity, and
// every non-exempt request spends one token. Buckets of idle clients are
// pruned once they have refilled completely — forgetting a full bucket is
// lossless, so the map stays proportional to the recently-active client
// set rather than growing with every address ever seen.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time
}

type bucket struct {
	tokens float64
	last   time.Time // last refill moment
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		// Default burst: one second's worth of tokens, at least one.
		burst = int(rate)
		if float64(burst) < rate {
			burst++
		}
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow spends one token from key's bucket, reporting whether one was
// available at now. New clients start with a full bucket.
func (l *rateLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	l.prune(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune drops buckets whose owners have been idle long enough to refill
// completely. Runs at most once per minute; caller holds l.mu.
func (l *rateLimiter) prune(now time.Time) {
	if now.Sub(l.lastPrune) < time.Minute {
		return
	}
	l.lastPrune = now
	for key, b := range l.buckets {
		if now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// clientHost is the rate-limit key for a request: the remote host with the
// ephemeral port dropped, so one client maps to one bucket across
// connections.
func clientHost(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

// rateLimitExempt lists the paths probes and scrapers poll: limiting those
// would turn monitoring itself into an outage amplifier.
func rateLimitExempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return false
}

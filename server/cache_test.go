package server

import (
	"fmt"
	"testing"

	"lash"
)

func resultN(n int64) *lash.Result {
	return &lash.Result{Patterns: []lash.Pattern{{Items: []string{"x"}, Support: n}}}
}

// shardKeys returns n distinct keys that all hash to the same cache shard,
// so LRU-order tests see one deterministic eviction list instead of being
// spread across shards.
func shardKeys(c *resultCache, n int) []string {
	want := c.shardFor("probe")
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestCacheLRUByteBudget(t *testing.T) {
	// Budget two single-pattern results per shard: one resultN estimate is
	// 256 + 32 + 1 + 16 = 305 bytes; give each shard room for two but not
	// three (total budget = per-shard × numCacheShards).
	c := newResultCache(700*numCacheShards, 0)
	k := shardKeys(c, 3)
	c.add(k[0], resultN(1))
	c.add(k[1], resultN(2))
	if _, ok := c.get(k[0]); !ok { // promotes k0 over k1
		t.Fatal("k0 missing")
	}
	c.add(k[2], resultN(3)) // over budget: evicts k1, the least recently used
	if _, ok := c.get(k[1]); ok {
		t.Error("k1 survived eviction")
	}
	if _, ok := c.get(k[0]); !ok {
		t.Error("k0 evicted out of LRU order")
	}
	if _, ok := c.get(k[2]); !ok {
		t.Error("k2 missing")
	}
	s := c.stats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Errorf("stats = %+v, want 1 eviction, size 2", s)
	}
	// hits: k0, k0, k2 = 3; misses: the evicted k1 = 1
	if s.Hits != 3 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", s.Hits, s.Misses)
	}
	if s.CapacityBytes != 700*numCacheShards {
		t.Errorf("CapacityBytes = %d, want %d", s.CapacityBytes, 700*numCacheShards)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(1<<20, 0)
	c.add("a", resultN(1))
	before := c.stats().Bytes
	c.add("a", resultN(9))
	res, ok := c.get("a")
	if !ok || res.Patterns[0].Support != 9 {
		t.Fatalf("re-add did not replace the entry: %+v", res)
	}
	s := c.stats()
	if s.Size != 1 || s.Evictions != 0 {
		t.Errorf("stats = %+v, want size 1, no evictions", s)
	}
	if s.Bytes != before {
		t.Errorf("bytes = %d after same-size re-add, want %d", s.Bytes, before)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0, 0)
	c.add("a", resultN(1))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
	if s := c.stats(); s.Misses != 1 || s.Size != 0 || s.CapacityBytes != 0 {
		t.Errorf("stats = %+v, want 1 miss, size 0, no capacity", s)
	}
}

func TestCacheEntryBoundAlias(t *testing.T) {
	// The deprecated entry bound still caps entries even when the byte
	// budget has room: 1 entry per shard here.
	c := newResultCache(1<<30, numCacheShards)
	k := shardKeys(c, 2)
	c.add(k[0], resultN(1))
	c.add(k[1], resultN(2))
	if _, ok := c.get(k[0]); ok {
		t.Error("entry bound did not evict the older entry")
	}
	if _, ok := c.get(k[1]); !ok {
		t.Error("most recent entry missing")
	}
	if s := c.stats(); s.Evictions != 1 || s.Capacity != numCacheShards {
		t.Errorf("stats = %+v, want 1 eviction, capacity %d", s, numCacheShards)
	}
}

func TestCacheRecost(t *testing.T) {
	c := newResultCache(1000*numCacheShards, 0)
	k := shardKeys(c, 2)
	c.add(k[0], resultN(1))
	c.add(k[1], resultN(2))
	if s := c.stats(); s.Size != 2 {
		t.Fatalf("size = %d, want 2", s.Size)
	}
	// Recosting k0 far above the shard budget evicts from the LRU end —
	// k0 itself is the least recently used, so it goes.
	c.recost(k[0], 10_000)
	if _, ok := c.get(k[0]); ok {
		t.Error("k0 survived recost past the budget")
	}
	if _, ok := c.get(k[1]); !ok {
		t.Error("k1 evicted although within budget after k0 left")
	}
	// Recosting a missing key is a no-op.
	c.recost("never-added", 123)
	if s := c.stats(); s.Size != 1 {
		t.Errorf("size = %d after no-op recost, want 1", s.Size)
	}
}

func TestCacheManyEvictions(t *testing.T) {
	// Per-shard budget fits exactly one resultN estimate (305 bytes), so
	// every shard holds its most recent entry and evicts the rest.
	c := newResultCache(400*numCacheShards, 0)
	for i := range 64 {
		c.add(fmt.Sprintf("k%d", i), resultN(int64(i)))
	}
	s := c.stats()
	if s.Size+int(s.Evictions) != 64 {
		t.Errorf("size %d + evictions %d != 64 adds", s.Size, s.Evictions)
	}
	if s.Size < 1 || s.Size > numCacheShards {
		t.Errorf("size = %d, want between 1 and %d (one per touched shard)", s.Size, numCacheShards)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n, bytes := sh.ll.Len(), sh.bytes
		sh.mu.Unlock()
		if n > 1 {
			t.Errorf("shard %d holds %d entries, budget fits 1", i, n)
		}
		if bytes > 400 {
			t.Errorf("shard %d holds %d bytes, budget 400", i, bytes)
		}
	}
}

func TestCacheShardStatsSum(t *testing.T) {
	c := newResultCache(1<<20, 0)
	for i := range 32 {
		c.add(fmt.Sprintf("k%d", i), resultN(int64(i)))
		c.get(fmt.Sprintf("k%d", i))
	}
	c.get("missing")
	s := c.stats()
	if len(s.Shards) != numCacheShards {
		t.Fatalf("got %d shard stats, want %d", len(s.Shards), numCacheShards)
	}
	var hits, misses, evictions uint64
	var size int
	var bytes int64
	for _, ss := range s.Shards {
		hits += ss.Hits
		misses += ss.Misses
		evictions += ss.Evictions
		size += ss.Size
		bytes += ss.Bytes
	}
	if hits != s.Hits || misses != s.Misses || evictions != s.Evictions || size != s.Size || bytes != s.Bytes {
		t.Errorf("shard sums %d/%d/%d/%d/%d != totals %d/%d/%d/%d/%d",
			hits, misses, evictions, size, bytes, s.Hits, s.Misses, s.Evictions, s.Size, s.Bytes)
	}
	if s.Hits != 32 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 32/1", s.Hits, s.Misses)
	}
}

package server

import (
	"fmt"
	"testing"

	"lash"
)

func resultN(n int64) *lash.Result {
	return &lash.Result{Patterns: []lash.Pattern{{Items: []string{"x"}, Support: n}}}
}

func TestCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.add("a", resultN(1))
	c.add("b", resultN(2))
	if _, ok := c.get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.add("c", resultN(3)) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	s := c.stats()
	if s.Evictions != 1 || s.Size != 2 || s.Capacity != 2 {
		t.Errorf("stats = %+v, want 1 eviction, size 2, capacity 2", s)
	}
	// hits: a, a, c = 3; misses: the evicted b = 1
	if s.Hits != 3 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", s.Hits, s.Misses)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.add("a", resultN(1))
	c.add("a", resultN(9))
	res, ok := c.get("a")
	if !ok || res.Patterns[0].Support != 9 {
		t.Fatalf("re-add did not replace the entry: %+v", res)
	}
	if s := c.stats(); s.Size != 1 || s.Evictions != 0 {
		t.Errorf("stats = %+v, want size 1, no evictions", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.add("a", resultN(1))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
	if s := c.stats(); s.Misses != 1 || s.Size != 0 {
		t.Errorf("stats = %+v, want 1 miss, size 0", s)
	}
}

func TestCacheManyEvictions(t *testing.T) {
	c := newResultCache(4)
	for i := range 20 {
		c.add(fmt.Sprintf("k%d", i), resultN(int64(i)))
	}
	s := c.stats()
	if s.Size != 4 || s.Evictions != 16 {
		t.Errorf("stats = %+v, want size 4, 16 evictions", s)
	}
	for i := 16; i < 20; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("recent key k%d evicted", i)
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"lash"
	"lash/internal/pindex"
)

// This file is the live half of the pattern-serving tier:
// GET /v1/patterns/subscribe replays a database's latest completed serving
// index as NDJSON, then follows a still-mining job live. The live tail
// comes from a per-job subscription hub — one streaming re-mine through the
// manager's existing Stream path feeding an append-only pattern log that
// any number of subscribers replay and tail at their own pace, each
// delivered every pattern exactly once (positions into an append-only log
// cannot skip or repeat).

// subHub is one job's subscription hub: an append-only pattern log fed by
// a single streaming run, plus a condition variable that wakes tailing
// subscribers on every append and on completion.
type subHub struct {
	mu   sync.Mutex
	cond *sync.Cond
	log  []lash.Pattern
	done bool
	err  error
}

func newSubHub() *subHub {
	h := &subHub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// append adds one pattern to the log and wakes all tails.
func (h *subHub) append(p lash.Pattern) {
	h.mu.Lock()
	h.log = append(h.log, p)
	h.mu.Unlock()
	h.cond.Broadcast()
}

// finish marks the feed complete (err nil on success) and wakes all tails.
func (h *subHub) finish(err error) {
	h.mu.Lock()
	h.done = true
	h.err = err
	h.mu.Unlock()
	h.cond.Broadcast()
}

// wake broadcasts without changing state — context.AfterFunc uses it to
// unblock a tail whose client went away.
func (h *subHub) wake() { h.cond.Broadcast() }

// next blocks until the log grows past pos, the feed finishes, or ctx is
// done, and returns the log entries from pos on (a stable view: the log is
// append-only and entries are never mutated) plus the feed state. A
// (nil, true, err) return with no new entries means the tail is drained.
func (h *subHub) next(ctx context.Context, pos int) (chunk []lash.Pattern, done bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.log) <= pos && !h.done && ctx.Err() == nil {
		h.cond.Wait()
	}
	return h.log[pos:], h.done, h.err
}

// streamableOptions strips a job's capture/resume fields — server jobs
// always capture delta state, but streaming runs cannot (ValidateStream's
// contract) — leaving the options the feeder stream runs with.
func streamableOptions(opt lash.Options) lash.Options {
	opt.Capture = false
	opt.Resume = nil
	return opt
}

// follow attaches to the most recent queued or running job of dbName whose
// options can stream, creating the job's hub — and the one streaming run
// that feeds it — on first use. dbAt resolves the corpus version the job
// was pinned to (appends never retarget a run, so neither may its live
// feed); jobs in skip are ignored (a subscriber passes the jobs it already
// tailed, so re-following after an append can only move forward). Returns
// nils when nothing suitable is in flight (or the manager is draining).
func (m *manager) follow(dbName string, dbAt func(version int) *lash.Database, skip map[string]bool) (*job, *subHub) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil
	}
	var j *job
	for i := len(m.order) - 1; i >= 0; i-- {
		cand := m.jobs[m.order[i]]
		if cand.dbName != dbName || skip[cand.id] || (cand.status != JobQueued && cand.status != JobRunning) {
			continue
		}
		// Restricted runs cannot stream (ValidateStream's contract), so
		// they cannot be followed live either.
		if streamableOptions(cand.options).ValidateStream() != nil {
			continue
		}
		j = cand
		break
	}
	if j == nil {
		return nil, nil
	}
	if hub, ok := m.hubs[j.id]; ok {
		return j, hub
	}
	db := dbAt(j.version)
	if db == nil {
		return nil, nil
	}
	hub := newSubHub()
	m.hubs[j.id] = hub
	// The feeder is one ordinary streaming run through m.stream: it queues
	// for a worker slot, counts into the stats, and drains on shutdown like
	// every other stream. It runs under the manager's base context — not
	// the followed job's, which is released the moment that job finishes —
	// so a subscriber keeps receiving the tail even if the async job
	// completes first. The hub outlives its map entry: removal only stops
	// NEW subscribers from attaching; attached ones drain the log to done.
	go func() {
		_, err := m.stream(m.baseCtx, db, streamableOptions(j.options), func(p lash.Pattern) error {
			hub.append(p)
			return nil
		})
		m.mu.Lock()
		delete(m.hubs, j.id)
		m.mu.Unlock()
		hub.finish(err)
	}()
	return j, hub
}

// SubscribeRecord is one NDJSON line of GET /v1/patterns/subscribe before
// the trailer: a pattern, marked replay:true when it came from the latest
// completed result's index and replay:false when delivered live from a
// still-mining run.
type SubscribeRecord struct {
	Items   []string `json:"items"`
	Support int64    `json:"support"`
	Replay  bool     `json:"replay"`
}

// SubscribeMarker is the corpus-version marker line of
// GET /v1/patterns/subscribe: it precedes the records mined from that
// version, and a fresh marker mid-stream means an append installed a new
// version and the subscription is continuing with its live run. Markers are
// distinguishable from pattern records ("items") and the trailer ("done")
// by their lone "version" field.
type SubscribeMarker struct {
	Version int `json:"version"`
}

// SubscribeTrailer is the final NDJSON record of GET /v1/patterns/subscribe.
type SubscribeTrailer struct {
	Done     bool   `json:"done"` // always true
	Database string `json:"database"`
	// CorpusVersion is the last corpus version the subscription served.
	CorpusVersion int `json:"corpus_version,omitempty"`
	// ReplayJobID/Replayed identify the replay phase: the completed job
	// whose index was replayed and how many patterns it held.
	ReplayJobID string `json:"replay_job_id,omitempty"`
	Replayed    int    `json:"replayed"`
	// LiveJobID/Live identify the live phase: the in-flight job that was
	// followed and how many patterns its run delivered.
	LiveJobID string `json:"live_job_id,omitempty"`
	Live      int    `json:"live"`
	Error     string `json:"error,omitempty"`
}

// handleSubscribe answers GET /v1/patterns/subscribe?db=NAME as NDJSON:
// first every pattern of the database's latest completed result (replayed
// from its serving index in serving order, marked "replay":true), then —
// if a job for the database is still queued or running — the patterns of
// that run delivered live as its partitions complete ("replay":false, in
// partition-completion order), and finally exactly one trailer (marked
// "done":true). Every phase is preceded by a corpus-version marker line
// ({"version":N}) whenever the version changes; in particular an append
// that installs a new version mid-subscription does not end the stream —
// when a run against the new version is in flight, a fresh marker is
// emitted and the subscription continues with its live tail. A database
// with neither a completed result nor an in-flight job answers 404; client
// disconnect ends the tail cleanly.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query()
	dbName := v.Get("db")
	if dbName == "" {
		writeError(w, http.StatusBadRequest, errors.New("db query parameter is required"))
		return
	}
	if _, ok := s.registry.get(dbName); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", errDBMissing, dbName))
		return
	}
	s.metrics.pindexQuery("subscribe")

	// dbAt pins each followed run's feeder to the corpus version the run
	// itself mines — old versions stay resolvable after appends.
	dbAt := func(version int) *lash.Database {
		db, _, ok := s.registry.getVersion(dbName, version)
		if !ok {
			return nil
		}
		return db
	}

	followed := make(map[string]bool)
	latest, hasLatest := s.jobs.latestResult(dbName)
	liveJob, hub := s.jobs.follow(dbName, dbAt, followed)
	if !hasLatest && hub == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("database %q has nothing mined and nothing mining (POST /v1/mine first)", dbName))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	trailer := SubscribeTrailer{Done: true, Database: dbName}
	curVer := 0 // last version marker emitted

	// Phase 1: replay. The index is immutable, so the walk needs no locks
	// and the replay is a consistent snapshot no matter what is mining.
	if hasLatest {
		trailer.ReplayJobID = latest.id
		curVer = latest.version
		if err := enc.Encode(SubscribeMarker{Version: curVer}); err != nil {
			return
		}
		ix := latest.result.Index()
		ids, _ := ix.Search(nil, pindex.Query{Level: pindex.NoLevel}, 0, -1)
		for _, id := range ids {
			if err := enc.Encode(SubscribeRecord{Items: ix.Items(id), Support: ix.Support(id), Replay: true}); err != nil {
				return // client gone mid-replay; nothing useful left to do
			}
			trailer.Replayed++
			if trailer.Replayed%64 == 0 && flusher != nil {
				flusher.Flush()
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Phase 2: live tails. Positions into each hub's append-only log make
	// delivery exactly-once per subscription: every loop turn resumes at
	// the first undelivered position. After a tail drains, re-following
	// picks up a run mining the next corpus version (an append arrived
	// mid-subscription) — the followed set only ever moves forward, so a
	// job already tailed is never tailed twice.
	ctx := r.Context()
	for hub != nil {
		followed[liveJob.id] = true
		trailer.LiveJobID = liveJob.id
		if liveJob.version != curVer {
			curVer = liveJob.version
			if err := enc.Encode(SubscribeMarker{Version: curVer}); err != nil {
				return
			}
		}
		stop := context.AfterFunc(ctx, hub.wake)
		pos := 0
		for {
			chunk, done, err := hub.next(ctx, pos)
			for _, p := range chunk {
				if encErr := enc.Encode(SubscribeRecord{Items: p.Items, Support: p.Support, Replay: false}); encErr != nil {
					stop()
					return
				}
				trailer.Live++
			}
			pos += len(chunk)
			if len(chunk) > 0 && flusher != nil {
				flusher.Flush()
			}
			if ctx.Err() != nil {
				stop()
				return // client gone; the hub keeps feeding other subscribers
			}
			if done {
				if err != nil {
					trailer.Error = err.Error()
				}
				break
			}
		}
		stop()
		if trailer.Error != "" {
			break
		}
		liveJob, hub = s.jobs.follow(dbName, dbAt, followed)
	}

	trailer.CorpusVersion = curVer
	enc.Encode(trailer) //nolint:errcheck // nothing to do about a broken client pipe
	if flusher != nil {
		flusher.Flush()
	}
}

package server

import (
	"io"
	"strconv"

	"lash/internal/obs"
)

// serverMetrics is the server's metric registry plus the pre-registered
// handles every hot path records through (see internal/obs: a handle is one
// or two atomic ops, no map lookups). One bundle is created per Server and
// shared by the job manager, the result cache, the database registry, and
// the HTTP layer; GET /metrics scrapes it via Server.WriteMetrics.
type serverMetrics struct {
	reg *obs.Registry
	// pm carries the mining-pipeline families (per-phase duration
	// histograms, shuffle/spill counters, per-partition mine timings). The
	// manager points every job's Options.Metrics at it, so all runs feed
	// one set of process-wide families.
	pm *obs.PipelineMetrics

	jobsSubmitted *obs.Counter
	jobsCoalesced *obs.Counter
	minesRun      *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter
	streams       *obs.Counter
	jobsQueued    *obs.Gauge
	jobsRunning   *obs.Gauge
	queueSeconds  *obs.Histogram
	runSeconds    *obs.Histogram

	// jobsDeadline counts runs that failed because they outlived their
	// deadline (request deadline_ms, capped by the server's MaxJobTime).
	// rateLimited counts requests the per-client token bucket rejected
	// with 429. spillDirFree mirrors the free space of the filesystem
	// budgeted shuffles spill to (refreshed at scrape and readiness
	// checks; -1 until first measured or when the platform cannot tell).
	jobsDeadline *obs.Counter
	rateLimited  *obs.Counter
	spillDirFree *obs.Gauge

	// spilledRuns/spilledBytes accumulate the shuffle spilling of completed
	// runs (jobs and streams). They are the single source of truth for
	// JobStats.SpilledRuns/SpilledBytes — the manager keeps no shadow
	// counters, so GET /v1/stats and GET /metrics cannot drift apart.
	spilledRuns  *obs.Counter
	spilledBytes *obs.Counter

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge
	cacheBytes     *obs.Gauge

	// Serving-index (internal/pindex) families: build cost and size of the
	// per-result indexes the pattern endpoints query, plus query counts by
	// kind. The query counters are pre-registered per kind — handlers only
	// ever touch the fixed handle map, never the registry.
	pindexBuildSeconds *obs.Histogram
	pindexBytes        *obs.Counter
	pindexQueries      map[string]*obs.Counter

	databases  *obs.Gauge
	uptime     *obs.Gauge
	streamEmit *obs.Histogram

	// Live-corpora families: corpusVersions counts every corpus version
	// installed (registrations and appends); deltaDirty/deltaReused split
	// the partitions of delta re-mines (Options.Resume) into re-mined vs
	// spliced-from-state.
	corpusVersions *obs.Counter
	deltaDirty     *obs.Counter
	deltaReused    *obs.Counter
}

func newServerMetrics() *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		pm:  obs.NewPipelineMetrics(r),

		jobsSubmitted: r.Counter("lash_jobs_submitted_total",
			"Mine requests accepted, including cache hits, coalesced submissions and streams."),
		jobsCoalesced: r.Counter("lash_jobs_coalesced_total",
			"Requests attached to an identical in-flight job instead of starting their own (singleflight)."),
		minesRun: r.Counter("lash_mines_run_total",
			"Actual executions of the mining function (work not avoided by the cache or coalescing)."),
		jobsCompleted: r.Counter("lash_jobs_completed_total",
			"Jobs and streams that finished with a result."),
		jobsFailed: r.Counter("lash_jobs_failed_total",
			"Jobs and streams that finished with a mining error."),
		jobsCancelled: r.Counter("lash_jobs_cancelled_total",
			"Jobs and streams cancelled by DELETE /v1/jobs/{id}, client disconnect or shutdown."),
		streams: r.Counter("lash_streams_total",
			"Streaming mining runs accepted on POST /v1/mine/stream."),
		jobsQueued: r.Gauge("lash_jobs_queued",
			"Jobs currently waiting for a worker slot (queue depth)."),
		jobsRunning: r.Gauge("lash_jobs_running",
			"Jobs currently mining on a worker slot."),
		queueSeconds: r.Histogram("lash_job_queue_seconds",
			"Time jobs and streams spent waiting for a worker slot.", obs.DurationBuckets),
		runSeconds: r.Histogram("lash_job_run_seconds",
			"Wall-clock time of mining runs, from worker pickup to a terminal state.", obs.DurationBuckets),

		jobsDeadline: r.Counter("lash_jobs_deadline_exceeded_total",
			"Jobs and streams that failed because they outlived their deadline (deadline_ms or -max-job-time)."),
		rateLimited: r.Counter("lash_http_rate_limited_total",
			"HTTP requests rejected with 429 by the per-client rate limiter."),
		spillDirFree: r.Gauge("lash_spill_dir_free_bytes",
			"Free bytes on the filesystem holding the shuffle spill directory (-1 when unknown)."),

		spilledRuns: r.Counter("lash_jobs_spilled_runs_total",
			"Sorted shuffle runs spilled to disk by completed runs whose memory_budget forced external sorting."),
		spilledBytes: r.Counter("lash_jobs_spilled_bytes_total",
			"Bytes of shuffle data spilled to disk by completed runs."),

		cacheHits: r.Counter("lash_cache_hits_total",
			"Result-cache lookups answered without mining."),
		cacheMisses: r.Counter("lash_cache_misses_total",
			"Result-cache lookups that found nothing."),
		cacheEvictions: r.Counter("lash_cache_evictions_total",
			"Results dropped from the cache to make room (LRU)."),
		cacheEntries: r.Gauge("lash_cache_entries",
			"Entries currently held by the result cache."),
		cacheBytes: r.Gauge("lash_cache_bytes",
			"Bytes currently charged against the result cache's byte budget (index-exact after recosting)."),

		pindexBuildSeconds: r.Histogram("lash_pindex_build_seconds",
			"Time to build one serving index over a completed mining result.", obs.DurationBuckets),
		pindexBytes: r.Counter("lash_pindex_bytes_total",
			"Bytes of serving indexes built (SizeBytes summed over builds)."),

		databases: r.Gauge("lash_databases",
			"Databases registered with the server."),
		uptime: r.Gauge("lash_uptime_seconds",
			"Seconds since the server was assembled."),
		streamEmit: r.Histogram("lash_stream_emit_seconds",
			"Time spent writing one pattern record to a streaming client; long tails mean client backpressure.",
			obs.DurationBuckets),

		corpusVersions: r.Counter("lash_corpus_versions_total",
			"Corpus versions installed: database registrations plus appends (POST /v1/databases/{name}/sequences)."),
		deltaDirty: r.Counter("lash_delta_partitions_dirty_total",
			"Partitions re-mined by delta runs because an appended sequence could change their output."),
		deltaReused: r.Counter("lash_delta_partitions_reused_total",
			"Partitions spliced from a previous run's state by delta runs instead of being re-mined."),
	}
	m.pindexQueries = make(map[string]*obs.Counter, len(pindexQueryKinds))
	for _, kind := range pindexQueryKinds {
		//lashvet:ignore obshandle one-time constructor registration over the closed kind list; handlers use the prebuilt map
		m.pindexQueries[kind] = r.Counter("lash_pindex_queries_total",
			"Serving-index queries answered, by query kind.", "kind", kind)
	}
	m.spillDirFree.Set(-1) // unknown until the first readiness check or scrape
	obs.RegisterGoCollector(r)
	return m
}

// pindexQueryKinds is the closed label space of lash_pindex_queries_total:
// one kind per query shape the pattern endpoints answer from the serving
// index.
var pindexQueryKinds = []string{"plain", "top", "min_support", "contains", "prefix", "level", "rollup", "subscribe"}

// pindexQuery counts one serving-index query of the given kind. Unknown
// kinds are dropped rather than registered on the fly, keeping the label
// space closed.
func (m *serverMetrics) pindexQuery(kind string) {
	if c, ok := m.pindexQueries[kind]; ok {
		c.Inc()
	}
}

// httpRequest counts one served HTTP request. This path tolerates the
// registry lookup (it is not the mining hot path), which keeps the
// method × code label space lazily populated.
func (m *serverMetrics) httpRequest(method string, code int) {
	//lashvet:ignore obshandle deliberate lazy label-space population, documented above; HTTP serving is not the mining hot path
	m.reg.Counter("lash_http_requests_total",
		"HTTP requests served, by method and status code.",
		"method", method, "code", strconv.Itoa(code)).Inc()
}

// WriteMetrics renders the server's metric registry in Prometheus text
// exposition format — the body of GET /metrics. cmd/metriclint uses it to
// lint the production metric set without a running server.
func (s *Server) WriteMetrics(w io.Writer) error {
	return s.metrics.reg.WritePrometheus(w)
}

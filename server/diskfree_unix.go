//go:build linux || darwin

package server

import "syscall"

// diskFree returns the bytes available to unprivileged writers on the
// filesystem holding path — what a budgeted shuffle could actually spill.
func diskFree(path string) (int64, bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, false
	}
	// Field widths differ across platforms (Bsize is int64 on Linux,
	// uint32 on Darwin); the product fits int64 on any real filesystem.
	return int64(st.Bavail) * int64(st.Bsize), true
}

//go:build !linux && !darwin

package server

// diskFree is unavailable on this platform: the lash_spill_dir_free_bytes
// gauge stays at -1 and readiness falls back to the write probe alone.
func diskFree(path string) (int64, bool) { return 0, false }

// Package server turns the lash library into a long-running, concurrent
// mining service. A Server owns three pieces:
//
//   - a database registry that loads named sequence databases once (from
//     server-side files, inline request payloads, or the built-in synthetic
//     generators) and shares the immutable *lash.Database across requests;
//   - a job manager that runs lash.Mine asynchronously on a bounded worker
//     pool, coalescing identical in-flight requests onto a single run
//     (singleflight);
//   - an LRU result cache keyed by database + canonical options, so repeated
//     queries are answered without re-mining.
//
// The HTTP/JSON API (all stdlib) is:
//
//	POST   /v1/databases          register a database (DatabaseSpec JSON or raw .ldb body)
//	GET    /v1/databases          list registered databases (paginated)
//	GET    /v1/databases/{name}   one database's metadata
//	POST   /v1/databases/{name}/sequences  append sequences; installs the next corpus version
//	POST   /v1/mine               submit a mining job (MineRequest)
//	POST   /v1/mine/stream        mine and stream patterns as NDJSON
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          poll one job; includes the result when done
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/patterns           query a database's latest mined patterns
//	GET    /v1/patterns/subscribe replay mined patterns, then follow a live run (NDJSON)
//	GET    /v1/stats              registry / job / cache counters
//	GET    /metrics               Prometheus text exposition of the same counters
//	GET    /healthz               liveness probe (200 while the process serves)
//	GET    /readyz                readiness probe (503 while draining/saturated)
//
// Robustness: every run can carry a deadline (deadline_ms, capped by
// Config.MaxJobTime) and a task-retry budget (max_attempts); the manager
// refuses submissions past its queue bound and rate-limits per client,
// answering 429 with Retry-After in both cases. Shutdown flips /readyz to
// 503 immediately and refuses new submissions with 503 + Retry-After while
// in-flight jobs drain.
//
// Every job runs under a context derived from the server's lifetime:
// DELETE /v1/jobs/{id} cancels one job (it lands in the "cancelled" state,
// waking every request coalesced onto it), and shutting the server down
// cancels them all. POST /v1/mine/stream delivers patterns incrementally
// as newline-delimited JSON — one pattern object per line in
// partition-completion order, then exactly one trailer object (marked
// "done":true) carrying the run's stats or error — so clients can consume
// arbitrarily large result sets without either side materializing them.
//
// Command lashd wraps this package in a binary with graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"lash"
	"lash/internal/faults"
)

// Config parameterizes New. The zero value is usable: 4 mining workers, a
// 128-entry result cache, 1024 retained job records, file loading
// disabled, mining with lash.Mine.
type Config struct {
	// Workers bounds how many mining jobs run concurrently (default 4).
	// Each job itself parallelizes internally via Options.Workers.
	Workers int
	// CacheBytes is the result cache's byte budget (default 256 MiB;
	// negative disables caching). Every cached result is charged its
	// serving index's exact SizeBytes plus an estimate of the raw result,
	// and the 8-way sharded LRU evicts once over budget.
	CacheBytes int64
	// CacheSize is the deprecated entry-count bound (the old cache
	// capacity): when positive it additionally caps cached entries;
	// negative disables caching entirely. Prefer CacheBytes.
	CacheSize int
	// JobHistory bounds the retained job records (default 1024; negative
	// retains everything). Once past the bound, the oldest finished jobs
	// are forgotten: their ids stop resolving on GET /v1/jobs/{id}, though
	// each database's most recent result stays available to /v1/patterns.
	JobHistory int
	// DataDir, when non-empty, enables file-based DatabaseSpecs resolved
	// relative to this directory.
	DataDir string
	// MineFunc replaces lash.MineContext; tests use it to observe and
	// stall mining runs. It must honor ctx cancellation.
	MineFunc MineFunc
	// StreamFunc replaces lash.Stream for POST /v1/mine/stream; tests use
	// it to script streamed deliveries. It must honor ctx cancellation.
	StreamFunc StreamFunc
	// Logger receives structured request and job-lifecycle logs. Every
	// record carries the ids needed to correlate them: request_id for HTTP
	// requests, job_id for jobs, both where a request touches a job. Nil
	// discards all logs.
	Logger *slog.Logger
	// MaxJobTime, when positive, caps every run's mining wall time
	// (lashd -max-job-time). A request's deadline_ms may tighten the cap,
	// never loosen it; runs past it fail with a timeout error counted by
	// lash_jobs_deadline_exceeded_total.
	MaxJobTime time.Duration
	// MaxQueue, when positive, bounds the fresh-job backlog (lashd
	// -max-queue): submissions that would queue past it are refused with
	// 429 + Retry-After. Cache hits and coalesced submissions are always
	// admitted — they cost no queue slot.
	MaxQueue int
	// RateLimit, when positive, enables per-client token-bucket rate
	// limiting (lashd -rate-limit): sustained requests per second allowed
	// from one remote host, with bursts up to RateBurst. Probe and scrape
	// endpoints (/healthz, /readyz, /metrics) are exempt; over-limit
	// requests get 429 + Retry-After.
	RateLimit float64
	// RateBurst is the token-bucket capacity per client (0 = RateLimit
	// rounded up, minimum 1).
	RateBurst int
	// Faults, when non-nil, arms the server's fault-injection points —
	// corpus loading ("server.corpus.load") and, forwarded into every run,
	// the pipeline points (see lash.Options.Faults). Chaos tests only; nil
	// in production.
	Faults *faults.Registry
}

// Server is a concurrent mining service. Create one with New, mount
// Handler on an http.Server, and call Close on the way out.
type Server struct {
	registry *registry
	jobs     *manager
	mux      *http.ServeMux
	root     http.Handler // mux wrapped in the request-id/logging/metrics middleware
	metrics  *serverMetrics
	log      *slog.Logger
	limiter  *rateLimiter // nil when rate limiting is off
	started  time.Time
	nextReq  atomic.Uint64 // request-id source
}

// New assembles a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.CacheBytes < 0 || cfg.CacheSize < 0 {
		// Either knob at a negative value disables caching outright (the
		// old CacheSize: -1 contract keeps working).
		cfg.CacheBytes, cfg.CacheSize = 0, 0
	}
	if cfg.JobHistory == 0 {
		cfg.JobHistory = 1024
	}
	mineFn := cfg.MineFunc
	if mineFn == nil {
		mineFn = lash.MineContext
	}
	streamFn := cfg.StreamFunc
	if streamFn == nil {
		streamFn = lash.Stream
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	met := newServerMetrics()
	s := &Server{
		registry: newRegistry(cfg.DataDir),
		jobs:     newManager(cfg.Workers, cfg.CacheBytes, cfg.CacheSize, cfg.JobHistory, mineFn, streamFn, met, logger),
		mux:      http.NewServeMux(),
		metrics:  met,
		log:      logger,
		started:  time.Now().UTC(),
	}
	s.registry.loadSeconds = met.pm.CorpusLoadSeconds
	s.registry.versionsTotal = met.corpusVersions
	s.registry.faults = cfg.Faults
	s.jobs.maxQueue = cfg.MaxQueue
	s.jobs.maxJobTime = cfg.MaxJobTime
	s.jobs.faults = cfg.Faults
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	// Gauges whose truth lives elsewhere are refreshed at scrape time.
	met.reg.OnScrape(func() {
		met.uptime.Set(int64(time.Since(s.started).Seconds()))
		cs := s.jobs.cache.stats()
		met.cacheEntries.Set(int64(cs.Size))
		met.cacheBytes.Set(cs.Bytes)
		met.databases.Set(int64(s.registry.len()))
		if free, ok := diskFree(os.TempDir()); ok {
			met.spillDirFree.Set(free)
		}
	})
	s.mux.HandleFunc("POST /v1/databases", s.handleAddDatabase)
	s.mux.HandleFunc("GET /v1/databases", s.handleListDatabases)
	s.mux.HandleFunc("GET /v1/databases/{name}", s.handleGetDatabase)
	s.mux.HandleFunc("POST /v1/databases/{name}/sequences", s.handleAppendSequences)
	s.mux.HandleFunc("POST /v1/mine", s.handleMine)
	s.mux.HandleFunc("POST /v1/mine/stream", s.handleMineStream)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/patterns", s.handlePatterns)
	s.mux.HandleFunc("GET /v1/patterns/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// /healthz is pure liveness — 200 for as long as the process serves
	// HTTP at all, even mid-drain — while /readyz reports whether new work
	// would be accepted right now.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.root = s.middleware(s.mux)
	return s
}

// handleReady answers GET /readyz: 200 while the server can usefully accept
// mining work, 503 + Retry-After the moment it cannot — the job manager is
// draining (Close has begun), the admission queue is saturated, or the
// spill directory stopped accepting writes. Load balancers use it to stop
// routing before shutdown finishes; /healthz stays green throughout the
// drain so the process is not killed mid-flight.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if free, ok := diskFree(os.TempDir()); ok {
		s.metrics.spillDirFree.Set(free)
	}
	switch {
	case s.jobs.draining():
		writeError(w, http.StatusServiceUnavailable, errors.New("not ready: draining (shutdown in progress)"))
	case s.jobs.maxQueue > 0 && int(s.metrics.jobsQueued.Value()) >= s.jobs.maxQueue:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready: job queue saturated (%d/%d)",
			int(s.metrics.jobsQueued.Value()), s.jobs.maxQueue))
	default:
		if err := probeSpillDir(); err != nil {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready: spill dir not writable: %v", err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// probeSpillDir verifies a budgeted shuffle could spill right now: runs
// create their private spill directories under the process temp dir, so
// readiness round-trips one small write there.
func probeSpillDir() error {
	f, err := os.CreateTemp("", "lash-readyz-")
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("ok"))
	return errors.Join(werr, f.Close(), os.Remove(f.Name()))
}

// middleware assigns each request an id (threaded through the context so
// job logs can point back at the request that caused them), applies the
// per-client rate limit, logs the request, and counts it into
// lash_http_requests_total (rate-limited requests included, so the 429s
// show up in the same place as everything else).
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", s.nextReq.Add(1))
		r = r.WithContext(withRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		if s.limiter != nil && !rateLimitExempt(r.URL.Path) && !s.limiter.allow(clientHost(r.RemoteAddr), begin) {
			s.metrics.rateLimited.Inc()
			writeError(sw, http.StatusTooManyRequests,
				fmt.Errorf("%w: client %s exceeded %g requests/second", errOverloaded, clientHost(r.RemoteAddr), s.limiter.rate))
		} else {
			next.ServeHTTP(sw, r)
		}
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.httpRequest(r.Method, code)
		s.log.Info("http request", "request_id", id, "method", r.Method,
			"path", r.URL.Path, "status", code, "duration_ms", time.Since(begin).Milliseconds())
	})
}

// statusWriter captures the response status for logging/metrics while
// forwarding Flush, which the NDJSON streaming handler depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ctxKey keys the request id in a context.
type ctxKey int

const requestIDKey ctxKey = iota

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// requestIDFrom returns the request id threaded by the middleware, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// handleMetrics answers GET /metrics with the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w) //nolint:errcheck // nothing to do about a broken client pipe
}

// AddDatabase registers a database directly, bypassing HTTP — lashd uses it
// to preload databases from flags before serving.
func (s *Server) AddDatabase(spec DatabaseSpec) (DatabaseInfo, error) {
	return s.registry.add(spec)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.root }

// Close stops accepting jobs and waits for in-flight mining to drain or
// ctx to expire. Call it after http.Server.Shutdown.
func (s *Server) Close(ctx context.Context) error { return s.jobs.close(ctx) }

// OptionsSpec is the wire form of lash.Options: enums travel as the names
// the CLI accepts (see lash.ParseAlgorithm and friends).
type OptionsSpec struct {
	MinSupport      int64  `json:"min_support"`
	MaxGap          int    `json:"max_gap"`
	MaxLength       int    `json:"max_length"`
	Algorithm       string `json:"algorithm,omitempty"`
	LocalMiner      string `json:"local_miner,omitempty"`
	Restriction     string `json:"restriction,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	MaxIntermediate int64  `json:"max_intermediate,omitempty"`
	// MemoryBudget bounds the job's shuffle memory in bytes; past it the
	// shuffle spills sorted runs to disk (see lash.Options.MemoryBudget).
	// 0 = unlimited. Does not affect the mined result, so cache hits and
	// singleflight coalescing work across different budgets.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// DeadlineMS, when positive, bounds the run's mining wall time in
	// milliseconds: a run still in flight past it fails with a timeout
	// error. The server's -max-job-time cap still applies — the tighter
	// bound wins. Like memory_budget, deadlines decide whether a run
	// finishes, never what it outputs, so caching and coalescing work
	// across different values.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxAttempts, when > 1, re-executes transiently-failed MapReduce
	// tasks (spill I/O errors and the like) up to this many total attempts
	// each (see lash.Options.MaxAttempts). Retried runs are differentially
	// tested byte-identical to fault-free runs, so this too is invisible
	// to the cache key.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// toOptions parses and validates the spec.
func (o OptionsSpec) toOptions() (lash.Options, error) {
	alg, err := lash.ParseAlgorithm(o.Algorithm)
	if err != nil {
		return lash.Options{}, err
	}
	mnr, err := lash.ParseLocalMiner(o.LocalMiner)
	if err != nil {
		return lash.Options{}, err
	}
	restr, err := lash.ParseRestriction(o.Restriction)
	if err != nil {
		return lash.Options{}, err
	}
	opt := lash.Options{
		MinSupport:      o.MinSupport,
		MaxGap:          o.MaxGap,
		MaxLength:       o.MaxLength,
		Algorithm:       alg,
		LocalMiner:      mnr,
		Restriction:     restr,
		Workers:         o.Workers,
		MaxIntermediate: o.MaxIntermediate,
		MemoryBudget:    o.MemoryBudget,
		Deadline:        time.Duration(o.DeadlineMS) * time.Millisecond,
		MaxAttempts:     o.MaxAttempts,
	}
	if err := opt.Validate(); err != nil {
		return lash.Options{}, err
	}
	return opt, nil
}

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	// Database names a registered database.
	Database string `json:"database"`
	// Version selects the corpus version to mine (0 = latest). Older
	// versions stay mineable after appends.
	Version int `json:"version,omitempty"`
	// Options configures the run.
	Options OptionsSpec `json:"options"`
	// Wait blocks the request until the job finishes and returns the full
	// JobView instead of an immediate 202.
	Wait bool `json:"wait,omitempty"`
}

// PatternView is one mined pattern on the wire.
type PatternView struct {
	Items   []string `json:"items"`
	Support int64    `json:"support"`
}

// ResultView is a mining result on the wire.
type ResultView struct {
	Patterns      []PatternView `json:"patterns"`
	FrequentItems []PatternView `json:"frequent_items,omitempty"`
	// CorpusVersion is the corpus version the result was mined from.
	CorpusVersion    int   `json:"corpus_version"`
	NumPartitions    int   `json:"num_partitions"`
	Explored         int64 `json:"explored"`
	MapOutputBytes   int64 `json:"map_output_bytes"`
	MapOutputRecords int64 `json:"map_output_records"`
	// SpillRuns/SpillBytes report shuffle spilling forced by the job's
	// memory_budget (0 when the run stayed in memory).
	SpillRuns  int64 `json:"spill_runs,omitempty"`
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// TaskRetries/FaultsInjected report the run's fault-tolerance work:
	// task re-executions after transient failures (max_attempts) and
	// synthetic faults injected into the run. Both 0 on healthy runs.
	TaskRetries    int64 `json:"task_retries,omitempty"`
	FaultsInjected int64 `json:"faults_injected,omitempty"`
	// DeltaPartitionsDirty/DeltaPartitionsReused report, for delta re-mines
	// of an appended corpus, how many partitions were re-mined vs. spliced
	// from the previous run's state. Both 0 for from-scratch runs.
	DeltaPartitionsDirty  int64 `json:"delta_partitions_dirty,omitempty"`
	DeltaPartitionsReused int64 `json:"delta_partitions_reused,omitempty"`
}

func viewPatterns(ps []lash.Pattern) []PatternView {
	out := make([]PatternView, len(ps))
	for i, p := range ps {
		out[i] = PatternView{Items: p.Items, Support: p.Support}
	}
	return out
}

func viewResult(res *lash.Result, version int) *ResultView {
	return &ResultView{
		Patterns:              viewPatterns(res.Patterns),
		FrequentItems:         viewPatterns(res.FrequentItems),
		CorpusVersion:         version,
		NumPartitions:         res.NumPartitions,
		Explored:              res.Explored,
		MapOutputBytes:        res.Stats.MapOutputBytes,
		MapOutputRecords:      res.Stats.MapOutputRecords,
		SpillRuns:             res.Stats.SpillRuns,
		SpillBytes:            res.Stats.SpillBytes,
		TaskRetries:           res.Stats.TaskRetries,
		FaultsInjected:        res.Stats.FaultsInjected,
		DeltaPartitionsDirty:  res.Stats.DeltaPartitionsDirty,
		DeltaPartitionsReused: res.Stats.DeltaPartitionsReused,
	}
}

// JobView is a job on the wire. RuntimeMS is the job's mining wall-clock
// duration: final once the job is terminal, live (time mined so far) while
// it is running.
type JobView struct {
	ID       string `json:"job_id"`
	Database string `json:"database"`
	// CorpusVersion is the corpus version the job mines (jobs pin the
	// version current at submission; appends never retarget them).
	CorpusVersion int       `json:"corpus_version,omitempty"`
	Status        JobStatus `json:"status"`
	Cached        bool      `json:"cached"`
	Coalesced     int       `json:"coalesced"`
	Error         string    `json:"error,omitempty"`
	Created       time.Time `json:"created"`
	// QueueMS is how long the job waited for a worker slot: final once it
	// started (or terminally never started), live while still queued.
	QueueMS   int64       `json:"queue_ms,omitempty"`
	RuntimeMS int64       `json:"runtime_ms,omitempty"`
	Result    *ResultView `json:"result,omitempty"`
}

// view snapshots a job. withResult controls whether the (possibly large)
// pattern list is included.
func (m *manager) view(j *job, withResult bool) JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := JobView{
		ID:            j.id,
		Database:      j.dbName,
		CorpusVersion: j.version,
		Status:        j.status,
		Cached:        j.cached,
		Coalesced:     j.coalesced,
		Created:       j.created,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		v.RuntimeMS = j.finished.Sub(j.started).Milliseconds()
	case !j.started.IsZero():
		v.RuntimeMS = time.Since(j.started).Milliseconds()
	}
	switch {
	case !j.started.IsZero():
		v.QueueMS = j.started.Sub(j.created).Milliseconds()
	case !j.finished.IsZero(): // cancelled while still queued
		v.QueueMS = j.finished.Sub(j.created).Milliseconds()
	default: // still waiting for a slot
		v.QueueMS = time.Since(j.created).Milliseconds()
	}
	if withResult && j.status == JobDone {
		v.Result = viewResult(j.result, j.version)
	}
	return v
}

// StatsView is the body of GET /v1/stats.
type StatsView struct {
	UptimeSeconds int64      `json:"uptime_seconds"`
	Databases     int        `json:"databases"`
	Jobs          JobStats   `json:"jobs"`
	Cache         CacheStats `json:"cache"`
}

func (s *Server) handleAddDatabase(w http.ResponseWriter, r *http.Request) {
	// A raw .ldb body registers the uploaded binary database directly; the
	// name rides the query string since the body is the payload itself.
	if isLDBRequest(r) {
		name := r.URL.Query().Get("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, errors.New("name query parameter is required for .ldb uploads"))
			return
		}
		db, err := readLDB(w, r)
		if err != nil {
			writeError(w, bodyStatus(err), err)
			return
		}
		info, err := s.registry.install(name, "upload:ldb", db)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
		return
	}
	var spec DatabaseSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	info, err := s.registry.add(spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleListDatabases answers GET /v1/databases[?limit=N&cursor=C]: all
// registered databases in registration order, paginated with the same
// opaque limit/cursor contract as /v1/jobs and /v1/patterns.
func (s *Server) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	const fingerprint = "databases"
	limit, offset, err := parsePage(r.URL.Query(), fingerprint)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	infos := s.registry.list()
	total := len(infos)
	if offset > total {
		offset = total
	}
	page := infos[offset:]
	if limit > 0 && limit < len(page) {
		page = page[:limit]
	}
	resp := map[string]any{"databases": page, "total": total}
	if limit > 0 && offset+len(page) < total {
		resp["next_cursor"] = encodeCursor(fingerprint, offset+len(page))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetDatabase(w http.ResponseWriter, r *http.Request) {
	info, ok := s.registry.infoFor(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such database %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// resolveMineDB resolves a mine request's database and corpus version,
// writing the error response itself on failure.
func (s *Server) resolveMineDB(w http.ResponseWriter, req MineRequest) (*lash.Database, bool) {
	if req.Database == "" {
		writeError(w, http.StatusBadRequest, errors.New("database is required"))
		return nil, false
	}
	if req.Version < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad version %d", req.Version))
		return nil, false
	}
	db, dbOK, verOK := s.registry.getVersion(req.Database, req.Version)
	switch {
	case !dbOK:
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", errDBMissing, req.Database))
		return nil, false
	case !verOK:
		writeError(w, http.StatusNotFound,
			fmt.Errorf("database %q has no corpus version %d", req.Database, req.Version))
		return nil, false
	}
	return db, true
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	db, ok := s.resolveMineDB(w, req)
	if !ok {
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.jobs.submit(r.Context(), req.Database, db, opt)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if req.Wait {
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, s.jobs.view(j, true))
		case <-r.Context().Done():
			// Client went away; the job keeps running and stays pollable.
		}
		return
	}
	// Already-terminal submissions (cache hits) carry the result inline so
	// the client need not poll at all.
	if _, done := j.terminal(); done {
		writeJSON(w, http.StatusOK, s.jobs.view(j, true))
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobs.view(j, false))
}

// terminal reports whether the job already reached a terminal status.
func (j *job) terminal() (JobStatus, bool) {
	select {
	case <-j.done:
		return j.status, true
	default:
		return "", false
	}
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errJobMissing, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.view(j, true))
}

// handleCancelJob answers DELETE /v1/jobs/{id}: a queued or running job is
// cancelled asynchronously (202 with the job's current view — poll until
// terminal; almost always "cancelled", though a run whose result was
// already computed when the cancel landed may still finish "done"),
// cancelling an already-cancelled job is idempotent (200), and a
// done/failed job is a conflict (409).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.cancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if status, done := j.terminal(); done && status == JobCancelled {
		writeJSON(w, http.StatusOK, s.jobs.view(j, false))
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobs.view(j, false))
}

// StreamTrailer is the final NDJSON record of POST /v1/mine/stream. It is
// distinguishable from pattern records by its "done" field, and reports
// either the completed run's summary or the error that ended it.
type StreamTrailer struct {
	Done             bool          `json:"done"` // always true
	Error            string        `json:"error,omitempty"`
	Patterns         int           `json:"patterns"` // pattern records streamed before this trailer
	FrequentItems    []PatternView `json:"frequent_items,omitempty"`
	NumPartitions    int           `json:"num_partitions,omitempty"`
	Explored         int64         `json:"explored,omitempty"`
	MapOutputBytes   int64         `json:"map_output_bytes,omitempty"`
	MapOutputRecords int64         `json:"map_output_records,omitempty"`
	SpillRuns        int64         `json:"spill_runs,omitempty"`
	SpillBytes       int64         `json:"spill_bytes,omitempty"`
	TaskRetries      int64         `json:"task_retries,omitempty"`
	FaultsInjected   int64         `json:"faults_injected,omitempty"`
	RuntimeMS        int64         `json:"runtime_ms"`
}

// handleMineStream answers POST /v1/mine/stream: it mines synchronously,
// writing each pattern as one NDJSON line the moment its partition
// completes, then exactly one trailer line. Closing the request (client
// disconnect) or shutting the server down cancels the run. Since patterns
// are delivered before the run's fate is known, errors after the first
// write surface in the trailer, not the HTTP status.
func (s *Server) handleMineStream(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	db, ok := s.resolveMineDB(w, req)
	if !ok {
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := opt.ValidateStream(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()
	patterns := 0
	emit := func(p lash.Pattern) error {
		begin := time.Now()
		if err := enc.Encode(PatternView{Items: p.Items, Support: p.Support}); err != nil {
			return err
		}
		patterns++
		// Flush in small batches: every pattern would thrash syscalls on
		// dense result sets, while never flushing would defeat streaming.
		if patterns%64 == 0 && flusher != nil {
			flusher.Flush()
		}
		// Long emit tails mean the client is not keeping up (backpressure
		// stalls the mining goroutines behind the pipe).
		s.metrics.streamEmit.Observe(time.Since(begin).Seconds())
		return nil
	}
	res, err := s.jobs.stream(r.Context(), db, opt, emit)

	// Nothing has been written yet for runs that failed before their first
	// pattern (e.g. refused at shutdown), so those can still carry a real
	// HTTP status instead of a 200-with-error-trailer.
	if err != nil && patterns == 0 {
		writeError(w, statusFor(err), err)
		return
	}

	trailer := StreamTrailer{Done: true, Patterns: patterns, RuntimeMS: time.Since(start).Milliseconds()}
	if err != nil {
		trailer.Error = err.Error()
	} else {
		trailer.FrequentItems = viewPatterns(res.FrequentItems)
		trailer.NumPartitions = res.NumPartitions
		trailer.Explored = res.Explored
		trailer.MapOutputBytes = res.Stats.MapOutputBytes
		trailer.MapOutputRecords = res.Stats.MapOutputRecords
		trailer.SpillRuns = res.Stats.SpillRuns
		trailer.SpillBytes = res.Stats.SpillBytes
		trailer.TaskRetries = res.Stats.TaskRetries
		trailer.FaultsInjected = res.Stats.FaultsInjected
	}
	enc.Encode(trailer) //nolint:errcheck // nothing to do about a broken client pipe
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsView{
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Databases:     s.registry.len(),
		Jobs:          s.jobs.stats(),
		Cache:         s.jobs.cache.stats(),
	})
}

// maxBodyBytes bounds request bodies (inline sequence payloads included) so
// a single oversized POST cannot exhaust server memory.
const maxBodyBytes = 64 << 20

// decodeJSON strictly decodes a size-capped request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a broken client pipe
}

// ErrorBody is the uniform error envelope of every non-2xx JSON response:
// {"error": {"code": "...", "message": "...", "retryable": bool}}. Code is a
// stable snake_case identifier clients can switch on (messages are for
// humans and may change); Retryable marks refusals that a backoff-and-retry
// loop should retry against this same server (overload, drain — these also
// carry a Retry-After header).
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// errorCode derives the envelope's stable code: the sentinel in the error
// chain when one identifies the refusal more precisely than the status.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, errShutdown):
		return "shutting_down"
	case errors.Is(err, errOverloaded):
		return "overloaded"
	case errors.Is(err, errJobMissing):
		return "job_not_found"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusServiceUnavailable:
		return "not_ready"
	}
	return "internal"
}

// writeError is the single chokepoint every handler's non-2xx response goes
// through (the apierr analyzer enforces this), so the envelope shape cannot
// drift between endpoints.
func writeError(w http.ResponseWriter, status int, err error) {
	// Backoffable refusals (overload, drain) advertise when to come back:
	// well-behaved clients and load balancers honor Retry-After instead of
	// hammering a server that already said no.
	retryable := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
	if retryable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]ErrorBody{"error": {
		Code:      errorCode(status, err),
		Message:   err.Error(),
		Retryable: retryable,
	}})
}

// statusFor maps the manager/registry sentinel errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, errConflict):
		return http.StatusConflict
	case errors.Is(err, errShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errJobMissing), errors.Is(err, errDBMissing):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

package server

import (
	"bufio"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"

	"lash"
)

// This file is the live-corpora half of the database endpoints: appending
// new sequences to a registered database (installing the next immutable
// corpus version) and uploading databases or fragments in the compact
// binary .ldb format.

// ldbContentType is the media type of a raw binary database body — the
// format written by lash.Database.WriteBinary and `lash-gen -format
// binary`. POST /v1/databases and POST /v1/databases/{name}/sequences
// accept it as an alternative to JSON.
const ldbContentType = "application/x-lash-ldb"

// isLDBRequest reports whether the request declares a raw .ldb body.
func isLDBRequest(r *http.Request) bool {
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && ct == ldbContentType
}

// bodyStatus maps a request-body read failure to its HTTP status: 413 when
// the size cap cut the body off, 400 for everything else.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readLDB decodes a size-capped raw .ldb request body: the magic is sniffed
// before any real decoding (a JSON body sent with the wrong Content-Type
// fails fast with a pointed message), then the stream goes through the
// seqdb reader, which validates the dictionary, hierarchy, and every
// sequence before a database is returned.
func readLDB(w http.ResponseWriter, r *http.Request) (*lash.Database, error) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	head, err := br.Peek(len(lash.BinaryMagic))
	if err != nil || string(head) != lash.BinaryMagic {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("request body exceeds %d bytes: %w", int64(maxBodyBytes), err)
		}
		return nil, fmt.Errorf("body is not a lash binary database (missing %q magic)", lash.BinaryMagic)
	}
	db, err := lash.ReadBinaryDatabase(br)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("request body exceeds %d bytes: %w", int64(maxBodyBytes), err)
		}
		return nil, fmt.Errorf("invalid .ldb payload: %v", err)
	}
	return db, nil
}

// AppendSpec is the JSON body of POST /v1/databases/{name}/sequences: the
// sequences to append, with optional new hierarchy edges (same line formats
// as DatabaseSpec). Alternatively the endpoint accepts a raw self-contained
// .ldb fragment body under Content-Type application/x-lash-ldb; either way
// items are matched to the base database by name, and existing items may
// not change parents.
type AppendSpec struct {
	Sequences []string `json:"sequences"`
	Hierarchy []string `json:"hierarchy,omitempty"`
}

// buildFragment assembles the append fragment described by spec.
func buildFragment(spec AppendSpec) (*lash.Database, error) {
	if len(spec.Sequences) == 0 {
		return nil, errors.New("sequences is required (or send a raw application/x-lash-ldb fragment body)")
	}
	b := lash.NewDatabaseBuilder()
	if len(spec.Hierarchy) > 0 {
		if err := b.ReadHierarchy(strings.NewReader(strings.Join(spec.Hierarchy, "\n"))); err != nil {
			return nil, fmt.Errorf("hierarchy: %v", err)
		}
	}
	if err := b.ReadSequences(strings.NewReader(strings.Join(spec.Sequences, "\n"))); err != nil {
		return nil, fmt.Errorf("sequences: %v", err)
	}
	return b.Build()
}

// handleAppendSequences answers POST /v1/databases/{name}/sequences: it
// merges the appended sequences onto the database's latest corpus version
// and installs the result as the next version. Old versions stay readable —
// in-flight jobs, version-qualified pattern queries, and cached results
// keep serving the snapshots they were made against — and the response
// carries the database's updated metadata including the new version number.
func (s *Server) handleAppendSequences(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var frag *lash.Database
	if isLDBRequest(r) {
		db, err := readLDB(w, r)
		if err != nil {
			writeError(w, bodyStatus(err), err)
			return
		}
		frag = db
	} else {
		var spec AppendSpec
		if err := decodeJSON(w, r, &spec); err != nil {
			writeError(w, bodyStatus(err), err)
			return
		}
		db, err := buildFragment(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		frag = db
	}
	info, err := s.registry.append(name, frag)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.log.Info("corpus appended", "request_id", requestIDFrom(r.Context()),
		"database", name, "version", info.Version, "sequences", info.NumSequences)
	writeJSON(w, http.StatusOK, info)
}

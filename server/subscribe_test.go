package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"lash"
	"lash/server"
)

// subLine is one decoded NDJSON line of GET /v1/patterns/subscribe.
type subLine struct {
	// Record fields.
	Items   []string `json:"items"`
	Support int64    `json:"support"`
	Replay  bool     `json:"replay"`
	// Marker fields.
	Version int `json:"version"`
	// Trailer fields.
	Done          bool   `json:"done"`
	Database      string `json:"database"`
	CorpusVersion int    `json:"corpus_version"`
	ReplayJobID   string `json:"replay_job_id"`
	Replayed      int    `json:"replayed"`
	LiveJobID     string `json:"live_job_id"`
	Live          int    `json:"live"`
	Error         string `json:"error"`
}

// isMarker reports whether the line is a corpus-version marker rather than
// a pattern record or the trailer.
func (l subLine) isMarker() bool { return !l.Done && l.Items == nil && l.Version != 0 }

// subscribe reads a full subscription stream to its trailer and returns the
// pattern records, the version markers in emission order, and the trailer.
func subscribe(t *testing.T, url string) ([]subLine, []int, subLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe: content-type %q", ct)
	}
	var records []subLine
	var markers []int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line subLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("subscribe: bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if sc.Scan() {
				t.Fatalf("subscribe: data after the trailer: %q", sc.Text())
			}
			return records, markers, line
		}
		if line.isMarker() {
			markers = append(markers, line.Version)
			continue
		}
		records = append(records, line)
	}
	t.Fatalf("subscribe: stream ended without a trailer (after %d records): %v", len(records), sc.Err())
	return nil, nil, subLine{}
}

func patKey(items []string, support int64) string {
	return fmt.Sprintf("%v=%d", items, support)
}

// TestSubscribeReplayOnly covers the degenerate subscription: a database
// with a completed result and nothing mining replays the index and ends.
func TestSubscribeReplayOnly(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	minePatterns(t, ts, "db", map[string]any{"min_support": 1, "max_gap": 1, "max_length": 3})

	status, full := call(t, "GET", ts.URL+"/v1/patterns?db=db", nil)
	if status != http.StatusOK {
		t.Fatal("patterns failed")
	}
	want := patternsOf(t, full)

	records, markers, trailer := subscribe(t, ts.URL+"/v1/patterns/subscribe?db=db")
	if len(records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(records), len(want))
	}
	if len(markers) != 1 || markers[0] != 1 {
		t.Errorf("markers = %v, want one marker for corpus version 1", markers)
	}
	for i, rec := range records {
		if !rec.Replay {
			t.Errorf("record %d not marked replay", i)
		}
		got := fmt.Sprintf("%s=%d", joinItems(rec.Items), rec.Support)
		if got != want[i] {
			t.Errorf("record %d = %s, want %s (serving order must match /v1/patterns)", i, got, want[i])
		}
	}
	if !trailer.Done || trailer.Replayed != len(want) || trailer.Live != 0 ||
		trailer.LiveJobID != "" || trailer.ReplayJobID == "" || trailer.Error != "" {
		t.Errorf("trailer = %+v, want done with %d replayed, no live phase", trailer, len(want))
	}
}

func joinItems(items []string) string {
	out := ""
	for i, it := range items {
		if i > 0 {
			out += " "
		}
		out += it
	}
	return out
}

// TestSubscribeReplayAndLive is the full contract under -race: concurrent
// subscribers each get the complete replay of the latest finished result,
// then the complete live tail of the in-flight run — every pattern exactly
// once, in order — then one trailer.
func TestSubscribeReplayAndLive(t *testing.T) {
	replayPats := []lash.Pattern{
		{Items: []string{"x"}, Support: 9},
		{Items: []string{"x", "y"}, Support: 5},
		{Items: []string{"y"}, Support: 3},
	}
	livePats := make([]lash.Pattern, 40)
	for i := range livePats {
		livePats[i] = lash.Pattern{Items: []string{"live", fmt.Sprintf("p%02d", i)}, Support: int64(100 - i)}
	}

	release := make(chan struct{}) // holds the followed job open
	_, ts := newTestServer(t, server.Config{
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			if opt.MinSupport == 1 { // job A: the completed result to replay
				return &lash.Result{Patterns: append([]lash.Pattern(nil), replayPats...)}, nil
			}
			select { // job B: stays running while subscribers follow
			case <-release:
			case <-ctx.Done():
			}
			return &lash.Result{}, nil
		},
		StreamFunc: func(ctx context.Context, db *lash.Database, opt lash.Options, emit func(lash.Pattern) error) (*lash.Result, error) {
			for _, p := range livePats {
				if err := emit(p); err != nil {
					return nil, err
				}
				time.Sleep(time.Millisecond) // let subscribers interleave with appends
			}
			return &lash.Result{Patterns: append([]lash.Pattern(nil), livePats...)}, nil
		},
	})
	defer close(release)
	mustRegister(t, ts, testSpec("db"))

	minePatterns(t, ts, "db", map[string]any{"min_support": 1, "max_gap": 1, "max_length": 3})
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": map[string]any{"min_support": 2, "max_gap": 1, "max_length": 3}})
	if status != http.StatusAccepted {
		t.Fatalf("submit live job: status %d, body %v", status, body)
	}
	liveID := body["job_id"].(string)

	// Replay serving order: support descending.
	wantReplay := []string{
		patKey([]string{"x"}, 9), patKey([]string{"x", "y"}, 5), patKey([]string{"y"}, 3),
	}
	var wantLive []string
	for _, p := range livePats {
		wantLive = append(wantLive, patKey(p.Items, p.Support))
	}

	var wg sync.WaitGroup
	for sub := 0; sub < 3; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			records, _, trailer := subscribe(t, ts.URL+"/v1/patterns/subscribe?db=db")
			var gotReplay, gotLive []string
			for _, rec := range records {
				if rec.Replay {
					if len(gotLive) > 0 {
						t.Errorf("sub %d: replay record after live records", sub)
					}
					gotReplay = append(gotReplay, patKey(rec.Items, rec.Support))
				} else {
					gotLive = append(gotLive, patKey(rec.Items, rec.Support))
				}
			}
			if !equalStrings(gotReplay, wantReplay) {
				t.Errorf("sub %d: replay = %v, want %v", sub, gotReplay, wantReplay)
			}
			if !equalStrings(gotLive, wantLive) {
				t.Errorf("sub %d: live tail = %v, want %v (no duplicates, no gaps)", sub, gotLive, wantLive)
			}
			if !trailer.Done || trailer.Replayed != len(wantReplay) || trailer.Live != len(wantLive) ||
				trailer.LiveJobID != liveID || trailer.Error != "" {
				t.Errorf("sub %d: trailer = %+v, want replayed=%d live=%d live_job_id=%s",
					sub, trailer, len(wantReplay), len(wantLive), liveID)
			}
		}(sub)
	}
	wg.Wait()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSubscribeLiveOnly: a database with a run in flight but nothing
// completed yet skips the replay phase.
func TestSubscribeLiveOnly(t *testing.T) {
	livePats := []lash.Pattern{
		{Items: []string{"a"}, Support: 2},
		{Items: []string{"b"}, Support: 1},
	}
	release := make(chan struct{})
	_, ts := newTestServer(t, server.Config{
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &lash.Result{}, nil
		},
		StreamFunc: func(ctx context.Context, db *lash.Database, opt lash.Options, emit func(lash.Pattern) error) (*lash.Result, error) {
			for _, p := range livePats {
				if err := emit(p); err != nil {
					return nil, err
				}
			}
			return &lash.Result{}, nil
		},
	})
	defer close(release)
	mustRegister(t, ts, testSpec("db"))
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": testOptions()})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", status, body)
	}

	records, markers, trailer := subscribe(t, ts.URL+"/v1/patterns/subscribe?db=db")
	if len(records) != len(livePats) {
		t.Fatalf("got %d records, want %d", len(records), len(livePats))
	}
	if len(markers) != 1 || markers[0] != 1 {
		t.Errorf("markers = %v, want one marker for corpus version 1", markers)
	}
	for i, rec := range records {
		if rec.Replay {
			t.Errorf("record %d marked replay with nothing completed", i)
		}
		if patKey(rec.Items, rec.Support) != patKey(livePats[i].Items, livePats[i].Support) {
			t.Errorf("record %d = %v/%d, want %v", i, rec.Items, rec.Support, livePats[i])
		}
	}
	if !trailer.Done || trailer.Replayed != 0 || trailer.ReplayJobID != "" || trailer.Live != len(livePats) {
		t.Errorf("trailer = %+v, want live-only with %d patterns", trailer, len(livePats))
	}
}

// TestSubscribeErrors: parameter and not-found paths.
func TestSubscribeErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))

	status, _ := call(t, "GET", ts.URL+"/v1/patterns/subscribe", nil)
	if status != http.StatusBadRequest {
		t.Errorf("missing db: status %d, want 400", status)
	}
	status, _ = call(t, "GET", ts.URL+"/v1/patterns/subscribe?db=nope", nil)
	if status != http.StatusNotFound {
		t.Errorf("unknown db: status %d, want 404", status)
	}
	// Registered but never mined and nothing in flight.
	status, _ = call(t, "GET", ts.URL+"/v1/patterns/subscribe?db=db", nil)
	if status != http.StatusNotFound {
		t.Errorf("nothing to subscribe to: status %d, want 404", status)
	}
}

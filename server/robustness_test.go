package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lash"
	"lash/internal/faults"
	"lash/server"
)

// callRaw sends a JSON request and returns the raw response plus the
// decoded body, for tests that need headers (Retry-After) as well.
func callRaw(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp, out
}

// metricValue scrapes /metrics and returns the value of an unlabeled
// metric line, or -1 if the family is absent.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

// TestShutdownDrainRefusesSubmissions: once Close begins, every new
// submission — including repeats — gets 503 with a Retry-After header,
// /readyz flips to 503 immediately while a job is still draining, and
// /healthz stays green so the orchestrator does not kill the draining
// process.
func TestShutdownDrainRefusesSubmissions(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, server.Config{
		Workers: 1,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			<-gate
			return lash.Mine(db, opt)
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	// Before shutdown the server is ready.
	if resp, body := callRaw(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before shutdown: %d %v", resp.StatusCode, body)
	}

	// One job in flight, blocked on the gate, so Close has to drain.
	status, running := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(),
	})
	if status != http.StatusAccepted {
		t.Fatalf("mine: %d %v", status, running)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- srv.Close(ctx)
	}()

	// Wait for the drain to become observable, then assert the refused
	// state is stable and idempotent across repeated submissions.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := callRaw(t, "GET", ts.URL+"/readyz", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("draining /readyz carries no Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after Close began")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		resp, body := callRaw(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": testOptions(),
		})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit #%d during drain: %d %v, want 503", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("submit #%d during drain: no Retry-After header", i)
		}
		code, msg, retryable := errBody(t, body)
		if code != "shutting_down" || !retryable || !strings.Contains(msg, "shutting down") {
			t.Errorf("submit #%d during drain: envelope %q/%q retryable=%v", i, code, msg, retryable)
		}
	}
	if resp, _ := callRaw(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}

	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestQueueBoundAdmission: submissions that would queue a fresh job past
// MaxQueue are refused with 429 + Retry-After, while coalescible and
// cached submissions are still admitted — saturation never degrades
// requests that cost no queue slot.
func TestQueueBoundAdmission(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, ts := newTestServer(t, server.Config{
		Workers:  1,
		MaxQueue: 1,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			<-gate
			return lash.Mine(db, opt)
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	distinct := func(maxLength int) map[string]any {
		opts := testOptions()
		opts["max_length"] = maxLength
		return map[string]any{"database": "paper", "options": opts}
	}

	// Job A occupies the single worker...
	status, a := call(t, "POST", ts.URL+"/v1/mine", distinct(3))
	if status != http.StatusAccepted {
		t.Fatalf("job A: %d %v", status, a)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
		if stats["jobs"].(map[string]any)["running"].(float64) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// ...job B fills the queue...
	status, b := call(t, "POST", ts.URL+"/v1/mine", distinct(4))
	if status != http.StatusAccepted {
		t.Fatalf("job B: %d %v", status, b)
	}

	// ...so a third distinct job is refused with 429 + Retry-After.
	resp, body := callRaw(t, "POST", ts.URL+"/v1/mine", distinct(5))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: %d %v, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}

	// The saturated queue also flips readiness.
	if resp, _ := callRaw(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with saturated queue: %d, want 503", resp.StatusCode)
	}

	// A repeat of job B's request coalesces — no queue slot, still admitted.
	status, coalesced := call(t, "POST", ts.URL+"/v1/mine", distinct(4))
	if status != http.StatusAccepted || coalesced["job_id"] != b["job_id"] {
		t.Fatalf("coalescible submit during saturation: %d %v, want job %v", status, coalesced, b["job_id"])
	}
}

// TestRateLimit429: a client past its token bucket gets 429 + Retry-After
// and the rejection is counted; probe and scrape endpoints stay exempt so
// monitoring cannot be starved by its own subject.
func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, server.Config{RateLimit: 0.1, RateBurst: 2})

	for i := 0; i < 2; i++ {
		if resp, body := callRaw(t, "GET", ts.URL+"/v1/jobs", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("request #%d within burst: %d %v", i, resp.StatusCode, body)
		}
	}
	resp, body := callRaw(t, "GET", ts.URL+"/v1/jobs", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: %d %v, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited response carries no Retry-After")
	}
	if code, msg, retryable := errBody(t, body); code != "overloaded" || !retryable ||
		(!strings.Contains(msg, "rate") && !strings.Contains(msg, "overloaded")) {
		t.Errorf("rate-limited envelope %q/%q retryable=%v is wrong", code, msg, retryable)
	}

	// Exempt endpoints keep answering, including /metrics — which must now
	// show exactly one rejection.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exempt %s under rate limit: %d, want 200", path, resp.StatusCode)
		}
	}
	if got := metricValue(t, ts, "lash_http_rate_limited_total"); got != 1 {
		t.Errorf("lash_http_rate_limited_total = %g, want 1", got)
	}
}

// TestDeadlineJobFailsFast mirrors the cancellation-latency test at the
// service level: on a 50k-sequence generated corpus, a job whose
// deadline_ms expires mid-run must reach `failed` within a second of the
// deadline, carry a deadline-shaped error, and count into
// lash_jobs_deadline_exceeded_total.
func TestDeadlineJobFailsFast(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, server.DatabaseSpec{Name: "big", Generator: "text", Size: 50000, Seed: 7})

	const deadlineMS = 150
	begin := time.Now()
	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "big",
		"options": map[string]any{
			"min_support": 2, "max_gap": 2, "max_length": 5, "deadline_ms": deadlineMS,
		},
		"wait": true,
	})
	elapsed := time.Since(begin)
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, body)
	}
	if body["status"] != "failed" {
		t.Skipf("run finished before the deadline (status %v); nothing to assert", body["status"])
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "deadline") {
		t.Errorf("deadline-exceeded job error %q does not mention the deadline", msg)
	}
	if over := elapsed - deadlineMS*time.Millisecond; over > time.Second {
		t.Errorf("job failed %v after its deadline, want < 1s", over)
	}
	if got := metricValue(t, ts, "lash_jobs_deadline_exceeded_total"); got != 1 {
		t.Errorf("lash_jobs_deadline_exceeded_total = %g, want 1", got)
	}
}

// TestDeadlinePreExpiredJob: a submit whose deadline has effectively
// already passed fails without mining anything.
func TestDeadlinePreExpiredJob(t *testing.T) {
	var mined bool
	_, ts := newTestServer(t, server.Config{
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			mined = true // reached only if the deadline were ignored
			return lash.MineContext(ctx, db, opt)
		},
		MaxJobTime: time.Nanosecond, // the server cap pre-expires every run
	})
	mustRegister(t, ts, testSpec("paper"))

	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, body)
	}
	if body["status"] != "failed" {
		t.Fatalf("job = %v, want failed", body)
	}
	if body["result"] != nil {
		t.Errorf("pre-expired job produced a result: %v", body["result"])
	}
	_ = mined // the MineFunc runs, but lash.MineContext refuses before any task
	if got := metricValue(t, ts, "lash_jobs_deadline_exceeded_total"); got != 1 {
		t.Errorf("lash_jobs_deadline_exceeded_total = %g, want 1", got)
	}
}

// TestRequestDeadlineCappedByServer: deadline_ms may tighten -max-job-time
// but never loosen it.
func TestRequestDeadlineCappedByServer(t *testing.T) {
	var got lash.Options
	_, ts := newTestServer(t, server.Config{
		// Deadlines are canonicalized out of the cache key, so repeats of the
		// same mining options would be answered from cache without ever
		// reaching the MineFunc. Disable caching so every submit runs.
		CacheSize:  -1,
		MaxJobTime: 50 * time.Millisecond,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			got = opt
			return lash.MineContext(ctx, db, opt)
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	mine := func(deadlineMS int64) {
		t.Helper()
		opts := testOptions()
		if deadlineMS != 0 {
			opts["deadline_ms"] = deadlineMS
		}
		if status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": opts, "wait": true,
		}); status != http.StatusOK {
			t.Fatalf("mine: %d %v", status, body)
		}
	}
	mine(0) // no request deadline → the server cap applies
	if got.Deadline != 50*time.Millisecond {
		t.Errorf("uncapped request ran with Deadline %v, want the 50ms server cap", got.Deadline)
	}
	mine(3600000) // an hour-long request deadline is clamped down...
	if got.Deadline != 50*time.Millisecond {
		t.Errorf("loose request deadline ran as %v, want clamped to 50ms", got.Deadline)
	}
	mine(10) // ...but a tighter one wins.
	if got.Deadline != 10*time.Millisecond {
		t.Errorf("tight request deadline ran as %v, want 10ms", got.Deadline)
	}
}

// TestCorpusLoadFaultInjection: the server.corpus.load injection point
// fails a registration as a server-side 500 — not a bad request — and the
// registry stays consistent for the retry.
func TestCorpusLoadFaultInjection(t *testing.T) {
	reg := &faults.Registry{}
	reg.FailNth("server.corpus.load", 1, faults.Error)
	_, ts := newTestServer(t, server.Config{Faults: reg})

	status, body := call(t, "POST", ts.URL+"/v1/databases", testSpec("paper"))
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted registration: %d %v, want 500", status, body)
	}
	if code, msg, _ := errBody(t, body); code != "internal" || !strings.Contains(msg, "injected fault") {
		t.Errorf("envelope %q/%q does not carry the injection sentinel text", code, msg)
	}
	// The point fired once; the retry loads cleanly under the same name.
	mustRegister(t, ts, testSpec("paper"))
	if n := reg.Injected(); n != 1 {
		t.Errorf("registry injected %d faults, want 1", n)
	}
}

// TestRetriedJobReportsCounters: a run with an armed pipeline fault and a
// retry budget succeeds, and the wire result reports the retry work.
func TestRetriedJobReportsCounters(t *testing.T) {
	reg := &faults.Registry{}
	reg.FailNth("mapreduce.map.task", 1, faults.Error)
	_, ts := newTestServer(t, server.Config{Faults: reg})
	mustRegister(t, ts, testSpec("paper"))

	opts := testOptions()
	opts["max_attempts"] = 3
	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": opts, "wait": true,
	})
	if status != http.StatusOK || body["status"] != "done" {
		t.Fatalf("mine with injected fault + retries: %d %v", status, body)
	}
	result := body["result"].(map[string]any)
	if result["task_retries"].(float64) != 1 || result["faults_injected"].(float64) != 1 {
		t.Errorf("result retry counters = %v/%v, want 1/1",
			result["task_retries"], result["faults_injected"])
	}
}

// TestRobustnessSpecValidation: negative robustness knobs on the wire are
// rejected as bad requests.
func TestRobustnessSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("paper"))
	for _, opts := range []map[string]any{
		{"min_support": 2, "max_gap": 1, "max_length": 3, "deadline_ms": -1},
		{"min_support": 2, "max_gap": 1, "max_length": 3, "max_attempts": -1},
	} {
		status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": opts,
		})
		if status != http.StatusBadRequest {
			t.Errorf("options %v: status %d, want 400 (%v)", opts, status, body)
		}
	}
}

// TestReadyzReportsSpillSpace: the readiness check refreshes the
// free-space gauge for the spill filesystem.
func TestReadyzReportsSpillSpace(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	if resp, body := callRaw(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d %v", resp.StatusCode, body)
	}
	if free := metricValue(t, ts, "lash_spill_dir_free_bytes"); free <= 0 {
		t.Errorf("lash_spill_dir_free_bytes = %g after readyz, want > 0 on this platform", free)
	}
}

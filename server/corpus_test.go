package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lash"
	"lash/server"
)

// This file tests the live-corpora API surface: the append endpoint and
// corpus versioning, .ldb uploads, version-qualified mining and pattern
// queries, delta re-mines through the HTTP API, subscriptions surviving
// appends, and the uniform error envelope.

// rawPost sends a request with an explicit Content-Type and raw body.
func rawPost(t *testing.T, url, contentType string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestErrorEnvelope is the table-driven contract test of satellite 1: every
// non-2xx response carries {"error": {"code", "message", "retryable"}} with
// a stable snake_case code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   string
	}{
		{"register duplicate name", "POST", "/v1/databases", testSpec("db"),
			http.StatusConflict, "conflict"},
		{"register without source", "POST", "/v1/databases", map[string]any{"name": "empty"},
			http.StatusBadRequest, "bad_request"},
		{"get unknown database", "GET", "/v1/databases/nope", nil,
			http.StatusNotFound, "not_found"},
		{"bad pagination cursor", "GET", "/v1/databases?cursor=%21%21", nil,
			http.StatusBadRequest, "bad_request"},
		{"mine without database", "POST", "/v1/mine", map[string]any{"options": testOptions()},
			http.StatusBadRequest, "bad_request"},
		{"mine unknown database", "POST", "/v1/mine",
			map[string]any{"database": "nope", "options": testOptions()},
			http.StatusNotFound, "not_found"},
		{"mine unknown version", "POST", "/v1/mine",
			map[string]any{"database": "db", "version": 9, "options": testOptions()},
			http.StatusNotFound, "not_found"},
		{"mine bad options", "POST", "/v1/mine",
			map[string]any{"database": "db", "options": map[string]any{"min_support": -1}},
			http.StatusBadRequest, "bad_request"},
		{"stream unknown database", "POST", "/v1/mine/stream",
			map[string]any{"database": "nope", "options": testOptions()},
			http.StatusNotFound, "not_found"},
		{"poll unknown job", "GET", "/v1/jobs/job-999", nil,
			http.StatusNotFound, "job_not_found"},
		{"cancel unknown job", "DELETE", "/v1/jobs/job-999", nil,
			http.StatusNotFound, "job_not_found"},
		{"patterns without params", "GET", "/v1/patterns", nil,
			http.StatusBadRequest, "bad_request"},
		{"patterns unknown database", "GET", "/v1/patterns?db=nope", nil,
			http.StatusNotFound, "not_found"},
		{"patterns bad version", "GET", "/v1/patterns?db=db&version=zero", nil,
			http.StatusBadRequest, "bad_request"},
		{"patterns unmined version", "GET", "/v1/patterns?db=db&version=3", nil,
			http.StatusNotFound, "not_found"},
		{"subscribe unknown database", "GET", "/v1/patterns/subscribe?db=nope", nil,
			http.StatusNotFound, "not_found"},
		{"append unknown database", "POST", "/v1/databases/nope/sequences",
			map[string]any{"sequences": []string{"a b"}},
			http.StatusNotFound, "not_found"},
		{"append without sequences", "POST", "/v1/databases/db/sequences", map[string]any{},
			http.StatusBadRequest, "bad_request"},
		{"append re-parents an item", "POST", "/v1/databases/db/sequences",
			map[string]any{"sequences": []string{"b1 c"}, "hierarchy": []string{"b1 D"}},
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := call(t, tc.method, ts.URL+tc.path, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %v)", status, tc.wantStatus, body)
			}
			code, msg, retryable := errBody(t, body)
			if code != tc.wantCode {
				t.Errorf("code = %q, want %q", code, tc.wantCode)
			}
			if msg == "" {
				t.Error("message is empty")
			}
			if retryable {
				t.Error("retryable = true; none of these refusals should be retried")
			}
		})
	}

	// .ldb-specific envelope cases need raw bodies.
	t.Run("ldb upload without name", func(t *testing.T) {
		status, body := rawPost(t, ts.URL+"/v1/databases", "application/x-lash-ldb", []byte("whatever"))
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (body %v)", status, body)
		}
		if code, _, _ := errBody(t, body); code != "bad_request" {
			t.Errorf("code = %q, want bad_request", code)
		}
	})
	t.Run("ldb upload bad magic", func(t *testing.T) {
		status, body := rawPost(t, ts.URL+"/v1/databases?name=ldb", "application/x-lash-ldb", []byte(`{"json":"not ldb"}`))
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (body %v)", status, body)
		}
		code, msg, _ := errBody(t, body)
		if code != "bad_request" || !strings.Contains(msg, "magic") {
			t.Errorf("code = %q, message = %q; want bad_request mentioning the magic", code, msg)
		}
	})
}

// TestDatabasesPagination: GET /v1/databases shares the opaque limit/cursor
// contract with the other list endpoints.
func TestDatabasesPagination(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var wantNames []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("db%d", i)
		mustRegister(t, ts, testSpec(name))
		wantNames = append(wantNames, name)
	}

	var got []string
	url := ts.URL + "/v1/databases?limit=2"
	for pages := 0; ; pages++ {
		if pages > 4 {
			t.Fatal("pagination did not terminate")
		}
		status, body := call(t, "GET", url, nil)
		if status != http.StatusOK {
			t.Fatalf("list: status %d, body %v", status, body)
		}
		if total := int(body["total"].(float64)); total != len(wantNames) {
			t.Fatalf("total = %d, want %d", total, len(wantNames))
		}
		for _, d := range body["databases"].([]any) {
			info := d.(map[string]any)
			got = append(got, info["name"].(string))
			if v := int(info["version"].(float64)); v != 1 {
				t.Errorf("%s: version = %d, want 1", info["name"], v)
			}
			for _, field := range []string{"created_at", "updated_at", "num_sequences"} {
				if _, ok := info[field]; !ok {
					t.Errorf("%s: view is missing %s", info["name"], field)
				}
			}
		}
		cursor, more := body["next_cursor"].(string)
		if !more {
			break
		}
		url = ts.URL + "/v1/databases?limit=2&cursor=" + cursor
	}
	if strings.Join(got, ",") != strings.Join(wantNames, ",") {
		t.Errorf("paged names = %v, want %v (registration order)", got, wantNames)
	}
}

// TestAppendAndVersions: POST /v1/databases/{name}/sequences installs a new
// corpus version; old versions stay mineable and queryable.
func TestAppendAndVersions(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))

	status, info := call(t, "POST", ts.URL+"/v1/databases/db/sequences",
		map[string]any{"sequences": []string{"a b1 c", "c b2 c"}})
	if status != http.StatusOK {
		t.Fatalf("append: status %d, body %v", status, info)
	}
	if v := int(info["version"].(float64)); v != 2 {
		t.Fatalf("append: version = %d, want 2", v)
	}
	if n := int(info["num_sequences"].(float64)); n != 5 {
		t.Fatalf("append: num_sequences = %d, want 5", n)
	}

	// The registry view reflects the append.
	status, view := call(t, "GET", ts.URL+"/v1/databases/db", nil)
	if status != http.StatusOK || int(view["version"].(float64)) != 2 {
		t.Fatalf("get after append: status %d, body %v", status, view)
	}
	if view["created_at"] == view["updated_at"] {
		t.Error("updated_at did not advance past created_at on append")
	}

	// Mining version 1 explicitly sees the pre-append corpus; the default
	// (version 0) sees the appended one. "b2 c" is frequent only with the
	// appended "c b2 c" sequence.
	mineAt := func(version int) map[string]int64 {
		req := map[string]any{"database": "db", "options": map[string]any{
			"min_support": 2, "max_gap": 0, "max_length": 2}, "wait": true}
		if version != 0 {
			req["version"] = version
		}
		status, body := call(t, "POST", ts.URL+"/v1/mine", req)
		if status != http.StatusOK || body["status"] != "done" {
			t.Fatalf("mine version %d: status %d, body %v", version, status, body)
		}
		res := body["result"].(map[string]any)
		wantVer := version
		if wantVer == 0 {
			wantVer = 2
		}
		if cv := int(res["corpus_version"].(float64)); cv != wantVer {
			t.Fatalf("mine version %d: corpus_version = %d, want %d", version, cv, wantVer)
		}
		return patternSet(t, body)
	}
	v1 := mineAt(1)
	v2 := mineAt(0)
	if _, ok := v1["b2 c "]; ok {
		t.Errorf("v1 patterns %v: 'b2 c' frequent before the append", v1)
	}
	if sup, ok := v2["b2 c "]; !ok || sup != 2 {
		t.Errorf("v2 patterns %v: want 'b2 c' with support 2", v2)
	}

	// Version-qualified pattern queries read the matching result.
	status, body := call(t, "GET", ts.URL+"/v1/patterns?db=db&version=1&limit=100", nil)
	if status != http.StatusOK || int(body["corpus_version"].(float64)) != 1 {
		t.Fatalf("patterns version=1: status %d, body %v", status, body)
	}
	status, body = call(t, "GET", ts.URL+"/v1/patterns?db=db", nil)
	if status != http.StatusOK || int(body["corpus_version"].(float64)) != 2 {
		t.Fatalf("patterns default version: status %d, body %v (want latest-complete = 2)", status, body)
	}
}

// TestLDBUploadAndAppend: registration and appends accept raw binary .ldb
// bodies under Content-Type application/x-lash-ldb.
func TestLDBUploadAndAppend(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	var buf bytes.Buffer
	if err := testDB(t).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	status, info := rawPost(t, ts.URL+"/v1/databases?name=bin", "application/x-lash-ldb", buf.Bytes())
	if status != http.StatusCreated {
		t.Fatalf("upload: status %d, body %v", status, info)
	}
	if info["source"] != "upload:ldb" || int(info["num_sequences"].(float64)) != 3 {
		t.Fatalf("upload: info %v, want source upload:ldb with 3 sequences", info)
	}

	// The uploaded corpus mines like its inline twin.
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "bin", "options": testOptions(), "wait": true})
	if status != http.StatusOK || body["status"] != "done" {
		t.Fatalf("mine upload: status %d, body %v", status, body)
	}
	want, err := lash.Mine(testDB(t), lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := patternSet(t, body)
	if len(got) != len(want.Patterns) {
		t.Fatalf("mined %d patterns, want %d", len(got), len(want.Patterns))
	}

	// A self-contained .ldb fragment appends by item name.
	fb := lash.NewDatabaseBuilder()
	fb.AddParent("b1", "B")
	fb.AddSequence("a", "b1", "a")
	frag, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := frag.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	status, info = rawPost(t, ts.URL+"/v1/databases/bin/sequences", "application/x-lash-ldb", buf.Bytes())
	if status != http.StatusOK {
		t.Fatalf("append .ldb: status %d, body %v", status, info)
	}
	if v := int(info["version"].(float64)); v != 2 {
		t.Fatalf("append .ldb: version = %d, want 2", v)
	}
	if n := int(info["num_sequences"].(float64)); n != 4 {
		t.Fatalf("append .ldb: num_sequences = %d, want 4", n)
	}
}

// liveCorpus returns base sequences over a fixed vocabulary: every
// item w0..w4 is frequent, spread over several partitions.
func liveCorpusSequences() []string {
	out := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		out = append(out, fmt.Sprintf("w%d w%d w%d", i%5, (i+1)%5, (i+2)%5))
	}
	return out
}

// TestLiveCorporaEndToEnd is the e2e flow of the tentpole: register → mine
// (capturing state server-side) → append → re-mine (a delta run that
// splices clean partitions) → query. The delta result must equal a cold
// mine of the appended corpus, and must actually have reused partitions.
func TestLiveCorporaEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	base := liveCorpusSequences()
	mustRegister(t, ts, server.DatabaseSpec{Name: "db", Sequences: base})

	opts := map[string]any{"min_support": 5, "max_gap": 1, "max_length": 3}
	mine := func(dbName string) map[string]any {
		status, body := call(t, "POST", ts.URL+"/v1/mine",
			map[string]any{"database": dbName, "options": opts, "wait": true})
		if status != http.StatusOK || body["status"] != "done" {
			t.Fatalf("mine %s: status %d, body %v", dbName, status, body)
		}
		return body
	}
	mine("db") // v1 run: captures delta state server-side

	// Append sequences over a brand-new vocabulary: old partitions stay
	// clean, so the v2 re-mine can splice them from the captured state.
	extra := []string{"n1 n2 n3", "n1 n2 n3", "n1 n2 n3", "n2 n3 n1", "n2 n3 n1", "n3 n1 n2"}
	status, info := call(t, "POST", ts.URL+"/v1/databases/db/sequences",
		map[string]any{"sequences": extra})
	if status != http.StatusOK || int(info["version"].(float64)) != 2 {
		t.Fatalf("append: status %d, body %v", status, info)
	}

	v2 := mine("db") // delta run against version 2
	res := v2["result"].(map[string]any)
	if cv := int(res["corpus_version"].(float64)); cv != 2 {
		t.Errorf("corpus_version = %d, want 2", cv)
	}
	reused, _ := res["delta_partitions_reused"].(float64)
	if reused <= 0 {
		t.Errorf("delta_partitions_reused = %v, want > 0 (the re-mine should splice clean partitions)", reused)
	}

	// Differential: the delta-mined v2 result equals a cold mine of the
	// same corpus registered fresh (same serving order, same supports).
	mustRegister(t, ts, server.DatabaseSpec{Name: "cold", Sequences: append(append([]string{}, base...), extra...)})
	mine("cold")
	status, deltaPats := call(t, "GET", ts.URL+"/v1/patterns?db=db", nil)
	if status != http.StatusOK {
		t.Fatalf("patterns db: status %d", status)
	}
	status, coldPats := call(t, "GET", ts.URL+"/v1/patterns?db=cold", nil)
	if status != http.StatusOK {
		t.Fatalf("patterns cold: status %d", status)
	}
	got, want := patternsOf(t, deltaPats), patternsOf(t, coldPats)
	if len(got) == 0 || strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("delta-mined patterns diverge from cold mine:\ngot  %v\nwant %v", got, want)
	}

	// The pre-append result stays queryable under version=1.
	status, body := call(t, "GET", ts.URL+"/v1/patterns?db=db&version=1", nil)
	if status != http.StatusOK || int(body["corpus_version"].(float64)) != 1 {
		t.Fatalf("patterns version=1 after append: status %d, body %v", status, body)
	}
}

// TestSubscribeSurvivesAppend: a subscription tailing a live run does not
// end when an append installs a new corpus version — it emits a version
// marker and continues with the new version's live run.
func TestSubscribeSurvivesAppend(t *testing.T) {
	patsA := []lash.Pattern{{Items: []string{"a1"}, Support: 4}, {Items: []string{"a2"}, Support: 3}}
	patsB := []lash.Pattern{{Items: []string{"b1"}, Support: 2}, {Items: []string{"b2"}, Support: 1}}
	streamAStarted := make(chan struct{})
	appendInstalled := make(chan struct{})
	baseSeqs := len(testSpec("db").Sequences)

	_, ts := newTestServer(t, server.Config{
		// Async jobs park until shutdown so the subscription always finds
		// them in flight; the feeders do the actual delivering.
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
		StreamFunc: func(ctx context.Context, db *lash.Database, opt lash.Options, emit func(lash.Pattern) error) (*lash.Result, error) {
			if db.NumSequences() == baseSeqs { // feeder for the version-1 run
				for _, p := range patsA {
					if err := emit(p); err != nil {
						return nil, err
					}
				}
				close(streamAStarted)
				<-appendInstalled // hold v1 open until the append landed
				return &lash.Result{}, nil
			}
			for _, p := range patsB { // feeder for the version-2 run
				if err := emit(p); err != nil {
					return nil, err
				}
			}
			return &lash.Result{}, nil
		},
	})
	mustRegister(t, ts, testSpec("db"))

	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": testOptions()})
	if status != http.StatusAccepted {
		t.Fatalf("submit v1 job: status %d, body %v", status, body)
	}

	type subResult struct {
		records []subLine
		markers []int
		trailer subLine
	}
	got := make(chan subResult, 1)
	go func() {
		records, markers, trailer := subscribe(t, ts.URL+"/v1/patterns/subscribe?db=db")
		got <- subResult{records, markers, trailer}
	}()

	<-streamAStarted // the subscriber is attached and has v1's patterns in flight
	status, info := call(t, "POST", ts.URL+"/v1/databases/db/sequences",
		map[string]any{"sequences": []string{"a b1 c"}})
	if status != http.StatusOK || int(info["version"].(float64)) != 2 {
		t.Fatalf("append: status %d, body %v", status, info)
	}
	status, body = call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": testOptions()})
	if status != http.StatusAccepted {
		t.Fatalf("submit v2 job: status %d, body %v", status, body)
	}
	liveBID := body["job_id"].(string)
	close(appendInstalled) // let v1's feeder finish; the subscription re-follows

	var sub subResult
	select {
	case sub = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription did not reach its trailer")
	}

	var items []string
	for _, rec := range sub.records {
		if rec.Replay {
			t.Errorf("record %v marked replay with nothing completed", rec.Items)
		}
		items = append(items, strings.Join(rec.Items, " "))
	}
	if want := []string{"a1", "a2", "b1", "b2"}; !equalStrings(items, want) {
		t.Errorf("live records = %v, want %v (v1 tail, then v2 tail)", items, want)
	}
	if want := []int{1, 2}; len(sub.markers) != 2 || sub.markers[0] != 1 || sub.markers[1] != 2 {
		t.Errorf("version markers = %v, want %v", sub.markers, want)
	}
	tr := sub.trailer
	if !tr.Done || tr.CorpusVersion != 2 || tr.Live != 4 || tr.LiveJobID != liveBID || tr.Error != "" {
		t.Errorf("trailer = %+v, want done at corpus_version 2 with live=4 from %s", tr, liveBID)
	}
}

// TestConcurrentAppendsRace exercises appends racing in-flight mining,
// subscriptions, and pattern queries (run under -race). Appends must
// serialize into a gapless version history while everything else keeps
// serving consistent snapshots.
func TestConcurrentAppendsRace(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, server.DatabaseSpec{Name: "db", Sequences: liveCorpusSequences()})

	const appenders, appendsEach = 3, 3
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < appendsEach; i++ {
				status, body := call(t, "POST", ts.URL+"/v1/databases/db/sequences",
					map[string]any{"sequences": []string{
						fmt.Sprintf("x%d_%d y%d_%d x%d_%d", g, i, g, i, g, i)}})
				if status != http.StatusOK {
					t.Errorf("append %d/%d: status %d, body %v", g, i, status, body)
				}
			}
		}(g)
	}
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
					"database": "db", "wait": true,
					"options": map[string]any{"min_support": 5, "max_gap": 1, "max_length": 3}})
				if status != http.StatusOK || body["status"] != "done" {
					t.Errorf("mine: status %d, body %v", status, body)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // queries racing the appends: any answered snapshot is fine
		defer wg.Done()
		for i := 0; i < 10; i++ {
			status, _ := call(t, "GET", ts.URL+"/v1/patterns?db=db&limit=5", nil)
			if status != http.StatusOK && status != http.StatusNotFound {
				t.Errorf("patterns during appends: status %d", status)
			}
		}
	}()
	wg.Add(1)
	go func() { // subscriptions racing the appends
		defer wg.Done()
		for i := 0; i < 3; i++ {
			resp, err := http.Get(ts.URL + "/v1/patterns/subscribe?db=db")
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining only
			resp.Body.Close()
		}
	}()
	wg.Wait()

	status, view := call(t, "GET", ts.URL+"/v1/databases/db", nil)
	if status != http.StatusOK {
		t.Fatalf("get db: status %d", status)
	}
	wantVersion := 1 + appenders*appendsEach
	if v := int(view["version"].(float64)); v != wantVersion {
		t.Errorf("final version = %d, want %d (appends must serialize without gaps)", v, wantVersion)
	}
	if n := int(view["num_sequences"].(float64)); n != 30+appenders*appendsEach {
		t.Errorf("final num_sequences = %d, want %d", n, 30+appenders*appendsEach)
	}

	// After the dust settles the latest version delta-mines correctly.
	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "db", "wait": true,
		"options": map[string]any{"min_support": 5, "max_gap": 1, "max_length": 3}})
	if status != http.StatusOK || body["status"] != "done" {
		t.Fatalf("final mine: status %d, body %v", status, body)
	}
	res := body["result"].(map[string]any)
	if cv := int(res["corpus_version"].(float64)); cv != wantVersion {
		t.Errorf("final corpus_version = %d, want %d", cv, wantVersion)
	}
}

package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"lash"
	"lash/server"
)

// blockingMine returns a MineFunc that signals when mining starts and then
// blocks until its context is cancelled (returning the ctx error) or the
// release channel closes (returning a result).
func blockingMine(started chan<- string, release <-chan struct{}) server.MineFunc {
	return func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
		select {
		case started <- opt.CacheKey():
		default:
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &lash.Result{Patterns: []lash.Pattern{{Items: []string{"a"}, Support: 2}}}, nil
		}
	}
}

// TestCancelRunningJob: DELETE /v1/jobs/{id} moves a running job — and
// every request coalesced onto it — to the cancelled state, frees the
// singleflight slot, and shows up in the stats counters.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, server.Config{Workers: 1, MineFunc: blockingMine(started, release)})
	mustRegister(t, ts, testSpec("db"))

	req := map[string]any{"database": "db", "options": testOptions()}
	status, body := call(t, "POST", ts.URL+"/v1/mine", req)
	if status != http.StatusAccepted {
		t.Fatalf("mine: status %d, body %v", status, body)
	}
	id := body["job_id"].(string)
	<-started // mining is in flight

	// A second identical submit coalesces onto the running job.
	status, body2 := call(t, "POST", ts.URL+"/v1/mine", req)
	if status != http.StatusAccepted || body2["job_id"].(string) != id {
		t.Fatalf("expected coalesced submit onto %s, got status %d body %v", id, status, body2)
	}

	status, body = call(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("cancel: status %d, body %v", status, body)
	}
	final := waitForJob(t, ts, id)
	if final["status"] != "cancelled" {
		t.Fatalf("job status = %v, want cancelled (body %v)", final["status"], final)
	}
	if errStr, _ := final["error"].(string); !strings.Contains(errStr, "cancel") {
		t.Errorf("cancelled job error = %q, want it to mention cancellation", errStr)
	}

	// Cancelling again is idempotent; the coalesced view shows the same
	// terminal job for both submitters.
	status, _ = call(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if status != http.StatusOK {
		t.Errorf("second cancel: status %d, want 200", status)
	}

	// The singleflight slot is free: an identical resubmit starts fresh.
	status, body = call(t, "POST", ts.URL+"/v1/mine", req)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit after cancel: status %d, body %v", status, body)
	}
	if body["job_id"].(string) == id {
		t.Errorf("resubmit coalesced onto the cancelled job %s", id)
	}

	status, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	jobs := stats["jobs"].(map[string]any)
	if n := jobs["cancelled"].(float64); n != 1 {
		t.Errorf("stats cancelled = %v, want 1", n)
	}
	if n := jobs["coalesced"].(float64); n != 1 {
		t.Errorf("stats coalesced = %v, want 1", n)
	}
}

// TestCancelQueuedJob: a job still waiting for a worker slot cancels
// without ever running the mining function.
func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, server.Config{Workers: 1, MineFunc: blockingMine(started, release)})
	mustRegister(t, ts, testSpec("db"))

	// Fill the single worker slot.
	_, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{"database": "db", "options": testOptions()})
	blockerID := body["job_id"].(string)
	<-started

	// Queue a different job behind it, then cancel it while queued.
	opts2 := testOptions()
	opts2["min_support"] = 3
	_, body = call(t, "POST", ts.URL+"/v1/mine", map[string]any{"database": "db", "options": opts2})
	queuedID := body["job_id"].(string)

	status, _ := call(t, "DELETE", ts.URL+"/v1/jobs/"+queuedID, nil)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("cancel queued: status %d", status)
	}
	final := waitForJob(t, ts, queuedID)
	if final["status"] != "cancelled" {
		t.Fatalf("queued job status = %v, want cancelled", final["status"])
	}

	// The blocker was untouched by the queued job's cancellation: it is
	// still running, and cancelling it works independently.
	status, body = call(t, "GET", ts.URL+"/v1/jobs/"+blockerID, nil)
	if status != http.StatusOK || body["status"] != "running" {
		t.Fatalf("blocker: status %d state %v, want running", status, body["status"])
	}
	call(t, "DELETE", ts.URL+"/v1/jobs/"+blockerID, nil)
	final = waitForJob(t, ts, blockerID)
	if final["status"] != "cancelled" {
		t.Fatalf("blocker status = %v, want cancelled after explicit cancel", final["status"])
	}
}

// TestCancelConflicts: cancelling a finished job is a 409; an unknown job
// a 404.
func TestCancelConflicts(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": testOptions(), "wait": true})
	if status != http.StatusOK {
		t.Fatalf("mine: status %d body %v", status, body)
	}
	id := body["job_id"].(string)

	status, _ = call(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if status != http.StatusConflict {
		t.Errorf("cancel done job: status %d, want 409", status)
	}
	status, _ = call(t, "DELETE", ts.URL+"/v1/jobs/job-999", nil)
	if status != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", status)
	}
}

// TestJobDurations: terminal jobs report their mining wall-clock in
// runtime_ms, and the stats counters accumulate it.
func TestJobDurations(t *testing.T) {
	slowMine := func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &lash.Result{}, nil
	}
	_, ts := newTestServer(t, server.Config{MineFunc: slowMine})
	mustRegister(t, ts, testSpec("db"))
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": testOptions(), "wait": true})
	if status != http.StatusOK {
		t.Fatalf("mine: status %d body %v", status, body)
	}
	if ms, _ := body["runtime_ms"].(float64); ms < 25 {
		t.Errorf("runtime_ms = %v, want ≥ 25 for a 30ms mine", ms)
	}
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if ms, _ := jobs["run_time_ms"].(float64); ms < 25 {
		t.Errorf("stats run_time_ms = %v, want ≥ 25", ms)
	}
	if _, present := jobs["queue_time_ms"]; !present {
		t.Errorf("stats are missing queue_time_ms (mine_time_ms was split into queue_time_ms + run_time_ms)")
	}
}

// streamLines POSTs to /v1/mine/stream and returns the decoded NDJSON
// records.
func streamLines(t *testing.T, url string, req any) (int, []map[string]any) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/mine/stream", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error responses are one pretty-printed JSON object, not NDJSON.
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, []map[string]any{m}
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

// TestMineStreamEndpoint: POST /v1/mine/stream delivers one NDJSON record
// per pattern and exactly one trailer carrying the run summary.
func TestMineStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))

	status, lines := streamLines(t, ts.URL, map[string]any{"database": "db", "options": testOptions()})
	if status != http.StatusOK {
		t.Fatalf("stream: status %d", status)
	}
	if len(lines) == 0 {
		t.Fatal("no NDJSON records")
	}
	trailer := lines[len(lines)-1]
	if trailer["done"] != true {
		t.Fatalf("last record is not the trailer: %v", trailer)
	}
	if errStr, _ := trailer["error"].(string); errStr != "" {
		t.Fatalf("trailer error: %s", errStr)
	}
	patterns := lines[:len(lines)-1]
	if got := int(trailer["patterns"].(float64)); got != len(patterns) {
		t.Errorf("trailer counts %d patterns, %d records streamed", got, len(patterns))
	}

	// The streamed set matches a direct library run.
	want, err := lash.Mine(testDB(t), lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[string]int64{}
	for _, p := range want.Patterns {
		wantSet[strings.Join(p.Items, " ")] = p.Support
	}
	for _, rec := range patterns {
		if rec["done"] != nil {
			t.Fatalf("pattern record carries done field: %v", rec)
		}
		var items []string
		for _, it := range rec["items"].([]any) {
			items = append(items, it.(string))
		}
		key := strings.Join(items, " ")
		if wantSet[key] != int64(rec["support"].(float64)) {
			t.Errorf("streamed %q support %v, library says %d", key, rec["support"], wantSet[key])
		}
		delete(wantSet, key)
	}
	if len(wantSet) != 0 {
		t.Errorf("patterns not streamed: %v", wantSet)
	}
	if n := int(trailer["num_partitions"].(float64)); n != want.NumPartitions {
		t.Errorf("trailer num_partitions = %d, want %d", n, want.NumPartitions)
	}

	// Streaming runs count into the stats.
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if n := jobs["streams"].(float64); n != 1 {
		t.Errorf("stats streams = %v, want 1", n)
	}
}

// TestMineStreamRejectsRestrictions: restrictions need the full output and
// are a 400 on the streaming endpoint (but fine on POST /v1/mine).
func TestMineStreamRejectsRestrictions(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("db"))
	opts := testOptions()
	opts["restriction"] = "closed"
	status, lines := streamLines(t, ts.URL, map[string]any{"database": "db", "options": opts})
	if status != http.StatusBadRequest {
		t.Fatalf("stream with closed restriction: status %d lines %v, want 400", status, lines)
	}
	status, body := call(t, "POST", ts.URL+"/v1/mine",
		map[string]any{"database": "db", "options": opts, "wait": true})
	if status != http.StatusOK {
		t.Errorf("blocking mine with closed restriction: status %d body %v, want 200", status, body)
	}
}

// TestMineStreamErrorInTrailer: an error mid-stream surfaces in the
// trailer record, after the patterns that made it out.
func TestMineStreamErrorInTrailer(t *testing.T) {
	boom := errors.New("partition 3 caught fire")
	streamFn := func(ctx context.Context, db *lash.Database, opt lash.Options, emit func(lash.Pattern) error) (*lash.Result, error) {
		if err := emit(lash.Pattern{Items: []string{"a", "B"}, Support: 2}); err != nil {
			return nil, err
		}
		return nil, boom
	}
	_, ts := newTestServer(t, server.Config{StreamFunc: streamFn})
	mustRegister(t, ts, testSpec("db"))
	status, lines := streamLines(t, ts.URL, map[string]any{"database": "db", "options": testOptions()})
	if status != http.StatusOK {
		t.Fatalf("stream: status %d", status)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d records, want pattern + trailer", len(lines))
	}
	trailer := lines[1]
	if trailer["done"] != true {
		t.Fatalf("missing trailer: %v", lines)
	}
	if errStr, _ := trailer["error"].(string); !strings.Contains(errStr, "caught fire") {
		t.Errorf("trailer error = %q, want the stream error", errStr)
	}
	// A failed stream counts as failed, not completed.
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if n := jobs["failed"].(float64); n != 1 {
		t.Errorf("stats failed = %v, want 1", n)
	}
}

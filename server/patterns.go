package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"lash/internal/pindex"
)

// This file is the pattern-serving tier: GET /v1/patterns answers pattern
// queries from the immutable serving index each completed result carries
// (lash.Result.Index, built by the job manager off the worker goroutine)
// instead of scanning the pattern slice, and shares the limit/cursor
// pagination helper with GET /v1/jobs. GET /v1/patterns/subscribe lives in
// subscribe.go.

// pageCursor is the decoded form of the opaque pagination cursor: a
// fingerprint of the query it belongs to and the position to resume from.
// Positions index the serving permutation of an immutable index (or the
// submission-ordered job list), so a cursor stays valid for as long as the
// result it points into is retained.
type pageCursor struct {
	Query string `json:"q"`
	Pos   int    `json:"pos"`
}

// encodeCursor renders a cursor opaquely (base64url of its JSON).
func encodeCursor(fingerprint string, pos int) string {
	raw, _ := json.Marshal(pageCursor{Query: fingerprint, Pos: pos}) //nolint:errcheck // struct of two plain fields cannot fail to marshal
	return base64.RawURLEncoding.EncodeToString(raw)
}

// decodeCursor parses an opaque cursor and checks it against the request's
// query fingerprint, so a cursor minted by one query cannot silently page
// through another.
func decodeCursor(s, fingerprint string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("bad cursor %q", s)
	}
	var c pageCursor
	if err := json.Unmarshal(raw, &c); err != nil || c.Pos < 0 {
		return 0, fmt.Errorf("bad cursor %q", s)
	}
	if c.Query != fingerprint {
		return 0, fmt.Errorf("cursor does not match this query (mint a fresh one without cursor=)")
	}
	return c.Pos, nil
}

// parsePage reads the shared limit/cursor pagination parameters. limit = 0
// (absent) means "everything"; a cursor resumes a previous page of the
// query identified by fingerprint.
func parsePage(q url.Values, fingerprint string) (limit, offset int, err error) {
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
		limit = n
	}
	if v := q.Get("cursor"); v != "" {
		offset, err = decodeCursor(v, fingerprint)
		if err != nil {
			return 0, 0, err
		}
	}
	return limit, offset, nil
}

// csvParam collects a repeatable, comma-separable query parameter into a
// list: ?contains=a,b&contains=c → [a b c].
func csvParam(q url.Values, key string) []string {
	var out []string
	for _, v := range q[key] {
		for _, item := range strings.Split(v, ",") {
			if item = strings.TrimSpace(item); item != "" {
				out = append(out, item)
			}
		}
	}
	return out
}

// patternQuery is one parsed GET /v1/patterns request.
type patternQuery struct {
	q      pindex.Query
	rollup []string // exclusive roll-up chain lookup
	top    int      // legacy result-set cap (0 = uncapped)
	limit  int      // page size (0 = everything)
	offset int      // cursor position
}

// kind names the query for lash_pindex_queries_total, by its most specific
// term.
func (pq *patternQuery) kind() string {
	switch {
	case len(pq.rollup) > 0:
		return "rollup"
	case len(pq.q.Prefix) > 0:
		return "prefix"
	case len(pq.q.Contains) > 0:
		return "contains"
	case pq.q.Level >= 0:
		return "level"
	case pq.q.MinSupport > 0:
		return "min_support"
	case pq.top > 0 || pq.limit > 0:
		return "top"
	}
	return "plain"
}

// parsePatternQuery reads every filter and pagination parameter of
// GET /v1/patterns. jobID seals the cursor fingerprint to the result being
// paged, so a cursor cannot cross from one job's index into another's.
func parsePatternQuery(v url.Values, jobID string) (*patternQuery, error) {
	pq := &patternQuery{q: pindex.Query{Level: pindex.NoLevel}}
	if s := v.Get("top"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad top %q", s)
		}
		pq.top = n
	}
	if s := v.Get("min_support"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad min_support %q", s)
		}
		pq.q.MinSupport = n
	}
	if s := v.Get("level"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad level %q", s)
		}
		pq.q.Level = n
	}
	pq.q.Contains = csvParam(v, "contains")
	pq.q.Prefix = csvParam(v, "prefix")
	pq.rollup = csvParam(v, "rollup")
	if len(pq.rollup) > 0 &&
		(pq.top > 0 || pq.q.MinSupport > 0 || pq.q.Level != pindex.NoLevel ||
			len(pq.q.Contains) > 0 || len(pq.q.Prefix) > 0 || v.Get("limit") != "" || v.Get("cursor") != "") {
		return nil, errors.New("rollup= cannot be combined with other filters or pagination")
	}

	var err error
	pq.limit, pq.offset, err = parsePage(v, pq.fingerprint(jobID))
	if err != nil {
		return nil, err
	}
	return pq, nil
}

// fingerprint canonically identifies the query (filters + result identity,
// not pagination) for cursor sealing.
func (pq *patternQuery) fingerprint(jobID string) string {
	return fmt.Sprintf("%s|t%d|s%d|c%s|p%s|l%d", jobID, pq.top, pq.q.MinSupport,
		strings.Join(pq.q.Contains, ","), strings.Join(pq.q.Prefix, ","), pq.q.Level)
}

// resolvePatternsJob picks the job whose result a pattern query reads: the
// named job (which must be terminal and successful) or the database's most
// recent successful job — at the requested corpus version when version= is
// given, otherwise at the highest version with a complete result. Shared by
// GET /v1/patterns and /v1/patterns/subscribe.
func (s *Server) resolvePatternsJob(w http.ResponseWriter, v url.Values) (*job, bool) {
	dbName := v.Get("db")
	if dbName == "" && v.Get("job") == "" {
		writeError(w, http.StatusBadRequest, errors.New("db or job query parameter is required"))
		return nil, false
	}
	version := 0 // 0 = latest complete
	if raw := v.Get("version"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad version %q", raw))
			return nil, false
		}
		version = n
	}
	if id := v.Get("job"); id != "" {
		j, ok := s.jobs.get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errJobMissing, id))
			return nil, false
		}
		if status, done := j.terminal(); !done || status != JobDone {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s has no result (status %s)", id, s.jobs.view(j, false).Status))
			return nil, false
		}
		if dbName != "" && j.dbName != dbName {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %s mined database %q, not %q", id, j.dbName, dbName))
			return nil, false
		}
		if version != 0 && j.version != version {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %s mined corpus version %d, not %d", id, j.version, version))
			return nil, false
		}
		return j, true
	}
	if _, ok := s.registry.get(dbName); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", errDBMissing, dbName))
		return nil, false
	}
	if version != 0 {
		j, ok := s.jobs.latestResultAt(dbName, version)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("database %q has no mined results for corpus version %d", dbName, version))
			return nil, false
		}
		return j, true
	}
	j, ok := s.jobs.latestResult(dbName)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("database %q has no mined results yet (POST /v1/mine first)", dbName))
		return nil, false
	}
	return j, true
}

// handlePatterns answers GET /v1/patterns?db=NAME[&job=ID][&top=K]
// [&min_support=N][&contains=ITEMS][&prefix=ITEMS][&level=L][&rollup=ITEMS]
// [&limit=N][&cursor=C] from already-mined results: by default the
// database's most recent successful job, or the named job. Patterns come
// from the result's immutable serving index in serving order — support
// descending, ties in canonical mining order — without scanning: top-k and
// min_support slice the support permutation, contains intersects postings
// lists, prefix binary-searches one lex range, level reads a bucket, and
// rollup walks the hierarchy roll-up chain of one pattern. limit/cursor
// paginate any of them (except rollup) with an opaque position cursor that
// stays stable because the index never changes.
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	j, ok := s.resolvePatternsJob(w, r.URL.Query())
	if !ok {
		return
	}
	pq, err := parsePatternQuery(r.URL.Query(), j.id)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.pindexQuery(pq.kind())

	// The job is terminal, so its result — and the memoized index — is
	// immutable: no lock needed. A request racing the manager's async
	// index build simply builds it first (Result.Index is memoized).
	ix := j.result.Index()

	if len(pq.rollup) > 0 {
		chain := ix.Rollup(pq.rollup)
		if chain == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("pattern %q is not in the mined result", strings.Join(pq.rollup, " ")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"database":       j.dbName,
			"corpus_version": j.version,
			"job_id":         j.id,
			"total":          len(chain),
			"returned":       len(chain),
			"patterns":       viewIndexPatterns(ix, chain),
		})
		return
	}

	// top caps the result set (the old ?top=K contract); limit/cursor then
	// page within the capped set. The reported total stays the full match
	// count, also the old contract.
	limit := pq.limit
	if pq.top > 0 {
		if pq.offset >= pq.top {
			limit = -1 // past the capped set: empty page
		} else if limit == 0 || pq.offset+limit > pq.top {
			limit = pq.top - pq.offset
		}
	}
	var ids []uint32
	var total int
	if limit < 0 {
		_, total = ix.Search(nil, pq.q, 0, 0)
	} else if limit == 0 {
		ids, total = ix.Search(nil, pq.q, pq.offset, -1)
	} else {
		ids, total = ix.Search(nil, pq.q, pq.offset, limit)
	}

	resp := map[string]any{
		"database":       j.dbName,
		"corpus_version": j.version,
		"job_id":         j.id,
		"total":          total,
		"returned":       len(ids),
		"patterns":       viewIndexPatterns(ix, ids),
	}
	// A next_cursor appears only when a limited page stopped short of the
	// (possibly top-capped) result set.
	if pq.limit > 0 {
		end := total
		if pq.top > 0 && pq.top < end {
			end = pq.top
		}
		if next := pq.offset + len(ids); next < end {
			resp["next_cursor"] = encodeCursor(pq.fingerprint(j.id), next)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// viewIndexPatterns renders index pattern ids to the wire shape.
func viewIndexPatterns(ix *pindex.Index, ids []uint32) []PatternView {
	out := make([]PatternView, len(ids))
	for i, id := range ids {
		out[i] = PatternView{Items: ix.Items(id), Support: ix.Support(id)}
	}
	return out
}

// handleListJobs answers GET /v1/jobs[?limit=N&cursor=C]: all jobs in
// submission order, paginated with the same opaque cursor the patterns
// endpoint uses. Positions index the retained job list; records pruned by
// the history bound may shift later pages, so cursors here are best-effort
// (the patterns cursor, over an immutable index, is exact).
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	const fingerprint = "jobs"
	limit, offset, err := parsePage(r.URL.Query(), fingerprint)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs := s.jobs.list()
	total := len(jobs)
	if offset > total {
		offset = total
	}
	page := jobs[offset:]
	if limit > 0 && limit < len(page) {
		page = page[:limit]
	}
	views := make([]JobView, len(page))
	for i, j := range page {
		views[i] = s.jobs.view(j, false)
	}
	resp := map[string]any{"jobs": views, "total": total}
	if limit > 0 && offset+len(page) < total {
		resp["next_cursor"] = encodeCursor(fingerprint, offset+len(page))
	}
	writeJSON(w, http.StatusOK, resp)
}

package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lash"
	"lash/server"
)

// testSpec is a small database with a two-level hierarchy: b1 and b2
// generalize to B, so "a B" is frequent even though neither "a b1" nor
// "a b2" is.
func testSpec(name string) server.DatabaseSpec {
	return server.DatabaseSpec{
		Name:      name,
		Hierarchy: []string{"b1 B", "b2 B"},
		Sequences: []string{"a b1 a", "a b2 c", "a b1 b2"},
	}
}

// testDB builds the same database directly, for expected-output checks.
func testDB(t *testing.T) *lash.Database {
	t.Helper()
	b := lash.NewDatabaseBuilder()
	b.AddParent("b1", "B").AddParent("b2", "B")
	b.AddSequence("a", "b1", "a")
	b.AddSequence("a", "b2", "c")
	b.AddSequence("a", "b1", "b2")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testOptions() map[string]any {
	return map[string]any{"min_support": 2, "max_gap": 1, "max_length": 3}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv, ts
}

// call sends a JSON request and decodes the JSON response into a generic
// map.
func call(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// errBody unwraps the uniform error envelope every non-2xx response
// carries: {"error": {"code", "message", "retryable"}}.
func errBody(t *testing.T, body map[string]any) (code, msg string, retryable bool) {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response carries no error envelope: %v", body)
	}
	code, _ = env["code"].(string)
	msg, _ = env["message"].(string)
	retryable, _ = env["retryable"].(bool)
	return code, msg, retryable
}

func mustRegister(t *testing.T, ts *httptest.Server, spec server.DatabaseSpec) {
	t.Helper()
	status, body := call(t, "POST", ts.URL+"/v1/databases", spec)
	if status != http.StatusCreated {
		t.Fatalf("register %q: status %d, body %v", spec.Name, status, body)
	}
}

// waitForJob polls GET /v1/jobs/{id} until the job is terminal.
func waitForJob(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		status, body := call(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %v", id, status, body)
		}
		switch body["status"] {
		case "done", "failed", "cancelled":
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// patternSet converts a JobView result payload to "items→support" for
// comparison with direct lash.Mine output.
func patternSet(t *testing.T, body map[string]any) map[string]int64 {
	t.Helper()
	result, ok := body["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result in %v", body)
	}
	raw, ok := result["patterns"].([]any)
	if !ok {
		t.Fatalf("no patterns in %v", result)
	}
	out := map[string]int64{}
	for _, p := range raw {
		pm := p.(map[string]any)
		key := ""
		for _, it := range pm["items"].([]any) {
			key += it.(string) + " "
		}
		out[key] = int64(pm["support"].(float64))
	}
	return out
}

func TestMineLifecycle(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("paper"))

	// Registration metadata reflects the database.
	status, info := call(t, "GET", ts.URL+"/v1/databases/paper", nil)
	if status != http.StatusOK {
		t.Fatalf("get database: %d %v", status, info)
	}
	if info["num_sequences"].(float64) != 3 || info["hierarchy_depth"].(float64) != 2 {
		t.Errorf("database info = %v", info)
	}

	// Synchronous mining returns the same patterns as a direct library call.
	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, body)
	}
	if body["status"] != "done" {
		t.Fatalf("job not done: %v", body)
	}
	got := patternSet(t, body)

	want := map[string]int64{}
	res, err := lash.Mine(testDB(t), lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		key := ""
		for _, it := range p.Items {
			key += it + " "
		}
		want[key] = p.Support
	}
	if len(want) == 0 {
		t.Fatal("expected some frequent patterns from the fixture")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served patterns = %v, want %v", got, want)
	}

	// The job stays pollable afterwards.
	id := body["job_id"].(string)
	polled := waitForJob(t, ts, id)
	if polled["status"] != "done" {
		t.Errorf("polled job = %v", polled)
	}
}

// TestCoalescingAndCache is the acceptance scenario: two concurrent
// identical requests share one underlying mine run, and a repeat after
// completion is served from the cache without re-mining — all observable
// through /v1/stats.
func TestCoalescingAndCache(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	_, ts := newTestServer(t, server.Config{
		Workers: 4,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			runs.Add(1)
			<-gate // hold the job in-flight so the second request must coalesce
			return lash.Mine(db, opt)
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	mineReq := map[string]any{"database": "paper", "options": testOptions()}

	// First request: accepted, job queued/running behind the gate.
	status, first := call(t, "POST", ts.URL+"/v1/mine", mineReq)
	if status != http.StatusAccepted {
		t.Fatalf("first mine: %d %v", status, first)
	}
	firstID := first["job_id"].(string)

	// Second identical request while the first is in flight: same job.
	status, second := call(t, "POST", ts.URL+"/v1/mine", mineReq)
	if status != http.StatusAccepted {
		t.Fatalf("second mine: %d %v", status, second)
	}
	if secondID := second["job_id"].(string); secondID != firstID {
		t.Fatalf("concurrent identical requests got separate jobs %s and %s", firstID, secondID)
	}

	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if jobs["coalesced"].(float64) != 1 {
		t.Errorf("coalesced = %v, want 1 (stats %v)", jobs["coalesced"], stats)
	}

	close(gate)
	done := waitForJob(t, ts, firstID)
	if done["status"] != "done" {
		t.Fatalf("job failed: %v", done)
	}
	if c := done["coalesced"].(float64); c != 1 {
		t.Errorf("job coalesced = %v, want 1", c)
	}

	// Third identical request after completion: a cache hit, answered
	// instantly with status done and no new mine run.
	status, third := call(t, "POST", ts.URL+"/v1/mine", mineReq)
	if status != http.StatusOK {
		t.Fatalf("cached mine: %d %v", status, third)
	}
	if third["status"] != "done" || third["cached"] != true {
		t.Errorf("cached response = %v, want done+cached", third)
	}
	if third["job_id"] == firstID {
		t.Errorf("cache hit reused the original job id")
	}

	_, stats = call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs = stats["jobs"].(map[string]any)
	cache := stats["cache"].(map[string]any)
	if jobs["mines_run"].(float64) != 1 {
		t.Errorf("mines_run = %v, want 1: three requests, one run", jobs["mines_run"])
	}
	if jobs["submitted"].(float64) != 3 {
		t.Errorf("submitted = %v, want 3", jobs["submitted"])
	}
	if cache["hits"].(float64) != 1 {
		t.Errorf("cache hits = %v, want 1 (stats %v)", cache["hits"], stats)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("mine function ran %d times, want 1", got)
	}

	// Different options are a different key: a fourth request mines again.
	opts := testOptions()
	opts["min_support"] = 1
	status, fourth := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": opts,
	})
	if status != http.StatusAccepted {
		t.Fatalf("fourth mine: %d %v", status, fourth)
	}
	waitForJob(t, ts, fourth["job_id"].(string))
	if got := runs.Load(); got != 2 {
		t.Errorf("mine function ran %d times after distinct options, want 2", got)
	}
}

func TestInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("paper"))

	badOptions := []map[string]any{
		{"min_support": 0, "max_gap": 1, "max_length": 3},
		{"min_support": 2, "max_gap": -1, "max_length": 3},
		{"min_support": 2, "max_gap": 1, "max_length": 1},
		{"min_support": 2, "max_gap": 1, "max_length": 3, "workers": -1},
		{"min_support": 2, "max_gap": 1, "max_length": 3, "algorithm": "bogus"},
		{"min_support": 2, "max_gap": 1, "max_length": 3, "local_miner": "bogus"},
		{"min_support": 2, "max_gap": 1, "max_length": 3, "restriction": "bogus"},
	}
	for i, opts := range badOptions {
		status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": opts,
		})
		if status != http.StatusBadRequest {
			t.Errorf("bad options #%d: status %d, body %v", i, status, body)
		}
		if code, msg, _ := errBody(t, body); code != "bad_request" || msg == "" {
			t.Errorf("bad options #%d: envelope code %q message %q", i, code, msg)
		}
	}

	// Unknown database: 404.
	if status, _ := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "nope", "options": testOptions(),
	}); status != http.StatusNotFound {
		t.Errorf("unknown database: status %d, want 404", status)
	}
	// Missing database name: 400.
	if status, _ := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"options": testOptions(),
	}); status != http.StatusBadRequest {
		t.Errorf("missing database: status %d, want 400", status)
	}
	// Malformed body: 400.
	resp, err := http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// Unknown job: 404.
	if status, _ := call(t, "GET", ts.URL+"/v1/jobs/job-999", nil); status != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", status)
	}
	// Invalid-options request must not register a job.
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	if submitted := stats["jobs"].(map[string]any)["submitted"].(float64); submitted != 0 {
		t.Errorf("submitted = %v after only invalid requests, want 0", submitted)
	}
}

func TestRegistryHTTP(t *testing.T) {
	dir := t.TempDir()
	seqPath := filepath.Join(dir, "seqs.txt")
	if err := os.WriteFile(seqPath, []byte("a b1 a\na b2 c\na b1 b2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hier.txt"), []byte("b1 B\nb2 B\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, server.Config{DataDir: dir})

	// File-based registration works inside the data directory.
	status, body := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "files", SequencesFile: "seqs.txt", HierarchyFile: "hier.txt",
	})
	if status != http.StatusCreated {
		t.Fatalf("file registration: %d %v", status, body)
	}
	if body["num_sequences"].(float64) != 3 {
		t.Errorf("file database info = %v", body)
	}

	// Mixing a hierarchy file with inline sequences (and vice versa) is
	// fine — only the sequence source must be unique.
	if status, body := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "mixed", HierarchyFile: "hier.txt", Sequences: []string{"a b1 a"},
	}); status != http.StatusCreated {
		t.Errorf("hierarchy_file + inline sequences: %d %v", status, body)
	}
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "twosrc", SequencesFile: "seqs.txt", Sequences: []string{"a b1 a"},
	}); status != http.StatusBadRequest {
		t.Errorf("two sequence sources: status %d, want 400", status)
	}

	// Duplicate name: 409.
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", testSpec("files")); status != http.StatusConflict {
		t.Errorf("duplicate: status %d, want 409", status)
	}
	// Escaping the data directory: 400.
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "escape", SequencesFile: "../seqs.txt",
	}); status != http.StatusBadRequest {
		t.Errorf("path escape: status %d, want 400", status)
	}
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "abs", SequencesFile: seqPath,
	}); status != http.StatusBadRequest {
		t.Errorf("absolute path: status %d, want 400", status)
	}
	// No source at all: 400.
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{Name: "empty"}); status != http.StatusBadRequest {
		t.Errorf("sourceless spec: status %d, want 400", status)
	}
	// Generators work and are deterministic in size.
	status, body = call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "gen", Generator: "text", Size: 50, Seed: 7,
	})
	if status != http.StatusCreated {
		t.Fatalf("generator registration: %d %v", status, body)
	}
	if body["num_sequences"].(float64) != 50 {
		t.Errorf("generator database info = %v", body)
	}
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "badgen", Generator: "bogus",
	}); status != http.StatusBadRequest {
		t.Errorf("unknown generator: status %d, want 400", status)
	}
	// A generator ignores sequence/hierarchy data, so combining them is an
	// error rather than a silent drop.
	if status, _ := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "genhier", Generator: "text", Hierarchy: []string{"a b"},
	}); status != http.StatusBadRequest {
		t.Errorf("generator + inline hierarchy: status %d, want 400", status)
	}

	// Listing shows the registered databases in registration order.
	_, listing := call(t, "GET", ts.URL+"/v1/databases", nil)
	dbs := listing["databases"].([]any)
	if len(dbs) != 3 {
		t.Fatalf("listing = %v", listing)
	}
	for i, want := range []string{"files", "mixed", "gen"} {
		if got := dbs[i].(map[string]any)["name"]; got != want {
			t.Errorf("listing[%d] = %v, want %s", i, got, want)
		}
	}
}

func TestFileLoadingDisabledWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	status, body := call(t, "POST", ts.URL+"/v1/databases", server.DatabaseSpec{
		Name: "files", SequencesFile: "seqs.txt",
	})
	if status != http.StatusBadRequest {
		t.Errorf("file spec without data dir: status %d, body %v", status, body)
	}
}

func TestPatternsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("paper"))

	// Before any mining: 404.
	if status, _ := call(t, "GET", ts.URL+"/v1/patterns?db=paper", nil); status != http.StatusNotFound {
		t.Errorf("patterns before mining: status %d, want 404", status)
	}
	if status, _ := call(t, "GET", ts.URL+"/v1/patterns?db=nope", nil); status != http.StatusNotFound {
		t.Errorf("patterns of unknown db: status %d, want 404", status)
	}
	if status, _ := call(t, "GET", ts.URL+"/v1/patterns", nil); status != http.StatusBadRequest {
		t.Errorf("patterns without db: status %d, want 400", status)
	}

	status, mined := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, mined)
	}
	all := patternSet(t, mined)

	_, body := call(t, "GET", ts.URL+"/v1/patterns?db=paper", nil)
	if int(body["total"].(float64)) != len(all) {
		t.Errorf("total = %v, want %d", body["total"], len(all))
	}
	patterns := body["patterns"].([]any)
	// Ordered by descending support.
	last := int64(1 << 62)
	for _, p := range patterns {
		s := int64(p.(map[string]any)["support"].(float64))
		if s > last {
			t.Errorf("patterns not sorted by support: %v", patterns)
			break
		}
		last = s
	}

	// top=1 truncates but reports the full total.
	_, top := call(t, "GET", ts.URL+"/v1/patterns?db=paper&top=1", nil)
	if len(top["patterns"].([]any)) != 1 || int(top["total"].(float64)) != len(all) {
		t.Errorf("top=1 = %v", top)
	}

	// contains filters to patterns mentioning the item.
	_, contains := call(t, "GET", ts.URL+"/v1/patterns?db=paper&contains=B", nil)
	wantContains := 0
	for items := range all {
		for _, it := range bytes.Fields([]byte(items)) {
			if string(it) == "B" {
				wantContains++
				break
			}
		}
	}
	if len(contains["patterns"].([]any)) != wantContains {
		t.Errorf("contains=B returned %v, want %d patterns (all: %v)", contains["patterns"], wantContains, all)
	}
	for _, p := range contains["patterns"].([]any) {
		found := false
		for _, it := range p.(map[string]any)["items"].([]any) {
			if it == "B" {
				found = true
			}
		}
		if !found {
			t.Errorf("pattern %v does not contain B", p)
		}
	}

	// job= selects a specific job's result.
	id := mined["job_id"].(string)
	_, byJob := call(t, "GET", ts.URL+"/v1/patterns?job="+id, nil)
	if int(byJob["total"].(float64)) != len(all) {
		t.Errorf("by job = %v", byJob)
	}
	// Bad query parameters: 400.
	if status, _ := call(t, "GET", ts.URL+"/v1/patterns?db=paper&top=x", nil); status != http.StatusBadRequest {
		t.Errorf("bad top: status %d, want 400", status)
	}
	if status, _ := call(t, "GET", ts.URL+"/v1/patterns?db=paper&min_support=-1", nil); status != http.StatusBadRequest {
		t.Errorf("bad min_support: status %d, want 400", status)
	}
}

func TestFailedJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			return nil, fmt.Errorf("synthetic mining failure")
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, body)
	}
	if body["status"] != "failed" || body["error"] == "" {
		t.Fatalf("job = %v, want failed with message", body)
	}

	// Failures are not cached: a retry mines again (and fails again).
	status, retry := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK || retry["cached"] == true {
		t.Errorf("retry after failure = %d %v, want a fresh (uncached) run", status, retry)
	}
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if jobs["failed"].(float64) != 2 || jobs["mines_run"].(float64) != 2 {
		t.Errorf("stats after failures = %v", jobs)
	}
	// A failed job has no patterns to serve.
	id := body["job_id"].(string)
	if status, _ := call(t, "GET", ts.URL+"/v1/patterns?job="+id, nil); status != http.StatusConflict {
		t.Errorf("patterns of failed job: status %d, want 409", status)
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	mustRegister(t, ts, testSpec("paper"))
	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	// New submissions are refused after Close.
	status, refused := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(),
	})
	if status != http.StatusServiceUnavailable {
		t.Errorf("mine after close: %d %v, want 503", status, refused)
	}
}

// TestJobHistoryPruning bounds the retained job records: old finished jobs
// are forgotten, but each database's latest result stays queryable.
func TestJobHistoryPruning(t *testing.T) {
	_, ts := newTestServer(t, server.Config{JobHistory: 3, CacheSize: -1})
	mustRegister(t, ts, testSpec("paper"))

	ids := make([]string, 6)
	for i := range ids {
		opts := testOptions()
		opts["max_length"] = 3 + i // distinct jobs, no cache hits
		status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": opts, "wait": true,
		})
		if status != http.StatusOK {
			t.Fatalf("mine #%d: %d %v", i, status, body)
		}
		ids[i] = body["job_id"].(string)
	}

	// The oldest jobs fell out of the window...
	if status, _ := call(t, "GET", ts.URL+"/v1/jobs/"+ids[0], nil); status != http.StatusNotFound {
		t.Errorf("pruned job %s still resolves (status %d)", ids[0], status)
	}
	_, listing := call(t, "GET", ts.URL+"/v1/jobs", nil)
	if n := len(listing["jobs"].([]any)); n > 3 {
		t.Errorf("retained %d job records, want ≤ 3", n)
	}
	// ...the newest resolves, cumulative stats survive pruning, and the
	// database's latest result is still queryable.
	if status, _ := call(t, "GET", ts.URL+"/v1/jobs/"+ids[5], nil); status != http.StatusOK {
		t.Errorf("recent job %s does not resolve", ids[5])
	}
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	if got := stats["jobs"].(map[string]any)["completed"].(float64); got != 6 {
		t.Errorf("completed = %v, want 6 despite pruning", got)
	}
	if status, body := call(t, "GET", ts.URL+"/v1/patterns?db=paper", nil); status != http.StatusOK {
		t.Errorf("patterns after pruning: %d %v", status, body)
	}
}

// TestCacheHitJobsEvictFirst: a flood of cache-hit submissions must not
// evict a real mined job out of the bounded history while a client could
// still be polling its id.
func TestCacheHitJobsEvictFirst(t *testing.T) {
	_, ts := newTestServer(t, server.Config{JobHistory: 3})
	mustRegister(t, ts, testSpec("paper"))

	status, mined := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, mined)
	}
	minedID := mined["job_id"].(string)

	for i := 0; i < 6; i++ { // 6 cache hits, twice the history bound
		if status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": testOptions(),
		}); status != http.StatusOK || body["cached"] != true {
			t.Fatalf("cache hit #%d: %d %v", i, status, body)
		}
	}
	if status, _ := call(t, "GET", ts.URL+"/v1/jobs/"+minedID, nil); status != http.StatusOK {
		t.Errorf("real mined job %s evicted by cache-hit records", minedID)
	}
	_, listing := call(t, "GET", ts.URL+"/v1/jobs", nil)
	if n := len(listing["jobs"].([]any)); n > 3 {
		t.Errorf("retained %d job records, want ≤ 3", n)
	}
}

// TestJobHistoryPruningSkipsRunning pins the bound even when the oldest
// record is a still-running job: terminal records behind it are pruned
// instead of piling up.
func TestJobHistoryPruningSkipsRunning(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, server.Config{
		JobHistory: 2, CacheSize: -1, Workers: 4,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			if opt.MaxLength == 99 { // the marker job blocks until released
				<-gate
			}
			return lash.Mine(db, opt)
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	slowOpts := testOptions()
	slowOpts["max_length"] = 99
	status, slow := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": slowOpts,
	})
	if status != http.StatusAccepted {
		t.Fatalf("slow mine: %d %v", status, slow)
	}
	slowID := slow["job_id"].(string)

	for i := range 4 {
		opts := testOptions()
		opts["max_length"] = 3 + i
		if status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": opts, "wait": true,
		}); status != http.StatusOK {
			t.Fatalf("fast mine #%d: %d %v", i, status, body)
		}
	}

	// The running job survives pruning; the history stays bounded.
	if status, _ := call(t, "GET", ts.URL+"/v1/jobs/"+slowID, nil); status != http.StatusOK {
		t.Errorf("running job %s was pruned", slowID)
	}
	_, listing := call(t, "GET", ts.URL+"/v1/jobs", nil)
	if n := len(listing["jobs"].([]any)); n > 3 { // bound + the unprunable running job
		t.Errorf("retained %d job records, want ≤ 3", n)
	}
	close(gate)
	if body := waitForJob(t, ts, slowID); body["status"] != "done" {
		t.Errorf("slow job = %v", body)
	}
}

func TestWorkerPoolBounds(t *testing.T) {
	release := make(chan struct{})
	var concurrent, peak atomic.Int64
	_, ts := newTestServer(t, server.Config{
		Workers: 2,
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			n := concurrent.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-release
			concurrent.Add(-1)
			return lash.Mine(db, opt)
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	// Five distinct jobs on two workers: at most two mine at once.
	ids := make([]string, 5)
	for i := range ids {
		opts := testOptions()
		opts["max_length"] = 3 + i // distinct cache keys
		status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
			"database": "paper", "options": opts,
		})
		if status != http.StatusAccepted {
			t.Fatalf("mine #%d: %d %v", i, status, body)
		}
		ids[i] = body["job_id"].(string)
	}
	// Let the pool saturate, then release everything.
	deadline := time.Now().Add(5 * time.Second)
	for concurrent.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	for _, id := range ids {
		if body := waitForJob(t, ts, id); body["status"] != "done" {
			t.Fatalf("job %s = %v", id, body)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent mines = %d, want ≤ 2", p)
	}
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	if got := stats["jobs"].(map[string]any)["mines_run"].(float64); got != 5 {
		t.Errorf("mines_run = %v, want 5", got)
	}
}

// A panic inside mining (a misbehaving miner or corrupt database) must fail
// that one job — surfaced with an error message — and leave the server
// serving subsequent requests, not crash the process.
func TestPanickingMineFailsJob(t *testing.T) {
	calls := 0
	_, ts := newTestServer(t, server.Config{
		MineFunc: func(ctx context.Context, db *lash.Database, opt lash.Options) (*lash.Result, error) {
			calls++
			if calls == 1 {
				panic("miner exploded")
			}
			return &lash.Result{}, nil
		},
	})
	mustRegister(t, ts, testSpec("paper"))

	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("mine: %d %v", status, body)
	}
	if body["status"] != "failed" {
		t.Fatalf("job = %v, want failed", body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "miner exploded") {
		t.Fatalf("job error %q does not carry the panic value", body["error"])
	}

	// The server survived: the next request is served normally.
	status, retry := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "paper", "options": testOptions(), "wait": true,
	})
	if status != http.StatusOK || retry["status"] != "done" {
		t.Fatalf("post-panic request = %d %v, want a successful run", status, retry)
	}
	_, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	jobs := stats["jobs"].(map[string]any)
	if jobs["failed"].(float64) != 1 || jobs["completed"].(float64) != 1 {
		t.Errorf("stats after panic = %v", jobs)
	}
}

// TestMemoryBudgetJob: a memory_budget in the request forces the spill
// path; the mined patterns are identical to an unbudgeted run, the result
// view reports the spill volume, and the server stats accumulate it.
func TestMemoryBudgetJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2})
	mustRegister(t, ts, testSpec("db"))

	opts := testOptions()
	status, plain := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "db", "options": opts, "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("unbudgeted mine: status %d, body %v", status, plain)
	}

	opts["memory_budget"] = 1 // everything spills
	status, budgeted := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "db", "options": opts, "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("budgeted mine: status %d, body %v", status, budgeted)
	}
	// The budget is canonicalized away, so the second submit is answered
	// from the cache — with the first (in-memory) run's result. That is the
	// design: results are identical, so re-mining would be waste. Assert
	// pattern identity, then force a fresh budgeted run via a second
	// database registration.
	if !reflect.DeepEqual(patternSet(t, plain), patternSet(t, budgeted)) {
		t.Errorf("budgeted result differs: %v vs %v", patternSet(t, budgeted), patternSet(t, plain))
	}

	mustRegister(t, ts, testSpec("db2"))
	status, fresh := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "db2", "options": opts, "wait": true,
	})
	if status != http.StatusOK {
		t.Fatalf("fresh budgeted mine: status %d, body %v", status, fresh)
	}
	if !reflect.DeepEqual(patternSet(t, plain), patternSet(t, fresh)) {
		t.Errorf("fresh budgeted result differs: %v vs %v", patternSet(t, fresh), patternSet(t, plain))
	}
	result := fresh["result"].(map[string]any)
	if result["spill_runs"] == nil || result["spill_runs"].(float64) == 0 {
		t.Errorf("budgeted run reported no spill_runs: %v", result)
	}
	if result["spill_bytes"] == nil || result["spill_bytes"].(float64) == 0 {
		t.Errorf("budgeted run reported no spill_bytes: %v", result)
	}

	status, stats := call(t, "GET", ts.URL+"/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	jobs := stats["jobs"].(map[string]any)
	if jobs["spilled_runs"].(float64) == 0 || jobs["spilled_bytes"].(float64) == 0 {
		t.Errorf("server stats did not accumulate spilling: %v", jobs)
	}

	// A negative budget is rejected up front.
	opts["memory_budget"] = -1
	status, body := call(t, "POST", ts.URL+"/v1/mine", map[string]any{
		"database": "db", "options": opts,
	})
	if status != http.StatusBadRequest {
		t.Errorf("negative budget: status %d, body %v", status, body)
	}
}

package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"lash"
	"lash/internal/faults"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	// JobQueued means the job is waiting for a worker slot.
	JobQueued JobStatus = "queued"
	// JobRunning means a worker is mining.
	JobRunning JobStatus = "running"
	// JobDone means the result is available.
	JobDone JobStatus = "done"
	// JobFailed means mining returned an error.
	JobFailed JobStatus = "failed"
	// JobCancelled means the job was cancelled via DELETE /v1/jobs/{id}
	// (or server shutdown) before it produced a result. Cancellation
	// applies to every submitter coalesced onto the job.
	JobCancelled JobStatus = "cancelled"
)

// JobStats is a snapshot of the job manager counters, as reported by
// GET /v1/stats. Every field is read from the same metric registry that
// backs GET /metrics, so the two endpoints cannot drift apart.
type JobStats struct {
	// Submitted counts every mine request accepted, including the ones
	// answered from cache or coalesced onto a running job.
	Submitted uint64 `json:"submitted"`
	// Coalesced counts requests attached to an identical in-flight job
	// instead of starting their own (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// MinesRun counts actual executions of the mining function — the work
	// the cache and coalescing avoided is Submitted - MinesRun.
	MinesRun  uint64 `json:"mines_run"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// Cancelled counts jobs cancelled via DELETE /v1/jobs/{id} or server
	// shutdown before completing.
	Cancelled uint64 `json:"cancelled"`
	// Streams counts streaming mining runs (POST /v1/mine/stream); they
	// also count into MinesRun when mining actually starts.
	Streams uint64 `json:"streams"`
	// QueueTimeMS and RunTimeMS split what used to be reported as one
	// mine_time_ms field: cumulative milliseconds finished runs spent
	// waiting for a worker slot (QueueTimeMS) versus actually mining
	// (RunTimeMS). Clients that summed mine_time_ms should read run_time_ms.
	QueueTimeMS int64 `json:"queue_time_ms"`
	RunTimeMS   int64 `json:"run_time_ms"`
	// SpilledRuns and SpilledBytes accumulate the shuffle spilling of every
	// completed run (jobs and streams) whose memory_budget forced it to
	// disk — how much external-memory work this server has absorbed.
	SpilledRuns  uint64 `json:"spilled_runs"`
	SpilledBytes uint64 `json:"spilled_bytes"`
	Queued       int    `json:"queued"`
	Running      int    `json:"running"`
}

// job is one asynchronous mining run. Fields past `cancelCause` are guarded
// by the owning manager's mutex; done is closed exactly once when the job
// reaches a terminal status. ctx is derived from the manager's base context
// at submission, so server shutdown cancels every job, and DELETE
// /v1/jobs/{id} cancels one.
type job struct {
	id          string
	key         string
	dbName      string
	version     int // corpus version the job mines (immutable snapshot)
	options     lash.Options
	done        chan struct{}
	ctx         context.Context
	cancelCause context.CancelCauseFunc

	status    JobStatus
	cached    bool // result came from the cache, no mining ran
	coalesced int  // extra submits answered by this job
	result    *lash.Result
	err       error
	created   time.Time
	started   time.Time
	finished  time.Time
}

// MineFunc runs one blocking mining job under a context.
type MineFunc func(context.Context, *lash.Database, lash.Options) (*lash.Result, error)

// StreamFunc runs one streaming mining job under a context, delivering
// patterns through emit (lash.Stream's contract).
type StreamFunc func(ctx context.Context, db *lash.Database, opt lash.Options, emit func(lash.Pattern) error) (*lash.Result, error)

// manager runs mining jobs on a bounded worker pool. Identical in-flight
// requests (same database, same canonical options) coalesce onto one job,
// and finished results land in an LRU cache so repeats skip mining
// entirely.
type manager struct {
	mineFn   MineFunc
	streamFn StreamFunc
	cache    *resultCache
	met      *serverMetrics // all manager counters live here, never locally
	log      *slog.Logger
	sem      chan struct{} // worker slots
	wg       sync.WaitGroup
	baseCtx  context.Context
	cancel   context.CancelCauseFunc

	// Robustness knobs, set once by New before the manager serves anything.
	// maxQueue bounds the fresh-job backlog (0 = unbounded): submissions
	// that would queue past it are refused with errOverloaded. maxJobTime
	// caps every run's Options.Deadline (0 = uncapped): a request may set a
	// tighter deadline, never a looser one. faults arms the run-level
	// injection points of every mine (nil in production).
	maxQueue   int
	maxJobTime time.Duration
	faults     *faults.Registry

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*job
	order    []string                // submission order, for stable listings
	inflight map[string]*job         // key → queued/running job (singleflight)
	latest   map[string]map[int]*job // database → corpus version → most recent successful job
	hubs     map[string]*subHub      // job id → live subscription hub (see subscribe.go)
	maxJobs  int                     // retained job records; older terminal jobs are pruned
	nextID   uint64

	// states holds the capture state of the most recent successful run per
	// (database, canonical options), keyed without the corpus version: an
	// append bumps the version but the old state is exactly what the next
	// run wants to resume from. stateOrder bounds the store FIFO-by-first-
	// insert — states are a pure optimization, so evicting one only costs a
	// future run its delta splice.
	states     map[string]*lash.MineState
	stateOrder []string
}

// maxMineStates bounds the resume-state store. Each state holds the f-list
// counts and per-partition fingerprints plus captured partition outputs of
// one run — useful, but strictly droppable.
const maxMineStates = 256

var (
	errBadSpec      = errors.New("bad request")
	errConflict     = errors.New("conflict")
	errShutdown     = errors.New("server is shutting down")
	errJobMissing   = errors.New("no such job")
	errDBMissing    = errors.New("no such database")
	errJobCancelled = errors.New("job cancelled")
	// errOverloaded maps to 429 + Retry-After: the request was well-formed
	// but the server refuses it for now (queue bound or rate limit).
	errOverloaded = errors.New("server overloaded")
)

func newManager(workers int, cacheBytes int64, cacheEntries, maxJobs int, mineFn MineFunc, streamFn StreamFunc, met *serverMetrics, logger *slog.Logger) *manager {
	if workers < 1 {
		workers = 1
	}
	//lashvet:ignore ctxfirst job lifetimes are server-scoped by design: the manager root context outlives any request, and Close cancels it with the shutdown cause
	ctx, cancel := context.WithCancelCause(context.Background())
	cache := newResultCache(cacheBytes, cacheEntries)
	cache.instrument(met.cacheHits, met.cacheMisses, met.cacheEvictions)
	return &manager{
		mineFn:   mineFn,
		streamFn: streamFn,
		cache:    cache,
		met:      met,
		log:      logger,
		sem:      make(chan struct{}, workers),
		baseCtx:  ctx,
		cancel:   cancel,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		latest:   make(map[string]map[int]*job),
		hubs:     make(map[string]*subHub),
		states:   make(map[string]*lash.MineState),
		maxJobs:  maxJobs,
	}
}

// jobKey identifies equivalent mining requests: same database, same corpus
// version, same canonical options. The version is part of the identity —
// results mined against an old snapshot stay cached and servable after an
// append, and a request against the new version is never answered from a
// stale entry.
func jobKey(dbName string, version int, opt lash.Options) string {
	return dbName + "@v" + fmt.Sprint(version) + "|" + opt.CacheKey()
}

// stateKey identifies resume states: database + canonical options, without
// the version — the state from version N is the input for delta-mining
// version N+1.
func stateKey(dbName string, opt lash.Options) string {
	return dbName + "|" + opt.CacheKey()
}

// applyPolicies caps opt's deadline at the server-wide bound and arms the
// configured fault registry. Neither affects the job key — Canonical zeroes
// both — so caching and coalescing keep working across them.
func (m *manager) applyPolicies(opt lash.Options) lash.Options {
	if m.maxJobTime > 0 && (opt.Deadline <= 0 || opt.Deadline > m.maxJobTime) {
		opt.Deadline = m.maxJobTime
	}
	if opt.Faults == nil {
		opt.Faults = m.faults
	}
	return opt
}

// submit registers a mining request and returns the job that answers it.
// Three paths, checked in order: a cached result yields an already-done job
// without mining; an identical in-flight job absorbs the request
// (singleflight); otherwise a fresh job is queued on the worker pool —
// unless the queue is at its admission bound, which refuses the request
// with errOverloaded (429) instead of letting the backlog grow unbounded.
func (m *manager) submit(ctx context.Context, dbName string, db *lash.Database, opt lash.Options) (*job, error) {
	opt = m.applyPolicies(opt)
	version := db.Version()
	key := jobKey(dbName, version, opt)
	reqID := requestIDFrom(ctx)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errShutdown
	}

	if res, ok := m.cache.get(key); ok {
		j := m.newJobLocked(key, dbName, version, opt)
		j.status = JobDone
		j.cached = true
		j.result = res
		j.started = j.created
		j.finished = j.created
		j.cancelCause(nil) // no run to cancel; release the context now
		close(j.done)
		m.met.jobsSubmitted.Inc()
		m.met.jobsCompleted.Inc()
		m.log.Info("job answered from cache", "job_id", j.id, "request_id", reqID, "database", dbName)
		return j, nil
	}

	if running, ok := m.inflight[key]; ok {
		running.coalesced++
		m.met.jobsSubmitted.Inc()
		m.met.jobsCoalesced.Inc()
		m.log.Info("job coalesced", "job_id", running.id, "request_id", reqID, "database", dbName)
		return running, nil
	}

	// Admission control: only now would a fresh job join the queue. Cache
	// hits and coalesced submits are always admitted above — they cost no
	// queue slot — so saturation never degrades already-answerable requests.
	if m.maxQueue > 0 {
		if queued := int(m.met.jobsQueued.Value()); queued >= m.maxQueue {
			return nil, fmt.Errorf("%w: %d jobs queued (bound %d)", errOverloaded, queued, m.maxQueue)
		}
	}

	// Fresh job: capture delta state so a future append can re-mine only
	// the partitions it dirties, and resume from the previous version's
	// state when one is valid for this snapshot. Neither affects the job
	// key or the cached result — Canonical zeroes both, and a delta run is
	// differentially identical to a cold one.
	opt.Capture = true
	if s, ok := m.states[stateKey(dbName, opt)]; ok && s.ValidFor(db, opt) {
		opt.Resume = s
	}
	j := m.newJobLocked(key, dbName, version, opt)
	m.met.jobsSubmitted.Inc()
	j.status = JobQueued
	m.inflight[key] = j
	m.met.jobsQueued.Inc()
	m.log.Info("job queued", "job_id", j.id, "request_id", reqID, "database", dbName)
	m.wg.Add(1)
	go m.run(j, db)
	return j, nil
}

// newJobLocked allocates and registers a job record, pruning the oldest
// terminal records past the retention bound so a long-running server does
// not accumulate every result ever mined. Caller holds m.mu.
func (m *manager) newJobLocked(key, dbName string, version int, opt lash.Options) *job {
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.nextID),
		key:     key,
		dbName:  dbName,
		version: version,
		options: opt,
		done:    make(chan struct{}),
		created: time.Now().UTC(),
	}
	j.ctx, j.cancelCause = context.WithCancelCause(m.baseCtx)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if m.maxJobs > 0 && len(m.order) > m.maxJobs {
		// Drop oldest terminal records first by class: cache-hit
		// pseudo-jobs (their results remain in the cache) before real
		// mined jobs, so a flood of cached requests cannot evict a job a
		// client is still polling. Queued/running jobs are skipped, not
		// stopped at — a single slow job must not let the history grow
		// unbounded behind it.
		excess := len(m.order) - m.maxJobs
		for _, wantCached := range []bool{true, false} {
			if excess == 0 {
				break
			}
			kept := m.order[:0]
			for _, id := range m.order {
				old := m.jobs[id]
				terminal := old.status == JobDone || old.status == JobFailed || old.status == JobCancelled
				if excess > 0 && terminal && old.cached == wantCached {
					delete(m.jobs, id)
					excess--
					continue
				}
				kept = append(kept, id)
			}
			m.order = kept
		}
	}
	return j
}

// run executes one job on a worker slot. The job's context — derived from
// the manager's base context and cancellable via DELETE /v1/jobs/{id} —
// covers both the wait for a slot and the mining itself.
func (m *manager) run(j *job, db *lash.Database) {
	defer m.wg.Done()
	defer j.cancelCause(nil) // release the context's resources

	select {
	case m.sem <- struct{}{}:
	case <-j.ctx.Done():
		m.finish(j, nil, causeOf(j.ctx))
		return
	}
	defer func() { <-m.sem }()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.finish(j, nil, errShutdown)
		return
	}
	j.status = JobRunning
	j.started = time.Now().UTC()
	// The run feeds the server-wide pipeline families (per-phase duration
	// histograms, spill counters, ...) scraped on GET /metrics. The job key
	// is unaffected: Canonical() zeroes Metrics.
	j.options.Metrics = m.met.pm
	m.met.jobsQueued.Dec()
	m.met.jobsRunning.Inc()
	m.met.minesRun.Inc()
	m.met.queueSeconds.Observe(j.started.Sub(j.created).Seconds())
	m.mu.Unlock()
	m.log.Info("job running", "job_id", j.id, "database", j.dbName,
		"queued_ms", j.started.Sub(j.created).Milliseconds())

	res, err := safeMine(func() (*lash.Result, error) {
		return m.mineFn(j.ctx, db, j.options)
	})
	m.finish(j, res, err)
}

// causeOf resolves a done context into its most specific error: the
// cancellation cause if one was set (errJobCancelled for DELETE,
// errShutdown when the manager's base context died), otherwise the plain
// context error (e.g. a streaming client disconnecting).
func causeOf(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil && cause != ctx.Err() {
		return cause
	}
	return ctx.Err()
}

// safeMine invokes one mining closure, converting a panic into an error.
// The MapReduce substrate already recovers panics inside map/reduce tasks;
// this guards the rest of the mining path so a single bad request can fail
// its run without taking down the long-running server.
func safeMine(fn func() (*lash.Result, error)) (res *lash.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: mining panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return fn()
}

// finish moves a job to its terminal status, publishes the result to the
// cache, and wakes all waiters — including every request that coalesced
// onto the job. A run that ended because the job's context was cancelled —
// by DELETE /v1/jobs/{id} or by server shutdown — lands in JobCancelled,
// not JobFailed.
func (m *manager) finish(j *job, res *lash.Result, err error) {
	m.mu.Lock()
	j.finished = time.Now().UTC()
	// Settle the state gauges from the status being left behind, and time
	// the interval the job just completed: its run when it held a worker,
	// or its whole queued life when it never got one.
	switch j.status {
	case JobQueued:
		m.met.jobsQueued.Dec()
		m.met.queueSeconds.Observe(j.finished.Sub(j.created).Seconds())
	case JobRunning:
		m.met.jobsRunning.Dec()
	}
	if !j.started.IsZero() {
		m.met.runSeconds.Observe(j.finished.Sub(j.started).Seconds())
	}
	switch {
	case err == nil:
		j.status = JobDone
		j.result = res
		m.met.jobsCompleted.Inc()
		m.met.spilledRuns.Add(res.Stats.SpillRuns)
		m.met.spilledBytes.Add(res.Stats.SpillBytes)
		// The result enters the cache immediately, charged at an estimate,
		// so an identical resubmission in the next instant is a hit rather
		// than a re-mine. The serving index is built asynchronously — off
		// both the worker goroutine and this lock — and the cache charge is
		// corrected to the exact size once it exists. The wg.Add is safe
		// against close(): the caller still holds its own wg count.
		m.cache.add(j.key, res)
		if m.latest[j.dbName] == nil {
			m.latest[j.dbName] = make(map[int]*job)
		}
		m.latest[j.dbName][j.version] = j
		m.met.deltaDirty.Add(res.Stats.DeltaPartitionsDirty)
		m.met.deltaReused.Add(res.Stats.DeltaPartitionsReused)
		if res.State != nil {
			m.storeStateLocked(stateKey(j.dbName, j.options), res.State)
		}
		m.wg.Add(1)
		go m.buildIndex(j.key, res)
	case wasCancelled(j.ctx, err):
		j.status = JobCancelled
		j.err = err
		m.met.jobsCancelled.Inc()
	default:
		j.status = JobFailed
		j.err = err
		m.met.jobsFailed.Inc()
		// A deadline expiry is cancellation-shaped but counts as a failure:
		// the server (or the request's deadline_ms) decided the run was not
		// worth finishing, and operators alert on this separately.
		if errors.Is(err, lash.ErrDeadlineExceeded) {
			m.met.jobsDeadline.Inc()
		}
	}
	delete(m.inflight, j.key)
	close(j.done)
	status, jerr := j.status, j.err
	m.mu.Unlock()
	if jerr != nil {
		m.log.Info("job finished", "job_id", j.id, "database", j.dbName,
			"status", string(status), "error", jerr.Error())
		return
	}
	m.log.Info("job finished", "job_id", j.id, "database", j.dbName,
		"status", string(status), "run_ms", j.finished.Sub(j.started).Milliseconds())
}

// buildIndex builds a finished result's serving index off the worker
// goroutine, records the build cost, and corrects the cache's byte charge
// for the entry to estimate + exact index size. Result.Index is memoized,
// so the pattern endpoints share the one index built here; a request that
// races ahead of this goroutine simply builds it first and this call
// returns the memoized copy instantly.
func (m *manager) buildIndex(key string, res *lash.Result) {
	defer m.wg.Done()
	begin := time.Now()
	ix := res.Index()
	m.met.pindexBuildSeconds.Observe(time.Since(begin).Seconds())
	m.met.pindexBytes.Add(ix.SizeBytes())
	m.cache.recost(key, estimateResultBytes(res)+ix.SizeBytes())
}

// wasCancelled reports whether a run's error means its context was
// cancelled rather than mining failing on its own: the cancel sentinels in
// the error chain directly, or a context.Canceled whose job context was
// cancelled by DELETE or shutdown. (A MineFunc may surface either the
// plain ctx error or the substrate's cause-carrying wrap.)
func wasCancelled(ctx context.Context, err error) bool {
	if errors.Is(err, errJobCancelled) || errors.Is(err, errShutdown) {
		return true
	}
	if !errors.Is(err, context.Canceled) {
		return false
	}
	cause := context.Cause(ctx)
	return errors.Is(cause, errJobCancelled) || errors.Is(cause, errShutdown)
}

// cancelJob cancels the job with the given id. Queued and running jobs are
// cancelled (the run notices via its context and finishes as
// JobCancelled); cancelling an already-cancelled job is a no-op; any other
// terminal job is a conflict. Cancellation applies to every submitter
// coalesced onto the job — their shared done channel is closed exactly
// once by finish, and the singleflight slot frees so an identical resubmit
// starts a fresh run.
func (m *manager) cancelJob(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", errJobMissing, id)
	}
	// Decide and cancel under the lock: finish() also takes it, so a job
	// observed queued/running here cannot turn done before the cancel
	// lands. (cancelCause never invokes finish synchronously — the job's
	// own goroutine observes the context and finishes — so this cannot
	// deadlock.)
	switch j.status {
	case JobCancelled:
		return j, nil // idempotent
	case JobDone, JobFailed:
		return j, fmt.Errorf("%w: job %s already %s", errConflict, id, j.status)
	}
	// Queued or running: cancel the job context; the goroutine that owns
	// the job observes it (in the slot wait or inside mining) and calls
	// finish. The status flip is therefore asynchronous — callers see
	// queued/running until the run actually unwinds. A run that had
	// already produced its result when the cancel landed may still finish
	// as done; poll until terminal either way.
	j.cancelCause(errJobCancelled)
	m.log.Info("job cancel requested", "job_id", j.id, "database", j.dbName, "status", string(j.status))
	return j, nil
}

// stream runs one streaming mining request under the manager's worker
// bound. Streaming runs are not jobs: they bypass the cache and
// singleflight (their results are never materialized), but they hold a
// worker slot, count into the stats, and participate in shutdown draining
// — closing the manager cancels their context.
func (m *manager) stream(ctx context.Context, db *lash.Database, opt lash.Options, emit func(lash.Pattern) error) (*lash.Result, error) {
	opt = m.applyPolicies(opt)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errShutdown
	}
	m.met.jobsSubmitted.Inc()
	m.met.streams.Inc()
	m.wg.Add(1)
	m.mu.Unlock()
	defer m.wg.Done()
	reqID := requestIDFrom(ctx)
	m.log.Info("stream accepted", "request_id", reqID, "options", opt.CacheKey())

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stopWatch := context.AfterFunc(m.baseCtx, func() { cancel(errShutdown) })
	defer stopWatch()

	wait := time.Now()
	select {
	case m.sem <- struct{}{}:
	case <-sctx.Done():
		m.met.queueSeconds.Observe(time.Since(wait).Seconds())
		return nil, causeOf(sctx)
	}
	defer func() { <-m.sem }()
	m.met.queueSeconds.Observe(time.Since(wait).Seconds())
	m.met.minesRun.Inc()

	// Feed the same process-wide pipeline families the async jobs feed.
	opt.Metrics = m.met.pm
	start := time.Now()
	res, err := safeMine(func() (*lash.Result, error) {
		return m.streamFn(sctx, db, opt, emit)
	})

	m.met.runSeconds.Observe(time.Since(start).Seconds())
	if res != nil {
		m.met.spilledRuns.Add(res.Stats.SpillRuns)
		m.met.spilledBytes.Add(res.Stats.SpillBytes)
	}
	outcome := "done"
	switch {
	case err == nil:
		m.met.jobsCompleted.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, errShutdown) || sctx.Err() != nil:
		// The client went away or the server is draining — the run was
		// cancelled, mining did not fail. The sctx check also catches a
		// disconnect surfacing as the NDJSON write error (the emit error
		// takes precedence over the context error in lash.Stream).
		m.met.jobsCancelled.Inc()
		outcome = "cancelled"
	default:
		m.met.jobsFailed.Inc()
		if errors.Is(err, lash.ErrDeadlineExceeded) {
			m.met.jobsDeadline.Inc()
		}
		outcome = "failed"
	}
	m.log.Info("stream finished", "request_id", reqID, "status", outcome,
		"run_ms", time.Since(start).Milliseconds())
	return res, err
}

// get returns the job with the given id.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// storeStateLocked publishes a run's capture state for future delta mines,
// evicting the store's oldest key once the bound is hit. Replacing the
// state under an existing key keeps its slot. Caller holds m.mu.
func (m *manager) storeStateLocked(key string, s *lash.MineState) {
	if _, ok := m.states[key]; !ok {
		if len(m.stateOrder) >= maxMineStates {
			oldest := m.stateOrder[0]
			m.stateOrder = m.stateOrder[1:]
			delete(m.states, oldest)
		}
		m.stateOrder = append(m.stateOrder, key)
	}
	m.states[key] = s
}

// latestResult returns the most recent successful job for a database at its
// highest mined corpus version — the default the pattern endpoints serve.
func (m *manager) latestResult(dbName string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *job
	for _, j := range m.latest[dbName] {
		if best == nil || j.version > best.version {
			best = j
		}
	}
	return best, best != nil
}

// latestResultAt returns the most recent successful job for a database at
// one specific corpus version.
func (m *manager) latestResultAt(dbName string, version int) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.latest[dbName][version]
	return j, ok
}

// list returns all job ids in submission order.
func (m *manager) list() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// stats snapshots the manager counters straight from the metric registry —
// the same handles GET /metrics scrapes — so the JSON stats cannot drift
// from the Prometheus ones (job records being pruned from the history has
// no effect on either).
func (m *manager) stats() JobStats {
	return JobStats{
		Submitted:    uint64(m.met.jobsSubmitted.Value()),
		Coalesced:    uint64(m.met.jobsCoalesced.Value()),
		MinesRun:     uint64(m.met.minesRun.Value()),
		Completed:    uint64(m.met.jobsCompleted.Value()),
		Failed:       uint64(m.met.jobsFailed.Value()),
		Cancelled:    uint64(m.met.jobsCancelled.Value()),
		Streams:      uint64(m.met.streams.Value()),
		QueueTimeMS:  int64(m.met.queueSeconds.Sum() * 1000),
		RunTimeMS:    int64(m.met.runSeconds.Sum() * 1000),
		SpilledRuns:  uint64(m.met.spilledRuns.Value()),
		SpilledBytes: uint64(m.met.spilledBytes.Value()),
		Queued:       int(m.met.jobsQueued.Value()),
		Running:      int(m.met.jobsRunning.Value()),
	}
}

// draining reports whether close has begun: from that moment every new
// submission is refused with errShutdown (503 + Retry-After) and /readyz
// answers 503, while in-flight runs finish under the drain timeout.
func (m *manager) draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// close stops accepting jobs and waits for in-flight ones to drain or ctx
// to expire, whichever comes first. Queued jobs that have not claimed a
// worker slot yet fail with errShutdown. Idempotent: repeated closes (and
// submissions racing them) all observe the same refused state.
func (m *manager) close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel(errShutdown)

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown timed out with jobs still running: %w", ctx.Err())
	}
}

package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"lash"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	// JobQueued means the job is waiting for a worker slot.
	JobQueued JobStatus = "queued"
	// JobRunning means a worker is mining.
	JobRunning JobStatus = "running"
	// JobDone means the result is available.
	JobDone JobStatus = "done"
	// JobFailed means mining returned an error.
	JobFailed JobStatus = "failed"
)

// JobStats is a snapshot of the job manager counters, as reported by
// GET /v1/stats.
type JobStats struct {
	// Submitted counts every mine request accepted, including the ones
	// answered from cache or coalesced onto a running job.
	Submitted uint64 `json:"submitted"`
	// Coalesced counts requests attached to an identical in-flight job
	// instead of starting their own (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// MinesRun counts actual executions of the mining function — the work
	// the cache and coalescing avoided is Submitted - MinesRun.
	MinesRun  uint64 `json:"mines_run"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
}

// job is one asynchronous mining run. Fields past `done` are guarded by the
// owning manager's mutex; done is closed exactly once when the job reaches a
// terminal status.
type job struct {
	id      string
	key     string
	dbName  string
	options lash.Options
	done    chan struct{}

	status    JobStatus
	cached    bool // result came from the cache, no mining ran
	coalesced int  // extra submits answered by this job
	result    *lash.Result
	err       error
	created   time.Time
	started   time.Time
	finished  time.Time
}

// manager runs mining jobs on a bounded worker pool. Identical in-flight
// requests (same database, same canonical options) coalesce onto one job,
// and finished results land in an LRU cache so repeats skip mining
// entirely.
type manager struct {
	mineFn  func(*lash.Database, lash.Options) (*lash.Result, error)
	cache   *resultCache
	sem     chan struct{} // worker slots
	wg      sync.WaitGroup
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*job
	order    []string        // submission order, for stable listings
	inflight map[string]*job // key → queued/running job (singleflight)
	latest   map[string]*job // database → most recent successful job
	maxJobs  int             // retained job records; older terminal jobs are pruned
	nextID   uint64

	submitted uint64
	coalesced uint64
	minesRun  uint64
	completed uint64
	failed    uint64
}

var (
	errBadSpec    = errors.New("bad request")
	errConflict   = errors.New("conflict")
	errShutdown   = errors.New("server is shutting down")
	errJobMissing = errors.New("no such job")
)

func newManager(workers, cacheSize, maxJobs int, mineFn func(*lash.Database, lash.Options) (*lash.Result, error)) *manager {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &manager{
		mineFn:   mineFn,
		cache:    newResultCache(cacheSize),
		sem:      make(chan struct{}, workers),
		baseCtx:  ctx,
		cancel:   cancel,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		latest:   make(map[string]*job),
		maxJobs:  maxJobs,
	}
}

// jobKey identifies equivalent mining requests: same database, same
// canonical options.
func jobKey(dbName string, opt lash.Options) string {
	return dbName + "|" + opt.CacheKey()
}

// submit registers a mining request and returns the job that answers it.
// Three paths, checked in order: a cached result yields an already-done job
// without mining; an identical in-flight job absorbs the request
// (singleflight); otherwise a fresh job is queued on the worker pool.
func (m *manager) submit(dbName string, db *lash.Database, opt lash.Options) (*job, error) {
	key := jobKey(dbName, opt)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errShutdown
	}
	m.submitted++

	if res, ok := m.cache.get(key); ok {
		j := m.newJobLocked(key, dbName, opt)
		j.status = JobDone
		j.cached = true
		j.result = res
		j.started = j.created
		j.finished = j.created
		close(j.done)
		m.completed++
		return j, nil
	}

	if running, ok := m.inflight[key]; ok {
		running.coalesced++
		m.coalesced++
		return running, nil
	}

	j := m.newJobLocked(key, dbName, opt)
	j.status = JobQueued
	m.inflight[key] = j
	m.wg.Add(1)
	go m.run(j, db)
	return j, nil
}

// newJobLocked allocates and registers a job record, pruning the oldest
// terminal records past the retention bound so a long-running server does
// not accumulate every result ever mined. Caller holds m.mu.
func (m *manager) newJobLocked(key, dbName string, opt lash.Options) *job {
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.nextID),
		key:     key,
		dbName:  dbName,
		options: opt,
		done:    make(chan struct{}),
		created: time.Now().UTC(),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if m.maxJobs > 0 && len(m.order) > m.maxJobs {
		// Drop oldest terminal records first by class: cache-hit
		// pseudo-jobs (their results remain in the cache) before real
		// mined jobs, so a flood of cached requests cannot evict a job a
		// client is still polling. Queued/running jobs are skipped, not
		// stopped at — a single slow job must not let the history grow
		// unbounded behind it.
		excess := len(m.order) - m.maxJobs
		for _, wantCached := range []bool{true, false} {
			if excess == 0 {
				break
			}
			kept := m.order[:0]
			for _, id := range m.order {
				old := m.jobs[id]
				terminal := old.status == JobDone || old.status == JobFailed
				if excess > 0 && terminal && old.cached == wantCached {
					delete(m.jobs, id)
					excess--
					continue
				}
				kept = append(kept, id)
			}
			m.order = kept
		}
	}
	return j
}

// run executes one job on a worker slot.
func (m *manager) run(j *job, db *lash.Database) {
	defer m.wg.Done()

	select {
	case m.sem <- struct{}{}:
	case <-m.baseCtx.Done():
		m.finish(j, nil, errShutdown)
		return
	}
	defer func() { <-m.sem }()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.finish(j, nil, errShutdown)
		return
	}
	j.status = JobRunning
	j.started = time.Now().UTC()
	m.minesRun++
	m.mu.Unlock()

	res, err := m.mine(db, j.options)
	m.finish(j, res, err)
}

// mine invokes the mining function, converting a panic into a job error.
// The MapReduce substrate already recovers panics inside map/reduce tasks;
// this guards the rest of the mining path so a single bad request can fail
// its job without taking down the long-running server.
func (m *manager) mine(db *lash.Database, opt lash.Options) (res *lash.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: mining panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return m.mineFn(db, opt)
}

// finish moves a job to its terminal status, publishes the result to the
// cache, and wakes all waiters.
func (m *manager) finish(j *job, res *lash.Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.finished = time.Now().UTC()
	if err != nil {
		j.status = JobFailed
		j.err = err
		m.failed++
	} else {
		j.status = JobDone
		j.result = res
		m.completed++
		m.cache.add(j.key, res)
		m.latest[j.dbName] = j
	}
	delete(m.inflight, j.key)
	close(j.done)
}

// get returns the job with the given id.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// latestResult returns the most recent successful result for a database.
func (m *manager) latestResult(dbName string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.latest[dbName]
	return j, ok
}

// list returns all job ids in submission order.
func (m *manager) list() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

func (m *manager) stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := JobStats{
		Submitted: m.submitted,
		Coalesced: m.coalesced,
		MinesRun:  m.minesRun,
		Completed: m.completed,
		Failed:    m.failed,
	}
	for _, j := range m.jobs {
		switch j.status {
		case JobQueued:
			s.Queued++
		case JobRunning:
			s.Running++
		}
	}
	return s
}

// close stops accepting jobs and waits for in-flight ones to drain or ctx
// to expire, whichever comes first. Queued jobs that have not claimed a
// worker slot yet fail with errShutdown.
func (m *manager) close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown timed out with jobs still running: %w", ctx.Err())
	}
}

package server

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lash"
	"lash/internal/faults"
	"lash/internal/obs"
)

// DatabaseSpec describes a database to load into the registry. Exactly one
// source must be given: server-side files (SequencesFile, gated by the
// server's DataDir), inline Sequences, or a built-in Generator. A hierarchy
// is optional in all cases — without one, items are flat roots.
type DatabaseSpec struct {
	// Name registers the database under a unique handle.
	Name string `json:"name"`

	// SequencesFile / HierarchyFile are paths relative to the server's data
	// directory (one sequence / one "child parent" edge per line). Rejected
	// when the server was started without a data directory.
	SequencesFile string `json:"sequences_file,omitempty"`
	HierarchyFile string `json:"hierarchy_file,omitempty"`

	// Sequences / Hierarchy carry the same line-oriented formats inline.
	Sequences []string `json:"sequences,omitempty"`
	Hierarchy []string `json:"hierarchy,omitempty"`

	// Generator selects a built-in synthetic corpus: "text" (NYT-style, with
	// a syntactic hierarchy) or "market" (Amazon-style, with a category
	// hierarchy).
	Generator string `json:"generator,omitempty"`
	// Size scales the generator: sentences for "text", users for "market"
	// (0 = the generator's default of 1000).
	Size int `json:"size,omitempty"`
	// TextHierarchy picks the "text" hierarchy variant: L, P, LP or CLP.
	TextHierarchy string `json:"text_hierarchy,omitempty"`
	// Levels is the "market" category depth, 2..8 (0 = 8).
	Levels int `json:"levels,omitempty"`
	// Seed makes generation deterministic.
	Seed int64 `json:"seed,omitempty"`
}

// DatabaseInfo describes a registered database at its latest corpus
// version. Version starts at 1 and increments with every append
// (POST /v1/databases/{name}/sequences); the sequence/item counts describe
// the latest version, while older versions stay readable through
// version-qualified mining and pattern queries.
type DatabaseInfo struct {
	Name           string    `json:"name"`
	Source         string    `json:"source"`
	Version        int       `json:"version"`
	NumSequences   int       `json:"num_sequences"`
	NumItems       int       `json:"num_items"`
	HierarchyDepth int       `json:"hierarchy_depth"`
	CreatedAt      time.Time `json:"created_at"`
	UpdatedAt      time.Time `json:"updated_at"`
}

// registry holds named databases shared by all requests. Every corpus
// version is an immutable snapshot — an append installs a new version next
// to the old ones — so concurrent mining jobs read whichever version they
// were submitted against without locking.
type registry struct {
	dataDir string // "" disables file-based specs
	// loadSeconds, when set, observes how long each registration spent
	// loading/generating its corpus (nil-safe; server.New wires it to
	// lash_corpus_load_seconds).
	loadSeconds *obs.Histogram
	// versionsTotal, when set, counts every corpus version installed —
	// registrations and appends alike (lash_corpus_versions_total).
	versionsTotal *obs.Counter
	// faults, when non-nil, arms the registry's corpus-loading injection
	// point for chaos tests (see internal/faults). Nil in production.
	faults *faults.Registry

	mu    sync.RWMutex
	dbs   map[string]*dbEntry
	order []string // registration order, for stable listings
}

// dbEntry is one named database's version history. versions[v-1] is the
// immutable snapshot of corpus version v; info describes the latest.
// appendMu serializes appends per database — the merge itself runs outside
// the registry lock, so a slow append never blocks reads or other
// databases — while the registry's mu guards versions/info for readers.
type dbEntry struct {
	appendMu sync.Mutex
	versions []*lash.Database
	info     DatabaseInfo
}

func newRegistry(dataDir string) *registry {
	return &registry{dataDir: dataDir, dbs: make(map[string]*dbEntry)}
}

// add loads the database described by spec and registers it. It returns
// errBadSpec-wrapped errors for malformed specs and errConflict when the
// name is taken.
func (r *registry) add(spec DatabaseSpec) (DatabaseInfo, error) {
	if spec.Name == "" {
		return DatabaseInfo{}, fmt.Errorf("%w: database name is required", errBadSpec)
	}
	r.mu.RLock()
	_, taken := r.dbs[spec.Name]
	r.mu.RUnlock()
	if taken {
		return DatabaseInfo{}, fmt.Errorf("%w: database %q already exists", errConflict, spec.Name)
	}

	begin := time.Now()
	db, source, err := r.load(spec)
	if err != nil {
		return DatabaseInfo{}, err
	}
	r.loadSeconds.Observe(time.Since(begin).Seconds())
	return r.install(spec.Name, source, db)
}

// install registers an already-built database as version 1 under name.
func (r *registry) install(name, source string, db *lash.Database) (DatabaseInfo, error) {
	now := time.Now().UTC()
	info := DatabaseInfo{
		Name:           name,
		Source:         source,
		Version:        db.Version(),
		NumSequences:   db.NumSequences(),
		NumItems:       db.NumItems(),
		HierarchyDepth: db.HierarchyDepth(),
		CreatedAt:      now,
		UpdatedAt:      now,
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.dbs[name]; taken {
		return DatabaseInfo{}, fmt.Errorf("%w: database %q already exists", errConflict, name)
	}
	r.dbs[name] = &dbEntry{versions: []*lash.Database{db}, info: info}
	r.order = append(r.order, name)
	r.versionsTotal.Inc()
	return info, nil
}

// append installs the next corpus version of the named database: the
// fragment is merged onto the latest version (outside the registry lock —
// merging can rebuild the vocabulary) and the result published as version
// latest+1. Appends to one database serialize; every prior version stays
// readable. The fragment's sequences and vocabulary are validated by
// lash.Database.Append (errBadSpec on rejection).
func (r *registry) append(name string, frag *lash.Database) (DatabaseInfo, error) {
	r.mu.RLock()
	e, ok := r.dbs[name]
	r.mu.RUnlock()
	if !ok {
		return DatabaseInfo{}, fmt.Errorf("%w %q", errDBMissing, name)
	}

	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	r.mu.RLock()
	base := e.versions[len(e.versions)-1]
	r.mu.RUnlock()

	next, err := base.Append(frag)
	if err != nil {
		return DatabaseInfo{}, fmt.Errorf("%w: %v", errBadSpec, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	e.versions = append(e.versions, next)
	e.info.Version = next.Version()
	e.info.NumSequences = next.NumSequences()
	e.info.NumItems = next.NumItems()
	e.info.HierarchyDepth = next.HierarchyDepth()
	e.info.UpdatedAt = time.Now().UTC()
	r.versionsTotal.Inc()
	return e.info, nil
}

// load builds the database outside the registry lock (loading can be slow).
func (r *registry) load(spec DatabaseSpec) (*lash.Database, string, error) {
	// Sequences come from exactly one source; hierarchy data (file and/or
	// inline, which merge) rides along with either non-generator source.
	fromGen := spec.Generator != ""
	seqSources := 0
	for _, has := range []bool{spec.SequencesFile != "", len(spec.Sequences) > 0, fromGen} {
		if has {
			seqSources++
		}
	}
	switch {
	case seqSources == 0:
		return nil, "", fmt.Errorf("%w: one of sequences_file, sequences or generator is required", errBadSpec)
	case seqSources > 1:
		return nil, "", fmt.Errorf("%w: sequences_file, sequences and generator are mutually exclusive", errBadSpec)
	case fromGen && (spec.HierarchyFile != "" || len(spec.Hierarchy) > 0):
		return nil, "", fmt.Errorf("%w: generator cannot be combined with hierarchy data", errBadSpec)
	}

	// Chaos hook: a corpus-load failure (bad disk, truncated file) at the
	// moment the spec validated and real loading begins. Surfaces as the
	// registration's error — a server-side failure, not a bad request.
	if err := r.faults.Hit("server.corpus.load"); err != nil {
		return nil, "", fmt.Errorf("loading database %q: %w", spec.Name, err)
	}

	if fromGen {
		db, err := r.generate(spec)
		if err != nil {
			return nil, "", err
		}
		return db, "generator:" + spec.Generator, nil
	}

	b := lash.NewDatabaseBuilder()
	if len(spec.Hierarchy) > 0 {
		if err := b.ReadHierarchy(strings.NewReader(strings.Join(spec.Hierarchy, "\n"))); err != nil {
			return nil, "", fmt.Errorf("%w: inline hierarchy: %v", errBadSpec, err)
		}
	}
	if spec.HierarchyFile != "" {
		if err := r.readFile(spec.HierarchyFile, b.ReadHierarchy); err != nil {
			return nil, "", err
		}
	}
	source := "inline"
	if len(spec.Sequences) > 0 {
		if err := b.ReadSequences(strings.NewReader(strings.Join(spec.Sequences, "\n"))); err != nil {
			return nil, "", fmt.Errorf("%w: inline sequences: %v", errBadSpec, err)
		}
	} else {
		source = "file:" + spec.SequencesFile
		if err := r.readFile(spec.SequencesFile, b.ReadSequences); err != nil {
			return nil, "", err
		}
	}
	db, err := b.Build()
	if err != nil {
		return nil, "", fmt.Errorf("%w: %v", errBadSpec, err)
	}
	return db, source, nil
}

func (r *registry) generate(spec DatabaseSpec) (*lash.Database, error) {
	switch spec.Generator {
	case "text":
		db, err := lash.GenerateTextDatabase(lash.TextConfig{
			Sentences: spec.Size,
			Hierarchy: spec.TextHierarchy,
			Seed:      spec.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errBadSpec, err)
		}
		return db, nil
	case "market":
		db, err := lash.GenerateMarketDatabase(lash.MarketConfig{
			Users:           spec.Size,
			HierarchyLevels: spec.Levels,
			Seed:            spec.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errBadSpec, err)
		}
		return db, nil
	}
	return nil, fmt.Errorf("%w: unknown generator %q (want text or market)", errBadSpec, spec.Generator)
}

// readFile resolves path inside the data directory and feeds the file to
// read. File access is disabled entirely when no data directory was
// configured, and paths may not escape it.
func (r *registry) readFile(path string, read func(io.Reader) error) error {
	if r.dataDir == "" {
		return fmt.Errorf("%w: file loading is disabled (start lashd with -data)", errBadSpec)
	}
	if filepath.IsAbs(path) {
		return fmt.Errorf("%w: path %q must be relative to the data directory", errBadSpec, path)
	}
	full := filepath.Join(r.dataDir, filepath.Clean(path))
	rel, err := filepath.Rel(r.dataDir, full)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return fmt.Errorf("%w: path %q escapes the data directory", errBadSpec, path)
	}
	f, err := os.Open(full)
	if err != nil {
		return fmt.Errorf("%w: %v", errBadSpec, err)
	}
	defer f.Close()
	if err := read(f); err != nil {
		return fmt.Errorf("%w: %s: %v", errBadSpec, path, err)
	}
	return nil
}

// get returns the named database's latest corpus version.
func (r *registry) get(name string) (*lash.Database, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.dbs[name]
	if !ok {
		return nil, false
	}
	return e.versions[len(e.versions)-1], true
}

// getVersion returns one specific corpus version of the named database
// (version 0 means latest). The bool results distinguish "no such database"
// from "no such version".
func (r *registry) getVersion(name string, version int) (db *lash.Database, dbOK, verOK bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.dbs[name]
	if !ok {
		return nil, false, false
	}
	if version == 0 {
		return e.versions[len(e.versions)-1], true, true
	}
	if version < 1 || version > len(e.versions) {
		return nil, true, false
	}
	return e.versions[version-1], true, true
}

// info returns the named database's metadata.
func (r *registry) infoFor(name string) (DatabaseInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.dbs[name]
	if !ok {
		return DatabaseInfo{}, false
	}
	return e.info, true
}

// list returns all registered databases in registration order.
func (r *registry) list() []DatabaseInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatabaseInfo, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.dbs[name].info)
	}
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.dbs)
}

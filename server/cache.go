package server

import (
	"container/list"
	"sync"

	"lash"
	"lash/internal/obs"
)

// CacheStats is a snapshot of the result cache counters, as reported by
// GET /v1/stats.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// resultCache is a mutex-guarded LRU cache of mining results keyed by
// database name + canonical options (see jobKey). A capacity ≤ 0 disables
// caching: every lookup is a miss and nothing is stored.
// The hit/miss/eviction counters are obs handles so a server can expose
// them on GET /metrics; a cache built by newResultCache starts with private
// standalone handles and instrument swaps in registry-backed ones.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheEntry struct {
	key string
	res *lash.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity:  capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      &obs.Counter{},
		misses:    &obs.Counter{},
		evictions: &obs.Counter{},
	}
}

// instrument replaces the cache's private counters with registry-backed
// ones. Call it before the cache sees traffic.
func (c *resultCache) instrument(hits, misses, evictions *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = hits, misses, evictions
}

// get returns the cached result for key, promoting it to most recently
// used. Every call counts as exactly one hit or one miss.
func (c *resultCache) get(key string) (*lash.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores a result, evicting the least recently used entry when full.
func (c *resultCache) add(key string, res *lash.Result) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      uint64(c.hits.Value()),
		Misses:    uint64(c.misses.Value()),
		Evictions: uint64(c.evictions.Value()),
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}

package server

import (
	"container/list"
	"sync"

	"lash"
	"lash/internal/obs"
)

// numCacheShards is the fixed shard count of the result cache. Keys spread
// across shards by hash, so concurrent lookups on different keys contend on
// different locks.
const numCacheShards = 8

// CacheShardStats is one shard's slice of the result-cache counters.
type CacheShardStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Bytes     int64  `json:"bytes"`
}

// CacheStats is a snapshot of the result cache counters, as reported by
// GET /v1/stats. The top-level counters are the sums over Shards.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	// Bytes and CapacityBytes report the byte budget: Bytes is the sum of
	// every cached result's charge (its serving index's exact SizeBytes
	// plus the estimated result footprint), CapacityBytes the configured
	// budget (0 when the cache is disabled).
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	// Capacity is the deprecated entry bound (Config.CacheSize alias);
	// 0 means the cache is bounded by bytes alone.
	Capacity int               `json:"capacity,omitempty"`
	Shards   []CacheShardStats `json:"shards,omitempty"`
}

// resultCache is a sharded LRU cache of mining results keyed by database
// name + canonical options (see jobKey), bounded by a byte budget rather
// than an entry count: every entry is charged its serving-index SizeBytes
// plus an estimate of the raw result, and each shard evicts least recently
// used entries once its slice of the budget is exceeded. An entry's charge
// starts as a cheap estimate at insertion (insertion happens under the job
// manager's lock; building the index there would stall it) and is corrected
// by recost once the manager's index-build goroutine knows the exact size.
//
// A budget ≤ 0 disables caching: every lookup is a miss, nothing is stored.
// The hit/miss/eviction counters exist twice by design: per shard (plain
// ints under the shard lock, summed by stats for /v1/stats) and as obs
// handles for GET /metrics; instrument swaps the latter for registry-backed
// ones before the cache sees traffic.
type resultCache struct {
	shardBudget  int64 // byte budget per shard; ≤ 0 disables the cache
	shardEntries int   // deprecated per-shard entry bound (0 = none)
	shards       [numCacheShards]cacheShard

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key   string
	res   *lash.Result
	bytes int64
}

// newResultCache builds a cache with the given total byte budget, split
// evenly across the shards, and an optional entry bound (the deprecated
// Config.CacheSize alias), also split across shards rounding up.
func newResultCache(budgetBytes int64, maxEntries int) *resultCache {
	c := &resultCache{
		hits:      &obs.Counter{},
		misses:    &obs.Counter{},
		evictions: &obs.Counter{},
	}
	if budgetBytes > 0 {
		c.shardBudget = (budgetBytes + numCacheShards - 1) / numCacheShards
	}
	if maxEntries > 0 {
		c.shardEntries = (maxEntries + numCacheShards - 1) / numCacheShards
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// instrument replaces the cache's private obs counters with registry-backed
// ones. Call it before the cache sees traffic.
func (c *resultCache) instrument(hits, misses, evictions *obs.Counter) {
	c.hits, c.misses, c.evictions = hits, misses, evictions
}

// shardFor hashes a job key to its shard (FNV-1a).
func (c *resultCache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%numCacheShards]
}

// get returns the cached result for key, promoting it to most recently
// used in its shard. Every call counts as exactly one hit or one miss.
func (c *resultCache) get(key string) (*lash.Result, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		sh.misses++
		c.misses.Inc()
		return nil, false
	}
	sh.hits++
	c.hits.Inc()
	sh.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// estimateResultBytes approximates a result's memory footprint before its
// serving index exists: per-pattern and per-item overheads plus string
// bytes. recost replaces the guess with index-exact accounting later; the
// estimate only has to be sane enough to keep a burst of insertions from
// blowing the budget in the window before their indexes are built.
func estimateResultBytes(res *lash.Result) int64 {
	bytes := int64(256)
	for _, p := range res.Patterns {
		bytes += 32 // Pattern header
		for _, it := range p.Items {
			bytes += int64(len(it)) + 16
		}
	}
	for _, p := range res.FrequentItems {
		bytes += 32
		for _, it := range p.Items {
			bytes += int64(len(it)) + 16
		}
	}
	return bytes
}

// add stores a result charged at its estimated size, evicting least
// recently used entries if the shard's slice of the budget is exceeded.
func (c *resultCache) add(key string, res *lash.Result) {
	if c.shardBudget <= 0 {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bytes := estimateResultBytes(res)
	if el, ok := sh.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		sh.bytes += bytes - ent.bytes
		ent.res, ent.bytes = res, bytes
		sh.ll.MoveToFront(el)
	} else {
		sh.items[key] = sh.ll.PushFront(&cacheEntry{key: key, res: res, bytes: bytes})
		sh.bytes += bytes
	}
	c.evictOverBudgetLocked(sh)
}

// recost corrects a cached entry's byte charge once its exact size is
// known (the estimate from add plus the serving index's SizeBytes), then
// re-applies the budget. Missing keys — the entry may have been evicted in
// the meantime — are ignored.
func (c *resultCache) recost(key string, bytes int64) {
	if c.shardBudget <= 0 {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	sh.bytes += bytes - ent.bytes
	ent.bytes = bytes
	c.evictOverBudgetLocked(sh)
}

// evictOverBudgetLocked drops least recently used entries while the shard
// exceeds its byte budget or the deprecated entry bound. Caller holds sh.mu.
func (c *resultCache) evictOverBudgetLocked(sh *cacheShard) {
	for sh.ll.Len() > 0 && (sh.bytes > c.shardBudget || (c.shardEntries > 0 && sh.ll.Len() > c.shardEntries)) {
		oldest := sh.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		sh.ll.Remove(oldest)
		delete(sh.items, ent.key)
		sh.bytes -= ent.bytes
		sh.evictions++
		c.evictions.Inc()
	}
}

// stats sums the per-shard counters into one snapshot, shard detail
// included.
func (c *resultCache) stats() CacheStats {
	s := CacheStats{Shards: make([]CacheShardStats, numCacheShards)}
	if c.shardBudget > 0 {
		s.CapacityBytes = c.shardBudget * numCacheShards
		s.Capacity = c.shardEntries * numCacheShards
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		ss := CacheShardStats{
			Hits:      sh.hits,
			Misses:    sh.misses,
			Evictions: sh.evictions,
			Size:      sh.ll.Len(),
			Bytes:     sh.bytes,
		}
		sh.mu.Unlock()
		s.Shards[i] = ss
		s.Hits += ss.Hits
		s.Misses += ss.Misses
		s.Evictions += ss.Evictions
		s.Size += ss.Size
		s.Bytes += ss.Bytes
	}
	return s
}

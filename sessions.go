package lash

import (
	"sort"
)

// SessionBuilder turns timestamped (user, item) events into per-user input
// sequences, the preprocessing the paper applies to the Amazon review data
// (§6.1: "we identified user sessions by grouping the reviews by user and
// sorting each so-obtained sequence by timestamp"). Events may arrive in any
// order; ties on the timestamp keep insertion order (stable sort).
type SessionBuilder struct {
	events map[string][]sessionEvent
	order  []string // user first-seen order, for deterministic output
}

type sessionEvent struct {
	ts   int64
	seq  int // insertion index, for stable ordering on timestamp ties
	item string
}

// NewSessionBuilder returns an empty session builder.
func NewSessionBuilder() *SessionBuilder {
	return &SessionBuilder{events: make(map[string][]sessionEvent)}
}

// Add records one event: user interacted with item at the given timestamp
// (any monotone integer scale — Unix seconds, milliseconds, ...).
func (s *SessionBuilder) Add(user string, timestamp int64, item string) *SessionBuilder {
	evs, ok := s.events[user]
	if !ok {
		s.order = append(s.order, user)
	}
	s.events[user] = append(evs, sessionEvent{ts: timestamp, seq: len(evs), item: item})
	return s
}

// NumUsers returns the number of distinct users seen so far.
func (s *SessionBuilder) NumUsers() int { return len(s.order) }

// AppendTo sorts each user's events by timestamp and appends one sequence
// per user (in user first-seen order) to the database builder.
func (s *SessionBuilder) AppendTo(db *DatabaseBuilder) {
	var items []string
	for _, user := range s.order {
		evs := s.events[user]
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].ts != evs[j].ts {
				return evs[i].ts < evs[j].ts
			}
			return evs[i].seq < evs[j].seq
		})
		items = items[:0]
		for _, e := range evs {
			items = append(items, e.item)
		}
		db.AddSequence(items...)
	}
}

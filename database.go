package lash

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/seqdb"
)

// Database is an immutable sequence database over an item hierarchy, ready
// for mining. Build one with a DatabaseBuilder.
type Database struct {
	db *gsm.Database
}

// NumSequences returns the number of input sequences.
func (d *Database) NumSequences() int { return len(d.db.Seqs) }

// NumItems returns the vocabulary size (including hierarchy-only items).
func (d *Database) NumItems() int { return d.db.Forest.Size() }

// HierarchyDepth returns the number of hierarchy levels (1 = flat).
func (d *Database) HierarchyDepth() int { return d.db.Forest.Depth() }

// ItemLevel returns the hierarchy level of the named item (0 = root), or
// -1 when the item is not in the vocabulary.
func (d *Database) ItemLevel(name string) int {
	w, ok := d.db.Forest.Lookup(name)
	if !ok {
		return -1
	}
	return d.db.Forest.Level(w)
}

// ItemParent returns the name of the item's direct generalization. The
// second result is false when the item is unknown or a hierarchy root.
func (d *Database) ItemParent(name string) (string, bool) {
	w, ok := d.db.Forest.Lookup(name)
	if !ok || d.db.Forest.IsRoot(w) {
		return "", false
	}
	return d.db.Forest.Name(d.db.Forest.Parent(w)), true
}

// Sequence returns the i-th input sequence as item names.
func (d *Database) Sequence(i int) []string {
	seq := d.db.Seqs[i]
	out := make([]string, len(seq))
	for j, w := range seq {
		out[j] = d.db.Forest.Name(w)
	}
	return out
}

// DatabaseBuilder assembles a Database from sequences and hierarchy edges.
// Items are interned by name; items that never receive a parent are
// hierarchy roots. The zero value is not usable — call NewDatabaseBuilder.
type DatabaseBuilder struct {
	b    *hierarchy.Builder
	seqs [][]hierarchy.Item
}

// NewDatabaseBuilder returns an empty builder.
func NewDatabaseBuilder() *DatabaseBuilder {
	return &DatabaseBuilder{b: hierarchy.NewBuilder()}
}

// AddParent declares that child directly generalizes to parent
// (child → parent). Both items are interned. Declaring two different
// parents for the same child is an error reported by Build (the hierarchy
// must be a forest).
func (d *DatabaseBuilder) AddParent(child, parent string) *DatabaseBuilder {
	d.b.AddEdge(child, parent)
	return d
}

// AddItem interns an item without a parent (a root, unless AddParent later
// gives it one).
func (d *DatabaseBuilder) AddItem(name string) *DatabaseBuilder {
	d.b.Add(name)
	return d
}

// AddSequence appends one input sequence; unknown items are interned as
// roots.
func (d *DatabaseBuilder) AddSequence(items ...string) *DatabaseBuilder {
	seq := make([]hierarchy.Item, len(items))
	for i, name := range items {
		seq[i] = d.b.Add(name)
	}
	d.seqs = append(d.seqs, seq)
	return d
}

// NumSequences returns the number of sequences added so far.
func (d *DatabaseBuilder) NumSequences() int { return len(d.seqs) }

// Build validates the hierarchy (forest shape, no cycles) and returns the
// immutable database.
func (d *DatabaseBuilder) Build() (*Database, error) {
	f, err := d.b.Build()
	if err != nil {
		return nil, err
	}
	return &Database{db: &gsm.Database{Seqs: d.seqs, Forest: f}}, nil
}

// BinaryMagic is the 8-byte prefix of the binary database format written by
// WriteBinary (and `lash-gen -format binary`). Callers sniffing an input
// stream can match its first bytes against this to pick the right reader.
const BinaryMagic = seqdb.Magic

// ReadBinaryDatabase decodes a database from the compact binary format:
// item dictionary and hierarchy up front, then varint-encoded sequences,
// decoded straight into shared item-id arenas — no per-item strings, no
// per-sequence allocations — so loading a large corpus costs a small
// constant factor of its file size. Write the format with WriteBinary or
// `lash-gen -format binary`.
func ReadBinaryDatabase(r io.Reader) (*Database, error) {
	sr, err := seqdb.NewReader(r)
	if err != nil {
		return nil, err
	}
	db, err := sr.ReadAll()
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// OpenBinaryDatabase reads a binary database file from path.
func OpenBinaryDatabase(path string) (*Database, error) {
	db, err := seqdb.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// WriteBinary encodes the database (sequences and hierarchy, one file) in
// the compact binary format understood by ReadBinaryDatabase and the lash
// CLI.
func (d *Database) WriteBinary(w io.Writer) error {
	return seqdb.Write(w, d.db)
}

// ReadSequences adds one sequence per line (items separated by spaces or
// tabs) from r. Blank lines and lines starting with '#' are skipped.
func (d *DatabaseBuilder) ReadSequences(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d.AddSequence(strings.Fields(line)...)
	}
	return sc.Err()
}

// ReadHierarchy adds one edge per line ("child<TAB>parent" or
// "child parent") from r. Blank lines and '#' comments are skipped.
func (d *DatabaseBuilder) ReadHierarchy(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("lash: hierarchy line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		d.AddParent(fields[0], fields[1])
	}
	return sc.Err()
}

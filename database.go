package lash

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/seqdb"
)

// Database is an immutable snapshot of a sequence database over an item
// hierarchy, ready for mining. Build one with a DatabaseBuilder, or derive
// the next corpus version from an existing snapshot with Append — the old
// snapshot stays valid and readable (copy-on-append), the new one carries a
// monotonically increasing Version.
type Database struct {
	db *gsm.Database
	// version is the corpus version of this snapshot (1 for freshly built
	// databases; the zero value also reads as 1 through Version).
	version int
	// idents is the snapshot's ancestry: one unique identity token per
	// version, idents[v-1] minted by the snapshot that created version v.
	// Two snapshots share a token at version v exactly when they were
	// derived by appends from the same version-v snapshot — so a token
	// match proves the shorter corpus is a byte-identical prefix of the
	// longer one, which is the invariant MineState reuse (Options.Resume)
	// depends on. Appending from an older snapshot simply starts a
	// diverging suffix: both branches keep the common prefix tokens.
	idents []*corpusID
}

// corpusID is a unique per-version identity token; only pointer identity
// matters. The non-zero size guarantees every allocation is distinct.
type corpusID struct{ _ byte }

// newDatabase wraps a built gsm database as corpus version 1 of a fresh
// ancestry.
func newDatabase(db *gsm.Database) *Database {
	return &Database{db: db, version: 1, idents: []*corpusID{new(corpusID)}}
}

// identAt returns the snapshot's identity token for version v, or nil if
// the snapshot's ancestry does not reach v.
func (d *Database) identAt(v int) *corpusID {
	if d == nil || v < 1 || v > len(d.idents) {
		return nil
	}
	return d.idents[v-1]
}

// Version returns the snapshot's corpus version: 1 for a freshly built
// database, incremented by every Append.
func (d *Database) Version() int {
	if d.version == 0 {
		return 1
	}
	return d.version
}

// Append derives the next corpus version: a new immutable snapshot holding
// d's sequences followed by the fragment's, with the fragment's vocabulary
// merged into d's by item name. d itself is not modified and stays fully
// readable. New items (and new hierarchy edges among them, or attaching new
// items under existing ones) are allowed; giving an existing item a new or
// different parent is rejected — ancestor chains of existing items never
// change, which is what keeps delta re-mining (Options.Resume) sound.
//
// Appending twice from the same snapshot forks the history: both results
// are version d.Version()+1, share d as their common prefix, and diverge
// from there. A MineState captured at or before the fork point seeds delta
// re-mines of either branch; states captured on one branch never validate
// on the other.
func (d *Database) Append(fragment *Database) (*Database, error) {
	if d == nil || d.db == nil {
		return nil, fmt.Errorf("lash: append: nil database")
	}
	if fragment == nil || fragment.db == nil {
		return nil, fmt.Errorf("lash: append: nil fragment")
	}
	if len(fragment.db.Seqs) == 0 {
		return nil, fmt.Errorf("lash: append: fragment has no sequences")
	}
	merged, err := mergeAppend(d.db, fragment.db)
	if err != nil {
		return nil, err
	}
	// The ancestry is copied, never shared as a backing array: two appends
	// from the same snapshot must each mint their own version token.
	ids := make([]*corpusID, d.Version()+1)
	copy(ids, d.idents)
	ids[len(ids)-1] = new(corpusID)
	return &Database{db: merged, version: d.Version() + 1, idents: ids}, nil
}

// AppendBinary is Append with the fragment decoded from the compact binary
// format (a self-contained .ldb stream: its own dictionary, hierarchy, and
// sequences; items are matched to the base database by name).
func (d *Database) AppendBinary(r io.Reader) (*Database, error) {
	frag, err := ReadBinaryDatabase(r)
	if err != nil {
		return nil, err
	}
	return d.Append(frag)
}

// mergeAppend merges fragment into base by item name: existing items keep
// their ids, levels, and parents (a conflicting fragment parent is an
// error); new items are interned after the existing vocabulary in fragment
// id order; base sequences are shared, fragment sequences are remapped and
// appended.
func mergeAppend(base, frag *gsm.Database) (*gsm.Database, error) {
	bf, ff := base.Forest, frag.Forest
	mapping := make([]hierarchy.Item, ff.Size())
	needRebuild := false
	for w := 0; w < ff.Size(); w++ {
		wi := hierarchy.Item(w)
		name := ff.Name(wi)
		bw, ok := bf.Lookup(name)
		if !ok {
			needRebuild = true
			mapping[w] = hierarchy.NoItem // interned by the rebuild below
			continue
		}
		mapping[w] = bw
		if fp := ff.Parent(wi); fp != hierarchy.NoItem {
			bp := bf.Parent(bw)
			if bp == hierarchy.NoItem || bf.Name(bp) != ff.Name(fp) {
				return nil, fmt.Errorf("lash: append: item %q already exists with a different parent (re-parenting is not allowed)", name)
			}
		}
	}
	newForest := bf
	if needRebuild {
		b := hierarchy.NewBuilder()
		for w := 0; w < bf.Size(); w++ {
			b.Add(bf.Name(hierarchy.Item(w)))
		}
		for w := 0; w < bf.Size(); w++ {
			if p := bf.Parent(hierarchy.Item(w)); p != hierarchy.NoItem {
				b.AddEdge(bf.Name(hierarchy.Item(w)), bf.Name(p))
			}
		}
		for w := 0; w < ff.Size(); w++ {
			b.Add(ff.Name(hierarchy.Item(w)))
		}
		for w := 0; w < ff.Size(); w++ {
			wi := hierarchy.Item(w)
			if mapping[w] != hierarchy.NoItem {
				continue // existing item: parent already verified identical
			}
			if p := ff.Parent(wi); p != hierarchy.NoItem {
				b.AddEdge(ff.Name(wi), ff.Name(p))
			}
		}
		f, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("lash: append: %w", err)
		}
		newForest = f
		for w := range mapping {
			if mapping[w] == hierarchy.NoItem {
				id, ok := newForest.Lookup(ff.Name(hierarchy.Item(w)))
				if !ok {
					return nil, fmt.Errorf("lash: append: internal error: item %q lost in merge", ff.Name(hierarchy.Item(w)))
				}
				mapping[w] = id
			}
		}
	}
	seqs := make([][]hierarchy.Item, 0, len(base.Seqs)+len(frag.Seqs))
	seqs = append(seqs, base.Seqs...)
	for _, t := range frag.Seqs {
		nt := make([]hierarchy.Item, len(t))
		for i, w := range t {
			nt[i] = mapping[w]
		}
		seqs = append(seqs, nt)
	}
	return &gsm.Database{Seqs: seqs, Forest: newForest}, nil
}

// NumSequences returns the number of input sequences.
func (d *Database) NumSequences() int { return len(d.db.Seqs) }

// NumItems returns the vocabulary size (including hierarchy-only items).
func (d *Database) NumItems() int { return d.db.Forest.Size() }

// HierarchyDepth returns the number of hierarchy levels (1 = flat).
func (d *Database) HierarchyDepth() int { return d.db.Forest.Depth() }

// ItemLevel returns the hierarchy level of the named item (0 = root), or
// -1 when the item is not in the vocabulary.
func (d *Database) ItemLevel(name string) int {
	w, ok := d.db.Forest.Lookup(name)
	if !ok {
		return -1
	}
	return d.db.Forest.Level(w)
}

// ItemParent returns the name of the item's direct generalization. The
// second result is false when the item is unknown or a hierarchy root.
func (d *Database) ItemParent(name string) (string, bool) {
	w, ok := d.db.Forest.Lookup(name)
	if !ok || d.db.Forest.IsRoot(w) {
		return "", false
	}
	return d.db.Forest.Name(d.db.Forest.Parent(w)), true
}

// Sequence returns the i-th input sequence as item names.
func (d *Database) Sequence(i int) []string {
	seq := d.db.Seqs[i]
	out := make([]string, len(seq))
	for j, w := range seq {
		out[j] = d.db.Forest.Name(w)
	}
	return out
}

// DatabaseBuilder assembles a Database from sequences and hierarchy edges.
// Items are interned by name; items that never receive a parent are
// hierarchy roots. The zero value is not usable — call NewDatabaseBuilder.
type DatabaseBuilder struct {
	b    *hierarchy.Builder
	seqs [][]hierarchy.Item
}

// NewDatabaseBuilder returns an empty builder.
func NewDatabaseBuilder() *DatabaseBuilder {
	return &DatabaseBuilder{b: hierarchy.NewBuilder()}
}

// AddParent declares that child directly generalizes to parent
// (child → parent). Both items are interned. Declaring two different
// parents for the same child is an error reported by Build (the hierarchy
// must be a forest).
func (d *DatabaseBuilder) AddParent(child, parent string) *DatabaseBuilder {
	d.b.AddEdge(child, parent)
	return d
}

// AddItem interns an item without a parent (a root, unless AddParent later
// gives it one).
func (d *DatabaseBuilder) AddItem(name string) *DatabaseBuilder {
	d.b.Add(name)
	return d
}

// AddSequence appends one input sequence; unknown items are interned as
// roots.
func (d *DatabaseBuilder) AddSequence(items ...string) *DatabaseBuilder {
	seq := make([]hierarchy.Item, len(items))
	for i, name := range items {
		seq[i] = d.b.Add(name)
	}
	d.seqs = append(d.seqs, seq)
	return d
}

// NumSequences returns the number of sequences added so far.
func (d *DatabaseBuilder) NumSequences() int { return len(d.seqs) }

// Build validates the hierarchy (forest shape, no cycles) and returns the
// immutable database.
func (d *DatabaseBuilder) Build() (*Database, error) {
	f, err := d.b.Build()
	if err != nil {
		return nil, err
	}
	return newDatabase(&gsm.Database{Seqs: d.seqs, Forest: f}), nil
}

// BinaryMagic is the 8-byte prefix of the binary database format written by
// WriteBinary (and `lash-gen -format binary`). Callers sniffing an input
// stream can match its first bytes against this to pick the right reader.
const BinaryMagic = seqdb.Magic

// ReadBinaryDatabase decodes a database from the compact binary format:
// item dictionary and hierarchy up front, then varint-encoded sequences,
// decoded straight into shared item-id arenas — no per-item strings, no
// per-sequence allocations — so loading a large corpus costs a small
// constant factor of its file size. Write the format with WriteBinary or
// `lash-gen -format binary`.
func ReadBinaryDatabase(r io.Reader) (*Database, error) {
	sr, err := seqdb.NewReader(r)
	if err != nil {
		return nil, err
	}
	db, err := sr.ReadAll()
	if err != nil {
		return nil, err
	}
	return newDatabase(db), nil
}

// OpenBinaryDatabase reads a binary database file from path.
func OpenBinaryDatabase(path string) (*Database, error) {
	db, err := seqdb.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return newDatabase(db), nil
}

// WriteBinary encodes the database (sequences and hierarchy, one file) in
// the compact binary format understood by ReadBinaryDatabase and the lash
// CLI.
func (d *Database) WriteBinary(w io.Writer) error {
	return seqdb.Write(w, d.db)
}

// ReadSequences adds one sequence per line (items separated by spaces or
// tabs) from r. Blank lines and lines starting with '#' are skipped.
func (d *DatabaseBuilder) ReadSequences(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d.AddSequence(strings.Fields(line)...)
	}
	return sc.Err()
}

// ReadHierarchy adds one edge per line ("child<TAB>parent" or
// "child parent") from r. Blank lines and '#' comments are skipped.
func (d *DatabaseBuilder) ReadHierarchy(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("lash: hierarchy line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		d.AddParent(fields[0], fields[1])
	}
	return sc.Err()
}

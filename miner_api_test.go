package lash_test

import (
	"strings"
	"testing"

	"lash"
)

// The Miner must reuse frequencies across parameter changes (§3.4) while
// producing exactly the same results as one-shot Mine calls.
func TestMinerFrequencyReuse(t *testing.T) {
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	sweeps := []lash.Options{
		{MinSupport: 2, MaxGap: 1, MaxLength: 3},
		{MinSupport: 3, MaxGap: 1, MaxLength: 3}, // different σ
		{MinSupport: 2, MaxGap: 0, MaxLength: 3}, // different γ
		{MinSupport: 2, MaxGap: 1, MaxLength: 2}, // different λ
	}
	for _, opt := range sweeps {
		got, err := m.Mine(opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lash.Mine(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		if patternChecksum(got.Patterns) != patternChecksum(want.Patterns) {
			t.Fatalf("cached run differs for %+v", opt)
		}
	}
	if m.FrequencyJobsRun() != 1 {
		t.Fatalf("frequency job ran %d times across the sweep, want 1", m.FrequencyJobsRun())
	}
	// A flat-mode run needs (and caches) flat frequencies.
	if _, err := m.Mine(lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: lash.AlgorithmMGFSM}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mine(lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: lash.AlgorithmLASHFlat}); err != nil {
		t.Fatal(err)
	}
	if m.FrequencyJobsRun() != 2 {
		t.Fatalf("flat frequency job not shared: %d runs", m.FrequencyJobsRun())
	}
}

// Baselines pass through the Miner unchanged.
func TestMinerBaselinePassthrough(t *testing.T) {
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: lash.AlgorithmSemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	checkPaperResult(t, res, "miner semi-naive")
	if m.FrequencyJobsRun() != 0 {
		t.Fatal("baseline triggered frequency caching")
	}
}

func TestMinerErrors(t *testing.T) {
	if _, err := lash.NewMiner(nil); err == nil {
		t.Error("nil database accepted")
	}
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mine(lash.Options{MinSupport: 0, MaxLength: 3}); err == nil {
		t.Error("invalid options accepted")
	}
}

// Restrictions compose with the cached Miner.
func TestMinerWithRestriction(t *testing.T) {
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Restriction: lash.RestrictMaximal})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if strings.Join(p.Items, " ") == "a B" {
			t.Fatal("non-maximal pattern survived restriction via Miner")
		}
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no maximal patterns via Miner")
	}
}

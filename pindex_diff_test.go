package lash_test

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"lash"
	"lash/internal/pindex"
)

// The serving-index differential: every query the pattern index answers —
// plain listing, top-k, min-support, contains, prefix, level, roll-up, and
// paginated slices of any of them — must be byte-identical to a naive
// scan-and-filter over Result.Patterns, across generated corpora (both
// datagen families), seeds, and all five algorithms. This is the guarantee
// the serving tier rests on: moving GET /v1/patterns from a linear scan to
// the index changed the data structure, never the answers.

// refPattern is the reference's view of one mined pattern.
type refPattern struct {
	items   []string
	support int64
	level   int // max hierarchy level over the items
}

func (p refPattern) key() string {
	return fmt.Sprintf("%s=%d", strings.Join(p.items, " "), p.support)
}

// refIndex is the naive reference: the full pattern list in serving order
// (support descending, ties in canonical mining order) plus just enough
// side tables to mirror the index's hierarchy semantics.
type refIndex struct {
	serving []refPattern
	vocab   map[string]bool   // items occurring in any pattern
	parent  map[string]string // item → hierarchy parent (from the database)
	byKey   map[string]bool   // "items" → exists
}

func newRefIndex(db *lash.Database, res *lash.Result) *refIndex {
	ref := &refIndex{
		vocab:  map[string]bool{},
		parent: map[string]string{},
		byKey:  map[string]bool{},
	}
	for _, p := range res.Patterns {
		lvl := 0
		for _, it := range p.Items {
			if l := db.ItemLevel(it); l > lvl {
				lvl = l
			}
			ref.vocab[it] = true
			if par, ok := db.ItemParent(it); ok {
				ref.parent[it] = par
			}
		}
		ref.serving = append(ref.serving, refPattern{items: p.Items, support: p.Support, level: lvl})
		ref.byKey[strings.Join(p.Items, "\x00")] = true
	}
	// res.Patterns is canonical order; a stable sort by support descending is
	// exactly the serving order the index promises.
	slices.SortStableFunc(ref.serving, func(a, b refPattern) int {
		switch {
		case a.support > b.support:
			return -1
		case a.support < b.support:
			return 1
		}
		return 0
	})
	return ref
}

// filter scans serving order and keeps every pattern matching the query —
// the O(n · len) baseline the index must reproduce.
func (ref *refIndex) filter(q pindex.Query) []refPattern {
	var out []refPattern
	for _, p := range ref.serving {
		if q.MinSupport > 0 && p.support < q.MinSupport {
			continue
		}
		if q.Level != pindex.NoLevel && p.level != q.Level {
			continue
		}
		if len(q.Prefix) > 0 {
			if len(p.items) < len(q.Prefix) || !slices.Equal(p.items[:len(q.Prefix)], q.Prefix) {
				continue
			}
		}
		containsAll := true
		for _, want := range q.Contains {
			if !slices.Contains(p.items, want) {
				containsAll = false
				break
			}
		}
		if !containsAll {
			continue
		}
		out = append(out, p)
	}
	return out
}

// rollup mirrors the index's roll-up rule: the chain starts at the pattern
// itself; each step generalizes the rightmost item whose hierarchy parent
// occurs in the pattern vocabulary, and continues only if the generalized
// pattern was itself mined.
func (ref *refIndex) rollup(items []string) [][]string {
	if !ref.byKey[strings.Join(items, "\x00")] {
		return nil
	}
	chain := [][]string{items}
	cur := items
	for {
		next, ok := ref.parentOf(cur)
		if !ok {
			return chain
		}
		chain = append(chain, next)
		cur = next
	}
}

func (ref *refIndex) parentOf(items []string) ([]string, bool) {
	for j := len(items) - 1; j >= 0; j-- {
		par, ok := ref.parent[items[j]]
		if !ok || !ref.vocab[par] {
			continue
		}
		cand := slices.Clone(items)
		cand[j] = par
		if ref.byKey[strings.Join(cand, "\x00")] {
			return cand, true
		}
		return nil, false // rightmost generalizable item decided; no fallback
	}
	return nil, false
}

// renderIDs materializes index search results for comparison.
func renderIDs(ix *pindex.Index, ids []uint32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%s=%d", strings.Join(ix.Items(id), " "), ix.Support(id))
	}
	return out
}

func renderRef(pats []refPattern) []string {
	out := make([]string, len(pats))
	for i, p := range pats {
		out[i] = p.key()
	}
	return out
}

// checkQuery compares one query end to end: full result set, total, and a
// few paginated slices.
func checkQuery(t *testing.T, ix *pindex.Index, ref *refIndex, name string, q pindex.Query) {
	t.Helper()
	want := renderRef(ref.filter(q))
	ids, total := ix.Search(nil, q, 0, -1)
	got := renderIDs(ix, ids)
	if total != len(want) {
		t.Errorf("%s: total = %d, want %d", name, total, len(want))
	}
	if !slices.Equal(got, want) {
		t.Errorf("%s: index answer diverges from scan\n  got  %v\n  want %v", name, got, want)
		return
	}
	// Paginated slices must be windows of the same sequence.
	for _, page := range []struct{ offset, limit int }{
		{0, 1}, {1, 2}, {len(want) / 2, 3}, {len(want), 5}, {len(want) + 3, 2},
	} {
		ids, total := ix.Search(nil, q, page.offset, page.limit)
		if total != len(want) {
			t.Errorf("%s offset=%d limit=%d: total = %d, want %d", name, page.offset, page.limit, total, len(want))
		}
		end := page.offset + page.limit
		if page.offset > len(want) {
			end = page.offset
		} else if end > len(want) {
			end = len(want)
		}
		var wantPage []string
		if page.offset < len(want) {
			wantPage = want[page.offset:end]
		}
		if !slices.Equal(renderIDs(ix, ids), wantPage) {
			t.Errorf("%s offset=%d limit=%d: page = %v, want %v", name, page.offset, page.limit, renderIDs(ix, ids), wantPage)
		}
	}
}

func diffDatabases(t *testing.T, seed int64) map[string]*lash.Database {
	t.Helper()
	text, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 150, Lemmas: 300, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	market, err := lash.GenerateMarketDatabase(lash.MarketConfig{Users: 150, Products: 300, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*lash.Database{"text": text, "market": market}
}

func TestPindexDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for corpus, db := range diffDatabases(t, seed) {
			for _, alg := range chaosAlgorithms {
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, corpus, alg), func(t *testing.T) {
					res, err := lash.Mine(db, lash.Options{
						MinSupport: 5, MaxGap: 1, MaxLength: 3, Algorithm: alg,
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Patterns) == 0 {
						t.Fatal("corpus mined no patterns; differential has nothing to compare")
					}
					ix := res.Index()
					ref := newRefIndex(db, res)

					none := pindex.Query{Level: pindex.NoLevel}
					checkQuery(t, ix, ref, "plain", none)

					// Support thresholds: around every distinct support value,
					// including one above the maximum (empty result).
					supports := map[int64]bool{}
					for _, p := range ref.serving {
						supports[p.support] = true
					}
					for s := range supports {
						q := none
						q.MinSupport = s
						checkQuery(t, ix, ref, fmt.Sprintf("min_support=%d", s), q)
						q.MinSupport = s + 1
						checkQuery(t, ix, ref, fmt.Sprintf("min_support=%d", s+1), q)
					}

					// Contains/prefix terms drawn from real patterns (plus
					// unknown-item probes), sampled across the serving order.
					for i := 0; i < len(ref.serving); i += 1 + len(ref.serving)/7 {
						p := ref.serving[i]
						q := none
						q.Contains = p.items[:1]
						checkQuery(t, ix, ref, "contains:"+p.key(), q)
						q.Contains = p.items
						checkQuery(t, ix, ref, "contains-all:"+p.key(), q)
						q = none
						q.Prefix = p.items[:1]
						checkQuery(t, ix, ref, "prefix1:"+p.key(), q)
						q.Prefix = p.items
						checkQuery(t, ix, ref, "prefix-all:"+p.key(), q)
					}
					unknown := none
					unknown.Contains = []string{"no-such-item-ever"}
					checkQuery(t, ix, ref, "contains-unknown", unknown)
					unknown.Contains = nil
					unknown.Prefix = []string{"no-such-item-ever"}
					checkQuery(t, ix, ref, "prefix-unknown", unknown)

					// Every pattern level, one past the top, and combinations.
					for lvl := 0; lvl <= ix.MaxLevel()+1; lvl++ {
						q := none
						q.Level = lvl
						checkQuery(t, ix, ref, fmt.Sprintf("level=%d", lvl), q)
					}
					mid := ref.serving[len(ref.serving)/2]
					combo := pindex.Query{
						MinSupport: mid.support, Contains: mid.items[:1], Level: mid.level,
					}
					checkQuery(t, ix, ref, "combo:"+mid.key(), combo)
					combo = pindex.Query{MinSupport: mid.support, Prefix: mid.items[:1], Level: pindex.NoLevel}
					checkQuery(t, ix, ref, "combo-prefix:"+mid.key(), combo)

					// Roll-up chains, for a sample of patterns and one miss.
					for i := 0; i < len(ref.serving); i += 1 + len(ref.serving)/11 {
						p := ref.serving[i]
						wantChain := ref.rollup(p.items)
						gotIDs := ix.Rollup(p.items)
						var got [][]string
						for _, id := range gotIDs {
							got = append(got, ix.Items(id))
						}
						if len(got) != len(wantChain) {
							t.Errorf("rollup %v: chain %v, want %v", p.items, got, wantChain)
							continue
						}
						for j := range got {
							if !slices.Equal(got[j], wantChain[j]) {
								t.Errorf("rollup %v: step %d = %v, want %v", p.items, j, got[j], wantChain[j])
							}
						}
					}
					if ix.Rollup([]string{"no-such-item-ever"}) != nil {
						t.Error("rollup of an unmined pattern returned a chain")
					}
				})
			}
		}
	}
}

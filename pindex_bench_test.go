package lash_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"lash/internal/pindex"
)

// Benchmarks of the serving-tier pattern index over a 100k-pattern corpus:
// build cost (paid once per mined result, off the worker goroutine) and the
// three query families the HTTP tier leans on. The query benchmarks reuse
// one prebuilt index and a preallocated result slice, so their alloc counts
// are the serving path's steady-state numbers.

var (
	pindexBenchOnce sync.Once
	pindexBenchPats []pindex.Pattern
	pindexBenchIx   *pindex.Index
)

func pindexBenchSetup(b *testing.B) {
	b.Helper()
	pindexBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		seen := map[string]bool{}
		for len(pindexBenchPats) < 100_000 {
			items := make([]string, 1+rng.Intn(4))
			for i := range items {
				items[i] = fmt.Sprintf("item%04d", rng.Intn(2000))
			}
			key := strings.Join(items, " ")
			if seen[key] {
				continue
			}
			seen[key] = true
			pindexBenchPats = append(pindexBenchPats,
				pindex.Pattern{Items: items, Support: int64(1 + rng.Intn(5000))})
		}
		pindexBenchIx = pindex.Build(pindexBenchPats, nil)
	})
	b.ResetTimer()
}

func BenchmarkPindexBuild(b *testing.B) {
	pindexBenchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ix := pindex.Build(pindexBenchPats, nil); ix.Len() != len(pindexBenchPats) {
			b.Fatal("build dropped patterns")
		}
	}
}

func BenchmarkPindexTopK(b *testing.B) {
	pindexBenchSetup(b)
	b.ReportAllocs()
	dst := make([]uint32, 0, 100)
	q := pindex.Query{Level: pindex.NoLevel}
	for i := 0; i < b.N; i++ {
		ids, total := pindexBenchIx.Search(dst[:0], q, 0, 100)
		if len(ids) != 100 || total != pindexBenchIx.Len() {
			b.Fatalf("top-100: got %d of %d", len(ids), total)
		}
	}
}

func BenchmarkPindexPrefix(b *testing.B) {
	pindexBenchSetup(b)
	b.ReportAllocs()
	dst := make([]uint32, 0, 256)
	q := pindex.Query{Level: pindex.NoLevel, Prefix: []string{"item0007"}}
	for i := 0; i < b.N; i++ {
		ids, _ := pindexBenchIx.Search(dst[:0], q, 0, -1)
		if len(ids) == 0 {
			b.Fatal("prefix matched nothing")
		}
	}
}

func BenchmarkPindexContains(b *testing.B) {
	pindexBenchSetup(b)
	b.ReportAllocs()
	dst := make([]uint32, 0, 256)
	q := pindex.Query{Level: pindex.NoLevel, Contains: []string{"item0007", "item0123"}}
	for i := 0; i < b.N; i++ {
		pindexBenchIx.Search(dst[:0], q, 0, -1)
	}
}

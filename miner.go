package lash

import (
	"fmt"

	"lash/internal/core"
	"lash/internal/mapreduce"
)

// Miner caches the hierarchy-aware item frequencies of a database so that
// repeated Mine calls with different parameters skip the preprocessing job —
// the reuse described in §3.4 of the paper ("item frequencies and total
// order can be reused when LASH is run with different parameters; only the
// generalized f-list needs to be adapted"). Typical use: parameter sweeps
// over σ, γ, or λ.
//
// A Miner is safe for sequential reuse; for the baseline algorithms (which
// have no reusable preprocessing) it behaves exactly like Mine.
type Miner struct {
	db        *Database
	freqs     []int64 // hierarchy-aware frequencies (lazy)
	flatFreqs []int64 // flat frequencies (lazy)
	computes  int
}

// NewMiner wraps a database for repeated mining.
func NewMiner(db *Database) (*Miner, error) {
	if db == nil || db.db == nil {
		return nil, fmt.Errorf("lash: nil database (use NewDatabaseBuilder().Build())")
	}
	return &Miner{db: db}, nil
}

// FrequencyJobsRun reports how many frequency-counting jobs this Miner has
// executed (at most one per hierarchy mode; useful to observe the reuse).
func (m *Miner) FrequencyJobsRun() int { return m.computes }

// Mine runs one configuration, reusing cached item frequencies for the LASH
// algorithm variants.
func (m *Miner) Mine(opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	switch opt.Algorithm {
	case AlgorithmLASH, AlgorithmLASHFlat, AlgorithmMGFSM:
	default:
		return Mine(m.db, opt) // baselines: nothing reusable
	}
	flat := opt.Algorithm != AlgorithmLASH
	freqs, err := m.frequencies(flat, opt.Workers)
	if err != nil {
		return nil, err
	}
	return mine(m.db, opt, freqs)
}

func (m *Miner) frequencies(flat bool, workers int) ([]int64, error) {
	cached := &m.freqs
	if flat {
		cached = &m.flatFreqs
	}
	if *cached != nil {
		return *cached, nil
	}
	freqs, err := core.Frequencies(m.db.db, flat, mapreduce.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	*cached = freqs
	m.computes++
	return freqs, nil
}

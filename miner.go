package lash

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"lash/internal/core"
	"lash/internal/mapreduce"
)

// Miner caches the hierarchy-aware item frequencies of a database so that
// repeated Mine calls with different parameters skip the preprocessing job —
// the reuse described in §3.4 of the paper ("item frequencies and total
// order can be reused when LASH is run with different parameters; only the
// generalized f-list needs to be adapted"). Typical use: parameter sweeps
// over σ, γ, or λ.
//
// A Miner is safe for concurrent use by multiple goroutines (lashd serves
// concurrent jobs against one database): each hierarchy mode's lazy
// frequency cache has its own lock, so the first caller per mode runs the
// counting job while concurrent callers for the same mode wait for its
// result (callers for the other mode proceed independently); the mining
// itself runs outside any lock. The cached slices are shared read-only with
// core.Mine and never mutated afterwards.
//
// For the baseline algorithms (which have no reusable preprocessing) it
// behaves exactly like Mine.
type Miner struct {
	db       *Database
	hier     freqCache // hierarchy-aware frequencies (lazy)
	flat     freqCache // flat frequencies (lazy)
	computes atomic.Int64
}

// freqCache is one hierarchy mode's lazily computed frequency slice.
type freqCache struct {
	mu    sync.Mutex
	freqs []int64
}

// NewMiner wraps a database for repeated mining.
func NewMiner(db *Database) (*Miner, error) {
	if db == nil || db.db == nil {
		return nil, fmt.Errorf("lash: nil database (use NewDatabaseBuilder().Build())")
	}
	return &Miner{db: db}, nil
}

// FrequencyJobsRun reports how many frequency-counting jobs this Miner has
// executed (at most one per hierarchy mode; useful to observe the reuse).
func (m *Miner) FrequencyJobsRun() int { return int(m.computes.Load()) }

// Mine runs one configuration, reusing cached item frequencies for the LASH
// algorithm variants. It is MineContext(context.Background(), opt).
func (m *Miner) Mine(opt Options) (*Result, error) {
	return m.MineContext(context.Background(), opt)
}

// MineContext is Mine under a context: cancelling ctx aborts the run
// cooperatively and returns promptly with an error matching ctx.Err()
// under errors.Is (see MineContext, the package-level function).
func (m *Miner) MineContext(ctx context.Context, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return m.mineWith(ctx, opt, nil)
}

// Stream mines like MineContext but delivers patterns incrementally
// through emit, reusing cached item frequencies for the LASH algorithm
// variants. See the package-level Stream for the delivery contract
// (serialized calls, partition-completion order, emit errors cancel the
// run, restrictions rejected).
func (m *Miner) Stream(ctx context.Context, opt Options, emit func(Pattern) error) (*Result, error) {
	if err := opt.ValidateStream(); err != nil {
		return nil, err
	}
	return m.mineWith(ctx, opt, emit)
}

// mineWith routes a validated configuration through the frequency cache
// (LASH variants) or straight to the baselines.
func (m *Miner) mineWith(ctx context.Context, opt Options, emit func(Pattern) error) (*Result, error) {
	switch opt.Algorithm {
	case AlgorithmLASH, AlgorithmLASHFlat, AlgorithmMGFSM:
	default:
		return mine(ctx, m.db, opt, nil, emit) // baselines: nothing reusable
	}
	flat := opt.Algorithm != AlgorithmLASH
	freqs, err := m.frequencies(ctx, flat, opt.Workers)
	if err != nil {
		return nil, err
	}
	return mine(ctx, m.db, opt, freqs, emit)
}

func (m *Miner) frequencies(ctx context.Context, flat bool, workers int) ([]int64, error) {
	c := &m.hier
	if flat {
		c = &m.flat
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.freqs != nil {
		return c.freqs, nil
	}
	freqs, err := core.Frequencies(ctx, m.db.db, flat, mapreduce.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	c.freqs = freqs
	m.computes.Add(1)
	return freqs, nil
}

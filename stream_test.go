package lash_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"lash"
)

// genDB builds a deterministic synthetic text database through the public
// API.
func genDB(t testing.TB, sentences int, seed int64) *lash.Database {
	t.Helper()
	db, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: sentences, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMineContextPreCancelled: an already-cancelled context returns
// ctx.Err() without running any jobs.
func TestMineContextPreCancelled(t *testing.T) {
	db := paperDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := lash.MineContext(ctx, db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if res != nil {
		t.Errorf("got a result from a pre-cancelled run")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-cancelled MineContext took %v", d)
	}
}

// TestMineContextCancelLatency: cancelling mid-run on a large generated
// database must return well under a second after the cancel, with
// ctx.Err() in the chain — the ISSUE's headline latency guarantee.
func TestMineContextCancelLatency(t *testing.T) {
	db := genDB(t, 50000, 7)
	for _, alg := range []lash.Algorithm{lash.AlgorithmLASH, lash.AlgorithmNaive} {
		t.Run(alg.String(), func(t *testing.T) {
			opt := lash.Options{MinSupport: 2, MaxGap: 2, MaxLength: 5, Algorithm: alg}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := lash.MineContext(ctx, db, opt)
				done <- err
			}()
			time.Sleep(30 * time.Millisecond) // let the run get going
			cancelAt := time.Now()
			cancel()
			select {
			case err := <-done:
				if latency := time.Since(cancelAt); latency > time.Second {
					t.Errorf("cancellation latency %v, want < 1s", latency)
				}
				// The run may have finished before the cancel on a fast
				// machine; only a still-running run must report Canceled.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled in chain (or nil)", err)
				}
				if err == nil {
					t.Log("run completed before cancellation took effect")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled mine did not return within 30s")
			}
		})
	}
}

// patternKey flattens a pattern for set comparison.
func patternKey(p lash.Pattern) string {
	return fmt.Sprintf("%s|%d", strings.Join(p.Items, " "), p.Support)
}

func patternSet(t *testing.T, ps []lash.Pattern) map[string]int {
	t.Helper()
	set := make(map[string]int, len(ps))
	for _, p := range ps {
		set[patternKey(p)]++
		if set[patternKey(p)] > 1 {
			t.Fatalf("duplicate pattern %q", patternKey(p))
		}
	}
	return set
}

// TestStreamMatchesMine: across randomized databases, every algorithm, and
// every local miner, the streamed patterns+supports are set-equal to
// Mine's output, and the streaming Result still carries FrequentItems.
func TestStreamMatchesMine(t *testing.T) {
	type combo struct {
		alg   lash.Algorithm
		miner lash.LocalMiner
	}
	combos := []combo{
		{lash.AlgorithmLASH, lash.MinerPSM},
		{lash.AlgorithmLASH, lash.MinerPSMNoIndex},
		{lash.AlgorithmLASH, lash.MinerBFS},
		{lash.AlgorithmLASH, lash.MinerDFS},
		{lash.AlgorithmLASHFlat, lash.MinerPSM},
		{lash.AlgorithmMGFSM, lash.MinerPSM}, // zero value doubles as "unset"
		{lash.AlgorithmNaive, lash.MinerPSM},
		{lash.AlgorithmSemiNaive, lash.MinerPSM},
	}
	for seed := int64(1); seed <= 2; seed++ {
		db := genDB(t, 400, seed)
		for _, c := range combos {
			t.Run(fmt.Sprintf("seed%d/%s/%s", seed, c.alg, c.miner), func(t *testing.T) {
				opt := lash.Options{
					MinSupport: 8, MaxGap: 1, MaxLength: 3,
					Algorithm: c.alg, LocalMiner: c.miner,
				}
				want, err := lash.Mine(db, opt)
				if err != nil {
					t.Fatal(err)
				}

				var streamed []lash.Pattern
				res, err := lash.Stream(context.Background(), db, opt, func(p lash.Pattern) error {
					streamed = append(streamed, p)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Patterns) != 0 {
					t.Errorf("streaming Result.Patterns has %d entries, want 0", len(res.Patterns))
				}
				wantSet, gotSet := patternSet(t, want.Patterns), patternSet(t, streamed)
				if len(wantSet) != len(gotSet) {
					t.Errorf("streamed %d distinct patterns, Mine produced %d", len(gotSet), len(wantSet))
				}
				for k := range wantSet {
					if gotSet[k] == 0 {
						t.Errorf("pattern %q mined but not streamed", k)
					}
				}
				for k := range gotSet {
					if wantSet[k] == 0 {
						t.Errorf("pattern %q streamed but not mined", k)
					}
				}
				// FrequentItems still arrive with the final Result.
				if len(res.FrequentItems) != len(want.FrequentItems) {
					t.Errorf("stream returned %d frequent items, Mine %d",
						len(res.FrequentItems), len(want.FrequentItems))
				}
			})
		}
	}
}

// TestStreamEmitErrorCancelsRun: an error from emit cancels the run and is
// returned verbatim.
func TestStreamEmitErrorCancelsRun(t *testing.T) {
	db := genDB(t, 400, 3)
	boom := errors.New("consumer is full")
	calls := 0
	start := time.Now()
	_, err := lash.Stream(context.Background(), db,
		lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3},
		func(p lash.Pattern) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if calls != 1 {
		t.Errorf("emit called %d times after returning an error, want 1", calls)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("emit-error cancellation took %v", d)
	}
}

// TestStreamRejectsRestrictions: closed/maximal need the full output and
// are rejected up front, for both the package-level and Miner entry
// points.
func TestStreamRejectsRestrictions(t *testing.T) {
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []lash.Restriction{lash.RestrictClosed, lash.RestrictMaximal} {
		opt := lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Restriction: r}
		if err := opt.ValidateStream(); err == nil {
			t.Errorf("ValidateStream(%s) = nil, want error", r)
		}
		if _, err := lash.Stream(context.Background(), db, opt, discard); err == nil {
			t.Errorf("Stream(%s) = nil error, want rejection", r)
		}
		if _, err := m.Stream(context.Background(), opt, discard); err == nil {
			t.Errorf("Miner.Stream(%s) = nil error, want rejection", r)
		}
		// The plain paths still accept restrictions.
		if _, err := lash.Mine(db, opt); err != nil {
			t.Errorf("Mine(%s) = %v, want success", r, err)
		}
	}
}

func discard(lash.Pattern) error { return nil }

// TestMinerStreamReusesFrequencies: Miner.Stream goes through the same
// frequency cache as Miner.Mine.
func TestMinerStreamReusesFrequencies(t *testing.T) {
	db := paperDB(t)
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	opt := lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3}
	want, err := m.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []lash.Pattern
	if _, err := m.Stream(context.Background(), opt, func(p lash.Pattern) error {
		streamed = append(streamed, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.FrequencyJobsRun(); got != 1 {
		t.Errorf("FrequencyJobsRun = %d after Mine+Stream, want 1 (cache reuse)", got)
	}
	sort.Slice(streamed, func(i, j int) bool { return patternKey(streamed[i]) < patternKey(streamed[j]) })
	wantSorted := append([]lash.Pattern(nil), want.Patterns...)
	sort.Slice(wantSorted, func(i, j int) bool { return patternKey(wantSorted[i]) < patternKey(wantSorted[j]) })
	if len(streamed) != len(wantSorted) {
		t.Fatalf("streamed %d patterns, want %d", len(streamed), len(wantSorted))
	}
	for i := range streamed {
		if patternKey(streamed[i]) != patternKey(wantSorted[i]) {
			t.Fatalf("pattern %d: streamed %q, want %q", i, patternKey(streamed[i]), patternKey(wantSorted[i]))
		}
	}
}

// TestProgressEvents: the Options.Progress hook reports both jobs of a
// LASH run, finishes each with a "done" event, and counts partitions up to
// the total.
func TestProgressEvents(t *testing.T) {
	db := genDB(t, 400, 5)
	var events []lash.ProgressEvent
	opt := lash.Options{
		MinSupport: 5, MaxGap: 1, MaxLength: 3,
		Progress: func(e lash.ProgressEvent) { events = append(events, e) },
	}
	if _, err := lash.Mine(db, opt); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	jobs := map[string]bool{}
	var mineDone *lash.ProgressEvent
	for i := range events {
		e := events[i]
		jobs[e.Job] = true
		if e.Job == "partition+mine" && e.Phase == "done" {
			mineDone = &events[i]
		}
		if e.MapTasksDone > e.MapTasks || e.PartitionsMined > e.Partitions {
			t.Fatalf("event overflows totals: %+v", e)
		}
	}
	if !jobs["flist"] || !jobs["partition+mine"] {
		t.Errorf("saw jobs %v, want flist and partition+mine", jobs)
	}
	if mineDone == nil {
		t.Fatal("no done event for the mining job")
	}
	if mineDone.MapTasksDone != mineDone.MapTasks {
		t.Errorf("done event has map %d/%d", mineDone.MapTasksDone, mineDone.MapTasks)
	}
	if mineDone.PartitionsMined != mineDone.Partitions {
		t.Errorf("done event has partitions %d/%d", mineDone.PartitionsMined, mineDone.Partitions)
	}
	if mineDone.ShuffleBytes <= 0 {
		t.Errorf("done event reports %d shuffle bytes, want > 0", mineDone.ShuffleBytes)
	}
}

// TestStreamBaselineCapAborts: when a baseline trips MaxIntermediate its
// aggregated supports may be undercounted; a streaming run must fail with
// ErrAborted before delivering any of them.
func TestStreamBaselineCapAborts(t *testing.T) {
	db := genDB(t, 400, 9)
	streamed := 0
	_, err := lash.Stream(context.Background(), db,
		lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3,
			Algorithm: lash.AlgorithmNaive, MaxIntermediate: 50},
		func(p lash.Pattern) error {
			streamed++
			return nil
		})
	if !errors.Is(err, lash.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if streamed != 0 {
		t.Errorf("%d possibly-undercounted patterns were streamed before the cap abort", streamed)
	}
}

// Command lash-exp regenerates the tables and figures of the LASH paper's
// evaluation (§6) on synthetic stand-in corpora.
//
// Usage:
//
//	lash-exp                       # everything at the default (small) scale
//	lash-exp -scale tiny -exp fig4a,fig4c
//	lash-exp -list
//
// See DESIGN.md §4 for the experiment ↔ module mapping and EXPERIMENTS.md
// for paper-vs-measured discussion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"lash/internal/experiments"
	"lash/internal/obs"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "scale: tiny, small or medium")
		expList   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		outPath   = flag.String("out", "", "write results to file (default stdout)")
		traceOut  = flag.String("trace-out", "", "write a span tree (one span per experiment, plus its jobs, phases and partition mines) as JSON to this file")
		list      = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	var ids []string
	if *expList != "" {
		for _, id := range strings.Split(*expList, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	fmt.Fprintf(out, "LASH experiment harness — scale=%s (σ map: 10000→%d, 1000→%d, 100→%d, 10→%d)\n\n",
		scale.Name, scale.SigmaXHi, scale.SigmaHi, scale.SigmaLo, scale.SigmaXLo)
	start := time.Now()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ec := experiments.NewContext(scale)
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.NewTracer(0)
		ec.Obs = &obs.Run{Tracer: tr}
	}
	runErr := experiments.RunAndFormat(ctx, ec, ids, out)
	// The trace is written even when a run fails: a truncated span tree
	// still shows where the time went.
	if tr != nil {
		if err := writeTrace(*traceOut, tr); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
	fmt.Fprintf(out, "total harness time: %v\n", time.Since(start).Round(time.Millisecond))
}

// writeTrace renders the collected span tree to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceJSON(f, tr.Spans(), tr.Dropped()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lash-exp:", err)
	os.Exit(1)
}

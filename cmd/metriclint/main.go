// Command metriclint checks Prometheus text expositions for the naming and
// structure rules promlint enforces: HELP/TYPE before samples, counters
// ending in _total, base units (seconds, bytes), cumulative histogram
// buckets terminated by +Inf, sorted contiguous families, and no duplicate
// families or series.
//
// Usage:
//
//	metriclint              # lint the server's own /metrics exposition
//	metriclint FILE...      # lint saved scrapes (- = stdin)
//
// With no arguments it builds the production registry (exactly what lashd
// serves on /metrics) and lints that, so `go run ./cmd/metriclint` in CI
// fails the build when someone registers a non-conforming metric. Exits 1
// and prints one line per problem when the exposition is dirty.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"lash/internal/obs"
	"lash/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		var buf bytes.Buffer
		if err := selfScrape(&buf); err != nil {
			return err
		}
		return lint("registry", &buf, stdout)
	}
	var firstErr error
	for _, path := range args {
		var (
			src  io.Reader
			name = path
		)
		if path == "-" {
			src, name = stdin, "stdin"
		} else {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			src = f
		}
		err := lint(name, src, stdout)
		if c, ok := src.(io.Closer); ok {
			c.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// selfScrape writes the production registry's exposition: a throwaway
// server.New registers every metric family lashd would serve.
func selfScrape(w io.Writer) error {
	srv := server.New(server.Config{Workers: 1, CacheSize: 1})
	defer srv.Close(context.Background()) //nolint:errcheck // throwaway instance
	return srv.WriteMetrics(w)
}

func lint(name string, r io.Reader, out io.Writer) error {
	problems, err := obs.LintPrometheus(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	for _, p := range problems {
		fmt.Fprintf(out, "%s: %s\n", name, p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s: %d problem(s)", name, len(problems))
	}
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSelfScrapeClean is the CI gate in test form: the production registry
// must lint clean.
func TestSelfScrapeClean(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run() on the production registry: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected lint output:\n%s", out.String())
	}
}

func TestLintDirtyExposition(t *testing.T) {
	// A counter without the _total suffix and without HELP.
	dirty := "# TYPE lash_jobs counter\nlash_jobs 3\n"
	var out bytes.Buffer
	err := run([]string{"-"}, strings.NewReader(dirty), &out)
	if err == nil {
		t.Fatalf("want error for dirty exposition, got none; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "lash_jobs") {
		t.Fatalf("problems should name the offending metric, got:\n%s", out.String())
	}
}

func TestLintCleanFile(t *testing.T) {
	clean := "# HELP demo_runs_total Demo.\n# TYPE demo_runs_total counter\ndemo_runs_total 1\n"
	var out bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader(clean), &out); err != nil {
		t.Fatalf("run() on clean input: %v\n%s", err, out.String())
	}
}

// Command lashd serves LASH sequence mining over HTTP.
//
// Usage:
//
//	lashd [-addr :8080] [-workers 4] [-cache-bytes N] [-data DIR]
//	      [-db name=sequences.txt[,hierarchy.txt]]... [-demo]
//	      [-max-job-time D] [-max-queue N] [-rate-limit R] [-rate-burst B]
//	      [-log-format text|json] [-log-level LEVEL] [-debug-addr ADDR]
//
// lashd loads each -db database once at startup (paths are relative to
// -data) and then answers mining queries concurrently: jobs run
// asynchronously on a bounded worker pool under per-job contexts,
// identical in-flight requests coalesce onto one run, and finished results
// are cached so repeats are answered instantly. DELETE /v1/jobs/{id}
// cancels a queued or running job; POST /v1/mine/stream streams patterns
// as NDJSON while the run is still mining. Databases are mutable by
// append: POST /v1/databases/{name}/sequences installs a new immutable
// corpus version, later mines resume incrementally from the previous
// version's captured state, and every non-2xx response carries the
// uniform {"error": {...}} envelope. See package lash/server for the
// HTTP API.
//
// Robustness: -max-job-time caps every run's mining wall time (requests
// may tighten it with deadline_ms, never loosen it), -max-queue bounds the
// job backlog and -rate-limit throttles each client — both refusals answer
// 429 with Retry-After. GET /healthz is pure liveness; GET /readyz flips
// to 503 the moment shutdown starts draining (or the queue saturates, or
// the spill directory stops accepting writes), so load balancers stop
// routing before the process exits.
//
// Observability: GET /metrics exposes job, cache and mining-pipeline
// counters in Prometheus text format; logs are structured (log/slog, text
// or JSON per -log-format) with request and job ids; and -debug-addr
// serves net/http/pprof on a separate listener so profiling endpoints
// never share a port with the public API.
//
// A quick session against -demo:
//
//	lashd -demo &
//	curl -s localhost:8080/v1/mine -d '{"database":"demo-text","options":{"min_support":100,"max_gap":1,"max_length":3},"wait":true}'
//	curl -sN localhost:8080/v1/mine/stream -d '{"database":"demo-text","options":{"min_support":100,"max_gap":1,"max_length":3}}'
//	curl -s 'localhost:8080/v1/patterns?db=demo-text&top=5'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lash/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 4, "concurrent mining jobs")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "result cache byte budget (negative disables)")
		cacheSize  = flag.Int("cache", 0, "deprecated alias: additional result cache entry bound (negative disables caching; prefer -cache-bytes)")
		history    = flag.Int("history", 1024, "retained job records (negative retains everything)")
		dataDir    = flag.String("data", "", "directory for file-based databases (empty disables file loading)")
		demo       = flag.Bool("demo", false, "preload generated demo databases demo-text and demo-market")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
		maxJob     = flag.Duration("max-job-time", 0, "cap on one run's mining wall time; requests may set tighter deadlines, never looser (0 disables)")
		maxQueue   = flag.Int("max-queue", 0, "job queue bound: fresh submissions past it get 429 + Retry-After (0 = unbounded)")
		rateLimit  = flag.Float64("rate-limit", 0, "per-client sustained requests/second; probes and /metrics are exempt (0 disables)")
		rateBurst  = flag.Int("rate-burst", 0, "per-client burst capacity for -rate-limit (0 = one second's worth)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugAddr  = flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty disables)")
	)
	var preload []server.DatabaseSpec
	flag.Func("db", "preload a database: name=sequences.txt[,hierarchy.txt] (repeatable; paths relative to -data)", func(v string) error {
		name, files, ok := strings.Cut(v, "=")
		if !ok || name == "" || files == "" {
			return fmt.Errorf("want name=sequences.txt[,hierarchy.txt], got %q", v)
		}
		spec := server.DatabaseSpec{Name: name}
		spec.SequencesFile, spec.HierarchyFile, _ = strings.Cut(files, ",")
		preload = append(preload, spec)
		return nil
	})
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lashd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	srv := server.New(server.Config{
		Workers:    *workers,
		CacheBytes: *cacheBytes,
		CacheSize:  *cacheSize,
		JobHistory: *history,
		DataDir:    *dataDir,
		Logger:     logger,
		MaxJobTime: *maxJob,
		MaxQueue:   *maxQueue,
		RateLimit:  *rateLimit,
		RateBurst:  *rateBurst,
	})
	if *demo {
		preload = append(preload,
			server.DatabaseSpec{Name: "demo-text", Generator: "text", Seed: 1},
			server.DatabaseSpec{Name: "demo-market", Generator: "market", Seed: 1},
		)
	}
	for _, spec := range preload {
		info, err := srv.AddDatabase(spec)
		if err != nil {
			fatal("preload failed", "database", spec.Name, "error", err.Error())
		}
		logger.Info("database loaded", "database", info.Name, "source", info.Source,
			"sequences", info.NumSequences, "items", info.NumItems, "hierarchy_depth", info.HierarchyDepth)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "workers", *workers, "cache_bytes", *cacheBytes)

	// pprof lives on its own listener (opt-in) so profiling endpoints are
	// never reachable through the public API port. The explicit
	// registrations avoid importing pprof's side-effect handlers into
	// http.DefaultServeMux.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", *debugAddr, "error", err.Error())
			}
		}()
		logger.Info("pprof serving", "addr", *debugAddr)
	}

	select {
	case err := <-errc:
		fatal("listener failed", "error", err.Error())
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain_timeout", (*drain).String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Close the job manager concurrently with the HTTP drain: it refuses
	// new jobs and fails queued ones immediately, which also unblocks any
	// wait:true handlers the HTTP shutdown would otherwise stall on.
	jobsDone := make(chan error, 1)
	go func() { jobsDone <- srv.Close(shutdownCtx) }()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort debug listener teardown
	}
	if err := <-jobsDone; err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("job drain", "error", err.Error())
	}
	logger.Info("bye")
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

// pprofMux mounts the standard pprof handlers on a private mux.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

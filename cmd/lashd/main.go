// Command lashd serves LASH sequence mining over HTTP.
//
// Usage:
//
//	lashd [-addr :8080] [-workers 4] [-cache 128] [-data DIR]
//	      [-db name=sequences.txt[,hierarchy.txt]]... [-demo]
//
// lashd loads each -db database once at startup (paths are relative to
// -data) and then answers mining queries concurrently: jobs run
// asynchronously on a bounded worker pool under per-job contexts,
// identical in-flight requests coalesce onto one run, and finished results
// are cached so repeats are answered instantly. DELETE /v1/jobs/{id}
// cancels a queued or running job; POST /v1/mine/stream streams patterns
// as NDJSON while the run is still mining. See package lash/server for
// the HTTP API.
//
// A quick session against -demo:
//
//	lashd -demo &
//	curl -s localhost:8080/v1/mine -d '{"database":"demo-text","options":{"min_support":100,"max_gap":1,"max_length":3},"wait":true}'
//	curl -sN localhost:8080/v1/mine/stream -d '{"database":"demo-text","options":{"min_support":100,"max_gap":1,"max_length":3}}'
//	curl -s 'localhost:8080/v1/patterns?db=demo-text&top=5'
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lash/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 4, "concurrent mining jobs")
		cacheSize = flag.Int("cache", 128, "result cache capacity (entries; negative disables)")
		history   = flag.Int("history", 1024, "retained job records (negative retains everything)")
		dataDir   = flag.String("data", "", "directory for file-based databases (empty disables file loading)")
		demo      = flag.Bool("demo", false, "preload generated demo databases demo-text and demo-market")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	)
	var preload []server.DatabaseSpec
	flag.Func("db", "preload a database: name=sequences.txt[,hierarchy.txt] (repeatable; paths relative to -data)", func(v string) error {
		name, files, ok := strings.Cut(v, "=")
		if !ok || name == "" || files == "" {
			return fmt.Errorf("want name=sequences.txt[,hierarchy.txt], got %q", v)
		}
		spec := server.DatabaseSpec{Name: name}
		spec.SequencesFile, spec.HierarchyFile, _ = strings.Cut(files, ",")
		preload = append(preload, spec)
		return nil
	})
	flag.Parse()

	srv := server.New(server.Config{Workers: *workers, CacheSize: *cacheSize, JobHistory: *history, DataDir: *dataDir})
	if *demo {
		preload = append(preload,
			server.DatabaseSpec{Name: "demo-text", Generator: "text", Seed: 1},
			server.DatabaseSpec{Name: "demo-market", Generator: "market", Seed: 1},
		)
	}
	for _, spec := range preload {
		info, err := srv.AddDatabase(spec)
		if err != nil {
			log.Fatalf("lashd: preload %q: %v", spec.Name, err)
		}
		log.Printf("lashd: loaded database %q (%s): %d sequences, %d items, depth %d",
			info.Name, info.Source, info.NumSequences, info.NumItems, info.HierarchyDepth)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("lashd: serving on %s (%d workers, cache %d)", *addr, *workers, *cacheSize)

	select {
	case err := <-errc:
		log.Fatalf("lashd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("lashd: shutting down (draining for up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Close the job manager concurrently with the HTTP drain: it refuses
	// new jobs and fails queued ones immediately, which also unblocks any
	// wait:true handlers the HTTP shutdown would otherwise stall on.
	jobsDone := make(chan error, 1)
	go func() { jobsDone <- srv.Close(shutdownCtx) }()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lashd: http shutdown: %v", err)
	}
	if err := <-jobsDone; err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("lashd: job drain: %v", err)
	}
	log.Printf("lashd: bye")
}

// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark results can be committed
// and diffed across PRs:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH_PR2.json
//
// Each benchmark line becomes one record with ns/op, B/op, allocs/op, and
// any custom metrics (b.ReportMetric) keyed by unit. Environment header
// lines (goos, goarch, pkg, cpu) are captured once.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the committed document.
type Report struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	report := Report{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				report.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. "BenchmarkX ... FAIL")
		}
		r := Result{Name: fields[0], Iterations: iters}
		// The tail is value/unit pairs: `123 ns/op`, `45 B/op`,
		// `6 allocs/op`, `7.8 custom-metric`.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

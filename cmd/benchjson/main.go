// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark results can be committed
// and diffed across PRs:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH_PR3.json
//
// Each benchmark line becomes one record with ns/op, B/op, allocs/op, and
// any custom metrics (b.ReportMetric) keyed by unit. Environment header
// lines (goos, goarch, pkg, cpu) are captured once.
//
// With -diff, benchjson instead compares two such documents and prints a
// per-benchmark delta table (ns/op and allocs/op with % change):
//
//	go run ./cmd/benchjson -diff BENCH_PR2.json BENCH_PR3.json
//
// By default the diff is informational and always exits 0 when both files
// parse, so it can run in CI without gating merges on a noisy shared
// runner. Adding -max-regress N turns it into a gate: any benchmark whose
// ns/op regressed by more than N percent — or that disappeared entirely —
// fails the comparison with exit code 1 after the table, listing the
// violations:
//
//	go run ./cmd/benchjson -diff -max-regress 40 BENCH_PR5.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the committed document.
type Report struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two benchmark JSON files: benchjson -diff OLD NEW")
	maxRegress := flag.Float64("max-regress", -1,
		"with -diff: fail (exit 1) when any benchmark's ns/op regressed by more than this percentage (negative = report only)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-max-regress PCT] OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *maxRegress >= 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -max-regress requires -diff")
		os.Exit(2)
	}
	runParse()
}

func runParse() {
	report := Report{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				report.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. "BenchmarkX ... FAIL")
		}
		r := Result{Name: trimProcs(fields[0]), Iterations: iters}
		// The tail is value/unit pairs: `123 ns/op`, `45 B/op`,
		// `6 allocs/op`, `7.8 custom-metric`.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// trimProcs strips go test's "-N" GOMAXPROCS suffix ("BenchmarkX-8" →
// "BenchmarkX") so documents recorded on hosts with different core counts
// compare by the benchmark's real identity. Subtests keep their slash-
// separated names intact ("BenchmarkFig5aSupport/15" has no suffix to
// strip; "BenchmarkFig5aSupport/15-8" loses only the "-8").
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Normalize on load too, so documents committed before this fix (or
	// produced by other tools) still match across hosts.
	for i := range r.Benchmarks {
		r.Benchmarks[i].Name = trimProcs(r.Benchmarks[i].Name)
	}
	return &r, nil
}

func runDiff(oldPath, newPath string, maxRegress float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	newSeen := make(map[string]bool, len(newRep.Benchmarks))
	var violations []string

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "benchmark\tns/op %s\tns/op %s\tΔ\tallocs %s\tallocs %s\tΔ\t\n",
		oldPath, newPath, oldPath, newPath)
	for _, nb := range newRep.Benchmarks {
		newSeen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%s\t(new)\t-\t%s\t(new)\t\n",
				nb.Name, fmtVal(nb.NsPerOp), fmtVal(nb.AllocsOp))
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n", nb.Name,
			fmtVal(ob.NsPerOp), fmtVal(nb.NsPerOp), fmtDelta(ob.NsPerOp, nb.NsPerOp),
			fmtVal(ob.AllocsOp), fmtVal(nb.AllocsOp), fmtDelta(ob.AllocsOp, nb.AllocsOp))
		if maxRegress >= 0 && ob.NsPerOp > 0 {
			if pct := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100; pct > maxRegress {
				violations = append(violations, fmt.Sprintf("%s: ns/op %s → %s (%s, limit +%.1f%%)",
					nb.Name, fmtVal(ob.NsPerOp), fmtVal(nb.NsPerOp), fmtDelta(ob.NsPerOp, nb.NsPerOp), maxRegress))
			}
		}
	}
	for _, ob := range oldRep.Benchmarks {
		if !newSeen[ob.Name] {
			fmt.Fprintf(w, "%s\t%s\t-\t(gone)\t%s\t-\t(gone)\t\n",
				ob.Name, fmtVal(ob.NsPerOp), fmtVal(ob.AllocsOp))
			if maxRegress >= 0 {
				violations = append(violations, fmt.Sprintf("%s: present in %s but missing from %s", ob.Name, oldPath, newPath))
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(violations) > 0 {
		fmt.Printf("\nbench gate: %d violation(s) over the +%.1f%% ns/op limit:\n", len(violations), maxRegress)
		for _, v := range violations {
			fmt.Println("  " + v)
		}
		return fmt.Errorf("%d benchmark(s) regressed past the gate", len(violations))
	}
	if maxRegress >= 0 {
		fmt.Printf("\nbench gate: all benchmarks within +%.1f%% ns/op of %s\n", maxRegress, oldPath)
	}
	return nil
}

// fmtVal prints a measured value; 0 is a real measurement (0 allocs/op is
// the goal state of this repo's hot paths), not missing data — absent
// benchmarks are rendered as explicit (new)/(gone) rows instead.
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

func fmtDelta(old, new float64) string {
	switch {
	case old == new:
		return "+0.0%"
	case old == 0:
		// A 0 → N regression has no finite percentage; make it loud.
		return "+inf%"
	default:
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
}

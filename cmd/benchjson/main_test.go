package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, name string, benchmarks []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	raw, err := json.Marshal(Report{Env: map[string]string{}, Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffGate(t *testing.T) {
	oldPath := writeReport(t, "old.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkB", Iterations: 1, NsPerOp: 200},
	})

	// Within the limit: +30% on A passes a 40% gate.
	ok := writeReport(t, "ok.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 130},
		{Name: "BenchmarkB", Iterations: 1, NsPerOp: 190},
	})
	if err := runDiff(oldPath, ok, 40); err != nil {
		t.Errorf("30%% regression failed a 40%% gate: %v", err)
	}

	// Past the limit: +50% on A fails it.
	bad := writeReport(t, "bad.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 150},
		{Name: "BenchmarkB", Iterations: 1, NsPerOp: 190},
	})
	if err := runDiff(oldPath, bad, 40); err == nil {
		t.Error("50% regression passed a 40% gate")
	}
	// ... but report-only mode (negative limit) never fails.
	if err := runDiff(oldPath, bad, -1); err != nil {
		t.Errorf("report-only diff failed: %v", err)
	}

	// A vanished benchmark fails the gate (the harness must not bit-rot
	// silently), while a new one does not.
	gone := writeReport(t, "gone.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkC", Iterations: 1, NsPerOp: 1},
	})
	if err := runDiff(oldPath, gone, 40); err == nil {
		t.Error("missing benchmark passed the gate")
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFig4aLASH":         "BenchmarkFig4aLASH",
		"BenchmarkFig4aLASH-8":       "BenchmarkFig4aLASH",
		"BenchmarkFig5aSupport/6":    "BenchmarkFig5aSupport/6",
		"BenchmarkFig5aSupport/6-16": "BenchmarkFig5aSupport/6",
		"BenchmarkX-y":               "BenchmarkX-y", // non-numeric suffix kept
		"BenchmarkX-":                "BenchmarkX-",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDiffCrossHost: a baseline recorded on a 1-proc host must match a new
// document recorded with GOMAXPROCS suffixes (the CI runner case).
func TestDiffCrossHost(t *testing.T) {
	oldPath := writeReport(t, "old.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 100},
	})
	newPath := writeReport(t, "new.json", []Result{
		{Name: "BenchmarkA-4", Iterations: 1, NsPerOp: 110},
	})
	if err := runDiff(oldPath, newPath, 40); err != nil {
		t.Errorf("suffixed benchmark did not match its baseline: %v", err)
	}
}

// Command lash mines frequent generalized sequences from text files.
//
// Usage:
//
//	lash -input sequences.txt [-hierarchy edges.txt] [flags]
//
// The sequences file holds one input sequence per line (items separated by
// whitespace). The optional hierarchy file holds one "child parent" edge
// per line. Output is one pattern per line: support, TAB, items.
//
// Ctrl-C (SIGINT) or SIGTERM cancels a run in flight: mining aborts
// cooperatively and the command exits non-zero without writing partial
// (non-streamed) output. With -stream, patterns are printed the moment
// their partition finishes mining — in partition-completion order, not the
// canonical sorted order — so interrupted runs keep everything printed so
// far. -progress reports live phase/partition progress on stderr.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lash"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		ue, isUsage := err.(usageError)
		if err != flag.ErrHelp && !(isUsage && ue.printed) {
			msg := err.Error()
			if !strings.HasPrefix(msg, "lash: ") {
				msg = "lash: " + msg
			}
			fmt.Fprintln(os.Stderr, msg)
		}
		os.Exit(exitCode(err))
	}
}

// usageError marks errors in flag plumbing, which exit with status 2 like
// flag parse failures do. printed means the FlagSet already wrote the
// message to stderr, so main must not repeat it.
type usageError struct {
	error
	printed bool
}

func exitCode(err error) int {
	if err == nil || err == flag.ErrHelp { // -h prints usage and exits 0
		return 0
	}
	if _, ok := err.(usageError); ok {
		return 2
	}
	return 1
}

// run executes the CLI flow: parse flags, build the database, mine, print.
// It is main minus the process plumbing, so tests can drive it end to end;
// cancelling ctx (main wires SIGINT/SIGTERM to it) aborts the mining run.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lash", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input       = fs.String("input", "", "sequence file (one sequence per line; '-' = stdin)")
		hier        = fs.String("hierarchy", "", "hierarchy file (one 'child parent' edge per line)")
		support     = fs.Int64("support", 2, "minimum support σ")
		gap         = fs.Int("gap", 0, "maximum gap γ")
		length      = fs.Int("length", 5, "maximum pattern length λ")
		algorithm   = fs.String("algorithm", "lash", "algorithm: lash, naive, seminaive, mgfsm, lashflat")
		localMnr    = fs.String("miner", "psm", "local miner for lash: psm, psm-noindex, bfs, dfs")
		restriction = fs.String("restriction", "none", "output restriction: none, closed, maximal")
		output      = fs.String("output", "", "output file (default stdout)")
		items       = fs.Bool("items", false, "also print frequent single items")
		quiet       = fs.Bool("quiet", false, "suppress the run summary on stderr")
		stream      = fs.Bool("stream", false, "print patterns as partitions finish mining (completion order, unsorted)")
		progress    = fs.Bool("progress", false, "report live mining progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return err
		}
		return usageError{err, true} // the FlagSet already printed it
	}

	if *input == "" {
		fs.Usage()
		return usageError{fmt.Errorf("-input is required"), false}
	}

	b := lash.NewDatabaseBuilder()
	if *hier != "" {
		if err := readInto(*hier, b.ReadHierarchy); err != nil {
			return err
		}
	}
	if *input == "-" {
		if err := b.ReadSequences(stdin); err != nil {
			return err
		}
	} else if err := readInto(*input, b.ReadSequences); err != nil {
		return err
	}
	db, err := b.Build()
	if err != nil {
		return err
	}

	opt := lash.Options{MinSupport: *support, MaxGap: *gap, MaxLength: *length}
	if opt.Algorithm, err = lash.ParseAlgorithm(*algorithm); err != nil {
		return usageError{err, false}
	}
	if opt.LocalMiner, err = lash.ParseLocalMiner(*localMnr); err != nil {
		return usageError{err, false}
	}
	if opt.Restriction, err = lash.ParseRestriction(*restriction); err != nil {
		return usageError{err, false}
	}
	if *progress {
		opt.Progress = progressPrinter(stderr)
	}

	out := stdout
	var outFile *os.File
	if *output != "" {
		outFile, err = os.Create(*output)
		if err != nil {
			return err
		}
		out = outFile
	}

	start := time.Now()
	var (
		res      *lash.Result
		streamed int
	)
	if *stream {
		// Streamed patterns go out unbuffered as they arrive, so a
		// cancelled run keeps everything printed so far.
		res, err = lash.Stream(ctx, db, opt, func(p lash.Pattern) error {
			streamed++
			_, werr := fmt.Fprintf(out, "%d\t%s\n", p.Support, strings.Join(p.Items, " "))
			return werr
		})
	} else {
		res, err = lash.MineContext(ctx, db, opt)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if *stream {
				return fmt.Errorf("interrupted (%d patterns streamed): %w", streamed, err)
			}
			return fmt.Errorf("interrupted: %w", err)
		}
		return err
	}
	elapsed := time.Since(start)

	w := bufio.NewWriter(out)
	if *items {
		for _, p := range res.FrequentItems {
			fmt.Fprintf(w, "%d\t%s\n", p.Support, p.Items[0])
		}
	}
	for _, p := range res.Patterns {
		fmt.Fprintf(w, "%d\t%s\n", p.Support, strings.Join(p.Items, " "))
	}
	// A full disk must not exit 0: surface flush/close errors.
	if err := w.Flush(); err != nil {
		return err
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	patterns := len(res.Patterns)
	if *stream {
		patterns = streamed
	}
	if !*quiet {
		fmt.Fprintf(stderr, "lash: %d sequences, %d frequent items, %d patterns, %d partitions, %s shuffled, %v\n",
			db.NumSequences(), len(res.FrequentItems), patterns,
			res.NumPartitions, byteCount(res.Stats.MapOutputBytes), elapsed.Round(time.Millisecond))
	}
	return nil
}

// progressPrinter renders progress events as single-line updates on w,
// printing only when the rendered line changes so dense event streams stay
// readable in a log and cheap on a terminal.
func progressPrinter(w io.Writer) func(lash.ProgressEvent) {
	var last string
	return func(e lash.ProgressEvent) {
		line := fmt.Sprintf("lash: %s: %s — map %d/%d, partitions %d/%d, %s shuffled",
			e.Job, e.Phase, e.MapTasksDone, e.MapTasks,
			e.PartitionsMined, e.Partitions, byteCount(e.ShuffleBytes))
		if line == last {
			return
		}
		last = line
		fmt.Fprintln(w, line)
	}
}

// readInto opens path and feeds it to read (ReadSequences/ReadHierarchy).
func readInto(path string, read func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return read(f)
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Command lash mines frequent generalized sequences from text files.
//
// Usage:
//
//	lash -input sequences.txt [-hierarchy edges.txt] [flags]
//
// The sequences file holds one input sequence per line (items separated by
// whitespace). The optional hierarchy file holds one "child parent" edge
// per line. Output is one pattern per line: support, TAB, items.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lash"
)

func main() {
	var (
		input     = flag.String("input", "", "sequence file (one sequence per line; '-' = stdin)")
		hier      = flag.String("hierarchy", "", "hierarchy file (one 'child parent' edge per line)")
		support   = flag.Int64("support", 2, "minimum support σ")
		gap       = flag.Int("gap", 0, "maximum gap γ")
		length    = flag.Int("length", 5, "maximum pattern length λ")
		algorithm = flag.String("algorithm", "lash", "algorithm: lash, naive, seminaive, mgfsm, lashflat")
		localMnr  = flag.String("miner", "psm", "local miner for lash: psm, psm-noindex, bfs, dfs")
		output    = flag.String("output", "", "output file (default stdout)")
		items     = flag.Bool("items", false, "also print frequent single items")
		quiet     = flag.Bool("quiet", false, "suppress the run summary on stderr")
	)
	flag.Parse()

	if *input == "" {
		fmt.Fprintln(os.Stderr, "lash: -input is required")
		flag.Usage()
		os.Exit(2)
	}

	b := lash.NewDatabaseBuilder()
	if *hier != "" {
		f, err := os.Open(*hier)
		if err != nil {
			fatal(err)
		}
		err = b.ReadHierarchy(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *input == "-" {
		if err := b.ReadSequences(os.Stdin); err != nil {
			fatal(err)
		}
	} else {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		err = b.ReadSequences(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	db, err := b.Build()
	if err != nil {
		fatal(err)
	}

	opt := lash.Options{MinSupport: *support, MaxGap: *gap, MaxLength: *length}
	switch strings.ToLower(*algorithm) {
	case "lash":
		opt.Algorithm = lash.AlgorithmLASH
	case "naive":
		opt.Algorithm = lash.AlgorithmNaive
	case "seminaive", "semi-naive":
		opt.Algorithm = lash.AlgorithmSemiNaive
	case "mgfsm", "mg-fsm":
		opt.Algorithm = lash.AlgorithmMGFSM
	case "lashflat", "lash-flat":
		opt.Algorithm = lash.AlgorithmLASHFlat
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algorithm))
	}
	switch strings.ToLower(*localMnr) {
	case "psm":
		opt.LocalMiner = lash.MinerPSM
	case "psm-noindex":
		opt.LocalMiner = lash.MinerPSMNoIndex
	case "bfs":
		opt.LocalMiner = lash.MinerBFS
	case "dfs":
		opt.LocalMiner = lash.MinerDFS
	default:
		fatal(fmt.Errorf("unknown miner %q", *localMnr))
	}

	start := time.Now()
	res, err := lash.Mine(db, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	if *items {
		for _, p := range res.FrequentItems {
			fmt.Fprintf(w, "%d\t%s\n", p.Support, p.Items[0])
		}
	}
	for _, p := range res.Patterns {
		fmt.Fprintf(w, "%d\t%s\n", p.Support, strings.Join(p.Items, " "))
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lash: %d sequences, %d frequent items, %d patterns, %d partitions, %s shuffled, %v\n",
			db.NumSequences(), len(res.FrequentItems), len(res.Patterns),
			res.NumPartitions, byteCount(res.Stats.MapOutputBytes), elapsed.Round(time.Millisecond))
	}
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lash:", err)
	os.Exit(1)
}

// Command lash mines frequent generalized sequences from text files.
//
// Usage:
//
//	lash -input sequences.txt [-hierarchy edges.txt] [flags]
//
// The sequences file holds one input sequence per line (items separated by
// whitespace). The optional hierarchy file holds one "child parent" edge
// per line. Output is one pattern per line: support, TAB, items.
//
// Ctrl-C (SIGINT) or SIGTERM cancels a run in flight: mining aborts
// cooperatively and the command exits non-zero without writing partial
// (non-streamed) output. With -stream, patterns are printed the moment
// their partition finishes mining — in partition-completion order, not the
// canonical sorted order — so interrupted runs keep everything printed so
// far. -progress reports live phase/partition progress on stderr.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lash"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		ue, isUsage := err.(usageError)
		if err != flag.ErrHelp && !(isUsage && ue.printed) {
			msg := err.Error()
			if !strings.HasPrefix(msg, "lash: ") {
				msg = "lash: " + msg
			}
			fmt.Fprintln(os.Stderr, msg)
		}
		os.Exit(exitCode(err))
	}
}

// usageError marks errors in flag plumbing, which exit with status 2 like
// flag parse failures do. printed means the FlagSet already wrote the
// message to stderr, so main must not repeat it.
type usageError struct {
	error
	printed bool
}

func exitCode(err error) int {
	if err == nil || err == flag.ErrHelp { // -h prints usage and exits 0
		return 0
	}
	if _, ok := err.(usageError); ok {
		return 2
	}
	return 1
}

// run executes the CLI flow: parse flags, build the database, mine, print.
// It is main minus the process plumbing, so tests can drive it end to end;
// cancelling ctx (main wires SIGINT/SIGTERM to it) aborts the mining run.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lash", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input       = fs.String("input", "", "sequence file (text: one sequence per line, or a binary .ldb corpus; '-' = stdin)")
		hier        = fs.String("hierarchy", "", "hierarchy file (one 'child parent' edge per line; text input only)")
		support     = fs.Int64("support", 2, "minimum support σ")
		gap         = fs.Int("gap", 0, "maximum gap γ")
		length      = fs.Int("length", 5, "maximum pattern length λ")
		algorithm   = fs.String("algorithm", "lash", "algorithm: lash, naive, seminaive, mgfsm, lashflat")
		localMnr    = fs.String("miner", "psm", "local miner for lash: psm, psm-noindex, bfs, dfs")
		restriction = fs.String("restriction", "none", "output restriction: none, closed, maximal")
		output      = fs.String("output", "", "output file (default stdout)")
		items       = fs.Bool("items", false, "also print frequent single items")
		quiet       = fs.Bool("quiet", false, "suppress the run summary on stderr")
		stream      = fs.Bool("stream", false, "print patterns as partitions finish mining (completion order, unsorted)")
		progress    = fs.Bool("progress", false, "report live mining progress on stderr")
		memBudget   = fs.String("mem-budget", "", "shuffle memory budget before spilling sorted runs to disk (e.g. 64MiB, 2G, 1048576; empty = unlimited)")
		traceOut    = fs.String("trace-out", "", "write the run's span tree (corpus load, jobs, phases, per-partition mining) as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return err
		}
		return usageError{err, true} // the FlagSet already printed it
	}

	if *input == "" {
		fs.Usage()
		return usageError{fmt.Errorf("-input is required"), false}
	}

	var tr *lash.Trace
	if *traceOut != "" {
		tr = lash.NewTrace()
	}

	loadDone := tr.Span("load-corpus")
	db, err := loadDatabase(*input, *hier, stdin)
	loadDone()
	if err != nil {
		return err
	}

	opt := lash.Options{MinSupport: *support, MaxGap: *gap, MaxLength: *length}
	if *memBudget != "" {
		if opt.MemoryBudget, err = parseBytes(*memBudget); err != nil {
			return usageError{err, false}
		}
	}
	if opt.Algorithm, err = lash.ParseAlgorithm(*algorithm); err != nil {
		return usageError{err, false}
	}
	if opt.LocalMiner, err = lash.ParseLocalMiner(*localMnr); err != nil {
		return usageError{err, false}
	}
	if opt.Restriction, err = lash.ParseRestriction(*restriction); err != nil {
		return usageError{err, false}
	}
	if *progress {
		opt.Progress = progressPrinter(stderr)
	}
	opt.Trace = tr

	out := stdout
	var outFile *os.File
	if *output != "" {
		outFile, err = os.Create(*output)
		if err != nil {
			return err
		}
		out = outFile
	}

	start := time.Now()
	var (
		res      *lash.Result
		streamed int
	)
	if *stream {
		// Streamed patterns go out unbuffered as they arrive, so a
		// cancelled run keeps everything printed so far.
		res, err = lash.Stream(ctx, db, opt, func(p lash.Pattern) error {
			streamed++
			_, werr := fmt.Fprintf(out, "%d\t%s\n", p.Support, strings.Join(p.Items, " "))
			return werr
		})
	} else {
		res, err = lash.MineContext(ctx, db, opt)
	}
	// The trace is written even for failed or interrupted runs — a
	// truncated span tree still shows where the time went.
	if tr != nil {
		if werr := writeTrace(*traceOut, tr); werr != nil && err == nil {
			return werr
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if *stream {
				return fmt.Errorf("interrupted (%d patterns streamed): %w", streamed, err)
			}
			return fmt.Errorf("interrupted: %w", err)
		}
		return err
	}
	elapsed := time.Since(start)

	w := bufio.NewWriter(out)
	if *items {
		for _, p := range res.FrequentItems {
			fmt.Fprintf(w, "%d\t%s\n", p.Support, p.Items[0])
		}
	}
	for _, p := range res.Patterns {
		fmt.Fprintf(w, "%d\t%s\n", p.Support, strings.Join(p.Items, " "))
	}
	// A full disk must not exit 0: surface flush/close errors.
	if err := w.Flush(); err != nil {
		return err
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	patterns := len(res.Patterns)
	if *stream {
		patterns = streamed
	}
	if !*quiet {
		spilled := ""
		if res.Stats.SpillRuns > 0 {
			spilled = fmt.Sprintf(", %d runs (%s) spilled", res.Stats.SpillRuns, byteCount(res.Stats.SpillBytes))
		}
		fmt.Fprintf(stderr, "lash: %d sequences, %d frequent items, %d patterns, %d partitions, %s shuffled%s, %v\n",
			db.NumSequences(), len(res.FrequentItems), patterns,
			res.NumPartitions, byteCount(res.Stats.MapOutputBytes), spilled, elapsed.Round(time.Millisecond))
	}
	return nil
}

// progressPrinter renders progress events as single-line updates on w,
// printing only when the rendered line changes so dense event streams stay
// readable in a log and cheap on a terminal.
func progressPrinter(w io.Writer) func(lash.ProgressEvent) {
	var last string
	return func(e lash.ProgressEvent) {
		line := fmt.Sprintf("lash: %s: %s — map %d/%d, partitions %d/%d, %s shuffled",
			e.Job, e.Phase, e.MapTasksDone, e.MapTasks,
			e.PartitionsMined, e.Partitions, byteCount(e.ShuffleBytes))
		if line == last {
			return
		}
		last = line
		fmt.Fprintln(w, line)
	}
}

// loadDatabase builds the input database from either format: the stream is
// sniffed for the binary corpus magic (which embeds the hierarchy — a
// separate -hierarchy file is then an error), anything else is read as the
// textual one-sequence-per-line format plus the optional hierarchy file.
func loadDatabase(input, hier string, stdin io.Reader) (*lash.Database, error) {
	var src io.Reader
	if input == "-" {
		src = stdin
	} else {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	br := bufio.NewReaderSize(src, 1<<16)
	head, err := br.Peek(len(lash.BinaryMagic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if string(head) == lash.BinaryMagic {
		if hier != "" {
			return nil, fmt.Errorf("binary corpus %s embeds its hierarchy; drop -hierarchy", input)
		}
		return lash.ReadBinaryDatabase(br)
	}

	b := lash.NewDatabaseBuilder()
	if hier != "" {
		if err := readInto(hier, b.ReadHierarchy); err != nil {
			return nil, err
		}
	}
	if err := b.ReadSequences(br); err != nil {
		return nil, err
	}
	return b.Build()
}

// parseBytes parses a human-friendly byte size: a plain integer, or one
// with a K/M/G/T suffix (powers of 1024; optional i and/or B, so 64M,
// 64MiB, and 64mb all work).
func parseBytes(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimSuffix(t, "B")
	t = strings.TrimSuffix(t, "I")
	shift := 0
	if len(t) > 0 {
		switch t[len(t)-1] {
		case 'K':
			shift = 10
		case 'M':
			shift = 20
		case 'G':
			shift = 30
		case 'T':
			shift = 40
		}
		if shift != 0 {
			t = t[:len(t)-1]
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 1048576, 64MiB, 2G)", s)
	}
	if n > (int64(1)<<62)>>shift {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n << shift, nil
}

// writeTrace renders the collected span tree to path.
func writeTrace(path string, tr *lash.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readInto opens path and feeds it to read (ReadSequences/ReadHierarchy).
func readInto(path string, read func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return read(f)
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

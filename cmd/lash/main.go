// Command lash mines frequent generalized sequences from text files.
//
// Usage:
//
//	lash -input sequences.txt [-hierarchy edges.txt] [flags]
//
// The sequences file holds one input sequence per line (items separated by
// whitespace). The optional hierarchy file holds one "child parent" edge
// per line. Output is one pattern per line: support, TAB, items.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lash"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		ue, isUsage := err.(usageError)
		if err != flag.ErrHelp && !(isUsage && ue.printed) {
			msg := err.Error()
			if !strings.HasPrefix(msg, "lash: ") {
				msg = "lash: " + msg
			}
			fmt.Fprintln(os.Stderr, msg)
		}
		os.Exit(exitCode(err))
	}
}

// usageError marks errors in flag plumbing, which exit with status 2 like
// flag parse failures do. printed means the FlagSet already wrote the
// message to stderr, so main must not repeat it.
type usageError struct {
	error
	printed bool
}

func exitCode(err error) int {
	if err == nil || err == flag.ErrHelp { // -h prints usage and exits 0
		return 0
	}
	if _, ok := err.(usageError); ok {
		return 2
	}
	return 1
}

// run executes the CLI flow: parse flags, build the database, mine, print.
// It is main minus the process plumbing, so tests can drive it end to end.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lash", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input       = fs.String("input", "", "sequence file (one sequence per line; '-' = stdin)")
		hier        = fs.String("hierarchy", "", "hierarchy file (one 'child parent' edge per line)")
		support     = fs.Int64("support", 2, "minimum support σ")
		gap         = fs.Int("gap", 0, "maximum gap γ")
		length      = fs.Int("length", 5, "maximum pattern length λ")
		algorithm   = fs.String("algorithm", "lash", "algorithm: lash, naive, seminaive, mgfsm, lashflat")
		localMnr    = fs.String("miner", "psm", "local miner for lash: psm, psm-noindex, bfs, dfs")
		restriction = fs.String("restriction", "none", "output restriction: none, closed, maximal")
		output      = fs.String("output", "", "output file (default stdout)")
		items       = fs.Bool("items", false, "also print frequent single items")
		quiet       = fs.Bool("quiet", false, "suppress the run summary on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return err
		}
		return usageError{err, true} // the FlagSet already printed it
	}

	if *input == "" {
		fs.Usage()
		return usageError{fmt.Errorf("-input is required"), false}
	}

	b := lash.NewDatabaseBuilder()
	if *hier != "" {
		if err := readInto(*hier, b.ReadHierarchy); err != nil {
			return err
		}
	}
	if *input == "-" {
		if err := b.ReadSequences(stdin); err != nil {
			return err
		}
	} else if err := readInto(*input, b.ReadSequences); err != nil {
		return err
	}
	db, err := b.Build()
	if err != nil {
		return err
	}

	opt := lash.Options{MinSupport: *support, MaxGap: *gap, MaxLength: *length}
	if opt.Algorithm, err = lash.ParseAlgorithm(*algorithm); err != nil {
		return usageError{err, false}
	}
	if opt.LocalMiner, err = lash.ParseLocalMiner(*localMnr); err != nil {
		return usageError{err, false}
	}
	if opt.Restriction, err = lash.ParseRestriction(*restriction); err != nil {
		return usageError{err, false}
	}

	start := time.Now()
	res, err := lash.Mine(db, opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	out := stdout
	var outFile *os.File
	if *output != "" {
		outFile, err = os.Create(*output)
		if err != nil {
			return err
		}
		out = outFile
	}
	w := bufio.NewWriter(out)
	if *items {
		for _, p := range res.FrequentItems {
			fmt.Fprintf(w, "%d\t%s\n", p.Support, p.Items[0])
		}
	}
	for _, p := range res.Patterns {
		fmt.Fprintf(w, "%d\t%s\n", p.Support, strings.Join(p.Items, " "))
	}
	// A full disk must not exit 0: surface flush/close errors.
	if err := w.Flush(); err != nil {
		return err
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	if !*quiet {
		fmt.Fprintf(stderr, "lash: %d sequences, %d frequent items, %d patterns, %d partitions, %s shuffled, %v\n",
			db.NumSequences(), len(res.FrequentItems), len(res.Patterns),
			res.NumPartitions, byteCount(res.Stats.MapOutputBytes), elapsed.Round(time.Millisecond))
	}
	return nil
}

// readInto opens path and feeds it to read (ReadSequences/ReadHierarchy).
func readInto(path string, read func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return read(f)
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lash"
)

// fixture writes the test corpus (the two-level B hierarchy) and returns
// the sequences and hierarchy file paths.
func fixture(t *testing.T) (seqs, hier string) {
	t.Helper()
	dir := t.TempDir()
	seqs = filepath.Join(dir, "seqs.txt")
	hier = filepath.Join(dir, "hier.txt")
	if err := os.WriteFile(seqs, []byte("a b1 a\na b2 c\na b1 b2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hier, []byte("b1 B\nb2 B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return seqs, hier
}

func runCLI(t *testing.T, stdin string, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err = run(context.Background(), args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestEndToEnd(t *testing.T) {
	seqs, hier := fixture(t)
	stdout, stderr, err := runCLI(t, "",
		"-input", seqs, "-hierarchy", hier,
		"-support", "2", "-gap", "1", "-length", "3", "-items")
	if err != nil {
		t.Fatal(err)
	}
	golden := "3\tB\n3\ta\n2\tb1\n2\tb2\n" + // frequent items
		"2\ta b1\n3\ta B\n2\ta b2\n" // patterns; "a B" only exists via the hierarchy
	if stdout != golden {
		t.Errorf("output = %q, want %q", stdout, golden)
	}
	if !strings.Contains(stderr, "3 sequences") || !strings.Contains(stderr, "3 patterns") {
		t.Errorf("summary = %q", stderr)
	}
}

func TestRestrictionFlag(t *testing.T) {
	seqs, hier := fixture(t)
	stdout, stderr, err := runCLI(t, "",
		"-input", seqs, "-hierarchy", hier,
		"-support", "2", "-gap", "1", "-length", "3",
		"-restriction", "maximal", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if golden := "2\ta b1\n2\ta b2\n"; stdout != golden {
		t.Errorf("maximal output = %q, want %q", stdout, golden)
	}
	if stderr != "" {
		t.Errorf("-quiet still wrote summary %q", stderr)
	}
}

func TestStdinInput(t *testing.T) {
	stdout, _, err := runCLI(t, "a b1 a\na b2 c\na b1 b2\n",
		"-input", "-", "-support", "2", "-gap", "0", "-length", "2", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if golden := "2\ta b1\n"; stdout != golden {
		t.Errorf("stdin output = %q, want %q", stdout, golden)
	}
}

func TestOutputFile(t *testing.T) {
	seqs, hier := fixture(t)
	outPath := filepath.Join(t.TempDir(), "patterns.txt")
	stdout, _, err := runCLI(t, "",
		"-input", seqs, "-hierarchy", hier,
		"-support", "2", "-gap", "1", "-length", "3",
		"-output", outPath, "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "" {
		t.Errorf("-output still wrote %q to stdout", stdout)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if golden := "2\ta b1\n3\ta B\n2\ta b2\n"; string(data) != golden {
		t.Errorf("file output = %q, want %q", data, golden)
	}
}

func TestFlagErrors(t *testing.T) {
	seqs, _ := fixture(t)
	cases := []struct {
		name string
		args []string
	}{
		{"missing input", []string{"-support", "2"}},
		{"unknown flag", []string{"-input", seqs, "-bogus"}},
		{"bad algorithm", []string{"-input", seqs, "-algorithm", "bogus"}},
		{"bad miner", []string{"-input", seqs, "-miner", "bogus"}},
		{"bad restriction", []string{"-input", seqs, "-restriction", "bogus"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := runCLI(t, "", c.args...)
			if err == nil {
				t.Fatal("no error")
			}
			if exitCode(err) != 2 {
				t.Errorf("exit code = %d, want 2 (err %v)", exitCode(err), err)
			}
		})
	}

	// Mining errors (valid flags, bad parameters) exit 1.
	_, _, err := runCLI(t, "", "-input", seqs, "-support", "0", "-quiet")
	if err == nil || exitCode(err) != 1 {
		t.Errorf("support 0: err=%v code=%d, want code 1", err, exitCode(err))
	}
	// Missing files exit 1.
	_, _, err = runCLI(t, "", "-input", filepath.Join(t.TempDir(), "nope.txt"))
	if err == nil || exitCode(err) != 1 {
		t.Errorf("missing file: err=%v code=%d, want code 1", err, exitCode(err))
	}
	// -h prints usage and exits 0, matching the usual CLI convention.
	if exitCode(flag.ErrHelp) != 0 {
		t.Errorf("-h should exit 0")
	}
	_, stderr, err := runCLI(t, "", "-h")
	if err != flag.ErrHelp || !strings.Contains(stderr, "Usage of lash") {
		t.Errorf("-h: err=%v stderr=%q", err, stderr)
	}
}

// binaryFixture converts the text fixture to a binary .ldb corpus through
// the public API.
func binaryFixture(t *testing.T) string {
	t.Helper()
	b := lash.NewDatabaseBuilder()
	b.AddParent("b1", "B").AddParent("b2", "B")
	b.AddSequence("a", "b1", "a")
	b.AddSequence("a", "b2", "c")
	b.AddSequence("a", "b1", "b2")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.ldb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBinaryInput: a binary corpus is sniffed by magic and mines to the
// same golden output as the text fixture (the hierarchy travels inside the
// file).
func TestBinaryInput(t *testing.T) {
	ldb := binaryFixture(t)
	stdout, _, err := runCLI(t, "",
		"-input", ldb, "-support", "2", "-gap", "1", "-length", "3", "-items", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	golden := "3\tB\n3\ta\n2\tb1\n2\tb2\n" +
		"2\ta b1\n3\ta B\n2\ta b2\n"
	if stdout != golden {
		t.Errorf("output = %q, want %q", stdout, golden)
	}

	// The same corpus via stdin must sniff identically.
	raw, err := os.ReadFile(ldb)
	if err != nil {
		t.Fatal(err)
	}
	stdout2, _, err := runCLI(t, string(raw),
		"-input", "-", "-support", "2", "-gap", "1", "-length", "3", "-items", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if stdout2 != golden {
		t.Errorf("stdin output = %q, want %q", stdout2, golden)
	}
}

// TestBinaryInputRejectsHierarchyFlag: the binary corpus embeds its
// hierarchy, so combining it with -hierarchy is an error.
func TestBinaryInputRejectsHierarchyFlag(t *testing.T) {
	ldb := binaryFixture(t)
	_, hier := fixture(t)
	_, _, err := runCLI(t, "", "-input", ldb, "-hierarchy", hier, "-quiet")
	if err == nil || !strings.Contains(err.Error(), "embeds its hierarchy") {
		t.Fatalf("err = %v, want embedded-hierarchy complaint", err)
	}
}

// TestMemBudgetFlag: -mem-budget forces the spill path; the output must be
// identical to the unbudgeted run and the summary must report spilling.
func TestMemBudgetFlag(t *testing.T) {
	seqs, hier := fixture(t)
	args := []string{"-input", seqs, "-hierarchy", hier, "-support", "2", "-gap", "1", "-length", "3"}
	want, _, err := runCLI(t, "", args...)
	if err != nil {
		t.Fatal(err)
	}
	got, stderr, err := runCLI(t, "", append(args, "-mem-budget", "1")...)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("budgeted output = %q, want %q", got, want)
	}
	if !strings.Contains(stderr, "spilled") {
		t.Errorf("summary %q does not report spilling", stderr)
	}

	// Malformed sizes are usage errors (exit 2).
	_, _, err = runCLI(t, "", append(args, "-mem-budget", "lots")...)
	if err == nil || exitCode(err) != 2 {
		t.Errorf("bad -mem-budget: err=%v code=%d, want code 2", err, exitCode(err))
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"0":       0,
		"1048576": 1 << 20,
		"64K":     64 << 10,
		"64KiB":   64 << 10,
		"64kb":    64 << 10,
		"2M":      2 << 20,
		"3GiB":    3 << 30,
		"1T":      1 << 40,
		" 7MiB ":  7 << 20,
	}
	for in, want := range good {
		got, err := parseBytes(in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", in, err)
		} else if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"", "-1", "1.5G", "G", "12X", "9999999999G"} {
		if n, err := parseBytes(in); err == nil {
			t.Errorf("parseBytes(%q) = %d, want error", in, n)
		}
	}
}

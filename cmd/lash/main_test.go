package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture writes the test corpus (the two-level B hierarchy) and returns
// the sequences and hierarchy file paths.
func fixture(t *testing.T) (seqs, hier string) {
	t.Helper()
	dir := t.TempDir()
	seqs = filepath.Join(dir, "seqs.txt")
	hier = filepath.Join(dir, "hier.txt")
	if err := os.WriteFile(seqs, []byte("a b1 a\na b2 c\na b1 b2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hier, []byte("b1 B\nb2 B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return seqs, hier
}

func runCLI(t *testing.T, stdin string, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err = run(context.Background(), args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestEndToEnd(t *testing.T) {
	seqs, hier := fixture(t)
	stdout, stderr, err := runCLI(t, "",
		"-input", seqs, "-hierarchy", hier,
		"-support", "2", "-gap", "1", "-length", "3", "-items")
	if err != nil {
		t.Fatal(err)
	}
	golden := "3\tB\n3\ta\n2\tb1\n2\tb2\n" + // frequent items
		"2\ta b1\n3\ta B\n2\ta b2\n" // patterns; "a B" only exists via the hierarchy
	if stdout != golden {
		t.Errorf("output = %q, want %q", stdout, golden)
	}
	if !strings.Contains(stderr, "3 sequences") || !strings.Contains(stderr, "3 patterns") {
		t.Errorf("summary = %q", stderr)
	}
}

func TestRestrictionFlag(t *testing.T) {
	seqs, hier := fixture(t)
	stdout, stderr, err := runCLI(t, "",
		"-input", seqs, "-hierarchy", hier,
		"-support", "2", "-gap", "1", "-length", "3",
		"-restriction", "maximal", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if golden := "2\ta b1\n2\ta b2\n"; stdout != golden {
		t.Errorf("maximal output = %q, want %q", stdout, golden)
	}
	if stderr != "" {
		t.Errorf("-quiet still wrote summary %q", stderr)
	}
}

func TestStdinInput(t *testing.T) {
	stdout, _, err := runCLI(t, "a b1 a\na b2 c\na b1 b2\n",
		"-input", "-", "-support", "2", "-gap", "0", "-length", "2", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if golden := "2\ta b1\n"; stdout != golden {
		t.Errorf("stdin output = %q, want %q", stdout, golden)
	}
}

func TestOutputFile(t *testing.T) {
	seqs, hier := fixture(t)
	outPath := filepath.Join(t.TempDir(), "patterns.txt")
	stdout, _, err := runCLI(t, "",
		"-input", seqs, "-hierarchy", hier,
		"-support", "2", "-gap", "1", "-length", "3",
		"-output", outPath, "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "" {
		t.Errorf("-output still wrote %q to stdout", stdout)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if golden := "2\ta b1\n3\ta B\n2\ta b2\n"; string(data) != golden {
		t.Errorf("file output = %q, want %q", data, golden)
	}
}

func TestFlagErrors(t *testing.T) {
	seqs, _ := fixture(t)
	cases := []struct {
		name string
		args []string
	}{
		{"missing input", []string{"-support", "2"}},
		{"unknown flag", []string{"-input", seqs, "-bogus"}},
		{"bad algorithm", []string{"-input", seqs, "-algorithm", "bogus"}},
		{"bad miner", []string{"-input", seqs, "-miner", "bogus"}},
		{"bad restriction", []string{"-input", seqs, "-restriction", "bogus"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := runCLI(t, "", c.args...)
			if err == nil {
				t.Fatal("no error")
			}
			if exitCode(err) != 2 {
				t.Errorf("exit code = %d, want 2 (err %v)", exitCode(err), err)
			}
		})
	}

	// Mining errors (valid flags, bad parameters) exit 1.
	_, _, err := runCLI(t, "", "-input", seqs, "-support", "0", "-quiet")
	if err == nil || exitCode(err) != 1 {
		t.Errorf("support 0: err=%v code=%d, want code 1", err, exitCode(err))
	}
	// Missing files exit 1.
	_, _, err = runCLI(t, "", "-input", filepath.Join(t.TempDir(), "nope.txt"))
	if err == nil || exitCode(err) != 1 {
		t.Errorf("missing file: err=%v code=%d, want code 1", err, exitCode(err))
	}
	// -h prints usage and exits 0, matching the usual CLI convention.
	if exitCode(flag.ErrHelp) != 0 {
		t.Errorf("-h should exit 0")
	}
	_, stderr, err := runCLI(t, "", "-h")
	if err != flag.ErrHelp || !strings.Contains(stderr, "Usage of lash") {
		t.Errorf("-h: err=%v stderr=%q", err, stderr)
	}
}

// Command lash-gen generates the synthetic corpora used by the experiment
// harness and writes them as lash-compatible files.
//
// Usage:
//
//	lash-gen -kind text   -out nyt  [-sentences N] [-lemmas N] [-variant CLP]
//	lash-gen -kind market -out amzn [-users N] [-products N] [-levels 8]
//
// With the default -format text, two files are produced: <out>.seq (one
// sequence per line) and <out>.hier (one "child parent" edge per line).
// With -format binary, one compact file <out>.ldb is produced — the binary
// corpus format (dictionary + hierarchy + varint sequences) that the lash
// CLI and lash.OpenBinaryDatabase read without materializing item strings.
package main

import (
	"flag"
	"fmt"
	"os"

	"lash/internal/datagen"
	"lash/internal/gsm"
	"lash/internal/seqdb"
)

func main() {
	var (
		kind      = flag.String("kind", "text", "corpus kind: text or market")
		out       = flag.String("out", "corpus", "output file prefix")
		format    = flag.String("format", "text", "output format: text (<out>.seq + <out>.hier) or binary (<out>.ldb)")
		seed      = flag.Int64("seed", 42, "generator seed")
		sentences = flag.Int("sentences", 10000, "text: number of sentences")
		lemmas    = flag.Int("lemmas", 5000, "text: lemma vocabulary size")
		variant   = flag.String("variant", "CLP", "text: hierarchy variant (L, P, LP, CLP)")
		users     = flag.Int("users", 10000, "market: number of user sessions")
		products  = flag.Int("products", 5000, "market: catalogue size")
		levels    = flag.Int("levels", 8, "market: hierarchy levels (2-8)")
	)
	flag.Parse()

	var (
		db  *gsm.Database
		err error
	)
	switch *kind {
	case "text":
		v, verr := parseVariant(*variant)
		if verr != nil {
			fatal(verr)
		}
		corpus := datagen.GenerateText(datagen.TextConfig{Sentences: *sentences, Lemmas: *lemmas, Seed: *seed})
		db, err = corpus.Build(v)
	case "market":
		corpus := datagen.GenerateMarket(datagen.MarketConfig{Users: *users, Products: *products, Seed: *seed})
		db, err = corpus.Build(*levels)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}

	st := datagen.Characteristics(db)
	hs := db.Forest.ComputeStats()
	switch *format {
	case "text":
		if err := writeFile(*out+".seq", func(w *os.File) error { return datagen.WriteSequences(w, db) }); err != nil {
			fatal(err)
		}
		if err := writeFile(*out+".hier", func(w *os.File) error { return datagen.WriteHierarchy(w, db.Forest) }); err != nil {
			fatal(err)
		}
		fmt.Printf("lash-gen: wrote %s.seq (%d sequences, avg len %.1f) and %s.hier (%d items, %d levels)\n",
			*out, st.Sequences, st.AvgLength, *out, hs.TotalItems, hs.Levels)
	case "binary":
		if err := seqdb.WriteFile(*out+".ldb", db); err != nil {
			fatal(err)
		}
		fmt.Printf("lash-gen: wrote %s.ldb (%d sequences, avg len %.1f, %d items, %d levels)\n",
			*out, st.Sequences, st.AvgLength, hs.TotalItems, hs.Levels)
	default:
		fatal(fmt.Errorf("unknown format %q (want text or binary)", *format))
	}
}

func parseVariant(s string) (datagen.TextHierarchy, error) {
	switch s {
	case "L":
		return datagen.HierarchyL, nil
	case "P":
		return datagen.HierarchyP, nil
	case "LP":
		return datagen.HierarchyLP, nil
	case "CLP":
		return datagen.HierarchyCLP, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lash-gen:", err)
	os.Exit(1)
}

package lash_test

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"lash"
	"lash/internal/faults"
)

// The chaos differential: runs with faults injected into every pipeline
// injection point, plus task retries, must reproduce the fault-free output
// byte-identically — same patterns, same supports, same order, same
// counters — across seeds, every algorithm, and both execution modes
// (in-memory and budgeted-spill). This is the end-to-end guarantee the
// fault-tolerance layer rests on: a retry is invisible in the output.
//
// Seeds default to 1..3; set LASH_CHAOS_SEED=n to shift the window to
// n..n+2 (CI randomizes it so the corpus space gets swept over time).
//
// The tests deliberately leave Options.MaxIntermediate unset: the
// baselines' emit-cap counter is cumulative across attempts, so a retried
// map task counts its emits twice and a cap could trip early (documented
// in README "Robustness").
func chaosSeeds(t *testing.T) []int64 {
	base := int64(1)
	if env := os.Getenv("LASH_CHAOS_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("LASH_CHAOS_SEED=%q: %v", env, err)
		}
		base = n
	}
	return []int64{base, base + 1, base + 2}
}

var chaosAlgorithms = []lash.Algorithm{
	lash.AlgorithmLASH,
	lash.AlgorithmLASHFlat,
	lash.AlgorithmMGFSM,
	lash.AlgorithmNaive,
	lash.AlgorithmSemiNaive,
}

// mapreducePoints are the substrate's injection points (see Options.Faults
// and internal/faults). The spill points only see traffic on budgeted runs.
var mapreducePoints = []string{
	"mapreduce.map.task",
	"mapreduce.reduce.task",
	"mapreduce.spill.write",
	"mapreduce.spill.merge",
}

func assertSameResult(t *testing.T, got, want *lash.Result) {
	t.Helper()
	assertSamePatterns(t, "Patterns", got.Patterns, want.Patterns)
	assertSamePatterns(t, "FrequentItems", got.FrequentItems, want.FrequentItems)
	if got.NumPartitions != want.NumPartitions {
		t.Errorf("NumPartitions = %d, want %d", got.NumPartitions, want.NumPartitions)
	}
	if got.Explored != want.Explored {
		t.Errorf("Explored = %d, want %d", got.Explored, want.Explored)
	}
	if got.Stats.MapOutputBytes != want.Stats.MapOutputBytes ||
		got.Stats.MapOutputRecords != want.Stats.MapOutputRecords {
		t.Errorf("shuffle stats diverged: got %d records/%d bytes, want %d/%d",
			got.Stats.MapOutputRecords, got.Stats.MapOutputBytes,
			want.Stats.MapOutputRecords, want.Stats.MapOutputBytes)
	}
}

func TestChaosDifferential(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		db := genDB(t, 200, seed)
		for _, alg := range chaosAlgorithms {
			for _, budget := range []int64{0, 4 << 10} {
				mode := "in-memory"
				if budget > 0 {
					mode = "spill"
				}
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, alg, mode), func(t *testing.T) {
					// Workers is pinned so the task structure (and with it the
					// per-task fault-point traffic) is machine-independent.
					opt := lash.Options{
						MinSupport: 5, MaxGap: 1, MaxLength: 3,
						Algorithm: alg, MemoryBudget: budget, Workers: 4,
					}
					want, err := lash.Mine(db, opt)
					if err != nil {
						t.Fatal(err)
					}
					if budget > 0 && want.Stats.SpillRuns == 0 {
						t.Fatal("budgeted reference run did not spill — spill points see no traffic")
					}

					// Count-armed: each point fails on exactly its first hit,
					// so on budgeted runs all four injection points fire (the
					// spill points idle on in-memory runs) and every injection
					// costs exactly one retry.
					reg := &faults.Registry{}
					for _, p := range mapreducePoints {
						reg.FailNth(p, 1, faults.Error)
					}
					chaos := opt
					chaos.MaxAttempts = 3
					chaos.Faults = reg
					got, err := lash.Mine(db, chaos)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, got, want)
					wantFired := int64(2) // map.task + reduce.task
					if budget > 0 {
						wantFired = 4 // + spill.write + spill.merge
					}
					if got.Stats.FaultsInjected != wantFired || got.Stats.TaskRetries != wantFired {
						t.Errorf("count-armed: FaultsInjected=%d TaskRetries=%d, want %d/%d",
							got.Stats.FaultsInjected, got.Stats.TaskRetries, wantFired, wantFired)
					}

					// Probability-armed: seeded PRNG draws decide each hit, so
					// failures land at schedule-dependent points; generous
					// attempt headroom makes exhaustion vanishingly unlikely.
					// The rate must scale inversely with a point's per-attempt
					// traffic: map/reduce/merge draw once per attempt (0.1 →
					// exhaustion ~1e-8 per task), but spill.write draws once
					// per spilled run — the naive baselines write thousands —
					// so its rate targets ~3 expected fires per run, measured
					// off the reference run's spill volume. A retried attempt
					// then survives its whole write sequence with probability
					// ~exp(-3/mapTasks) per attempt.
					pWrite := 0.001
					if n := want.Stats.SpillRuns; n > 0 {
						pWrite = 3.0 / float64(n)
						if pWrite > 0.1 {
							pWrite = 0.1
						}
					}
					preg := &faults.Registry{}
					preg.FailProb("mapreduce.map.task", 0.1, uint64(seed), faults.Error)
					preg.FailProb("mapreduce.reduce.task", 0.1, uint64(seed)+1, faults.Error)
					preg.FailProb("mapreduce.spill.write", pWrite, uint64(seed)+2, faults.Error)
					preg.FailProb("mapreduce.spill.merge", 0.1, uint64(seed)+3, faults.Error)
					chaos.MaxAttempts = 8
					chaos.Faults = preg
					got, err = lash.Mine(db, chaos)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, got, want)
					if got.Stats.FaultsInjected != preg.Injected() {
						t.Errorf("prob-armed: run counted %d injections, registry %d",
							got.Stats.FaultsInjected, preg.Injected())
					}
				})
			}
		}
	}
}

// TestChaosNoRetryFails: with retries disabled the same injection fails the
// whole job with a substrate-annotated error wrapping the injection
// sentinel — and the run's private spill directory is still removed.
func TestChaosNoRetryFails(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp) // the run's spill dir lands under os.TempDir()

	db := genDB(t, 400, 1)
	reg := &faults.Registry{}
	reg.FailNth("mapreduce.spill.write", 1, faults.Error)
	_, err := lash.Mine(db, lash.Options{
		MinSupport: 8, MaxGap: 1, MaxLength: 3,
		MemoryBudget: 4 << 10, Faults: reg,
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want wrapped faults.ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "mapreduce: job") {
		t.Fatalf("error not substrate-annotated: %v", err)
	}
	entries, rerr := os.ReadDir(tmp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Errorf("orphan temp entry %s after failed run", e.Name())
	}
}

package lash_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"lash"
)

// fragmentOf builds an append fragment out of n of db's own sequences
// (starting at start, wrapping around) plus the given extra sequences —
// re-appending existing content shifts frequencies without inventing
// vocabulary, while extra sequences exercise the new-item paths.
func fragmentOf(t testing.TB, db *lash.Database, start, n int, extra [][]string) *lash.Database {
	t.Helper()
	b := lash.NewDatabaseBuilder()
	total := db.NumSequences()
	for i := 0; i < n; i++ {
		b.AddSequence(db.Sequence((start + i) % total)...)
	}
	for _, seq := range extra {
		b.AddSequence(seq...)
	}
	frag, err := b.Build()
	if err != nil {
		t.Fatalf("building fragment: %v", err)
	}
	return frag
}

func deltaCorpora(t testing.TB, seed int64) map[string]*lash.Database {
	t.Helper()
	text, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 400, Lemmas: 120, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	market, err := lash.GenerateMarketDatabase(lash.MarketConfig{Users: 250, Products: 300, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*lash.Database{"text": text, "market": market}
}

// TestDeltaDifferential is the tentpole guarantee: mining an appended
// corpus version with Resume must be byte-identical to a from-scratch mine
// of the same version — across seeds × corpora × all five algorithms.
func TestDeltaDifferential(t *testing.T) {
	algos := []lash.Algorithm{
		lash.AlgorithmLASH, lash.AlgorithmLASHFlat, lash.AlgorithmMGFSM,
		lash.AlgorithmNaive, lash.AlgorithmSemiNaive,
	}
	for _, seed := range []int64{1, 7} {
		corpora := deltaCorpora(t, seed)
		for name, base := range corpora {
			for _, algo := range algos {
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, name, algo), func(t *testing.T) {
					opt := lash.Options{MinSupport: 12, MaxGap: 1, MaxLength: 4, Algorithm: algo}
					if algo == lash.AlgorithmNaive || algo == lash.AlgorithmSemiNaive {
						// The baselines explode combinatorially (and never
						// capture state — delta silently degrades to a cold
						// mine for them), so their differential checks output
						// equality, not reuse; keep them tractable,
						// especially under -race.
						opt.MinSupport = 40
						opt.MaxLength = 3
					}

					capOpt := opt
					capOpt.Capture = true
					v1, err := lash.Mine(base, capOpt)
					if err != nil {
						t.Fatal(err)
					}
					isLASH := algo == lash.AlgorithmLASH || algo == lash.AlgorithmLASHFlat || algo == lash.AlgorithmMGFSM
					if isLASH && v1.State == nil {
						t.Fatal("Capture run returned no state")
					}
					if !isLASH && v1.State != nil {
						t.Fatal("baseline run unexpectedly captured state")
					}

					frag := fragmentOf(t, base, 3, base.NumSequences()/100+2,
						[][]string{{"nov_x", "nov_y", "nov_x"}, {"nov_y", "nov_z"}})
					v2db, err := base.Append(frag)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := v2db.Version(), base.Version()+1; got != want {
						t.Fatalf("appended version = %d, want %d", got, want)
					}

					cold, err := lash.Mine(v2db, opt)
					if err != nil {
						t.Fatal(err)
					}
					deltaOpt := opt
					deltaOpt.Capture = true
					deltaOpt.Resume = v1.State
					delta, err := lash.Mine(v2db, deltaOpt)
					if err != nil {
						t.Fatal(err)
					}
					assertSameMining(t, cold, delta)

					// Chain one more version through the delta-captured state.
					if isLASH {
						if delta.State == nil {
							t.Fatal("delta run with Capture returned no state")
						}
						v3db, err := v2db.Append(fragmentOf(t, v2db, 11, 5, nil))
						if err != nil {
							t.Fatal(err)
						}
						cold3, err := lash.Mine(v3db, opt)
						if err != nil {
							t.Fatal(err)
						}
						d3opt := opt
						d3opt.Resume = delta.State
						delta3, err := lash.Mine(v3db, d3opt)
						if err != nil {
							t.Fatal(err)
						}
						assertSameMining(t, cold3, delta3)
					}
				})
			}
		}
	}
}

// assertSameMining checks the full user-visible mining output matches.
func assertSameMining(t *testing.T, cold, delta *lash.Result) {
	t.Helper()
	if !reflect.DeepEqual(cold.Patterns, delta.Patterns) {
		t.Fatalf("delta patterns differ from cold mine:\ncold:  %d patterns\ndelta: %d patterns", len(cold.Patterns), len(delta.Patterns))
	}
	if !reflect.DeepEqual(cold.FrequentItems, delta.FrequentItems) {
		t.Fatal("delta frequent items differ from cold mine")
	}
	if cold.NumPartitions != delta.NumPartitions {
		t.Fatalf("NumPartitions: cold %d, delta %d", cold.NumPartitions, delta.NumPartitions)
	}
	if cold.Explored != delta.Explored {
		t.Fatalf("Explored: cold %d, delta %d", cold.Explored, delta.Explored)
	}
}

// TestDeltaReusesPartitions pins the perf contract on a workload built for
// it: a localized append (novel vocabulary plus a few head sequences) must
// leave most partitions spliced, not re-mined.
func TestDeltaReusesPartitions(t *testing.T) {
	base, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 1500, Lemmas: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := lash.Options{MinSupport: 10, MaxGap: 1, MaxLength: 4, Capture: true}
	v1, err := lash.Mine(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	// A "new topic" append: sequences over fresh vocabulary only. Existing
	// items keep their frequencies, so every previous partition must be
	// reusable.
	frag := fragmentOf(t, base, 0, 0, [][]string{
		{"topic_a", "topic_b", "topic_a", "topic_c"},
		{"topic_b", "topic_a", "topic_c"},
		{"topic_a", "topic_b", "topic_c", "topic_b"},
	})
	v2db, err := base.Append(frag)
	if err != nil {
		t.Fatal(err)
	}
	dOpt := opt
	dOpt.Resume = v1.State
	delta, err := lash.Mine(v2db, dOpt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := lash.Mine(v2db, lash.Options{MinSupport: 10, MaxGap: 1, MaxLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMining(t, cold, delta)
	if delta.Stats.DeltaPartitionsReused == 0 {
		t.Fatalf("new-topic append reused 0 partitions (dirty %d)", delta.Stats.DeltaPartitionsDirty)
	}
	if delta.Stats.DeltaPartitionsDirty > delta.Stats.DeltaPartitionsReused {
		t.Fatalf("new-topic append re-mined %d partitions but reused only %d",
			delta.Stats.DeltaPartitionsDirty, delta.Stats.DeltaPartitionsReused)
	}
}

// TestDeltaRestrictions: restrictions post-process the spliced pattern set,
// so closed/maximal outputs must also match a cold mine exactly.
func TestDeltaRestrictions(t *testing.T) {
	base, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 300, Lemmas: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []lash.Restriction{lash.RestrictClosed, lash.RestrictMaximal} {
		opt := lash.Options{MinSupport: 8, MaxGap: 1, MaxLength: 4, Restriction: r}
		capOpt := opt
		capOpt.Capture = true
		v1, err := lash.Mine(base, capOpt)
		if err != nil {
			t.Fatal(err)
		}
		v2db, err := base.Append(fragmentOf(t, base, 1, 6, nil))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := lash.Mine(v2db, opt)
		if err != nil {
			t.Fatal(err)
		}
		dOpt := opt
		dOpt.Resume = v1.State
		delta, err := lash.Mine(v2db, dOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold.Patterns, delta.Patterns) {
			t.Fatalf("restriction %v: delta patterns differ from cold mine", r)
		}
	}
}

// TestAppendSemantics covers the version/lineage contract and the append
// validation rules.
func TestAppendSemantics(t *testing.T) {
	b := lash.NewDatabaseBuilder()
	b.AddParent("b1", "B").AddParent("b2", "B")
	b.AddSequence("a", "b1", "a")
	b.AddSequence("a", "b2", "c")
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if base.Version() != 1 {
		t.Fatalf("fresh database version = %d, want 1", base.Version())
	}

	fb := lash.NewDatabaseBuilder()
	fb.AddParent("b3", "B")
	fb.AddSequence("a", "b3", "c")
	frag, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := base.Append(frag)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version() != 2 {
		t.Fatalf("v2 version = %d, want 2", v2.Version())
	}
	if base.NumSequences() != 2 || v2.NumSequences() != 3 {
		t.Fatalf("copy-on-append violated: base has %d sequences, v2 has %d", base.NumSequences(), v2.NumSequences())
	}
	if lvl := v2.ItemLevel("b3"); lvl != 1 {
		t.Fatalf("new item b3 level = %d, want 1", lvl)
	}
	if lvl := base.ItemLevel("b3"); lvl != -1 {
		t.Fatal("append leaked the new item into the old snapshot")
	}

	// Re-parenting an existing item is rejected: b1 already generalizes to
	// B, and the base's root "a" cannot gain a parent either.
	for _, edge := range [][2]string{{"b1", "D"}, {"a", "B"}} {
		rb := lash.NewDatabaseBuilder()
		rb.AddParent(edge[0], edge[1])
		rb.AddSequence(edge[0], edge[0])
		rfrag, err := rb.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := base.Append(rfrag); err == nil {
			t.Fatalf("append re-parenting %s under %s succeeded, want error", edge[0], edge[1])
		}
	}

	// Declaring the existing parent again is fine.
	ob := lash.NewDatabaseBuilder()
	ob.AddParent("b1", "B")
	ob.AddSequence("b1", "a")
	ofrag, err := ob.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Append(ofrag); err != nil {
		t.Fatalf("append re-declaring an existing edge: %v", err)
	}

	// An empty fragment is rejected.
	eb := lash.NewDatabaseBuilder()
	efrag, err := eb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Append(efrag); err == nil {
		t.Fatal("append of an empty fragment succeeded, want error")
	}
}

// TestResumeValidation: states only seed databases descended from the
// snapshot they were captured on, under equal canonical options. A state
// captured at or before an append fork seeds both branches; states
// captured on one branch never validate on the other.
func TestResumeValidation(t *testing.T) {
	base, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 100, Lemmas: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3, Capture: true}
	v1, err := lash.Mine(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	frag := fragmentOf(t, base, 0, 3, nil)
	v2a, err := base.Append(frag)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.State.ValidFor(v2a, opt) {
		t.Fatal("state invalid for the lineage tip")
	}
	if v1.State.CorpusVersion() != 1 || v1.State.NumSequences() != base.NumSequences() {
		t.Fatalf("state covers version %d / %d sequences", v1.State.CorpusVersion(), v1.State.NumSequences())
	}

	// Different options: invalid, and Mine rejects it.
	other := opt
	other.MinSupport = 6
	if v1.State.ValidFor(v2a, other) {
		t.Fatal("state valid under different options")
	}
	badOpt := other
	badOpt.Resume = v1.State
	if _, err := lash.Mine(v2a, badOpt); err == nil {
		t.Fatal("Mine accepted a Resume state with mismatched options")
	}

	// Fork: appending from base a second time diverges the history. The
	// pre-fork state seeds both branches (their common prefix is exactly
	// the corpus it covers), but a state captured on one branch must not
	// validate against the other — their version-2 contents differ.
	v2b, err := base.Append(fragmentOf(t, base, 50, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !v1.State.ValidFor(v2a, opt) || !v1.State.ValidFor(v2b, opt) {
		t.Fatal("pre-fork state must validate on both branches")
	}
	forkOpt := opt
	forkOpt.Resume = v1.State
	vb, err := lash.Mine(v2b, forkOpt)
	if err != nil {
		t.Fatal(err)
	}
	if vb.State.ValidFor(v2a, opt) {
		t.Fatal("state captured on one branch validated against the other")
	}
	va, err := lash.Mine(v2a, forkOpt)
	if err != nil {
		t.Fatal(err)
	}
	if va.State.ValidFor(v2b, opt) {
		t.Fatal("state captured on one branch validated against the other")
	}
	coldB, err := lash.Mine(v2b, lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldB.Patterns, vb.Patterns) {
		t.Fatal("delta mine across a fork differs from cold mine")
	}

	// Streaming rejects Capture and Resume.
	sOpt := lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3, Capture: true}
	if err := sOpt.ValidateStream(); err == nil {
		t.Fatal("ValidateStream accepted Capture")
	}
	sOpt = lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3, Resume: v1.State}
	if err := sOpt.ValidateStream(); err == nil {
		t.Fatal("ValidateStream accepted Resume")
	}

	// CacheKey ignores Capture/Resume: a captured result answers the same
	// cache lookups a plain mine would.
	plain := lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3}
	withState := plain
	withState.Capture = true
	withState.Resume = v1.State
	if plain.CacheKey() != withState.CacheKey() {
		t.Fatal("CacheKey depends on Capture/Resume")
	}
}

// TestAppendBinary: a self-contained .ldb fragment appends by item name.
func TestAppendBinary(t *testing.T) {
	b := lash.NewDatabaseBuilder()
	b.AddParent("b1", "B")
	b.AddSequence("a", "b1", "a")
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fb := lash.NewDatabaseBuilder()
	fb.AddParent("b2", "B")
	fb.AddSequence("a", "b2")
	frag, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := frag.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := base.AppendBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumSequences() != 2 || v2.Version() != 2 {
		t.Fatalf("binary append: %d sequences, version %d", v2.NumSequences(), v2.Version())
	}
	if got := v2.Sequence(1); len(got) != 2 || got[0] != "a" || got[1] != "b2" {
		t.Fatalf("binary append remapped sequence = %v", got)
	}
	if p, ok := v2.ItemParent("b2"); !ok || p != "B" {
		t.Fatalf("b2 parent = %q, %v", p, ok)
	}
}

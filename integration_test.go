package lash_test

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"lash"
	"lash/internal/datagen"
)

// Full pipeline over the file interchange format: generate a corpus, write
// it out, read it back through the public API, and verify that mining the
// round-tripped database gives exactly the same patterns as mining the
// original.
func TestFileFormatRoundTrip(t *testing.T) {
	corpus := datagen.GenerateText(datagen.TextConfig{Sentences: 250, Lemmas: 150, Seed: 19})
	db, err := corpus.Build(datagen.HierarchyLP)
	if err != nil {
		t.Fatal(err)
	}
	var seqBuf, hierBuf bytes.Buffer
	if err := datagen.WriteSequences(&seqBuf, db); err != nil {
		t.Fatal(err)
	}
	if err := datagen.WriteHierarchy(&hierBuf, db.Forest); err != nil {
		t.Fatal(err)
	}

	b := lash.NewDatabaseBuilder()
	if err := b.ReadHierarchy(&hierBuf); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadSequences(&seqBuf); err != nil {
		t.Fatal(err)
	}
	roundTripped, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if roundTripped.NumSequences() != len(db.Seqs) {
		t.Fatalf("round trip lost sequences: %d vs %d", roundTripped.NumSequences(), len(db.Seqs))
	}

	opt := lash.Options{MinSupport: 8, MaxGap: 1, MaxLength: 4}
	got, err := lash.Mine(roundTripped, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Mine the original through the generator façade path for comparison.
	direct := lash.NewDatabaseBuilder()
	for _, seq := range db.Seqs {
		items := make([]string, len(seq))
		for i, w := range seq {
			items[i] = db.Forest.Name(w)
		}
		direct.AddSequence(items...)
	}
	var hier2 bytes.Buffer
	if err := datagen.WriteHierarchy(&hier2, db.Forest); err != nil {
		t.Fatal(err)
	}
	if err := direct.ReadHierarchy(&hier2); err != nil {
		t.Fatal(err)
	}
	directDB, err := direct.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := lash.Mine(directDB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if patternChecksum(got.Patterns) != patternChecksum(want.Patterns) {
		t.Fatalf("round-tripped mining differs: %d vs %d patterns", len(got.Patterns), len(want.Patterns))
	}
}

// patternChecksum summarizes a pattern list independently of its order
// (canonical ordering depends on item interning order, which may differ
// between equivalent databases).
func patternChecksum(ps []lash.Pattern) uint64 {
	rows := make([]string, len(ps))
	for i, p := range ps {
		rows[i] = fmt.Sprintf("%s=%d", strings.Join(p.Items, " "), p.Support)
	}
	sort.Strings(rows)
	h := fnv.New64a()
	for _, r := range rows {
		h.Write([]byte(r))
		h.Write([]byte{';'})
	}
	return h.Sum64()
}

// Golden regression: mining a fixed generated corpus must produce a fixed
// pattern count and checksum, whatever the parallelism. Guards against
// nondeterminism sneaking into any stage.
func TestGoldenSnapshot(t *testing.T) {
	db, err := lash.GenerateMarketDatabase(lash.MarketConfig{Users: 600, Products: 400, HierarchyLevels: 4, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	opt := lash.Options{MinSupport: 10, MaxGap: 1, MaxLength: 4}
	var first uint64
	var count int
	for trial, workers := range []int{1, 2, 4} {
		opt.Workers = workers
		res, err := lash.Mine(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		sum := patternChecksum(res.Patterns)
		if trial == 0 {
			first = sum
			count = len(res.Patterns)
			if count == 0 {
				t.Fatal("golden corpus mined nothing; fixture broken")
			}
		} else if sum != first {
			t.Fatalf("workers=%d changed the output (checksum %x vs %x)", workers, sum, first)
		}
	}
	// Algorithms must agree on it too.
	for _, alg := range []lash.Algorithm{lash.AlgorithmSemiNaive} {
		opt.Algorithm = alg
		res, err := lash.Mine(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		if patternChecksum(res.Patterns) != first {
			t.Fatalf("%s disagrees with LASH on the golden corpus", alg)
		}
	}
}

// The database is a multiset: duplicated input sequences count once each.
func TestMultisetSemantics(t *testing.T) {
	b := lash.NewDatabaseBuilder()
	b.AddParent("x1", "X")
	for i := 0; i < 5; i++ {
		b.AddSequence("x1", "y")
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lash.Mine(db, lash.Options{MinSupport: 5, MaxGap: 0, MaxLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"x1 y": 5, "X y": 5}
	if len(res.Patterns) != len(want) {
		t.Fatalf("patterns = %v", res.Patterns)
	}
	for _, p := range res.Patterns {
		if want[strings.Join(p.Items, " ")] != p.Support {
			t.Errorf("%v: support %d", p.Items, p.Support)
		}
	}
}

// Mining twice must not mutate the database (immutability contract).
func TestDatabaseImmutable(t *testing.T) {
	db := paperDB(t)
	before := strings.Join(db.Sequence(0), " ")
	for i := 0; i < 2; i++ {
		if _, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if after := strings.Join(db.Sequence(0), " "); after != before {
		t.Fatalf("database mutated: %q → %q", before, after)
	}
}

// Degenerate databases behave gracefully through the whole pipeline.
func TestDegenerateDatabases(t *testing.T) {
	empty, err := lash.NewDatabaseBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lash.Mine(empty, lash.Options{MinSupport: 1, MaxGap: 0, MaxLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 || len(res.FrequentItems) != 0 {
		t.Fatalf("empty database mined %v", res.Patterns)
	}

	single := lash.NewDatabaseBuilder()
	single.AddSequence("a")
	sdb, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err = lash.Mine(sdb, lash.Options{MinSupport: 1, MaxGap: 0, MaxLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Fatalf("single-item database mined %v", res.Patterns)
	}
	if len(res.FrequentItems) != 1 {
		t.Fatalf("frequent items = %v", res.FrequentItems)
	}
}

// σ larger than the database size yields nothing but still succeeds.
func TestSupportAboveDatabaseSize(t *testing.T) {
	db := paperDB(t)
	res, err := lash.Mine(db, lash.Options{MinSupport: 100, MaxGap: 1, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 || len(res.FrequentItems) != 0 {
		t.Fatalf("patterns at impossible σ: %v", res.Patterns)
	}
}

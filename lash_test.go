package lash_test

import (
	"strings"
	"testing"

	"lash"
)

// paperDB assembles the running example of the paper through the public API.
func paperDB(t testing.TB) *lash.Database {
	t.Helper()
	b := lash.NewDatabaseBuilder()
	for _, e := range [][2]string{
		{"b1", "B"}, {"b2", "B"}, {"b3", "B"},
		{"b11", "b1"}, {"b12", "b1"}, {"b13", "b1"},
		{"d1", "D"}, {"d2", "D"},
	} {
		b.AddParent(e[0], e[1])
	}
	for _, row := range []string{
		"a b1 a b1",
		"a b3 c c b2",
		"a c",
		"b11 a e a",
		"a b12 d1 c",
		"b13 f d2",
	} {
		b.AddSequence(strings.Fields(row)...)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var paperWant = map[string]int64{
	"a a": 2, "a b1": 2, "b1 a": 2, "a B": 3, "B a": 2,
	"a B c": 2, "B c": 2, "a c": 2, "b1 D": 2, "B D": 2,
}

func checkPaperResult(t *testing.T, res *lash.Result, label string) {
	t.Helper()
	if len(res.Patterns) != len(paperWant) {
		var got []string
		for _, p := range res.Patterns {
			got = append(got, strings.Join(p.Items, " "))
		}
		t.Fatalf("%s: %d patterns %v, want %d", label, len(res.Patterns), got, len(paperWant))
	}
	for _, p := range res.Patterns {
		name := strings.Join(p.Items, " ")
		if paperWant[name] != p.Support {
			t.Errorf("%s: %q support %d, want %d", label, name, p.Support, paperWant[name])
		}
	}
}

func TestMinePaperExample(t *testing.T) {
	db := paperDB(t)
	opt := lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3}
	for _, alg := range []lash.Algorithm{lash.AlgorithmLASH, lash.AlgorithmNaive, lash.AlgorithmSemiNaive} {
		opt.Algorithm = alg
		res, err := lash.Mine(db, opt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkPaperResult(t, res, alg.String())
	}
}

func TestMineLocalMiners(t *testing.T) {
	db := paperDB(t)
	for _, m := range []lash.LocalMiner{lash.MinerPSM, lash.MinerPSMNoIndex, lash.MinerBFS, lash.MinerDFS} {
		res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, LocalMiner: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		checkPaperResult(t, res, m.String())
		if res.Explored <= 0 || res.NumPartitions != 5 {
			t.Errorf("%s: explored=%d partitions=%d", m, res.Explored, res.NumPartitions)
		}
	}
}

func TestFrequentItemsViaAPI(t *testing.T) {
	db := paperDB(t)
	res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a": 5, "B": 5, "b1": 4, "c": 3, "D": 2}
	if len(res.FrequentItems) != len(want) {
		t.Fatalf("frequent items = %v", res.FrequentItems)
	}
	for _, p := range res.FrequentItems {
		if want[p.Items[0]] != p.Support {
			t.Errorf("%s: %d, want %d", p.Items[0], p.Support, want[p.Items[0]])
		}
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := paperDB(t)
	if db.NumSequences() != 6 {
		t.Errorf("NumSequences = %d", db.NumSequences())
	}
	if db.HierarchyDepth() != 3 {
		t.Errorf("HierarchyDepth = %d", db.HierarchyDepth())
	}
	if got := strings.Join(db.Sequence(2), " "); got != "a c" {
		t.Errorf("Sequence(2) = %q", got)
	}
	if db.NumItems() != 14 {
		t.Errorf("NumItems = %d", db.NumItems())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := lash.NewDatabaseBuilder()
	b.AddParent("x", "p1")
	b.AddParent("x", "p2")
	if _, err := b.Build(); err == nil {
		t.Error("re-parenting not rejected")
	}
	b2 := lash.NewDatabaseBuilder()
	b2.AddParent("x", "y")
	b2.AddParent("y", "x")
	if _, err := b2.Build(); err == nil {
		t.Error("cycle not rejected")
	}
}

func TestReaders(t *testing.T) {
	b := lash.NewDatabaseBuilder()
	if err := b.ReadHierarchy(strings.NewReader("# comment\nb1\tB\nd1 D\n\n")); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadSequences(strings.NewReader("a b1 a\n# skip\n\nd1 a\n")); err != nil {
		t.Fatal(err)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("NumSequences = %d", db.NumSequences())
	}
	res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 0, MaxLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FrequentItems) == 0 {
		t.Fatal("nothing frequent")
	}
	bad := lash.NewDatabaseBuilder()
	if err := bad.ReadHierarchy(strings.NewReader("one-field\n")); err == nil {
		t.Error("malformed hierarchy line accepted")
	}
}

func TestOptionErrors(t *testing.T) {
	db := paperDB(t)
	if _, err := lash.Mine(nil, lash.Options{MinSupport: 1, MaxLength: 2}); err == nil {
		t.Error("nil database accepted")
	}
	if _, err := lash.Mine(db, lash.Options{MinSupport: 0, MaxLength: 3}); err == nil {
		t.Error("MinSupport 0 accepted")
	}
	if _, err := lash.Mine(db, lash.Options{MinSupport: 1, MaxLength: 1}); err == nil {
		t.Error("MaxLength 1 accepted")
	}
	if _, err := lash.Mine(db, lash.Options{MinSupport: 1, MaxGap: -1, MaxLength: 2}); err == nil {
		t.Error("negative MaxGap accepted")
	}
	if _, err := lash.Mine(db, lash.Options{MinSupport: 1, MaxLength: 2, Algorithm: lash.Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAbortedBaseline(t *testing.T) {
	db := paperDB(t)
	_, err := lash.Mine(db, lash.Options{
		MinSupport: 2, MaxGap: 1, MaxLength: 3,
		Algorithm: lash.AlgorithmNaive, MaxIntermediate: 3,
	})
	if err != lash.ErrAborted {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestFlatAlgorithms(t *testing.T) {
	db := paperDB(t)
	for _, alg := range []lash.Algorithm{lash.AlgorithmMGFSM, lash.AlgorithmLASHFlat} {
		res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Flat mining: only "a a" and "a c" are frequent (no hierarchy).
		if len(res.Patterns) != 2 {
			t.Fatalf("%s: %d patterns, want 2", alg, len(res.Patterns))
		}
		for _, p := range res.Patterns {
			s := strings.Join(p.Items, " ")
			if s != "a a" && s != "a c" {
				t.Errorf("%s: unexpected flat pattern %q", alg, s)
			}
		}
	}
}

func TestGenerateTextDatabase(t *testing.T) {
	for _, h := range []string{"L", "P", "LP", "CLP", ""} {
		db, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: 80, Lemmas: 50, Hierarchy: h, Seed: 1})
		if err != nil {
			t.Fatalf("%q: %v", h, err)
		}
		if db.NumSequences() != 80 {
			t.Fatalf("%q: %d sequences", h, db.NumSequences())
		}
		res, err := lash.Mine(db, lash.Options{MinSupport: 5, MaxGap: 0, MaxLength: 3})
		if err != nil {
			t.Fatalf("%q: %v", h, err)
		}
		if len(res.FrequentItems) == 0 {
			t.Fatalf("%q: no frequent items", h)
		}
	}
	if _, err := lash.GenerateTextDatabase(lash.TextConfig{Hierarchy: "XX"}); err == nil {
		t.Error("bad hierarchy accepted")
	}
}

func TestGenerateMarketDatabase(t *testing.T) {
	db, err := lash.GenerateMarketDatabase(lash.MarketConfig{Users: 120, Products: 200, HierarchyLevels: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 120 {
		t.Fatalf("%d sequences", db.NumSequences())
	}
	if db.HierarchyDepth() > 4 || db.HierarchyDepth() < 2 {
		t.Fatalf("depth = %d", db.HierarchyDepth())
	}
	if _, err := lash.GenerateMarketDatabase(lash.MarketConfig{HierarchyLevels: 1}); err == nil {
		t.Error("levels=1 accepted")
	}
}

// Closed/maximal restrictions (§6.7): maximal ⊆ closed ⊆ all, and every
// excluded pattern has a witness supersequence in the full output.
func TestRestrictions(t *testing.T) {
	db := paperDB(t)
	base := lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3}
	all, err := lash.Mine(db, base)
	if err != nil {
		t.Fatal(err)
	}
	closedOpt := base
	closedOpt.Restriction = lash.RestrictClosed
	closed, err := lash.Mine(db, closedOpt)
	if err != nil {
		t.Fatal(err)
	}
	maxOpt := base
	maxOpt.Restriction = lash.RestrictMaximal
	maximal, err := lash.Mine(db, maxOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(maximal.Patterns) <= len(closed.Patterns) && len(closed.Patterns) <= len(all.Patterns)) {
		t.Fatalf("sizes: maximal %d, closed %d, all %d",
			len(maximal.Patterns), len(closed.Patterns), len(all.Patterns))
	}
	if len(maximal.Patterns) == 0 {
		t.Fatal("no maximal patterns")
	}
	inAll := map[string]int64{}
	for _, p := range all.Patterns {
		inAll[strings.Join(p.Items, " ")] = p.Support
	}
	for _, p := range closed.Patterns {
		if _, ok := inAll[strings.Join(p.Items, " ")]; !ok {
			t.Fatalf("closed pattern %v not in full output", p.Items)
		}
	}
	// Specific witnesses on the running example: "a B" (3) is closed (no
	// equal-support superseq); "B c" (2) is NOT closed — "a B c" has the
	// same support; "a B c" is maximal.
	closedSet := map[string]bool{}
	for _, p := range closed.Patterns {
		closedSet[strings.Join(p.Items, " ")] = true
	}
	if !closedSet["a B"] {
		t.Error("a B should be closed")
	}
	if closedSet["B c"] {
		t.Error("B c should not be closed (a B c has equal support)")
	}
	maxSet := map[string]bool{}
	for _, p := range maximal.Patterns {
		maxSet[strings.Join(p.Items, " ")] = true
	}
	if !maxSet["a B c"] {
		t.Error("a B c should be maximal")
	}
	if maxSet["a B"] {
		t.Error("a B should not be maximal (a B c is frequent)")
	}
	if _, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3, Restriction: lash.Restriction(9)}); err == nil {
		t.Error("unknown restriction accepted")
	}
}

// Determinism: two identical runs give identical pattern lists.
func TestMineDeterminism(t *testing.T) {
	db, err := lash.GenerateMarketDatabase(lash.MarketConfig{Users: 150, Products: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := lash.Options{MinSupport: 3, MaxGap: 1, MaxLength: 4}
	a, err := lash.Mine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := lash.Mine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(bRes.Patterns) {
		t.Fatal("nondeterministic pattern count")
	}
	for i := range a.Patterns {
		if strings.Join(a.Patterns[i].Items, " ") != strings.Join(bRes.Patterns[i].Items, " ") ||
			a.Patterns[i].Support != bRes.Patterns[i].Support {
			t.Fatal("nondeterministic pattern order or supports")
		}
	}
}

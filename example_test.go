package lash_test

import (
	"fmt"
	"strings"

	"lash"
)

// The running example of the LASH paper (Fig. 1): six sequences over a
// two-level product hierarchy, mined with σ=2, γ=1, λ=3.
func ExampleMine() {
	b := lash.NewDatabaseBuilder()
	for _, edge := range [][2]string{
		{"b1", "B"}, {"b2", "B"}, {"b3", "B"},
		{"b11", "b1"}, {"b12", "b1"}, {"b13", "b1"},
		{"d1", "D"}, {"d2", "D"},
	} {
		b.AddParent(edge[0], edge[1])
	}
	for _, seq := range []string{
		"a b1 a b1", "a b3 c c b2", "a c", "b11 a e a", "a b12 d1 c", "b13 f d2",
	} {
		b.AddSequence(strings.Fields(seq)...)
	}
	db, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Patterns), "patterns")
	for _, p := range res.Patterns {
		if len(p.Items) == 3 {
			fmt.Println(strings.Join(p.Items, " "), p.Support)
		}
	}
	// Output:
	// 10 patterns
	// a B c 2
}

// Maximal patterns only: the most specific frequent behaviour, with all
// redundant sub- and super-level patterns removed (§6.7).
func ExampleMine_maximal() {
	b := lash.NewDatabaseBuilder()
	b.AddParent("eos70d", "camera")
	b.AddParent("d750", "camera")
	b.AddSequence("eos70d", "bag")
	b.AddSequence("d750", "bag")
	b.AddSequence("eos70d", "bag")
	db, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := lash.Mine(db, lash.Options{
		MinSupport:  3,
		MaxGap:      0,
		MaxLength:   2,
		Restriction: lash.RestrictMaximal,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Patterns {
		fmt.Println(strings.Join(p.Items, " "), p.Support)
	}
	// Output:
	// camera bag 3
}

// SessionBuilder turns timestamped events into per-user sequences (§6.1).
func ExampleSessionBuilder() {
	s := lash.NewSessionBuilder()
	s.Add("alice", 300, "flash")
	s.Add("alice", 100, "camera")
	s.Add("alice", 200, "photo-book")
	b := lash.NewDatabaseBuilder()
	s.AppendTo(b)
	db, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Join(db.Sequence(0), " → "))
	// Output:
	// camera → photo-book → flash
}

// A Miner caches item frequencies across parameter sweeps (§3.4).
func ExampleMiner() {
	db, err := lash.GenerateMarketDatabase(lash.MarketConfig{Users: 500, Products: 300, Seed: 1})
	if err != nil {
		panic(err)
	}
	m, err := lash.NewMiner(db)
	if err != nil {
		panic(err)
	}
	for _, sigma := range []int64{20, 10, 5} {
		res, err := m.Mine(lash.Options{MinSupport: sigma, MaxGap: 1, MaxLength: 3})
		if err != nil {
			panic(err)
		}
		fmt.Printf("σ=%d: %d patterns\n", sigma, len(res.Patterns))
	}
	fmt.Println("frequency jobs run:", m.FrequencyJobsRun())
	// Output:
	// σ=20: 185 patterns
	// σ=10: 979 patterns
	// σ=5: 3681 patterns
	// frequency jobs run: 1
}

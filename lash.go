// Package lash is a library for large-scale generalized sequence mining
// with hierarchies, reproducing the LASH algorithm of Beedkar & Gemulla
// (SIGMOD 2015).
//
// LASH mines frequent generalized sequences from a collection of input
// sequences whose items are arranged in a hierarchy (a forest): pattern
// items may sit at any hierarchy level, so a pattern like "PERSON lives in
// CITY" is found even when it never occurs literally. Mining is performed on
// an in-process MapReduce substrate using hierarchy-aware item-based
// partitioning and the pivot sequence miner (PSM).
//
// Quick start:
//
//	b := lash.NewDatabaseBuilder()
//	b.AddParent("b1", "B")      // item b1 generalizes to B
//	b.AddSequence("a", "b1", "a", "b1")
//	b.AddSequence("a", "b3", "c", "c", "b2")
//	db, err := b.Build()
//	// handle err
//	res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
//	// handle err
//	for _, p := range res.Patterns {
//		fmt.Println(strings.Join(p.Items, " "), p.Support)
//	}
//
// # Cancellation, streaming, and progress
//
// Long runs are controlled through contexts: MineContext (and
// Miner.MineContext) is Mine with a context.Context — cancel it and the
// run aborts cooperatively, returning an error that matches ctx.Err()
// under errors.Is. Stream (and Miner.Stream) delivers patterns
// incrementally through a callback as each partition's local mining
// completes, instead of materializing the whole result; and
// Options.Progress receives live phase/partition/shuffle updates while a
// run is in flight. Mine is a thin context.Background() wrapper around
// MineContext, so existing callers are unaffected.
package lash

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lash/internal/baseline"
	"lash/internal/core"
	"lash/internal/faults"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/obs"
	"lash/internal/pindex"
	"lash/internal/stats"
)

// Algorithm selects the distributed mining algorithm.
type Algorithm int

const (
	// AlgorithmLASH is hierarchy-aware item-based partitioning with local
	// mining (the paper's contribution; default).
	AlgorithmLASH Algorithm = iota
	// AlgorithmNaive counts every generalized subsequence directly (§3.2).
	AlgorithmNaive
	// AlgorithmSemiNaive prunes infrequent items via the generalized f-list
	// before counting (§3.3).
	AlgorithmSemiNaive
	// AlgorithmMGFSM ignores the hierarchy and runs item-based partitioning
	// with a BFS local miner — the MG-FSM baseline of §6.3.
	AlgorithmMGFSM
	// AlgorithmLASHFlat ignores the hierarchy but keeps PSM as the local
	// miner ("LASH without hierarchies", footnote 3 of the paper).
	AlgorithmLASHFlat
)

// String returns the algorithm's name.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmLASH:
		return "LASH"
	case AlgorithmNaive:
		return "Naive"
	case AlgorithmSemiNaive:
		return "SemiNaive"
	case AlgorithmMGFSM:
		return "MG-FSM"
	case AlgorithmLASHFlat:
		return "LASH(flat)"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// LocalMiner selects the per-partition sequential miner used by
// AlgorithmLASH and AlgorithmLASHFlat.
type LocalMiner int

const (
	// MinerPSM is the pivot sequence miner with the right-expansion index
	// (default).
	MinerPSM LocalMiner = iota
	// MinerPSMNoIndex disables the right-expansion index.
	MinerPSMNoIndex
	// MinerBFS is the hierarchy-aware SPADE adaptation.
	MinerBFS
	// MinerDFS is the hierarchy-aware PrefixSpan adaptation.
	MinerDFS
)

func (m LocalMiner) kind() miner.Kind {
	switch m {
	case MinerPSMNoIndex:
		return miner.KindPSMNoIndex
	case MinerBFS:
		return miner.KindBFS
	case MinerDFS:
		return miner.KindDFS
	default:
		return miner.KindPSM
	}
}

// String returns the miner's user-facing name, as accepted by
// ParseLocalMiner — every valid value round-trips through it. (The paper's
// figure labels, "PSM+Index" etc., live on internal/miner.Kind.)
func (m LocalMiner) String() string {
	switch m {
	case MinerPSM:
		return "psm"
	case MinerPSMNoIndex:
		return "psm-noindex"
	case MinerBFS:
		return "bfs"
	case MinerDFS:
		return "dfs"
	}
	return fmt.Sprintf("LocalMiner(%d)", int(m))
}

// Options configures Mine.
type Options struct {
	// MinSupport is the minimum number of input sequences a pattern must
	// (generalizedly) occur in. Must be ≥ 1.
	MinSupport int64
	// MaxGap is the maximum number of items allowed between consecutive
	// pattern items (γ ≥ 0; 0 = contiguous, i.e. n-gram mining).
	MaxGap int
	// MaxLength bounds the pattern length (λ ≥ 2).
	MaxLength int
	// Algorithm selects the distributed algorithm (default AlgorithmLASH).
	Algorithm Algorithm
	// LocalMiner selects the per-partition miner (default MinerPSM).
	LocalMiner LocalMiner
	// Workers bounds real parallelism (default: all CPUs).
	Workers int
	// MaxIntermediate caps the records the naïve/semi-naïve baselines may
	// emit before aborting with ErrAborted (0 = unlimited).
	MaxIntermediate int64
	// MemoryBudget, when positive, bounds the bytes the mining shuffle may
	// hold in in-memory aggregation tables: past the budget, sorted runs
	// spill to temp files and partitions are k-way merged back off disk
	// before mining, so corpora whose shuffle exceeds RAM still mine — with
	// byte-identical results (0 = unlimited, never touch disk). Spill
	// volume is reported in Result.Stats. The budget is a cap on shuffle
	// table memory, not total process memory: each partition being mined
	// must still fit (the paper's partition-at-a-time contract).
	MemoryBudget int64
	// Restriction optionally thins the output to closed or maximal patterns
	// (computed relative to the mined output, i.e. supersequences up to
	// MaxLength). See §6.7 of the paper. Restrictions need the full pattern
	// set, so ValidateStream rejects them for streaming runs.
	Restriction Restriction
	// Progress, when non-nil, receives live progress events while the run
	// is in flight: one event per retired map task, per mined partition,
	// and a "done" event per MapReduce job (see ProgressEvent). Calls are
	// serialized; the hook must return quickly, as it runs on the mining
	// workers' time. Progress does not affect the mined output and is
	// ignored by CacheKey.
	Progress func(ProgressEvent)
	// Trace, when non-nil, collects the run's span tree — jobs, phases,
	// tasks, and per-partition mining intervals — into the given Trace for
	// later rendering with Trace.WriteJSON (the `lash -trace-out` flag).
	// Tracing does not affect the mined output and is ignored by CacheKey.
	Trace *Trace
	// Metrics, when non-nil, records the run's pipeline metrics (phase
	// duration histograms, shuffle/spill counters, miner work counters)
	// into the given process-wide handle bundle. The field's type lives in
	// an internal package: it is settable only from inside this module
	// (lashd's /metrics endpoint uses it); external callers leave it nil.
	// Metrics do not affect the mined output and are ignored by CacheKey.
	Metrics *obs.PipelineMetrics
	// Deadline, when positive, bounds the run's wall time: a run still in
	// flight after the deadline is cancelled cooperatively and fails with
	// an error matching ErrDeadlineExceeded (and context.DeadlineExceeded)
	// under errors.Is. Zero means no deadline. Deadlines bound resources,
	// not output: they do not affect the mined output of runs that finish
	// in time, and are ignored by CacheKey.
	Deadline time.Duration
	// MaxAttempts, when > 1, re-executes MapReduce tasks that fail
	// transiently (I/O errors on the spill path, injected faults) up to
	// this many total attempts each, with capped exponential backoff.
	// Retried runs produce byte-identical output to fault-free runs.
	// 0 (or 1) disables retries. Ignored by CacheKey.
	MaxAttempts int
	// Faults, when non-nil, arms the pipeline's fault-injection points for
	// chaos testing (see internal/faults). The field's type lives in an
	// internal package: it is settable only from inside this module;
	// external callers leave it nil. Ignored by CacheKey.
	Faults *faults.Registry
	// Capture, when set, records the run's reusable residue — the f-list
	// counts and each partition's input fingerprint, statistics, and
	// pattern set — in Result.State, so a later run over an appended corpus
	// version can resume from it (see Resume). Supported by the LASH
	// variants (AlgorithmLASH, AlgorithmLASHFlat, AlgorithmMGFSM); the
	// baselines have no partitions to capture and ignore it. Capture does
	// not affect the mined output and is ignored by CacheKey; streaming
	// runs reject it (ValidateStream).
	Capture bool
	// Resume, when non-nil, seeds a delta re-mine: the run recomputes item
	// frequencies incrementally from the sequences appended since the state
	// was captured, re-shuffles only sequences contributing to dirty
	// pivots, re-mines only dirty partitions, and splices every provably
	// unchanged partition's pattern set from the state. The output is
	// byte-identical to a from-scratch mine (Result.Stats reports the
	// dirty/reused split). The state must come from a Capture run on an
	// earlier version of the same database lineage with equal canonical
	// options (see MineState.ValidFor); baselines ignore Resume and mine
	// from scratch. Ignored by CacheKey; rejected for streaming runs.
	Resume *MineState
}

// MineState is the opaque, reusable residue of a Capture mining run: the
// corpus version it covered, plus the internal f-list counts and
// per-partition results a Resume run splices from. States are immutable and
// safe to share across goroutines; they are only meaningful for databases
// descended (by Append) from the snapshot they were captured on.
type MineState struct {
	ident   *corpusID
	version int
	numSeqs int
	key     string
	delta   *core.DeltaState
}

// CorpusVersion returns the Database.Version the state was captured at.
func (s *MineState) CorpusVersion() int {
	if s == nil {
		return 0
	}
	return s.version
}

// NumSequences returns the number of input sequences the state covers.
func (s *MineState) NumSequences() int {
	if s == nil {
		return 0
	}
	return s.numSeqs
}

// ValidFor reports whether the state can seed a delta re-mine of db under
// opt: db must descend from the snapshot the state was captured on (so the
// state's corpus is a prefix of db's sequences — checked by identity token,
// which holds across append forks for states captured at or before the fork
// point), with equal canonical options.
func (s *MineState) ValidFor(db *Database, opt Options) bool {
	return s != nil && s.delta != nil && s.ident != nil &&
		db.identAt(s.version) == s.ident &&
		s.numSeqs <= db.NumSequences() &&
		s.key == opt.CacheKey()
}

// ProgressEvent is one live progress update of a mining run.
//
// A run executes one or two MapReduce jobs (a preprocessing "flist" job for
// LASH variants and semi-naïve, then the main mining job); Job names which
// one the event describes. On the mining job of the LASH variants the
// phases overlap: partitions are mined (Phase "reduce") while map tasks are
// still retiring.
type ProgressEvent struct {
	// Job is the MapReduce job name: "flist", "partition+mine", "naive",
	// or "semi-naive".
	Job string
	// Phase is "map", "shuffle", "reduce", or "done" (the job finished,
	// successfully or not).
	Phase string
	// MapTasksDone / MapTasks count retired input splits.
	MapTasksDone int
	MapTasks     int
	// PartitionsMined / Partitions count completed reduce partitions. For
	// the LASH variants a partition completes when its local mining ends.
	PartitionsMined int
	Partitions      int
	// ShuffleRecords / ShuffleBytes are the aggregated records and encoded
	// bytes shuffled so far (Hadoop's MAP_OUTPUT_BYTES).
	ShuffleRecords int64
	ShuffleBytes   int64
	// SpillRuns / SpillBytes are the sorted runs and physical bytes the
	// shuffle has spilled to temp files so far. Zero unless
	// Options.MemoryBudget forced the run to disk.
	SpillRuns  int64
	SpillBytes int64
	// TaskRetries counts task re-executions after transient failures
	// (Options.MaxAttempts); FaultsInjected counts synthetic faults
	// injected so far. Both zero on healthy, un-instrumented runs.
	TaskRetries    int64
	FaultsInjected int64
}

// Restriction selects an output restriction.
type Restriction int

const (
	// RestrictNone returns all frequent generalized sequences (default).
	RestrictNone Restriction = iota
	// RestrictClosed keeps only patterns whose every supersequence —
	// extension or same-length specialization — has a lower support.
	RestrictClosed
	// RestrictMaximal keeps only patterns with no frequent supersequence.
	RestrictMaximal
)

// ErrAborted reports that a baseline run exceeded Options.MaxIntermediate.
var ErrAborted = baseline.ErrEmitCapExceeded

// ErrDeadlineExceeded reports that a run outlived Options.Deadline and was
// cancelled. Errors returned by deadline-exceeded runs match it (and
// context.DeadlineExceeded) under errors.Is.
var ErrDeadlineExceeded = errors.New("lash: run deadline exceeded")

// Pattern is one mined generalized sequence.
type Pattern struct {
	// Items are the pattern's item names, possibly from different hierarchy
	// levels.
	Items []string
	// Support is the number of input sequences the pattern occurs in,
	// directly or in specialized form.
	Support int64
}

// Result is the output of Mine.
type Result struct {
	// Patterns holds the frequent generalized sequences (2 ≤ length ≤
	// MaxLength) in canonical order: by length, then by item frequency
	// rank.
	Patterns []Pattern
	// FrequentItems are the frequent single items with their hierarchy-aware
	// document frequencies (the generalized f-list).
	FrequentItems []Pattern
	// NumPartitions is the number of partitions mined (LASH variants only).
	NumPartitions int
	// Explored counts candidate sequences whose support was computed by the
	// local miners (LASH variants only).
	Explored int64
	// Stats reports MapReduce phase measurements of the main mining job.
	Stats RunStats
	// State is the run's captured reusable residue (Options.Capture on a
	// LASH variant); nil otherwise. Pass it as Options.Resume to delta-mine
	// a later version of the same database lineage.
	State *MineState

	// forest is the hierarchy the patterns were named under, stashed by
	// mine() so Index() can attach level and roll-up tables. nil for
	// hand-assembled Results — Index() then builds a flat index.
	forest *hierarchy.Forest
	// index memoizes Index(): the serving index is immutable and every
	// caller can share one copy.
	indexOnce sync.Once
	index     *pindex.Index
}

// Index returns the serving index over the result's patterns: an immutable
// pattern index supporting top-k, min-support, contains-item, prefix,
// hierarchy-level and roll-up queries without scanning (see
// lash/internal/pindex for the layout contract). The index is built on
// first call and memoized — concurrent callers share one copy — so results
// can be served at query rates far above mining rates. The receiver must
// not be copied by value once Index has been called.
//
// The returned type lives in an internal package: external callers can use
// every method on it but cannot construct one except through this accessor.
func (r *Result) Index() *pindex.Index {
	r.indexOnce.Do(func() {
		pats := make([]pindex.Pattern, len(r.Patterns))
		for i, p := range r.Patterns {
			pats[i] = pindex.Pattern{Items: p.Items, Support: p.Support}
		}
		r.index = pindex.Build(pats, r.forest)
	})
	return r.index
}

// RunStats summarizes the MapReduce work of a run.
type RunStats struct {
	// MapOutputBytes is the encoded volume shuffled between the map and
	// reduce phases (Hadoop's MAP_OUTPUT_BYTES).
	MapOutputBytes int64
	// MapOutputRecords counts shuffled records (after combining).
	MapOutputRecords int64
	// SpillRuns and SpillBytes report the sorted runs and physical bytes
	// the shuffle spilled to temp files. Zero unless Options.MemoryBudget
	// forced the run to disk.
	SpillRuns  int64
	SpillBytes int64
	// TaskRetries counts task re-executions after transient failures
	// (Options.MaxAttempts); FaultsInjected counts synthetic faults the
	// run injected (Options.Faults). Unlike the fields above, both sum
	// over all of the run's jobs, preprocessing included. Zero on healthy,
	// un-instrumented runs.
	TaskRetries    int64
	FaultsInjected int64
	// DeltaPartitionsDirty and DeltaPartitionsReused report, for delta runs
	// (Options.Resume), how many partitions were re-mined vs. spliced from
	// the resumed state. Both zero for from-scratch runs.
	DeltaPartitionsDirty  int64
	DeltaPartitionsReused int64
}

// Mine runs the selected algorithm over the database. It is
// MineContext(context.Background(), db, opt).
func Mine(db *Database, opt Options) (*Result, error) {
	return mine(context.Background(), db, opt, nil, nil)
}

// MineContext runs the selected algorithm over the database under a
// context. Cancelling ctx aborts the run cooperatively — between MapReduce
// tasks and at emit points inside them — and returns promptly with an error
// matching ctx.Err() (and the cancellation cause, if one was set) under
// errors.Is. A context that is already done returns before any job runs.
func MineContext(ctx context.Context, db *Database, opt Options) (*Result, error) {
	return mine(ctx, db, opt, nil, nil)
}

// Stream mines like MineContext but delivers patterns incrementally: emit
// is called once per frequent pattern as each partition's local mining
// completes, instead of the full pattern set being materialized in the
// Result. The returned Result carries FrequentItems, Stats, and the
// partition/exploration counters, but an empty Patterns slice.
//
// Deliveries are serialized (emit is never called concurrently) but arrive
// in partition-completion order, which is nondeterministic; collect and
// sort if a total order is needed. An error returned by emit cancels the
// run promptly, and Stream returns that error. Options that require the
// full output to post-process (RestrictClosed, RestrictMaximal) are
// rejected by ValidateStream, which Stream applies.
func Stream(ctx context.Context, db *Database, opt Options, emit func(Pattern) error) (*Result, error) {
	return mine(ctx, db, opt, nil, emit)
}

// streamState carries the per-run plumbing of a streaming mine: the
// cancel-on-emit-error context and the first emit error, which wins over
// the substrate's cancellation error on the way out.
type streamState struct {
	mu  sync.Mutex
	err error
}

// mine implements Mine, MineContext, and Stream; freqs optionally
// short-circuits the preprocessing job for the LASH variants (see Miner),
// and a non-nil emit selects the streaming path.
func mine(ctx context.Context, db *Database, opt Options, freqs []int64, emit func(Pattern) error) (*Result, error) {
	if db == nil || db.db == nil {
		return nil, fmt.Errorf("lash: nil database (use NewDatabaseBuilder().Build())")
	}
	streaming := emit != nil
	if streaming {
		if err := opt.ValidateStream(); err != nil {
			return nil, err
		}
	} else if err := opt.Validate(); err != nil {
		return nil, err
	}
	// Capture/Resume only apply to the partitioned LASH variants; the
	// baselines have no per-partition structure to reuse and silently mine
	// from scratch. An invalid Resume state is an error rather than a
	// silent cold mine, so a differential harness cannot accidentally
	// "pass" without exercising the delta path.
	capture, resume := opt.Capture, opt.Resume
	switch opt.Algorithm {
	case AlgorithmLASH, AlgorithmLASHFlat, AlgorithmMGFSM:
		if resume != nil && !resume.ValidFor(db, opt) {
			return nil, fmt.Errorf("lash: Resume state is not valid for this database and options (want a Capture state from a snapshot this database descends from, with equal canonical options)")
		}
	default:
		capture, resume = false, nil
	}
	var prevDelta *core.DeltaState
	if resume != nil {
		prevDelta = resume.delta
	}

	params := gsm.Params{Sigma: opt.MinSupport, Gamma: opt.MaxGap, Lambda: opt.MaxLength}
	mr := mapreduce.Config{
		Workers:      opt.Workers,
		MemoryBudget: opt.MemoryBudget,
		Retry:        mapreduce.RetryPolicy{MaxAttempts: opt.MaxAttempts},
		Faults:       opt.Faults,
	}
	if opt.Deadline > 0 {
		// The deadline rides the run's context so every cooperative
		// cancellation point honors it; the cause marks the failure as a
		// deadline (not a caller cancellation) for errors.Is.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opt.Deadline,
			fmt.Errorf("%w after %v", ErrDeadlineExceeded, opt.Deadline))
		defer cancel()
	}
	if opt.Progress != nil {
		mr.Progress = progressAdapter(opt.Progress)
	}
	if opt.Trace != nil || opt.Metrics != nil {
		runObs := &obs.Run{Tracer: opt.Trace.handle(), Metrics: opt.Metrics}
		if tr := runObs.Tracer; tr != nil {
			// One root span for the whole run; every job parents to it, so
			// the emitted tree has a single top-level mining node whose
			// children's phase durations sum to the jobs' wall times.
			runObs.Root = tr.NextID()
			begin := time.Now()
			defer func() {
				tr.Record(obs.SpanRecord{ID: runObs.Root, Name: "mine", Partition: -1,
					Start: begin, Duration: time.Since(begin)})
			}()
		}
		mr.Obs = runObs
	}

	// The streaming path wraps emit: translate to item names, record the
	// first emit error, and cancel the run's context with it so the other
	// partitions abort instead of mining into the void.
	var (
		st         *streamState
		coreStream func(items gsm.Sequence, support int64) error
	)
	f := db.db.Forest
	if streaming {
		var cancel context.CancelCauseFunc
		ctx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		st = &streamState{}
		coreStream = func(items gsm.Sequence, support int64) error {
			names := make([]string, len(items))
			for i, w := range items {
				names[i] = f.Name(w)
			}
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.err != nil {
				return st.err
			}
			if err := emit(Pattern{Items: names, Support: support}); err != nil {
				st.err = err
				cancel(err)
				return err
			}
			return nil
		}
	}

	var (
		res *core.Result
		err error
	)
	switch opt.Algorithm {
	case AlgorithmLASH:
		res, err = core.Mine(ctx, db.db, core.Options{Params: params, Miner: opt.LocalMiner.kind(), MR: mr, Freqs: freqs, Stream: coreStream, Capture: capture, Prev: prevDelta})
	case AlgorithmLASHFlat:
		res, err = core.Mine(ctx, db.db, core.Options{Params: params, Miner: opt.LocalMiner.kind(), Flat: true, MR: mr, Freqs: freqs, Stream: coreStream, Capture: capture, Prev: prevDelta})
	case AlgorithmMGFSM:
		res, err = core.Mine(ctx, db.db, core.Options{Params: params, Miner: miner.KindBFS, Flat: true, MR: mr, Freqs: freqs, Stream: coreStream, Capture: capture, Prev: prevDelta})
	case AlgorithmNaive:
		res, err = baseline.MineNaive(ctx, db.db, baseline.Options{Params: params, MR: mr, MaxEmit: opt.MaxIntermediate, Stream: coreStream})
	case AlgorithmSemiNaive:
		res, err = baseline.MineSemiNaive(ctx, db.db, baseline.Options{Params: params, MR: mr, MaxEmit: opt.MaxIntermediate, Stream: coreStream})
	default:
		return nil, fmt.Errorf("lash: unknown algorithm %d", int(opt.Algorithm))
	}
	if err != nil {
		// The emit error caused the cancellation; report it, not the
		// substrate's wrapping of it.
		if st != nil {
			st.mu.Lock()
			emitErr := st.err
			st.mu.Unlock()
			if emitErr != nil {
				return nil, emitErr
			}
		}
		return nil, err
	}

	switch opt.Restriction {
	case RestrictNone:
	case RestrictClosed:
		res.Patterns = stats.FilterClosed(restrictionForest(db, res), res.Patterns)
	case RestrictMaximal:
		res.Patterns = stats.FilterMaximal(restrictionForest(db, res), res.Patterns)
	default:
		return nil, fmt.Errorf("lash: unknown restriction %d", int(opt.Restriction))
	}

	out := &Result{NumPartitions: res.NumPartitions, Explored: res.Miner.Explored, forest: f}
	if res.Delta != nil {
		out.State = &MineState{
			ident:   db.identAt(db.Version()),
			version: db.Version(),
			numSeqs: db.NumSequences(),
			key:     opt.CacheKey(),
			delta:   res.Delta,
		}
	}
	out.Stats.DeltaPartitionsDirty = int64(res.DeltaDirty)
	out.Stats.DeltaPartitionsReused = int64(res.DeltaReused)
	for _, p := range res.Patterns {
		items := make([]string, len(p.Items))
		for i, w := range p.Items {
			items[i] = f.Name(w)
		}
		out.Patterns = append(out.Patterns, Pattern{Items: items, Support: p.Support})
	}
	for _, p := range res.FrequentItems {
		out.FrequentItems = append(out.FrequentItems, Pattern{
			Items:   []string{f.Name(p.Items[0])},
			Support: p.Support,
		})
	}
	if res.Jobs.Mine != nil {
		out.Stats.MapOutputBytes = res.Jobs.Mine.MapOutputBytes
		out.Stats.MapOutputRecords = res.Jobs.Mine.MapOutputRecords
		out.Stats.SpillRuns = res.Jobs.Mine.SpillRuns
		out.Stats.SpillBytes = res.Jobs.Mine.SpillBytes
		out.Stats.TaskRetries = res.Jobs.Mine.TaskRetries
		out.Stats.FaultsInjected = res.Jobs.Mine.FaultsInjected
	}
	if res.Jobs.FList != nil {
		// Preprocessing-job retries/faults count toward the run too (the
		// mining job's other counters keep their main-job-only meaning).
		out.Stats.TaskRetries += res.Jobs.FList.TaskRetries
		out.Stats.FaultsInjected += res.Jobs.FList.FaultsInjected
	}
	return out, nil
}

// progressAdapter bridges the substrate's concurrent progress snapshots to
// the user's hook, serializing calls so the hook need not be thread-safe.
func progressAdapter(fn func(ProgressEvent)) func(mapreduce.Progress) {
	var mu sync.Mutex
	return func(p mapreduce.Progress) {
		mu.Lock()
		defer mu.Unlock()
		fn(ProgressEvent{
			Job:             p.Job,
			Phase:           p.Phase,
			MapTasksDone:    p.MapTasksDone,
			MapTasks:        p.MapTasks,
			PartitionsMined: p.ReduceTasksDone,
			Partitions:      p.ReduceTasks,
			ShuffleRecords:  p.ShuffleRecords,
			ShuffleBytes:    p.ShuffleBytes,
			SpillRuns:       p.SpillRuns,
			SpillBytes:      p.SpillBytes,
			TaskRetries:     p.TaskRetries,
			FaultsInjected:  p.FaultsInjected,
		})
	}
}

// restrictionForest picks the hierarchy the restriction must be computed
// under: the one the algorithm actually mined with (flat algorithms use the
// flattened vocabulary).
func restrictionForest(db *Database, res *core.Result) *hierarchy.Forest {
	if res.FList != nil {
		return res.FList.Forest()
	}
	return db.db.Forest
}

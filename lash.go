// Package lash is a library for large-scale generalized sequence mining
// with hierarchies, reproducing the LASH algorithm of Beedkar & Gemulla
// (SIGMOD 2015).
//
// LASH mines frequent generalized sequences from a collection of input
// sequences whose items are arranged in a hierarchy (a forest): pattern
// items may sit at any hierarchy level, so a pattern like "PERSON lives in
// CITY" is found even when it never occurs literally. Mining is performed on
// an in-process MapReduce substrate using hierarchy-aware item-based
// partitioning and the pivot sequence miner (PSM).
//
// Quick start:
//
//	b := lash.NewDatabaseBuilder()
//	b.AddParent("b1", "B")      // item b1 generalizes to B
//	b.AddSequence("a", "b1", "a", "b1")
//	b.AddSequence("a", "b3", "c", "c", "b2")
//	db, err := b.Build()
//	// handle err
//	res, err := lash.Mine(db, lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3})
//	// handle err
//	for _, p := range res.Patterns {
//		fmt.Println(strings.Join(p.Items, " "), p.Support)
//	}
package lash

import (
	"fmt"

	"lash/internal/baseline"
	"lash/internal/core"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/stats"
)

// Algorithm selects the distributed mining algorithm.
type Algorithm int

const (
	// AlgorithmLASH is hierarchy-aware item-based partitioning with local
	// mining (the paper's contribution; default).
	AlgorithmLASH Algorithm = iota
	// AlgorithmNaive counts every generalized subsequence directly (§3.2).
	AlgorithmNaive
	// AlgorithmSemiNaive prunes infrequent items via the generalized f-list
	// before counting (§3.3).
	AlgorithmSemiNaive
	// AlgorithmMGFSM ignores the hierarchy and runs item-based partitioning
	// with a BFS local miner — the MG-FSM baseline of §6.3.
	AlgorithmMGFSM
	// AlgorithmLASHFlat ignores the hierarchy but keeps PSM as the local
	// miner ("LASH without hierarchies", footnote 3 of the paper).
	AlgorithmLASHFlat
)

// String returns the algorithm's name.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmLASH:
		return "LASH"
	case AlgorithmNaive:
		return "Naive"
	case AlgorithmSemiNaive:
		return "SemiNaive"
	case AlgorithmMGFSM:
		return "MG-FSM"
	case AlgorithmLASHFlat:
		return "LASH(flat)"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// LocalMiner selects the per-partition sequential miner used by
// AlgorithmLASH and AlgorithmLASHFlat.
type LocalMiner int

const (
	// MinerPSM is the pivot sequence miner with the right-expansion index
	// (default).
	MinerPSM LocalMiner = iota
	// MinerPSMNoIndex disables the right-expansion index.
	MinerPSMNoIndex
	// MinerBFS is the hierarchy-aware SPADE adaptation.
	MinerBFS
	// MinerDFS is the hierarchy-aware PrefixSpan adaptation.
	MinerDFS
)

func (m LocalMiner) kind() miner.Kind {
	switch m {
	case MinerPSMNoIndex:
		return miner.KindPSMNoIndex
	case MinerBFS:
		return miner.KindBFS
	case MinerDFS:
		return miner.KindDFS
	default:
		return miner.KindPSM
	}
}

// String returns the miner's name as used in the paper's figures.
func (m LocalMiner) String() string { return m.kind().String() }

// Options configures Mine.
type Options struct {
	// MinSupport is the minimum number of input sequences a pattern must
	// (generalizedly) occur in. Must be ≥ 1.
	MinSupport int64
	// MaxGap is the maximum number of items allowed between consecutive
	// pattern items (γ ≥ 0; 0 = contiguous, i.e. n-gram mining).
	MaxGap int
	// MaxLength bounds the pattern length (λ ≥ 2).
	MaxLength int
	// Algorithm selects the distributed algorithm (default AlgorithmLASH).
	Algorithm Algorithm
	// LocalMiner selects the per-partition miner (default MinerPSM).
	LocalMiner LocalMiner
	// Workers bounds real parallelism (default: all CPUs).
	Workers int
	// MaxIntermediate caps the records the naïve/semi-naïve baselines may
	// emit before aborting with ErrAborted (0 = unlimited).
	MaxIntermediate int64
	// Restriction optionally thins the output to closed or maximal patterns
	// (computed relative to the mined output, i.e. supersequences up to
	// MaxLength). See §6.7 of the paper.
	Restriction Restriction
}

// Restriction selects an output restriction.
type Restriction int

const (
	// RestrictNone returns all frequent generalized sequences (default).
	RestrictNone Restriction = iota
	// RestrictClosed keeps only patterns whose every supersequence —
	// extension or same-length specialization — has a lower support.
	RestrictClosed
	// RestrictMaximal keeps only patterns with no frequent supersequence.
	RestrictMaximal
)

// ErrAborted reports that a baseline run exceeded Options.MaxIntermediate.
var ErrAborted = baseline.ErrEmitCapExceeded

// Pattern is one mined generalized sequence.
type Pattern struct {
	// Items are the pattern's item names, possibly from different hierarchy
	// levels.
	Items []string
	// Support is the number of input sequences the pattern occurs in,
	// directly or in specialized form.
	Support int64
}

// Result is the output of Mine.
type Result struct {
	// Patterns holds the frequent generalized sequences (2 ≤ length ≤
	// MaxLength) in canonical order: by length, then by item frequency
	// rank.
	Patterns []Pattern
	// FrequentItems are the frequent single items with their hierarchy-aware
	// document frequencies (the generalized f-list).
	FrequentItems []Pattern
	// NumPartitions is the number of partitions mined (LASH variants only).
	NumPartitions int
	// Explored counts candidate sequences whose support was computed by the
	// local miners (LASH variants only).
	Explored int64
	// Stats reports MapReduce phase measurements of the main mining job.
	Stats RunStats
}

// RunStats summarizes the MapReduce work of a run.
type RunStats struct {
	// MapOutputBytes is the encoded volume shuffled between the map and
	// reduce phases (Hadoop's MAP_OUTPUT_BYTES).
	MapOutputBytes int64
	// MapOutputRecords counts shuffled records (after combining).
	MapOutputRecords int64
}

// Mine runs the selected algorithm over the database.
func Mine(db *Database, opt Options) (*Result, error) {
	return mine(db, opt, nil)
}

// mine implements Mine; freqs optionally short-circuits the preprocessing
// job for the LASH variants (see Miner).
func mine(db *Database, opt Options, freqs []int64) (*Result, error) {
	if db == nil || db.db == nil {
		return nil, fmt.Errorf("lash: nil database (use NewDatabaseBuilder().Build())")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	params := gsm.Params{Sigma: opt.MinSupport, Gamma: opt.MaxGap, Lambda: opt.MaxLength}
	mr := mapreduce.Config{Workers: opt.Workers}

	var (
		res *core.Result
		err error
	)
	switch opt.Algorithm {
	case AlgorithmLASH:
		res, err = core.Mine(db.db, core.Options{Params: params, Miner: opt.LocalMiner.kind(), MR: mr, Freqs: freqs})
	case AlgorithmLASHFlat:
		res, err = core.Mine(db.db, core.Options{Params: params, Miner: opt.LocalMiner.kind(), Flat: true, MR: mr, Freqs: freqs})
	case AlgorithmMGFSM:
		res, err = core.Mine(db.db, core.Options{Params: params, Miner: miner.KindBFS, Flat: true, MR: mr, Freqs: freqs})
	case AlgorithmNaive:
		res, err = baseline.MineNaive(db.db, baseline.Options{Params: params, MR: mr, MaxEmit: opt.MaxIntermediate})
	case AlgorithmSemiNaive:
		res, err = baseline.MineSemiNaive(db.db, baseline.Options{Params: params, MR: mr, MaxEmit: opt.MaxIntermediate})
	default:
		return nil, fmt.Errorf("lash: unknown algorithm %d", int(opt.Algorithm))
	}
	if err != nil {
		return nil, err
	}

	switch opt.Restriction {
	case RestrictNone:
	case RestrictClosed:
		res.Patterns = stats.FilterClosed(restrictionForest(db, res), res.Patterns)
	case RestrictMaximal:
		res.Patterns = stats.FilterMaximal(restrictionForest(db, res), res.Patterns)
	default:
		return nil, fmt.Errorf("lash: unknown restriction %d", int(opt.Restriction))
	}

	out := &Result{NumPartitions: res.NumPartitions, Explored: res.Miner.Explored}
	f := db.db.Forest
	for _, p := range res.Patterns {
		items := make([]string, len(p.Items))
		for i, w := range p.Items {
			items[i] = f.Name(w)
		}
		out.Patterns = append(out.Patterns, Pattern{Items: items, Support: p.Support})
	}
	for _, p := range res.FrequentItems {
		out.FrequentItems = append(out.FrequentItems, Pattern{
			Items:   []string{f.Name(p.Items[0])},
			Support: p.Support,
		})
	}
	if res.Jobs.Mine != nil {
		out.Stats.MapOutputBytes = res.Jobs.Mine.MapOutputBytes
		out.Stats.MapOutputRecords = res.Jobs.Mine.MapOutputRecords
	}
	return out, nil
}

// restrictionForest picks the hierarchy the restriction must be computed
// under: the one the algorithm actually mined with (flat algorithms use the
// flattened vocabulary).
func restrictionForest(db *Database, res *core.Result) *hierarchy.Forest {
	if res.FList != nil {
		return res.FList.Forest()
	}
	return db.db.Forest
}

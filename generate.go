package lash

import (
	"fmt"

	"lash/internal/datagen"
)

// TextConfig parameterizes GenerateTextDatabase. Zero values select
// reasonable defaults.
type TextConfig struct {
	// Sentences is the number of input sequences (default 1000).
	Sentences int
	// Lemmas is the lemma vocabulary size (default 1000).
	Lemmas int
	// Hierarchy selects the syntactic hierarchy variant: "L" (word→lemma),
	// "P" (word→POS), "LP" (word→lemma→POS) or "CLP"
	// (word→case→lemma→POS). Default "CLP".
	Hierarchy string
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateTextDatabase builds a synthetic natural-language-like corpus with
// a syntactic item hierarchy, in the style of the LASH paper's New York
// Times experiments: Zipf-distributed lemmas, inflected surface forms,
// sentence-initial capitalization, and part-of-speech roots.
func GenerateTextDatabase(cfg TextConfig) (*Database, error) {
	variant, err := parseTextHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	corpus := datagen.GenerateText(datagen.TextConfig{
		Sentences: cfg.Sentences,
		Lemmas:    cfg.Lemmas,
		Seed:      cfg.Seed,
	})
	db, err := corpus.Build(variant)
	if err != nil {
		return nil, err
	}
	return newDatabase(db), nil
}

func parseTextHierarchy(s string) (datagen.TextHierarchy, error) {
	switch s {
	case "L":
		return datagen.HierarchyL, nil
	case "P":
		return datagen.HierarchyP, nil
	case "LP":
		return datagen.HierarchyLP, nil
	case "CLP", "":
		return datagen.HierarchyCLP, nil
	}
	return 0, fmt.Errorf("lash: unknown text hierarchy %q (want L, P, LP or CLP)", s)
}

// MarketConfig parameterizes GenerateMarketDatabase. Zero values select
// reasonable defaults.
type MarketConfig struct {
	// Users is the number of sessions (default 1000).
	Users int
	// Products is the catalogue size (default 2000).
	Products int
	// HierarchyLevels is the category hierarchy depth, 2..8 (default 8,
	// the paper's h8).
	HierarchyLevels int
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateMarketDatabase builds a synthetic product-session corpus with a
// category hierarchy, in the style of the LASH paper's Amazon experiments:
// Zipf-distributed product popularity, heavy-tailed session lengths, and
// products attached at varying category depths.
func GenerateMarketDatabase(cfg MarketConfig) (*Database, error) {
	levels := cfg.HierarchyLevels
	if levels == 0 {
		levels = datagen.MaxLevels
	}
	corpus := datagen.GenerateMarket(datagen.MarketConfig{
		Users:    cfg.Users,
		Products: cfg.Products,
		Seed:     cfg.Seed,
	})
	db, err := corpus.Build(levels)
	if err != nil {
		return nil, err
	}
	return newDatabase(db), nil
}

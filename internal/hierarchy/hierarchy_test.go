package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperForest builds the example hierarchy of Fig. 1(b):
// roots a, B, c, D, e, f; B→{b1,b2,b3}; b1→{b11,b12,b13}; D→{d1,d2}.
func paperForest(t testing.TB) *Forest {
	t.Helper()
	b := NewBuilder()
	for _, r := range []string{"a", "B", "c", "D", "e", "f"} {
		b.Add(r)
	}
	for _, e := range [][2]string{
		{"b1", "B"}, {"b2", "B"}, {"b3", "B"},
		{"b11", "b1"}, {"b12", "b1"}, {"b13", "b1"},
		{"d1", "D"}, {"d2", "D"},
	} {
		b.AddEdge(e[0], e[1])
	}
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func item(t testing.TB, f *Forest, name string) Item {
	t.Helper()
	w, ok := f.Lookup(name)
	if !ok {
		t.Fatalf("item %q not interned", name)
	}
	return w
}

func TestBuilderInterning(t *testing.T) {
	b := NewBuilder()
	x := b.Add("x")
	if y := b.Add("x"); y != x {
		t.Fatalf("Add not idempotent: %d vs %d", x, y)
	}
	if b.Size() != 1 {
		t.Fatalf("Size = %d, want 1", b.Size())
	}
	f, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.Name(x) != "x" {
		t.Fatalf("Name = %q", f.Name(x))
	}
	if _, ok := f.Lookup("y"); ok {
		t.Fatal("Lookup(y) should fail")
	}
}

func TestPaperForestShape(t *testing.T) {
	f := paperForest(t)
	if f.Size() != 14 {
		t.Fatalf("Size = %d, want 14", f.Size())
	}
	if f.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", f.Depth())
	}
	a, B, b1, b11, D, d1, e := item(t, f, "a"), item(t, f, "B"), item(t, f, "b1"),
		item(t, f, "b11"), item(t, f, "D"), item(t, f, "d1"), item(t, f, "e")
	if !f.IsRoot(a) || !f.IsRoot(B) || !f.IsRoot(e) {
		t.Fatal("a, B, e must be roots")
	}
	if f.IsRoot(b1) || f.IsRoot(b11) {
		t.Fatal("b1, b11 must not be roots")
	}
	if f.Parent(b11) != b1 || f.Parent(b1) != B || f.Parent(d1) != D {
		t.Fatal("wrong parents")
	}
	if f.Level(a) != 0 || f.Level(b1) != 1 || f.Level(b11) != 2 {
		t.Fatalf("levels: a=%d b1=%d b11=%d", f.Level(a), f.Level(b1), f.Level(b11))
	}
	if !f.IsLeaf(b11) || f.IsLeaf(B) || !f.IsLeaf(a) {
		t.Fatal("leaf flags wrong")
	}
	if len(f.Roots()) != 6 {
		t.Fatalf("roots = %d, want 6", len(f.Roots()))
	}
}

func TestGeneralizesTo(t *testing.T) {
	f := paperForest(t)
	B, b1, b11, b2, a, D := item(t, f, "B"), item(t, f, "b1"), item(t, f, "b11"),
		item(t, f, "b2"), item(t, f, "a"), item(t, f, "D")
	cases := []struct {
		u, v Item
		want bool
	}{
		{b11, B, true},  // b11 →* B (transitive)
		{b11, b1, true}, // direct
		{b11, b11, true},
		{b1, b11, false}, // wrong direction
		{b2, b1, false},  // siblings
		{a, B, false},    // different trees
		{D, D, true},
	}
	for _, c := range cases {
		if got := f.GeneralizesTo(c.u, c.v); got != c.want {
			t.Errorf("GeneralizesTo(%s, %s) = %v, want %v", f.Name(c.u), f.Name(c.v), got, c.want)
		}
		wantAnc := c.want && c.u != c.v
		if got := f.IsAncestor(c.u, c.v); got != wantAnc {
			t.Errorf("IsAncestor(%s, %s) = %v, want %v", f.Name(c.u), f.Name(c.v), got, wantAnc)
		}
	}
}

func TestAncestors(t *testing.T) {
	f := paperForest(t)
	b11 := item(t, f, "b11")
	anc := f.Ancestors(nil, b11)
	if len(anc) != 2 || f.Name(anc[0]) != "b1" || f.Name(anc[1]) != "B" {
		t.Fatalf("Ancestors(b11) = %v", anc)
	}
	sa := f.SelfAndAncestors(nil, b11)
	if len(sa) != 3 || sa[0] != b11 {
		t.Fatalf("SelfAndAncestors(b11) = %v", sa)
	}
	if f.Root(b11) != item(t, f, "B") {
		t.Fatal("Root(b11) != B")
	}
	a := item(t, f, "a")
	if got := f.Ancestors(nil, a); len(got) != 0 {
		t.Fatalf("Ancestors(a) = %v, want empty", got)
	}
	if f.Root(a) != a {
		t.Fatal("Root(a) != a")
	}
}

func TestChildren(t *testing.T) {
	f := paperForest(t)
	B := item(t, f, "B")
	kids := f.Children(B)
	if len(kids) != 3 {
		t.Fatalf("Children(B) = %d items", len(kids))
	}
	for _, k := range kids {
		if f.Parent(k) != B {
			t.Fatalf("child %s has wrong parent", f.Name(k))
		}
	}
	if got := f.Children(item(t, f, "e")); len(got) != 0 {
		t.Fatalf("Children(e) = %v", got)
	}
}

func TestComputeStats(t *testing.T) {
	f := paperForest(t)
	s := f.ComputeStats()
	want := Stats{
		TotalItems: 14, LeafItems: 8, RootItems: 6, IntermediateItems: 0,
		Levels: 3, MaxFanOut: 3,
	}
	// Leaves: b11,b12,b13,b2,b3,d1,d2 and... a,c,e,f are roots AND leaves; the
	// classification buckets roots first, so leaves = non-root childless items.
	if s.TotalItems != want.TotalItems || s.RootItems != want.RootItems ||
		s.Levels != want.Levels || s.MaxFanOut != want.MaxFanOut {
		t.Fatalf("stats = %+v", s)
	}
	if s.LeafItems != 7 { // b11,b12,b13,b2,b3,d1,d2
		t.Fatalf("LeafItems = %d, want 7", s.LeafItems)
	}
	if s.IntermediateItems != 1 { // b1
		t.Fatalf("IntermediateItems = %d, want 1", s.IntermediateItems)
	}
	// fan-out: B=3, b1=3, D=2 → avg 8/3
	if s.AvgFanOut < 2.66 || s.AvgFanOut > 2.67 {
		t.Fatalf("AvgFanOut = %f", s.AvgFanOut)
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("x", "y")
	b.AddEdge("y", "z")
	b.AddEdge("z", "x")
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not detected")
	}
	b2 := NewBuilder()
	b2.AddEdge("x", "x")
	if _, err := b2.Build(); err == nil {
		t.Fatal("self-loop not detected")
	}
}

func TestReparentRejected(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("c", "p1")
	b.AddEdge("c", "p2")
	if _, err := b.Build(); err == nil {
		t.Fatal("re-parenting not rejected")
	}
	// Same parent twice is fine.
	b2 := NewBuilder()
	b2.AddEdge("c", "p")
	b2.AddEdge("c", "p")
	if _, err := b2.Build(); err != nil {
		t.Fatalf("idempotent edge rejected: %v", err)
	}
}

func TestFlat(t *testing.T) {
	f := Flat([]string{"x", "y", "z"})
	if f.Depth() != 1 || f.Size() != 3 || len(f.Roots()) != 3 {
		t.Fatalf("flat forest wrong: depth=%d size=%d", f.Depth(), f.Size())
	}
	x, _ := f.Lookup("x")
	y, _ := f.Lookup("y")
	if f.GeneralizesTo(x, y) || !f.GeneralizesTo(x, x) {
		t.Fatal("flat generalization wrong")
	}
}

func TestEmptyForest(t *testing.T) {
	f, err := NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 || f.Depth() != 0 {
		t.Fatalf("empty forest: size=%d depth=%d", f.Size(), f.Depth())
	}
}

// randomForest builds a random forest with n items; each item may get one of
// the earlier items as parent (guaranteeing acyclicity).
func randomForest(r *rand.Rand, n int) *Forest {
	b := NewBuilder()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
		b.Add(names[i])
	}
	for i := 1; i < n; i++ {
		if r.Intn(3) > 0 { // 2/3 of items get a parent
			b.AddEdge(names[i], names[r.Intn(i)])
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}

// Property: GeneralizesTo(u,v) agrees with explicit ancestor-chain walking.
func TestQuickGeneralizesMatchesChain(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randomForest(rr, 2+rr.Intn(30))
		for trial := 0; trial < 50; trial++ {
			u := Item(rr.Intn(f.Size()))
			v := Item(rr.Intn(f.Size()))
			chain := false
			for _, x := range f.SelfAndAncestors(nil, u) {
				if x == v {
					chain = true
					break
				}
			}
			if f.GeneralizesTo(u, v) != chain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: levels are consistent with parents and depth is their max + 1.
func TestQuickLevels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randomForest(rr, 1+rr.Intn(40))
		maxLevel := 0
		for w := 0; w < f.Size(); w++ {
			it := Item(w)
			if f.IsRoot(it) {
				if f.Level(it) != 0 {
					return false
				}
			} else if f.Level(it) != f.Level(f.Parent(it))+1 {
				return false
			}
			if f.Level(it) > maxLevel {
				maxLevel = f.Level(it)
			}
		}
		return f.Depth() == maxLevel+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Package hierarchy provides the item vocabulary and the forest-shaped item
// hierarchy used by generalized sequence mining (GSM). Items are interned to
// dense uint32 ids; each item has at most one parent (the hierarchy is a
// forest, per §2 of the LASH paper). The package offers constant-time parent
// lookup, ancestor iteration, level queries, and — via DFS interval labels —
// constant-time descendant tests.
package hierarchy

import (
	"fmt"
	"math"
)

// Item is a dense vocabulary identifier. Valid items are 0..Size()-1.
type Item uint32

// NoItem marks the absence of an item (e.g. "no parent").
const NoItem Item = math.MaxUint32

// Forest is an immutable item hierarchy over an interned vocabulary.
// Build one with a Builder. The zero value is an empty forest.
type Forest struct {
	names  []string
	byName map[string]Item
	parent []Item
	level  []int32 // depth from root; roots have level 0
	// DFS interval labels: u is a descendant-or-self of v iff
	// begin[v] <= begin[u] && end[u] <= end[v].
	begin []int32
	end   []int32
	roots []Item
	depth int // number of levels = max level + 1 (0 for empty forest)
}

// Size returns the number of interned items.
func (f *Forest) Size() int { return len(f.names) }

// Name returns the external name of item w.
func (f *Forest) Name(w Item) string {
	if int(w) >= len(f.names) {
		return fmt.Sprintf("item#%d", uint32(w))
	}
	return f.names[w]
}

// Lookup returns the item interned under name, if any.
func (f *Forest) Lookup(name string) (Item, bool) {
	w, ok := f.byName[name]
	return w, ok
}

// Parent returns the parent of w, or NoItem if w is a root.
func (f *Forest) Parent(w Item) Item { return f.parent[w] }

// Level returns the depth of w: 0 for roots, parent level + 1 otherwise.
func (f *Forest) Level(w Item) int { return int(f.level[w]) }

// Depth returns the number of hierarchy levels (max level + 1).
// A "flat" vocabulary (all roots) has depth 1; an empty forest, depth 0.
func (f *Forest) Depth() int { return f.depth }

// Roots returns the root items in id order. The returned slice is shared;
// callers must not modify it.
func (f *Forest) Roots() []Item { return f.roots }

// IsRoot reports whether w has no parent.
func (f *Forest) IsRoot(w Item) bool { return f.parent[w] == NoItem }

// IsLeaf reports whether w has no children.
func (f *Forest) IsLeaf(w Item) bool { return f.end[w] == f.begin[w] }

// GeneralizesTo reports whether u →* v, i.e. v is an ancestor of u or v == u.
// Runs in O(1) using DFS interval labels.
func (f *Forest) GeneralizesTo(u, v Item) bool {
	return f.begin[v] <= f.begin[u] && f.end[u] <= f.end[v]
}

// IsAncestor reports whether v is a proper ancestor of u.
func (f *Forest) IsAncestor(u, v Item) bool {
	return u != v && f.GeneralizesTo(u, v)
}

// Ancestors appends the proper ancestors of w (parent first, root last) to
// dst and returns the extended slice.
func (f *Forest) Ancestors(dst []Item, w Item) []Item {
	for p := f.parent[w]; p != NoItem; p = f.parent[p] {
		dst = append(dst, p)
	}
	return dst
}

// SelfAndAncestors appends w followed by its proper ancestors to dst.
func (f *Forest) SelfAndAncestors(dst []Item, w Item) []Item {
	dst = append(dst, w)
	return f.Ancestors(dst, w)
}

// Root returns the root of the tree containing w.
func (f *Forest) Root(w Item) Item {
	for f.parent[w] != NoItem {
		w = f.parent[w]
	}
	return w
}

// Children returns the children of w in id order. O(Size) — intended for
// tests, statistics and generators, not for inner mining loops.
func (f *Forest) Children(w Item) []Item {
	var out []Item
	for c := range f.parent {
		if f.parent[c] == w {
			out = append(out, Item(c))
		}
	}
	return out
}

// Stats summarizes the shape of a hierarchy, mirroring Table 2 of the paper.
type Stats struct {
	TotalItems        int
	LeafItems         int
	RootItems         int
	IntermediateItems int
	Levels            int
	AvgFanOut         float64 // mean number of children over items with children
	MaxFanOut         int
}

// ComputeStats derives the Table-2 style shape statistics of the forest.
func (f *Forest) ComputeStats() Stats {
	s := Stats{TotalItems: f.Size(), Levels: f.depth}
	fan := make([]int, f.Size())
	for c, p := range f.parent {
		_ = c
		if p != NoItem {
			fan[p]++
		}
	}
	parents := 0
	totalFan := 0
	for w := 0; w < f.Size(); w++ {
		isRoot := f.parent[w] == NoItem
		isLeaf := fan[w] == 0
		switch {
		case isRoot:
			s.RootItems++
		case isLeaf:
			s.LeafItems++
		default:
			s.IntermediateItems++
		}
		if fan[w] > 0 {
			parents++
			totalFan += fan[w]
			if fan[w] > s.MaxFanOut {
				s.MaxFanOut = fan[w]
			}
		}
	}
	if parents > 0 {
		s.AvgFanOut = float64(totalFan) / float64(parents)
	}
	return s
}

// Builder incrementally interns items and parent edges, then Build()s an
// immutable Forest. Adding an item twice is idempotent; re-parenting an item
// is an error surfaced by Build.
type Builder struct {
	names   []string
	byName  map[string]Item
	parent  []Item
	reparnt []string // re-parenting conflicts, reported by Build
}

// NewBuilder returns an empty hierarchy builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]Item)}
}

// Add interns name (as a root, unless a later AddEdge gives it a parent) and
// returns its item id.
func (b *Builder) Add(name string) Item {
	if w, ok := b.byName[name]; ok {
		return w
	}
	w := Item(len(b.names))
	b.names = append(b.names, name)
	b.parent = append(b.parent, NoItem)
	b.byName[name] = w
	return w
}

// AddEdge interns child and parent and records child → parent. A second edge
// with a different parent for the same child is recorded as a conflict and
// reported by Build (the hierarchy must be a forest).
func (b *Builder) AddEdge(child, parent string) {
	c := b.Add(child)
	p := b.Add(parent)
	if b.parent[c] != NoItem && b.parent[c] != p {
		b.reparnt = append(b.reparnt, child)
		return
	}
	b.parent[c] = p
}

// Size returns the number of items interned so far.
func (b *Builder) Size() int { return len(b.names) }

// Lookup returns the id interned for name, if any.
func (b *Builder) Lookup(name string) (Item, bool) {
	w, ok := b.byName[name]
	return w, ok
}

// Build validates the structure (forest shape, no cycles) and returns the
// immutable Forest.
func (b *Builder) Build() (*Forest, error) {
	if len(b.reparnt) > 0 {
		return nil, fmt.Errorf("hierarchy: item %q has more than one parent (forest required)", b.reparnt[0])
	}
	n := len(b.names)
	f := &Forest{
		names:  append([]string(nil), b.names...),
		byName: make(map[string]Item, n),
		parent: append([]Item(nil), b.parent...),
		level:  make([]int32, n),
		begin:  make([]int32, n),
		end:    make([]int32, n),
	}
	for name, w := range b.byName {
		f.byName[name] = w
	}
	// Levels + cycle detection: walk each unresolved parent chain upward,
	// marking nodes in-progress; meeting an in-progress node is a cycle.
	const unset, inProgress = int32(-1), int32(-2)
	for i := range f.level {
		f.level[i] = unset
	}
	var chain []Item
	for w := 0; w < n; w++ {
		if f.level[w] >= 0 {
			continue
		}
		chain = chain[:0]
		u := Item(w)
		resolved := NoItem // first already-resolved ancestor, if any
		for {
			if f.level[u] == inProgress {
				return nil, fmt.Errorf("hierarchy: cycle detected at item %q", f.names[u])
			}
			if f.level[u] >= 0 {
				resolved = u
				break
			}
			f.level[u] = inProgress
			chain = append(chain, u)
			p := f.parent[u]
			if p == NoItem {
				break
			}
			u = p
		}
		base := int32(-1)
		if resolved != NoItem {
			base = f.level[resolved]
		}
		for i := len(chain) - 1; i >= 0; i-- {
			base++
			f.level[chain[i]] = base
		}
	}
	for w := 0; w < n; w++ {
		if int(f.level[w])+1 > f.depth {
			f.depth = int(f.level[w]) + 1
		}
		if f.parent[w] == NoItem {
			f.roots = append(f.roots, Item(w))
		}
	}
	// DFS interval labels. Children grouped per parent first.
	kids := make([][]Item, n)
	for c := 0; c < n; c++ {
		if p := f.parent[c]; p != NoItem {
			kids[p] = append(kids[p], Item(c))
		}
	}
	timer := int32(0)
	// Iterative DFS from every root.
	type frame struct {
		node Item
		next int
	}
	var stack []frame
	for _, r := range f.roots {
		stack = append(stack[:0], frame{r, 0})
		f.begin[r] = timer
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			ks := kids[top.node]
			if top.next < len(ks) {
				c := ks[top.next]
				top.next++
				timer++
				f.begin[c] = timer
				stack = append(stack, frame{c, 0})
			} else {
				f.end[top.node] = timer
				stack = stack[:len(stack)-1]
			}
		}
		timer++
	}
	return f, nil
}

// Flat builds a forest with the given item names and no edges (every item a
// root). Useful for sequence mining without hierarchies (MG-FSM mode).
func Flat(names []string) *Forest {
	b := NewBuilder()
	for _, n := range names {
		b.Add(n)
	}
	f, err := b.Build()
	if err != nil { // cannot happen: no edges
		panic(err)
	}
	return f
}

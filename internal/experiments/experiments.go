package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"lash/internal/baseline"
	"lash/internal/core"
	"lash/internal/datagen"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/obs"
	"lash/internal/rewrite"
	"lash/internal/stats"
)

// Experiment regenerates one paper table/figure.
type Experiment struct {
	ID    string
	Paper string
	Title string
	Run   func(ctx context.Context, c *Context) (*Table, error)
}

// expMeta carries the identity of one experiment, kept separate from the
// runner functions so that table construction inside runners cannot form an
// initialization cycle with the registry.
type expMeta struct {
	id    string
	paper string
	title string
}

var metas = []expMeta{
	{"table1", "Table 1", "dataset characteristics"},
	{"table2", "Table 2", "hierarchy characteristics"},
	{"fig4a", "Fig. 4(a)", "total time: naive vs semi-naive vs LASH (NYT, γ=0)"},
	{"fig4b", "Fig. 4(b)", "map output bytes: naive vs semi-naive vs LASH"},
	{"fig4c", "Fig. 4(c)", "local mining time: BFS vs DFS vs PSM vs PSM+Index"},
	{"fig4d", "Fig. 4(d)", "candidates per output sequence"},
	{"fig4e", "Fig. 4(e)", "no hierarchies: MG-FSM vs LASH"},
	{"fig5a", "Fig. 5(a)", "effect of support σ (AMZN-h8)"},
	{"fig5b", "Fig. 5(b)", "effect of gap γ (AMZN-h8)"},
	{"fig5c", "Fig. 5(c)", "effect of length λ (AMZN-h8)"},
	{"fig5d", "Fig. 5(d)", "output sequences vs λ (AMZN-h8)"},
	{"fig5e", "Fig. 5(e)", "effect of hierarchy depth (AMZN h2..h8)"},
	{"fig5f", "Fig. 5(f)", "effect of hierarchy type (NYT L/P/LP/CLP)"},
	{"fig6a", "Fig. 6(a)", "data scalability (NYT-CLP, 25-100%)"},
	{"fig6b", "Fig. 6(b)", "strong scalability (2/4/8 machines)"},
	{"fig6c", "Fig. 6(c)", "weak scalability"},
	{"table3", "Table 3", "output statistics (non-trivial / closed / maximal)"},
	{"ablation", "§4 (disc.)", "partition construction ablation: rewrite modes"},
}

func metaFor(id string) expMeta {
	for _, m := range metas {
		if m.id == id {
			return m
		}
	}
	return expMeta{id: id, paper: "?", title: "?"}
}

var runners = map[string]func(context.Context, *Context) (*Table, error){
	"table1": runTable1, "table2": runTable2,
	"fig4a": runFig4a, "fig4b": runFig4b, "fig4c": runFig4c,
	"fig4d": runFig4d, "fig4e": runFig4e,
	"fig5a": runFig5a, "fig5b": runFig5b, "fig5c": runFig5c,
	"fig5d": runFig5d, "fig5e": runFig5e, "fig5f": runFig5f,
	"fig6a": runFig6a, "fig6b": runFig6b, "fig6c": runFig6c,
	"table3": runTable3, "ablation": runAblation,
}

// All lists the experiments in the paper's order.
var All = buildAll()

func buildAll() []Experiment {
	out := make([]Experiment, 0, len(metas))
	for _, m := range metas {
		out = append(out, Experiment{ID: m.id, Paper: m.paper, Title: m.title, Run: runners[m.id]})
	}
	return out
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAndFormat executes the selected experiments (nil/empty = all) and
// writes their tables to w.
func RunAndFormat(ctx context.Context, c *Context, ids []string, w io.Writer) error {
	exps := All
	if len(ids) > 0 {
		exps = exps[:0:0]
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		tbl, err := runTraced(ctx, c, e)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tbl.Format(w); err != nil {
			return err
		}
	}
	return nil
}

// runTraced executes one experiment under a per-experiment span (when the
// context carries a tracer), parenting every MapReduce job the experiment
// runs to it. Experiments run sequentially, so mutating c.Obs.Root between
// them is safe.
func runTraced(ctx context.Context, c *Context, e Experiment) (*Table, error) {
	tr := c.Obs.TracerOf()
	if tr == nil {
		return e.Run(ctx, c)
	}
	id := tr.NextID()
	prev := c.Obs.Root
	c.Obs.Root = id
	begin := time.Now()
	tbl, err := e.Run(ctx, c)
	c.Obs.Root = prev
	tr.Record(obs.SpanRecord{ID: id, Name: "exp:" + e.ID, Partition: -1,
		Start: begin, Duration: time.Since(begin)})
	return tbl, err
}

func newTable(id string, header ...string) *Table {
	m := metaFor(id)
	return &Table{ID: m.id, Paper: m.paper, Title: m.title, Header: header}
}

// --- Tables 1 & 2 --------------------------------------------------------

func runTable1(ctx context.Context, c *Context) (*Table, error) {
	t := newTable("table1", "Dataset", "Sequences", "Avg length", "Max length", "Total items", "Unique items")
	nyt, err := c.TextDB(datagen.HierarchyCLP)
	if err != nil {
		return nil, err
	}
	amzn, err := c.MarketDB(8)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		db   *gsm.Database
	}{{"NYT", nyt}, {"AMZN", amzn}} {
		s := datagen.Characteristics(row.db)
		t.AddRow(row.name, fmtCount(int64(s.Sequences)), fmt.Sprintf("%.1f", s.AvgLength),
			fmtCount(int64(s.MaxLength)), fmtCount(s.TotalItems), fmtCount(int64(s.UniqueItems)))
	}
	t.AddNote("paper: NYT 49.6M sentences (avg 21.1), AMZN 6.6M sessions (avg 4.5); synthetic corpora keep the length distributions and Zipf skew at %s scale", c.Scale.Name)
	return t, nil
}

func runTable2(ctx context.Context, c *Context) (*Table, error) {
	t := newTable("table2", "Hierarchy", "Total", "Leaf", "Root", "Intermediate", "Levels", "Avg fan-out", "Max fan-out")
	for _, v := range datagen.TextHierarchies {
		db, err := c.TextDB(v)
		if err != nil {
			return nil, err
		}
		s := db.Forest.ComputeStats()
		t.AddRow("NYT-"+v.String(), fmtCount(int64(s.TotalItems)), fmtCount(int64(s.LeafItems)),
			fmtCount(int64(s.RootItems)), fmtCount(int64(s.IntermediateItems)),
			fmt.Sprintf("%d", s.Levels), fmt.Sprintf("%.1f", s.AvgFanOut), fmtCount(int64(s.MaxFanOut)))
	}
	for _, lv := range datagen.MarketLevels {
		db, err := c.MarketDB(lv)
		if err != nil {
			return nil, err
		}
		s := db.Forest.ComputeStats()
		t.AddRow(fmt.Sprintf("AMZN-h%d", lv), fmtCount(int64(s.TotalItems)), fmtCount(int64(s.LeafItems)),
			fmtCount(int64(s.RootItems)), fmtCount(int64(s.IntermediateItems)),
			fmt.Sprintf("%d", s.Levels), fmt.Sprintf("%.1f", s.AvgFanOut), fmtCount(int64(s.MaxFanOut)))
	}
	t.AddNote("paper shapes to match: P has 22 roots and huge fan-out, L has many roots and tiny fan-out, deeper AMZN variants add intermediate items")
	return t, nil
}

// --- Fig. 4: algorithm comparisons ---------------------------------------

// fig4Settings are the four workloads of Fig. 4(a,b).
func fig4Settings(c *Context) []struct {
	label   string
	variant datagen.TextHierarchy
	p       gsm.Params
} {
	s := c.Scale
	return []struct {
		label   string
		variant datagen.TextHierarchy
		p       gsm.Params
	}{
		{fmt.Sprintf("P(%d,0,3)", s.SigmaHi), datagen.HierarchyP, gsm.Params{Sigma: s.SigmaHi, Gamma: 0, Lambda: 3}},
		{fmt.Sprintf("P(%d,0,3)", s.SigmaLo), datagen.HierarchyP, gsm.Params{Sigma: s.SigmaLo, Gamma: 0, Lambda: 3}},
		{fmt.Sprintf("P(%d,0,5)", s.SigmaLo), datagen.HierarchyP, gsm.Params{Sigma: s.SigmaLo, Gamma: 0, Lambda: 5}},
		{fmt.Sprintf("CLP(%d,0,5)", s.SigmaLo), datagen.HierarchyCLP, gsm.Params{Sigma: s.SigmaLo, Gamma: 0, Lambda: 5}},
	}
}

// fig4Run captures one algorithm execution for Fig. 4(a,b).
type fig4Run struct {
	time  string
	bytes string
}

func runFig4Common(ctx context.Context, c *Context) ([][3]fig4Run, []string, error) {
	var rows [][3]fig4Run
	var labels []string
	for _, set := range fig4Settings(c) {
		db, err := c.TextDB(set.variant)
		if err != nil {
			return nil, nil, err
		}
		var row [3]fig4Run
		bopt := baseline.Options{Params: set.p, MR: c.mr(0), MaxEmit: c.Scale.NaiveCap}
		if res, err := baseline.MineNaive(ctx, db, bopt); err == nil {
			row[0] = fig4Run{fmtDur(res.Jobs.Mine.Sim.Total()), fmtBytes(res.Jobs.Mine.MapOutputBytes)}
		} else if errors.Is(err, baseline.ErrEmitCapExceeded) {
			row[0] = fig4Run{"DNF", "DNF"}
		} else {
			return nil, nil, err
		}
		if res, err := baseline.MineSemiNaive(ctx, db, bopt); err == nil {
			row[1] = fig4Run{fmtDur(res.Jobs.FList.Sim.Total() + res.Jobs.Mine.Sim.Total()), fmtBytes(res.Jobs.Mine.MapOutputBytes)}
		} else if errors.Is(err, baseline.ErrEmitCapExceeded) {
			row[1] = fig4Run{"DNF", "DNF"}
		} else {
			return nil, nil, err
		}
		res, err := core.Mine(ctx, db, core.Options{Params: set.p, MR: c.mr(0)})
		if err != nil {
			return nil, nil, err
		}
		row[2] = fig4Run{fmtDur(res.Jobs.FList.Sim.Total() + res.Jobs.Mine.Sim.Total()), fmtBytes(res.Jobs.Mine.MapOutputBytes)}
		rows = append(rows, row)
		labels = append(labels, set.label)
	}
	return rows, labels, nil
}

func runFig4a(ctx context.Context, c *Context) (*Table, error) {
	rows, labels, err := runFig4Common(ctx, c)
	if err != nil {
		return nil, err
	}
	t := newTable("fig4a", "NYT (σ,γ,λ)", "Naive", "Semi-naive", "LASH")
	for i, row := range rows {
		t.AddRow(labels[i], row[0].time, row[1].time, row[2].time)
	}
	t.AddNote("paper: LASH ≈10× faster at λ=3, >50× at λ=5; naive/semi-naive DNF (>12h) on CLP — DNF here means the %s-scale emission cap was hit", c.Scale.Name)
	t.AddNote("times are simulated-cluster totals (10 machines × 8 slots)")
	return t, nil
}

func runFig4b(ctx context.Context, c *Context) (*Table, error) {
	rows, labels, err := runFig4Common(ctx, c)
	if err != nil {
		return nil, err
	}
	t := newTable("fig4b", "NYT (σ,γ,λ)", "Naive", "Semi-naive", "LASH")
	for i, row := range rows {
		t.AddRow(labels[i], row[0].bytes, row[1].bytes, row[2].bytes)
	}
	t.AddNote("paper: LASH shuffles a small fraction of the baselines' bytes (Fig. 4b tops out near 500GB for semi-naive)")
	return t, nil
}

func runFig4c(ctx context.Context, c *Context) (*Table, error) {
	return fig4MinerTable(ctx, c, "fig4c", func(res *core.Result) string {
		return fmtDur(res.Jobs.Mine.Sim.Reduce)
	}, "paper: PSM 9-22× faster than BFS, 2.5-3.5× faster than DFS; BFS runs out of memory at CLP λ=7")
}

func runFig4d(ctx context.Context, c *Context) (*Table, error) {
	return fig4MinerTable(ctx, c, "fig4d", func(res *core.Result) string {
		if res.Miner.Output == 0 {
			return "0"
		}
		return fmt.Sprintf("%.1f", float64(res.Miner.Explored)/float64(res.Miner.Output))
	}, "paper: PSM explores a small fraction of DFS's candidates; the index prunes up to another 2×")
}

func fig4MinerTable(ctx context.Context, c *Context, id string, cell func(*core.Result) string, note string) (*Table, error) {
	s := c.Scale
	settings := []struct {
		label   string
		variant datagen.TextHierarchy
		p       gsm.Params
	}{
		{fmt.Sprintf("LP(%d,0,5)", s.SigmaHi), datagen.HierarchyLP, gsm.Params{Sigma: s.SigmaHi, Gamma: 0, Lambda: 5}},
		{fmt.Sprintf("LP(%d,0,5)", s.SigmaLo), datagen.HierarchyLP, gsm.Params{Sigma: s.SigmaLo, Gamma: 0, Lambda: 5}},
		{fmt.Sprintf("CLP(%d,0,5)", s.SigmaLo), datagen.HierarchyCLP, gsm.Params{Sigma: s.SigmaLo, Gamma: 0, Lambda: 5}},
		{fmt.Sprintf("CLP(%d,0,7)", s.SigmaLo), datagen.HierarchyCLP, gsm.Params{Sigma: s.SigmaLo, Gamma: 0, Lambda: 7}},
	}
	kinds := []miner.Kind{miner.KindBFS, miner.KindDFS, miner.KindPSMNoIndex, miner.KindPSM}
	t := newTable(id, "NYT (σ,γ,λ)", "BFS", "DFS", "PSM", "PSM+Index")
	for _, set := range settings {
		db, err := c.TextDB(set.variant)
		if err != nil {
			return nil, err
		}
		row := []string{set.label}
		for _, k := range kinds {
			res, err := core.Mine(ctx, db, core.Options{Params: set.p, Miner: k, MR: c.mr(0)})
			if err != nil {
				return nil, err
			}
			row = append(row, cell(res))
		}
		t.AddRow(row...)
	}
	t.AddNote("%s", note)
	return t, nil
}

func runFig4e(ctx context.Context, c *Context) (*Table, error) {
	s := c.Scale
	settings := []gsm.Params{
		{Sigma: s.SigmaLo, Gamma: 1, Lambda: 5},
		{Sigma: s.SigmaXLo, Gamma: 1, Lambda: 5},
		{Sigma: s.SigmaXLo, Gamma: 1, Lambda: 10},
	}
	db, err := c.TextDB(datagen.HierarchyCLP) // hierarchy ignored in flat mode
	if err != nil {
		return nil, err
	}
	t := newTable("fig4e", "NYT flat (σ,γ,λ)", "MG-FSM", "LASH")
	for _, p := range settings {
		mg, err := core.Mine(ctx, db, core.Options{Params: p, Flat: true, Miner: miner.KindBFS, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		la, err := core.Mine(ctx, db, core.Options{Params: p, Flat: true, Miner: miner.KindPSM, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("(%d,%d,%d)", p.Sigma, p.Gamma, p.Lambda),
			fmtDur(mg.Jobs.FList.Sim.Total()+mg.Jobs.Mine.Sim.Total()),
			fmtDur(la.Jobs.FList.Sim.Total()+la.Jobs.Mine.Sim.Total()))
	}
	t.AddNote("paper: LASH 2-5× faster than MG-FSM without hierarchies, entirely due to PSM replacing BFS in the mining phase")
	return t, nil
}

// --- Fig. 5: parameter effects -------------------------------------------

func phaseTable(id, firstCol string) *Table {
	return newTable(id, firstCol, "Map", "Shuffle", "Reduce", "Total")
}

func addPhaseRow(t *Table, label string, st *mapreduce.Stats) {
	t.AddRow(label, fmtDur(st.Sim.Map), fmtDur(st.Sim.Shuffle), fmtDur(st.Sim.Reduce), fmtDur(st.Sim.Total()))
}

func runFig5a(ctx context.Context, c *Context) (*Table, error) {
	db, err := c.MarketDB(8)
	if err != nil {
		return nil, err
	}
	t := phaseTable("fig5a", "Support σ")
	for _, sigma := range []int64{c.Scale.SigmaXLo, c.Scale.SigmaLo, c.Scale.SigmaHi, c.Scale.SigmaXHi} {
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: sigma, Gamma: 1, Lambda: 5}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmtCount(sigma), res.Jobs.Mine)
	}
	t.AddNote("paper: map and reduce times shrink as σ grows (fewer frequent items → shallower effective hierarchy, cheaper mining)")
	return t, nil
}

func runFig5b(ctx context.Context, c *Context) (*Table, error) {
	db, err := c.MarketDB(8)
	if err != nil {
		return nil, err
	}
	t := phaseTable("fig5b", "Gap γ")
	for gamma := 0; gamma <= 3; gamma++ {
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: gamma, Lambda: 5}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmt.Sprintf("%d", gamma), res.Jobs.Mine)
	}
	t.AddNote("paper: map time ~flat in γ, reduce time grows steeply (mining search space)")
	return t, nil
}

func runFig5c(ctx context.Context, c *Context) (*Table, error) {
	db, err := c.MarketDB(8)
	if err != nil {
		return nil, err
	}
	t := phaseTable("fig5c", "Length λ")
	for lambda := 3; lambda <= 7; lambda++ {
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaXLo, Gamma: 1, Lambda: lambda}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmt.Sprintf("%d", lambda), res.Jobs.Mine)
	}
	t.AddNote("paper: map time ~flat in λ, reduce time and output size grow with λ")
	return t, nil
}

func runFig5d(ctx context.Context, c *Context) (*Table, error) {
	db, err := c.MarketDB(8)
	if err != nil {
		return nil, err
	}
	t := newTable("fig5d", "Length λ", "Output sequences")
	for lambda := 3; lambda <= 7; lambda++ {
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaXLo, Gamma: 1, Lambda: lambda}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", lambda), fmtCount(int64(len(res.Patterns))))
	}
	t.AddNote("paper: output size and reduce time are proportional (Fig. 5c vs 5d)")
	return t, nil
}

func runFig5e(ctx context.Context, c *Context) (*Table, error) {
	t := phaseTable("fig5e", "Hierarchy")
	for _, lv := range datagen.MarketLevels {
		db, err := c.MarketDB(lv)
		if err != nil {
			return nil, err
		}
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 2, Lambda: 5}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmt.Sprintf("h%d", lv), res.Jobs.Mine)
	}
	t.AddNote("paper: deeper hierarchies increase reduce time (more intermediate items → more partitions); h8 ≈ h4 because most products have ≤4 ancestor categories")
	return t, nil
}

func runFig5f(ctx context.Context, c *Context) (*Table, error) {
	t := phaseTable("fig5f", "Hierarchy")
	for _, v := range datagen.TextHierarchies {
		db, err := c.TextDB(v)
		if err != nil {
			return nil, err
		}
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 0, Lambda: 5}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, v.String(), res.Jobs.Mine)
	}
	t.AddNote("paper: P costs more than L (few high-fan-out roots are frequent everywhere); LP/CLP add map and reduce time")
	return t, nil
}

// --- Fig. 6: scalability --------------------------------------------------

func runFig6a(ctx context.Context, c *Context) (*Table, error) {
	full, err := c.TextDB(datagen.HierarchyCLP)
	if err != nil {
		return nil, err
	}
	t := phaseTable("fig6a", "% of data")
	for _, frac := range []float64{0.25, 0.50, 0.75, 1.0} {
		db := datagen.Sample(full, frac)
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 0, Lambda: 5}, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmt.Sprintf("%.0f%%", frac*100), res.Jobs.Mine)
	}
	t.AddNote("paper: map and reduce times grow linearly with input size")
	return t, nil
}

func runFig6b(ctx context.Context, c *Context) (*Table, error) {
	db, err := c.TextDB(datagen.HierarchyCLP)
	if err != nil {
		return nil, err
	}
	t := phaseTable("fig6b", "Machines")
	for _, m := range []int{2, 4, 8} {
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 0, Lambda: 5}, MR: c.scalingMR(m)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmt.Sprintf("%d", m), res.Jobs.Mine)
	}
	t.AddNote("paper: near-linear strong scaling; simulated here by scheduling measured tasks on m×8 slots")
	t.AddNote("at host scale the largest single partition bounds the reduce makespan (item-partitioning skew); the paper's corpus is ~4000× larger, so its heaviest partition is far below 1/80 of total work")
	return t, nil
}

func runFig6c(ctx context.Context, c *Context) (*Table, error) {
	full, err := c.TextDB(datagen.HierarchyCLP)
	if err != nil {
		return nil, err
	}
	t := phaseTable("fig6c", "Machines (% data)")
	for _, step := range []struct {
		m    int
		frac float64
	}{{2, 0.25}, {4, 0.50}, {8, 1.0}} {
		db := datagen.Sample(full, step.frac)
		res, err := core.Mine(ctx, db, core.Options{Params: gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 0, Lambda: 5}, MR: c.scalingMR(step.m)})
		if err != nil {
			return nil, err
		}
		addPhaseRow(t, fmt.Sprintf("%d (%.0f%%)", step.m, step.frac*100), res.Jobs.Mine)
	}
	t.AddNote("paper: weak scaling nearly flat; slight growth because output grows superlinearly with data (2.2× per doubling)")
	return t, nil
}

// --- ablation: value of the rewrites (§4 discussion) ----------------------

func runAblation(ctx context.Context, c *Context) (*Table, error) {
	db, err := c.TextDB(datagen.HierarchyLP)
	if err != nil {
		return nil, err
	}
	p := gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 1, Lambda: 5}
	t := newTable("ablation", "Rewrites", "Shuffled", "Records", "Partition seqs", "Largest partition", "Reduce", "Total")
	var base *core.Result
	for _, mode := range []rewrite.Mode{rewrite.ModeNone, rewrite.ModeGeneralizeOnly, rewrite.ModeFull} {
		res, err := core.Mine(ctx, db, core.Options{Params: p, Rewrites: mode, MR: c.mr(0)})
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = res
		} else if len(base.Patterns) != len(res.Patterns) {
			return nil, fmt.Errorf("ablation: mode %s changed the output (%d vs %d patterns)",
				mode, len(res.Patterns), len(base.Patterns))
		}
		t.AddRow(mode.String(), fmtBytes(res.Jobs.Mine.MapOutputBytes),
			fmtCount(res.Jobs.Mine.MapOutputRecords), fmtCount(res.PartitionSeqs),
			fmtCount(res.MaxPartitionSeqs),
			fmtDur(res.Jobs.Mine.Sim.Reduce), fmtDur(res.Jobs.Mine.Sim.Total()))
	}
	t.AddNote("all modes produce identical patterns (verified); the §4 discussion predicts the trivial partitioning (P_w(T)=T) suffers from replication, skew and redundant mining — visible above as shuffled-byte and largest-partition growth")
	return t, nil
}

// --- Table 3 ---------------------------------------------------------------

func runTable3(ctx context.Context, c *Context) (*Table, error) {
	t := newTable("table3", "Setting", "Output", "Non-trivial %", "Closed %", "Maximal %")
	addRow := func(label string, db *gsm.Database, p gsm.Params) error {
		res, err := core.Mine(ctx, db, core.Options{Params: p, MR: c.mr(0)})
		if err != nil {
			return err
		}
		flat, err := core.Mine(ctx, db, core.Options{Params: p, Flat: true, MR: c.mr(0)})
		if err != nil {
			return err
		}
		o := stats.Compute(db.Forest, res.Patterns, flat.Patterns)
		t.AddRow(label, fmtCount(int64(o.Total)),
			fmt.Sprintf("%.2f", o.NonTrivialPct()),
			fmt.Sprintf("%.2f", o.ClosedPct()),
			fmt.Sprintf("%.2f", o.MaximalPct()))
		return nil
	}
	for _, v := range []datagen.TextHierarchy{datagen.HierarchyP, datagen.HierarchyLP, datagen.HierarchyCLP} {
		db, err := c.TextDB(v)
		if err != nil {
			return nil, err
		}
		if err := addRow("NYT-"+v.String()+fmt.Sprintf("(σ=%d,λ=5)", c.Scale.SigmaLo), db,
			gsm.Params{Sigma: c.Scale.SigmaLo, Gamma: 0, Lambda: 5}); err != nil {
			return nil, err
		}
	}
	amzn, err := c.MarketDB(8)
	if err != nil {
		return nil, err
	}
	// The paper sweeps AMZN σ over 10000/1000/100; at host scale those map
	// to the Hi/Lo/XLo analogues (XHi leaves almost nothing frequent).
	for _, sigma := range []int64{c.Scale.SigmaHi, c.Scale.SigmaLo, c.Scale.SigmaXLo} {
		if err := addRow(fmt.Sprintf("AMZN-h8(σ=%d,γ=1,λ=5)", sigma), amzn,
			gsm.Params{Sigma: sigma, Gamma: 1, Lambda: 5}); err != nil {
			return nil, err
		}
	}
	t.AddNote("paper: >70%% (NYT) and >95%% (AMZN) non-trivial; more hierarchy levels / lower σ ⇒ more redundancy (lower closed/maximal %%)")
	return t, nil
}

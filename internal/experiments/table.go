package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated paper table or figure (figures become the table
// of series values behind the plot).
type Table struct {
	ID     string // experiment id, e.g. "fig4a"
	Paper  string // paper reference, e.g. "Fig. 4(a)"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // qualitative expectations from the paper + caveats
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s: %s ==\n", t.ID, t.Paper, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(t.Header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

package experiments_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lash/internal/experiments"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", ""} {
		if _, err := experiments.ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := experiments.ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestByID(t *testing.T) {
	for _, e := range experiments.All {
		got, err := experiments.ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q) failed: %v", e.ID, err)
		}
	}
	if _, err := experiments.ByID("fig99z"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRegistryCoversPaper(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "ablation",
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
		"fig6a", "fig6b", "fig6c",
	}
	if len(experiments.All) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(experiments.All), len(want))
	}
	for _, id := range want {
		if _, err := experiments.ByID(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
}

// A scaled-down scale for unit testing the runners end to end.
func testScale() experiments.Scale {
	return experiments.Scale{
		Name:         "unit",
		NYTSentences: 300, NYTLemmas: 200,
		AMZNUsers: 500, AMZNProducts: 300,
		SigmaXHi: 100, SigmaHi: 25, SigmaLo: 6, SigmaXLo: 3,
		NaiveCap: 2_000_000,
		Seed:     7,
	}
}

// Every experiment must run and produce a well-formed table at unit scale.
func TestAllExperimentsRun(t *testing.T) {
	c := experiments.NewContext(testScale())
	for _, e := range experiments.All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(context.Background(), c)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s: row width %d != header %d", e.ID, len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Format(&buf); err != nil {
				t.Fatalf("%s: format: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, tbl.Header[0]) {
				t.Fatalf("%s: formatted output malformed:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAndFormatSelection(t *testing.T) {
	c := experiments.NewContext(testScale())
	var buf bytes.Buffer
	if err := experiments.RunAndFormat(context.Background(), c, []string{"table1", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "table1") || !strings.Contains(out, "table2") {
		t.Fatalf("selection output missing tables:\n%s", out)
	}
	if strings.Contains(out, "fig4a") {
		t.Fatal("unselected experiment ran")
	}
	if err := experiments.RunAndFormat(context.Background(), c, []string{"nope"}, &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Package experiments regenerates every table and figure of the LASH
// paper's evaluation (§6) on the synthetic stand-in corpora, printing the
// same rows/series the paper reports. Absolute numbers differ (host-scale
// corpora on an in-process MapReduce), but the comparisons — who wins, by
// what rough factor, and where the crossovers are — are what each runner
// reproduces; EXPERIMENTS.md records paper-vs-measured per experiment.
package experiments

import (
	"fmt"

	"lash/internal/mapreduce"
)

// Scale fixes corpus sizes and the support thresholds standing in for the
// paper's σ values. The paper mines 50M sentences with σ ∈ {10,…,10000};
// at host scale the thresholds are mapped so that relative output sizes
// stay in the same regime (the mapping is recorded in EXPERIMENTS.md).
type Scale struct {
	Name string

	NYTSentences int
	NYTLemmas    int
	AMZNUsers    int
	AMZNProducts int

	// Support analogues of the paper's 10000 / 1000 / 100 / 10.
	SigmaXHi int64
	SigmaHi  int64
	SigmaLo  int64
	SigmaXLo int64

	// NaiveCap bounds baseline intermediate records; exceeding it reports
	// DNF (the paper's ">12 hrs").
	NaiveCap int64

	Seed int64
}

// Tiny is the benchmark scale: fast enough for `go test -bench`.
var Tiny = Scale{
	Name:         "tiny",
	NYTSentences: 1500, NYTLemmas: 600,
	AMZNUsers: 2500, AMZNProducts: 1200,
	SigmaXHi: 400, SigmaHi: 80, SigmaLo: 15, SigmaXLo: 6,
	NaiveCap: 3_000_000,
	Seed:     42,
}

// Small is the default experiment scale (seconds per experiment).
var Small = Scale{
	Name:         "small",
	NYTSentences: 12000, NYTLemmas: 4000,
	AMZNUsers: 20000, AMZNProducts: 8000,
	SigmaXHi: 2000, SigmaHi: 400, SigmaLo: 50, SigmaXLo: 15,
	NaiveCap: 12_000_000,
	Seed:     42,
}

// Medium stresses the system (minutes per experiment).
var Medium = Scale{
	Name:         "medium",
	NYTSentences: 60000, NYTLemmas: 15000,
	AMZNUsers: 80000, AMZNProducts: 25000,
	SigmaXHi: 8000, SigmaHi: 1500, SigmaLo: 150, SigmaXLo: 40,
	NaiveCap: 40_000_000,
	Seed:     42,
}

// ScaleByName resolves a scale by its name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "medium":
		return Medium, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want tiny, small or medium)", name)
}

// defaultMR is the MapReduce configuration shared by all comparative runs:
// enough tasks for the simulated scheduler to balance, the paper's cluster
// as the simulated target (10 machines × 8 slots, 10 GbE).
func defaultMR(machines int) mapreduce.Config {
	if machines <= 0 {
		machines = 10
	}
	return mapreduce.Config{
		MapTasks:    64,
		ReduceTasks: 64,
		Cluster:     mapreduce.ClusterSpec{Machines: machines, SlotsPerMachine: 8},
	}
}

// scalingMR uses many small tasks so that the LPT schedule has room to
// spread work when the simulated machine count varies (Fig. 6b/6c).
func scalingMR(machines int) mapreduce.Config {
	cfg := defaultMR(machines)
	cfg.MapTasks = 192
	cfg.ReduceTasks = 192
	return cfg
}

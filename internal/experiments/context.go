package experiments

import (
	"fmt"
	"time"

	"lash/internal/datagen"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/obs"
)

// Context lazily generates and caches the corpora for one scale, so that a
// sequence of experiments reuses datasets exactly like the paper does.
type Context struct {
	Scale Scale
	// Obs optionally carries a tracer (and/or metrics) threaded into every
	// comparative MapReduce run; RunAndFormat adds one span per experiment
	// and parents the runs' job spans to it (lash-exp's -trace-out).
	Obs *obs.Run

	text      *datagen.TextCorpus
	market    *datagen.MarketCorpus
	textDBs   map[datagen.TextHierarchy]*gsm.Database
	marketDBs map[int]*gsm.Database
}

// NewContext returns an empty context for the scale.
func NewContext(s Scale) *Context {
	return &Context{
		Scale:     s,
		textDBs:   make(map[datagen.TextHierarchy]*gsm.Database),
		marketDBs: make(map[int]*gsm.Database),
	}
}

// mr returns the default MapReduce config with the context's observability
// hooks attached, so traced runs record job and phase spans.
func (c *Context) mr(machines int) mapreduce.Config {
	cfg := defaultMR(machines)
	cfg.Obs = c.Obs
	return cfg
}

// scalingMR is mr for the speed-up/scale-up experiments' larger task counts.
func (c *Context) scalingMR(machines int) mapreduce.Config {
	cfg := scalingMR(machines)
	cfg.Obs = c.Obs
	return cfg
}

// TextDB returns the NYT-like database under the given hierarchy variant.
func (c *Context) TextDB(v datagen.TextHierarchy) (*gsm.Database, error) {
	if db, ok := c.textDBs[v]; ok {
		return db, nil
	}
	if c.text == nil {
		c.text = datagen.GenerateText(datagen.TextConfig{
			Sentences: c.Scale.NYTSentences,
			Lemmas:    c.Scale.NYTLemmas,
			Seed:      c.Scale.Seed,
		})
	}
	db, err := c.text.Build(v)
	if err != nil {
		return nil, fmt.Errorf("experiments: building NYT-%s: %w", v, err)
	}
	c.textDBs[v] = db
	return db, nil
}

// MarketDB returns the AMZN-like database with the given hierarchy depth.
func (c *Context) MarketDB(levels int) (*gsm.Database, error) {
	if db, ok := c.marketDBs[levels]; ok {
		return db, nil
	}
	if c.market == nil {
		c.market = datagen.GenerateMarket(datagen.MarketConfig{
			Users:    c.Scale.AMZNUsers,
			Products: c.Scale.AMZNProducts,
			Seed:     c.Scale.Seed + 1,
		})
	}
	db, err := c.market.Build(levels)
	if err != nil {
		return nil, fmt.Errorf("experiments: building AMZN-h%d: %w", levels, err)
	}
	c.marketDBs[levels] = db
	return db, nil
}

// fmtDur renders a duration like the paper's seconds axes, keeping three
// significant digits at sub-second scale.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders byte counts with binary units.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtCount renders large counts with thousands separators.
func fmtCount(n int64) string {
	if n < 0 {
		return "-" + fmtCount(-n)
	}
	s := fmt.Sprintf("%d", n)
	out := make([]byte, 0, len(s)+len(s)/3)
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

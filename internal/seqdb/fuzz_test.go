package seqdb_test

import (
	"bytes"
	"fmt"
	"testing"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/seqdb"
)

// dbFromBytes derives a structurally-varied database from fuzz input:
// alternating bytes pick vocabulary size, hierarchy shape, and sequence
// contents, so the round-trip target explores deep hierarchies, empty
// sequences, and id-dense corpora without needing a valid file as input.
func dbFromBytes(data []byte) *gsm.Database {
	b := hierarchy.NewBuilder()
	nItems := 1 + int(byteAt(data, 0))%64
	for w := 0; w < nItems; w++ {
		name := fmt.Sprintf("i%d", w)
		b.Add(name)
		// A parent from the already-interned prefix keeps the forest
		// acyclic by construction.
		if w > 0 && byteAt(data, w)%3 == 0 {
			b.AddEdge(name, fmt.Sprintf("i%d", int(byteAt(data, w+1))%w))
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err) // unreachable: edges point strictly backwards
	}
	var seqs []gsm.Sequence
	pos := nItems
	nSeqs := int(byteAt(data, pos)) % 16
	for s := 0; s < nSeqs; s++ {
		n := int(byteAt(data, pos+1+s)) % 8
		seq := make(gsm.Sequence, n)
		for j := range seq {
			seq[j] = hierarchy.Item(int(byteAt(data, pos+s+j)) % nItems)
		}
		seqs = append(seqs, seq)
	}
	return &gsm.Database{Seqs: seqs, Forest: f}
}

func byteAt(data []byte, i int) byte {
	if len(data) == 0 {
		return 0
	}
	return data[i%len(data)]
}

// FuzzRoundTrip checks Write/ReadAll round-trip identity for arbitrary
// generated databases.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{7, 0, 3}, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		want := dbFromBytes(data)
		var buf bytes.Buffer
		if err := seqdb.Write(&buf, want); err != nil {
			t.Fatalf("Write: %v", err)
		}
		r, err := seqdb.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewReader rejected valid encoding: %v", err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("ReadAll rejected valid encoding: %v", err)
		}
		if got.Forest.Size() != want.Forest.Size() || len(got.Seqs) != len(want.Seqs) {
			t.Fatalf("round trip: %d items / %d seqs, want %d / %d",
				got.Forest.Size(), len(got.Seqs), want.Forest.Size(), len(want.Seqs))
		}
		for w := 0; w < want.Forest.Size(); w++ {
			it := hierarchy.Item(w)
			if got.Forest.Name(it) != want.Forest.Name(it) || got.Forest.Parent(it) != want.Forest.Parent(it) {
				t.Fatalf("item %d: (%q, %d), want (%q, %d)", w,
					got.Forest.Name(it), got.Forest.Parent(it), want.Forest.Name(it), want.Forest.Parent(it))
			}
		}
		for i := range want.Seqs {
			if len(got.Seqs[i]) != len(want.Seqs[i]) {
				t.Fatalf("sequence %d length %d, want %d", i, len(got.Seqs[i]), len(want.Seqs[i]))
			}
			for j := range want.Seqs[i] {
				if got.Seqs[i][j] != want.Seqs[i][j] {
					t.Fatalf("sequence %d item %d = %d, want %d", i, j, got.Seqs[i][j], want.Seqs[i][j])
				}
			}
		}
	})
}

// FuzzReader feeds arbitrary bytes to the reader: it must never panic, and
// anything it accepts must be a database that validates and re-encodes to a
// file the reader accepts again.
func FuzzReader(f *testing.F) {
	// A valid file as the anchor seed, plus assorted corruptions.
	valid := func() []byte {
		b := hierarchy.NewBuilder()
		b.AddEdge("a", "A")
		b.Add("b")
		forest, err := b.Build()
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := seqdb.Write(&buf, &gsm.Database{
			Seqs:   []gsm.Sequence{{0, 2}, {}, {1, 1, 0}},
			Forest: forest,
		}); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(seqdb.Magic))
	f.Add([]byte(seqdb.Magic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := seqdb.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		db, err := r.ReadAll()
		if err != nil {
			return
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("accepted database fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := seqdb.Write(&buf, db); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		r2, err := seqdb.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read header: %v", err)
		}
		if _, err := r2.ReadAll(); err != nil {
			t.Fatalf("re-read: %v", err)
		}
	})
}

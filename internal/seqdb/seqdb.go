// Package seqdb defines the compact binary on-disk format for sequence
// databases — the input side of mining corpora larger than RAM. The textual
// interchange format (one sequence per line, items by name, plus a separate
// hierarchy file) forces every item through a string: a multi-GB corpus
// becomes a [][]string before the miner sees a single record. The binary
// format instead stores the item dictionary (names + hierarchy edges) once
// up front and every sequence as varint-encoded dense item ids, so a reader
// can stream sequences straight into item-id arenas without materializing
// any per-item strings.
//
// File layout (all integers are unsigned varints unless noted):
//
//	magic      8 bytes "LASHDB01"
//	itemCount
//	itemCount × { nameLen, name bytes, parent+1 }   // 0 = root (no parent)
//	seqCount
//	totalItems                                      // Σ len(sequence)
//	seqCount  × { seqLen, seqLen × item id }
//
// Item ids are dense (0..itemCount-1) and double as the dictionary order, so
// parent references may point forward or backward. totalItems lets ReadAll
// size its arena exactly once. The format is streaming-writable and
// streaming-readable; readers validate every length and id against hard
// bounds before allocating, so truncated or corrupt input fails with an
// error instead of an OOM or a panic (fuzz-tested).
package seqdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// Magic identifies a binary sequence database; it is the first 8 bytes of
// every file. The trailing "01" is the format version.
const Magic = "LASHDB01"

// Hard validation bounds: generous for real corpora, tight enough that a
// handful of corrupt bytes cannot claim gigabytes before the first read.
const (
	// MaxItems bounds the dictionary size.
	MaxItems = 1 << 28
	// MaxNameLen bounds a single item name's byte length.
	MaxNameLen = 1 << 16
	// MaxSeqLen bounds a single sequence's item count (matches the decoded
	// bound of internal/seqenc).
	MaxSeqLen = 1 << 24
)

// ErrBadMagic reports that the input does not start with Magic — it is not
// a binary sequence database (or a different format version).
var ErrBadMagic = errors.New("seqdb: bad magic (not a LASHDB01 file)")

// Write encodes db onto w in the binary format. The hierarchy travels with
// the sequences: one file is the whole corpus.
func Write(w io.Writer, db *gsm.Database) error {
	if db == nil || db.Forest == nil {
		return errors.New("seqdb: nil database")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}

	f := db.Forest
	if f.Size() > MaxItems {
		return fmt.Errorf("seqdb: %d items exceeds the format bound %d", f.Size(), MaxItems)
	}
	if err := writeUvarint(uint64(f.Size())); err != nil {
		return err
	}
	for w := 0; w < f.Size(); w++ {
		name := f.Name(hierarchy.Item(w))
		if len(name) > MaxNameLen {
			return fmt.Errorf("seqdb: item %d name is %d bytes, format bound is %d", w, len(name), MaxNameLen)
		}
		if err := writeUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		parent := uint64(0)
		if p := f.Parent(hierarchy.Item(w)); p != hierarchy.NoItem {
			parent = uint64(p) + 1
		}
		if err := writeUvarint(parent); err != nil {
			return err
		}
	}

	if err := writeUvarint(uint64(len(db.Seqs))); err != nil {
		return err
	}
	var total uint64
	for _, seq := range db.Seqs {
		total += uint64(len(seq))
	}
	if err := writeUvarint(total); err != nil {
		return err
	}
	for i, seq := range db.Seqs {
		if len(seq) > MaxSeqLen {
			return fmt.Errorf("seqdb: sequence %d has %d items, format bound is %d", i, len(seq), MaxSeqLen)
		}
		if err := writeUvarint(uint64(len(seq))); err != nil {
			return err
		}
		for _, it := range seq {
			if err := writeUvarint(uint64(it)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes db to path (created or truncated), fsync-free.
func WriteFile(path string, db *gsm.Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Reader streams sequences out of a binary database. NewReader consumes the
// header and dictionary eagerly (the dictionary must fit in memory — it is
// vocabulary-sized, not corpus-sized); sequences are then decoded one Next
// call at a time, so corpora need never be resident at once.
type Reader struct {
	br      *bufio.Reader
	forest  *hierarchy.Forest
	items   uint64 // vocabulary size, for id validation
	seqs    uint64 // declared sequence count
	total   uint64 // declared Σ sequence lengths
	read    uint64 // sequences returned so far
	closer  io.Closer
	lastErr error
}

// NewReader parses the header and item dictionary from r. Reads are
// buffered internally; r need not be.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}

	itemCount, err := readBounded(br, MaxItems, "item count")
	if err != nil {
		return nil, err
	}
	// Grow the dictionary by appending rather than trusting the declared
	// count with one big allocation: a corrupt count on a short file then
	// fails at the first missing name instead of pre-allocating gigabytes.
	b := hierarchy.NewBuilder()
	names := make([]string, 0, min(itemCount, 1<<16))
	parents := make([]uint64, 0, min(itemCount, 1<<16))
	for w := uint64(0); w < itemCount; w++ {
		nameLen, err := readBounded(br, MaxNameLen, "name length")
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("seqdb: truncated item name: %w", err)
		}
		names = append(names, string(name))
		parent, err := readBounded(br, itemCount, "parent reference")
		if err != nil {
			return nil, err
		}
		parents = append(parents, parent)
		// Ids are interning order: a duplicate name would silently remap
		// every later id, so reject it.
		if got := b.Add(names[w]); got != hierarchy.Item(w) {
			return nil, fmt.Errorf("seqdb: duplicate item name %q (ids %d and %d)", names[w], got, w)
		}
	}
	for w, p := range parents {
		if p > 0 {
			b.AddEdge(names[w], names[p-1])
		}
	}
	forest, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("seqdb: invalid hierarchy: %w", err)
	}

	seqCount, err := readUvarint(br, "sequence count")
	if err != nil {
		return nil, err
	}
	total, err := readUvarint(br, "total item count")
	if err != nil {
		return nil, err
	}
	return &Reader{br: br, forest: forest, items: itemCount, seqs: seqCount, total: total}, nil
}

// Open opens path and parses its header; Close releases the file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// Close closes the underlying file, when the Reader owns one (Open).
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	err := r.closer.Close()
	r.closer = nil
	return err
}

// Forest returns the decoded item hierarchy.
func (r *Reader) Forest() *hierarchy.Forest { return r.forest }

// NumSequences returns the declared sequence count.
func (r *Reader) NumSequences() int64 { return int64(r.seqs) }

// TotalItems returns the declared total item count across all sequences.
func (r *Reader) TotalItems() int64 { return int64(r.total) }

// Next decodes the next sequence, appending its items to dst (pass dst[:0]
// to reuse a buffer, or a shared arena to accumulate). It returns io.EOF
// after the last sequence. Once Next returns an error it keeps returning
// it.
func (r *Reader) Next(dst gsm.Sequence) (gsm.Sequence, error) {
	if r.lastErr != nil {
		return dst, r.lastErr
	}
	if r.read == r.seqs {
		// Reaching the declared count exactly is the only clean end.
		r.lastErr = io.EOF
		return dst, io.EOF
	}
	seqLen, err := readBounded(r.br, MaxSeqLen, "sequence length")
	if err != nil {
		r.lastErr = err
		return dst, err
	}
	for i := uint64(0); i < seqLen; i++ {
		id, err := readUvarint(r.br, "item")
		if err != nil {
			r.lastErr = err
			return dst, err
		}
		if id >= r.items {
			r.lastErr = fmt.Errorf("seqdb: item id %d outside the %d-item dictionary", id, r.items)
			return dst, r.lastErr
		}
		dst = append(dst, hierarchy.Item(id))
	}
	r.read++
	return dst, nil
}

// ReadAll decodes every remaining sequence into an arena-backed database:
// items land back to back in large shared chunks (no per-sequence item
// slices, no strings beyond the dictionary), growing with what is actually
// read rather than trusting the header's totalItems with one giant
// allocation. It verifies the trailer is clean: a declared-count shortfall,
// an item-count mismatch, or trailing garbage is an error.
func (r *Reader) ReadAll() (*gsm.Database, error) {
	const chunkItems = 1 << 20
	var (
		seqs  = make([]gsm.Sequence, 0, min(r.seqs-r.read, 1<<16))
		chunk gsm.Sequence
		buf   gsm.Sequence
		total uint64
	)
	for {
		var err error
		buf, err = r.Next(buf[:0])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if total += uint64(len(buf)); total > r.total {
			return nil, fmt.Errorf("seqdb: sequences hold more than the declared %d items", r.total)
		}
		if len(chunk)+len(buf) > cap(chunk) {
			chunk = make(gsm.Sequence, 0, max(len(buf), chunkItems))
		}
		start := len(chunk)
		chunk = append(chunk, buf...)
		seqs = append(seqs, chunk[start:len(chunk):len(chunk)])
	}
	if total != r.total {
		return nil, fmt.Errorf("seqdb: sequences hold %d items, header declared %d", total, r.total)
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		return nil, errors.New("seqdb: trailing garbage after last sequence")
	}
	return &gsm.Database{Seqs: seqs, Forest: r.forest}, nil
}

// ReadFile opens, fully decodes, and closes path.
func ReadFile(path string) (*gsm.Database, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.ReadAll()
}

// IsMagic reports whether b (the first bytes of some input) identifies a
// binary sequence database. Callers sniffing a stream should hand at least
// len(Magic) bytes.
func IsMagic(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == Magic
}

// readUvarint reads one varint, annotating truncation with what was being
// read.
func readUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("seqdb: truncated %s: %w", what, err)
	}
	return v, nil
}

// readBounded reads one varint and rejects values above bound.
func readBounded(br *bufio.Reader, bound uint64, what string) (uint64, error) {
	v, err := readUvarint(br, what)
	if err != nil {
		return 0, err
	}
	if v > bound {
		return 0, fmt.Errorf("seqdb: %s %d exceeds the format bound %d", what, v, bound)
	}
	return v, nil
}

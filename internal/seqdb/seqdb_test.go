package seqdb_test

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"lash/internal/datagen"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/seqdb"
)

// testDB builds a small database with a multi-level hierarchy, empty
// sequences, and repeated items.
func testDB(t *testing.T) *gsm.Database {
	t.Helper()
	b := hierarchy.NewBuilder()
	b.AddEdge("a1", "A")
	b.AddEdge("a2", "A")
	b.AddEdge("A", "ROOT")
	b.AddEdge("b1", "B")
	f, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := func(name string) hierarchy.Item {
		w, ok := f.Lookup(name)
		if !ok {
			t.Fatalf("no item %q", name)
		}
		return w
	}
	return &gsm.Database{
		Forest: f,
		Seqs: []gsm.Sequence{
			{id("a1"), id("b1"), id("a1")},
			{},
			{id("A"), id("a2"), id("ROOT"), id("b1"), id("B")},
			{id("b1")},
		},
	}
}

func encode(t *testing.T, db *gsm.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := seqdb.Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newReader(t *testing.T, enc []byte) *seqdb.Reader {
	t.Helper()
	r, err := seqdb.NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func assertSameDB(t *testing.T, got, want *gsm.Database) {
	t.Helper()
	if got.Forest.Size() != want.Forest.Size() {
		t.Fatalf("forest size %d, want %d", got.Forest.Size(), want.Forest.Size())
	}
	for w := 0; w < want.Forest.Size(); w++ {
		it := hierarchy.Item(w)
		if got.Forest.Name(it) != want.Forest.Name(it) {
			t.Fatalf("item %d name %q, want %q", w, got.Forest.Name(it), want.Forest.Name(it))
		}
		if got.Forest.Parent(it) != want.Forest.Parent(it) {
			t.Fatalf("item %d parent %d, want %d", w, got.Forest.Parent(it), want.Forest.Parent(it))
		}
	}
	if len(got.Seqs) != len(want.Seqs) {
		t.Fatalf("%d sequences, want %d", len(got.Seqs), len(want.Seqs))
	}
	for i := range want.Seqs {
		if len(got.Seqs[i]) != len(want.Seqs[i]) {
			t.Fatalf("sequence %d length %d, want %d", i, len(got.Seqs[i]), len(want.Seqs[i]))
		}
		for j := range want.Seqs[i] {
			if got.Seqs[i][j] != want.Seqs[i][j] {
				t.Fatalf("sequence %d item %d = %d, want %d", i, j, got.Seqs[i][j], want.Seqs[i][j])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	want := testDB(t)
	enc := encode(t, want)
	if !seqdb.IsMagic(enc) {
		t.Fatal("encoded file does not start with the magic")
	}
	r, err := seqdb.NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSequences() != int64(len(want.Seqs)) {
		t.Fatalf("NumSequences = %d, want %d", r.NumSequences(), len(want.Seqs))
	}
	if r.TotalItems() != 9 {
		t.Fatalf("TotalItems = %d, want 9", r.TotalItems())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	assertSameDB(t, got, want)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripGenerated(t *testing.T) {
	corpus := datagen.GenerateText(datagen.TextConfig{Sentences: 500, Lemmas: 200, Seed: 7})
	want, err := corpus.Build(datagen.HierarchyCLP)
	if err != nil {
		t.Fatal(err)
	}
	got, err := newReader(t, encode(t, want)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	assertSameDB(t, got, want)
}

func TestFileRoundTrip(t *testing.T) {
	want := testDB(t)
	path := filepath.Join(t.TempDir(), "corpus.ldb")
	if err := seqdb.WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := seqdb.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDB(t, got, want)
}

func TestStreamingNext(t *testing.T) {
	want := testDB(t)
	r := newReader(t, encode(t, want))
	var buf gsm.Sequence
	for i := range want.Seqs {
		var err error
		buf, err = r.Next(buf[:0])
		if err != nil {
			t.Fatalf("sequence %d: %v", i, err)
		}
		if len(buf) != len(want.Seqs[i]) {
			t.Fatalf("sequence %d length %d, want %d", i, len(buf), len(want.Seqs[i]))
		}
	}
	if _, err := r.Next(nil); err != io.EOF {
		t.Fatalf("after last sequence: %v, want io.EOF", err)
	}
	// The error must be sticky.
	if _, err := r.Next(nil); err != io.EOF {
		t.Fatalf("repeated read: %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("LASH"),
		[]byte("LASHDB99 rest of the file"),
		[]byte("#\tsequence text file, not binary\n"),
	} {
		if _, err := seqdb.NewReader(bytes.NewReader(in)); !errors.Is(err, seqdb.ErrBadMagic) {
			t.Fatalf("input %q: err = %v, want ErrBadMagic", in, err)
		}
	}
}

func TestTruncation(t *testing.T) {
	enc := encode(t, testDB(t))
	// Every strict prefix must fail — either at header parse or at
	// ReadAll — never succeed and never panic.
	for cut := 0; cut < len(enc); cut++ {
		r, err := seqdb.NewReader(bytes.NewReader(enc[:cut]))
		if err != nil {
			continue
		}
		if _, err := r.ReadAll(); err == nil {
			t.Fatalf("truncation at %d of %d bytes read successfully", cut, len(enc))
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	enc := append(encode(t, testDB(t)), 0x7)
	r, err := seqdb.NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err == nil {
		t.Fatal("trailing garbage read successfully")
	}
}

func TestCorruptRejected(t *testing.T) {
	enc := encode(t, testDB(t))
	// Flip each byte after the magic in a few positions; the reader must
	// either error out or produce a database that still validates — it must
	// never panic or accept out-of-vocabulary items.
	for pos := len(seqdb.Magic); pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0xff
		r, err := seqdb.NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		db, err := r.ReadAll()
		if err != nil {
			continue
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("corrupt byte %d produced an invalid database: %v", pos, err)
		}
	}
}

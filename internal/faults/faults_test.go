package faults

import (
	"errors"
	"sync"
	"testing"
)

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if err := r.Hit("any.point"); err != nil {
		t.Fatalf("nil registry Hit = %v, want nil", err)
	}
	if got := r.Injected(); got != 0 {
		t.Fatalf("nil registry Injected = %d, want 0", got)
	}
	if got := r.Hits("any.point"); got != 0 {
		t.Fatalf("nil registry Hits = %d, want 0", got)
	}
	if got := r.InjectedAt("any.point"); got != 0 {
		t.Fatalf("nil registry InjectedAt = %d, want 0", got)
	}
}

func TestUnarmedPoint(t *testing.T) {
	r := new(Registry)
	for i := 0; i < 10; i++ {
		if err := r.Hit("pkg.unarmed"); err != nil {
			t.Fatalf("unarmed Hit = %v, want nil", err)
		}
	}
	if got := r.Hits("pkg.unarmed"); got != 0 {
		t.Fatalf("Hits on never-armed point = %d, want 0 (point not tracked)", got)
	}
}

func TestFailNthFiresExactlyOnce(t *testing.T) {
	r := new(Registry)
	r.FailNth("pkg.point", 3, Error)
	for i := 1; i <= 5; i++ {
		err := r.Hit("pkg.point")
		if i == 3 {
			if err == nil {
				t.Fatalf("hit %d: want injected error", i)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err = %v, not ErrInjected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: err = %v, want nil (fires only on the 3rd)", i, err)
		}
	}
	if got := r.Hits("pkg.point"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
	if got := r.InjectedAt("pkg.point"); got != 1 {
		t.Fatalf("InjectedAt = %d, want 1", got)
	}
	if got := r.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestFailNthPanicMode(t *testing.T) {
	r := new(Registry)
	r.FailNth("pkg.crash", 1, Panic)
	defer func() {
		v := recover()
		ip, ok := v.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", v, v)
		}
		if ip.Point != "pkg.crash" {
			t.Fatalf("panic point = %q, want pkg.crash", ip.Point)
		}
		if got := r.Injected(); got != 1 {
			t.Fatalf("Injected = %d, want 1", got)
		}
	}()
	_ = r.Hit("pkg.crash")
	t.Fatal("Hit did not panic")
}

func TestFailProbDeterministic(t *testing.T) {
	const n = 1000
	run := func(seed uint64) []bool {
		r := new(Registry)
		r.FailProb("pkg.p", 0.25, seed, Error)
		out := make([]bool, n)
		for i := range out {
			out[i] = r.Hit("pkg.p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: same seed diverged", i)
		}
		if a[i] {
			fired++
		}
	}
	// 0.25 ± generous slack over 1000 draws.
	if fired < 150 || fired > 350 {
		t.Fatalf("p=0.25 fired %d/%d times, outside [150,350]", fired, n)
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFailProbClamped(t *testing.T) {
	r := new(Registry)
	r.FailProb("pkg.always", 2.0, 1, Error)
	for i := 0; i < 5; i++ {
		if err := r.Hit("pkg.always"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d with p clamped to 1: err = %v", i, err)
		}
	}
	r.FailProb("pkg.never", -1, 1, Error)
	for i := 0; i < 5; i++ {
		if err := r.Hit("pkg.never"); err != nil {
			t.Fatalf("hit %d with p clamped to 0: err = %v", i, err)
		}
	}
}

func TestDisarmKeepsCounters(t *testing.T) {
	r := new(Registry)
	r.FailNth("pkg.d", 1, Error)
	if err := r.Hit("pkg.d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed hit: err = %v", err)
	}
	r.Disarm("pkg.d")
	if err := r.Hit("pkg.d"); err != nil {
		t.Fatalf("disarmed hit: err = %v, want nil", err)
	}
	if got := r.Hits("pkg.d"); got != 2 {
		t.Fatalf("Hits after disarm = %d, want 2", got)
	}
	if got := r.InjectedAt("pkg.d"); got != 1 {
		t.Fatalf("InjectedAt after disarm = %d, want 1", got)
	}
}

func TestRearmPreservesCounters(t *testing.T) {
	r := new(Registry)
	r.FailNth("pkg.r", 1, Error)
	_ = r.Hit("pkg.r")
	r.FailNth("pkg.r", 100, Error)
	if got := r.Hits("pkg.r"); got != 1 {
		t.Fatalf("Hits after re-arm = %d, want 1", got)
	}
	if got := r.InjectedAt("pkg.r"); got != 1 {
		t.Fatalf("InjectedAt after re-arm = %d, want 1", got)
	}
}

func TestConcurrentHits(t *testing.T) {
	r := new(Registry)
	r.FailNth("pkg.c", 50, Error)
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < per; i++ {
				if r.Hit("pkg.c") != nil {
					local++
				}
			}
			mu.Lock()
			injected += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if injected != 1 {
		t.Fatalf("count-armed point fired %d times under concurrency, want exactly 1", injected)
	}
	if got := r.Hits("pkg.c"); got != goroutines*per {
		t.Fatalf("Hits = %d, want %d", got, goroutines*per)
	}
}

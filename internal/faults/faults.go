// Package faults is a deterministic fault-injection registry used to
// exercise the pipeline's failure paths in tests and chaos runs.
//
// Production code calls Hit at named injection points; a nil *Registry
// (the production default) makes Hit a single nil-check branch, so the
// hooks cost nothing when injection is off. Tests arm points by count
// ("fail the Nth hit") or by seeded probability, choosing whether the
// point returns an error or panics.
//
// Injected errors wrap ErrInjected, so callers that classify failures
// (see mapreduce.IsTransient) treat them as transient and retry.
// Injected panics carry the InjectedPanic type, which retry layers
// deliberately do NOT classify as transient: a panic models a
// deterministic crash, not a flaky device.
//
// Point names follow a contract enforced by the lashvet faultpoint
// analyzer: every Hit site names its point with a constant string of the
// form "<package>.<point>" (e.g. "mapreduce.spill.write"), unique within
// the package — constant so chaos tests can arm points by grepping for
// the literal, prefixed so subsystems cannot collide, unique so FailNth
// hit counts are unambiguous.
//
// The package is dependency-free and safe for concurrent use.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel wrapped by every error injected through a
// Registry. errors.Is(err, faults.ErrInjected) identifies a failure as
// synthetic (and therefore transient for retry classification).
var ErrInjected = errors.New("faults: injected fault")

// InjectedPanic is the value thrown by panic-mode injection points.
// Recover sites can detect it with a type assertion.
type InjectedPanic struct {
	// Point is the injection-point name that fired.
	Point string
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %q", p.Point)
}

// Mode selects what an armed point injects.
type Mode int

const (
	// Error makes Hit return an ErrInjected-wrapped error.
	Error Mode = iota
	// Panic makes Hit panic with an InjectedPanic value.
	Panic
)

type point struct {
	mode Mode

	// Count arming: fail on exactly the nth hit (1-based). 0 = disarmed.
	// Firing once — not on every later hit — is what lets a retried
	// task succeed on its next attempt.
	nth int64

	// Probability arming: fail when the seeded PRNG draw < prob.
	prob float64
	rng  uint64 // splitmix64 state; guarded by mu

	hits     atomic.Int64
	injected atomic.Int64

	mu sync.Mutex
}

// Registry maps injection-point names to armed fault behaviors. The
// zero value is ready to use; a nil *Registry disables all points.
type Registry struct {
	mu     sync.Mutex
	points map[string]*point

	injected atomic.Int64
}

// FailNth arms name to inject on exactly its n-th hit (1-based); later
// hits pass, so a retried task's re-execution succeeds. n <= 0 disarms
// the point.
func (r *Registry) FailNth(name string, n int, mode Mode) {
	r.arm(name, &point{mode: mode, nth: int64(n)})
}

// FailProb arms name to inject on each hit independently with
// probability p (clamped to [0, 1]), drawn from a deterministic PRNG
// seeded with seed. Equal seeds give equal injection schedules.
func (r *Registry) FailProb(name string, p float64, seed uint64, mode Mode) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	r.arm(name, &point{mode: mode, prob: p, rng: seed + 0x9e3779b97f4a7c15})
}

// Disarm removes any behavior armed for name. Hit counts survive.
func (r *Registry) Disarm(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.points[name]; ok {
		// Keep the point so counters persist, but strip the arming.
		old.mu.Lock()
		old.nth = 0
		old.prob = 0
		old.mu.Unlock()
	}
}

func (r *Registry) arm(name string, p *point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.points == nil {
		r.points = make(map[string]*point)
	}
	if old, ok := r.points[name]; ok {
		// Preserve counters across re-arms.
		p.hits.Store(old.hits.Load())
		p.injected.Store(old.injected.Load())
	}
	r.points[name] = p
}

// Hit reports whether the named injection point fires. A nil receiver
// returns nil immediately — the production fast path is one branch.
// Armed error-mode points return an error wrapping ErrInjected; armed
// panic-mode points panic with an InjectedPanic value.
func (r *Registry) Hit(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	p := r.points[name]
	r.mu.Unlock()
	if p == nil {
		return nil
	}
	n := p.hits.Add(1)
	fire := false
	p.mu.Lock()
	if p.nth > 0 && n == p.nth {
		fire = true
	} else if p.prob > 0 {
		// splitmix64: deterministic per-point stream.
		p.rng += 0x9e3779b97f4a7c15
		z := p.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if float64(z>>11)/(1<<53) < p.prob {
			fire = true
		}
	}
	p.mu.Unlock()
	if !fire {
		return nil
	}
	p.injected.Add(1)
	r.injected.Add(1)
	if p.mode == Panic {
		panic(InjectedPanic{Point: name})
	}
	return fmt.Errorf("%w at %q (hit %d)", ErrInjected, name, n)
}

// Injected returns the total number of faults this registry has
// injected (across all points, both modes). Nil-safe.
func (r *Registry) Injected() int64 {
	if r == nil {
		return 0
	}
	return r.injected.Load()
}

// Hits returns how many times the named point was reached (whether or
// not it fired). Nil-safe.
func (r *Registry) Hits(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	p := r.points[name]
	r.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// InjectedAt returns how many faults the named point injected. Nil-safe.
func (r *Registry) InjectedAt(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	p := r.points[name]
	r.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.injected.Load()
}

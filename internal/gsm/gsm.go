// Package gsm defines the generalized sequence mining (GSM) problem kernel:
// sequences over a hierarchical vocabulary, the gap-constrained generalized
// subsequence relation ⊑γ, enumeration of generalized subsequences (the
// G_λ(T) sets of the LASH paper), support computation, and a brute-force
// reference miner used as the test oracle for all production algorithms.
package gsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lash/internal/hierarchy"
)

// Sequence is a sequence of vocabulary items.
type Sequence = []hierarchy.Item

// Params bundles the three GSM problem parameters.
type Params struct {
	Sigma  int64 // minimum support σ > 0
	Gamma  int   // maximum gap γ ≥ 0
	Lambda int   // maximum pattern length λ ≥ 2
}

// Validate reports whether the parameters satisfy the problem statement
// (σ > 0, γ ≥ 0, λ ≥ 2).
func (p Params) Validate() error {
	if p.Sigma <= 0 {
		return fmt.Errorf("gsm: support σ must be positive, got %d", p.Sigma)
	}
	if p.Gamma < 0 {
		return fmt.Errorf("gsm: gap γ must be non-negative, got %d", p.Gamma)
	}
	if p.Lambda < 2 {
		return fmt.Errorf("gsm: max length λ must be at least 2, got %d", p.Lambda)
	}
	return nil
}

// Pattern is a mined generalized sequence together with its support.
type Pattern struct {
	Items   Sequence
	Support int64
}

// Database is a multiset of input sequences over a shared hierarchy.
type Database struct {
	Seqs   []Sequence
	Forest *hierarchy.Forest
}

// ErrNoForest is returned when a database lacks a hierarchy.
var ErrNoForest = errors.New("gsm: database has no hierarchy")

// Validate checks that every item of every sequence is interned in the
// forest.
func (db *Database) Validate() error {
	if db.Forest == nil {
		return ErrNoForest
	}
	n := hierarchy.Item(db.Forest.Size())
	for i, t := range db.Seqs {
		for j, w := range t {
			if w >= n {
				return fmt.Errorf("gsm: sequence %d position %d: item %d outside vocabulary", i, j, w)
			}
		}
	}
	return nil
}

// String renders a sequence using the forest's item names.
func String(f *hierarchy.Forest, s Sequence) string {
	var b strings.Builder
	for i, w := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f.Name(w))
	}
	return b.String()
}

// Key returns a compact map key for a sequence (4 bytes per item).
func Key(s Sequence) string {
	buf := make([]byte, 4*len(s))
	for i, w := range s {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	return string(buf)
}

// FromKey decodes a Key back into a sequence.
func FromKey(k string) Sequence {
	s := make(Sequence, len(k)/4)
	for i := range s {
		s[i] = hierarchy.Item(k[4*i]) | hierarchy.Item(k[4*i+1])<<8 |
			hierarchy.Item(k[4*i+2])<<16 | hierarchy.Item(k[4*i+3])<<24
	}
	return s
}

// IsGenSubseq reports whether S ⊑γ T: there are indexes i1 < … < in of T
// with T[ij] →* S[j] and at most gamma items between consecutive indexes.
func IsGenSubseq(f *hierarchy.Forest, s, t Sequence, gamma int) bool {
	n, m := len(s), len(t)
	if n == 0 || n > m {
		return n == 0
	}
	// memo[i*m+j]: 0 unknown, 1 yes, 2 no — can S[i:] match with S[i] at T[j]?
	memo := make([]byte, n*m)
	var match func(i, j int) bool
	match = func(i, j int) bool {
		if !f.GeneralizesTo(t[j], s[i]) {
			return false
		}
		if i == n-1 {
			return true
		}
		switch memo[i*m+j] {
		case 1:
			return true
		case 2:
			return false
		}
		hi := j + 1 + gamma
		if hi >= m {
			hi = m - 1
		}
		for jn := j + 1; jn <= hi; jn++ {
			if match(i+1, jn) {
				memo[i*m+j] = 1
				return true
			}
		}
		memo[i*m+j] = 2
		return false
	}
	for j := 0; j+n <= m; j++ {
		if match(0, j) {
			return true
		}
	}
	return false
}

// IsSubseq reports whether S is a plain (non-generalized) gap-constrained
// subsequence of T, i.e. S ⊆γ T.
func IsSubseq(s, t Sequence, gamma int) bool {
	n, m := len(s), len(t)
	if n == 0 || n > m {
		return n == 0
	}
	memo := make([]byte, n*m)
	var match func(i, j int) bool
	match = func(i, j int) bool {
		if t[j] != s[i] {
			return false
		}
		if i == n-1 {
			return true
		}
		switch memo[i*m+j] {
		case 1:
			return true
		case 2:
			return false
		}
		hi := j + 1 + gamma
		if hi >= m {
			hi = m - 1
		}
		for jn := j + 1; jn <= hi; jn++ {
			if match(i+1, jn) {
				memo[i*m+j] = 1
				return true
			}
		}
		memo[i*m+j] = 2
		return false
	}
	for j := 0; j+n <= m; j++ {
		if match(0, j) {
			return true
		}
	}
	return false
}

// Frequency computes f_γ(S, D): the number of database sequences T with
// S ⊑γ T.
func Frequency(db *Database, s Sequence, gamma int) int64 {
	var n int64
	for _, t := range db.Seqs {
		if IsGenSubseq(db.Forest, s, t, gamma) {
			n++
		}
	}
	return n
}

// ItemGeneralizations returns G1(T): the distinct items occurring in T
// together with all their generalizations, in ascending item order.
func ItemGeneralizations(f *hierarchy.Forest, t Sequence) []hierarchy.Item {
	seen := make(map[hierarchy.Item]struct{}, 2*len(t))
	var scratch []hierarchy.Item
	for _, w := range t {
		scratch = f.SelfAndAncestors(scratch[:0], w)
		for _, g := range scratch {
			seen[g] = struct{}{}
		}
	}
	out := make([]hierarchy.Item, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EnumerateGenSubseqs calls fn once for each DISTINCT generalized
// subsequence S ⊑γ T with minLen ≤ |S| ≤ maxLen (the set G_λ(T) of the
// paper when minLen = 2). The callback must not retain the slice; if it
// returns false, enumeration stops early and EnumerateGenSubseqs returns
// false.
//
// A nil accept function enumerates everything; otherwise only positions with
// accept(index)==true may participate (used by the semi-naïve algorithm to
// skip blank positions while preserving the gap structure).
func EnumerateGenSubseqs(f *hierarchy.Forest, t Sequence, gamma, minLen, maxLen int, accept func(int) bool, fn func(Sequence) bool) bool {
	if maxLen < minLen || len(t) == 0 {
		return true
	}
	seen := make(map[string]struct{})
	cur := make(Sequence, 0, maxLen)
	var extend func(last int) bool
	emit := func() bool {
		if len(cur) < minLen {
			return true
		}
		k := Key(cur)
		if _, dup := seen[k]; dup {
			return true
		}
		seen[k] = struct{}{}
		return fn(cur)
	}
	// Note: the generalization list must be a fresh slice per recursion level;
	// a shared scratch buffer would be clobbered by deeper calls while the
	// enclosing range loop is still iterating over it.
	extend = func(last int) bool {
		if len(cur) == maxLen {
			return true
		}
		hi := last + 1 + gamma
		if hi >= len(t) {
			hi = len(t) - 1
		}
		for j := last + 1; j <= hi; j++ {
			if accept != nil && !accept(j) {
				continue
			}
			for _, g := range f.SelfAndAncestors(nil, t[j]) {
				cur = append(cur, g)
				ok := emit() && extend(j)
				cur = cur[:len(cur)-1]
				if !ok {
					return false
				}
			}
		}
		return true
	}
	for i := range t {
		if accept != nil && !accept(i) {
			continue
		}
		for _, g := range f.SelfAndAncestors(nil, t[i]) {
			cur = append(cur[:0], g)
			if !(emit() && extend(i)) {
				return false
			}
		}
	}
	return true
}

// GenSubseqSet materializes G_λ(T) as a sorted slice (tests/small inputs).
func GenSubseqSet(f *hierarchy.Forest, t Sequence, gamma, minLen, maxLen int) []Sequence {
	var out []Sequence
	EnumerateGenSubseqs(f, t, gamma, minLen, maxLen, nil, func(s Sequence) bool {
		out = append(out, append(Sequence(nil), s...))
		return true
	})
	SortPatternsSeq(out)
	return out
}

// GenSubseqSetFiltered is GenSubseqSet with a position-acceptance filter
// (see EnumerateGenSubseqs).
func GenSubseqSetFiltered(f *hierarchy.Forest, t Sequence, gamma, minLen, maxLen int, accept func(int) bool) []Sequence {
	var out []Sequence
	EnumerateGenSubseqs(f, t, gamma, minLen, maxLen, accept, func(s Sequence) bool {
		out = append(out, append(Sequence(nil), s...))
		return true
	})
	SortPatternsSeq(out)
	return out
}

// MineBruteForce is the reference GSM miner: it gathers every candidate from
// the G_λ(T) sets and then recomputes each candidate's support with the
// independent IsGenSubseq test. Quadratic and intended only as a test oracle.
func MineBruteForce(db *Database, p Params) []Pattern {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	cands := make(map[string]struct{})
	for _, t := range db.Seqs {
		EnumerateGenSubseqs(db.Forest, t, p.Gamma, 2, p.Lambda, nil, func(s Sequence) bool {
			cands[Key(s)] = struct{}{}
			return true
		})
	}
	var out []Pattern
	for k := range cands {
		s := FromKey(k)
		if f := Frequency(db, s, p.Gamma); f >= p.Sigma {
			out = append(out, Pattern{Items: s, Support: f})
		}
	}
	SortPatterns(out)
	return out
}

// SortPatterns orders patterns by length, then lexicographically by item id,
// providing the canonical output order used across the repository.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool { return lessSeq(ps[i].Items, ps[j].Items) })
}

// SortPatternsSeq orders raw sequences canonically.
func SortPatternsSeq(ss []Sequence) {
	sort.Slice(ss, func(i, j int) bool { return lessSeq(ss[i], ss[j]) })
}

func lessSeq(a, b Sequence) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// EqualPatterns reports whether two canonical pattern lists are identical.
func EqualPatterns(a, b []Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Support != b[i].Support || len(a[i].Items) != len(b[i].Items) {
			return false
		}
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				return false
			}
		}
	}
	return true
}

// DiffPatterns returns a human-readable diff of two canonical pattern lists
// (for test failure messages).
func DiffPatterns(f *hierarchy.Forest, got, want []Pattern) string {
	gm := map[string]int64{}
	wm := map[string]int64{}
	for _, p := range got {
		gm[Key(p.Items)] = p.Support
	}
	for _, p := range want {
		wm[Key(p.Items)] = p.Support
	}
	var b strings.Builder
	for k, v := range wm {
		if g, ok := gm[k]; !ok {
			fmt.Fprintf(&b, "missing: %s (%d)\n", String(f, FromKey(k)), v)
		} else if g != v {
			fmt.Fprintf(&b, "support mismatch: %s got %d want %d\n", String(f, FromKey(k)), g, v)
		}
	}
	for k, v := range gm {
		if _, ok := wm[k]; !ok {
			fmt.Fprintf(&b, "spurious: %s (%d)\n", String(f, FromKey(k)), v)
		}
	}
	return b.String()
}

package gsm_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/paperex"
)

func seq(t testing.TB, f *hierarchy.Forest, s string) gsm.Sequence {
	t.Helper()
	return paperex.Seq(f, s)
}

func TestParamsValidate(t *testing.T) {
	ok := gsm.Params{Sigma: 1, Gamma: 0, Lambda: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []gsm.Params{
		{Sigma: 0, Gamma: 0, Lambda: 2},
		{Sigma: 1, Gamma: -1, Lambda: 2},
		{Sigma: 1, Gamma: 0, Lambda: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("params %+v should be invalid", bad)
		}
	}
}

func TestDatabaseValidate(t *testing.T) {
	db := paperex.Database()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	db.Seqs = append(db.Seqs, gsm.Sequence{hierarchy.Item(10000)})
	if err := db.Validate(); err == nil {
		t.Fatal("out-of-vocabulary item not caught")
	}
	if err := (&gsm.Database{}).Validate(); err == nil {
		t.Fatal("missing forest not caught")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := paperex.Forest()
	s := seq(t, f, "a b1 d2 B")
	got := gsm.FromKey(gsm.Key(s))
	if gsm.String(f, got) != "a b1 d2 B" {
		t.Fatalf("round trip = %q", gsm.String(f, got))
	}
	if len(gsm.FromKey(gsm.Key(nil))) != 0 {
		t.Fatal("empty round trip failed")
	}
}

// §2 subsequence examples on T5 = a b12 d1 c.
func TestIsSubseqPaperExamples(t *testing.T) {
	f := paperex.Forest()
	t5 := seq(t, f, "a b12 d1 c")
	cases := []struct {
		s     string
		gamma int
		want  bool
	}{
		{"a", 0, true},
		{"a b12", 0, true},
		{"a d1 c", 1, true},
		{"b12 a", 1000, false},
		{"a d1 c", 0, false},
	}
	for _, c := range cases {
		if got := gsm.IsSubseq(seq(t, f, c.s), t5, c.gamma); got != c.want {
			t.Errorf("IsSubseq(%q, T5, γ=%d) = %v, want %v", c.s, c.gamma, got, c.want)
		}
	}
}

// §2 generalized subsequence examples: ad1 ⊑1 T5 and aD ⊑1 T5.
func TestIsGenSubseqPaperExamples(t *testing.T) {
	f := paperex.Forest()
	t5 := seq(t, f, "a b12 d1 c")
	cases := []struct {
		s     string
		gamma int
		want  bool
	}{
		{"a d1", 1, true},
		{"a D", 1, true},
		{"a D", 0, false}, // b12 in between
		{"a b1", 0, true}, // b12 generalizes to b1, adjacent
		{"a B c", 1, true},
		{"a B c", 0, false},
		{"D a", 2, false}, // order matters
		{"a b12 d1 c", 0, true},
		{"a b1 D c", 0, true}, // full generalization, same length
	}
	for _, c := range cases {
		if got := gsm.IsGenSubseq(f, seq(t, f, c.s), t5, c.gamma); got != c.want {
			t.Errorf("IsGenSubseq(%q, T5, γ=%d) = %v, want %v", c.s, c.gamma, got, c.want)
		}
	}
}

// Support examples from §2: Sup0(aBc) = {T2}, Sup1(aBc) = {T2, T5}.
func TestFrequencyPaperExamples(t *testing.T) {
	db := paperex.Database()
	f := db.Forest
	if got := gsm.Frequency(db, seq(t, f, "a B c"), 0); got != 1 {
		t.Errorf("f0(aBc) = %d, want 1", got)
	}
	if got := gsm.Frequency(db, seq(t, f, "a B c"), 1); got != 2 {
		t.Errorf("f1(aBc) = %d, want 2", got)
	}
	if got := gsm.Frequency(db, seq(t, f, "a B"), 1); got != 3 {
		t.Errorf("f1(aB) = %d, want 3", got)
	}
	if got := gsm.Frequency(db, seq(t, f, "b1 D"), 1); got != 2 {
		t.Errorf("f1(b1D) = %d, want 2", got)
	}
}

// G1(T4) from §3.3: {b11, a, e, b1, B} as a set.
func TestItemGeneralizations(t *testing.T) {
	f := paperex.Forest()
	got := gsm.ItemGeneralizations(f, seq(t, f, "b11 a e a"))
	want := map[string]bool{"b11": true, "a": true, "e": true, "b1": true, "B": true}
	if len(got) != len(want) {
		t.Fatalf("G1(T4) = %d items, want %d", len(got), len(want))
	}
	for _, w := range got {
		if !want[f.Name(w)] {
			t.Errorf("unexpected item %s in G1(T4)", f.Name(w))
		}
	}
	// Ascending order.
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("G1 not sorted")
		}
	}
}

// G3(T4) from §3.2: exactly the 19 listed sequences for γ=1, λ=3.
func TestEnumerateG3T4(t *testing.T) {
	f := paperex.Forest()
	t4 := seq(t, f, "b11 a e a")
	got := gsm.GenSubseqSet(f, t4, 1, 2, 3)
	wantStrs := []string{
		"b11 a", "b11 e", "a e", "a a", "e a", "b11 a e", "b11 a a",
		"b11 e a", "a e a",
		"b1 a", "b1 e", "b1 a e", "b1 a a", "b1 e a",
		"B a", "B e", "B a e", "B a a", "B e a",
	}
	want := make([]gsm.Sequence, len(wantStrs))
	for i, s := range wantStrs {
		want[i] = seq(t, f, s)
	}
	gsm.SortPatternsSeq(want)
	if len(got) != len(want) {
		t.Fatalf("|G3(T4)| = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if gsm.String(f, got[i]) != gsm.String(f, want[i]) {
			t.Fatalf("G3(T4)[%d] = %q, want %q", i, gsm.String(f, got[i]), gsm.String(f, want[i]))
		}
	}
}

// G_{b1,2}(T1) from Eq. (3): {ab1, b1a, b1b1, b1B, Bb1} — checked here via
// plain enumeration plus pivot filtering to cross-validate the set.
func TestEnumeratePivotFilter(t *testing.T) {
	f := paperex.Forest()
	t1 := seq(t, f, "a b1 a b1")
	all := gsm.GenSubseqSet(f, t1, 1, 2, 2)
	// Order of the paper: a < B < b1; pivot b1 = largest item must appear.
	b1, _ := f.Lookup("b1")
	var got []string
	for _, s := range all {
		hasPivot := false
		for _, w := range s {
			if w == b1 {
				hasPivot = true
			}
		}
		if hasPivot {
			got = append(got, gsm.String(f, s))
		}
	}
	want := map[string]bool{"a b1": true, "b1 a": true, "b1 b1": true, "b1 B": true, "B b1": true}
	if len(got) != len(want) {
		t.Fatalf("pivot sequences = %v, want 5 of %v", got, want)
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected pivot sequence %q", s)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	f := paperex.Forest()
	t1 := seq(t, f, "a b1 a b1")
	n := 0
	gsm.EnumerateGenSubseqs(f, t1, 1, 2, 3, nil, func(s gsm.Sequence) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop failed: %d callbacks", n)
	}
}

func TestEnumerateAcceptFilter(t *testing.T) {
	f := paperex.Forest()
	t4 := seq(t, f, "b11 a e a")
	// Block position 2 (item e): like a blank — gaps still count positions.
	got := gsm.GenSubseqSetFiltered(f, t4, 1, 2, 3, func(i int) bool { return i != 2 })
	for _, s := range got {
		for _, w := range s {
			if f.Name(w) == "e" {
				t.Fatalf("blanked item leaked into %q", gsm.String(f, s))
			}
		}
	}
	// aa must still be present: positions 1 and 3, gap 1.
	found := false
	for _, s := range got {
		if gsm.String(f, s) == "a a" {
			found = true
		}
	}
	if !found {
		t.Fatal("a a missing despite valid gap across the blank")
	}
}

// The running example end-to-end on the oracle (§2): σ=2, γ=1, λ=3.
func TestMineBruteForcePaperExample(t *testing.T) {
	db := paperex.Database()
	got := gsm.MineBruteForce(db, paperex.Params())
	want := paperex.Expected(db.Forest)
	if !gsm.EqualPatterns(got, want) {
		t.Fatalf("oracle mismatch:\n%s", gsm.DiffPatterns(db.Forest, got, want))
	}
}

// --- randomized cross-checks -------------------------------------------

// randDB builds a small random database over a random forest.
func randDB(r *rand.Rand) *gsm.Database {
	b := hierarchy.NewBuilder()
	n := 4 + r.Intn(8)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		b.Add(names[i])
	}
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			b.AddEdge(names[i], names[r.Intn(i)])
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := &gsm.Database{Forest: f}
	numSeqs := 2 + r.Intn(6)
	for i := 0; i < numSeqs; i++ {
		l := 1 + r.Intn(7)
		s := make(gsm.Sequence, l)
		for j := range s {
			s[j] = hierarchy.Item(r.Intn(n))
		}
		db.Seqs = append(db.Seqs, s)
	}
	return db
}

// Property: S ∈ G_λ(T) ⇔ S ⊑γ T (for |S| within bounds) — the enumeration
// and the subsequence test must agree.
func TestQuickEnumerationMatchesSubseqTest(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		f := db.Forest
		gamma := r.Intn(3)
		lambda := 2 + r.Intn(2)
		tseq := db.Seqs[0]
		set := make(map[string]bool)
		gsm.EnumerateGenSubseqs(f, tseq, gamma, 2, lambda, nil, func(s gsm.Sequence) bool {
			set[gsm.Key(s)] = true
			return true
		})
		// Every enumerated sequence must pass the independent test.
		for k := range set {
			if !gsm.IsGenSubseq(f, gsm.FromKey(k), tseq, gamma) {
				return false
			}
		}
		// Sample random candidate sequences; set membership must match test.
		for trial := 0; trial < 60; trial++ {
			l := 2 + r.Intn(lambda-1)
			s := make(gsm.Sequence, l)
			for j := range s {
				s[j] = hierarchy.Item(r.Intn(f.Size()))
			}
			if gsm.IsGenSubseq(f, s, tseq, gamma) != set[gsm.Key(s)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property (Lemma 1, support monotonicity): if S1 ⊑γ S2 then
// f(S1) ≥ f(S2).
func TestQuickSupportMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		f := db.Forest
		gamma := r.Intn(3)
		// Draw S2 as a random generalized subsequence of a random database
		// sequence, then S1 as a random generalized subsequence of S2.
		tseq := db.Seqs[r.Intn(len(db.Seqs))]
		var all2 []gsm.Sequence
		gsm.EnumerateGenSubseqs(f, tseq, gamma, 2, 4, nil, func(s gsm.Sequence) bool {
			all2 = append(all2, append(gsm.Sequence(nil), s...))
			return true
		})
		if len(all2) == 0 {
			return true
		}
		s2 := all2[r.Intn(len(all2))]
		var all1 []gsm.Sequence
		gsm.EnumerateGenSubseqs(f, s2, gamma, 1, len(s2), nil, func(s gsm.Sequence) bool {
			all1 = append(all1, append(gsm.Sequence(nil), s...))
			return true
		})
		s1 := all1[r.Intn(len(all1))]
		return gsm.Frequency(db, s1, gamma) >= gsm.Frequency(db, s2, gamma)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// Property: plain subsequence implies generalized subsequence (§2).
func TestQuickSubseqImpliesGenSubseq(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		f := db.Forest
		gamma := r.Intn(3)
		tseq := db.Seqs[0]
		for trial := 0; trial < 40; trial++ {
			l := 1 + r.Intn(4)
			s := make(gsm.Sequence, l)
			for j := range s {
				s[j] = hierarchy.Item(r.Intn(f.Size()))
			}
			if gsm.IsSubseq(s, tseq, gamma) && !gsm.IsGenSubseq(f, s, tseq, gamma) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

package datagen_test

import (
	"bytes"
	"strings"
	"testing"

	"lash/internal/datagen"
	"lash/internal/hierarchy"
)

func TestWriteSequences(t *testing.T) {
	c := datagen.GenerateText(datagen.TextConfig{Sentences: 30, Lemmas: 40, Seed: 5})
	db, err := c.Build(datagen.HierarchyLP)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := datagen.WriteSequences(&buf, db); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(db.Seqs) {
		t.Fatalf("%d lines for %d sequences", len(lines), len(db.Seqs))
	}
	for i, line := range lines {
		if len(strings.Fields(line)) != len(db.Seqs[i]) {
			t.Fatalf("line %d has %d fields, want %d", i, len(strings.Fields(line)), len(db.Seqs[i]))
		}
	}
}

func TestWriteHierarchy(t *testing.T) {
	c := datagen.GenerateMarket(datagen.MarketConfig{Users: 50, Products: 60, Seed: 5})
	db, err := c.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := datagen.WriteHierarchy(&buf, db.Forest); err != nil {
		t.Fatal(err)
	}
	// One line per non-root item; each line "child<TAB>parent" must match
	// the forest.
	nonRoots := 0
	for i := 0; i < db.Forest.Size(); i++ {
		if !db.Forest.IsRoot(hierarchy.Item(i)) {
			nonRoots++
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != nonRoots {
		t.Fatalf("%d edges for %d non-root items", len(lines), nonRoots)
	}
	for _, line := range lines {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("malformed edge line %q", line)
		}
		child, ok1 := db.Forest.Lookup(parts[0])
		parent, ok2 := db.Forest.Lookup(parts[1])
		if !ok1 || !ok2 || db.Forest.Parent(child) != parent {
			t.Fatalf("edge %q does not match forest", line)
		}
	}
}

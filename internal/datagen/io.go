package datagen

import (
	"bufio"
	"io"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// WriteSequences writes one sequence per line (items separated by single
// spaces), the textual interchange format understood by the lash CLI and
// lash.DatabaseBuilder.ReadSequences.
func WriteSequences(w io.Writer, db *gsm.Database) error {
	bw := bufio.NewWriter(w)
	for _, seq := range db.Seqs {
		for i, it := range seq {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(db.Forest.Name(it)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteHierarchy writes one "child<TAB>parent" edge per line, the format
// understood by the lash CLI and lash.DatabaseBuilder.ReadHierarchy.
func WriteHierarchy(w io.Writer, f *hierarchy.Forest) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < f.Size(); i++ {
		child := hierarchy.Item(i)
		p := f.Parent(child)
		if p == hierarchy.NoItem {
			continue
		}
		if _, err := bw.WriteString(f.Name(child)); err != nil {
			return err
		}
		if err := bw.WriteByte('\t'); err != nil {
			return err
		}
		if _, err := bw.WriteString(f.Name(p)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

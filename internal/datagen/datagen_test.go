package datagen_test

import (
	"testing"

	"lash/internal/datagen"
	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

func textCfg() datagen.TextConfig {
	return datagen.TextConfig{Sentences: 400, Lemmas: 300, Seed: 7}
}

func TestTextDeterminism(t *testing.T) {
	a := datagen.GenerateText(textCfg())
	b := datagen.GenerateText(textCfg())
	if len(a.Sentences) != len(b.Sentences) || len(a.Tokens) != len(b.Tokens) {
		t.Fatal("same seed produced different corpora")
	}
	for i := range a.Sentences {
		for j := range a.Sentences[i] {
			if a.Sentences[i][j] != b.Sentences[i][j] {
				t.Fatal("same seed produced different sentences")
			}
		}
	}
	c := datagen.GenerateText(datagen.TextConfig{Sentences: 400, Lemmas: 300, Seed: 8})
	same := len(a.Sentences) == len(c.Sentences)
	if same {
		diff := false
		for i := range a.Sentences {
			if len(a.Sentences[i]) != len(c.Sentences[i]) {
				diff = true
				break
			}
		}
		if !diff {
			// Extremely unlikely to have identical shape AND content.
			t.Log("warning: different seeds produced same sentence shapes")
		}
	}
}

func TestTextShape(t *testing.T) {
	c := datagen.GenerateText(textCfg())
	if len(c.Sentences) != 400 {
		t.Fatalf("%d sentences", len(c.Sentences))
	}
	total := 0
	for _, s := range c.Sentences {
		if len(s) < 1 || len(s) > 80 {
			t.Fatalf("sentence length %d outside [1,80]", len(s))
		}
		total += len(s)
	}
	avg := float64(total) / float64(len(c.Sentences))
	if avg < 15 || avg > 27 {
		t.Errorf("average sentence length %.1f far from 21", avg)
	}
}

func TestTextHierarchyVariants(t *testing.T) {
	c := datagen.GenerateText(textCfg())
	wantLevels := map[datagen.TextHierarchy]int{
		datagen.HierarchyL:   2,
		datagen.HierarchyP:   2,
		datagen.HierarchyLP:  3,
		datagen.HierarchyCLP: 4,
	}
	for _, v := range datagen.TextHierarchies {
		db, err := c.Build(v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("%s: invalid db: %v", v, err)
		}
		st := db.Forest.ComputeStats()
		if st.Levels != wantLevels[v] {
			t.Errorf("%s: %d levels, want %d", v, st.Levels, wantLevels[v])
		}
		if v == datagen.HierarchyP && st.RootItems != 22 {
			t.Errorf("P: %d roots, want 22 POS tags", st.RootItems)
		}
		if v == datagen.HierarchyL && st.IntermediateItems != 0 {
			t.Errorf("L: %d intermediate items, want 0 (2-level hierarchy)", st.IntermediateItems)
		}
		if v == datagen.HierarchyCLP {
			if st.IntermediateItems == 0 {
				t.Error("CLP: no intermediate items")
			}
		}
	}
}

// Input sequences must contain items from different hierarchy levels (the
// paper's motivation for generalized input sequences).
func TestTextMultiLevelInputs(t *testing.T) {
	c := datagen.GenerateText(textCfg())
	db, err := c.Build(datagen.HierarchyLP)
	if err != nil {
		t.Fatal(err)
	}
	levels := map[int]bool{}
	for _, s := range db.Seqs {
		for _, w := range s {
			levels[db.Forest.Level(w)] = true
		}
	}
	// Level 2 = inflected surfaces, level 1 = lemma-identical surfaces.
	if !levels[2] || !levels[1] {
		t.Fatalf("input levels = %v; want items at levels 1 and 2", levels)
	}
}

// Zipf popularity: the most frequent lemma must dominate.
func TestTextZipfSkew(t *testing.T) {
	c := datagen.GenerateText(textCfg())
	db, err := c.Build(datagen.HierarchyL)
	if err != nil {
		t.Fatal(err)
	}
	freq := flist.ComputeFrequencies(db)
	var max, sum int64
	for _, f := range freq {
		if f > max {
			max = f
		}
		sum += f
	}
	if max < int64(len(db.Seqs))/4 {
		t.Errorf("no dominant item: max doc-freq %d of %d sequences", max, len(db.Seqs))
	}
	if sum == 0 {
		t.Fatal("empty frequencies")
	}
}

func TestCharacteristics(t *testing.T) {
	c := datagen.GenerateText(textCfg())
	db, err := c.Build(datagen.HierarchyP)
	if err != nil {
		t.Fatal(err)
	}
	st := datagen.Characteristics(db)
	if st.Sequences != 400 || st.TotalItems <= 0 || st.UniqueItems <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxLength > 80 || st.AvgLength <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueItems > int(st.TotalItems) {
		t.Fatal("unique > total")
	}
}

func marketCfg() datagen.MarketConfig {
	return datagen.MarketConfig{Users: 500, Products: 800, Roots: 20, Seed: 11}
}

func TestMarketDeterminism(t *testing.T) {
	a := datagen.GenerateMarket(marketCfg())
	b := datagen.GenerateMarket(marketCfg())
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatal("nondeterministic sessions")
	}
	for i := range a.Sessions {
		for j := range a.Sessions[i] {
			if a.Sessions[i][j] != b.Sessions[i][j] {
				t.Fatal("nondeterministic session content")
			}
		}
	}
}

func TestMarketHierarchyDepths(t *testing.T) {
	c := datagen.GenerateMarket(marketCfg())
	prevItems := 0
	for _, levels := range datagen.MarketLevels {
		db, err := c.Build(levels)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("h%d: %v", levels, err)
		}
		st := db.Forest.ComputeStats()
		if st.Levels > levels {
			t.Errorf("h%d: %d levels", levels, st.Levels)
		}
		if st.Levels < 2 {
			t.Errorf("h%d: flat hierarchy", levels)
		}
		// Deeper variants add intermediate categories (Table 2's trend).
		if st.TotalItems < prevItems {
			t.Errorf("h%d: item count decreased: %d < %d", levels, st.TotalItems, prevItems)
		}
		prevItems = st.TotalItems
	}
	if _, err := c.Build(1); err == nil {
		t.Error("levels=1 accepted")
	}
	if _, err := c.Build(9); err == nil {
		t.Error("levels=9 accepted")
	}
}

func TestMarketSessionShape(t *testing.T) {
	c := datagen.GenerateMarket(marketCfg())
	total := 0
	for _, s := range c.Sessions {
		if len(s) < 1 || len(s) > 120 {
			t.Fatalf("session length %d", len(s))
		}
		total += len(s)
	}
	avg := float64(total) / float64(len(c.Sessions))
	if avg < 2.5 || avg > 8 {
		t.Errorf("average session length %.2f far from 4.5", avg)
	}
}

// h2 must collapse every product to a direct child of a root.
func TestMarketH2Shape(t *testing.T) {
	c := datagen.GenerateMarket(marketCfg())
	db, err := c.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Seqs {
		for _, w := range s {
			p := db.Forest.Parent(w)
			if p == hierarchy.NoItem {
				t.Fatal("product without category")
			}
			if !db.Forest.IsRoot(p) {
				t.Fatalf("h2 product parent %q is not a root", db.Forest.Name(p))
			}
		}
	}
}

func TestSample(t *testing.T) {
	c := datagen.GenerateMarket(marketCfg())
	db, err := c.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	half := datagen.Sample(db, 0.5)
	if len(half.Seqs) != len(db.Seqs)/2 {
		t.Fatalf("50%% sample has %d of %d", len(half.Seqs), len(db.Seqs))
	}
	if datagen.Sample(db, 0).Seqs == nil {
		t.Fatal("0%% sample must keep at least one sequence")
	}
	if got := datagen.Sample(db, 2.0); len(got.Seqs) != len(db.Seqs) {
		t.Fatal("oversample must clamp")
	}
}

// End-to-end sanity: mining a small generated corpus works and produces
// generalized patterns (items above level-max of inputs).
func TestGeneratedCorpusMines(t *testing.T) {
	c := datagen.GenerateText(datagen.TextConfig{Sentences: 150, Lemmas: 60, Seed: 3})
	db, err := c.Build(datagen.HierarchyLP)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := flist.BuildFromDB(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fl.NumFrequent() == 0 {
		t.Fatal("no frequent items in generated corpus at σ=10")
	}
	// POS roots must be frequent (they generalize everything).
	foundPOS := false
	for r := 0; r < fl.NumFrequent(); r++ {
		w := fl.VocabOf(flist.Rank(r))
		if db.Forest.IsRoot(w) && db.Forest.Level(w) == 0 {
			foundPOS = true
			break
		}
	}
	if !foundPOS {
		t.Error("no POS tag frequent")
	}
	_ = gsm.Params{}
}

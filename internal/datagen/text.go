// Package datagen generates the synthetic corpora that stand in for the
// paper's proprietary datasets (§6.1, Tables 1-2):
//
//   - a natural-language-like corpus (text.go) replacing the New York Times
//     corpus + Stanford CoreNLP annotations, with the four syntactic
//     hierarchy variants L, P, LP, CLP;
//   - a product-session corpus (market.go) replacing the Amazon review
//     dataset, with category hierarchies of depth 2-8 (h2…h8).
//
// Both generators are fully deterministic given a seed and reproduce the
// statistical properties LASH's experiments depend on: Zipf item skew,
// realistic sequence-length distributions, multi-level input items, and the
// per-variant hierarchy shapes.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// TextHierarchy selects one of the paper's syntactic hierarchy variants.
type TextHierarchy int

const (
	// HierarchyL links each word to its lemma (2 levels).
	HierarchyL TextHierarchy = iota
	// HierarchyP links each word to its part-of-speech tag (2 levels).
	HierarchyP
	// HierarchyLP links word → lemma → POS (3 levels).
	HierarchyLP
	// HierarchyCLP links word → lowercase form → lemma → POS (4 levels).
	HierarchyCLP
)

// String names the variant as in the paper.
func (h TextHierarchy) String() string {
	switch h {
	case HierarchyL:
		return "L"
	case HierarchyP:
		return "P"
	case HierarchyLP:
		return "LP"
	case HierarchyCLP:
		return "CLP"
	}
	return fmt.Sprintf("TextHierarchy(%d)", int(h))
}

// TextHierarchies lists all four variants in the paper's order.
var TextHierarchies = []TextHierarchy{HierarchyL, HierarchyP, HierarchyLP, HierarchyCLP}

// TextConfig parameterizes the synthetic corpus.
type TextConfig struct {
	Sentences int     // number of sentences (input sequences)
	Lemmas    int     // lemma vocabulary size
	AvgLen    float64 // mean sentence length (paper: 21.1); default 21
	MaxLen    int     // hard cap on sentence length; default 80
	ZipfS     float64 // Zipf exponent for lemma popularity; default 1.1
	Seed      int64
}

func (c TextConfig) withDefaults() TextConfig {
	if c.Sentences <= 0 {
		c.Sentences = 1000
	}
	if c.Lemmas <= 0 {
		c.Lemmas = 1000
	}
	if c.AvgLen <= 0 {
		c.AvgLen = 21
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 80
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	return c
}

// posTags are 22 part-of-speech roots, matching the paper's NYT-P hierarchy
// (22 root items). Weights sum to 1 and loosely follow English tag
// frequencies.
var posTags = []struct {
	tag    string
	weight float64
	forms  int // inflected surface forms per lemma of this tag
}{
	{"NN", 0.16, 2}, {"IN", 0.12, 1}, {"NNP", 0.10, 2}, {"DT", 0.09, 1},
	{"JJ", 0.07, 3}, {"NNS", 0.06, 2}, {"VB", 0.05, 4}, {"RB", 0.05, 2},
	{"VBD", 0.04, 4}, {"PRP", 0.04, 1}, {"CC", 0.035, 1}, {"VBZ", 0.03, 4},
	{"VBN", 0.03, 4}, {"CD", 0.03, 1}, {"VBG", 0.025, 4}, {"TO", 0.02, 1},
	{"MD", 0.02, 2}, {"PRP$", 0.02, 1}, {"WDT", 0.015, 1}, {"UH", 0.01, 1},
	{"SYM", 0.01, 1}, {"FW", 0.01, 1},
}

// Token is one distinct surface form with its annotation chain.
type Token struct {
	Surface string // as it appears in a sentence, possibly capitalized
	Lower   string // lowercase form (== Surface when not capitalized)
	Lemma   string
	POS     string
}

// TextCorpus is a generated corpus: sentences of token ids plus the token
// dictionary. Build derives a hierarchy variant + database from it.
type TextCorpus struct {
	Sentences [][]int32
	Tokens    []Token

	tokenIDs map[string]int32
}

// inflectionSuffixes decorate lemmas into surface forms; form 0 is the lemma
// itself, so a large share of tokens are items at the lemma level of the
// hierarchy (the paper's "items appearing in the input sequences come from
// different levels").
var inflectionSuffixes = []string{"", "s", "ed", "ing"}

// GenerateText builds a deterministic synthetic corpus.
func GenerateText(cfg TextConfig) *TextCorpus {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Assign each lemma a POS tag (weighted) and a form count.
	type lemmaInfo struct {
		name  string
		pos   string
		forms int
	}
	lemmas := make([]lemmaInfo, cfg.Lemmas)
	for i := range lemmas {
		tag := posTags[len(posTags)-1]
		if i < len(posTags) {
			// The most popular lemmas cover every tag once, so all 22 POS
			// roots exist in any non-trivial corpus (as in NYT-P, Table 2).
			tag = posTags[i]
		} else {
			x := r.Float64()
			acc := 0.0
			for _, t := range posTags {
				acc += t.weight
				if x < acc {
					tag = t
					break
				}
			}
		}
		lemmas[i] = lemmaInfo{name: fmt.Sprintf("w%d", i), pos: tag.tag, forms: tag.forms}
	}

	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Lemmas-1))
	c := &TextCorpus{tokenIDs: make(map[string]int32)}

	intern := func(t Token) int32 {
		if id, ok := c.tokenIDs[t.Surface]; ok {
			return id
		}
		id := int32(len(c.Tokens))
		c.Tokens = append(c.Tokens, t)
		c.tokenIDs[t.Surface] = id
		return id
	}

	for s := 0; s < cfg.Sentences; s++ {
		l := int(r.NormFloat64()*cfg.AvgLen/2.5 + cfg.AvgLen)
		if l < 1 {
			l = 1
		}
		if l > cfg.MaxLen {
			l = cfg.MaxLen
		}
		sent := make([]int32, l)
		for i := 0; i < l; i++ {
			lm := lemmas[zipf.Uint64()]
			form := 0
			if lm.forms > 1 {
				form = r.Intn(lm.forms)
			}
			lower := lm.name + inflectionSuffixes[form]
			surface := lower
			// Sentence-initial capitalization plus occasional proper-noun
			// style capitals create the "case" level of CLP.
			if i == 0 || r.Float64() < 0.02 {
				surface = "W" + lower[1:]
			}
			sent[i] = intern(Token{Surface: surface, Lower: lower, Lemma: lm.name, POS: lm.pos})
		}
		c.Sentences = append(c.Sentences, sent)
	}
	return c
}

// Build materializes a hierarchy variant and the corresponding database.
func (c *TextCorpus) Build(variant TextHierarchy) (*gsm.Database, error) {
	b := hierarchy.NewBuilder()
	var chain []string
	for _, t := range c.Tokens {
		switch variant {
		case HierarchyL:
			chain = append(chain[:0], t.Surface, t.Lemma)
		case HierarchyP:
			chain = append(chain[:0], t.Surface, t.POS)
		case HierarchyLP:
			chain = append(chain[:0], t.Surface, t.Lemma, t.POS)
		case HierarchyCLP:
			chain = append(chain[:0], t.Surface, t.Lower, t.Lemma, t.POS)
		default:
			return nil, fmt.Errorf("datagen: unknown hierarchy variant %d", int(variant))
		}
		addChain(b, chain)
	}
	f, err := b.Build()
	if err != nil {
		return nil, err
	}
	db := &gsm.Database{Forest: f}
	for _, sent := range c.Sentences {
		seq := make(gsm.Sequence, len(sent))
		for i, tid := range sent {
			w, ok := f.Lookup(c.Tokens[tid].Surface)
			if !ok {
				return nil, fmt.Errorf("datagen: token %q not interned", c.Tokens[tid].Surface)
			}
			seq[i] = w
		}
		db.Seqs = append(db.Seqs, seq)
	}
	return db, nil
}

// addChain interns child→parent edges along a specialization chain,
// skipping adjacent duplicates (a surface form equal to its lemma IS the
// lemma node — that is what puts input items at different hierarchy
// levels).
func addChain(b *hierarchy.Builder, chain []string) {
	prev := chain[0]
	b.Add(prev)
	for _, next := range chain[1:] {
		if next == prev {
			continue
		}
		b.AddEdge(prev, next)
		prev = next
	}
}

// DatasetStats mirrors Table 1 of the paper.
type DatasetStats struct {
	Sequences   int
	AvgLength   float64
	MaxLength   int
	TotalItems  int64
	UniqueItems int
}

// Characteristics computes Table-1 statistics for a database.
func Characteristics(db *gsm.Database) DatasetStats {
	s := DatasetStats{Sequences: len(db.Seqs)}
	seen := make(map[hierarchy.Item]struct{})
	for _, t := range db.Seqs {
		s.TotalItems += int64(len(t))
		if len(t) > s.MaxLength {
			s.MaxLength = len(t)
		}
		for _, w := range t {
			seen[w] = struct{}{}
		}
	}
	s.UniqueItems = len(seen)
	if s.Sequences > 0 {
		s.AvgLength = float64(s.TotalItems) / float64(s.Sequences)
	}
	s.AvgLength = math.Round(s.AvgLength*10) / 10
	return s
}

package datagen

import (
	"fmt"
	"math/rand"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// MarketConfig parameterizes the synthetic product-session corpus standing
// in for the Amazon review dataset (§6.1).
type MarketConfig struct {
	Users      int     // number of user sessions (input sequences)
	Products   int     // product catalogue size
	Roots      int     // top-level categories
	Branching  int     // children per category node used when sampling chains
	AvgSession float64 // mean session length (paper: 4.5)
	MaxSession int     // hard cap on session length; default 120
	ZipfS      float64 // Zipf exponent for product popularity; default 1.05
	Seed       int64
}

func (c MarketConfig) withDefaults() MarketConfig {
	if c.Users <= 0 {
		c.Users = 1000
	}
	if c.Products <= 0 {
		c.Products = 2000
	}
	if c.Roots <= 0 {
		c.Roots = 40
	}
	if c.Branching <= 0 {
		c.Branching = 6
	}
	if c.AvgSession <= 0 {
		c.AvgSession = 4.5
	}
	if c.MaxSession <= 0 {
		c.MaxSession = 120
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.05
	}
	return c
}

// chainLenWeights reflects the paper's observation that "most products in
// the Amazon product hierarchy have no more than 4 parent categories":
// weights for natural category-chain lengths 1..7.
var chainLenWeights = []float64{0.10, 0.25, 0.30, 0.20, 0.08, 0.05, 0.02}

// MarketCorpus is a generated product-session corpus. Build derives an
// h2..h8 hierarchy variant + database.
type MarketCorpus struct {
	Sessions [][]int32  // product indexes per user session
	Chains   [][]string // per product: its category chain, most general first
	Products []string   // product item names
}

// GenerateMarket builds a deterministic synthetic market corpus.
func GenerateMarket(cfg MarketConfig) *MarketCorpus {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	c := &MarketCorpus{}

	// Category chains: root "cN", children "cN/x", grandchildren "cN/x/y"…
	// Name identity keeps the implied tree consistent across products.
	c.Chains = make([][]string, cfg.Products)
	c.Products = make([]string, cfg.Products)
	for p := range c.Products {
		c.Products[p] = fmt.Sprintf("prod%d", p)
		x := r.Float64()
		depth := len(chainLenWeights)
		acc := 0.0
		for d, w := range chainLenWeights {
			acc += w
			if x < acc {
				depth = d + 1
				break
			}
		}
		chain := make([]string, depth)
		chain[0] = fmt.Sprintf("c%d", r.Intn(cfg.Roots))
		for d := 1; d < depth; d++ {
			chain[d] = fmt.Sprintf("%s/%d", chain[d-1], r.Intn(cfg.Branching))
		}
		c.Chains[p] = chain
	}

	// Sessions: heavy-tailed lengths around AvgSession, Zipf products.
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Products-1))
	for u := 0; u < cfg.Users; u++ {
		var l int
		if r.Float64() < 0.65 {
			l = 1 + r.Intn(4) // most users review a handful of products
		} else {
			l = 4 + int(r.ExpFloat64()*float64(cfg.AvgSession)*1.6)
		}
		if l > cfg.MaxSession {
			l = cfg.MaxSession
		}
		sess := make([]int32, l)
		for i := range sess {
			sess[i] = int32(zipf.Uint64())
		}
		c.Sessions = append(c.Sessions, sess)
	}
	return c
}

// MaxLevels is the deepest market hierarchy the generator produces (h8:
// product + up to 7 category levels).
const MaxLevels = 8

// Build materializes the h<levels> hierarchy variant (levels ∈ [2,8]): each
// product is attached to the most specific of its first levels-1 categories;
// products with shorter natural chains keep their full chain (this is why
// h8 differs little from h4, as the paper notes).
func (c *MarketCorpus) Build(levels int) (*gsm.Database, error) {
	if levels < 2 || levels > MaxLevels {
		return nil, fmt.Errorf("datagen: market hierarchy levels must be in [2,%d], got %d", MaxLevels, levels)
	}
	b := hierarchy.NewBuilder()
	var chain []string
	for p, name := range c.Products {
		cats := c.Chains[p]
		if keep := levels - 1; len(cats) > keep {
			cats = cats[:keep]
		}
		// Chain from most specific to most general: product, cat_k, …, cat_1.
		chain = chain[:0]
		chain = append(chain, name)
		for i := len(cats) - 1; i >= 0; i-- {
			chain = append(chain, cats[i])
		}
		addChain(b, chain)
	}
	f, err := b.Build()
	if err != nil {
		return nil, err
	}
	db := &gsm.Database{Forest: f}
	for _, sess := range c.Sessions {
		seq := make(gsm.Sequence, len(sess))
		for i, p := range sess {
			w, ok := f.Lookup(c.Products[p])
			if !ok {
				return nil, fmt.Errorf("datagen: product %q not interned", c.Products[p])
			}
			seq[i] = w
		}
		db.Seqs = append(db.Seqs, seq)
	}
	return db, nil
}

// MarketLevels lists the hierarchy depths evaluated in the paper (Fig. 5e,
// Table 2): h2, h3, h4, h8.
var MarketLevels = []int{2, 3, 4, 8}

// Sample returns a database restricted to the first fraction of sequences
// (Fig. 6a/6c use 25%, 50%, 75% samples). The forest is shared.
func Sample(db *gsm.Database, fraction float64) *gsm.Database {
	n := int(float64(len(db.Seqs)) * fraction)
	if n < 1 {
		n = 1
	}
	if n > len(db.Seqs) {
		n = len(db.Seqs)
	}
	return &gsm.Database{Seqs: db.Seqs[:n], Forest: db.Forest}
}

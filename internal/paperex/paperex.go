// Package paperex provides the running example of the LASH paper (Fig. 1:
// example database and hierarchy; §2: expected mining output for σ=2, γ=1,
// λ=3) as shared golden-test fixtures for every mining implementation in the
// repository.
package paperex

import (
	"strings"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// Forest builds the hierarchy of Fig. 1(b): roots a, B, c, D, e, f;
// B→{b1,b2,b3}; b1→{b11,b12,b13}; D→{d1,d2}.
func Forest() *hierarchy.Forest {
	b := hierarchy.NewBuilder()
	for _, r := range []string{"a", "B", "c", "D", "e", "f"} {
		b.Add(r)
	}
	for _, e := range [][2]string{
		{"b1", "B"}, {"b2", "B"}, {"b3", "B"},
		{"b11", "b1"}, {"b12", "b1"}, {"b13", "b1"},
		{"d1", "D"}, {"d2", "D"},
	} {
		b.AddEdge(e[0], e[1])
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}

// Database returns the example database of Fig. 1(a) over Forest():
//
//	T1: a b1 a b1
//	T2: a b3 c c b2
//	T3: a c
//	T4: b11 a e a
//	T5: a b12 d1 c
//	T6: b13 f d2
func Database() *gsm.Database {
	f := Forest()
	rows := []string{
		"a b1 a b1",
		"a b3 c c b2",
		"a c",
		"b11 a e a",
		"a b12 d1 c",
		"b13 f d2",
	}
	db := &gsm.Database{Forest: f}
	for _, row := range rows {
		db.Seqs = append(db.Seqs, Seq(f, row))
	}
	return db
}

// Seq parses a space-separated item string against the forest; unknown items
// panic (fixtures must be spelled correctly).
func Seq(f *hierarchy.Forest, s string) gsm.Sequence {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Fields(s)
	out := make(gsm.Sequence, len(parts))
	for i, p := range parts {
		w, ok := f.Lookup(p)
		if !ok {
			panic("paperex: unknown item " + p)
		}
		out[i] = w
	}
	return out
}

// Params returns the running example's mining parameters: σ=2, γ=1, λ=3.
func Params() gsm.Params { return gsm.Params{Sigma: 2, Gamma: 1, Lambda: 3} }

// Expected returns the expected output of the running example (§2 of the
// paper): (aa,2), (ab1,2), (b1a,2), (aB,3), (Ba,2), (aBc,2), (Bc,2), (ac,2),
// (b1D,2), (BD,2) — in the repository's canonical order.
func Expected(f *hierarchy.Forest) []gsm.Pattern {
	rows := []struct {
		s string
		n int64
	}{
		{"a a", 2}, {"a b1", 2}, {"b1 a", 2}, {"a B", 3}, {"B a", 2},
		{"a B c", 2}, {"B c", 2}, {"a c", 2}, {"b1 D", 2}, {"B D", 2},
	}
	out := make([]gsm.Pattern, len(rows))
	for i, r := range rows {
		out[i] = gsm.Pattern{Items: Seq(f, r.s), Support: r.n}
	}
	gsm.SortPatterns(out)
	return out
}

// GeneralizedFList returns the paper's generalized f-list for σ=2 (Fig. 2):
// a:5, B:5, b1:4, c:3, D:2, in the paper's total order (small to large).
func GeneralizedFList() []struct {
	Name string
	Freq int64
} {
	return []struct {
		Name string
		Freq int64
	}{
		{"a", 5}, {"B", 5}, {"b1", 4}, {"c", 3}, {"D", 2},
	}
}

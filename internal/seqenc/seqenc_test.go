package seqenc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/seqenc"
)

func TestSeqRoundTrip(t *testing.T) {
	cases := [][]flist.Rank{
		{},
		{0},
		{0, 1, 2},
		{flist.NoRank},
		{flist.NoRank, flist.NoRank, flist.NoRank},
		{0, flist.NoRank, 1},
		{5, flist.NoRank, flist.NoRank, 7, flist.NoRank},
		{1 << 20, 0, flist.NoRank, 1 << 27},
	}
	for _, c := range cases {
		buf := seqenc.AppendSeq(nil, c)
		if len(buf) != seqenc.EncodedSize(c) {
			t.Errorf("EncodedSize(%v) = %d, actual %d", c, seqenc.EncodedSize(c), len(buf))
		}
		got, err := seqenc.DecodeSeq(nil, buf)
		if err != nil {
			t.Fatalf("decode %v: %v", c, err)
		}
		if len(got) != len(c) {
			t.Fatalf("round trip %v → %v", c, got)
		}
		for i := range c {
			if got[i] != c[i] {
				t.Fatalf("round trip %v → %v", c, got)
			}
		}
	}
}

func TestBlankRunCompression(t *testing.T) {
	// A run of blanks should cost ~1-2 bytes regardless of length.
	long := make([]flist.Rank, 100)
	for i := range long {
		long[i] = flist.NoRank
	}
	if n := seqenc.EncodedSize(long); n > 2 {
		t.Fatalf("run of 100 blanks costs %d bytes", n)
	}
}

func TestSmallRanksAreSmall(t *testing.T) {
	// Frequent items (small ranks) must take fewer bytes than rare ones —
	// the paper's variable-length encoding rationale (§6.1).
	small := seqenc.EncodedSize([]flist.Rank{0})
	big := seqenc.EncodedSize([]flist.Rank{1 << 25})
	if small >= big {
		t.Fatalf("rank 0 costs %d, rank 2^25 costs %d", small, big)
	}
	if small != 1 {
		t.Fatalf("rank 0 should cost 1 byte, got %d", small)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := seqenc.DecodeSeq(nil, []byte{0x80}); err == nil {
		t.Error("truncated varint accepted")
	}
	// Zero-length blank run: token 1.
	if _, err := seqenc.DecodeSeq(nil, []byte{0x01}); err == nil {
		t.Error("zero-length blank run accepted")
	}
	if _, err := seqenc.DecodeVocabSeq(nil, []byte{0x80}); err == nil {
		t.Error("truncated vocab varint accepted")
	}
}

func TestVocabRoundTrip(t *testing.T) {
	s := gsm.Sequence{0, 5, 300, 1 << 20}
	buf := seqenc.AppendVocabSeq(nil, s)
	if len(buf) != seqenc.VocabEncodedSize(s) {
		t.Fatalf("VocabEncodedSize = %d, actual %d", seqenc.VocabEncodedSize(s), len(buf))
	}
	got, err := seqenc.DecodeVocabSeq(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip %v → %v", s, got)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("round trip %v → %v", s, got)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := r.Intn(40)
		s := make([]flist.Rank, l)
		for i := range s {
			switch r.Intn(3) {
			case 0:
				s[i] = flist.NoRank
			case 1:
				s[i] = flist.Rank(r.Intn(10))
			default:
				s[i] = flist.Rank(r.Intn(1 << 28))
			}
		}
		buf := seqenc.AppendSeq(nil, s)
		if len(buf) != seqenc.EncodedSize(s) {
			return false
		}
		got, err := seqenc.DecodeSeq(nil, buf)
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		// Vocabulary round trip on the non-blank items.
		var vs gsm.Sequence
		for _, x := range s {
			if x != flist.NoRank {
				vs = append(vs, hierarchy.Item(x))
			}
		}
		vbuf := seqenc.AppendVocabSeq(nil, vs)
		vgot, err := seqenc.DecodeVocabSeq(nil, vbuf)
		if err != nil || len(vgot) != len(vs) {
			return false
		}
		for i := range vs {
			if vgot[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// Package seqenc provides the compact wire encoding of rank-space sequences
// used between the map and reduce phases of LASH (§4.2, §6.1 of the paper):
// variable-length integers for items (small ids — i.e. frequent items — take
// fewer bytes) and run-length encoding for blanks. Byte counts from this
// encoding drive the MAP_OUTPUT_BYTES experiments (Fig. 4b).
//
// Token format (uvarint):
//
//	item with rank r   → (r+1) << 1
//	run of n blanks    → (n << 1) | 1
package seqenc

import (
	"encoding/binary"
	"fmt"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// AppendSeq encodes a rank-space sequence (blanks = flist.NoRank) onto dst.
func AppendSeq(dst []byte, seq []flist.Rank) []byte {
	i := 0
	for i < len(seq) {
		if seq[i] == flist.NoRank {
			run := uint64(0)
			for i < len(seq) && seq[i] == flist.NoRank {
				run++
				i++
			}
			dst = binary.AppendUvarint(dst, run<<1|1)
			continue
		}
		dst = binary.AppendUvarint(dst, (uint64(seq[i])+1)<<1)
		i++
	}
	return dst
}

// MaxDecodedLen caps how many ranks a single encoded sequence may decode to
// (2^24 ≈ 16M items — far beyond any real sequence). A blank run can claim
// an astronomic length in a handful of corrupt bytes; the bound rejects such
// input before the decoder materializes it.
const MaxDecodedLen = 1 << 24

// DecodeSeq decodes an encoded rank sequence, appending to dst. dst may
// already hold earlier sequences (arena decoding); the MaxDecodedLen bound
// applies to this call's contribution only.
func DecodeSeq(dst []flist.Rank, buf []byte) ([]flist.Rank, error) {
	decoded := 0
	for len(buf) > 0 {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return dst, fmt.Errorf("seqenc: truncated varint")
		}
		buf = buf[n:]
		if v&1 == 1 { // blank run
			run := v >> 1
			if run == 0 {
				return dst, fmt.Errorf("seqenc: zero-length blank run")
			}
			if run > MaxDecodedLen || decoded+int(run) > MaxDecodedLen {
				return dst, fmt.Errorf("seqenc: decoded sequence exceeds %d items", MaxDecodedLen)
			}
			decoded += int(run)
			for j := uint64(0); j < run; j++ {
				dst = append(dst, flist.NoRank)
			}
			continue
		}
		r := v>>1 - 1
		if r >= uint64(flist.NoRank) {
			return dst, fmt.Errorf("seqenc: rank overflow %d", r)
		}
		if decoded++; decoded > MaxDecodedLen {
			return dst, fmt.Errorf("seqenc: decoded sequence exceeds %d items", MaxDecodedLen)
		}
		dst = append(dst, flist.Rank(r))
	}
	return dst, nil
}

// DecodedLen returns the number of ranks DecodeSeq would append for buf,
// without materializing them, validating the encoding exactly as DecodeSeq
// does. Callers use it to size a decode arena once up front.
func DecodedLen(buf []byte) (int, error) {
	decoded := 0
	for len(buf) > 0 {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return decoded, fmt.Errorf("seqenc: truncated varint")
		}
		buf = buf[n:]
		if v&1 == 1 { // blank run
			run := v >> 1
			if run == 0 {
				return decoded, fmt.Errorf("seqenc: zero-length blank run")
			}
			if run > MaxDecodedLen || decoded+int(run) > MaxDecodedLen {
				return decoded, fmt.Errorf("seqenc: decoded sequence exceeds %d items", MaxDecodedLen)
			}
			decoded += int(run)
			continue
		}
		r := v>>1 - 1
		if r >= uint64(flist.NoRank) {
			return decoded, fmt.Errorf("seqenc: rank overflow %d", r)
		}
		if decoded++; decoded > MaxDecodedLen {
			return decoded, fmt.Errorf("seqenc: decoded sequence exceeds %d items", MaxDecodedLen)
		}
	}
	return decoded, nil
}

// EncodedSize returns len(AppendSeq(nil, seq)) without allocating.
func EncodedSize(seq []flist.Rank) int {
	size := 0
	i := 0
	for i < len(seq) {
		if seq[i] == flist.NoRank {
			run := uint64(0)
			for i < len(seq) && seq[i] == flist.NoRank {
				run++
				i++
			}
			size += uvarintLen(run<<1 | 1)
			continue
		}
		size += uvarintLen((uint64(seq[i]) + 1) << 1)
		i++
	}
	return size
}

// AppendVocabSeq encodes a vocabulary-space sequence (no blanks) onto dst.
// Used by the naïve baseline, which has no f-list and therefore no rank
// space.
func AppendVocabSeq(dst []byte, seq gsm.Sequence) []byte {
	for _, w := range seq {
		dst = binary.AppendUvarint(dst, uint64(w))
	}
	return dst
}

// DecodeVocabSeq decodes an encoded vocabulary sequence, appending to dst.
func DecodeVocabSeq(dst gsm.Sequence, buf []byte) (gsm.Sequence, error) {
	for len(buf) > 0 {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return dst, fmt.Errorf("seqenc: truncated varint")
		}
		buf = buf[n:]
		if v >= uint64(hierarchy.NoItem) {
			return dst, fmt.Errorf("seqenc: item overflow %d", v)
		}
		dst = append(dst, hierarchy.Item(v))
	}
	return dst, nil
}

// VocabEncodedSize returns len(AppendVocabSeq(nil, seq)) without allocating.
func VocabEncodedSize(seq gsm.Sequence) int {
	size := 0
	for _, w := range seq {
		size += uvarintLen(uint64(w))
	}
	return size
}

// UvarintLen returns the encoded size of v as a uvarint.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func uvarintLen(v uint64) int { return UvarintLen(v) }

package seqenc_test

import (
	"bytes"
	"testing"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/seqenc"
)

// ranksFromBytes derives a rank sequence from fuzz input: 4 bytes per item,
// with a sentinel byte pattern mapping to a blank so runs get exercised.
func ranksFromBytes(data []byte) []flist.Rank {
	seq := make([]flist.Rank, 0, len(data)/4)
	for i := 0; i+3 < len(data); i += 4 {
		v := flist.Rank(data[i]) | flist.Rank(data[i+1])<<8 |
			flist.Rank(data[i+2])<<16 | flist.Rank(data[i+3])<<24
		if v%5 == 0 {
			v = flist.NoRank
		} else if v == flist.NoRank {
			v = 0
		}
		seq = append(seq, v)
	}
	return seq
}

// FuzzSeqRoundTrip checks, for arbitrary rank sequences, that
// AppendSeq/DecodeSeq round-trip exactly and that EncodedSize and DecodedLen
// agree with the materialized encoding.
func FuzzSeqRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 5, 0, 0, 0, 255, 255, 255, 255})
	f.Add(bytes.Repeat([]byte{10, 0, 0, 0}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq := ranksFromBytes(data)
		enc := seqenc.AppendSeq(nil, seq)
		if got := seqenc.EncodedSize(seq); got != len(enc) {
			t.Fatalf("EncodedSize = %d, len(AppendSeq) = %d", got, len(enc))
		}
		n, err := seqenc.DecodedLen(enc)
		if err != nil {
			t.Fatalf("DecodedLen rejected valid encoding: %v", err)
		}
		if n != len(seq) {
			t.Fatalf("DecodedLen = %d, want %d", n, len(seq))
		}
		dec, err := seqenc.DecodeSeq(nil, enc)
		if err != nil {
			t.Fatalf("DecodeSeq rejected valid encoding: %v", err)
		}
		if len(dec) != len(seq) {
			t.Fatalf("round trip length %d, want %d", len(dec), len(seq))
		}
		for i := range seq {
			if dec[i] != seq[i] {
				t.Fatalf("round trip: item %d = %d, want %d", i, dec[i], seq[i])
			}
		}
		// Arena decoding: appending to a non-empty dst must leave the prefix
		// intact and produce the same items after it.
		arena := []flist.Rank{7, flist.NoRank, 9}
		arena, err = seqenc.DecodeSeq(arena, enc)
		if err != nil {
			t.Fatalf("arena DecodeSeq: %v", err)
		}
		if arena[0] != 7 || arena[1] != flist.NoRank || arena[2] != 9 {
			t.Fatal("arena DecodeSeq clobbered existing prefix")
		}
		if len(arena) != 3+len(seq) {
			t.Fatalf("arena DecodeSeq appended %d items, want %d", len(arena)-3, len(seq))
		}
	})
}

// FuzzDecodeSeq feeds arbitrary bytes to the decoder: it must never panic,
// DecodeSeq and DecodedLen must agree on validity and length, and anything
// that decodes must re-encode to a form that decodes to the same sequence.
func FuzzDecodeSeq(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02})                                                       // rank 0
	f.Add([]byte{0x03})                                                       // run of 1 blank
	f.Add([]byte{0x01})                                                       // zero-length run (corrupt)
	f.Add([]byte{0x80})                                                       // truncated varint (corrupt)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge value
	f.Add(seqenc.AppendSeq(nil, []flist.Rank{3, flist.NoRank, flist.NoRank, 1 << 20}))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, lenErr := seqenc.DecodedLen(data)
		dec, decErr := seqenc.DecodeSeq(nil, data)
		if (lenErr == nil) != (decErr == nil) {
			t.Fatalf("DecodedLen err=%v but DecodeSeq err=%v", lenErr, decErr)
		}
		if decErr != nil {
			return
		}
		if n != len(dec) {
			t.Fatalf("DecodedLen = %d, DecodeSeq produced %d items", n, len(dec))
		}
		// Decoding is canonicalizing: re-encoding the decoded sequence and
		// decoding again must yield the same items (adjacent blank runs in
		// the input collapse into one on re-encode, so the bytes may differ).
		re := seqenc.AppendSeq(nil, dec)
		if len(re) > len(data) {
			t.Fatalf("re-encoding grew: %d > %d bytes", len(re), len(data))
		}
		dec2, err := seqenc.DecodeSeq(nil, re)
		if err != nil {
			t.Fatalf("re-encoded form rejected: %v", err)
		}
		if len(dec2) != len(dec) {
			t.Fatalf("re-encode round trip length %d, want %d", len(dec2), len(dec))
		}
		for i := range dec {
			if dec2[i] != dec[i] {
				t.Fatalf("re-encode round trip: item %d = %d, want %d", i, dec2[i], dec[i])
			}
		}
	})
}

// FuzzVocabSeqRoundTrip covers the vocabulary-space encoding used by the
// naïve baseline: round trip plus VocabEncodedSize agreement.
func FuzzVocabSeqRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 200, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq := make(gsm.Sequence, 0, len(data)/4)
		for i := 0; i+3 < len(data); i += 4 {
			v := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
			seq = append(seq, hierarchy.Item(v%uint32(hierarchy.NoItem)))
		}
		enc := seqenc.AppendVocabSeq(nil, seq)
		if got := seqenc.VocabEncodedSize(seq); got != len(enc) {
			t.Fatalf("VocabEncodedSize = %d, len(AppendVocabSeq) = %d", got, len(enc))
		}
		dec, err := seqenc.DecodeVocabSeq(nil, enc)
		if err != nil {
			t.Fatalf("DecodeVocabSeq rejected valid encoding: %v", err)
		}
		if len(dec) != len(seq) {
			t.Fatalf("round trip length %d, want %d", len(dec), len(seq))
		}
		for i := range seq {
			if dec[i] != seq[i] {
				t.Fatalf("round trip: item %d = %d, want %d", i, dec[i], seq[i])
			}
		}
	})
}

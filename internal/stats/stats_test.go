package stats_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"lash/internal/core"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/mapreduce"
	"lash/internal/paperex"
	"lash/internal/stats"
)

var smallMR = mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2}

func mineBoth(t testing.TB, db *gsm.Database, p gsm.Params) (mined, flat []gsm.Pattern) {
	t.Helper()
	res, err := core.Mine(context.Background(), db, core.Options{Params: p, MR: smallMR})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := core.Mine(context.Background(), db, core.Options{Params: p, Flat: true, MR: smallMR})
	if err != nil {
		t.Fatal(err)
	}
	return res.Patterns, fres.Patterns
}

// On the running example (σ=2, γ=1, λ=3): the flat miner finds only
// "a a" and "a c", so exactly those two of the ten generalized patterns are
// trivial → 80% non-trivial.
func TestPaperExampleNonTrivial(t *testing.T) {
	db := paperex.Database()
	mined, flat := mineBoth(t, db, paperex.Params())
	got := stats.Compute(db.Forest, mined, flat)
	if got.Total != 10 {
		t.Fatalf("Total = %d, want 10", got.Total)
	}
	if got.NonTrivial != 8 {
		t.Fatalf("NonTrivial = %d, want 8", got.NonTrivial)
	}
	if p := got.NonTrivialPct(); p != 80 {
		t.Fatalf("NonTrivialPct = %.1f, want 80", p)
	}
}

// Brute-force closed/maximal on the paper example, then compare.
func TestPaperExampleClosedMaximal(t *testing.T) {
	db := paperex.Database()
	mined, flat := mineBoth(t, db, paperex.Params())
	got := stats.Compute(db.Forest, mined, flat)
	wantClosed, wantMaximal := bruteClosedMaximal(db.Forest, mined)
	if got.Closed != wantClosed {
		t.Errorf("Closed = %d, want %d", got.Closed, wantClosed)
	}
	if got.Maximal != wantMaximal {
		t.Errorf("Maximal = %d, want %d", got.Maximal, wantMaximal)
	}
	// Sanity on the relations: maximal ⊆ closed ⊆ all.
	if !(got.Maximal <= got.Closed && got.Closed <= got.Total) {
		t.Errorf("ordering violated: %+v", got)
	}
}

// bruteClosedMaximal checks every pair with the independent ⊑0 test.
func bruteClosedMaximal(f *hierarchy.Forest, mined []gsm.Pattern) (closed, maximal int) {
	for _, s := range mined {
		isClosed, isMaximal := true, true
		for _, sp := range mined {
			if len(sp.Items) < len(s.Items) {
				continue
			}
			same := len(sp.Items) == len(s.Items)
			equal := same
			if same {
				for i := range s.Items {
					if s.Items[i] != sp.Items[i] {
						equal = false
						break
					}
				}
			}
			if equal {
				continue
			}
			if gsm.IsGenSubseq(f, s.Items, sp.Items, 0) {
				isMaximal = false
				if sp.Support == s.Support {
					isClosed = false
				}
			}
		}
		if isClosed {
			closed++
		}
		if isMaximal {
			maximal++
		}
	}
	return closed, maximal
}

func TestEmptyOutput(t *testing.T) {
	f := paperex.Forest()
	got := stats.Compute(f, nil, nil)
	if got.Total != 0 || got.NonTrivialPct() != 0 || got.ClosedPct() != 0 || got.MaximalPct() != 0 {
		t.Fatalf("empty stats = %+v", got)
	}
}

// Flat mining of a flat database: everything is trivial, and closed/maximal
// behave classically.
func TestFlatWorldAllTrivial(t *testing.T) {
	f := hierarchy.Flat([]string{"x", "y"})
	x, _ := f.Lookup("x")
	y, _ := f.Lookup("y")
	db := &gsm.Database{Forest: f, Seqs: []gsm.Sequence{{x, y}, {x, y}, {x, y, x}}}
	p := gsm.Params{Sigma: 2, Gamma: 0, Lambda: 3}
	mined, flat := mineBoth(t, db, p)
	got := stats.Compute(f, mined, flat)
	if got.NonTrivial != 0 {
		t.Fatalf("flat world has %d non-trivial patterns", got.NonTrivial)
	}
	if got.Total == 0 {
		t.Fatal("nothing mined")
	}
}

func randDB(r *rand.Rand) *gsm.Database {
	b := hierarchy.NewBuilder()
	n := 4 + r.Intn(7)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		b.Add(names[i])
	}
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			b.AddEdge(names[i], names[r.Intn(i)])
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := &gsm.Database{Forest: f}
	for i, k := 0, 3+r.Intn(5); i < k; i++ {
		l := 2 + r.Intn(6)
		s := make(gsm.Sequence, l)
		for j := range s {
			s[j] = hierarchy.Item(r.Intn(n))
		}
		db.Seqs = append(db.Seqs, s)
	}
	return db
}

// Property: the marking algorithm agrees with the quadratic pairwise
// definition on random databases.
func TestQuickClosedMaximalMatchBrute(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		p := gsm.Params{Sigma: 1 + int64(r.Intn(2)), Gamma: r.Intn(2), Lambda: 2 + r.Intn(2)}
		res, err := core.Mine(context.Background(), db, core.Options{Params: p, MR: smallMR})
		if err != nil {
			return false
		}
		fres, err := core.Mine(context.Background(), db, core.Options{Params: p, Flat: true, MR: smallMR})
		if err != nil {
			return false
		}
		got := stats.Compute(db.Forest, res.Patterns, fres.Patterns)
		wc, wm := bruteClosedMaximal(db.Forest, res.Patterns)
		return got.Closed == wc && got.Maximal == wm
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(311))}); err != nil {
		t.Fatal(err)
	}
}

// Property: triviality test agrees with a direct specialization search.
func TestQuickNonTrivialMatchesBrute(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		p := gsm.Params{Sigma: 1 + int64(r.Intn(2)), Gamma: r.Intn(2), Lambda: 2 + r.Intn(2)}
		res, err := core.Mine(context.Background(), db, core.Options{Params: p, MR: smallMR})
		if err != nil {
			return false
		}
		fres, err := core.Mine(context.Background(), db, core.Options{Params: p, Flat: true, MR: smallMR})
		if err != nil {
			return false
		}
		got := stats.Compute(db.Forest, res.Patterns, fres.Patterns)
		// Direct: S trivial iff some flat pattern of same length item-wise
		// generalizes to S.
		nonTrivial := 0
		for _, s := range res.Patterns {
			trivial := false
			for _, fp := range fres.Patterns {
				if len(fp.Items) != len(s.Items) {
					continue
				}
				all := true
				for i := range s.Items {
					if !db.Forest.GeneralizesTo(fp.Items[i], s.Items[i]) {
						all = false
						break
					}
				}
				if all {
					trivial = true
					break
				}
			}
			if !trivial {
				nonTrivial++
			}
		}
		return got.NonTrivial == nonTrivial
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(313))}); err != nil {
		t.Fatal(err)
	}
}

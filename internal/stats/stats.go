// Package stats computes the output statistics of Table 3 of the LASH
// paper: the percentages of non-trivial, closed, and maximal sequences in a
// mined output.
//
// Definitions (§6.7):
//
//   - An output sequence is *trivial* if it can be generated from the output
//     of a standard sequence miner (which ignores hierarchies) by
//     generalizing items; non-trivial sequences are the value added by GSM.
//   - S is *maximal* if every supersequence S' ⊒0 S is infrequent, and
//     *closed* if every supersequence has a different (lower) frequency.
//     The ⊒0 relation covers both contiguous extensions and same-length
//     specializations.
//
// Closedness/maximality are computed relative to the mined output (patterns
// up to length λ), exactly as in the paper's evaluation: a frequent
// supersequence longer than λ is invisible to both.
//
// The closed/maximal computation avoids the quadratic pairwise ⊑0 test: for
// every mined pattern it marks the pattern's *immediate reductions* (drop
// the first item, drop the last item, generalize one item to its parent).
// Any supersequence chain S ⊑0 S' decomposes into such single steps whose
// intermediates are all frequent (support monotonicity) and hence all in the
// output, so a pattern has a frequent (resp. equal-frequency) supersequence
// iff it is marked by some pattern (resp. by one of equal support).
package stats

import (
	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// Output summarizes the Table-3 statistics of one mined result.
type Output struct {
	Total      int
	NonTrivial int
	Closed     int
	Maximal    int
}

// NonTrivialPct returns 100·NonTrivial/Total (0 for empty outputs).
func (o Output) NonTrivialPct() float64 { return pct(o.NonTrivial, o.Total) }

// ClosedPct returns 100·Closed/Total.
func (o Output) ClosedPct() float64 { return pct(o.Closed, o.Total) }

// MaximalPct returns 100·Maximal/Total.
func (o Output) MaximalPct() float64 { return pct(o.Maximal, o.Total) }

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

const (
	markFrequent = 1 << 0
	markEqual    = 1 << 1
)

// markSupersteps computes, for every mined pattern, whether some other
// mined pattern is an immediate superstep of it (markFrequent), and whether
// one with equal support exists (markEqual). See the package comment for why
// immediate steps suffice.
func markSupersteps(f *hierarchy.Forest, mined []gsm.Pattern) map[string]uint8 {
	support := make(map[string]int64, len(mined))
	for _, p := range mined {
		support[gsm.Key(p.Items)] = p.Support
	}
	marks := make(map[string]uint8, len(mined))
	var buf gsm.Sequence
	for _, p := range mined {
		mark := func(items gsm.Sequence) {
			k := gsm.Key(items)
			if _, ok := support[k]; !ok {
				return // e.g. a reduction of length < 2
			}
			m := marks[k] | markFrequent
			if support[k] == p.Support {
				m |= markEqual
			}
			marks[k] = m
		}
		n := len(p.Items)
		if n > 2 {
			mark(p.Items[1:])
			mark(p.Items[:n-1])
		}
		for j, w := range p.Items {
			parent := f.Parent(w)
			if parent == hierarchy.NoItem {
				continue
			}
			buf = append(buf[:0], p.Items...)
			buf[j] = parent
			mark(buf)
		}
	}
	return marks
}

// Compute derives the statistics for a mined output. flat must be the
// output of a standard (hierarchy-ignoring) sequence miner over the same
// database and parameters; it seeds the triviality test.
func Compute(f *hierarchy.Forest, mined, flat []gsm.Pattern) Output {
	out := Output{Total: len(mined)}
	trie := buildTrie(flat)
	marks := markSupersteps(f, mined)
	for _, p := range mined {
		m := marks[gsm.Key(p.Items)]
		if m&markFrequent == 0 {
			out.Maximal++
		}
		if m&markEqual == 0 {
			out.Closed++
		}
		if !trie.hasSpecialization(f, p.Items) {
			out.NonTrivial++
		}
	}
	return out
}

// FilterClosed returns the closed subset of a complete mined output: the
// patterns whose every supersequence (extension or specialization, within
// the mined λ) has a different frequency. This implements the closed-GSM
// mining the paper names as future work (§6.7), as a post-processing pass.
func FilterClosed(f *hierarchy.Forest, mined []gsm.Pattern) []gsm.Pattern {
	marks := markSupersteps(f, mined)
	var out []gsm.Pattern
	for _, p := range mined {
		if marks[gsm.Key(p.Items)]&markEqual == 0 {
			out = append(out, p)
		}
	}
	return out
}

// FilterMaximal returns the maximal subset of a complete mined output: the
// patterns with no frequent supersequence (within the mined λ).
func FilterMaximal(f *hierarchy.Forest, mined []gsm.Pattern) []gsm.Pattern {
	marks := markSupersteps(f, mined)
	var out []gsm.Pattern
	for _, p := range mined {
		if marks[gsm.Key(p.Items)]&markFrequent == 0 {
			out = append(out, p)
		}
	}
	return out
}

// trieNode indexes flat-miner patterns for the triviality test: S is
// trivial iff the trie contains a same-length pattern F whose every item
// specializes (or equals) the corresponding item of S.
type trieNode struct {
	children map[hierarchy.Item]*trieNode
	terminal bool
}

func buildTrie(flat []gsm.Pattern) *trieNode {
	root := &trieNode{}
	for _, p := range flat {
		n := root
		for _, w := range p.Items {
			if n.children == nil {
				n.children = make(map[hierarchy.Item]*trieNode)
			}
			c := n.children[w]
			if c == nil {
				c = &trieNode{}
				n.children[w] = c
			}
			n = c
		}
		n.terminal = true
	}
	return root
}

func (n *trieNode) hasSpecialization(f *hierarchy.Forest, s gsm.Sequence) bool {
	if len(s) == 0 {
		return n.terminal
	}
	for u, c := range n.children {
		if f.GeneralizesTo(u, s[0]) && c.hasSpecialization(f, s[1:]) {
			return true
		}
	}
	return false
}

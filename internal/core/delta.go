// Delta mining: re-mining an appended corpus version by reusing the
// previous run's f-list counts and per-partition results.
//
// The engine's partition-by-pivot structure (§3.4/§4 of the paper) is what
// makes this tractable: a partition's input is fully determined by the set
// of sequences whose G1 contains the pivot and by each item's visibility to
// the pivot ("frequent with rank ≤ rank(pivot)"). Appending sequences only
// grows item frequencies (frequencies are additive over sequences and
// ancestor chains of existing items never change — Database.Append forbids
// re-parenting), so a partition whose pivot kept its frequency AND whose
// visible item set is provably unchanged receives byte-for-byte the same
// item-space input as in the previous version. Those partitions are never
// shuffled or mined again: their pattern sets are spliced from the captured
// previous state, and only the dirty remainder is recomputed.
//
// Reuse rule (first level, decided before any shuffle): call an item dirty
// when the appended sequences changed its frequency (the item or a
// descendant occurs in them) — new items are always dirty. A clean frequent
// pivot w is reusable iff no dirty OLD item crosses it in the total order:
// for every dirty old item x, [rank(x) ≤ rank(w)] must agree between the
// versions. Clean items keep their pairwise order (the f-list comparator —
// freq desc, level asc, id asc — reads only unchanged fields), new items
// never occur in old sequences, and only the visible SET matters to the
// rewrite and to pattern-partition ownership, so an uncrossed clean pivot's
// partition is unchanged in item space. Crossings are computed in O(F + D)
// with clean-prefix counts and one interval per dirty item.
//
// Second level (decided per shuffled partition): every captured partition
// stores a fingerprint of its aggregated input (entry bytes and weights in
// the substrate's deterministic sorted order, chained with a prefix hash of
// the rank→item table up to the pivot, so equal fingerprints mean equal
// item-space input). A dirty partition whose fresh input fingerprints the
// same as the previous version's is spliced instead of mined. A mismatch
// merely re-mines — fingerprints can only skip work, never change output.
package core

import (
	"fmt"
	"sort"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/mapreduce"
)

// DeltaState is the reusable residue of a captured run (Options.Capture):
// the corpus prefix it covers, the per-item f-list counts, and one
// DeltaPart per non-empty partition. It is immutable once returned and safe
// to share across goroutines.
type DeltaState struct {
	// NumSeqs is the number of input sequences the run covered; a delta
	// re-mine treats db.Seqs[NumSeqs:] as the appended suffix.
	NumSeqs int
	// Freqs are the per-item document frequencies of the covered corpus,
	// indexed by vocabulary item id (hierarchy-aware, or flat counts for
	// flat runs — a state only seeds runs with identical options).
	Freqs []int64
	// Parts holds one entry per non-empty partition, sorted by pivot item.
	Parts []DeltaPart
}

// DeltaPart is one partition's captured result, keyed by the pivot's
// version-stable vocabulary item.
type DeltaPart struct {
	Pivot hierarchy.Item
	// Fingerprint hashes the partition's aggregated input (see
	// entriesFingerprint); equal fingerprints across runs mean identical
	// item-space input.
	Fingerprint uint64
	// Seqs, Explored, Output are the partition's mining statistics, spliced
	// so a delta run reports the same counters a cold run would.
	Seqs     int64
	Explored int64
	Output   int64
	// Patterns are the partition's mined patterns in vocabulary item space
	// (version-stable ids), before any output restriction.
	Patterns []gsm.Pattern
}

// part returns the captured partition for pivot, or nil.
func (s *DeltaState) part(pivot hierarchy.Item) *DeltaPart {
	lo, hi := 0, len(s.Parts)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Parts[mid].Pivot < pivot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Parts) && s.Parts[lo].Pivot == pivot {
		return &s.Parts[lo]
	}
	return nil
}

// deltaFrequencies recomputes the full corpus frequencies incrementally:
// the previous run's counts (padded with zeros for newly interned items)
// plus the appended sequences' counts, computed with the same per-sequence
// distinct-G1 semantics as the f-list job. Counting is additive over
// sequences, so the sums are exactly the numbers a from-scratch count would
// produce. The returned add slice doubles as the dirty-item indicator.
func deltaFrequencies(db *gsm.Database, prev *DeltaState) (freq, add []int64, err error) {
	if prev.NumSeqs > len(db.Seqs) {
		return nil, nil, fmt.Errorf("core: delta state covers %d sequences but the database has %d", prev.NumSeqs, len(db.Seqs))
	}
	if len(prev.Freqs) > db.Forest.Size() {
		return nil, nil, fmt.Errorf("core: delta state has %d item frequencies but the vocabulary has %d items", len(prev.Freqs), db.Forest.Size())
	}
	add = flist.ComputeFrequencies(&gsm.Database{
		Seqs:   db.Seqs[prev.NumSeqs:],
		Forest: db.Forest,
	})
	freq = make([]int64, db.Forest.Size())
	copy(freq, prev.Freqs)
	for w, n := range add {
		freq[w] += n
	}
	return freq, add, nil
}

// deltaPlan is the per-run reuse decision: which new-rank partitions are
// provably unchanged, and the previous parts to splice from.
type deltaPlan struct {
	prev *DeltaState
	// reuse, indexed by new rank, marks partitions whose input is provably
	// identical to the previous version's — they are neither shuffled nor
	// mined.
	reuse []bool
}

// planDelta derives the reuse mask. fl is the new version's f-list, add the
// appended sequences' frequency contribution (the dirty indicator), sigma
// the shared support threshold.
func planDelta(forest *hierarchy.Forest, fl *flist.FList, prev *DeltaState, add []int64) (*deltaPlan, error) {
	// Rebuild the previous version's rank order from its stored counts:
	// padding new items with frequency 0 leaves them infrequent, so the
	// frequent set and its order are exactly the old run's.
	oldFreq := make([]int64, forest.Size())
	copy(oldFreq, prev.Freqs)
	oldFl, err := flist.Build(forest, oldFreq, fl.Sigma())
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding previous rank order: %w", err)
	}
	oldSize := len(prev.Freqs)
	dirty := func(w hierarchy.Item) bool { return add[w] != 0 }

	// Clean-prefix counts in both orders. Clean items preserve pairwise
	// order across versions, so the p-th clean item of the old order is the
	// p-th clean item of the new order.
	numOld, numNew := oldFl.NumFrequent(), fl.NumFrequent()
	cleanBeforeOld := make([]int, numOld)
	c := 0
	for r := 0; r < numOld; r++ {
		cleanBeforeOld[r] = c
		if !dirty(oldFl.VocabOf(flist.Rank(r))) {
			c++
		}
	}
	cleanBeforeNew := make([]int, numNew)
	numClean := 0
	for r := 0; r < numNew; r++ {
		cleanBeforeNew[r] = numClean
		if !dirty(fl.VocabOf(flist.Rank(r))) {
			numClean++
		}
	}

	// One interval per dirty old item x frequent in either version: x is
	// visible to the clean pivot at clean position p iff its clean-prefix
	// count is ≤ p, so visibility changed exactly for p in
	// [min(ao,an), max(ao,an)). New items never occur in old sequences and
	// mark nothing.
	diff := make([]int, numClean+1)
	for w := 0; w < oldSize; w++ {
		wi := hierarchy.Item(w)
		if !dirty(wi) {
			continue
		}
		ro, rn := oldFl.RankOf(wi), fl.RankOf(wi)
		if ro == flist.NoRank && rn == flist.NoRank {
			continue // infrequent in both: invisible to every pivot
		}
		ao, an := numClean, numClean
		if ro != flist.NoRank {
			ao = cleanBeforeOld[ro]
		}
		if rn != flist.NoRank {
			an = cleanBeforeNew[rn]
		}
		lo, hi := min(ao, an), max(ao, an)
		if lo < hi {
			diff[lo]++
			diff[hi]--
		}
	}

	reuse := make([]bool, numNew)
	contaminated := 0
	p := 0
	for r := 0; r < numNew; r++ {
		if dirty(fl.VocabOf(flist.Rank(r))) {
			continue
		}
		// p == cleanBeforeNew[r]: this pivot is the p-th clean item.
		contaminated += diff[p]
		reuse[r] = contaminated == 0
		p++
	}
	return &deltaPlan{prev: prev, reuse: reuse}, nil
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvMixBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// rankChain returns, per rank r, the FNV-64a chain over the rank→item table
// up to and including r. Partition inputs are encoded in rank space, so a
// fingerprint mixes in the chain value of its pivot: equal fingerprints
// then certify that every rank the input mentions names the same
// (version-stable) vocabulary item.
func rankChain(fl *flist.FList) []uint64 {
	chain := make([]uint64, fl.NumFrequent())
	h := fnvOffset
	for r := range chain {
		h = fnvMix64(h, uint64(uint32(fl.VocabOf(flist.Rank(r)))))
		chain[r] = h
	}
	return chain
}

// entriesFingerprint hashes one partition's aggregated input. The substrate
// hands entries sorted by key bytes, so the fingerprint is deterministic
// for a given input multiset.
func entriesFingerprint(seed uint64, entries []mapreduce.Entry) uint64 {
	h := seed
	for i := range entries {
		h = fnvMix64(h, uint64(len(entries[i].Key)))
		h = fnvMixBytes(h, entries[i].Key)
		h = fnvMix64(h, uint64(entries[i].Weight))
	}
	return h
}

// assembleCapture turns the capture slots of a capturing or delta run into
// the run's result: per-partition statistics and patterns — freshly mined,
// fingerprint-spliced, or (for reuse-masked partitions that were never
// shuffled) taken from the previous state — are merged, and Result.Delta is
// filled when the run captures. Iteration is in pivot-rank order; the
// caller canonicalizes the final pattern order with gsm.SortPatterns, which
// is total over the distinct patterns (each belongs to exactly one
// partition), so splice order cannot leak into the output.
func assembleCapture(res *Result, db *gsm.Database, fl *flist.FList, opt Options, plan *deltaPlan, slots []capPart) error {
	var delta *DeltaState
	if opt.Capture {
		freqs := make([]int64, db.Forest.Size())
		for w := range freqs {
			freqs[w] = fl.Freq(hierarchy.Item(w))
		}
		delta = &DeltaState{NumSeqs: len(db.Seqs), Freqs: freqs}
	}
	for r := 0; r < len(slots); r++ {
		pivot := fl.VocabOf(flist.Rank(r))
		slot := &slots[r]
		var part DeltaPart
		switch {
		case plan != nil && plan.reuse[r]:
			pp := plan.prev.part(pivot)
			if pp == nil {
				continue // empty partition in both versions
			}
			res.DeltaReused++
			part = *pp
		case slot.mined && slot.spliced:
			res.DeltaReused++
			part = DeltaPart{
				Pivot: pivot, Fingerprint: slot.fingerprint,
				Seqs: slot.seqs, Explored: slot.explored, Output: slot.output,
				Patterns: slot.items,
			}
		case slot.mined:
			if plan != nil {
				res.DeltaDirty++
			}
			pats := make([]gsm.Pattern, 0, len(slot.ranks))
			for _, po := range slot.ranks {
				items, err := fl.TranslateFromRanks(nil, po.ranks)
				if err != nil {
					return err
				}
				pats = append(pats, gsm.Pattern{Items: items, Support: po.support})
			}
			part = DeltaPart{
				Pivot: pivot, Fingerprint: slot.fingerprint,
				Seqs: slot.seqs, Explored: slot.explored, Output: slot.output,
				Patterns: pats,
			}
		default:
			continue // empty partition in this version
		}
		res.NumPartitions++
		res.PartitionSeqs += part.Seqs
		if part.Seqs > res.MaxPartitionSeqs {
			res.MaxPartitionSeqs = part.Seqs
		}
		res.Miner.Explored += part.Explored
		res.Miner.Output += part.Output
		res.Patterns = append(res.Patterns, part.Patterns...)
		if delta != nil {
			delta.Parts = append(delta.Parts, part)
		}
	}
	if delta != nil {
		// part() binary-searches by pivot item; rank order is frequency
		// order, not id order.
		sort.Slice(delta.Parts, func(i, j int) bool { return delta.Parts[i].Pivot < delta.Parts[j].Pivot })
		res.Delta = delta
	}
	return nil
}

// capPart is one partition's capture slot during a capturing or delta run.
// Slots are pivot-rank-indexed and overwrite-idempotent, so retried Reduce
// attempts stay safe (same argument as partStat).
type capPart struct {
	mined bool
	// spliced marks a partition whose previous result was reused via the
	// fingerprint check (its items slice aliases the previous state).
	spliced     bool
	fingerprint uint64
	seqs        int64
	explored    int64
	output      int64
	// ranks holds freshly mined patterns (current-run rank space); items
	// holds spliced patterns (vocabulary item space). Exactly one is set.
	ranks []patternOut
	items []gsm.Pattern
}

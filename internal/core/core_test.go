package core_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"lash/internal/baseline"
	"lash/internal/core"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/paperex"
	"lash/internal/rewrite"
)

var smallMR = mapreduce.Config{Workers: 2, MapTasks: 3, ReduceTasks: 3}

// The paper's running example (§2, Fig. 2): LASH must output exactly
// (aa,2), (ab1,2), (b1a,2), (aB,3), (Ba,2), (aBc,2), (Bc,2), (ac,2),
// (b1D,2), (BD,2) — with every local miner.
func TestPaperExampleEndToEnd(t *testing.T) {
	db := paperex.Database()
	want := paperex.Expected(db.Forest)
	for _, kind := range []miner.Kind{miner.KindPSM, miner.KindPSMNoIndex, miner.KindBFS, miner.KindDFS} {
		res, err := core.Mine(context.Background(), db, core.Options{Params: paperex.Params(), Miner: kind, MR: smallMR})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !gsm.EqualPatterns(res.Patterns, want) {
			t.Fatalf("%s mismatch:\n%s", kind, gsm.DiffPatterns(db.Forest, res.Patterns, want))
		}
		if res.NumPartitions != 5 {
			t.Errorf("%s: %d partitions, want 5 (a, B, b1, c, D)", kind, res.NumPartitions)
		}
		if len(res.FrequentItems) != 5 {
			t.Errorf("%s: %d frequent items, want 5", kind, len(res.FrequentItems))
		}
		if res.Jobs.FList == nil || res.Jobs.Mine == nil {
			t.Errorf("%s: job stats missing", kind)
		}
		if res.Jobs.Mine.MapOutputBytes <= 0 {
			t.Errorf("%s: no map output bytes recorded", kind)
		}
	}
}

// Frequent single items carry the generalized f-list frequencies (Fig. 2).
func TestFrequentItems(t *testing.T) {
	db := paperex.Database()
	res, err := core.Mine(context.Background(), db, core.Options{Params: paperex.Params(), MR: smallMR})
	if err != nil {
		t.Fatal(err)
	}
	want := paperex.GeneralizedFList()
	if len(res.FrequentItems) != len(want) {
		t.Fatalf("%d frequent items, want %d", len(res.FrequentItems), len(want))
	}
	for i, row := range want {
		got := res.FrequentItems[i]
		if db.Forest.Name(got.Items[0]) != row.Name || got.Support != row.Freq {
			t.Errorf("item %d: %s:%d, want %s:%d", i,
				db.Forest.Name(got.Items[0]), got.Support, row.Name, row.Freq)
		}
	}
}

// The naïve and semi-naïve baselines reproduce the same golden output.
func TestBaselinesPaperExample(t *testing.T) {
	db := paperex.Database()
	want := paperex.Expected(db.Forest)
	opt := baseline.Options{Params: paperex.Params(), MR: smallMR}
	nv, err := baseline.MineNaive(context.Background(), db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !gsm.EqualPatterns(nv.Patterns, want) {
		t.Fatalf("naive mismatch:\n%s", gsm.DiffPatterns(db.Forest, nv.Patterns, want))
	}
	sn, err := baseline.MineSemiNaive(context.Background(), db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !gsm.EqualPatterns(sn.Patterns, want) {
		t.Fatalf("semi-naive mismatch:\n%s", gsm.DiffPatterns(db.Forest, sn.Patterns, want))
	}
	// The semi-naïve algorithm must shuffle no more records than the naïve
	// one (§3.3) — on this database strictly fewer.
	if sn.Jobs.Mine.MapOutputRecords >= nv.Jobs.Mine.MapOutputRecords {
		t.Errorf("semi-naive records %d ≥ naive records %d",
			sn.Jobs.Mine.MapOutputRecords, nv.Jobs.Mine.MapOutputRecords)
	}
}

// LASH shuffles fewer bytes than both baselines on the running example
// (Fig. 4b's claim at toy scale).
func TestShuffleBytesOrdering(t *testing.T) {
	db := paperex.Database()
	lash, err := core.Mine(context.Background(), db, core.Options{Params: paperex.Params(), MR: smallMR})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := baseline.MineNaive(context.Background(), db, baseline.Options{Params: paperex.Params(), MR: smallMR})
	if err != nil {
		t.Fatal(err)
	}
	if lash.Jobs.Mine.MapOutputBytes >= nv.Jobs.Mine.MapOutputBytes {
		t.Errorf("LASH bytes %d ≥ naive bytes %d",
			lash.Jobs.Mine.MapOutputBytes, nv.Jobs.Mine.MapOutputBytes)
	}
}

// The emission cap turns into ErrEmitCapExceeded (the paper's ">12 hrs").
func TestEmitCap(t *testing.T) {
	db := paperex.Database()
	opt := baseline.Options{Params: paperex.Params(), MR: smallMR, MaxEmit: 5}
	if _, err := baseline.MineNaive(context.Background(), db, opt); err != baseline.ErrEmitCapExceeded {
		t.Errorf("naive: err = %v, want cap exceeded", err)
	}
	if _, err := baseline.MineSemiNaive(context.Background(), db, opt); err != baseline.ErrEmitCapExceeded {
		t.Errorf("semi-naive: err = %v, want cap exceeded", err)
	}
}

// Flat mode ignores the hierarchy: only plain subsequences are counted.
func TestFlatMode(t *testing.T) {
	db := paperex.Database()
	res, err := core.Mine(context.Background(), db, core.Options{
		Params: gsm.Params{Sigma: 2, Gamma: 1, Lambda: 3},
		Flat:   true,
		Miner:  miner.KindBFS, // MG-FSM configuration
		MR:     smallMR,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without the hierarchy: items a(5), c(3) are frequent; b1 appears in
	// T1 only (f=1); B never appears literally. Frequent 2-sequences with
	// σ=2, γ=1: "a a" (T1: a_a; T4: a_a) and "a c" (T2: a_c...wait T2 = a b3
	// c → gap 1 ok; T3: ac adjacent; T5: a..c distance 3 → no) = 2.
	want := []gsm.Pattern{
		{Items: paperex.Seq(db.Forest, "a a"), Support: 2},
		{Items: paperex.Seq(db.Forest, "a c"), Support: 2},
	}
	gsm.SortPatterns(want)
	if !gsm.EqualPatterns(res.Patterns, want) {
		t.Fatalf("flat mismatch:\n%s", gsm.DiffPatterns(db.Forest, res.Patterns, want))
	}
	// Flat LASH (PSM) must agree with MG-FSM (BFS).
	res2, err := core.Mine(context.Background(), db, core.Options{
		Params: gsm.Params{Sigma: 2, Gamma: 1, Lambda: 3},
		Flat:   true,
		Miner:  miner.KindPSM,
		MR:     smallMR,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gsm.EqualPatterns(res2.Patterns, want) {
		t.Fatalf("flat PSM mismatch:\n%s", gsm.DiffPatterns(db.Forest, res2.Patterns, want))
	}
}

func TestOptionValidation(t *testing.T) {
	db := paperex.Database()
	if _, err := core.Mine(context.Background(), db, core.Options{Params: gsm.Params{Sigma: 0, Gamma: 0, Lambda: 3}}); err == nil {
		t.Error("invalid σ accepted")
	}
	if _, err := core.Mine(context.Background(), &gsm.Database{}, core.Options{Params: paperex.Params()}); err == nil {
		t.Error("missing forest accepted")
	}
	bad := paperex.Database()
	bad.Seqs = append(bad.Seqs, gsm.Sequence{hierarchy.Item(9999)})
	if _, err := core.Mine(context.Background(), bad, core.Options{Params: paperex.Params()}); err == nil {
		t.Error("out-of-vocabulary item accepted")
	}
}

// --- randomized cross-validation of all five implementations -------------

func randDB(r *rand.Rand) *gsm.Database {
	b := hierarchy.NewBuilder()
	n := 4 + r.Intn(8)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		b.Add(names[i])
	}
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			b.AddEdge(names[i], names[r.Intn(i)])
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := &gsm.Database{Forest: f}
	for i, k := 0, 2+r.Intn(7); i < k; i++ {
		l := 1 + r.Intn(8)
		s := make(gsm.Sequence, l)
		for j := range s {
			s[j] = hierarchy.Item(r.Intn(n))
		}
		db.Seqs = append(db.Seqs, s)
	}
	return db
}

// Property: LASH (all four local miners), naïve, and semi-naïve all equal
// the brute-force oracle on random databases.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		p := gsm.Params{
			Sigma:  1 + int64(r.Intn(3)),
			Gamma:  r.Intn(3),
			Lambda: 2 + r.Intn(3),
		}
		want := gsm.MineBruteForce(db, p)
		for _, kind := range []miner.Kind{miner.KindPSM, miner.KindPSMNoIndex, miner.KindBFS, miner.KindDFS} {
			res, err := core.Mine(context.Background(), db, core.Options{Params: p, Miner: kind, MR: smallMR})
			if err != nil || !gsm.EqualPatterns(res.Patterns, want) {
				return false
			}
		}
		nv, err := baseline.MineNaive(context.Background(), db, baseline.Options{Params: p, MR: smallMR})
		if err != nil || !gsm.EqualPatterns(nv.Patterns, want) {
			return false
		}
		sn, err := baseline.MineSemiNaive(context.Background(), db, baseline.Options{Params: p, MR: smallMR})
		if err != nil || !gsm.EqualPatterns(sn.Patterns, want) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(211))}); err != nil {
		t.Fatal(err)
	}
}

// All rewrite modes must produce identical results (the ablation study's
// correctness precondition), differing only in shuffle volume.
func TestRewriteModesAgree(t *testing.T) {
	db := paperex.Database()
	want := paperex.Expected(db.Forest)
	var bytes []int64
	for _, mode := range []rewrite.Mode{rewrite.ModeFull, rewrite.ModeGeneralizeOnly, rewrite.ModeNone} {
		res, err := core.Mine(context.Background(), db, core.Options{Params: paperex.Params(), Rewrites: mode, MR: smallMR})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !gsm.EqualPatterns(res.Patterns, want) {
			t.Fatalf("%v mismatch:\n%s", mode, gsm.DiffPatterns(db.Forest, res.Patterns, want))
		}
		bytes = append(bytes, res.Jobs.Mine.MapOutputBytes)
	}
	if !(bytes[0] <= bytes[1] && bytes[1] <= bytes[2]) {
		t.Errorf("shuffle bytes not monotone across modes: %v", bytes)
	}
}

// Property: rewrite modes agree on random databases too.
func TestQuickRewriteModesAgree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		p := gsm.Params{Sigma: 1 + int64(r.Intn(3)), Gamma: r.Intn(3), Lambda: 2 + r.Intn(3)}
		base, err := core.Mine(context.Background(), db, core.Options{Params: p, MR: smallMR})
		if err != nil {
			return false
		}
		for _, mode := range []rewrite.Mode{rewrite.ModeGeneralizeOnly, rewrite.ModeNone} {
			res, err := core.Mine(context.Background(), db, core.Options{Params: p, Rewrites: mode, MR: smallMR})
			if err != nil || !gsm.EqualPatterns(res.Patterns, base.Patterns) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(227))}); err != nil {
		t.Fatal(err)
	}
}

// Property: results are independent of the MapReduce configuration.
func TestQuickMRConfigIndependence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		p := gsm.Params{Sigma: 1 + int64(r.Intn(2)), Gamma: r.Intn(2), Lambda: 2 + r.Intn(2)}
		base, err := core.Mine(context.Background(), db, core.Options{Params: p, MR: mapreduce.Config{Workers: 1, MapTasks: 1, ReduceTasks: 1}})
		if err != nil {
			return false
		}
		for _, cfg := range []mapreduce.Config{
			{Workers: 4, MapTasks: 7, ReduceTasks: 5},
			{Workers: 2, MapTasks: 1, ReduceTasks: 9},
		} {
			res, err := core.Mine(context.Background(), db, core.Options{Params: p, MR: cfg})
			if err != nil || !gsm.EqualPatterns(res.Patterns, base.Patterns) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(223))}); err != nil {
		t.Fatal(err)
	}
}

// Package core wires LASH together (§3.4, Alg. 1 of the paper): a
// preprocessing MapReduce job computes the generalized f-list and the total
// item order; a second job partitions the database with the hierarchy-aware
// rewrites of internal/rewrite (map side) and mines every partition locally
// with a pluggable sequential miner (reduce side).
//
// The same engine also provides the paper's comparison points:
//
//   - MG-FSM (§6.3): sequence mining without hierarchies — the identical
//     pipeline run on a flattened vocabulary with the BFS local miner.
//   - "flat LASH": MG-FSM's pipeline with PSM as the local miner
//     (footnote 3 of the paper).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/obs"
	"lash/internal/rewrite"
	"lash/internal/seqenc"
)

// Options configures a LASH run.
type Options struct {
	Params gsm.Params

	// Miner selects the local mining algorithm (default: PSM with the
	// right-expansion index).
	Miner miner.Kind

	// Flat disables the hierarchy: items are mined as-is (MG-FSM mode when
	// combined with Miner = KindBFS).
	Flat bool

	// Rewrites selects the partition-construction strength (default: the
	// full pipeline). The weaker modes are correct but wasteful; they exist
	// for the ablation study of the §4 discussion.
	Rewrites rewrite.Mode

	// Freqs, when non-nil, supplies precomputed hierarchy-aware item
	// frequencies (indexed by vocabulary item) and skips the f-list job —
	// the reuse the paper describes in §3.4 ("item frequencies and total
	// order can be reused when LASH is run with different parameters; only
	// the generalized f-list needs to be adapted"). Must match the database
	// and hierarchy mode (flat or not) of this run.
	Freqs []int64

	// MR configures the MapReduce substrate.
	MR mapreduce.Config

	// Capture, when set, records the run's reusable residue — f-list
	// counts and per-partition fingerprints, statistics, and pattern sets —
	// in Result.Delta, for seeding a later delta re-mine via Prev.
	// Incompatible with Stream (capture needs the full per-partition
	// output).
	Capture bool

	// Prev, when non-nil, switches the run to delta mode over an
	// append-only extension of the corpus the state was captured from:
	// frequencies are recomputed incrementally from the appended suffix,
	// provably unchanged partitions are spliced from the state instead of
	// being shuffled and mined, and the result is byte-identical to a
	// from-scratch run. The caller must guarantee Prev was captured on a
	// prefix of db.Seqs under the same Params, Miner, Flat, and Rewrites.
	// Incompatible with Stream.
	Prev *DeltaState

	// Stream, when non-nil, receives every mined pattern (translated to
	// the vocabulary item space) the moment its partition's local miner
	// emits it, instead of the pattern being collected into
	// Result.Patterns. Calls are serialized, but their order is
	// partition-completion order, which is nondeterministic. A non-nil
	// error stops streaming and fails the run with that error in the
	// chain; the remaining partitions are cancelled cooperatively.
	Stream func(items gsm.Sequence, support int64) error
}

// JobStats carries the per-job MapReduce statistics.
type JobStats struct {
	FList *mapreduce.Stats
	Mine  *mapreduce.Stats
}

// Result is the output of a LASH run.
type Result struct {
	// Patterns are the frequent generalized sequences, 2 ≤ |S| ≤ λ, in
	// canonical order.
	Patterns []gsm.Pattern
	// FrequentItems are the length-1 frequent items with their generalized
	// f-list frequencies (determined during preprocessing; the problem
	// statement excludes them from Patterns).
	FrequentItems []gsm.Pattern
	// NumPartitions is the number of non-empty partitions mined.
	NumPartitions int
	// PartitionSeqs is the total number of (aggregated) sequences across all
	// partitions; MaxPartitionSeqs is the largest single partition. Their
	// ratio exposes the skew the rewrites are designed to fight (§4).
	PartitionSeqs    int64
	MaxPartitionSeqs int64
	// Miner aggregates the local miners' work counters.
	Miner miner.Stats
	// Jobs carries MapReduce phase times and counters.
	Jobs JobStats
	// FList exposes the rank space for downstream analysis.
	FList *flist.FList
	// Delta is the captured reusable residue (Options.Capture).
	Delta *DeltaState
	// DeltaDirty and DeltaReused count, for delta runs (Options.Prev), the
	// partitions that were re-mined vs. spliced from the previous state.
	DeltaDirty  int
	DeltaReused int
}

// Mine runs LASH (or one of its flat variants) over the database.
// Cancelling ctx aborts the run cooperatively and returns the wrapped
// ctx.Err() (see internal/mapreduce).
func Mine(ctx context.Context, db *gsm.Database, opt Options) (*Result, error) {
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	if (opt.Capture || opt.Prev != nil) && opt.Stream != nil {
		return nil, fmt.Errorf("core: Capture/Prev need the full per-partition output and cannot be combined with Stream")
	}
	work := db
	if opt.Flat {
		work = &gsm.Database{Seqs: db.Seqs, Forest: flatForest(db.Forest)}
	}

	var (
		fl      *flist.FList
		flStats *mapreduce.Stats
		plan    *deltaPlan
		err     error
	)
	switch {
	case opt.Prev != nil:
		// Delta mode: frequencies are recomputed incrementally from the
		// appended suffix (no f-list job), and the reuse plan decides which
		// partitions can be spliced from the previous state.
		var freq, add []int64
		freq, add, err = deltaFrequencies(work, opt.Prev)
		if err != nil {
			return nil, err
		}
		fl, err = flist.Build(work.Forest, freq, opt.Params.Sigma)
		if err != nil {
			return nil, err
		}
		plan, err = planDelta(work.Forest, fl, opt.Prev, add)
	case opt.Freqs != nil:
		fl, err = flist.Build(work.Forest, opt.Freqs, opt.Params.Sigma)
	default:
		fl, flStats, err = FListJob(ctx, work, opt.Params.Sigma, opt.MR)
	}
	if err != nil {
		return nil, err
	}
	res, err := mineJob(ctx, work, fl, opt, plan)
	if err != nil {
		return nil, err
	}
	res.Jobs.FList = flStats
	res.FList = fl

	// Translate patterns back to the caller's vocabulary space. Item ids are
	// shared between the flat and hierarchical forests, so no remapping is
	// needed beyond rank → vocab (done in mineJob).
	gsm.SortPatterns(res.Patterns)
	for r := 0; r < fl.NumFrequent(); r++ {
		res.FrequentItems = append(res.FrequentItems, gsm.Pattern{
			Items:   gsm.Sequence{fl.VocabOf(flist.Rank(r))},
			Support: fl.FreqOfRank(flist.Rank(r)),
		})
	}
	return res, nil
}

// flatForest rebuilds the vocabulary with no hierarchy edges, preserving
// item ids.
func flatForest(f *hierarchy.Forest) *hierarchy.Forest {
	names := make([]string, f.Size())
	for w := 0; w < f.Size(); w++ {
		names[w] = f.Name(hierarchy.Item(w))
	}
	return hierarchy.Flat(names)
}

// Frequencies runs only the frequency-counting part of the preprocessing
// job and returns the per-item hierarchy-aware document frequencies, for
// reuse across Mine calls via Options.Freqs. It reads the counts straight
// off the f-list job output without deriving a rank space (no σ is involved
// in the counts themselves).
func Frequencies(ctx context.Context, db *gsm.Database, flat bool, cfg mapreduce.Config) ([]int64, error) {
	work := db
	if flat {
		work = &gsm.Database{Seqs: db.Seqs, Forest: flatForest(db.Forest)}
	}
	if err := work.Validate(); err != nil {
		return nil, err
	}
	freq, _, err := flistFrequencies(ctx, work, cfg)
	return freq, err
}

// flistFrequencies is the MapReduce core of the preprocessing job (§3.3):
// map emits each item of G1(T) once per sequence; reduce sums. It returns
// the per-item hierarchy-aware document frequencies.
func flistFrequencies(ctx context.Context, db *gsm.Database, cfg mapreduce.Config) ([]int64, *mapreduce.Stats, error) {
	type itemFreq struct {
		w hierarchy.Item
		n int64
	}
	out, stats, err := mapreduce.Run(ctx, cfg, db.Seqs, mapreduce.Job[gsm.Sequence, hierarchy.Item, int64, itemFreq]{
		Name: "flist",
		Map: func(t gsm.Sequence, emit func(hierarchy.Item, int64)) {
			for _, g := range gsm.ItemGeneralizations(db.Forest, t) {
				emit(g, 1)
			}
		},
		Combine: func(a, b int64) int64 { return a + b },
		Hash:    func(w hierarchy.Item) uint32 { return mapreduce.HashUint32(uint32(w)) },
		Size:    func(w hierarchy.Item, n int64) int { return 8 },
		Reduce: func(w hierarchy.Item, vs []int64, emit func(itemFreq)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(itemFreq{w, sum})
		},
	})
	if err != nil {
		return nil, nil, err
	}
	freq := make([]int64, db.Forest.Size())
	for _, f := range out {
		freq[f.w] = f.n
	}
	return freq, stats, nil
}

// FListJob computes the generalized f-list with a MapReduce job and derives
// the rank space for the given σ.
func FListJob(ctx context.Context, db *gsm.Database, sigma int64, cfg mapreduce.Config) (*flist.FList, *mapreduce.Stats, error) {
	freq, stats, err := flistFrequencies(ctx, db, cfg)
	if err != nil {
		return nil, nil, err
	}
	o := cfg.Obs
	begin := time.Now()
	fl, err := flist.Build(db.Forest, freq, sigma)
	if err != nil {
		return nil, nil, err
	}
	if pm := o.PipelineMetricsOf(); pm != nil {
		pm.FListBuildSeconds.Observe(time.Since(begin).Seconds())
	}
	if tr := o.TracerOf(); tr != nil {
		tr.Record(obs.SpanRecord{
			Parent: o.Root, Name: "flist-build", Job: "flist", Partition: -1,
			Start: begin, Duration: time.Since(begin),
		})
	}
	return fl, stats, nil
}

// patternOut is one mined pattern in rank space.
type patternOut struct {
	ranks   []flist.Rank
	support int64
}

// partStat is one partition's mining statistics. When task retries are
// enabled the job records them by overwriting the pivot's slot in a
// pivot-indexed slice instead of adding to process-wide atomics: a
// re-executed Reduce (after a transient mid-merge failure) rewrites its
// partitions' slots, so the post-run aggregation counts each partition
// exactly once, where atomic adds would double-count the groups the failed
// attempt already mined. Distinct pivots are distinct slots, and one
// pivot's attempts never run concurrently, so plain writes are race-free.
type partStat struct {
	mined    bool
	seqs     int64
	explored int64
	output   int64
}

// streamAbort is the panic sentinel a streaming emit callback uses to
// unwind an in-flight local miner once streaming has failed (emit error,
// translation error, or run cancellation).
type streamAbort struct{}

// mineStreaming runs one partition's local mining with a streaming emit
// callback, recovering the callback's abort sentinel so a failed stream
// stops the miner mid-partition instead of letting it explore to
// exhaustion. An aborted mine returns zero Stats — the run is failing, so
// its work counters no longer matter.
func mineStreaming(rs *reduceScratch, cfg miner.Config, sc *miner.Scratch, emit miner.Emit) (st miner.Stats) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(streamAbort); !ok {
				panic(r)
			}
		}
	}()
	return rs.m.Mine(&rs.part, cfg, sc, emit)
}

// mineScratch is the pooled per-map-call working set of the partition+mine
// job: the rewriter plus reusable pivot, rank, and encode buffers, so the
// map hot path performs no per-emit heap allocation.
type mineScratch struct {
	rw     *rewrite.Rewriter
	pivots []flist.Rank
	buf    []flist.Rank
	enc    []byte
}

// reduceScratch is the pooled per-Reduce working set of the partition+mine
// job: a miner instance, its Scratch (candidate tables, posting arenas),
// and — via the Scratch's exported decode buffers — the rank arena every
// partition sequence is decoded into. One reduceScratch serves one Reduce
// call at a time; the pool hands them to the reduce workers.
type reduceScratch struct {
	m    miner.Miner
	sc   *miner.Scratch
	part miner.Partition
}

// mineJob runs the partitioning and mining phases (Alg. 1) as one streaming
// aggregated-shuffle job: map rewrites each input sequence per pivot and
// emits the encoded partition sequence with weight 1; the substrate
// aggregates duplicates (§4.4) map-side and during the partition merge; and
// each partition is mined the moment its last input arrives, overlapping
// shuffle, merge, and local mining.
//
// With opt.Stream set, mined patterns are translated and handed to the
// stream callback as the local miners emit them (serialized by streamMu)
// instead of being collected; a callback error fails the partition's
// Reduce, which cancels the rest of the run.
func mineJob(ctx context.Context, db *gsm.Database, fl *flist.FList, opt Options, plan *deltaPlan) (*Result, error) {
	res := &Result{}
	var explored, output atomic.Int64
	var partitions, partSeqs atomic.Int64
	var maxPart atomic.Int64
	var streamMu sync.Mutex

	// Capturing and delta runs route everything — statistics, fingerprints,
	// and each partition's patterns — through pivot-rank-indexed capture
	// slots (overwrite-idempotent, hence retry-safe); chain carries the
	// rank→item prefix hashes their fingerprints are seeded with.
	var capSlots []capPart
	var chain []uint64
	if opt.Capture || plan != nil {
		capSlots = make([]capPart, fl.NumFrequent())
		chain = rankChain(fl)
	}

	// Retry-enabled runs route partition statistics through the
	// re-execution-idempotent slice (see partStat); the default path keeps
	// the atomics and allocates nothing extra.
	var partStats []partStat
	if capSlots == nil && opt.MR.Retry.MaxAttempts > 1 {
		partStats = make([]partStat, fl.NumFrequent())
	}

	scratch := sync.Pool{New: func() any {
		rw := rewrite.NewRewriter(fl, opt.Params.Gamma, opt.Params.Lambda)
		rw.Mode = opt.Rewrites
		return &mineScratch{rw: rw}
	}}
	reducers := sync.Pool{New: func() any {
		return &reduceScratch{m: miner.New(opt.Miner), sc: miner.NewScratch()}
	}}
	localCfg := miner.Config{
		Sigma:     opt.Params.Sigma,
		Gamma:     opt.Params.Gamma,
		Lambda:    opt.Params.Lambda,
		PivotOnly: true,
	}
	parent := fl.ParentTable()

	// Observability: per-partition mining metrics and spans. All handles are
	// nil when opt.MR.Obs (or its fields) are unset; the records below are
	// nil-safe no-ops then.
	o := opt.MR.Obs
	tr := o.TracerOf()
	var partMined *obs.Counter
	var partSeconds *obs.Histogram
	if pm := o.PipelineMetricsOf(); pm != nil {
		partMined, partSeconds = pm.PartitionsMined, pm.PartitionMineSeconds
		localCfg.Obs = &pm.Miner
	}

	out, stats, err := mapreduce.RunAgg(ctx, opt.MR, db.Seqs, mapreduce.AggJob[gsm.Sequence, patternOut]{
		Name: "partition+mine",
		Map: func(t gsm.Sequence, emit func(uint32, []byte, int64)) {
			s := scratch.Get().(*mineScratch)
			defer scratch.Put(s)
			s.pivots = fl.PivotRanks(s.pivots[:0], t)
			for _, pivot := range s.pivots {
				if plan != nil && plan.reuse[pivot] {
					// Delta: this partition's input is provably unchanged —
					// its previous result is spliced, nothing is shuffled.
					continue
				}
				s.buf = s.rw.Rewrite(s.buf[:0], t, pivot)
				if len(s.buf) == 0 {
					continue
				}
				s.enc = seqenc.AppendSeq(s.enc[:0], s.buf)
				emit(uint32(pivot), s.enc, 1)
			}
		},
		// Partition by pivot only: a pivot's whole partition must reach one
		// Reduce call.
		Hash: func(pivot uint32, _ []byte) uint32 { return mapreduce.HashUint32(pivot) },
		Size: func(pivot uint32, keyLen int, weight int64) int {
			return seqenc.UvarintLen(uint64(pivot)) + keyLen + seqenc.UvarintLen(uint64(weight))
		},
		Reduce: func(group uint32, entries []mapreduce.Entry, emit func(patternOut)) error {
			pivot := flist.Rank(group)
			begin := time.Now()
			defer func() {
				partMined.Inc()
				partSeconds.Observe(time.Since(begin).Seconds())
				if tr != nil {
					tr.Record(obs.SpanRecord{
						Parent: o.JobSpan(), Name: "mine", Job: "partition+mine",
						Phase: "reduce", Partition: int(pivot),
						Start: begin, Duration: time.Since(begin),
					})
				}
			}()
			rs := reducers.Get().(*reduceScratch)
			defer reducers.Put(rs)
			sc := rs.sc
			// Capture/delta: fingerprint the aggregated input first. When a
			// previous version's partition fingerprints identically, its
			// result is spliced and the decode and mine are skipped
			// entirely; a mismatch just falls through to a fresh mine.
			var fp uint64
			if capSlots != nil {
				fp = entriesFingerprint(chain[pivot], entries)
				if plan != nil {
					if pp := plan.prev.part(fl.VocabOf(pivot)); pp != nil && pp.Fingerprint == fp {
						capSlots[pivot] = capPart{
							mined: true, spliced: true, fingerprint: fp,
							seqs: pp.Seqs, explored: pp.Explored, output: pp.Output,
							items: pp.Patterns,
						}
						return nil
					}
				}
			}
			// Decode the whole partition into one grown-once rank arena:
			// size it exactly, then append every sequence back to back.
			total := 0
			for _, e := range entries {
				n, err := seqenc.DecodedLen(e.Key)
				if err != nil {
					// A decode failure means partition data was corrupted in
					// flight; dropping the sequence would silently undercount
					// supports, so fail the run instead.
					return fmt.Errorf("core: partition %d: corrupt partition sequence: %w", pivot, err)
				}
				total += n
			}
			if cap(sc.RankArena) < total {
				sc.RankArena = make([]flist.Rank, 0, total)
			} else {
				sc.RankArena = sc.RankArena[:0]
			}
			sc.Seqs = sc.Seqs[:0]
			for _, e := range entries {
				start := len(sc.RankArena)
				var err error
				sc.RankArena, err = seqenc.DecodeSeq(sc.RankArena, e.Key)
				if err != nil {
					return fmt.Errorf("core: partition %d: corrupt partition sequence: %w", pivot, err)
				}
				sc.Seqs = append(sc.Seqs, miner.WSeq{
					Items:  sc.RankArena[start:len(sc.RankArena):len(sc.RankArena)],
					Weight: e.Weight,
				})
			}
			rs.part = miner.Partition{Pivot: pivot, Parent: parent, Seqs: sc.Seqs}
			nseqs := int64(len(sc.Seqs))
			if capSlots == nil && partStats == nil {
				partitions.Add(1)
				partSeqs.Add(nseqs)
				for {
					cur := maxPart.Load()
					if nseqs <= cur || maxPart.CompareAndSwap(cur, nseqs) {
						break
					}
				}
			}
			if opt.Stream != nil {
				// Streaming: translate each pattern to vocabulary items and
				// hand it to the callback right away. The first callback
				// error — or a cancelled run context, honoring the
				// substrate's emit-point cancellation contract — aborts the
				// in-flight local mining by unwinding it with a recovered
				// panic sentinel (mirroring the substrate's own emit-point
				// aborts; Scratch tolerates abandoned mid-mine state, see
				// miner.Scratch), then fails the Reduce, cancelling the
				// rest of the run.
				var streamErr error
				st := mineStreaming(rs, localCfg, sc, func(pat []flist.Rank, sup int64) {
					streamMu.Lock()
					defer streamMu.Unlock()
					if streamErr == nil {
						if cerr := ctx.Err(); cerr != nil {
							streamErr = cerr
						}
					}
					if streamErr == nil {
						var items gsm.Sequence
						if items, streamErr = fl.TranslateFromRanks(nil, pat); streamErr == nil {
							streamErr = opt.Stream(items, sup)
						}
					}
					if streamErr != nil {
						panic(streamAbort{})
					}
				})
				if partStats != nil {
					partStats[pivot] = partStat{mined: true, seqs: nseqs, explored: st.Explored, output: st.Output}
				} else {
					explored.Add(st.Explored)
					output.Add(st.Output)
				}
				streamMu.Lock()
				defer streamMu.Unlock()
				return streamErr
			}
			// Emitted patterns escape the reduce call, so they cannot live in
			// pooled scratch; copy them into chunks amortizing one allocation
			// over many patterns instead of one per pattern. Capturing runs
			// keep the patterns in their pivot's slot (attempt-overwritten,
			// hence retry-safe) instead of emitting them, so the post-run
			// assembly knows which partition produced what.
			var chunk []flist.Rank
			var captured []patternOut
			st := rs.m.Mine(&rs.part, localCfg, sc, func(pat []flist.Rank, sup int64) {
				if len(chunk)+len(pat) > cap(chunk) {
					chunk = make([]flist.Rank, 0, max(1024, len(pat)))
				}
				start := len(chunk)
				chunk = append(chunk, pat...)
				po := patternOut{ranks: chunk[start:len(chunk):len(chunk)], support: sup}
				if capSlots != nil {
					captured = append(captured, po)
				} else {
					emit(po)
				}
			})
			switch {
			case capSlots != nil:
				capSlots[pivot] = capPart{
					mined: true, fingerprint: fp,
					seqs: nseqs, explored: st.Explored, output: st.Output,
					ranks: captured,
				}
			case partStats != nil:
				partStats[pivot] = partStat{mined: true, seqs: nseqs, explored: st.Explored, output: st.Output}
			default:
				explored.Add(st.Explored)
				output.Add(st.Output)
			}
			return nil
		},
		// Reduce re-runs safely in batch mode: emitted patterns are
		// attempt-scoped and the statistics above are overwrite-idempotent.
		// Streaming delivery is not replayable — a retried partition would
		// hand the consumer duplicate patterns — so it stays single-attempt.
		ReduceRetryable: opt.Stream == nil,
	})
	if err != nil {
		return nil, err
	}

	res.Jobs.Mine = stats
	switch {
	case capSlots != nil:
		if err := assembleCapture(res, db, fl, opt, plan, capSlots); err != nil {
			return nil, err
		}
	case partStats != nil:
		for i := range partStats {
			ps := &partStats[i]
			if !ps.mined {
				continue
			}
			res.NumPartitions++
			res.PartitionSeqs += ps.seqs
			if ps.seqs > res.MaxPartitionSeqs {
				res.MaxPartitionSeqs = ps.seqs
			}
			res.Miner.Explored += ps.explored
			res.Miner.Output += ps.output
		}
	default:
		res.Miner = miner.Stats{Explored: explored.Load(), Output: output.Load()}
		res.NumPartitions = int(partitions.Load())
		res.PartitionSeqs = partSeqs.Load()
		res.MaxPartitionSeqs = maxPart.Load()
	}
	if capSlots == nil {
		for _, po := range out {
			items, err := fl.TranslateFromRanks(nil, po.ranks)
			if err != nil {
				return nil, err
			}
			res.Patterns = append(res.Patterns, gsm.Pattern{Items: items, Support: po.support})
		}
	}
	return res, nil
}

package core_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"lash/internal/core"
	"lash/internal/datagen"
	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/rewrite"
	"lash/internal/seqenc"
)

// refMineJob is the pre-streaming partition+mine job, kept verbatim as the
// differential-testing reference: classic barriered Run, one singleton
// map[string]int64 per emit, map-merge combiner, string-sorted partition
// keys. The streaming aggregated-shuffle path must reproduce its output
// exactly.
func refMineJob(t *testing.T, db *gsm.Database, fl *flist.FList, kind miner.Kind, p gsm.Params, mr mapreduce.Config) []gsm.Pattern {
	t.Helper()
	type patternOut struct {
		ranks   []flist.Rank
		support int64
	}
	rewriters := sync.Pool{New: func() any {
		return rewrite.NewRewriter(fl, p.Gamma, p.Lambda)
	}}
	localCfg := miner.Config{Sigma: p.Sigma, Gamma: p.Gamma, Lambda: p.Lambda, PivotOnly: true}
	parent := fl.ParentTable()

	out, _, err := mapreduce.Run(context.Background(), mr, db.Seqs, mapreduce.Job[gsm.Sequence, flist.Rank, map[string]int64, patternOut]{
		Name: "ref-partition+mine",
		Map: func(t gsm.Sequence, emit func(flist.Rank, map[string]int64)) {
			rw := rewriters.Get().(*rewrite.Rewriter)
			defer rewriters.Put(rw)
			var buf []flist.Rank
			for _, pivot := range fl.PivotRanks(nil, t) {
				buf = rw.Rewrite(buf[:0], t, pivot)
				if len(buf) == 0 {
					continue
				}
				enc := seqenc.AppendSeq(nil, buf)
				emit(pivot, map[string]int64{string(enc): 1})
			}
		},
		Combine: func(a, b map[string]int64) map[string]int64 {
			if len(a) < len(b) {
				a, b = b, a
			}
			for k, v := range b {
				a[k] += v
			}
			return a
		},
		Hash: func(pivot flist.Rank) uint32 { return mapreduce.HashUint32(uint32(pivot)) },
		Reduce: func(pivot flist.Rank, parts []map[string]int64, emit func(patternOut)) {
			merged := parts[0]
			for _, m := range parts[1:] {
				if len(merged) < len(m) {
					merged, m = m, merged
				}
				for k, v := range m {
					merged[k] += v
				}
			}
			p := &miner.Partition{Pivot: pivot, Parent: parent}
			keys := make([]string, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				items, err := seqenc.DecodeSeq(nil, []byte(k))
				if err != nil {
					continue
				}
				p.Seqs = append(p.Seqs, miner.WSeq{Items: items, Weight: merged[k]})
			}
			if len(p.Seqs) == 0 {
				return
			}
			miner.New(kind).Mine(p, localCfg, nil, func(pat []flist.Rank, sup int64) {
				emit(patternOut{ranks: append([]flist.Rank(nil), pat...), support: sup})
			})
		},
	})
	if err != nil {
		t.Fatalf("reference job: %v", err)
	}
	var patterns []gsm.Pattern
	for _, po := range out {
		items, err := fl.TranslateFromRanks(nil, po.ranks)
		if err != nil {
			t.Fatalf("reference translate: %v", err)
		}
		patterns = append(patterns, gsm.Pattern{Items: items, Support: po.support})
	}
	gsm.SortPatterns(patterns)
	return patterns
}

// The streaming aggregated-shuffle pipeline must return byte-identical
// patterns and supports to the old barriered path on randomized databases.
func TestStreamingMatchesReferenceOnRandomDBs(t *testing.T) {
	type dbCase struct {
		name string
		db   *gsm.Database
	}
	var cases []dbCase
	for seed := int64(1); seed <= 3; seed++ {
		corpus := datagen.GenerateText(datagen.TextConfig{Sentences: 250, Lemmas: 150, Seed: seed})
		for _, variant := range []datagen.TextHierarchy{datagen.HierarchyLP, datagen.HierarchyCLP} {
			db, err := corpus.Build(variant)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, dbCase{fmt.Sprintf("text/seed%d/%s", seed, variant), db})
		}
	}
	market := datagen.GenerateMarket(datagen.MarketConfig{Users: 250, Seed: 7})
	mdb, err := market.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, dbCase{"market/h4", mdb})

	params := gsm.Params{Sigma: 8, Gamma: 1, Lambda: 4}
	mr := mapreduce.Config{Workers: 4, MapTasks: 7, ReduceTasks: 5}
	sawPatterns := false
	for _, c := range cases {
		for _, kind := range []miner.Kind{miner.KindPSM, miner.KindBFS} {
			t.Run(fmt.Sprintf("%s/%s", c.name, kind), func(t *testing.T) {
				res, err := core.Mine(context.Background(), c.db, core.Options{Params: params, Miner: kind, MR: mr})
				if err != nil {
					t.Fatal(err)
				}
				want := refMineJob(t, c.db, res.FList, kind, params, mr)
				if len(res.Patterns) > 0 {
					sawPatterns = true
				}
				if !gsm.EqualPatterns(res.Patterns, want) {
					t.Fatalf("streaming output diverges from reference:\nstreaming: %d patterns %v\nreference: %d patterns %v",
						len(res.Patterns), res.Patterns, len(want), want)
				}
			})
		}
	}
	if !sawPatterns {
		t.Fatal("differential test vacuous: no case produced patterns")
	}
}

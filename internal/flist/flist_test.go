package flist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/paperex"
)

// The paper's generalized f-list for σ=2 (Fig. 2): a:5, B:5, b1:4, c:3, D:2,
// ordered a < B < b1 < c < D.
func TestPaperFList(t *testing.T) {
	db := paperex.Database()
	freq := flist.ComputeFrequencies(db)
	f := db.Forest
	wantFreq := map[string]int64{
		"a": 5, "B": 5, "b1": 4, "c": 3, "D": 2,
		"b2": 1, "b3": 1, "b11": 1, "b12": 1, "b13": 1, "d1": 1, "d2": 1,
		"e": 1, "f": 1,
	}
	for name, want := range wantFreq {
		w, _ := f.Lookup(name)
		if freq[w] != want {
			t.Errorf("f0(%s) = %d, want %d", name, freq[w], want)
		}
	}
	fl, err := flist.Build(f, freq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fl.NumFrequent() != 5 {
		t.Fatalf("NumFrequent = %d, want 5", fl.NumFrequent())
	}
	for r, row := range paperex.GeneralizedFList() {
		w := fl.VocabOf(flist.Rank(r))
		if f.Name(w) != row.Name {
			t.Errorf("rank %d = %s, want %s", r, f.Name(w), row.Name)
		}
		if fl.FreqOfRank(flist.Rank(r)) != row.Freq {
			t.Errorf("freq of rank %d = %d, want %d", r, fl.FreqOfRank(flist.Rank(r)), row.Freq)
		}
	}
	// Parent ranks: b1's parent is B (rank 1); D, a, B, c are roots.
	b1, _ := f.Lookup("b1")
	B, _ := f.Lookup("B")
	if fl.ParentRank(fl.RankOf(b1)) != fl.RankOf(B) {
		t.Error("parent rank of b1 should be B")
	}
	a, _ := f.Lookup("a")
	if fl.ParentRank(fl.RankOf(a)) != flist.NoRank {
		t.Error("a is a root")
	}
}

func TestGeneralizeTo(t *testing.T) {
	db := paperex.Database()
	fl, err := flist.BuildFromDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := db.Forest
	lk := func(n string) hierarchy.Item { w, _ := f.Lookup(n); return w }
	rk := func(n string) flist.Rank { return fl.RankOf(lk(n)) }

	// §4.2 example, pivot B (rank 1): b3 and b2 generalize to B; c has no
	// ancestor ≤ B → blank; a stays a.
	pivotB := rk("B")
	if got := fl.GeneralizeTo(lk("b3"), pivotB); got != rk("B") {
		t.Errorf("b3 under pivot B → rank %d, want B", got)
	}
	if got := fl.GeneralizeTo(lk("c"), pivotB); got != flist.NoRank {
		t.Errorf("c under pivot B → %d, want blank", got)
	}
	if got := fl.GeneralizeTo(lk("a"), pivotB); got != rk("a") {
		t.Errorf("a under pivot B → %d, want a", got)
	}
	// Pivot b1 (rank 2): b11 → b1 (deepest ≤ pivot), b3 → B (b3 itself is
	// infrequent, b1-sibling), d1 → blank (D has rank 4 > 2).
	pivotb1 := rk("b1")
	if got := fl.GeneralizeTo(lk("b11"), pivotb1); got != rk("b1") {
		t.Errorf("b11 under pivot b1 → %d, want b1", got)
	}
	if got := fl.GeneralizeTo(lk("b3"), pivotb1); got != rk("B") {
		t.Errorf("b3 under pivot b1 → %d, want B", got)
	}
	if got := fl.GeneralizeTo(lk("d1"), pivotb1); got != flist.NoRank {
		t.Errorf("d1 under pivot b1 → %d, want blank", got)
	}
	// Pivot D (rank 4): d1 → D itself (pivot is its own frequent ancestor).
	if got := fl.GeneralizeTo(lk("d1"), rk("D")); got != rk("D") {
		t.Errorf("d1 under pivot D → %d, want D", got)
	}
	// Closest frequent ancestor (semi-naïve): e → blank, b11 → b1.
	if got := fl.FrequentRank(lk("e")); got != flist.NoRank {
		t.Errorf("FrequentRank(e) = %d, want blank", got)
	}
	if got := fl.FrequentRank(lk("b11")); got != rk("b1") {
		t.Errorf("FrequentRank(b11) = %d, want b1", got)
	}
}

func TestPivotRanks(t *testing.T) {
	db := paperex.Database()
	fl, err := flist.BuildFromDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := db.Forest
	// T6 = b13 f d2 contributes to partitions b1, B, D (frequent members of
	// G1(T6)); T2 = a b3 c c b2 to a, B, c.
	cases := []struct {
		seq  string
		want []string
	}{
		{"b13 f d2", []string{"B", "b1", "D"}},
		{"a b3 c c b2", []string{"a", "B", "c"}},
		{"a c", []string{"a", "c"}},
	}
	for _, c := range cases {
		got := fl.PivotRanks(nil, paperex.Seq(f, c.seq))
		if len(got) != len(c.want) {
			t.Fatalf("PivotRanks(%q) = %d pivots, want %d", c.seq, len(got), len(c.want))
		}
		for i, r := range got {
			if f.Name(fl.VocabOf(r)) != c.want[i] {
				t.Errorf("PivotRanks(%q)[%d] = %s, want %s", c.seq, i, f.Name(fl.VocabOf(r)), c.want[i])
			}
			if i > 0 && got[i-1] >= r {
				t.Errorf("PivotRanks(%q) not sorted", c.seq)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	f := paperex.Forest()
	if _, err := flist.Build(f, make([]int64, 3), 1); err == nil {
		t.Error("length mismatch not caught")
	}
	if _, err := flist.Build(f, make([]int64, f.Size()), 0); err == nil {
		t.Error("σ=0 not caught")
	}
	// Frequent child with infrequent parent violates the nesting invariant.
	bad := make([]int64, f.Size())
	b1, _ := f.Lookup("b1")
	bad[b1] = 10
	if _, err := flist.Build(f, bad, 2); err == nil {
		t.Error("infrequent-parent inconsistency not caught")
	}
}

func TestTranslate(t *testing.T) {
	db := paperex.Database()
	fl, _ := flist.BuildFromDB(db, 2)
	f := db.Forest
	s := paperex.Seq(f, "a b1 c")
	ranks := fl.TranslateToRanks(nil, s)
	back, err := fl.TranslateFromRanks(nil, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if gsm.String(f, back) != "a b1 c" {
		t.Fatalf("round trip = %q", gsm.String(f, back))
	}
	// Infrequent items become blanks and cannot translate back.
	ranks2 := fl.TranslateToRanks(nil, paperex.Seq(f, "a e"))
	if ranks2[1] != flist.NoRank {
		t.Fatal("infrequent item should be NoRank")
	}
	if _, err := fl.TranslateFromRanks(nil, ranks2); err == nil {
		t.Fatal("blank translation should fail")
	}
}

// Properties over random databases: (1) the order assigns parents smaller
// ranks than children ("w2 → w1 implies w1 < w2"); (2) f0 is monotone along
// the hierarchy; (3) f0 matches a direct definition-based count.
func TestQuickOrderAndFrequencies(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		f := db.Forest
		freq := flist.ComputeFrequencies(db)
		// (3) definition check: count sequences containing w or a descendant.
		for w := 0; w < f.Size(); w++ {
			var n int64
			for _, t := range db.Seqs {
				has := false
				for _, u := range t {
					if f.GeneralizesTo(u, hierarchy.Item(w)) {
						has = true
						break
					}
				}
				if has {
					n++
				}
			}
			if n != freq[w] {
				return false
			}
		}
		// (2) monotonicity along parents.
		for w := 0; w < f.Size(); w++ {
			if p := f.Parent(hierarchy.Item(w)); p != hierarchy.NoItem {
				if freq[p] < freq[w] {
					return false
				}
			}
		}
		fl, err := flist.Build(f, freq, 1+int64(r.Intn(3)))
		if err != nil {
			return false
		}
		// (1) order property.
		for rr := 0; rr < fl.NumFrequent(); rr++ {
			if p := fl.ParentRank(flist.Rank(rr)); p != flist.NoRank && p >= flist.Rank(rr) {
				return false
			}
		}
		// Ranks sorted by frequency descending.
		for rr := 1; rr < fl.NumFrequent(); rr++ {
			if fl.FreqOfRank(flist.Rank(rr)) > fl.FreqOfRank(flist.Rank(rr-1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func randDB(r *rand.Rand) *gsm.Database {
	b := hierarchy.NewBuilder()
	n := 3 + r.Intn(10)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		b.Add(names[i])
	}
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			b.AddEdge(names[i], names[r.Intn(i)])
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := &gsm.Database{Forest: f}
	for i, k := 0, 2+r.Intn(8); i < k; i++ {
		l := 1 + r.Intn(6)
		s := make(gsm.Sequence, l)
		for j := range s {
			s[j] = hierarchy.Item(r.Intn(n))
		}
		db.Seqs = append(db.Seqs, s)
	}
	return db
}

// Package flist implements the generalized f-list of the LASH paper (§3.3)
// and the total item order < used for item-based partitioning (§3.4).
//
// The generalized f-list is hierarchy-aware: the frequency f0(w, D) of an
// item w is the number of input sequences that contain w or any of its
// descendants. Frequent items (f0 ≥ σ) are assigned dense ranks following
// the paper's order: more frequent items are "smaller"; ties are broken in a
// hierarchy-aware way (items at higher — more general — levels first), and
// remaining ties by vocabulary id. This ordering guarantees that
// w2 → w1 (w1 parent of w2) implies rank(w1) < rank(w2).
package flist

import (
	"fmt"
	"math"
	"sort"

	"lash/internal/gsm"
	"lash/internal/hierarchy"
)

// Rank is a frequency-ordered dense id of a frequent item: rank 0 is the
// "smallest" (most frequent) item of the total order <.
type Rank uint32

// NoRank marks infrequent items. Because it compares larger than every real
// rank, it doubles as the blank symbol "_" in rewritten sequences (the paper
// requires w < _ for all items w).
const NoRank Rank = math.MaxUint32

// FList is the generalized f-list plus the derived rank space.
type FList struct {
	forest  *hierarchy.Forest
	sigma   int64
	freq    []int64          // vocab → f0(w, D)
	rankOf  []Rank           // vocab → rank or NoRank
	vocabOf []hierarchy.Item // rank → vocab item
	parent  []Rank           // rank → parent rank (or NoRank for roots)
}

// ComputeFrequencies returns the hierarchy-aware document frequency of every
// vocabulary item: the number of sequences containing the item or any
// descendant. This is the sequential (non-MapReduce) implementation used by
// the library path and tests; the engine computes the same quantity with a
// MapReduce job.
func ComputeFrequencies(db *gsm.Database) []int64 {
	f := db.Forest
	freq := make([]int64, f.Size())
	seen := make(map[hierarchy.Item]struct{}, 64)
	var scratch []hierarchy.Item
	for _, t := range db.Seqs {
		clear(seen)
		for _, w := range t {
			if _, done := seen[w]; done {
				continue
			}
			scratch = f.SelfAndAncestors(scratch[:0], w)
			for _, g := range scratch {
				seen[g] = struct{}{}
			}
		}
		for g := range seen {
			freq[g]++
		}
	}
	return freq
}

// Build derives the rank space from per-item frequencies and σ.
func Build(forest *hierarchy.Forest, freq []int64, sigma int64) (*FList, error) {
	if len(freq) != forest.Size() {
		return nil, fmt.Errorf("flist: %d frequencies for %d items", len(freq), forest.Size())
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("flist: σ must be positive, got %d", sigma)
	}
	fl := &FList{
		forest: forest,
		sigma:  sigma,
		freq:   append([]int64(nil), freq...),
		rankOf: make([]Rank, forest.Size()),
	}
	var frequent []hierarchy.Item
	for w := 0; w < forest.Size(); w++ {
		fl.rankOf[w] = NoRank
		if freq[w] >= sigma {
			frequent = append(frequent, hierarchy.Item(w))
		}
	}
	sort.Slice(frequent, func(i, j int) bool {
		a, b := frequent[i], frequent[j]
		if freq[a] != freq[b] {
			return freq[a] > freq[b]
		}
		if la, lb := forest.Level(a), forest.Level(b); la != lb {
			return la < lb
		}
		return a < b
	})
	fl.vocabOf = frequent
	fl.parent = make([]Rank, len(frequent))
	for r, w := range frequent {
		fl.rankOf[w] = Rank(r)
	}
	for r, w := range frequent {
		p := forest.Parent(w)
		if p == hierarchy.NoItem {
			fl.parent[r] = NoRank
			continue
		}
		pr := fl.rankOf[p]
		if pr == NoRank {
			// A frequent item's ancestors are at least as frequent (support
			// sets nest, Lemma 1) — an infrequent parent is a logic error in
			// the supplied frequencies.
			return nil, fmt.Errorf("flist: frequent item %q (f=%d) has infrequent parent %q (f=%d)",
				forest.Name(w), freq[w], forest.Name(p), freq[p])
		}
		if pr >= Rank(r) {
			return nil, fmt.Errorf("flist: order violation: parent %q not smaller than child %q",
				forest.Name(p), forest.Name(w))
		}
		fl.parent[r] = pr
	}
	return fl, nil
}

// BuildFromDB computes frequencies and builds the f-list in one step.
func BuildFromDB(db *gsm.Database, sigma int64) (*FList, error) {
	return Build(db.Forest, ComputeFrequencies(db), sigma)
}

// Forest returns the hierarchy this f-list was built over.
func (fl *FList) Forest() *hierarchy.Forest { return fl.forest }

// Sigma returns the support threshold the f-list was built with.
func (fl *FList) Sigma() int64 { return fl.sigma }

// NumFrequent returns the number of frequent items (= number of partitions
// LASH will create).
func (fl *FList) NumFrequent() int { return len(fl.vocabOf) }

// Freq returns f0(w, D) for a vocabulary item.
func (fl *FList) Freq(w hierarchy.Item) int64 { return fl.freq[w] }

// FreqOfRank returns f0 for a rank.
func (fl *FList) FreqOfRank(r Rank) int64 { return fl.freq[fl.vocabOf[r]] }

// RankOf returns the rank of a vocabulary item (NoRank if infrequent).
func (fl *FList) RankOf(w hierarchy.Item) Rank { return fl.rankOf[w] }

// VocabOf returns the vocabulary item of a rank.
func (fl *FList) VocabOf(r Rank) hierarchy.Item { return fl.vocabOf[r] }

// ParentRank returns the rank of the parent of rank r (NoRank for roots).
// Parents always have smaller ranks.
func (fl *FList) ParentRank(r Rank) Rank { return fl.parent[r] }

// ParentTable returns the rank → parent-rank table (shared; do not modify).
// Local miners use it for hierarchy-aware expansion without touching the
// vocabulary space.
func (fl *FList) ParentTable() []Rank { return fl.parent }

// GeneralizeTo returns the deepest frequent ancestor-or-self of vocabulary
// item w whose rank is ≤ maxRank, or NoRank if none exists. With
// maxRank = NoRank-1 this is "closest frequent ancestor or self" (the
// semi-naïve algorithm's rewrite); with maxRank = pivot it is exactly the
// w-generalization primitive of §4.2.
func (fl *FList) GeneralizeTo(w hierarchy.Item, maxRank Rank) Rank {
	for w != hierarchy.NoItem {
		if r := fl.rankOf[w]; r <= maxRank {
			return r
		}
		w = fl.forest.Parent(w)
	}
	return NoRank
}

// FrequentRank is GeneralizeTo with no rank bound: the closest frequent
// ancestor-or-self.
func (fl *FList) FrequentRank(w hierarchy.Item) Rank {
	return fl.GeneralizeTo(w, NoRank-1)
}

// PivotRanks appends to dst the distinct frequent ranks of G1(T) — every
// frequent item that occurs in t directly or as a generalization. These are
// precisely the partitions t contributes to (Alg. 1, line 2). The result is
// sorted ascending.
func (fl *FList) PivotRanks(dst []Rank, t gsm.Sequence) []Rank {
	start := len(dst)
	for _, w := range t {
		for u := w; u != hierarchy.NoItem; u = fl.forest.Parent(u) {
			if r := fl.rankOf[u]; r != NoRank {
				dst = append(dst, r)
			}
		}
	}
	tail := dst[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	// Deduplicate in place.
	out := dst[:start]
	for i, r := range tail {
		if i == 0 || r != tail[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// TranslateToRanks maps a vocabulary sequence into rank space with no
// generalization: infrequent items become NoRank (blank). Used by flat
// mining paths and tests.
func (fl *FList) TranslateToRanks(dst []Rank, t gsm.Sequence) []Rank {
	for _, w := range t {
		dst = append(dst, fl.rankOf[w])
	}
	return dst
}

// TranslateFromRanks maps a rank sequence back to vocabulary items; blanks
// are not allowed (patterns never contain blanks).
func (fl *FList) TranslateFromRanks(dst gsm.Sequence, s []Rank) (gsm.Sequence, error) {
	for _, r := range s {
		if r == NoRank || int(r) >= len(fl.vocabOf) {
			return dst, fmt.Errorf("flist: rank %d not translatable", r)
		}
		dst = append(dst, fl.vocabOf[r])
	}
	return dst, nil
}

// Package rewrite implements LASH's partition construction (§4 of the
// paper): for a pivot item w, an input sequence T is rewritten into a
// w-equivalent sequence P_w(T) that is as short as possible while generating
// exactly the same set of pivot sequences G_{w,λ}(T).
//
// The rewrites, applied in order:
//
//  1. w-generalization (§4.2): every item is replaced by its deepest
//     frequent ancestor-or-self with rank ≤ pivot; items without one become
//     blanks.
//  2. Unreachability reduction (§4.3): left/right pivot distances are
//     computed (chains of non-blank indexes obeying the gap constraint);
//     indexes whose minimum distance exceeds λ cannot participate in any
//     pivot sequence and are blanked. (The paper deletes them; deleting
//     interior indexes would shrink gaps between survivors and could admit
//     sequences that are not ⊑γ-valid in T, so we blank instead — the blank
//     compression below recovers the same effect, and at the sequence edges
//     trimming makes the two formulations identical.)
//  3. Isolated pivots — pivots with no non-blank item within gap γ — are
//     blanked; they cannot appear in any pattern of length ≥ 2.
//  4. Blank runs longer than γ+1 collapse to exactly γ+1 (both are
//     impassable under the gap constraint, and shorter crossings are
//     unchanged); leading and trailing blanks are trimmed.
//
// The result is nil when no pivot sequence can be generated from T.
package rewrite

import (
	"lash/internal/flist"
	"lash/internal/gsm"
)

const inf = int32(1 << 30)

// Mode selects how much of the rewrite pipeline runs; the weaker modes are
// correct (w-equivalent) but increasingly wasteful, and exist for the
// ablation study of the §4 discussion (skew, redundant computation,
// communication cost of the trivial partitioning P_w(T) = T).
type Mode int

const (
	// ModeFull applies the whole pipeline (LASH's default).
	ModeFull Mode = iota
	// ModeGeneralizeOnly applies w-generalization but none of the length
	// reductions (no unreachability removal, no isolated-pivot removal, no
	// blank compression or trimming).
	ModeGeneralizeOnly
	// ModeNone emits the input sequence essentially verbatim: each item is
	// replaced by its closest frequent ancestor-or-self (which preserves all
	// frequent patterns) with no pivot-specific work at all — the paper's
	// "simple and correct approach ... P_w(T) = T".
	ModeNone
)

// String names the mode for reports.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeGeneralizeOnly:
		return "generalize-only"
	case ModeNone:
		return "none"
	}
	return "Mode(?)"
}

// Rewriter rewrites input sequences for a fixed (γ, λ) and f-list. It is not
// safe for concurrent use; create one per worker.
type Rewriter struct {
	fl     *flist.FList
	gamma  int
	lambda int

	// Mode selects the rewrite strength (default ModeFull).
	Mode Mode

	ranks []flist.Rank
	left  []int32
	right []int32
}

// NewRewriter returns a Rewriter for the given f-list and constraints.
func NewRewriter(fl *flist.FList, gamma, lambda int) *Rewriter {
	return &Rewriter{fl: fl, gamma: gamma, lambda: lambda}
}

// Rewrite computes P_w(T) in rank space for the given pivot, appending to
// dst. It returns nil (and leaves dst unchanged) when the rewritten sequence
// cannot contribute any pivot sequence: no pivot survives or fewer than two
// items remain.
func (rw *Rewriter) Rewrite(dst []flist.Rank, t gsm.Sequence, pivot flist.Rank) []flist.Rank {
	n := len(t)
	if n == 0 {
		return nil
	}
	if cap(rw.ranks) < n {
		rw.ranks = make([]flist.Rank, n)
		rw.left = make([]int32, n)
		rw.right = make([]int32, n)
	}
	ranks := rw.ranks[:n]

	if rw.Mode == ModeNone {
		// No pivot-specific work: closest frequent ancestor-or-self per item
		// (every frequent pattern of T is preserved; the pivot survives as a
		// descendant-or-self of itself). Emitted for every pivot — this is
		// the replication the rewrites exist to avoid.
		if n < 2 {
			return nil
		}
		hasPivot := false
		for i, w := range t {
			r := rw.fl.FrequentRank(w)
			ranks[i] = r
			if !hasPivot && r != flist.NoRank && rw.generalizesToPivot(r, pivot) {
				hasPivot = true
			}
		}
		if !hasPivot {
			return nil
		}
		return append(dst, ranks...)
	}

	// Step 1: w-generalization.
	hasPivot := false
	for i, w := range t {
		r := rw.fl.GeneralizeTo(w, pivot)
		ranks[i] = r
		if r == pivot {
			hasPivot = true
		}
	}
	if !hasPivot {
		return nil
	}
	if rw.Mode == ModeGeneralizeOnly {
		nonBlank := 0
		for _, r := range ranks {
			if r != flist.NoRank {
				nonBlank++
			}
		}
		if nonBlank < 2 {
			return nil
		}
		return append(dst, ranks...)
	}

	// Step 2: pivot distances. left[i] is the size of the smallest chain of
	// increasing indexes from a pivot index to i where intermediate indexes
	// are non-blank and consecutive indexes are at most γ apart; right[i] is
	// symmetric.
	left, right := rw.left[:n], rw.right[:n]
	g := rw.gamma
	for i := 0; i < n; i++ {
		if ranks[i] == pivot {
			left[i] = 1
			continue
		}
		best := inf
		for j := i - 1 - g; j < i; j++ {
			if j < 0 || ranks[j] == flist.NoRank {
				continue
			}
			if left[j] < best {
				best = left[j]
			}
		}
		if best < inf {
			best++
		}
		left[i] = best
	}
	for i := n - 1; i >= 0; i-- {
		if ranks[i] == pivot {
			right[i] = 1
			continue
		}
		best := inf
		for j := i + 1; j <= i+1+g && j < n; j++ {
			if ranks[j] == flist.NoRank {
				continue
			}
			if right[j] < best {
				best = right[j]
			}
		}
		if best < inf {
			best++
		}
		right[i] = best
	}
	lam := int32(rw.lambda)
	for i := 0; i < n; i++ {
		if min32(left[i], right[i]) > lam {
			ranks[i] = flist.NoRank
		}
	}

	// Step 3: isolated pivots (simultaneous evaluation — see package doc).
	// A pivot with no non-blank index within gap γ participates in no
	// pattern of length ≥ 2.
	anyPivot := false
	for i := 0; i < n; i++ {
		if ranks[i] != pivot {
			continue
		}
		isolated := true
		for j := i - 1 - g; j <= i+1+g && isolated; j++ {
			if j < 0 || j >= n || j == i {
				continue
			}
			if ranks[j] != flist.NoRank {
				isolated = false
			}
		}
		if isolated {
			ranks[i] = flist.NoRank // deferred effect: other pivots were
			// evaluated against the pre-removal state only if they come
			// later; earlier pivots already decided. Removing an isolated
			// pivot cannot isolate others incorrectly (see package doc).
		} else {
			anyPivot = true
		}
	}
	if !anyPivot {
		return nil
	}

	// Step 4: trim edges, compress blank runs to at most γ+1, emit.
	lo, hi := 0, n-1
	for lo <= hi && ranks[lo] == flist.NoRank {
		lo++
	}
	for hi >= lo && ranks[hi] == flist.NoRank {
		hi--
	}
	if hi-lo+1 < 2 {
		return nil
	}
	mark := len(dst)
	run := 0
	maxRun := g + 1
	for i := lo; i <= hi; i++ {
		if ranks[i] == flist.NoRank {
			run++
			if run <= maxRun {
				dst = append(dst, flist.NoRank)
			}
			continue
		}
		run = 0
		dst = append(dst, ranks[i])
	}
	if len(dst)-mark < 2 {
		return dst[:mark]
	}
	return dst
}

// generalizesToPivot reports whether rank r has the pivot among its
// ancestors-or-self in rank space.
func (rw *Rewriter) generalizesToPivot(r, pivot flist.Rank) bool {
	parent := rw.fl.ParentTable()
	for r != flist.NoRank {
		if r == pivot {
			return true
		}
		if r < pivot || int(r) >= len(parent) {
			return false // ancestors only get smaller; cannot reach pivot
		}
		r = parent[r]
	}
	return false
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Distances exposes the pivot-distance computation on an already
// w-generalized rank sequence, for tests reproducing the §4.3 example.
// Entries of the returned slices are chain sizes, or a value > λ_max (1<<30)
// when unreachable.
func Distances(ranks []flist.Rank, pivot flist.Rank, gamma int) (left, right []int32) {
	n := len(ranks)
	left = make([]int32, n)
	right = make([]int32, n)
	for i := 0; i < n; i++ {
		if ranks[i] == pivot {
			left[i] = 1
			continue
		}
		best := inf
		for j := i - 1 - gamma; j < i; j++ {
			if j < 0 || ranks[j] == flist.NoRank {
				continue
			}
			if left[j] < best {
				best = left[j]
			}
		}
		if best < inf {
			best++
		}
		left[i] = best
	}
	for i := n - 1; i >= 0; i-- {
		if ranks[i] == pivot {
			right[i] = 1
			continue
		}
		best := inf
		for j := i + 1; j <= i+1+gamma && j < n; j++ {
			if ranks[j] == flist.NoRank {
				continue
			}
			if right[j] < best {
				best = right[j]
			}
		}
		if best < inf {
			best++
		}
		right[i] = best
	}
	return left, right
}

// Infinite reports whether a distance value means "unreachable".
func Infinite(d int32) bool { return d >= inf }

// PivotSeqSet computes G_{w,λ}(T) for a rank-space sequence: the set of
// generalized subsequences (under the rank-parent table) that satisfy the
// gap and length constraints and whose largest item equals the pivot. Blanks
// match nothing. Exponential; exported for w-equivalency tests only.
func PivotSeqSet(parent []flist.Rank, t []flist.Rank, pivot flist.Rank, gamma, lambda int) map[string]struct{} {
	out := make(map[string]struct{})
	cur := make([]flist.Rank, 0, lambda)
	var key func() string
	key = func() string {
		b := make([]byte, 0, 4*len(cur))
		for _, r := range cur {
			b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		return string(b)
	}
	selfAnc := func(r flist.Rank) []flist.Rank {
		if r == flist.NoRank {
			return nil
		}
		var a []flist.Rank
		for r != flist.NoRank {
			a = append(a, r)
			if int(r) >= len(parent) {
				break
			}
			r = parent[r]
		}
		return a
	}
	var rec func(last int, hasPivot bool)
	rec = func(last int, hasPivot bool) {
		if len(cur) >= 2 && hasPivot {
			out[key()] = struct{}{}
		}
		if len(cur) == lambda {
			return
		}
		hi := last + 1 + gamma
		if hi >= len(t) {
			hi = len(t) - 1
		}
		for j := last + 1; j <= hi; j++ {
			for _, a := range selfAnc(t[j]) {
				if a > pivot {
					continue
				}
				cur = append(cur, a)
				rec(j, hasPivot || a == pivot)
				cur = cur[:len(cur)-1]
			}
		}
	}
	for i := range t {
		for _, a := range selfAnc(t[i]) {
			if a > pivot {
				continue
			}
			cur = append(cur[:0], a)
			rec(i, a == pivot)
		}
	}
	return out
}

package rewrite_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/hierarchy"
	"lash/internal/paperex"
	"lash/internal/rewrite"
)

// rankStr renders a rank-space sequence using item names and "_" for blanks.
func rankStr(fl *flist.FList, s []flist.Rank) string {
	if s == nil {
		return "<nil>"
	}
	parts := make([]string, len(s))
	for i, r := range s {
		if r == flist.NoRank {
			parts[i] = "_"
		} else {
			parts[i] = fl.Forest().Name(fl.VocabOf(r))
		}
	}
	return strings.Join(parts, " ")
}

func paperFlist(t testing.TB) *flist.FList {
	t.Helper()
	fl, err := flist.BuildFromDB(paperex.Database(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

func rankOfName(t testing.TB, fl *flist.FList, name string) flist.Rank {
	t.Helper()
	w, ok := fl.Forest().Lookup(name)
	if !ok {
		t.Fatalf("unknown item %q", name)
	}
	r := fl.RankOf(w)
	if r == flist.NoRank {
		t.Fatalf("item %q is not frequent", name)
	}
	return r
}

// Golden test: the partitions of Fig. 2 (σ=2, γ=1, λ=3), sequence by
// sequence and pivot by pivot.
func TestPaperPartitions(t *testing.T) {
	fl := paperFlist(t)
	f := fl.Forest()
	rw := rewrite.NewRewriter(fl, 1, 3)
	seqs := []string{
		"a b1 a b1",   // T1
		"a b3 c c b2", // T2
		"a c",         // T3
		"b11 a e a",   // T4
		"a b12 d1 c",  // T5
		"b13 f d2",    // T6
	}
	// want[pivot][seqIdx]; "<nil>" = no emission.
	want := map[string][]string{
		"a":  {"a _ a", "<nil>", "<nil>", "a _ a", "<nil>", "<nil>"},
		"B":  {"a B a B", "a B", "<nil>", "B a _ a", "a B", "<nil>"},
		"b1": {"a b1 a b1", "<nil>", "<nil>", "b1 a _ a", "a b1", "<nil>"},
		"c":  {"<nil>", "a B c c B", "a c", "<nil>", "a b1 _ c", "<nil>"},
		"D":  {"<nil>", "<nil>", "<nil>", "<nil>", "a b1 D c", "b1 _ D"},
	}
	for pname, rows := range want {
		pivot := rankOfName(t, fl, pname)
		for i, wantStr := range rows {
			got := rw.Rewrite(nil, paperex.Seq(f, seqs[i]), pivot)
			if rankStr(fl, got) != wantStr {
				t.Errorf("P_%s(T%d) = %q, want %q", pname, i+1, rankStr(fl, got), wantStr)
			}
		}
	}
}

// Golden test: the distance table of §4.3 for T = a b1 a c d1 a d2 c f b2 c,
// pivot D, γ = 1, after D-generalization (a b1 a c D a D c _ B c).
func TestPaperDistanceTable(t *testing.T) {
	fl := paperFlist(t)
	f := fl.Forest()
	pivot := rankOfName(t, fl, "D")
	tseq := paperex.Seq(f, "a b1 a c d1 a d2 c f b2 c")
	gen := make([]flist.Rank, len(tseq))
	for i, w := range tseq {
		gen[i] = fl.GeneralizeTo(w, pivot)
	}
	if got := rankStr(fl, gen); got != "a b1 a c D a D c _ B c" {
		t.Fatalf("D-generalization = %q", got)
	}
	left, right := rewrite.Distances(gen, pivot, 1)
	// Paper's table ("-" = infinite):
	wantLeft := []string{"-", "-", "-", "-", "1", "2", "1", "2", "2", "3", "4"}
	wantRight := []string{"3", "3", "2", "2", "1", "2", "1", "-", "-", "-", "-"}
	fmtD := func(d int32) string {
		if rewrite.Infinite(d) {
			return "-"
		}
		return string(rune('0' + d))
	}
	for i := range gen {
		if fmtD(left[i]) != wantLeft[i] {
			t.Errorf("left[%d] = %s, want %s", i+1, fmtD(left[i]), wantLeft[i])
		}
		if fmtD(right[i]) != wantRight[i] {
			t.Errorf("right[%d] = %s, want %s", i+1, fmtD(right[i]), wantRight[i])
		}
	}
}

// Golden test: §4.3 unreachability results. λ=2 → "a c D a D c",
// λ=3 → "a b1 a c D a D c _ B" (after edge trimming).
func TestPaperUnreachability(t *testing.T) {
	fl := paperFlist(t)
	f := fl.Forest()
	pivot := rankOfName(t, fl, "D")
	tseq := paperex.Seq(f, "a b1 a c d1 a d2 c f b2 c")
	got2 := rewrite.NewRewriter(fl, 1, 2).Rewrite(nil, tseq, pivot)
	if rankStr(fl, got2) != "a c D a D c" {
		t.Errorf("λ=2: got %q, want %q", rankStr(fl, got2), "a c D a D c")
	}
	got3 := rewrite.NewRewriter(fl, 1, 3).Rewrite(nil, tseq, pivot)
	if rankStr(fl, got3) != "a b1 a c D a D c _ B" {
		t.Errorf("λ=3: got %q, want %q", rankStr(fl, got3), "a b1 a c D a D c _ B")
	}
}

func TestBlankRunCompression(t *testing.T) {
	fl := paperFlist(t)
	f := fl.Forest()
	// γ=0: runs collapse to a single blank. T2 = a b3 c c b2 under pivot B
	// becomes a B _ _ B; with γ=0 the second B is isolated (only blanks
	// adjacent) → a B.
	rw := rewrite.NewRewriter(fl, 0, 3)
	got := rw.Rewrite(nil, paperex.Seq(f, "a b3 c c b2"), rankOfName(t, fl, "B"))
	if rankStr(fl, got) != "a B" {
		t.Errorf("γ=0 pivot B: got %q, want %q", rankStr(fl, got), "a B")
	}
	// γ=2: nothing is isolated; run of 2 blanks stays (≤ γ+1).
	rw2 := rewrite.NewRewriter(fl, 2, 3)
	got2 := rw2.Rewrite(nil, paperex.Seq(f, "a b3 c c b2"), rankOfName(t, fl, "B"))
	if rankStr(fl, got2) != "a B _ _ B" {
		t.Errorf("γ=2 pivot B: got %q, want %q", rankStr(fl, got2), "a B _ _ B")
	}
}

func TestRewriteEdgeCases(t *testing.T) {
	fl := paperFlist(t)
	f := fl.Forest()
	rw := rewrite.NewRewriter(fl, 1, 3)
	pivA := rankOfName(t, fl, "a")
	if got := rw.Rewrite(nil, nil, pivA); got != nil {
		t.Error("empty sequence should yield nil")
	}
	if got := rw.Rewrite(nil, paperex.Seq(f, "a"), pivA); got != nil {
		t.Error("single item should yield nil")
	}
	if got := rw.Rewrite(nil, paperex.Seq(f, "c c"), pivA); got != nil {
		t.Error("no-pivot sequence should yield nil")
	}
	// dst is preserved when returning results and untouched on nil.
	dst := []flist.Rank{99}
	out := rw.Rewrite(dst, paperex.Seq(f, "a b1 a b1"), pivA)
	if len(out) < 2 || out[0] != 99 {
		t.Error("dst prefix not preserved")
	}
	out2 := rw.Rewrite(dst, paperex.Seq(f, "c c"), pivA)
	if len(out2) != 0 && (len(out2) != 1 || out2[0] != 99) {
		t.Error("nil result should not extend dst")
	}
}

// --- the correctness keystone: generalized w-equivalency (Lemma 3) -------

// vocabPivotSet computes G_{w,λ}(T) on the original sequence via the gsm
// enumeration, mapping patterns to rank space and keeping those with pivot w.
func vocabPivotSet(fl *flist.FList, t gsm.Sequence, pivot flist.Rank, gamma, lambda int) map[string]struct{} {
	out := make(map[string]struct{})
	gsm.EnumerateGenSubseqs(fl.Forest(), t, gamma, 2, lambda, nil, func(s gsm.Sequence) bool {
		maxRank := flist.Rank(0)
		ok := true
		b := make([]byte, 0, 4*len(s))
		for _, w := range s {
			r := fl.RankOf(w)
			if r == flist.NoRank {
				ok = false
				break
			}
			if r > maxRank {
				maxRank = r
			}
			b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		if ok && maxRank == pivot {
			out[string(b)] = struct{}{}
		}
		return true
	})
	return out
}

func checkEquivalency(t *testing.T, fl *flist.FList, seq gsm.Sequence, gamma, lambda int) {
	t.Helper()
	rw := rewrite.NewRewriter(fl, gamma, lambda)
	parent := fl.ParentTable()
	for _, pivot := range fl.PivotRanks(nil, seq) {
		want := vocabPivotSet(fl, seq, pivot, gamma, lambda)
		rewr := rw.Rewrite(nil, seq, pivot)
		got := map[string]struct{}{}
		if rewr != nil {
			got = rewrite.PivotSeqSet(parent, rewr, pivot, gamma, lambda)
		}
		if len(got) != len(want) {
			t.Fatalf("pivot %s γ=%d λ=%d: |G| mismatch %d vs %d\nT  = %s\nP_w = %s",
				fl.Forest().Name(fl.VocabOf(pivot)), gamma, lambda, len(got), len(want),
				gsm.String(fl.Forest(), seq), rankStr(fl, rewr))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("pivot %s: missing pivot sequence\nT  = %s\nP_w = %s",
					fl.Forest().Name(fl.VocabOf(pivot)), gsm.String(fl.Forest(), seq), rankStr(fl, rewr))
			}
		}
	}
}

// w-equivalency on every sequence of the paper database, for several (γ,λ).
func TestWEquivalencyPaperDB(t *testing.T) {
	db := paperex.Database()
	for _, gl := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 4}, {1, 5}} {
		fl, err := flist.BuildFromDB(db, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range db.Seqs {
			checkEquivalency(t, fl, seq, gl[0], gl[1])
		}
	}
}

// Property: w-equivalency holds on random hierarchies and sequences.
func TestQuickWEquivalency(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		sigma := 1 + int64(r.Intn(3))
		fl, err := flist.BuildFromDB(db, sigma)
		if err != nil || fl.NumFrequent() == 0 {
			return err == nil
		}
		gamma := r.Intn(3)
		lambda := 2 + r.Intn(3)
		rw := rewrite.NewRewriter(fl, gamma, lambda)
		parent := fl.ParentTable()
		for _, seq := range db.Seqs {
			for _, pivot := range fl.PivotRanks(nil, seq) {
				want := vocabPivotSet(fl, seq, pivot, gamma, lambda)
				rewr := rw.Rewrite(nil, seq, pivot)
				got := map[string]struct{}{}
				if rewr != nil {
					got = rewrite.PivotSeqSet(parent, rewr, pivot, gamma, lambda)
				}
				if len(got) != len(want) {
					return false
				}
				for k := range want {
					if _, ok := got[k]; !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the weaker rewrite modes (ablation study) are also w-equivalent:
// every mode yields the same pivot-sequence sets as the original sequence.
func TestQuickModesWEquivalent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		fl, err := flist.BuildFromDB(db, 1+int64(r.Intn(3)))
		if err != nil || fl.NumFrequent() == 0 {
			return err == nil
		}
		gamma := r.Intn(3)
		lambda := 2 + r.Intn(3)
		parent := fl.ParentTable()
		for _, mode := range []rewrite.Mode{rewrite.ModeNone, rewrite.ModeGeneralizeOnly, rewrite.ModeFull} {
			rw := rewrite.NewRewriter(fl, gamma, lambda)
			rw.Mode = mode
			for _, seq := range db.Seqs {
				for _, pivot := range fl.PivotRanks(nil, seq) {
					want := vocabPivotSet(fl, seq, pivot, gamma, lambda)
					rewr := rw.Rewrite(nil, seq, pivot)
					got := map[string]struct{}{}
					if rewr != nil {
						got = rewrite.PivotSeqSet(parent, rewr, pivot, gamma, lambda)
					}
					if len(got) != len(want) {
						return false
					}
					for k := range want {
						if _, ok := got[k]; !ok {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

// The full pipeline must never emit longer sequences than the weaker modes.
func TestModeCompression(t *testing.T) {
	fl := paperFlist(t)
	f := fl.Forest()
	seq := paperex.Seq(f, "a b3 c c b2")
	pivot := rankOfName(t, fl, "B")
	full := rewrite.NewRewriter(fl, 1, 3)
	genOnly := rewrite.NewRewriter(fl, 1, 3)
	genOnly.Mode = rewrite.ModeGeneralizeOnly
	none := rewrite.NewRewriter(fl, 1, 3)
	none.Mode = rewrite.ModeNone
	lf := len(full.Rewrite(nil, seq, pivot))
	lg := len(genOnly.Rewrite(nil, seq, pivot))
	ln := len(none.Rewrite(nil, seq, pivot))
	if !(lf <= lg && lg <= ln) {
		t.Fatalf("lengths not monotone: full=%d genOnly=%d none=%d", lf, lg, ln)
	}
	// ModeGeneralizeOnly keeps the original length; ModeFull shrinks to aB.
	if lg != len(seq) || ln != len(seq) {
		t.Fatalf("weak modes should preserve length: genOnly=%d none=%d", lg, ln)
	}
	if lf != 2 {
		t.Fatalf("full rewrite of T2 under pivot B should be aB, got length %d", lf)
	}
}

// Property: rewriting never lengthens a sequence, and the output contains
// only ranks ≤ pivot or blanks, with at least one pivot.
func TestQuickRewriteShape(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r)
		fl, err := flist.BuildFromDB(db, 1+int64(r.Intn(3)))
		if err != nil || fl.NumFrequent() == 0 {
			return err == nil
		}
		gamma := r.Intn(3)
		lambda := 2 + r.Intn(3)
		rw := rewrite.NewRewriter(fl, gamma, lambda)
		for _, seq := range db.Seqs {
			for _, pivot := range fl.PivotRanks(nil, seq) {
				out := rw.Rewrite(nil, seq, pivot)
				if out == nil {
					continue
				}
				if len(out) > len(seq) || len(out) < 2 {
					return false
				}
				hasPivot := false
				for _, x := range out {
					if x == pivot {
						hasPivot = true
					}
					if x != flist.NoRank && x > pivot {
						return false
					}
				}
				if !hasPivot {
					return false
				}
				if out[0] == flist.NoRank || out[len(out)-1] == flist.NoRank {
					return false // untrimmed edges
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

func randDB(r *rand.Rand) *gsm.Database {
	b := hierarchy.NewBuilder()
	n := 3 + r.Intn(9)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		b.Add(names[i])
	}
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			b.AddEdge(names[i], names[r.Intn(i)])
		}
	}
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := &gsm.Database{Forest: f}
	for i, k := 0, 2+r.Intn(6); i < k; i++ {
		l := 1 + r.Intn(8)
		s := make(gsm.Sequence, l)
		for j := range s {
			s[j] = hierarchy.Item(r.Intn(n))
		}
		db.Seqs = append(db.Seqs, s)
	}
	return db
}

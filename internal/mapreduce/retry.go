package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"lash/internal/faults"
	"lash/internal/obs"
)

// ErrTransient marks an error as transient for retry classification: task
// errors matching errors.Is(err, ErrTransient) are re-executed under
// Config.Retry. Job code can wrap it to request a retry for failure modes
// the built-in classifier (IsTransient) does not know about.
var ErrTransient = errors.New("mapreduce: transient failure")

// RetryPolicy controls task re-execution on transient failures (see
// Config.Retry). The zero policy disables retries (MaxAttempts 1).
type RetryPolicy struct {
	// MaxAttempts is the total number of executions one task may get,
	// first attempt included. <= 1 disables retries.
	MaxAttempts int

	// BaseBackoff is the delay before the first re-execution; each further
	// attempt doubles it, capped at MaxBackoff. Defaults: 2ms base, 250ms
	// cap. The actual sleep is jittered deterministically into
	// [d/2, d) from Seed, the task index, and the attempt number, so
	// concurrent retries decorrelate without shared RNG state.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Seed feeds the jitter hash. Runs with equal seeds (and equal task
	// failures) sleep identically.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// IsTransient classifies a task failure: transient failures are worth
// re-executing (the task's inputs are intact and the failure came from the
// environment), deterministic ones are not (re-running the same code on the
// same input would fail the same way).
//
// Transient: errors marked with ErrTransient, injected faults
// (faults.ErrInjected), I/O errors from the OS (*os.PathError,
// *os.SyscallError, *os.LinkError — ENOSPC, EIO, ...), and short writes.
// Deterministic: recovered panics (including panic-mode injected faults)
// and everything else — decode errors, user-logic errors.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var pe *taskPanicError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, faults.ErrInjected) {
		return true
	}
	var pathErr *os.PathError
	if errors.As(err, &pathErr) {
		return true
	}
	var sysErr *os.SyscallError
	if errors.As(err, &sysErr) {
		return true
	}
	var linkErr *os.LinkError
	if errors.As(err, &linkErr) {
		return true
	}
	return errors.Is(err, io.ErrShortWrite)
}

// taskPanicError is a recovered task panic converted to an error so the
// retry loop can classify it (always deterministic — a panic models a bug,
// not a flaky device). Error() reproduces guard's historical panic
// annotation, stack captured at the panic point.
type taskPanicError struct {
	val   any
	stack []byte
}

func (e *taskPanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.val, e.stack)
}

// attemptFail unwinds one task attempt from inside an emit callback (which
// cannot return an error) carrying the failure. runAttempt converts it back
// into the attempt's error, so the retry loop sees it like any returned
// error — unlike taskAborted, which marks cancellation and retires the task
// silently.
type attemptFail struct{ err error }

// runAttempt executes one attempt of a task body, converting every failure
// shape into an error: a returned error stays as-is, an attemptFail panic
// becomes its carried error, any other panic becomes a *taskPanicError.
// The taskAborted sentinel is re-thrown for guard's outer recover.
func runAttempt(fn func(task, attempt int) error, task, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case taskAborted:
				panic(v)
			case attemptFail:
				err = v.err
			default:
				err = &taskPanicError{val: r, stack: debug.Stack()}
			}
		}
	}()
	return fn(task, attempt)
}

// guard wraps one task body with cancellation, panic recovery, and — when
// pol allows more than one attempt — transient-failure retry. The body is
// invoked as fn(task, attempt); each attempt must rebuild its own state
// (attempt-scoped output discard is the body's contract). A deterministic
// failure, or the last allowed attempt's failure, is annotated with the job
// name, phase, and task index and recorded as the run's error; the abort
// sentinel retires the task quietly. Retries are counted into rc and the
// (nil-safe) pipeline counter, and backoff sleeps observe ctx.
func guard(ctx context.Context, errs *errOnce, pol RetryPolicy, rc *obs.RunCounters, retried *obs.Counter, jobName, phase string, fn func(task, attempt int) error) func(int) {
	pol = pol.withDefaults()
	return func(task int) {
		if errs.canceled.Load() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(taskAborted); ok {
					return
				}
				panic(r) // unreachable: runAttempt converts everything else
			}
		}()
		for attempt := 0; ; attempt++ {
			err := runAttempt(fn, task, attempt)
			if err == nil {
				return
			}
			if attempt+1 >= pol.MaxAttempts || !IsTransient(err) {
				errs.set(fmt.Errorf("mapreduce: job %q: %s task %d: %w", jobName, phase, task, err))
				return
			}
			// The run may have been cancelled (or failed elsewhere) while
			// this attempt ran — don't burn backoff time on a dead run.
			if errs.canceled.Load() {
				return
			}
			rc.TaskRetries.Add(1)
			retried.Inc()
			if !sleepCtx(ctx, backoffDelay(pol, task, attempt)) {
				return
			}
			if errs.canceled.Load() {
				return
			}
		}
	}
}

// backoffDelay computes the attempt'th re-execution delay: exponential
// growth from BaseBackoff capped at MaxBackoff, jittered deterministically
// into [d/2, d) by hashing (Seed, task, attempt).
func backoffDelay(pol RetryPolicy, task, attempt int) time.Duration {
	d := pol.BaseBackoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= pol.MaxBackoff || d <= 0 {
			d = pol.MaxBackoff
			break
		}
	}
	// splitmix64 over the (seed, task, attempt) triple.
	z := pol.Seed ^ (uint64(task)+1)*0x9e3779b97f4a7c15 ^ (uint64(attempt)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := 0.5 + 0.5*float64(z>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

package mapreduce_test

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"lash/internal/mapreduce"
)

// wordCount is the canonical MapReduce job, used to exercise the runner.
func wordCount(cfg mapreduce.Config, docs []string) (map[string]int64, *mapreduce.Stats) {
	type outKV struct {
		word string
		n    int64
	}
	out, stats, err := mapreduce.Run(context.Background(), cfg, docs, mapreduce.Job[string, string, int64, outKV]{
		Name: "wordcount",
		Map: func(doc string, emit func(string, int64)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int64) int64 { return a + b },
		Hash:    mapreduce.HashString,
		Size:    func(k string, v int64) int { return len(k) + 8 },
		Reduce: func(k string, vs []int64, emit func(outKV)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(outKV{k, sum})
		},
	})
	if err != nil {
		panic(err)
	}
	m := make(map[string]int64)
	for _, o := range out {
		m[o.word] = o.n
	}
	return m, stats
}

var docs = []string{
	"the quick brown fox",
	"the lazy dog",
	"the quick dog jumps",
	"fox and dog and fox",
}

func TestWordCount(t *testing.T) {
	got, stats := wordCount(mapreduce.Config{Workers: 2, MapTasks: 3, ReduceTasks: 2}, docs)
	want := map[string]int64{
		"the": 3, "quick": 2, "brown": 1, "fox": 3, "lazy": 1,
		"dog": 3, "jumps": 1, "and": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	if stats.MapInputRecords != 4 {
		t.Errorf("MapInputRecords = %d", stats.MapInputRecords)
	}
	if stats.MapOutputBytes <= 0 || stats.MapOutputRecords <= 0 {
		t.Errorf("counters not populated: %+v", stats.Counters)
	}
	if stats.ReduceInputKeys != int64(len(want)) {
		t.Errorf("ReduceInputKeys = %d, want %d", stats.ReduceInputKeys, len(want))
	}
	if stats.ReduceOutputRecords != int64(len(want)) {
		t.Errorf("ReduceOutputRecords = %d", stats.ReduceOutputRecords)
	}
}

// The same job must give identical results for any worker/task/combiner
// configuration.
func TestDeterminismAcrossConfigs(t *testing.T) {
	base, _ := wordCount(mapreduce.Config{Workers: 1, MapTasks: 1, ReduceTasks: 1}, docs)
	for _, cfg := range []mapreduce.Config{
		{Workers: 1, MapTasks: 4, ReduceTasks: 3},
		{Workers: 4, MapTasks: 2, ReduceTasks: 8},
		{Workers: 8, MapTasks: 16, ReduceTasks: 1},
	} {
		got, _ := wordCount(cfg, docs)
		if len(got) != len(base) {
			t.Fatalf("cfg %+v: size mismatch", cfg)
		}
		for k, v := range base {
			if got[k] != v {
				t.Errorf("cfg %+v: %s = %d, want %d", cfg, k, got[k], v)
			}
		}
	}
}

// Without a combiner, every intermediate pair must reach the reducer.
func TestNoCombiner(t *testing.T) {
	out, stats, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2},
		docs,
		mapreduce.Job[string, string, int64, int64]{
			Map: func(doc string, emit func(string, int64)) {
				for _, w := range strings.Fields(doc) {
					emit(w, 1)
				}
			},
			Hash: mapreduce.HashString,
			Reduce: func(k string, vs []int64, emit func(int64)) {
				emit(int64(len(vs)))
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range out {
		total += n
	}
	if total != 16 { // 16 words in docs
		t.Fatalf("total occurrences = %d, want 16", total)
	}
	if stats.MapOutputRecords != 16 {
		t.Fatalf("MapOutputRecords = %d, want 16 (no combining)", stats.MapOutputRecords)
	}
}

// The combiner must reduce shuffled records (pre-aggregation).
func TestCombinerReducesTraffic(t *testing.T) {
	many := make([]string, 50)
	for i := range many {
		many[i] = "x x x x"
	}
	_, withC := wordCount(mapreduce.Config{Workers: 2, MapTasks: 5, ReduceTasks: 2}, many)
	// 5 map tasks × 1 distinct word → 5 records instead of 200.
	if withC.MapOutputRecords != 5 {
		t.Fatalf("combined MapOutputRecords = %d, want 5", withC.MapOutputRecords)
	}
}

func TestEmptyInput(t *testing.T) {
	got, stats := wordCount(mapreduce.Config{Workers: 2}, nil)
	if len(got) != 0 || stats.MapInputRecords != 0 {
		t.Fatalf("empty input mishandled: %v %+v", got, stats.Counters)
	}
}

func TestSimulatedCluster(t *testing.T) {
	cfg := mapreduce.Config{
		Workers: 2, MapTasks: 16, ReduceTasks: 16,
		Cluster: mapreduce.ClusterSpec{Machines: 4, SlotsPerMachine: 2, NetBytesPerSec: 1e6},
	}
	_, stats := wordCount(cfg, docs)
	if stats.Sim.Map <= 0 || stats.Sim.Reduce < 0 {
		t.Fatalf("sim times not computed: %+v", stats.Sim)
	}
	// More machines must never slow the simulated phases down.
	cfg2 := cfg
	cfg2.Cluster.Machines = 8
	_, stats2 := wordCount(cfg2, docs)
	// Shuffle halves exactly (bandwidth model); map/reduce are LPT over the
	// same per-task durations re-measured — compare shuffle only, which is
	// deterministic given identical bytes.
	if stats2.MapOutputBytes == stats.MapOutputBytes && stats2.Sim.Shuffle > stats.Sim.Shuffle {
		t.Errorf("shuffle sim did not scale: %v → %v", stats.Sim.Shuffle, stats2.Sim.Shuffle)
	}
}

func TestLPTViaPhases(t *testing.T) {
	// Construct a job whose task durations we can bound: many map tasks on
	// one simulated slot must sum, on many slots must approach the max.
	slow := make([]string, 8)
	for i := range slow {
		slow[i] = strings.Repeat("w ", 2000)
	}
	one := mapreduce.Config{Workers: 2, MapTasks: 8, ReduceTasks: 2,
		Cluster: mapreduce.ClusterSpec{Machines: 1, SlotsPerMachine: 1}}
	_, s1 := wordCount(one, slow)
	var sum time.Duration
	for _, d := range s1.MapTaskTimes {
		sum += d
	}
	if s1.Sim.Map != sum {
		t.Errorf("1 slot: makespan %v != sum %v", s1.Sim.Map, sum)
	}
	eight := one
	eight.Cluster = mapreduce.ClusterSpec{Machines: 8, SlotsPerMachine: 1}
	_, s8 := wordCount(eight, slow)
	maxT := time.Duration(0)
	for _, d := range s8.MapTaskTimes {
		if d > maxT {
			maxT = d
		}
	}
	if s8.Sim.Map != maxT {
		t.Errorf("8 slots over 8 tasks: makespan %v != max %v", s8.Sim.Map, maxT)
	}
}

func TestHashHelpers(t *testing.T) {
	if mapreduce.HashString("abc") == mapreduce.HashString("abd") {
		t.Error("suspicious string hash collision")
	}
	seen := map[uint32]bool{}
	for i := uint32(0); i < 1000; i++ {
		seen[mapreduce.HashUint32(i)%64] = true
	}
	if len(seen) < 32 {
		t.Errorf("integer hash poorly distributed: %d/64 buckets", len(seen))
	}
}

// Ordering contract: results arrive grouped by reduce task; a total order
// must be imposed by the caller. Verify sorting yields a stable golden.
func TestResultOrderingContract(t *testing.T) {
	got1, _ := wordCount(mapreduce.Config{Workers: 3, MapTasks: 4, ReduceTasks: 4}, docs)
	got2, _ := wordCount(mapreduce.Config{Workers: 1, MapTasks: 2, ReduceTasks: 7}, docs)
	keys1 := make([]string, 0, len(got1))
	for k := range got1 {
		keys1 = append(keys1, k)
	}
	keys2 := make([]string, 0, len(got2))
	for k := range got2 {
		keys2 = append(keys2, k)
	}
	sort.Strings(keys1)
	sort.Strings(keys2)
	if strings.Join(keys1, ",") != strings.Join(keys2, ",") {
		t.Fatalf("key sets differ: %v vs %v", keys1, keys2)
	}
}

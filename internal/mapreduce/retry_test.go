package mapreduce_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"lash/internal/faults"
	"lash/internal/mapreduce"
)

// runClean runs the reference fault-free job for comparison.
func runClean(t *testing.T, cfg mapreduce.Config, input []int, job mapreduce.AggJob[int, string]) []string {
	t.Helper()
	out, _, err := mapreduce.RunAgg(context.Background(), cfg, input, job)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameOutput(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRetryRecoversInjectedMapFault injects one map-task fault and asserts a
// retried run reproduces the fault-free output exactly, with the retry and
// the injection both counted.
func TestRetryRecoversInjectedMapFault(t *testing.T) {
	input := spillInput(200)
	base := mapreduce.Config{Workers: 4, MapTasks: 8, ReduceTasks: 5}
	want := runClean(t, base, input, spillJob())

	reg := &faults.Registry{}
	reg.FailNth("mapreduce.map.task", 1, faults.Error)
	cfg := base
	cfg.Retry = mapreduce.RetryPolicy{MaxAttempts: 3}
	cfg.Faults = reg
	got, stats, err := mapreduce.RunAgg(context.Background(), cfg, input, spillJob())
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, got, want)
	if stats.TaskRetries != 1 || stats.FaultsInjected != 1 {
		t.Fatalf("TaskRetries=%d FaultsInjected=%d, want 1/1", stats.TaskRetries, stats.FaultsInjected)
	}
}

// TestRetryDisabledInjectedFaultFails asserts that without retries an
// injected fault fails the whole job with a package-annotated error wrapping
// the injection sentinel, and that the spill directory is still torn down.
func TestRetryDisabledInjectedFaultFails(t *testing.T) {
	dir := t.TempDir()
	reg := &faults.Registry{}
	reg.FailNth("mapreduce.map.task", 1, faults.Error)
	cfg := mapreduce.Config{Workers: 2, MapTasks: 4, ReduceTasks: 3,
		MemoryBudget: 64, SpillDir: dir, Faults: reg}
	_, _, err := mapreduce.RunAgg(context.Background(), cfg, spillInput(50), spillJob())
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want wrapped faults.ErrInjected", err)
	}
	if !strings.Contains(err.Error(), `mapreduce: job "spill-diff": map task`) {
		t.Fatalf("error not annotated with job/phase/task: %v", err)
	}
	assertEmptyDir(t, dir)
}

// TestPanicFaultNotRetried: a panic-mode fault models a bug, not a flaky
// device — it must fail the job even with retry headroom.
func TestPanicFaultNotRetried(t *testing.T) {
	reg := &faults.Registry{}
	reg.FailNth("mapreduce.map.task", 1, faults.Panic)
	cfg := mapreduce.Config{Workers: 2, MapTasks: 4, ReduceTasks: 3,
		Retry: mapreduce.RetryPolicy{MaxAttempts: 5}, Faults: reg}
	_, stats, err := mapreduce.RunAgg(context.Background(), cfg, spillInput(50), spillJob())
	if err == nil || !strings.Contains(err.Error(), "panic:") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if stats.TaskRetries != 0 {
		t.Fatalf("TaskRetries = %d, want 0 (panics are deterministic)", stats.TaskRetries)
	}
}

// TestUserPanicNotRetried: same classification for panics out of user code.
func TestUserPanicNotRetried(t *testing.T) {
	job := spillJob()
	var calls atomic.Int64
	inner := job.Map
	job.Map = func(item int, emit func(uint32, []byte, int64)) {
		if calls.Add(1) == 1 {
			panic("synthetic map bug")
		}
		inner(item, emit)
	}
	cfg := mapreduce.Config{Workers: 1, MapTasks: 2, ReduceTasks: 2,
		Retry: mapreduce.RetryPolicy{MaxAttempts: 4}}
	_, stats, err := mapreduce.RunAgg(context.Background(), cfg, spillInput(20), job)
	if err == nil || !strings.Contains(err.Error(), "synthetic map bug") {
		t.Fatalf("err = %v, want recovered user panic", err)
	}
	if stats.TaskRetries != 0 {
		t.Fatalf("TaskRetries = %d, want 0", stats.TaskRetries)
	}
}

// TestReduceRetryGate: a transiently-failing reducer recovers only when the
// job opts in via ReduceRetryable.
func TestReduceRetryGate(t *testing.T) {
	input := spillInput(100)
	base := mapreduce.Config{Workers: 2, MapTasks: 4, ReduceTasks: 3}
	want := runClean(t, base, input, spillJob())

	makeJob := func(retryable bool, failed *atomic.Bool) mapreduce.AggJob[int, string] {
		job := spillJob()
		job.ReduceRetryable = retryable
		inner := job.Reduce
		job.Reduce = func(group uint32, entries []mapreduce.Entry, emit func(string)) error {
			if failed.CompareAndSwap(false, true) {
				return fmt.Errorf("synthetic flake: %w", mapreduce.ErrTransient)
			}
			return inner(group, entries, emit)
		}
		return job
	}

	cfg := base
	cfg.Retry = mapreduce.RetryPolicy{MaxAttempts: 3}

	var failedA atomic.Bool
	got, stats, err := mapreduce.RunAgg(context.Background(), cfg, input, makeJob(true, &failedA))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, got, want)
	if stats.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1", stats.TaskRetries)
	}

	var failedB atomic.Bool
	_, _, err = mapreduce.RunAgg(context.Background(), cfg, input, makeJob(false, &failedB))
	if !errors.Is(err, mapreduce.ErrTransient) {
		t.Fatalf("err = %v, want transient reduce failure (retry gated off)", err)
	}
}

// TestRetryExhaustion: a persistently-failing task burns every allowed
// attempt, then fails the job with the annotated underlying error.
func TestRetryExhaustion(t *testing.T) {
	var attempts atomic.Int64
	job := spillJob()
	job.ReduceRetryable = true
	job.Reduce = func(uint32, []mapreduce.Entry, func(string)) error {
		attempts.Add(1)
		return fmt.Errorf("always down: %w", mapreduce.ErrTransient)
	}
	cfg := mapreduce.Config{Workers: 1, MapTasks: 2, ReduceTasks: 1,
		Retry: mapreduce.RetryPolicy{MaxAttempts: 3}}
	_, _, err := mapreduce.RunAgg(context.Background(), cfg, spillInput(30), job)
	if !errors.Is(err, mapreduce.ErrTransient) {
		t.Fatalf("err = %v, want exhausted transient failure", err)
	}
	if !strings.Contains(err.Error(), "reduce partition task") {
		t.Fatalf("error not annotated: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("reduce ran %d times, want exactly MaxAttempts=3", got)
	}
}

// TestSpillWriteFaultRecovered injects a spill-append failure (worst case:
// a full run buffered but unflushed) and asserts the rollback plus map-task
// retry reproduce the fault-free output byte-identically.
func TestSpillWriteFaultRecovered(t *testing.T) {
	input := spillInput(300)
	base := mapreduce.Config{Workers: 4, MapTasks: 8, ReduceTasks: 5}
	want := runClean(t, base, input, spillJob())

	reg := &faults.Registry{}
	reg.FailNth("mapreduce.spill.write", 2, faults.Error)
	cfg := base
	cfg.MemoryBudget = 512
	cfg.SpillDir = t.TempDir()
	cfg.Retry = mapreduce.RetryPolicy{MaxAttempts: 3}
	cfg.Faults = reg
	got, stats, err := mapreduce.RunAgg(context.Background(), cfg, input, spillJob())
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, got, want)
	if stats.TaskRetries == 0 || stats.FaultsInjected != 1 {
		t.Fatalf("TaskRetries=%d FaultsInjected=%d, want >0/1", stats.TaskRetries, stats.FaultsInjected)
	}
	assertEmptyDir(t, cfg.SpillDir)
}

// TestSpillMergeFaultRecovered injects a merge failure on the reduce side;
// the retried reduce task re-merges the (intact) runs and the output stays
// byte-identical.
func TestSpillMergeFaultRecovered(t *testing.T) {
	input := spillInput(300)
	base := mapreduce.Config{Workers: 4, MapTasks: 8, ReduceTasks: 5}
	want := runClean(t, base, input, spillJob())

	reg := &faults.Registry{}
	reg.FailNth("mapreduce.spill.merge", 1, faults.Error)
	job := spillJob()
	job.ReduceRetryable = true
	cfg := base
	cfg.MemoryBudget = 512
	cfg.SpillDir = t.TempDir()
	cfg.Retry = mapreduce.RetryPolicy{MaxAttempts: 3}
	cfg.Faults = reg
	got, stats, err := mapreduce.RunAgg(context.Background(), cfg, input, job)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, got, want)
	if stats.TaskRetries != 1 || stats.FaultsInjected != 1 {
		t.Fatalf("TaskRetries=%d FaultsInjected=%d, want 1/1", stats.TaskRetries, stats.FaultsInjected)
	}
	assertEmptyDir(t, cfg.SpillDir)
}

// Package mapreduce is the in-process MapReduce substrate the distributed
// algorithms run on. It executes map / combine / shuffle / reduce with real
// (bounded) parallelism on the host, collects Hadoop-style counters
// (MAP_OUTPUT_BYTES, record counts) and per-task durations, and derives
// *simulated cluster* phase times by scheduling the measured tasks onto a
// configurable number of machines × slots (LPT) with a bandwidth model for
// the shuffle.
//
// This substitutes for the paper's 11-node Hadoop cluster (§6.1): LASH's
// experimental claims rest on bytes shuffled and relative per-phase work,
// both of which are preserved by measuring real task costs and real encoded
// bytes; the scheduler then reproduces cluster scaling shapes (Fig. 6).
//
// Two job shapes are provided:
//
//   - Run executes a classic generic job (Job): map emits (K, V) pairs, an
//     optional combiner pre-aggregates per map task, the shuffle groups by
//     key, and Reduce sees each key with its value slice. Phases are
//     barriers: all map tasks finish before the shuffle, the shuffle before
//     the reduce.
//   - RunAgg executes a byte-key weighted-aggregation job (AggJob), the
//     shape of every heavy LASH shuffle: map emits (group, key bytes,
//     int64 weight) triples that are aggregated into per-map-task flat hash
//     tables (open addressing over a shared key arena — no per-emit
//     allocations), merged per reduce partition as map tasks retire, and
//     reduced *streamingly*: each partition is handed to Reduce as soon as
//     its last input is merged, overlapping shuffle, merge, and reduce work
//     instead of phase barriers.
//
// Error contract: a panic inside any user-supplied task function (Map,
// Combine, Reduce, Size, Hash) is recovered, annotated with the job name,
// phase, and task index, and returned as an error — one misbehaving job
// must not take down the process hosting the substrate (lashd runs many).
// The first task error cancels the run: unstarted tasks are skipped and the
// partial output is discarded.
//
// Fault tolerance: Config.Retry re-executes failed RunAgg tasks when the
// failure classifies as transient (I/O errors, injected faults, errors
// marked ErrTransient — see IsTransient) with capped exponential backoff.
// A retried task's partial output is attempt-scoped and discarded — its
// spill runs are dropped and its tables rebuilt — so a retried run's
// output is byte-identical to a fault-free run's. Recovered panics and
// decode errors are deterministic and never retried. Config.Faults wires
// in a fault-injection registry (internal/faults) for chaos testing.
//
// Cancellation contract: Run and RunAgg take a context.Context and observe
// it cooperatively — between tasks, and at every emit point inside a task —
// so even a single long-running map or reduce task is interrupted promptly.
// A cancelled run drains its worker pool, discards the partial output, and
// returns ctx.Err() wrapped with the job name and phase (the cancellation
// cause, if one was set via context.WithCancelCause, is also in the chain
// and matchable with errors.Is).
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lash/internal/faults"
	"lash/internal/obs"
)

// ClusterSpec describes the simulated cluster. The defaults mirror the
// paper's setup: 10 worker machines with 8 concurrent tasks each, 10 GbE.
type ClusterSpec struct {
	Machines        int     // simulated worker machines (default 10)
	SlotsPerMachine int     // concurrent map or reduce tasks per machine (default 8)
	NetBytesPerSec  float64 // per-machine shuffle bandwidth (default 1.25e9 ≈ 10 GbE)
}

func (c ClusterSpec) withDefaults() ClusterSpec {
	if c.Machines <= 0 {
		c.Machines = 10
	}
	if c.SlotsPerMachine <= 0 {
		c.SlotsPerMachine = 8
	}
	if c.NetBytesPerSec <= 0 {
		c.NetBytesPerSec = 1.25e9
	}
	return c
}

// Config controls a job run.
type Config struct {
	Workers     int // real goroutines (default NumCPU)
	MapTasks    int // input splits (default 4×Workers)
	ReduceTasks int // key-space partitions (default 4×Workers)
	Cluster     ClusterSpec

	// MemoryBudget, when positive, bounds the memory the aggregated shuffle
	// (RunAgg) may hold in aggregation tables, in bytes. Each map task gets
	// an equal share (MemoryBudget / Workers); exceeding it flushes the
	// task's tables to sorted runs in temp files, and the reduce phase
	// k-way merges each partition's runs back off disk, re-aggregating
	// across runs, so only one partition's group at a time is materialized.
	// The budget covers the shuffle's aggregation tables, not the input
	// slice or the reduce outputs; results are byte-identical to the
	// in-memory path (0 = unlimited, never touch disk). Run ignores it —
	// the generic path's intermediate data is key-space bounded.
	MemoryBudget int64

	// SpillDir is the base directory for spill temp files (default
	// os.TempDir()). Each run creates a private subdirectory and removes it
	// when the run returns — on success, error, and cancellation alike.
	SpillDir string

	// Progress, when non-nil, receives progress snapshots as the run
	// advances: after every retired map task, after every completed reduce
	// task (partition), and once with phase "done" when the run returns,
	// successfully or not. It is invoked concurrently from worker
	// goroutines and must be fast and safe for concurrent use. Snapshots
	// are derived reads of the run's live counters (obs.RunCounters) — the
	// same source the final Stats are drawn from.
	Progress func(Progress)

	// Obs, when non-nil, attaches observability to the run: span tracing
	// (job, phase, and per-task spans) and/or process-wide pipeline
	// metrics — see internal/obs. A nil Obs, or nil fields inside it,
	// records nothing; every handle is nil-receiver safe, so the task
	// bodies need no "is observability on?" branches.
	Obs *obs.Run

	// Retry re-executes failed RunAgg map and reduce tasks whose failure
	// classifies as transient (see IsTransient). Reduce tasks are retried
	// only when the job declares AggJob.ReduceRetryable. The zero policy
	// disables retries. The generic Run path ignores it: its tasks perform
	// no I/O, so their failures are deterministic by construction.
	Retry RetryPolicy

	// Faults, when non-nil, arms the substrate's fault-injection points
	// (internal/faults) for chaos testing: mapreduce.map.task,
	// mapreduce.reduce.task, mapreduce.spill.write, mapreduce.spill.merge.
	// nil (the production default) costs one branch per point.
	Faults *faults.Registry
}

// Progress is a point-in-time snapshot of a running job, delivered to
// Config.Progress. Counts are cumulative; on the streaming aggregated path
// (RunAgg) map, shuffle, and reduce overlap, so reduce counters can advance
// while map tasks are still retiring.
type Progress struct {
	Job             string
	Phase           string // "map", "shuffle", "reduce", or "done"
	MapTasksDone    int
	MapTasks        int
	ReduceTasksDone int
	ReduceTasks     int
	ShuffleRecords  int64 // aggregated records shuffled so far
	ShuffleBytes    int64 // encoded bytes shuffled so far (MAP_OUTPUT_BYTES)
	SpillRuns       int64 // sorted spill runs written so far (budgeted runs)
	SpillBytes      int64 // physical spill bytes written so far
	TaskRetries     int64 // task re-executions after transient failures
	FaultsInjected  int64 // synthetic faults injected so far (chaos runs)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MapTasks <= 0 {
		c.MapTasks = 4 * c.Workers
	}
	if c.ReduceTasks <= 0 {
		c.ReduceTasks = 4 * c.Workers
	}
	c.Cluster = c.Cluster.withDefaults()
	return c
}

// Counters are Hadoop-style job counters.
//
// On the aggregated path (RunAgg), MapOutputRecords counts aggregated
// (group, key) entries — each distinct entry in a map task's table is one
// shuffled record, mirroring what a Hadoop combiner would actually ship —
// and ReduceInputKeys counts the groups handed to Reduce.
type Counters struct {
	MapInputRecords     int64
	MapOutputRecords    int64 // after combining, i.e. records shuffled
	MapOutputBytes      int64 // encoded size of shuffled records (MAP_OUTPUT_BYTES)
	ReduceInputKeys     int64
	ReduceOutputRecords int64

	// Spill counters (non-zero only when Config.MemoryBudget forced the
	// aggregated shuffle to disk): sorted runs written, physical bytes
	// written to spill files, and aggregated entries spilled. An entry
	// aggregated in several runs counts once per run — the re-aggregation
	// happens in the reduce-side merge.
	SpillRuns    int64
	SpillBytes   int64
	SpillRecords int64

	// Fault-tolerance counters: task re-executions after transient
	// failures (Config.Retry) and synthetic faults injected through
	// Config.Faults. Both zero on healthy, un-instrumented runs.
	TaskRetries    int64
	FaultsInjected int64
}

// PhaseTimes breaks a job into the phases the paper reports.
//
// On the streaming aggregated path the phases overlap; the wall times are
// then cumulative watermarks: Map is the time until the last map function
// returned, Shuffle the additional time until the last partition merge
// completed, and Reduce the remaining tail until the last Reduce returned.
// Their sum is still the true job wall time.
type PhaseTimes struct {
	Map     time.Duration
	Shuffle time.Duration
	Reduce  time.Duration
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration { return p.Map + p.Shuffle + p.Reduce }

// Stats reports everything measured about one job run.
type Stats struct {
	Wall PhaseTimes // actually elapsed on this host
	Sim  PhaseTimes // simulated cluster times (see package doc)
	Counters
	MapTaskTimes    []time.Duration
	ReduceTaskTimes []time.Duration
}

// Job wires user code into a run. K must be comparable; V is the
// intermediate value; R the reduce output.
type Job[I any, K comparable, V any, R any] struct {
	Name string

	// Map processes one input record, emitting intermediate pairs.
	Map func(item I, emit func(K, V))

	// Combine merges two intermediate values for the same key (associative,
	// commutative). Optional: when nil, all values are kept and handed to
	// Reduce as a slice.
	Combine func(a, b V) V

	// Hash partitions keys across reduce tasks.
	Hash func(K) uint32

	// Size returns the encoded size of one intermediate pair, measured once
	// per (post-combine) record for the MAP_OUTPUT_BYTES counter. Optional.
	Size func(K, V) int

	// Reduce processes one key group.
	Reduce func(key K, values []V, emit func(R))
}

// errOnce records the first task error of a run and flips a cancellation
// flag that unstarted tasks observe. External cancellation (a done context)
// flips the flag without recording an error; the run's exit path translates
// the context state into the returned error.
type errOnce struct {
	canceled atomic.Bool
	mu       sync.Mutex
	err      error
}

func (e *errOnce) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.canceled.Store(true)
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// taskAborted is the panic sentinel used to unwind a user task from inside
// an emit callback once the run has been cancelled. guard recognizes it and
// retires the task silently — the run's error comes from the first real
// task error or from the cancelled context, never from the unwinding.
type taskAborted struct{}

// checkAbort panics with the abort sentinel when the run has been
// cancelled. Emit closures call it so that even a single long-running map
// or reduce task observes cancellation at its next emit.
func checkAbort(errs *errOnce) {
	if errs.canceled.Load() {
		panic(taskAborted{})
	}
}

// watchContext flips the run's cancellation flag when ctx is done and
// returns a stop function for the watcher.
func watchContext(ctx context.Context, errs *errOnce) func() bool {
	return context.AfterFunc(ctx, func() { errs.canceled.Store(true) })
}

// wrapCtxErr annotates a context cancellation with the job and phase it
// interrupted. The returned error matches ctx.Err() under errors.Is, and
// also the cancellation cause when one was set via context.WithCancelCause.
func wrapCtxErr(ctx context.Context, jobName, phase string) error {
	err := ctx.Err()
	if cause := context.Cause(ctx); cause != nil && cause != err {
		return fmt.Errorf("mapreduce: job %q: %s: %w: %w", jobName, phase, err, cause)
	}
	return fmt.Errorf("mapreduce: job %q: %s: %w", jobName, phase, err)
}

// runErr resolves a run's exit error: the first recorded task error wins;
// otherwise a done context is translated into a wrapped ctx.Err().
func runErr(ctx context.Context, errs *errOnce, jobName, phase string) error {
	if err := errs.get(); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return wrapCtxErr(ctx, jobName, phase)
	}
	return nil
}

// Run executes the job over the input and returns the reduce outputs
// (ordered by reduce task, then by key hash order — callers needing a total
// order must sort) together with run statistics. A panic in any task is
// converted into an error; the first error cancels the run and is returned
// with partial statistics. Cancelling ctx aborts the run cooperatively
// (between tasks and at emit points) and returns ctx.Err() wrapped with the
// job name and phase; a context that is already done returns before any
// task runs.
func Run[I any, K comparable, V any, R any](ctx context.Context, cfg Config, input []I, job Job[I, K, V, R]) ([]R, *Stats, error) {
	cfg = cfg.withDefaults()
	stats := &Stats{}
	stats.MapInputRecords = int64(len(input))
	if ctx.Err() != nil {
		return nil, stats, wrapCtxErr(ctx, job.Name, "start")
	}
	errs := &errOnce{}
	stop := watchContext(ctx, errs)
	defer stop()

	mapTasks := cfg.MapTasks
	if mapTasks > len(input) {
		mapTasks = len(input)
	}
	if mapTasks < 1 {
		mapTasks = 1
	}
	reduceTasks := cfg.ReduceTasks

	rc := &obs.RunCounters{}
	report := func(phase string) {
		if cfg.Progress == nil {
			return
		}
		cfg.Progress(Progress{
			Job:             job.Name,
			Phase:           phase,
			MapTasksDone:    int(rc.MapTasksDone.Load()),
			MapTasks:        mapTasks,
			ReduceTasksDone: int(rc.ReduceTasksDone.Load()),
			ReduceTasks:     reduceTasks,
			ShuffleRecords:  rc.ShuffleRecords.Load(),
			ShuffleBytes:    rc.ShuffleBytes.Load(),
		})
	}
	defer report("done")

	// --- map phase -----------------------------------------------------
	type mapOut struct {
		combined []map[K]V // per reduce partition (combiner present)
		pairs    [][]kv[K, V]
	}
	outs := make([]mapOut, mapTasks)
	taskTimes := make([]time.Duration, mapTasks)

	mapStart := time.Now()
	oh := newObsHooks(cfg.Obs, mapStart)
	defer func() { oh.finish(job.Name, stats.Wall) }()
	// The generic path never retries (see Config.Retry): the zero policy
	// caps every task at one attempt, so guard degenerates to cancellation
	// + panic recovery.
	noRetry := RetryPolicy{}
	runPool(cfg.Workers, mapTasks, guard(ctx, errs, noRetry, rc, nil, job.Name, "map", func(task, _ int) error {
		lo := len(input) * task / mapTasks
		hi := len(input) * (task + 1) / mapTasks
		start := time.Now()
		o := &outs[task]
		if job.Combine != nil {
			o.combined = make([]map[K]V, reduceTasks)
			for p := range o.combined {
				o.combined[p] = make(map[K]V)
			}
		} else {
			o.pairs = make([][]kv[K, V], reduceTasks)
		}
		emit := func(k K, v V) {
			checkAbort(errs)
			p := int(job.Hash(k) % uint32(reduceTasks))
			if job.Combine != nil {
				m := o.combined[p]
				if old, ok := m[k]; ok {
					m[k] = job.Combine(old, v)
				} else {
					m[k] = v
				}
			} else {
				o.pairs[p] = append(o.pairs[p], kv[K, V]{k, v})
			}
		}
		for _, rec := range input[lo:hi] {
			checkAbort(errs)
			job.Map(rec, emit)
		}
		// Account post-combine output.
		var recs, bytes int64
		if job.Combine != nil {
			for _, m := range o.combined {
				recs += int64(len(m))
				if job.Size != nil {
					for k, v := range m {
						bytes += int64(job.Size(k, v))
					}
				}
			}
		} else {
			for _, ps := range o.pairs {
				recs += int64(len(ps))
				if job.Size != nil {
					for _, p := range ps {
						bytes += int64(job.Size(p.k, p.v))
					}
				}
			}
		}
		rc.ShuffleRecords.Add(recs)
		rc.ShuffleBytes.Add(bytes)
		oh.shufRecords.Add(recs)
		oh.shufBytes.Add(bytes)
		taskTimes[task] = time.Since(start)
		rc.MapTasksDone.Add(1)
		oh.taskSpan("map-task", job.Name, "map", task, start)
		report("map")
		return nil
	}))
	stats.Wall.Map = time.Since(mapStart)
	stats.MapTaskTimes = taskTimes
	stats.MapOutputRecords = rc.ShuffleRecords.Load()
	stats.MapOutputBytes = rc.ShuffleBytes.Load()
	if err := runErr(ctx, errs, job.Name, "map"); err != nil {
		return nil, stats, err
	}

	// --- shuffle: group by key within each reduce partition -------------
	shufStart := time.Now()
	groups := make([]map[K][]V, reduceTasks)
	runPool(cfg.Workers, reduceTasks, guard(ctx, errs, noRetry, rc, nil, job.Name, "shuffle", func(p, _ int) error {
		g := make(map[K][]V)
		for t := range outs {
			checkAbort(errs)
			if job.Combine != nil {
				for k, v := range outs[t].combined[p] {
					g[k] = append(g[k], v)
				}
			} else {
				for _, pr := range outs[t].pairs[p] {
					g[pr.k] = append(g[pr.k], pr.v)
				}
			}
		}
		groups[p] = g
		return nil
	}))
	stats.Wall.Shuffle = time.Since(shufStart)
	report("shuffle")
	if err := runErr(ctx, errs, job.Name, "shuffle"); err != nil {
		return nil, stats, err
	}

	// --- reduce phase ----------------------------------------------------
	redStart := time.Now()
	results := make([][]R, reduceTasks)
	redTimes := make([]time.Duration, reduceTasks)
	var redKeys, redRecords atomic.Int64
	runPool(cfg.Workers, reduceTasks, guard(ctx, errs, noRetry, rc, nil, job.Name, "reduce", func(p, _ int) error {
		start := time.Now()
		var out []R
		emit := func(r R) {
			checkAbort(errs)
			out = append(out, r)
		}
		for k, vs := range groups[p] {
			checkAbort(errs)
			job.Reduce(k, vs, emit)
		}
		redKeys.Add(int64(len(groups[p])))
		redRecords.Add(int64(len(out)))
		results[p] = out
		redTimes[p] = time.Since(start)
		rc.ReduceTasksDone.Add(1)
		oh.taskSpan("reduce-task", job.Name, "reduce", p, start)
		report("reduce")
		return nil
	}))
	stats.Wall.Reduce = time.Since(redStart)
	stats.ReduceTaskTimes = redTimes
	stats.ReduceInputKeys = redKeys.Load()
	stats.ReduceOutputRecords = redRecords.Load()
	if err := runErr(ctx, errs, job.Name, "reduce"); err != nil {
		return nil, stats, err
	}

	simulate(stats, cfg)

	var flat []R
	for _, rs := range results {
		flat = append(flat, rs...)
	}
	return flat, stats, nil
}

// simulate fills Stats.Sim from the measured task durations and shuffled
// bytes (see package doc).
func simulate(stats *Stats, cfg Config) {
	slots := cfg.Cluster.Machines * cfg.Cluster.SlotsPerMachine
	stats.Sim.Map = lptMakespan(stats.MapTaskTimes, slots)
	stats.Sim.Reduce = lptMakespan(stats.ReduceTaskTimes, slots)
	stats.Sim.Shuffle = time.Duration(float64(stats.MapOutputBytes) /
		(float64(cfg.Cluster.Machines) * cfg.Cluster.NetBytesPerSec) * float64(time.Second))
}

type kv[K comparable, V any] struct {
	k K
	v V
}

// runPool executes fn(0..n-1) on up to `workers` goroutines.
func runPool(workers, n int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// lptMakespan schedules task durations onto `slots` parallel slots using
// longest-processing-time-first and returns the makespan.
func lptMakespan(tasks []time.Duration, slots int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, slots)
	for _, t := range sorted {
		// Place on least-loaded slot (slots is small; linear scan).
		best := 0
		for s := 1; s < slots; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		loads[best] += t
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// HashString is an FNV-1a partitioner for string keys.
func HashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// HashBytes is an FNV-1a partitioner for byte keys.
func HashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// HashUint32 is a Fibonacci-style partitioner for integer keys.
func HashUint32(x uint32) uint32 {
	return x * 2654435761
}

package mapreduce_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lash/internal/mapreduce"
)

// TestRunPreCancelled: a context that is already done must return before
// any task function runs.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var maps atomic.Int64
	_, _, err := mapreduce.Run(ctx, mapreduce.Config{Workers: 2},
		[]string{"a", "b", "c"},
		mapreduce.Job[string, string, int64, string]{
			Name: "pre-cancelled",
			Map: func(item string, emit func(string, int64)) {
				maps.Add(1)
			},
			Hash:   mapreduce.HashString,
			Reduce: func(k string, vs []int64, emit func(string)) {},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if !strings.Contains(err.Error(), `job "pre-cancelled"`) {
		t.Errorf("error %q does not name the job", err)
	}
	if n := maps.Load(); n != 0 {
		t.Errorf("%d map calls ran despite pre-cancelled context", n)
	}
}

// TestRunAggPreCancelled mirrors TestRunPreCancelled on the aggregated
// path.
func TestRunAggPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var maps atomic.Int64
	_, _, err := mapreduce.RunAgg(ctx, mapreduce.Config{Workers: 2},
		[]string{"a", "b", "c"},
		mapreduce.AggJob[string, string]{
			Name: "pre-cancelled-agg",
			Map: func(item string, emit func(uint32, []byte, int64)) {
				maps.Add(1)
			},
			Reduce: func(g uint32, es []mapreduce.Entry, emit func(string)) error { return nil },
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if n := maps.Load(); n != 0 {
		t.Errorf("%d map calls ran despite pre-cancelled context", n)
	}
}

// TestRunCancelMidEmit: a single map task spinning on emit must observe
// cancellation at an emit point, not run to completion.
func TestRunCancelMidEmit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, _, err := mapreduce.RunAgg(ctx, mapreduce.Config{Workers: 1, MapTasks: 1},
			[]int{0},
			mapreduce.AggJob[int, string]{
				Name: "spin",
				Map: func(item int, emit func(uint32, []byte, int64)) {
					key := []byte("k")
					for i := 0; ; i++ { // unbounded without cancellation
						if once.CompareAndSwap(false, true) {
							close(started)
						}
						emit(uint32(i%7), key, 1)
					}
				},
				Reduce: func(g uint32, es []mapreduce.Entry, emit func(string)) error { return nil },
			})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return within 5s")
	}
}

// TestRunCancelCauseInChain: a cancellation cause set via WithCancelCause
// must be matchable on the returned error.
func TestRunCancelCauseInChain(t *testing.T) {
	cause := errors.New("operator hit the big red button")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	_, _, err := mapreduce.Run(ctx, mapreduce.Config{Workers: 1},
		[]string{"a"},
		mapreduce.Job[string, string, int64, string]{
			Name:   "cause",
			Map:    func(item string, emit func(string, int64)) {},
			Hash:   mapreduce.HashString,
			Reduce: func(k string, vs []int64, emit func(string)) {},
		})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want both context.Canceled and the cause in chain", err)
	}
}

// TestRunAggProgress: the progress hook sees every map task and partition
// retire, and a final "done" snapshot.
func TestRunAggProgress(t *testing.T) {
	var mu sync.Mutex
	var events []mapreduce.Progress
	cfg := mapreduce.Config{Workers: 2, MapTasks: 3, ReduceTasks: 4,
		Progress: func(p mapreduce.Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		}}
	_, _, err := mapreduce.RunAgg(context.Background(), cfg,
		[]string{"a b", "b c", "c a"},
		mapreduce.AggJob[string, string]{
			Name: "progress",
			Map: func(item string, emit func(uint32, []byte, int64)) {
				for _, w := range strings.Fields(item) {
					emit(0, []byte(w), 1)
				}
			},
			Reduce: func(g uint32, es []mapreduce.Entry, emit func(string)) error { return nil },
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	last := events[len(events)-1]
	if last.Phase != "done" {
		t.Errorf("last event phase = %q, want done", last.Phase)
	}
	if last.MapTasksDone != last.MapTasks || last.MapTasks != 3 {
		t.Errorf("final map progress %d/%d, want 3/3", last.MapTasksDone, last.MapTasks)
	}
	if last.ReduceTasksDone != last.ReduceTasks || last.ReduceTasks != 4 {
		t.Errorf("final reduce progress %d/%d, want 4/4", last.ReduceTasksDone, last.ReduceTasks)
	}
	var mapEvents, reduceEvents int
	for _, e := range events {
		switch e.Phase {
		case "map":
			mapEvents++
		case "reduce":
			reduceEvents++
		}
		if e.Job != "progress" {
			t.Fatalf("event names job %q, want progress", e.Job)
		}
	}
	if mapEvents != 3 || reduceEvents != 4 {
		t.Errorf("got %d map / %d reduce events, want 3 / 4", mapEvents, reduceEvents)
	}
}

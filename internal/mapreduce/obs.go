package mapreduce

import (
	"time"

	"lash/internal/obs"
)

// obsHooks resolves a Config's observability carrier (Config.Obs) into the
// per-call handles the run paths record through. The zero hooks (nil Obs)
// record nothing: every handle method is nil-receiver safe, so the task
// bodies carry no "is observability on?" branches beyond one per retirement.
type obsHooks struct {
	run   *obs.Run
	tr    *obs.Tracer
	jobID obs.SpanID
	root  obs.SpanID
	start time.Time

	// Process-wide pipeline counters (nil when no metrics are attached).
	pm              *obs.PipelineMetrics
	shufRecords     *obs.Counter
	shufBytes       *obs.Counter
	spillFlushes    *obs.Counter
	spillRuns       *obs.Counter
	spillBytes      *obs.Counter
	spillRecords    *obs.Counter
	mergeSeconds    *obs.Histogram
	taskRetries     *obs.Counter
	faultsInjected  *obs.Counter
	spillCleanupErr *obs.Counter
}

// newObsHooks pre-allocates the job's span id (published through
// Run.SetJobSpan so deeper layers can parent to it) and extracts the
// pipeline metric handles. start anchors the job and phase spans.
func newObsHooks(o *obs.Run, start time.Time) obsHooks {
	h := obsHooks{run: o, tr: o.TracerOf(), pm: o.PipelineMetricsOf(), start: start}
	if o != nil {
		h.root = o.Root
	}
	if h.pm != nil {
		h.shufRecords = h.pm.ShuffleRecords
		h.shufBytes = h.pm.ShuffleBytes
		h.spillFlushes = h.pm.SpillFlushes
		h.spillRuns = h.pm.SpillRuns
		h.spillBytes = h.pm.SpillBytes
		h.spillRecords = h.pm.SpillRecords
		h.mergeSeconds = h.pm.MergeSeconds
		h.taskRetries = h.pm.TaskRetries
		h.faultsInjected = h.pm.FaultsInjected
		h.spillCleanupErr = h.pm.SpillCleanupErrors
	}
	if h.tr != nil {
		h.jobID = h.tr.NextID()
		o.SetJobSpan(h.jobID)
	}
	return h
}

// taskSpan records one finished task (or partition) span under the job span.
func (h *obsHooks) taskSpan(name, jobName, phase string, idx int, begin time.Time) {
	if h.tr == nil {
		return
	}
	h.tr.Record(obs.SpanRecord{
		Parent: h.jobID, Name: name, Job: jobName, Phase: phase,
		Partition: idx, Start: begin, Duration: time.Since(begin),
	})
}

// finish records the job's phase duration histograms and its span tree (the
// job span plus one child span per phase, laid out back-to-back from the
// watermark wall times so they sum to the job's wall time) once the run's
// PhaseTimes are final. Safe on the zero hooks.
func (h *obsHooks) finish(jobName string, w PhaseTimes) {
	if h.pm != nil {
		h.pm.Phases(jobName).Observe(w.Map.Seconds(), w.Shuffle.Seconds(), w.Reduce.Seconds())
	}
	if h.tr != nil && h.jobID != 0 {
		mapEnd := h.start.Add(w.Map)
		shufEnd := mapEnd.Add(w.Shuffle)
		h.tr.Record(obs.SpanRecord{Parent: h.jobID, Name: "phase", Job: jobName, Phase: "map", Partition: -1, Start: h.start, Duration: w.Map})
		h.tr.Record(obs.SpanRecord{Parent: h.jobID, Name: "phase", Job: jobName, Phase: "shuffle", Partition: -1, Start: mapEnd, Duration: w.Shuffle})
		h.tr.Record(obs.SpanRecord{Parent: h.jobID, Name: "phase", Job: jobName, Phase: "reduce", Partition: -1, Start: shufEnd, Duration: w.Reduce})
		h.tr.Record(obs.SpanRecord{ID: h.jobID, Parent: h.root, Name: "job", Job: jobName, Partition: -1, Start: h.start, Duration: w.Total()})
	}
	h.run.SetJobSpan(0)
}

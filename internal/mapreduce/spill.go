package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"lash/internal/faults"
	"lash/internal/obs"
)

// The spillable shuffle: when Config.MemoryBudget is set, RunAgg routes the
// aggregated shuffle through disk instead of holding every partition's
// merged table in memory. Map tasks still aggregate into flat hash tables,
// but each task's tables are bounded by its share of the budget — exceeding
// it flushes every table as a *sorted run* (entries ordered by (group, key
// bytes), the reduce delivery order) appended to the owning partition's
// spill file — and the tables remaining when the task retires are flushed
// the same way. The reduce side then k-way merges each partition's runs,
// re-aggregating equal (group, key) entries across runs and handing every
// group to Reduce exactly as the in-memory path would: ascending group
// order, entries sorted by key, weights summed. The two paths are
// differential-tested byte-identical.
//
// Run record wire format (per aggregated entry, varint-encoded):
//
//	uvarint(group) uvarint(len(key)) key-bytes varint(weight)
//
// Spill files live in a fresh directory under Config.SpillDir (default
// os.TempDir()), one file per reduce partition, and the whole directory is
// removed when RunAgg returns — on success, error, and cancellation alike.

// aggEntrySize approximates the in-memory footprint of one byteTable slot
// for budget accounting (hash + group + klen + off + weight, padded).
const aggEntrySize = 32

// mem estimates the table's memory footprint: the slot array plus the key
// arena's capacity.
func (t *byteTable) mem() int64 {
	return int64(len(t.entries))*aggEntrySize + int64(cap(t.arena))
}

// sortedIndex returns the table's live slot indexes ordered by (group, key
// bytes) — the one reduce delivery order, shared by the in-memory reduce
// and the spill-run writer so the two paths cannot drift apart.
func (t *byteTable) sortedIndex() []int32 {
	idx := make([]int32, 0, t.n)
	for i := range t.entries {
		if t.entries[i].hash != 0 {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := &t.entries[idx[a]], &t.entries[idx[b]]
		if ea.group != eb.group {
			return ea.group < eb.group
		}
		return bytes.Compare(t.key(ea), t.key(eb)) < 0
	})
	return idx
}

// spillRun is one sorted run inside a partition's spill file. owner is the
// map task that wrote it, so a retried task's stale runs can be dropped
// (dropTask) before the attempt rewrites them.
type spillRun struct {
	off     int64
	len     int64
	records int
	owner   int
}

// spillPart is the per-partition spill state. mu serializes file appends
// from concurrently-retiring map tasks; by the time the partition is
// reduced, every map task has retired, so the reader needs no lock. bad
// poisons the partition when a failed append could not be rolled back —
// the file tail is then in an unknown state and no further runs may land.
type spillPart struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer // created with f, reused across runs
	off  int64
	runs []spillRun
	bad  error
}

// spillState owns a run's spill directory and per-partition files. Spill
// volume is accounted into the run's counters (rc) and, when pipeline
// metrics are attached, mirrored into the process-wide counters (pm*,
// nil-safe).
type spillState struct {
	dir    string
	parts  []spillPart
	rc     *obs.RunCounters
	faults *faults.Registry

	pmRuns        *obs.Counter
	pmBytes       *obs.Counter
	pmRecords     *obs.Counter
	pmFaults      *obs.Counter
	pmCleanupErrs *obs.Counter
}

// newSpillState creates the run's private spill directory under baseDir
// (os.TempDir() when empty).
func newSpillState(baseDir string, reduceTasks int, rc *obs.RunCounters) (*spillState, error) {
	dir, err := os.MkdirTemp(baseDir, "lash-spill-")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: create spill dir: %w", err)
	}
	return &spillState{dir: dir, parts: make([]spillPart, reduceTasks), rc: rc}, nil
}

// cleanup closes every partition file and removes the spill directory with
// everything in it. Safe to call exactly once, after all tasks have retired.
// Failures cannot be returned (cleanup runs on every exit path, after the
// run's error is already decided) but must not vanish either — a close or
// remove error means a temp file or the directory may have leaked, so each
// one is counted into the run's counters and the process-wide gauge feeding
// lash_spill_cleanup_errors_total.
func (s *spillState) cleanup() {
	for p := range s.parts {
		if f := s.parts[p].f; f != nil {
			if err := f.Close(); err != nil {
				s.rc.SpillCleanupErrors.Add(1)
				s.pmCleanupErrs.Inc()
			}
			s.parts[p].f = nil
		}
	}
	if err := os.RemoveAll(s.dir); err != nil {
		s.rc.SpillCleanupErrors.Add(1)
		s.pmCleanupErrs.Inc()
	}
}

// writeRun sorts t's entries by (group, key bytes) and appends them as one
// run to partition p's spill file, tagged with the owning map task. The
// caller accounts shuffle counters; writeRun accounts the spill counters.
// A run is committed atomically: it joins st.runs only after every byte
// reached the file, and a failed append rolls the file back to the last
// committed boundary (failRun) so a retried task can rewrite it.
func (s *spillState) writeRun(p, owner int, t *byteTable) error {
	idx := t.sortedIndex()

	st := &s.parts[p]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.bad != nil {
		return st.bad
	}
	if st.f == nil {
		f, err := os.CreateTemp(s.dir, fmt.Sprintf("part-%d-", p))
		if err != nil {
			return fmt.Errorf("mapreduce: create spill file: %w", err)
		}
		st.f = f
		st.w = bufio.NewWriterSize(f, 1<<16)
	}
	w := st.w
	var scratch [binary.MaxVarintLen64]byte
	var written int64
	for _, i := range idx {
		e := &t.entries[i]
		n := binary.PutUvarint(scratch[:], uint64(e.group))
		n += binary.PutUvarint(scratch[n:], uint64(e.klen))
		if _, err := w.Write(scratch[:n]); err != nil {
			return s.failRun(st, fmt.Errorf("mapreduce: write spill run: %w", err))
		}
		written += int64(n)
		if _, err := w.Write(t.key(e)); err != nil {
			return s.failRun(st, fmt.Errorf("mapreduce: write spill run: %w", err))
		}
		written += int64(e.klen)
		n = binary.PutVarint(scratch[:], e.weight)
		if _, err := w.Write(scratch[:n]); err != nil {
			return s.failRun(st, fmt.Errorf("mapreduce: write spill run: %w", err))
		}
		written += int64(n)
	}
	// The injection point sits just before the final flush, when the
	// buffer (and possibly the file tail) holds a run's worth of
	// uncommitted bytes — the worst case the rollback must handle.
	if err := s.faults.Hit("mapreduce.spill.write"); err != nil {
		s.rc.FaultsInjected.Add(1)
		s.pmFaults.Inc()
		return s.failRun(st, fmt.Errorf("mapreduce: write spill run: %w", err))
	}
	if err := w.Flush(); err != nil {
		return s.failRun(st, fmt.Errorf("mapreduce: flush spill run: %w", err))
	}
	st.runs = append(st.runs, spillRun{off: st.off, len: written, records: len(idx), owner: owner})
	st.off += written
	s.rc.SpillRuns.Add(1)
	s.rc.SpillBytes.Add(written)
	s.rc.SpillRecords.Add(int64(len(idx)))
	s.pmRuns.Inc()
	s.pmBytes.Add(written)
	s.pmRecords.Add(int64(len(idx)))
	return nil
}

// failRun rolls partition st back to its last committed run boundary after
// a failed append: the writer's buffered bytes are discarded and the file
// is truncated to st.off (a bufio flush may already have pushed part of the
// failed run to disk). When the rollback itself fails the partition is
// poisoned — the file tail is unknowable, so every later writeRun returns
// the poisoning error instead of appending garbage. Always returns err.
func (s *spillState) failRun(st *spillPart, err error) error {
	st.w.Reset(st.f)
	if terr := st.f.Truncate(st.off); terr != nil {
		st.bad = fmt.Errorf("mapreduce: spill rollback failed: %w (rolling back: %w)", terr, err)
		return err
	}
	if _, serr := st.f.Seek(st.off, io.SeekStart); serr != nil {
		st.bad = fmt.Errorf("mapreduce: spill rollback failed: %w (rolling back: %w)", serr, err)
	}
	return err
}

// dropTask removes every run the given map task has written, across all
// partitions — called by a retrying attempt before it rewrites them, so a
// partition never merges two copies of one task's output. The dead bytes
// stay in the files unread (runs are addressed by offset, never scanned).
func (s *spillState) dropTask(owner int) {
	for p := range s.parts {
		st := &s.parts[p]
		st.mu.Lock()
		kept := st.runs[:0]
		for _, r := range st.runs {
			if r.owner != owner {
				kept = append(kept, r)
			}
		}
		st.runs = kept
		st.mu.Unlock()
	}
}

// runCursor streams one sorted run back off disk. group/key/weight hold the
// record at the cursor; key bytes live in the cursor-owned buffer and stay
// valid until the next advance.
type runCursor struct {
	r      *bufio.Reader
	left   int // records remaining, current one included
	group  uint32
	key    []byte
	weight int64
}

// next advances the cursor to its next record. Returns false at run end.
func (c *runCursor) next() (bool, error) {
	if c.left == 0 {
		return false, nil
	}
	c.left--
	g, err := binary.ReadUvarint(c.r)
	if err != nil {
		return false, fmt.Errorf("mapreduce: corrupt spill run: %w", err)
	}
	klen, err := binary.ReadUvarint(c.r)
	if err != nil {
		return false, fmt.Errorf("mapreduce: corrupt spill run: %w", err)
	}
	if cap(c.key) < int(klen) {
		c.key = make([]byte, klen)
	}
	c.key = c.key[:klen]
	if _, err := io.ReadFull(c.r, c.key); err != nil {
		return false, fmt.Errorf("mapreduce: corrupt spill run: %w", err)
	}
	w, err := binary.ReadVarint(c.r)
	if err != nil {
		return false, fmt.Errorf("mapreduce: corrupt spill run: %w", err)
	}
	c.group, c.weight = uint32(g), w
	return true, nil
}

// cursorLess orders cursors by their current record's (group, key bytes).
func cursorLess(a, b *runCursor) bool {
	if a.group != b.group {
		return a.group < b.group
	}
	return bytes.Compare(a.key, b.key) < 0
}

// cursorHeap is a min-heap of run cursors keyed by the current record.
type cursorHeap []*runCursor

func (h *cursorHeap) push(c *runCursor) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !cursorLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// fix restores the heap property after the root's record advanced.
func (h *cursorHeap) fix() {
	s := *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s) && cursorLess(s[l], s[small]) {
			small = l
		}
		if r < len(s) && cursorLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// popRoot removes the root cursor (its run is exhausted).
func (h *cursorHeap) popRoot() {
	s := *h
	s[0] = s[len(s)-1]
	*h = s[:len(s)-1]
	if len(*h) > 1 {
		h.fix()
	}
}

// mergeRuns k-way merges partition p's sorted runs, re-aggregating equal
// (group, key) entries, and hands each group to reduce with its entries
// sorted by key — exactly the in-memory reduce delivery. reduce may keep
// the entries only for the duration of the call (keys alias a per-group
// arena). abort is polled between groups for cooperative cancellation.
func (s *spillState) mergeRuns(p int, abort func() bool, reduce func(group uint32, entries []Entry) error) error {
	st := &s.parts[p]
	if len(st.runs) == 0 {
		return nil
	}
	// Injected merge failures model a read error at merge start; the merge
	// is re-runnable (fresh section readers per call), so a retried reduce
	// task simply merges again.
	if err := s.faults.Hit("mapreduce.spill.merge"); err != nil {
		s.rc.FaultsInjected.Add(1)
		s.pmFaults.Inc()
		return fmt.Errorf("mapreduce: merge spill runs: %w", err)
	}
	heap := make(cursorHeap, 0, len(st.runs))
	for _, run := range st.runs {
		c := &runCursor{
			r:    bufio.NewReaderSize(io.NewSectionReader(st.f, run.off, run.len), 1<<16),
			left: run.records,
		}
		ok, err := c.next()
		if err != nil {
			return err
		}
		if ok {
			heap.push(c)
		}
	}

	var (
		entries []Entry
		arena   []byte
		group   uint32
		started bool
	)
	flush := func() error {
		if !started || len(entries) == 0 {
			return nil
		}
		err := reduce(group, entries)
		entries = entries[:0]
		arena = arena[:0]
		return err
	}
	for len(heap) > 0 {
		c := heap[0]
		if started && c.group != group {
			if abort() {
				return nil
			}
			if err := flush(); err != nil {
				return err
			}
		}
		group = c.group
		started = true

		// Aggregate every run's copy of this (group, key): consume the root,
		// then any new root with the same record.
		off := len(arena)
		arena = append(arena, c.key...)
		key := arena[off:len(arena):len(arena)]
		weight := int64(0)
		for len(heap) > 0 {
			c = heap[0]
			if c.group != group || !bytes.Equal(c.key, key) {
				break
			}
			weight += c.weight
			ok, err := c.next()
			if err != nil {
				return err
			}
			if ok {
				heap.fix()
			} else {
				heap.popRoot()
			}
		}
		entries = append(entries, Entry{Key: key, Weight: weight})
	}
	return flush()
}

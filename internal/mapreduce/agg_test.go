package mapreduce_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lash/internal/mapreduce"
)

var errDecode = errors.New("synthetic decode failure")

// aggWordCount is wordCount on the aggregated-shuffle path: the word bytes
// are the key, the count is the weight, and a scratch buffer is reused
// across emits (the substrate copies keys it has not seen).
func aggWordCount(cfg mapreduce.Config, docs []string) (map[string]int64, *mapreduce.Stats, error) {
	type outKV struct {
		word string
		n    int64
	}
	out, stats, err := mapreduce.RunAgg(context.Background(), cfg, docs, mapreduce.AggJob[string, outKV]{
		Name: "agg-wordcount",
		Map: func(doc string, emit func(uint32, []byte, int64)) {
			var buf []byte
			for _, w := range strings.Fields(doc) {
				buf = append(buf[:0], w...)
				emit(mapreduce.HashBytes(buf), buf, 1)
			}
		},
		Size: func(_ uint32, keyLen int, _ int64) int { return keyLen + 8 },
		Reduce: func(_ uint32, entries []mapreduce.Entry, emit func(outKV)) error {
			for _, e := range entries {
				emit(outKV{string(e.Key), e.Weight})
			}
			return nil
		},
	})
	if err != nil {
		return nil, stats, err
	}
	m := make(map[string]int64)
	for _, o := range out {
		m[o.word] = o.n
	}
	return m, stats, nil
}

func TestAggWordCount(t *testing.T) {
	got, stats, err := aggWordCount(mapreduce.Config{Workers: 2, MapTasks: 3, ReduceTasks: 2}, docs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"the": 3, "quick": 2, "brown": 1, "fox": 3, "lazy": 1,
		"dog": 3, "jumps": 1, "and": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	if stats.MapInputRecords != 4 {
		t.Errorf("MapInputRecords = %d", stats.MapInputRecords)
	}
	if stats.MapOutputBytes <= 0 || stats.MapOutputRecords <= 0 {
		t.Errorf("counters not populated: %+v", stats.Counters)
	}
	if stats.ReduceOutputRecords != int64(len(want)) {
		t.Errorf("ReduceOutputRecords = %d, want %d", stats.ReduceOutputRecords, len(want))
	}
	// Each word hashes to its own group, so groups ≈ distinct words.
	if stats.ReduceInputKeys != int64(len(want)) {
		t.Errorf("ReduceInputKeys = %d, want %d", stats.ReduceInputKeys, len(want))
	}
}

// The aggregated path must produce exactly the classic path's aggregates,
// for any worker/task split.
func TestAggMatchesClassicRun(t *testing.T) {
	ref, _ := wordCount(mapreduce.Config{Workers: 1, MapTasks: 1, ReduceTasks: 1}, docs)
	for _, cfg := range []mapreduce.Config{
		{Workers: 1, MapTasks: 1, ReduceTasks: 1},
		{Workers: 1, MapTasks: 4, ReduceTasks: 3},
		{Workers: 4, MapTasks: 2, ReduceTasks: 8},
		{Workers: 8, MapTasks: 16, ReduceTasks: 1},
	} {
		got, _, err := aggWordCount(cfg, docs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("cfg %+v: size mismatch: %v vs %v", cfg, got, ref)
		}
		for k, v := range ref {
			if got[k] != v {
				t.Errorf("cfg %+v: %s = %d, want %d", cfg, k, got[k], v)
			}
		}
	}
}

// Map-side aggregation must shrink shuffled records exactly like the classic
// combiner does.
func TestAggMapSideAggregation(t *testing.T) {
	many := make([]string, 50)
	for i := range many {
		many[i] = "x x x x"
	}
	_, stats, err := aggWordCount(mapreduce.Config{Workers: 2, MapTasks: 5, ReduceTasks: 2}, many)
	if err != nil {
		t.Fatal(err)
	}
	// 5 map tasks × 1 distinct word → 5 records instead of 200.
	if stats.MapOutputRecords != 5 {
		t.Fatalf("aggregated MapOutputRecords = %d, want 5", stats.MapOutputRecords)
	}
}

func TestAggEmptyInput(t *testing.T) {
	got, stats, err := aggWordCount(mapreduce.Config{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.MapInputRecords != 0 || stats.ReduceInputKeys != 0 {
		t.Fatalf("empty input mishandled: %v %+v", got, stats.Counters)
	}
}

func TestAggSingleWorker(t *testing.T) {
	got, _, err := aggWordCount(mapreduce.Config{Workers: 1, MapTasks: 4, ReduceTasks: 4}, docs)
	if err != nil {
		t.Fatal(err)
	}
	if got["the"] != 3 || got["fox"] != 3 {
		t.Fatalf("single-worker counts wrong: %v", got)
	}
}

// Output order is deterministic for a fixed MapTasks/ReduceTasks split,
// regardless of real parallelism: partitions in order, groups ascending,
// keys in byte order.
func TestAggDeterministicOrder(t *testing.T) {
	run := func(workers int) []string {
		out, _, err := mapreduce.RunAgg(context.Background(),
			mapreduce.Config{Workers: workers, MapTasks: 4, ReduceTasks: 3},
			docs,
			mapreduce.AggJob[string, string]{
				Name: "order",
				Map: func(doc string, emit func(uint32, []byte, int64)) {
					for _, w := range strings.Fields(doc) {
						emit(mapreduce.HashBytes([]byte(w)), []byte(w), 1)
					}
				},
				Reduce: func(_ uint32, entries []mapreduce.Entry, emit func(string)) error {
					for _, e := range entries {
						emit(string(e.Key))
					}
					return nil
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := strings.Join(run(1), ",")
	for _, workers := range []int{2, 4, 8} {
		if got := strings.Join(run(workers), ","); got != want {
			t.Fatalf("workers=%d: order %q != single-worker order %q", workers, got, want)
		}
	}
}

// Entries handed to one Reduce call share the group and arrive sorted by
// key bytes.
func TestAggGroupedSortedEntries(t *testing.T) {
	_, _, err := mapreduce.RunAgg(context.Background(),
		mapreduce.Config{Workers: 3, MapTasks: 4, ReduceTasks: 2},
		docs,
		mapreduce.AggJob[string, struct{}]{
			Name: "grouping",
			Map: func(doc string, emit func(uint32, []byte, int64)) {
				for _, w := range strings.Fields(doc) {
					emit(uint32(len(w)), []byte(w), 1) // group = word length
				}
			},
			Hash: func(group uint32, _ []byte) uint32 { return mapreduce.HashUint32(group) },
			Reduce: func(group uint32, entries []mapreduce.Entry, emit func(struct{})) error {
				for i, e := range entries {
					if uint32(len(e.Key)) != group {
						t.Errorf("group %d got key %q", group, e.Key)
					}
					if i > 0 && string(entries[i-1].Key) >= string(e.Key) {
						t.Errorf("group %d: keys out of order: %q !< %q", group, entries[i-1].Key, e.Key)
					}
				}
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggPanicInMap(t *testing.T) {
	_, _, err := mapreduce.RunAgg(context.Background(),
		mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2},
		docs,
		mapreduce.AggJob[string, struct{}]{
			Name: "boom",
			Map: func(doc string, emit func(uint32, []byte, int64)) {
				panic("map exploded")
			},
			Reduce: func(_ uint32, _ []mapreduce.Entry, _ func(struct{})) error { return nil },
		})
	if err == nil {
		t.Fatal("want error from panicking map task")
	}
	for _, frag := range []string{`job "boom"`, "map task", "map exploded"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestAggPanicInReduce(t *testing.T) {
	_, _, err := mapreduce.RunAgg(context.Background(),
		mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2},
		docs,
		mapreduce.AggJob[string, struct{}]{
			Name: "boom-reduce",
			Map: func(doc string, emit func(uint32, []byte, int64)) {
				for _, w := range strings.Fields(doc) {
					emit(mapreduce.HashBytes([]byte(w)), []byte(w), 1)
				}
			},
			Reduce: func(_ uint32, _ []mapreduce.Entry, _ func(struct{})) error {
				panic("reduce exploded")
			},
		})
	if err == nil {
		t.Fatal("want error from panicking reduce task")
	}
	for _, frag := range []string{`job "boom-reduce"`, "reduce partition", "reduce exploded"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

// An error returned from Reduce must fail the run (first error wins) and
// discard the output.
func TestAggReduceError(t *testing.T) {
	out, _, err := mapreduce.RunAgg(context.Background(),
		mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 4},
		docs,
		mapreduce.AggJob[string, string]{
			Name: "bad-reduce",
			Map: func(doc string, emit func(uint32, []byte, int64)) {
				for _, w := range strings.Fields(doc) {
					emit(mapreduce.HashBytes([]byte(w)), []byte(w), 1)
				}
			},
			Reduce: func(_ uint32, entries []mapreduce.Entry, emit func(string)) error {
				return errDecode
			},
		})
	if err == nil || !strings.Contains(err.Error(), errDecode.Error()) {
		t.Fatalf("err = %v, want wrapped %v", err, errDecode)
	}
	if out != nil {
		t.Fatalf("output not discarded on error: %v", out)
	}
}

// Classic-path tasks must convert panics into errors too.
func TestClassicPanicInMap(t *testing.T) {
	_, _, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2},
		docs,
		mapreduce.Job[string, string, int64, struct{}]{
			Name: "classic-boom",
			Map: func(doc string, emit func(string, int64)) {
				panic("classic map exploded")
			},
			Hash:   mapreduce.HashString,
			Reduce: func(string, []int64, func(struct{})) {},
		})
	if err == nil || !strings.Contains(err.Error(), "classic map exploded") {
		t.Fatalf("err = %v, want recovered map panic", err)
	}
}

func TestClassicPanicInReduce(t *testing.T) {
	_, _, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2},
		docs,
		mapreduce.Job[string, string, int64, struct{}]{
			Name: "classic-boom-reduce",
			Map: func(doc string, emit func(string, int64)) {
				for _, w := range strings.Fields(doc) {
					emit(w, 1)
				}
			},
			Hash: mapreduce.HashString,
			Reduce: func(string, []int64, func(struct{})) {
				panic("classic reduce exploded")
			},
		})
	if err == nil || !strings.Contains(err.Error(), "classic reduce exploded") {
		t.Fatalf("err = %v, want recovered reduce panic", err)
	}
	if !strings.Contains(err.Error(), `job "classic-boom-reduce"`) {
		t.Errorf("error %q missing job name", err)
	}
}

package mapreduce

import (
	"bufio"
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"lash/internal/faults"
	"lash/internal/obs"
)

func TestIsTransientClassification(t *testing.T) {
	wrapped := func(err error) error { return errors.Join(errors.New("ctx"), err) }
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("decode failure"), false},
		{"transient sentinel", ErrTransient, true},
		{"wrapped transient", wrapped(ErrTransient), true},
		{"injected fault", wrapped(faults.ErrInjected), true},
		{"path error", &os.PathError{Op: "write", Path: "x", Err: errors.New("EIO")}, true},
		{"syscall error", os.NewSyscallError("write", errors.New("ENOSPC")), true},
		{"link error", &os.LinkError{Op: "rename", Old: "a", New: "b", Err: errors.New("EXDEV")}, true},
		{"short write", io.ErrShortWrite, true},
		{"panic", &taskPanicError{val: "boom"}, false},
		// A panic always classifies deterministic, even when its payload
		// would otherwise look transient (a panicking I/O path is a bug).
		{"panic wrapping transient", &taskPanicError{val: ErrTransient}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 8, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Seed: 7}
	for task := 0; task < 4; task++ {
		for attempt := 0; attempt < 8; attempt++ {
			d := pol.BaseBackoff
			for i := 0; i < attempt; i++ {
				d *= 2
				if d >= pol.MaxBackoff {
					d = pol.MaxBackoff
					break
				}
			}
			got := backoffDelay(pol, task, attempt)
			if got < d/2 || got >= d {
				t.Fatalf("task %d attempt %d: delay %v outside [%v, %v)", task, attempt, got, d/2, d)
			}
			if again := backoffDelay(pol, task, attempt); again != got {
				t.Fatalf("task %d attempt %d: nondeterministic delay %v != %v", task, attempt, again, got)
			}
		}
	}
	// Different seeds must decorrelate at least somewhere.
	other := pol
	other.Seed = 8
	same := true
	for attempt := 0; attempt < 8 && same; attempt++ {
		same = backoffDelay(pol, 0, attempt) == backoffDelay(other, 0, attempt)
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter across all attempts")
	}
}

// TestCleanupCountsErrors: a close failure during cleanup cannot be returned
// (the run's error is already decided) but must land in the counters.
func TestCleanupCountsErrors(t *testing.T) {
	rc := &obs.RunCounters{}
	s, err := newSpillState(t.TempDir(), 2, rc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(s.dir, "part-0-")
	if err != nil {
		t.Fatal(err)
	}
	s.parts[0].f = f
	if err := f.Close(); err != nil { // sabotage: cleanup's Close now fails
		t.Fatal(err)
	}
	s.cleanup()
	if got := rc.SpillCleanupErrors.Load(); got != 1 {
		t.Fatalf("SpillCleanupErrors = %d, want 1", got)
	}
	if _, err := os.Stat(s.dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived cleanup: %v", err)
	}
}

// TestFailRunRollback: a failed append truncates the partition file back to
// the last committed boundary and discards the writer's buffered bytes.
func TestFailRunRollback(t *testing.T) {
	rc := &obs.RunCounters{}
	s, err := newSpillState(t.TempDir(), 1, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	st := &s.parts[0]
	f, err := os.CreateTemp(s.dir, "part-0-")
	if err != nil {
		t.Fatal(err)
	}
	st.f = f
	if _, err := f.WriteString("committed"); err != nil {
		t.Fatal(err)
	}
	st.off = int64(len("committed"))
	if _, err := f.WriteString("partial-failed-run"); err != nil {
		t.Fatal(err)
	}
	st.w = bufio.NewWriterSize(f, 1<<16)
	st.w.WriteString("buffered-tail")

	boom := errors.New("synthetic append failure")
	if got := s.failRun(st, boom); got != boom {
		t.Fatalf("failRun returned %v, want %v", got, boom)
	}
	if st.bad != nil {
		t.Fatalf("partition poisoned on successful rollback: %v", st.bad)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "committed" {
		t.Fatalf("file = %q after rollback, want %q", data, "committed")
	}
	// The writer must be usable again at the rollback offset.
	st.w.WriteString("next-run")
	if err := st.w.Flush(); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(f.Name())
	if string(data) != "committednext-run" {
		t.Fatalf("file = %q after rewrite, want %q", data, "committednext-run")
	}
}

// TestDropTask removes exactly the retrying task's runs, across partitions.
func TestDropTask(t *testing.T) {
	rc := &obs.RunCounters{}
	s, err := newSpillState(t.TempDir(), 2, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	s.parts[0].runs = []spillRun{{owner: 0}, {owner: 1}, {owner: 0}}
	s.parts[1].runs = []spillRun{{owner: 1}}
	s.dropTask(0)
	if got := len(s.parts[0].runs); got != 1 || s.parts[0].runs[0].owner != 1 {
		t.Fatalf("partition 0 runs after dropTask(0): %+v", s.parts[0].runs)
	}
	if got := len(s.parts[1].runs); got != 1 {
		t.Fatalf("partition 1 runs after dropTask(0): %+v", s.parts[1].runs)
	}
}

package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lash/internal/obs"
)

// Entry is one aggregated intermediate record: a byte key and the summed
// weight of every emit of that (group, key). Key aliases the substrate's
// internal arena and is only valid during the Reduce call it is handed to.
type Entry struct {
	Key    []byte
	Weight int64
}

// AggJob is a byte-key weighted-aggregation job — the shape of every heavy
// LASH shuffle: map emits (group, key, weight) triples, equal (group, key)
// pairs have their weights summed (map-side in flat per-task hash tables,
// then again in the per-partition merge), and Reduce receives each group
// with its aggregated entries sorted by key bytes.
//
// The group is the unit of reduction (the pivot item for the partition+mine
// job); the key is an opaque encoded record (a rewritten sequence). Keys
// are copied into an internal arena on first sight, so callers may reuse
// one scratch buffer across emits — the emit path performs no per-record
// heap allocation.
type AggJob[I any, R any] struct {
	Name string

	// Map processes one input record. Emit may be called any number of
	// times; key is copied before Map regains control.
	Map func(item I, emit func(group uint32, key []byte, weight int64))

	// Hash places a (group, key) pair on a reduce partition. Every emit of
	// the same (group, key) must hash identically; emits of the same group
	// that should reach the same Reduce call must too (hash the group only,
	// as the mining job does). Optional: the default hashes group and key
	// together, which spreads group-less jobs (distinct keys are their own
	// reduction unit) evenly.
	Hash func(group uint32, key []byte) uint32

	// Size returns the encoded size of one aggregated record for the
	// MAP_OUTPUT_BYTES counter. Optional: the default is
	// keyLen + uvarint(weight).
	Size func(group uint32, keyLen int, weight int64) int

	// Reduce processes one group with its aggregated entries, sorted by key
	// bytes. Entries (and their Key slices) are only valid during the call.
	// Reduce runs streamingly: a partition's groups are reduced as soon as
	// the partition's last map input has been merged, concurrently with
	// other partitions' merges. Returning an error fails the whole run.
	Reduce func(group uint32, entries []Entry, emit func(R)) error

	// ReduceRetryable declares Reduce safe to re-execute for a partition
	// whose earlier attempt failed transiently: no side effects beyond
	// emit (emitted output is attempt-scoped and discarded on failure) —
	// in particular no streaming delivery to a consumer and no shared
	// accumulators that a re-run would double-count. Config.Retry applies
	// to reduce tasks only when set; map tasks are always retryable (the
	// substrate owns their output end to end).
	ReduceRetryable bool
}

func (job AggJob[I, R]) hash(group uint32, key []byte) uint32 {
	if job.Hash != nil {
		return job.Hash(group, key)
	}
	return HashUint32(group) ^ HashBytes(key)
}

func (job AggJob[I, R]) size(group uint32, keyLen int, weight int64) int {
	if job.Size != nil {
		return job.Size(group, keyLen, weight)
	}
	return keyLen + uvarintLen(uint64(weight))
}

// tableShuffleSize measures one table's aggregated entries for the
// MAP_OUTPUT_BYTES counter (post-aggregation output — what actually
// ships).
func tableShuffleSize[I any, R any](job AggJob[I, R], t *byteTable) int64 {
	var size int64
	for i := range t.entries {
		if e := &t.entries[i]; e.hash != 0 {
			size += int64(job.size(e.group, int(e.klen), e.weight))
		}
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// aggEntry is one slot of a byteTable. hash == 0 marks an empty slot (real
// hashes are forced non-zero).
type aggEntry struct {
	hash   uint64
	group  uint32
	klen   uint32
	off    uint64 // key bytes at arena[off : off+klen]
	weight int64
}

// byteTable is an open-addressing hash table from (group, key bytes) to an
// int64 weight. Key bytes live in a single append-only arena, so inserting
// n distinct keys costs O(log n) slice growths instead of n map/string
// allocations — this replaces the per-emit singleton map[string]int64 of
// the old partition+mine hot path.
type byteTable struct {
	entries []aggEntry // power-of-two length
	arena   []byte
	n       int
}

func hashGK(group uint32, key []byte) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(group >> (8 * i)))
		h *= 1099511628211
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1 // 0 marks empty slots
	}
	return h
}

func (t *byteTable) key(e *aggEntry) []byte {
	return t.arena[e.off : e.off+uint64(e.klen)]
}

// add sums weight into the (group, key) entry, inserting it (copying key
// into the arena) on first sight.
func (t *byteTable) add(group uint32, key []byte, weight int64) {
	if t.n >= len(t.entries)-len(t.entries)/4 { // load factor 3/4
		t.grow()
	}
	h := hashGK(group, key)
	mask := uint64(len(t.entries) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.hash == 0 {
			off := uint64(len(t.arena))
			t.arena = append(t.arena, key...)
			*e = aggEntry{hash: h, group: group, klen: uint32(len(key)), off: off, weight: weight}
			t.n++
			return
		}
		if e.hash == h && e.group == group && e.klen == uint32(len(key)) && bytes.Equal(t.key(e), key) {
			e.weight += weight
			return
		}
	}
}

// grow doubles the slot array, rehashing entries (the arena is untouched —
// offsets stay valid).
func (t *byteTable) grow() {
	newCap := 16
	if len(t.entries) > 0 {
		newCap = 2 * len(t.entries)
	}
	old := t.entries
	t.entries = make([]aggEntry, newCap)
	mask := uint64(newCap - 1)
	for i := range old {
		e := old[i]
		if e.hash == 0 {
			continue
		}
		for j := e.hash & mask; ; j = (j + 1) & mask {
			if t.entries[j].hash == 0 {
				t.entries[j] = e
				break
			}
		}
	}
}

// merge folds src into t.
func (t *byteTable) merge(src *byteTable) {
	for i := range src.entries {
		e := &src.entries[i]
		if e.hash != 0 {
			t.add(e.group, src.key(e), e.weight)
		}
	}
}

// reset clears the table for reuse, keeping capacity.
func (t *byteTable) reset() {
	for i := range t.entries {
		t.entries[i] = aggEntry{}
	}
	t.arena = t.arena[:0]
	t.n = 0
}

// aggPart is the reduce-side state of one partition.
type aggPart[R any] struct {
	mu      sync.Mutex
	merged  *byteTable
	contrib int // map tasks merged so far; == mapTasks ⇒ ready
	out     []R
}

// RunAgg executes a byte-key weighted-aggregation job over the input. The
// reduce outputs are ordered by reduce partition, then by ascending group,
// then by Reduce's emit order — deterministic for a fixed Config regardless
// of Workers. Panics in any task and errors returned by Reduce cancel the
// run and are returned annotated with the job name and task/partition.
// Cancelling ctx aborts the run cooperatively (between tasks, between
// reduce groups, and at every map emit) and returns ctx.Err() wrapped with
// the job name; a context that is already done returns before any task
// runs.
func RunAgg[I any, R any](ctx context.Context, cfg Config, input []I, job AggJob[I, R]) ([]R, *Stats, error) {
	cfg = cfg.withDefaults()
	stats := &Stats{}
	stats.MapInputRecords = int64(len(input))
	if ctx.Err() != nil {
		return nil, stats, wrapCtxErr(ctx, job.Name, "start")
	}
	errs := &errOnce{}
	stopWatch := watchContext(ctx, errs)
	defer stopWatch()

	mapTasks := cfg.MapTasks
	if mapTasks > len(input) {
		mapTasks = len(input)
	}
	if mapTasks < 1 {
		mapTasks = 1
	}
	reduceTasks := cfg.ReduceTasks

	// rc is the run's single source of truth for live counters: progress
	// snapshots, the final Stats, and (through obsHooks) the process-wide
	// pipeline metrics are all derived reads of it.
	rc := &obs.RunCounters{}

	// Budgeted runs route the shuffle through sorted on-disk runs (see
	// spill.go). The spill directory lives for exactly this call: the
	// deferred cleanup runs after the worker pool has drained, so
	// cancellation and errors leave no orphan temp files behind.
	var spill *spillState
	if cfg.MemoryBudget > 0 {
		var err error
		if spill, err = newSpillState(cfg.SpillDir, reduceTasks, rc); err != nil {
			return nil, stats, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
		}
		spill.faults = cfg.Faults
		defer spill.cleanup()
	}

	parts := make([]aggPart[R], reduceTasks)
	ready := make(chan int, reduceTasks)
	tablePool := sync.Pool{New: func() any { return &byteTable{} }}

	var redKeys, redRecords atomic.Int64
	mapTimes := make([]time.Duration, mapTasks)
	redTimes := make([]time.Duration, reduceTasks)

	// Per-task shuffle tallies for the spill path (nil on in-memory runs):
	// flushes accumulate here instead of charging the run counters directly,
	// so a failed attempt's partial accounting dies with it and a retried
	// task charges the counters exactly once — same totals as the in-memory
	// path's task-end accounting. Indexed by map task; one task's attempts
	// are sequential, so no locking. (The spill counters inside writeRun
	// stay cumulative across attempts on purpose: they report physical I/O,
	// and a rewritten run really was written twice.)
	var taskShufRecs, taskShufBytes []int64
	if spill != nil {
		taskShufRecs = make([]int64, mapTasks)
		taskShufBytes = make([]int64, mapTasks)
	}

	start := time.Now()
	oh := newObsHooks(cfg.Obs, start)
	defer func() { oh.finish(job.Name, stats.Wall) }()
	if spill != nil {
		spill.pmRuns, spill.pmBytes, spill.pmRecords = oh.spillRuns, oh.spillBytes, oh.spillRecords
		spill.pmFaults, spill.pmCleanupErrs = oh.faultsInjected, oh.spillCleanupErr
	}
	var mergesDone atomic.Int64
	var mapWall, shufWall time.Duration // written once by the last task of each kind

	report := func(phase string) {
		if cfg.Progress == nil {
			return
		}
		cfg.Progress(Progress{
			Job:             job.Name,
			Phase:           phase,
			MapTasksDone:    int(rc.MapTasksDone.Load()),
			MapTasks:        mapTasks,
			ReduceTasksDone: int(rc.ReduceTasksDone.Load()),
			ReduceTasks:     reduceTasks,
			ShuffleRecords:  rc.ShuffleRecords.Load(),
			ShuffleBytes:    rc.ShuffleBytes.Load(),
			SpillRuns:       rc.SpillRuns.Load(),
			SpillBytes:      rc.SpillBytes.Load(),
			TaskRetries:     rc.TaskRetries.Load(),
			FaultsInjected:  rc.FaultsInjected.Load(),
		})
	}
	defer report("done")

	// Reduce tasks re-execute on transient failures only when the job
	// declares Reduce re-runnable; otherwise the zero policy caps them at
	// one attempt. Each attempt rebuilds the partition's output and group
	// count from scratch, committing them only on success — a retried
	// partition is indistinguishable from a fault-free one.
	reducePol := cfg.Retry
	if !job.ReduceRetryable {
		reducePol = RetryPolicy{}
	}
	reduceOne := guard(ctx, errs, reducePol, rc, oh.taskRetries, job.Name, "reduce partition", func(p, attempt int) error {
		if err := cfg.Faults.Hit("mapreduce.reduce.task"); err != nil {
			rc.FaultsInjected.Add(1)
			oh.faultsInjected.Inc()
			return err
		}
		st := &parts[p]
		st.out = st.out[:0] // attempt-scoped: discard a failed attempt's output
		var keys int64
		aborted := false
		if spill != nil {
			// Budgeted path: k-way merge the partition's sorted runs off
			// disk. Groups arrive in ascending (group, key) order with
			// weights re-aggregated across runs — the same delivery the
			// in-memory sort below produces.
			sp := &spill.parts[p]
			if len(sp.runs) > 0 {
				begin := time.Now()
				defer func() {
					redTimes[p] = time.Since(begin)
					oh.mergeSeconds.Observe(redTimes[p].Seconds())
					oh.taskSpan("reduce-partition", job.Name, "reduce", p, begin)
				}()
				emit := func(r R) {
					checkAbort(errs)
					st.out = append(st.out, r)
				}
				err := spill.mergeRuns(p,
					func() bool { return errs.canceled.Load() },
					func(group uint32, entries []Entry) error {
						keys++
						return job.Reduce(group, entries, emit)
					})
				if err != nil {
					return err
				}
				// The partition's spill file is fully consumed; release its
				// file descriptor now instead of at run end.
				sp.mu.Lock()
				if sp.f != nil {
					sp.f.Close()
					sp.f = nil
				}
				sp.mu.Unlock()
			}
		} else if t := st.merged; t != nil && t.n > 0 {
			begin := time.Now()
			defer func() {
				redTimes[p] = time.Since(begin)
				oh.taskSpan("reduce-partition", job.Name, "reduce", p, begin)
			}()

			// Deterministic group order: entries sorted by (group, key bytes).
			idx := t.sortedIndex()

			emit := func(r R) {
				checkAbort(errs)
				st.out = append(st.out, r)
			}
			entries := make([]Entry, 0, len(idx))
			for lo := 0; lo < len(idx); {
				// Cancellation check between groups: one reduce partition can
				// hold many groups, each an independent Reduce call.
				if errs.canceled.Load() {
					aborted = true
					break
				}
				group := t.entries[idx[lo]].group
				hi := lo
				entries = entries[:0]
				for ; hi < len(idx) && t.entries[idx[hi]].group == group; hi++ {
					e := &t.entries[idx[hi]]
					entries = append(entries, Entry{Key: t.key(e), Weight: e.weight})
				}
				keys++
				if err := job.Reduce(group, entries, emit); err != nil {
					return err
				}
				lo = hi
			}
		}
		// Commit region: the attempt succeeded (or was aborted by
		// cancellation, whose partial counts die with the run).
		if !aborted {
			redKeys.Add(keys)
			redRecords.Add(int64(len(st.out)))
		}
		rc.ReduceTasksDone.Add(1)
		report("reduce")
		return nil
	})

	// accountTable charges one table to the shuffle counters.
	accountTable := func(t *byteTable) {
		size := tableShuffleSize(job, t)
		rc.ShuffleRecords.Add(int64(t.n))
		rc.ShuffleBytes.Add(size)
		oh.shufRecords.Add(int64(t.n))
		oh.shufBytes.Add(size)
	}

	// --- map + map-side aggregation + merge ------------------------------
	// The map body is organized so every failure-capable step (the fault
	// hook, user Map code, spill writes) precedes the commit region
	// (counters, contrib/ready handoff). A retried attempt therefore only
	// has to drop its own spill runs and rebuild its tables; nothing
	// partially-committed exists to undo.
	mapOne := guard(ctx, errs, cfg.Retry, rc, oh.taskRetries, job.Name, "map", func(task, attempt int) error {
		if err := cfg.Faults.Hit("mapreduce.map.task"); err != nil {
			rc.FaultsInjected.Add(1)
			oh.faultsInjected.Inc()
			return err
		}
		if spill != nil && attempt > 0 {
			// Drop the failed attempt's committed runs before rewriting
			// them — a partition must never merge two copies of one
			// task's output.
			spill.dropTask(task)
		}
		lo := len(input) * task / mapTasks
		hi := len(input) * (task + 1) / mapTasks
		begin := time.Now()
		tables := make([]*byteTable, reduceTasks)

		// Budgeted runs bound this task's tables by its share of the budget
		// and flush them all as sorted runs when it is exceeded. Spilled
		// tables are dropped, not pooled: a pooled table keeps its capacity,
		// which would charge the next task's budget before it aggregated a
		// single record.
		var taskMem, perTask int64
		if spill != nil {
			perTask = cfg.MemoryBudget / int64(cfg.Workers)
			if perTask < 1 {
				perTask = 1
			}
		}
		if spill != nil {
			taskShufRecs[task], taskShufBytes[task] = 0, 0 // attempt-scoped
		}
		spillTables := func() error {
			flushed := false
			for p, t := range tables {
				if t == nil {
					continue
				}
				if t.n > 0 {
					flushed = true
					taskShufRecs[task] += int64(t.n)
					taskShufBytes[task] += tableShuffleSize(job, t)
					if err := spill.writeRun(p, task, t); err != nil {
						return err
					}
				}
				tables[p] = nil
			}
			if flushed {
				rc.SpillFlushes.Add(1)
				oh.spillFlushes.Inc()
			}
			taskMem = 0
			return nil
		}
		emit := func(group uint32, key []byte, weight int64) {
			checkAbort(errs)
			p := int(job.hash(group, key) % uint32(reduceTasks))
			t := tables[p]
			if spill == nil {
				if t == nil {
					t = tablePool.Get().(*byteTable)
					tables[p] = t
				}
				t.add(group, key, weight)
				return
			}
			if t == nil {
				t = &byteTable{}
				tables[p] = t
			}
			before := t.mem()
			t.add(group, key, weight)
			if taskMem += t.mem() - before; taskMem > perTask {
				if err := spillTables(); err != nil {
					// Emit cannot return an error; unwind the attempt with
					// the failure so the retry loop can classify it.
					panic(attemptFail{err})
				}
			}
		}
		for _, rec := range input[lo:hi] {
			checkAbort(errs)
			job.Map(rec, emit)
		}

		if spill != nil {
			// Flush the tables that stayed under budget as final runs (the
			// reduce-side merge is uniform over runs either way) BEFORE the
			// commit region below: this final flush is the task's last
			// failure-capable step, and a failed one must leave the task
			// uncounted so its retry counts it exactly once.
			if err := spillTables(); err != nil {
				return err
			}
			rc.ShuffleRecords.Add(taskShufRecs[task])
			rc.ShuffleBytes.Add(taskShufBytes[task])
			oh.shufRecords.Add(taskShufRecs[task])
			oh.shufBytes.Add(taskShufBytes[task])
			mapTimes[task] = time.Since(begin)
			oh.taskSpan("map-task", job.Name, "map", task, begin)
			if rc.MapTasksDone.Add(1) == int64(mapTasks) {
				mapWall = time.Since(start)
			}
			for p := range parts {
				st := &parts[p]
				st.mu.Lock()
				st.contrib++
				isLast := st.contrib == mapTasks
				st.mu.Unlock()
				if isLast && !errs.canceled.Load() {
					ready <- p
				}
			}
			if mergesDone.Add(1) == int64(mapTasks) {
				shufWall = time.Since(start)
			}
			report("map")
			return nil
		}

		// In-memory commit region: nothing below can fail.
		mapTimes[task] = time.Since(begin)
		oh.taskSpan("map-task", job.Name, "map", task, begin)
		if rc.MapTasksDone.Add(1) == int64(mapTasks) {
			mapWall = time.Since(start)
		}

		// Account post-aggregation output, then merge into the partitions.
		// Merging happens as each map task retires — the shuffle overlaps
		// the map phase instead of waiting behind it.
		for _, t := range tables {
			if t != nil {
				accountTable(t)
			}
		}

		for p := range tables {
			t := tables[p]
			st := &parts[p]
			st.mu.Lock()
			if t != nil {
				if st.merged == nil {
					st.merged = t // first contributor's table is adopted wholesale
				} else {
					st.merged.merge(t)
					t.reset()
					tablePool.Put(t)
				}
			}
			st.contrib++
			isLast := st.contrib == mapTasks
			st.mu.Unlock()
			if isLast && !errs.canceled.Load() {
				ready <- p // hand the completed partition to a worker now
			}
		}
		if mergesDone.Add(1) == int64(mapTasks) {
			shufWall = time.Since(start)
		}
		report("map")
		return nil
	})

	// One pool of cfg.Workers goroutines serves both phases, so real
	// concurrency never exceeds the configured bound (the per-task
	// durations feed the simulated-cluster model and must not be inflated
	// by oversubscription). Ready partitions are drained in preference to
	// starting new map tasks — the streaming overlap — and workers block on
	// `ready` once the map tasks are exhausted. The worker that retires the
	// last map task (whether it ran or was skipped by cancellation) closes
	// the channel.
	var nextMap, mapsRetired atomic.Int64
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case p, ok := <-ready:
					if !ok {
						return
					}
					reduceOne(p)
					continue
				default:
				}
				if task := int(nextMap.Add(1)) - 1; task < mapTasks {
					mapOne(task)
					// Count retirements (run, skipped, or panicked alike):
					// the worker that retires the last map task closes the
					// channel — all merges, and therefore all sends, have
					// happened by then.
					if mapsRetired.Add(1) == int64(mapTasks) {
						close(ready)
					}
					continue
				}
				p, ok := <-ready
				if !ok {
					return
				}
				reduceOne(p)
			}
		}()
	}
	wg.Wait()

	stats.Wall.Map = mapWall
	if shufWall > mapWall {
		stats.Wall.Shuffle = shufWall - mapWall
	}
	stats.Wall.Reduce = time.Since(start) - stats.Wall.Map - stats.Wall.Shuffle
	stats.MapTaskTimes = mapTimes
	stats.ReduceTaskTimes = redTimes
	stats.MapOutputRecords = rc.ShuffleRecords.Load()
	stats.MapOutputBytes = rc.ShuffleBytes.Load()
	stats.ReduceInputKeys = redKeys.Load()
	stats.ReduceOutputRecords = redRecords.Load()
	stats.SpillRuns = rc.SpillRuns.Load()
	stats.SpillBytes = rc.SpillBytes.Load()
	stats.SpillRecords = rc.SpillRecords.Load()
	stats.TaskRetries = rc.TaskRetries.Load()
	stats.FaultsInjected = rc.FaultsInjected.Load()
	if err := runErr(ctx, errs, job.Name, "run"); err != nil {
		return nil, stats, err
	}

	simulate(stats, cfg)

	var flat []R
	for p := range parts {
		flat = append(flat, parts[p].out...)
	}
	return flat, stats, nil
}

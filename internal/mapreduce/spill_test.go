package mapreduce_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"lash/internal/mapreduce"
)

// spillJob is a synthetic weighted-aggregation job with heavy key reuse so
// both map-side aggregation and the cross-run re-aggregation of the spill
// merge are exercised. Every reduce delivery is rendered into one string per
// entry, so the output captures group order, entry order, keys, and summed
// weights — everything the budgeted path must reproduce byte-identically.
func spillJob() mapreduce.AggJob[int, string] {
	return mapreduce.AggJob[int, string]{
		Name: "spill-diff",
		Map: func(item int, emit func(uint32, []byte, int64)) {
			rng := rand.New(rand.NewSource(int64(item)))
			var key [8]byte
			for i := 0; i < 40; i++ {
				group := uint32(rng.Intn(13))
				klen := 1 + rng.Intn(len(key))
				for j := 0; j < klen; j++ {
					key[j] = byte(rng.Intn(7)) // tiny alphabet → many duplicate keys
				}
				emit(group, key[:klen], int64(1+rng.Intn(3)))
			}
		},
		Hash: func(group uint32, _ []byte) uint32 { return mapreduce.HashUint32(group) },
		Reduce: func(group uint32, entries []mapreduce.Entry, emit func(string)) error {
			for _, e := range entries {
				emit(fmt.Sprintf("%d|%x|%d", group, e.Key, e.Weight))
			}
			return nil
		},
	}
}

func spillInput(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	return in
}

// TestSpillDifferential proves the budgeted path byte-identical to the
// in-memory path: same outputs in the same order, for budgets from
// "everything spills" to "almost nothing spills", across worker counts.
func TestSpillDifferential(t *testing.T) {
	input := spillInput(300)
	base := mapreduce.Config{Workers: 4, MapTasks: 8, ReduceTasks: 5}
	want, wantStats, err := mapreduce.RunAgg(context.Background(), base, input, spillJob())
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.SpillRuns != 0 || wantStats.SpillBytes != 0 {
		t.Fatalf("in-memory run reported spills: %+v", wantStats.Counters)
	}

	for _, budget := range []int64{1, 512, 16 << 10, 1 << 20} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("budget=%d/workers=%d", budget, workers), func(t *testing.T) {
				cfg := base
				cfg.Workers = workers
				cfg.MemoryBudget = budget
				cfg.SpillDir = t.TempDir()
				got, stats, err := mapreduce.RunAgg(context.Background(), cfg, input, spillJob())
				if err != nil {
					t.Fatal(err)
				}
				if stats.SpillRuns == 0 {
					t.Fatal("budgeted run wrote no spill runs")
				}
				if stats.SpillBytes == 0 || stats.SpillRecords == 0 {
					t.Fatalf("spill counters not accounted: %+v", stats.Counters)
				}
				if len(got) != len(want) {
					t.Fatalf("got %d outputs, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("output %d = %q, want %q", i, got[i], want[i])
					}
				}
				// The spill dir must already be empty again: the run removes
				// its private directory on the way out.
				assertEmptyDir(t, cfg.SpillDir)
			})
		}
	}
}

// TestSpillReduceDelivery checks the merge hands Reduce the same grouped,
// key-sorted, weight-summed entries the in-memory path does, via a reducer
// that asserts ordering invariants directly.
func TestSpillReduceDelivery(t *testing.T) {
	cfg := mapreduce.Config{Workers: 3, MapTasks: 5, ReduceTasks: 3, MemoryBudget: 256, SpillDir: t.TempDir()}
	job := spillJob()
	job.Reduce = func(group uint32, entries []mapreduce.Entry, emit func(string)) error {
		if len(entries) == 0 {
			return errors.New("empty entry batch")
		}
		for i := 1; i < len(entries); i++ {
			if string(entries[i-1].Key) >= string(entries[i].Key) {
				return fmt.Errorf("group %d: entries not strictly key-sorted: %x !< %x",
					group, entries[i-1].Key, entries[i].Key)
			}
		}
		emit(fmt.Sprintf("group %d: %d entries", group, len(entries)))
		return nil
	}
	if _, _, err := mapreduce.RunAgg(context.Background(), cfg, spillInput(100), job); err != nil {
		t.Fatal(err)
	}
}

// TestSpillCleanupOnCancel forces spilling, cancels mid-run, and asserts the
// run returns the context error with no temp files left behind.
func TestSpillCleanupOnCancel(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mapped atomic.Int64
	job := spillJob()
	inner := job.Map
	job.Map = func(item int, emit func(uint32, []byte, int64)) {
		// Let a few tasks spill, then cancel while map work is in flight.
		if mapped.Add(1) == 20 {
			cancel()
		}
		inner(item, emit)
	}
	cfg := mapreduce.Config{Workers: 4, MapTasks: 16, ReduceTasks: 4, MemoryBudget: 1, SpillDir: dir}
	_, _, err := mapreduce.RunAgg(ctx, cfg, spillInput(400), job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	assertEmptyDir(t, dir)
}

// TestSpillCleanupOnReduceError asserts a failing reducer still tears the
// spill directory down.
func TestSpillCleanupOnReduceError(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("synthetic reduce failure")
	job := spillJob()
	job.Reduce = func(uint32, []mapreduce.Entry, func(string)) error { return boom }
	cfg := mapreduce.Config{Workers: 2, MapTasks: 4, ReduceTasks: 3, MemoryBudget: 64, SpillDir: dir}
	_, _, err := mapreduce.RunAgg(context.Background(), cfg, spillInput(50), job)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	assertEmptyDir(t, dir)
}

// TestSpillEmptyInput: a budgeted run over nothing must not fail or leave
// droppings.
func TestSpillEmptyInput(t *testing.T) {
	dir := t.TempDir()
	cfg := mapreduce.Config{Workers: 2, MemoryBudget: 1024, SpillDir: dir}
	out, stats, err := mapreduce.RunAgg(context.Background(), cfg, nil, spillJob())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.SpillRuns != 0 {
		t.Fatalf("out=%v spills=%d", out, stats.SpillRuns)
	}
	assertEmptyDir(t, dir)
}

func assertEmptyDir(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphan temp entry %s", filepath.Join(dir, e.Name()))
	}
}

package baseline_test

import (
	"context"
	"testing"

	"lash/internal/baseline"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/paperex"
)

var mr = mapreduce.Config{Workers: 2, MapTasks: 2, ReduceTasks: 2}

func TestNaiveEmitsDistinctSubsequences(t *testing.T) {
	// One sequence: the naïve algorithm must emit |G_λ(T)| records — the
	// distinct generalized subsequences (§3.2). For T4 = b11 a e a with
	// γ=1, λ=3 the paper lists exactly 19.
	db := paperex.Database()
	one := &gsm.Database{Forest: db.Forest, Seqs: db.Seqs[3:4]} // T4
	res, err := baseline.MineNaive(context.Background(), one, baseline.Options{
		Params: gsm.Params{Sigma: 1, Gamma: 1, Lambda: 3},
		MR:     mr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs.Mine.MapOutputRecords != 19 {
		t.Fatalf("naive emitted %d records for T4, want 19 (|G3(T4)|)", res.Jobs.Mine.MapOutputRecords)
	}
	if len(res.Patterns) != 19 { // σ=1: everything is frequent
		t.Fatalf("naive mined %d patterns, want 19", len(res.Patterns))
	}
}

func TestSemiNaiveGeneralizesInfrequentItems(t *testing.T) {
	// §3.3: for T4 = b11 a e a (σ=2) the semi-naïve algorithm rewrites to
	// b1 a _ a and emits exactly aa, b1a, b1aa, Ba, Baa — 5 records.
	db := paperex.Database()
	res, err := baseline.MineSemiNaive(context.Background(), db, baseline.Options{Params: paperex.Params(), MR: mr})
	if err != nil {
		t.Fatal(err)
	}
	// Whole-database record count is harder to pin; check T4 alone against
	// the paper's worked example. The f-list must come from the full DB, so
	// re-run with a one-sequence database is not equivalent; instead verify
	// the total is far below the naïve count and the output matches.
	nv, err := baseline.MineNaive(context.Background(), db, baseline.Options{Params: paperex.Params(), MR: mr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs.Mine.MapOutputRecords >= nv.Jobs.Mine.MapOutputRecords {
		t.Fatalf("semi-naive records %d not below naive %d",
			res.Jobs.Mine.MapOutputRecords, nv.Jobs.Mine.MapOutputRecords)
	}
	if !gsm.EqualPatterns(res.Patterns, nv.Patterns) {
		t.Fatal("baselines disagree")
	}
}

func TestBaselineValidation(t *testing.T) {
	db := paperex.Database()
	bad := baseline.Options{Params: gsm.Params{Sigma: 0, Gamma: 0, Lambda: 3}, MR: mr}
	if _, err := baseline.MineNaive(context.Background(), db, bad); err == nil {
		t.Error("naive accepted invalid params")
	}
	if _, err := baseline.MineSemiNaive(context.Background(), db, bad); err == nil {
		t.Error("semi-naive accepted invalid params")
	}
	empty := &gsm.Database{}
	good := baseline.Options{Params: paperex.Params(), MR: mr}
	if _, err := baseline.MineNaive(context.Background(), empty, good); err == nil {
		t.Error("naive accepted nil forest")
	}
	if _, err := baseline.MineSemiNaive(context.Background(), empty, good); err == nil {
		t.Error("semi-naive accepted nil forest")
	}
}

func TestCountG1(t *testing.T) {
	db := paperex.Database()
	// |G1| per sequence: T1 {a,b1,B}=3, T2 {a,b3,B,c,b2}=5, T3 {a,c}=2,
	// T4 {b11,b1,B,a,e}=5, T5 {a,b12,b1,B,d1,D,c}=7, T6 {b13,b1,B,f,d2,D}=6.
	if got := baseline.CountG1(db); got != 3+5+2+5+7+6 {
		t.Fatalf("CountG1 = %d, want 28", got)
	}
}

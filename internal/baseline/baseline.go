// Package baseline implements the two distributed comparison algorithms of
// §3 of the LASH paper:
//
//   - Naïve (§3.2): "word counting" over G_λ(T) — every generalized
//     subsequence of every input sequence is emitted and counted. Its
//     intermediate data is exponential in λ and the hierarchy depth.
//   - Semi-naïve (§3.3): a generalized f-list is computed first; every item
//     is replaced by its closest frequent ancestor (or a blank), and only
//     blank-free subsequences are enumerated.
//
// Both support an emission cap standing in for the paper's 12-hour abort on
// NYT-CLP ("> 12 hrs" in Fig. 4a): runs exceeding MaxEmit return
// ErrEmitCapExceeded and are reported as DNF by the harness.
package baseline

import (
	"errors"
	"sync/atomic"

	"lash/internal/core"
	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/seqenc"
)

// ErrEmitCapExceeded reports that a run produced more intermediate records
// than Options.MaxEmit and was aborted.
var ErrEmitCapExceeded = errors.New("baseline: intermediate output exceeded MaxEmit; run aborted (DNF)")

// Options configures a baseline run.
type Options struct {
	Params gsm.Params
	MR     mapreduce.Config
	// MaxEmit caps the total number of emitted generalized subsequences
	// across all mappers (0 = unlimited).
	MaxEmit int64
}

// MineNaive runs the naïve algorithm.
func MineNaive(db *gsm.Database, opt Options) (*core.Result, error) {
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	var emitted atomic.Int64
	capped := opt.MaxEmit > 0

	type pat struct {
		key     string
		support int64
	}
	out, stats := mapreduce.Run(opt.MR, db.Seqs, mapreduce.Job[gsm.Sequence, string, int64, pat]{
		Name: "naive",
		Map: func(t gsm.Sequence, emit func(string, int64)) {
			gsm.EnumerateGenSubseqs(db.Forest, t, opt.Params.Gamma, 2, opt.Params.Lambda, nil,
				func(s gsm.Sequence) bool {
					if capped && emitted.Add(1) > opt.MaxEmit {
						return false
					}
					emit(string(seqenc.AppendVocabSeq(nil, s)), 1)
					return true
				})
		},
		Combine: func(a, b int64) int64 { return a + b },
		Hash:    mapreduce.HashString,
		Size:    func(k string, v int64) int { return len(k) + seqenc.UvarintLen(uint64(v)) },
		Reduce: func(k string, vs []int64, emit func(pat)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			if sum >= opt.Params.Sigma {
				emit(pat{k, sum})
			}
		},
	})
	if capped && emitted.Load() > opt.MaxEmit {
		return nil, ErrEmitCapExceeded
	}
	res := &core.Result{Jobs: core.JobStats{Mine: stats}}
	for _, p := range out {
		items, err := seqenc.DecodeVocabSeq(nil, []byte(p.key))
		if err != nil {
			return nil, err
		}
		res.Patterns = append(res.Patterns, gsm.Pattern{Items: items, Support: p.support})
	}
	gsm.SortPatterns(res.Patterns)
	return res, nil
}

// MineSemiNaive runs the semi-naïve algorithm: an f-list job, then the
// counting job over generalized sequences with frequent items only.
func MineSemiNaive(db *gsm.Database, opt Options) (*core.Result, error) {
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	fl, flStats, err := core.FListJob(db, opt.Params.Sigma, opt.MR)
	if err != nil {
		return nil, err
	}
	var emitted atomic.Int64
	capped := opt.MaxEmit > 0

	type pat struct {
		key     string // rank-space encoding — frequent items have small ids
		support int64
	}
	out, stats := mapreduce.Run(opt.MR, db.Seqs, mapreduce.Job[gsm.Sequence, string, int64, pat]{
		Name: "semi-naive",
		Map: func(t gsm.Sequence, emit func(string, int64)) {
			// Generalize each item to its closest frequent ancestor; items
			// without one become blanks (skipped positions that still
			// consume gap budget).
			ranks := make([]flist.Rank, len(t))
			gen := make(gsm.Sequence, len(t))
			for i, w := range t {
				r := fl.FrequentRank(w)
				ranks[i] = r
				if r != flist.NoRank {
					gen[i] = fl.VocabOf(r)
				}
			}
			accept := func(i int) bool { return ranks[i] != flist.NoRank }
			buf := make([]flist.Rank, 0, opt.Params.Lambda)
			gsm.EnumerateGenSubseqs(db.Forest, gen, opt.Params.Gamma, 2, opt.Params.Lambda, accept,
				func(s gsm.Sequence) bool {
					if capped && emitted.Add(1) > opt.MaxEmit {
						return false
					}
					buf = buf[:0]
					for _, w := range s {
						buf = append(buf, fl.RankOf(w))
					}
					emit(string(seqenc.AppendSeq(nil, buf)), 1)
					return true
				})
		},
		Combine: func(a, b int64) int64 { return a + b },
		Hash:    mapreduce.HashString,
		Size:    func(k string, v int64) int { return len(k) + seqenc.UvarintLen(uint64(v)) },
		Reduce: func(k string, vs []int64, emit func(pat)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			if sum >= opt.Params.Sigma {
				emit(pat{k, sum})
			}
		},
	})
	if capped && emitted.Load() > opt.MaxEmit {
		return nil, ErrEmitCapExceeded
	}
	res := &core.Result{Jobs: core.JobStats{FList: flStats, Mine: stats}, FList: fl}
	for _, p := range out {
		ranks, err := seqenc.DecodeSeq(nil, []byte(p.key))
		if err != nil {
			return nil, err
		}
		items, err := fl.TranslateFromRanks(nil, ranks)
		if err != nil {
			return nil, err
		}
		res.Patterns = append(res.Patterns, gsm.Pattern{Items: items, Support: p.support})
	}
	gsm.SortPatterns(res.Patterns)
	for r := 0; r < fl.NumFrequent(); r++ {
		res.FrequentItems = append(res.FrequentItems, gsm.Pattern{
			Items:   gsm.Sequence{fl.VocabOf(flist.Rank(r))},
			Support: fl.FreqOfRank(flist.Rank(r)),
		})
	}
	return res, nil
}

// CountG1 returns |G1(T)| summed over the database — the replication factor
// of the naïve partitioning discussion (§4). Exposed for experiments.
func CountG1(db *gsm.Database) int64 {
	var n int64
	for _, t := range db.Seqs {
		n += int64(len(gsm.ItemGeneralizations(db.Forest, t)))
	}
	return n
}

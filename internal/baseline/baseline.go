// Package baseline implements the two distributed comparison algorithms of
// §3 of the LASH paper:
//
//   - Naïve (§3.2): "word counting" over G_λ(T) — every generalized
//     subsequence of every input sequence is emitted and counted. Its
//     intermediate data is exponential in λ and the hierarchy depth.
//   - Semi-naïve (§3.3): a generalized f-list is computed first; every item
//     is replaced by its closest frequent ancestor (or a blank), and only
//     blank-free subsequences are enumerated.
//
// Both run on the aggregated-shuffle path of internal/mapreduce: the
// encoded subsequence is the byte key, counts are the weights, and the
// reducer keeps keys whose aggregated weight reaches σ.
//
// Both support an emission cap standing in for the paper's 12-hour abort on
// NYT-CLP ("> 12 hrs" in Fig. 4a): runs exceeding MaxEmit return
// ErrEmitCapExceeded and are reported as DNF by the harness.
package baseline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"lash/internal/core"
	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/seqenc"
)

// ErrEmitCapExceeded reports that a run produced more intermediate records
// than Options.MaxEmit and was aborted.
var ErrEmitCapExceeded = errors.New("baseline: intermediate output exceeded MaxEmit; run aborted (DNF)")

// Options configures a baseline run.
type Options struct {
	Params gsm.Params
	MR     mapreduce.Config
	// MaxEmit caps the total number of emitted generalized subsequences
	// across all mappers (0 = unlimited).
	MaxEmit int64
	// Stream, when non-nil, receives every frequent pattern (vocabulary
	// item space) as its reduce partition is aggregated, instead of the
	// pattern being collected into Result.Patterns. Calls are serialized;
	// order is partition-completion order. A non-nil error fails the run.
	Stream func(items gsm.Sequence, support int64) error
}

// MineNaive runs the naïve algorithm. Cancelling ctx aborts the run
// cooperatively and returns the wrapped ctx.Err().
func MineNaive(ctx context.Context, db *gsm.Database, opt Options) (*core.Result, error) {
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	var emitted atomic.Int64
	capped := opt.MaxEmit > 0
	encPool := sync.Pool{New: func() any { return new([]byte) }}
	var streamMu sync.Mutex

	type pat struct {
		items   gsm.Sequence
		support int64
	}
	out, stats, err := mapreduce.RunAgg(ctx, opt.MR, db.Seqs, mapreduce.AggJob[gsm.Sequence, pat]{
		Name: "naive",
		Map: func(t gsm.Sequence, emit func(uint32, []byte, int64)) {
			encp := encPool.Get().(*[]byte)
			defer encPool.Put(encp)
			gsm.EnumerateGenSubseqs(db.Forest, t, opt.Params.Gamma, 2, opt.Params.Lambda, nil,
				func(s gsm.Sequence) bool {
					if capped && emitted.Add(1) > opt.MaxEmit {
						return false
					}
					*encp = seqenc.AppendVocabSeq((*encp)[:0], s)
					// Each distinct subsequence is its own reduction unit;
					// group by the key's hash so partitions stay balanced.
					emit(mapreduce.HashBytes(*encp), *encp, 1)
					return true
				})
		},
		// Size: the default (keyLen + uvarint(weight)) is exactly this job's
		// wire format.
		Reduce: func(_ uint32, entries []mapreduce.Entry, emit func(pat)) error {
			for _, e := range entries {
				if e.Weight < opt.Params.Sigma {
					continue
				}
				items, err := seqenc.DecodeVocabSeq(nil, e.Key)
				if err != nil {
					return err
				}
				if opt.Stream != nil {
					// A tripped emission cap means the map side stopped
					// enumerating and aggregated supports may be silently
					// undercounted. Batch mode discards such output after
					// the run; streaming must not hand it to the consumer,
					// so fail before delivering anything further.
					if capped && emitted.Load() > opt.MaxEmit {
						return ErrEmitCapExceeded
					}
					streamMu.Lock()
					err = opt.Stream(items, e.Weight)
					streamMu.Unlock()
					if err != nil {
						return err
					}
					continue
				}
				emit(pat{items, e.Weight})
			}
			return nil
		},
		// Batch-mode Reduce only filters and decodes — safe to re-run for a
		// partition whose earlier attempt failed transiently. Streaming
		// delivery is not replayable, so it stays single-attempt.
		ReduceRetryable: opt.Stream == nil,
	})
	if err != nil {
		return nil, err
	}
	if capped && emitted.Load() > opt.MaxEmit {
		return nil, ErrEmitCapExceeded
	}
	res := &core.Result{Jobs: core.JobStats{Mine: stats}}
	for _, p := range out {
		res.Patterns = append(res.Patterns, gsm.Pattern{Items: p.items, Support: p.support})
	}
	gsm.SortPatterns(res.Patterns)
	return res, nil
}

// snScratch is the pooled per-map-call working set of the semi-naïve job.
type snScratch struct {
	ranks []flist.Rank
	gen   gsm.Sequence
	buf   []flist.Rank
	enc   []byte
}

// MineSemiNaive runs the semi-naïve algorithm: an f-list job, then the
// counting job over generalized sequences with frequent items only.
// Cancelling ctx aborts the run cooperatively and returns the wrapped
// ctx.Err().
func MineSemiNaive(ctx context.Context, db *gsm.Database, opt Options) (*core.Result, error) {
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	fl, flStats, err := core.FListJob(ctx, db, opt.Params.Sigma, opt.MR)
	if err != nil {
		return nil, err
	}
	var emitted atomic.Int64
	capped := opt.MaxEmit > 0
	scratch := sync.Pool{New: func() any { return new(snScratch) }}
	var streamMu sync.Mutex

	type pat struct {
		ranks   []flist.Rank // rank space — frequent items have small ids
		support int64
	}
	out, stats, err := mapreduce.RunAgg(ctx, opt.MR, db.Seqs, mapreduce.AggJob[gsm.Sequence, pat]{
		Name: "semi-naive",
		Map: func(t gsm.Sequence, emit func(uint32, []byte, int64)) {
			sc := scratch.Get().(*snScratch)
			defer scratch.Put(sc)
			// Generalize each item to its closest frequent ancestor; items
			// without one become blanks (skipped positions that still
			// consume gap budget).
			sc.ranks = sc.ranks[:0]
			sc.gen = sc.gen[:0]
			for _, w := range t {
				r := fl.FrequentRank(w)
				sc.ranks = append(sc.ranks, r)
				if r != flist.NoRank {
					sc.gen = append(sc.gen, fl.VocabOf(r))
				} else {
					sc.gen = append(sc.gen, 0)
				}
			}
			accept := func(i int) bool { return sc.ranks[i] != flist.NoRank }
			gsm.EnumerateGenSubseqs(db.Forest, sc.gen, opt.Params.Gamma, 2, opt.Params.Lambda, accept,
				func(s gsm.Sequence) bool {
					if capped && emitted.Add(1) > opt.MaxEmit {
						return false
					}
					sc.buf = sc.buf[:0]
					for _, w := range s {
						sc.buf = append(sc.buf, fl.RankOf(w))
					}
					sc.enc = seqenc.AppendSeq(sc.enc[:0], sc.buf)
					emit(mapreduce.HashBytes(sc.enc), sc.enc, 1)
					return true
				})
		},
		// Size: the default (keyLen + uvarint(weight)) is exactly this job's
		// wire format.
		Reduce: func(_ uint32, entries []mapreduce.Entry, emit func(pat)) error {
			for _, e := range entries {
				if e.Weight < opt.Params.Sigma {
					continue
				}
				ranks, err := seqenc.DecodeSeq(nil, e.Key)
				if err != nil {
					return err
				}
				if opt.Stream != nil {
					// See MineNaive: a tripped cap means possibly
					// undercounted supports — never stream those.
					if capped && emitted.Load() > opt.MaxEmit {
						return ErrEmitCapExceeded
					}
					items, err := fl.TranslateFromRanks(nil, ranks)
					if err != nil {
						return err
					}
					streamMu.Lock()
					err = opt.Stream(items, e.Weight)
					streamMu.Unlock()
					if err != nil {
						return err
					}
					continue
				}
				emit(pat{ranks, e.Weight})
			}
			return nil
		},
		// Batch-mode Reduce only filters and decodes — safe to re-run for a
		// partition whose earlier attempt failed transiently. Streaming
		// delivery is not replayable, so it stays single-attempt.
		ReduceRetryable: opt.Stream == nil,
	})
	if err != nil {
		return nil, err
	}
	if capped && emitted.Load() > opt.MaxEmit {
		return nil, ErrEmitCapExceeded
	}
	res := &core.Result{Jobs: core.JobStats{FList: flStats, Mine: stats}, FList: fl}
	for _, p := range out {
		items, err := fl.TranslateFromRanks(nil, p.ranks)
		if err != nil {
			return nil, err
		}
		res.Patterns = append(res.Patterns, gsm.Pattern{Items: items, Support: p.support})
	}
	gsm.SortPatterns(res.Patterns)
	for r := 0; r < fl.NumFrequent(); r++ {
		res.FrequentItems = append(res.FrequentItems, gsm.Pattern{
			Items:   gsm.Sequence{fl.VocabOf(flist.Rank(r))},
			Support: fl.FreqOfRank(flist.Rank(r)),
		})
	}
	return res, nil
}

// CountG1 returns |G1(T)| summed over the database — the replication factor
// of the naïve partitioning discussion (§4). Exposed for experiments.
func CountG1(db *gsm.Database) int64 {
	var n int64
	for _, t := range db.Seqs {
		n += int64(len(gsm.ItemGeneralizations(db.Forest, t)))
	}
	return n
}

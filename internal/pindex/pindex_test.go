package pindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lash/internal/hierarchy"
)

// testForest builds the small two-level hierarchy used across the tests:
//
//	FRUIT ← apple, pear
//	VEG   ← carrot
//	tool            (root leaf)
func testForest(t *testing.T) *hierarchy.Forest {
	t.Helper()
	b := hierarchy.NewBuilder()
	b.AddEdge("apple", "FRUIT")
	b.AddEdge("pear", "FRUIT")
	b.AddEdge("carrot", "VEG")
	b.Add("tool")
	f, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testPatterns() []Pattern {
	// Canonical order is whatever the miner emitted; supports deliberately
	// include ties so the serving tiebreak (canonical order) is exercised.
	return []Pattern{
		{Items: []string{"FRUIT"}, Support: 9},
		{Items: []string{"apple"}, Support: 5},
		{Items: []string{"pear"}, Support: 4},
		{Items: []string{"VEG"}, Support: 4},
		{Items: []string{"FRUIT", "VEG"}, Support: 3},
		{Items: []string{"apple", "VEG"}, Support: 2},
		{Items: []string{"apple", "carrot"}, Support: 2},
		{Items: []string{"tool"}, Support: 2},
		{Items: []string{"FRUIT", "carrot"}, Support: 2},
	}
}

func names(ix *Index, ids []uint32) [][]string {
	out := make([][]string, len(ids))
	for i, id := range ids {
		out[i] = ix.Items(id)
	}
	return out
}

func search(ix *Index, q Query) []uint32 {
	ids, _ := ix.Search(nil, q, 0, -1)
	return ids
}

func TestServingOrder(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	if ix.Len() != 9 {
		t.Fatalf("Len = %d, want 9", ix.Len())
	}
	got := names(ix, search(ix, Query{Level: NoLevel}))
	want := [][]string{
		{"FRUIT"},           // 9
		{"apple"},           // 5
		{"pear"},            // 4, canonical before VEG
		{"VEG"},             // 4
		{"FRUIT", "VEG"},    // 3
		{"apple", "VEG"},    // 2, canonical order among the 2-support ties
		{"apple", "carrot"}, // 2
		{"tool"},            // 2
		{"FRUIT", "carrot"}, // 2
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("serving order = %v, want %v", got, want)
	}
}

func TestTopKAndOffset(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	ids, total := ix.Search(nil, Query{Level: NoLevel}, 0, 3)
	if total != 9 || len(ids) != 3 {
		t.Fatalf("top 3: total=%d len=%d", total, len(ids))
	}
	if got := ix.Items(ids[0]); !reflect.DeepEqual(got, []string{"FRUIT"}) {
		t.Fatalf("top pattern = %v", got)
	}
	// Offset pagination must continue exactly where the previous page ended.
	page2, total2 := ix.Search(nil, Query{Level: NoLevel}, 3, 3)
	if total2 != 9 || len(page2) != 3 {
		t.Fatalf("page 2: total=%d len=%d", total2, len(page2))
	}
	all := search(ix, Query{Level: NoLevel})
	if !reflect.DeepEqual(page2, all[3:6]) {
		t.Fatalf("page 2 = %v, want %v", page2, all[3:6])
	}
	// Offset past the end yields an empty page but the true total.
	none, totalPast := ix.Search(nil, Query{Level: NoLevel}, 100, 5)
	if len(none) != 0 || totalPast != 9 {
		t.Fatalf("past-end page: len=%d total=%d", len(none), totalPast)
	}
}

func TestMinSupport(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	ids, total := ix.Search(nil, Query{MinSupport: 4, Level: NoLevel}, 0, -1)
	if total != 4 || len(ids) != 4 {
		t.Fatalf("min_support=4: total=%d len=%d", total, len(ids))
	}
	for _, id := range ids {
		if ix.Support(id) < 4 {
			t.Fatalf("pattern %v support %d < 4", ix.Items(id), ix.Support(id))
		}
	}
}

func TestContains(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	got := names(ix, search(ix, Query{Contains: []string{"VEG"}, Level: NoLevel}))
	want := [][]string{{"VEG"}, {"FRUIT", "VEG"}, {"apple", "VEG"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("contains=VEG: %v, want %v", got, want)
	}
	// Multi-item conjunction.
	got = names(ix, search(ix, Query{Contains: []string{"apple", "VEG"}, Level: NoLevel}))
	want = [][]string{{"apple", "VEG"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("contains=apple,VEG: %v, want %v", got, want)
	}
	// Unknown item matches nothing.
	if ids, total := ix.Search(nil, Query{Contains: []string{"nope"}, Level: NoLevel}, 0, -1); len(ids) != 0 || total != 0 {
		t.Fatalf("contains unknown item: len=%d total=%d", len(ids), total)
	}
}

func TestPrefix(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	got := names(ix, search(ix, Query{Prefix: []string{"apple"}, Level: NoLevel}))
	// Every pattern starting with "apple", in serving order.
	want := [][]string{{"apple"}, {"apple", "VEG"}, {"apple", "carrot"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("prefix=apple: %v, want %v", got, want)
	}
	got = names(ix, search(ix, Query{Prefix: []string{"FRUIT", "VEG"}, Level: NoLevel}))
	want = [][]string{{"FRUIT", "VEG"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("prefix=FRUIT,VEG: %v, want %v", got, want)
	}
	if ids, _ := ix.Search(nil, Query{Prefix: []string{"carrot", "apple"}, Level: NoLevel}, 0, -1); len(ids) != 0 {
		t.Fatalf("absent prefix matched %d patterns", len(ids))
	}
}

func TestLevel(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	if ix.MaxLevel() != 1 {
		t.Fatalf("MaxLevel = %d, want 1", ix.MaxLevel())
	}
	// Level 0 = fully generalized (every item a root).
	got := names(ix, search(ix, Query{Level: 0}))
	want := [][]string{{"FRUIT"}, {"VEG"}, {"FRUIT", "VEG"}, {"tool"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("level=0: %v, want %v", got, want)
	}
	// Level 1 = at least one leaf-level item.
	got = names(ix, search(ix, Query{Level: 1}))
	want = [][]string{{"apple"}, {"pear"}, {"apple", "VEG"}, {"apple", "carrot"}, {"FRUIT", "carrot"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("level=1: %v, want %v", got, want)
	}
	// A level beyond the index matches nothing.
	if ids, _ := ix.Search(nil, Query{Level: 7}, 0, -1); len(ids) != 0 {
		t.Fatalf("level=7 matched %d patterns", len(ids))
	}
}

func TestCombinedFilters(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	got := names(ix, search(ix, Query{Contains: []string{"VEG"}, MinSupport: 3, Level: 0}))
	want := [][]string{{"VEG"}, {"FRUIT", "VEG"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combined: %v, want %v", got, want)
	}
}

func TestLookupAndRollup(t *testing.T) {
	ix := Build(testPatterns(), testForest(t))
	id, ok := ix.Lookup([]string{"apple", "carrot"})
	if !ok {
		t.Fatal("Lookup(apple,carrot) missed")
	}
	if got := ix.Items(id); !reflect.DeepEqual(got, []string{"apple", "carrot"}) {
		t.Fatalf("Lookup returned %v", got)
	}
	if _, ok := ix.Lookup([]string{"carrot", "apple"}); ok {
		t.Fatal("Lookup matched a non-indexed ordering")
	}

	// apple,carrot → (generalize rightmost: carrot→VEG) apple,VEG →
	// (generalize rightmost non-root... VEG is root; apple→FRUIT) FRUIT,VEG.
	chain := ix.Rollup([]string{"apple", "carrot"})
	got := names(ix, chain)
	want := [][]string{{"apple", "carrot"}, {"apple", "VEG"}, {"FRUIT", "VEG"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rollup chain: %v, want %v", got, want)
	}
	// A fully generalized pattern rolls up to itself only.
	chain = ix.Rollup([]string{"FRUIT", "VEG"})
	if len(chain) != 1 {
		t.Fatalf("rollup of root pattern has %d entries", len(chain))
	}
	if ix.Rollup([]string{"nope"}) != nil {
		t.Fatal("rollup of unknown pattern should be nil")
	}
}

func TestEmptyAndFlat(t *testing.T) {
	ix := Build(nil, nil)
	if ix.Len() != 0 || ix.SizeBytes() < 0 {
		t.Fatalf("empty index: len=%d size=%d", ix.Len(), ix.SizeBytes())
	}
	if ids, total := ix.Search(nil, Query{Level: NoLevel}, 0, -1); len(ids) != 0 || total != 0 {
		t.Fatal("empty index matched patterns")
	}

	// nil forest: flat vocabulary, everything level 0, no rollups.
	flat := Build([]Pattern{{Items: []string{"a", "b"}, Support: 2}, {Items: []string{"a"}, Support: 3}}, nil)
	if flat.MaxLevel() != 0 {
		t.Fatalf("flat MaxLevel = %d", flat.MaxLevel())
	}
	if chain := flat.Rollup([]string{"a", "b"}); len(chain) != 1 {
		t.Fatalf("flat rollup chain len = %d", len(chain))
	}
}

func TestSizeBytesDeterministic(t *testing.T) {
	f := testForest(t)
	a := Build(testPatterns(), f)
	b := Build(testPatterns(), f)
	if a.SizeBytes() != b.SizeBytes() {
		t.Fatalf("SizeBytes not deterministic: %d vs %d", a.SizeBytes(), b.SizeBytes())
	}
	if a.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", a.SizeBytes())
	}
}

// buildLarge synthesizes n patterns over a sized vocabulary with collision-free
// sequences, supports drawn deterministically.
func buildLarge(n int) *Index {
	rng := rand.New(rand.NewSource(42))
	pats := make([]Pattern, 0, n)
	seen := make(map[string]bool, n)
	for len(pats) < n {
		l := 1 + rng.Intn(4)
		items := make([]string, l)
		for i := range items {
			items[i] = fmt.Sprintf("item%04d", rng.Intn(2000))
		}
		key := fmt.Sprint(items)
		if seen[key] {
			continue
		}
		seen[key] = true
		pats = append(pats, Pattern{Items: items, Support: int64(1 + rng.Intn(1000))})
	}
	// Canonical order: length, then lex — mirror gsm.SortPatterns closely
	// enough for index purposes (any deterministic order works).
	sort.Slice(pats, func(i, j int) bool {
		if len(pats[i].Items) != len(pats[j].Items) {
			return len(pats[i].Items) < len(pats[j].Items)
		}
		for k := range pats[i].Items {
			if pats[i].Items[k] != pats[j].Items[k] {
				return pats[i].Items[k] < pats[j].Items[k]
			}
		}
		return false
	})
	return Build(pats, nil)
}

// TestQueryAllocsBound is the regression test for the serving migration:
// on a 100k-pattern index, queries must run in O(log n + k) work with an
// allocation count independent of the index size. With a preallocated
// destination, a top-k/min-support walk allocates nothing at all, and a
// selective contains/prefix query allocates only its result-proportional
// scratch — a constant number of allocations, never O(n).
func TestQueryAllocsBound(t *testing.T) {
	ix := buildLarge(100_000)
	if ix.Len() != 100_000 {
		t.Fatalf("built %d patterns", ix.Len())
	}
	dst := make([]uint32, 0, 256)

	measure := func(name string, q Query, maxAllocs float64) {
		t.Helper()
		got := testing.AllocsPerRun(100, func() {
			dst = dst[:0]
			dst, _ = ix.Search(dst, q, 0, 100)
		})
		if got > maxAllocs {
			t.Errorf("%s: %v allocs/op, want <= %v", name, got, maxAllocs)
		}
	}

	// Permutation walks: zero allocations.
	measure("top-100", Query{Level: NoLevel}, 0)
	measure("min_support", Query{MinSupport: 500, Level: NoLevel}, 0)
	// List queries: one scratch slice bounded by the smallest term, plus the
	// intersection result — a handful of allocations regardless of n.
	measure("contains", Query{Contains: []string{"item0007"}, Level: NoLevel}, 4)
	measure("prefix", Query{Prefix: []string{"item0007"}, Level: NoLevel}, 6)
	measure("combined", Query{Contains: []string{"item0007"}, MinSupport: 100, Level: NoLevel}, 6)
}

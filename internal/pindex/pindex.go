// Package pindex is the serving tier's immutable pattern index: a compact,
// query-oriented layout built exactly once over a completed mining result
// and never mutated afterwards, so any number of concurrent readers can
// query it without locking and an LRU tier can account for it byte-exactly.
//
// # Layout contract
//
// Build interns every item that occurs in the pattern set into a dense
// private vocabulary and stores all patterns id-encoded in one arena with a
// per-pattern offset table — pattern i of the input keeps id i ("canonical
// id"), so the input's canonical mining order is recoverable for free. On
// top of the arena sit four derived, equally immutable tables:
//
//   - lex: the canonical ids sorted in prefix-lexicographic order of their
//     encoded item sequences. Every pattern set sharing a given item-sequence
//     prefix is one contiguous lex range, so prefix queries and exact
//     lookups are a binary search, never a scan.
//   - bySupport: the serving permutation — canonical ids ordered by support
//     descending, ties by canonical id ascending (the order GET /v1/patterns
//     has always served). rank[] is its inverse. top-k is a slice of this
//     permutation; a min-support filter is a prefix of it (supports are
//     non-increasing along it, so the cutoff is one binary search).
//   - postings: for each vocabulary item, the serving ranks (ascending) of
//     the patterns containing it. contains-item queries intersect postings
//     lists instead of scanning, and the intersection is born in serving
//     order because rank order is serving order.
//   - levels and parent: the hierarchy tables. A pattern's level is the
//     maximum hierarchy level of its items (0 = all items are roots, i.e.
//     fully generalized); levels[L] lists the ranks at level L. parent maps
//     each pattern to its canonical parent generalization — the pattern
//     obtained by generalizing the rightmost non-root item one hierarchy
//     step — when that pattern is itself in the index, making "roll up this
//     pattern" a pointer chase instead of a search.
//
// Everything is position-based and append-only at build time; after Build
// returns, the Index is never written again. SizeBytes accounts the layout
// deterministically, which is what lets the server's result cache budget
// bytes instead of entries.
package pindex

import (
	"slices"
	"sort"

	"lash/internal/hierarchy"
)

// Pattern is one mined pattern handed to Build, in the lash package's wire
// shape (item names plus support).
type Pattern struct {
	Items   []string
	Support int64
}

// noParent marks "no indexed parent generalization" in the parent table.
const noParent = int32(-1)

// noID marks "no such vocabulary item".
const noID = ^uint32(0)

// Index is the immutable pattern index. Build one with Build; all methods
// are safe for concurrent use because nothing is ever mutated.
type Index struct {
	// Private vocabulary over the items occurring in patterns.
	names  []string          // vocab id → item name
	byName map[string]uint32 // item name → vocab id
	level  []int32           // vocab id → hierarchy level (0 = root or unknown)
	up     []uint32          // vocab id → vocab id of hierarchy parent (noID if none indexed)

	// Pattern storage: canonical order, one arena.
	arena    []uint32 // all patterns' vocab ids, concatenated in canonical order
	offs     []uint32 // canonical id → arena offset (len n+1)
	supports []int64  // canonical id → support

	// Derived tables (see package doc).
	lex       []uint32   // lex position → canonical id, prefix-lex order
	bySupport []uint32   // serving rank → canonical id
	rank      []uint32   // canonical id → serving rank
	postings  [][]uint32 // vocab id → serving ranks, ascending
	levels    [][]uint32 // pattern level → serving ranks, ascending
	parent    []int32    // canonical id → canonical id of parent generalization

	size int64 // SizeBytes, computed once at build
}

// Build constructs the index over patterns, which must be in canonical
// mining order (lash.Result.Patterns order) — canonical ids are positions
// in this slice. f supplies the item hierarchy for the level and roll-up
// tables; a nil forest (or items absent from it) degrades gracefully to a
// flat vocabulary, never fails. Build does not retain patterns' slices.
func Build(patterns []Pattern, f *hierarchy.Forest) *Index {
	n := len(patterns)
	ix := &Index{
		byName:   make(map[string]uint32),
		offs:     make([]uint32, n+1),
		supports: make([]int64, n),
	}

	// Intern the vocabulary and encode every pattern into the arena.
	total := 0
	for _, p := range patterns {
		total += len(p.Items)
	}
	ix.arena = make([]uint32, 0, total)
	for i, p := range patterns {
		ix.offs[i] = uint32(len(ix.arena))
		ix.supports[i] = p.Support
		for _, name := range p.Items {
			ix.arena = append(ix.arena, ix.intern(name, f))
		}
	}
	ix.offs[n] = uint32(len(ix.arena))

	// Hierarchy parents resolve only after the whole vocabulary is known: a
	// parent item matters to the index only if it occurs in some pattern.
	ix.up = make([]uint32, len(ix.names))
	for id := range ix.names {
		ix.up[id] = noID
		if f == nil {
			continue
		}
		w, ok := f.Lookup(ix.names[id])
		if !ok || f.IsRoot(w) {
			continue
		}
		if p, ok := ix.byName[f.Name(f.Parent(w))]; ok {
			ix.up[id] = p
		}
	}

	// Lex table: canonical ids sorted by encoded item sequence.
	ix.lex = make([]uint32, n)
	for i := range ix.lex {
		ix.lex[i] = uint32(i)
	}
	slices.SortFunc(ix.lex, func(a, b uint32) int {
		return slices.Compare(ix.items(a), ix.items(b))
	})

	// Serving permutation: support descending, ties canonical-id ascending.
	ix.bySupport = make([]uint32, n)
	for i := range ix.bySupport {
		ix.bySupport[i] = uint32(i)
	}
	slices.SortFunc(ix.bySupport, func(a, b uint32) int {
		if ix.supports[a] != ix.supports[b] {
			if ix.supports[a] > ix.supports[b] {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
	ix.rank = make([]uint32, n)
	for r, id := range ix.bySupport {
		ix.rank[id] = uint32(r)
	}

	// Postings and level buckets, walked in rank order so every list is
	// born sorted by serving rank.
	ix.postings = make([][]uint32, len(ix.names))
	maxLevel := 0
	patLevel := make([]int32, n)
	for id := 0; id < n; id++ {
		lvl := int32(0)
		for _, w := range ix.items(uint32(id)) {
			if ix.level[w] > lvl {
				lvl = ix.level[w]
			}
		}
		patLevel[id] = lvl
		if int(lvl) > maxLevel {
			maxLevel = int(lvl)
		}
	}
	ix.levels = make([][]uint32, maxLevel+1)
	for r := 0; r < n; r++ {
		id := ix.bySupport[r]
		items := ix.items(id)
		for j, w := range items {
			if seenBefore(items[:j], w) {
				continue // one postings entry per pattern, even for repeats
			}
			ix.postings[w] = append(ix.postings[w], uint32(r))
		}
		lvl := patLevel[id]
		ix.levels[lvl] = append(ix.levels[lvl], uint32(r))
	}

	// Roll-up table: the canonical parent generalization, when indexed.
	ix.parent = make([]int32, n)
	scratch := make([]uint32, 0, 16)
	for id := 0; id < n; id++ {
		ix.parent[id] = noParent
		items := ix.items(uint32(id))
		// Rightmost item with an indexed hierarchy parent defines the
		// canonical one-step generalization.
		for j := len(items) - 1; j >= 0; j-- {
			if ix.up[items[j]] == noID {
				continue
			}
			scratch = append(scratch[:0], items...)
			scratch[j] = ix.up[items[j]]
			if pid, ok := ix.lookupIDs(scratch); ok {
				ix.parent[id] = int32(pid)
			}
			break
		}
	}

	ix.size = ix.computeSize()
	return ix
}

// intern returns the vocabulary id for name, interning it on first sight.
func (ix *Index) intern(name string, f *hierarchy.Forest) uint32 {
	if id, ok := ix.byName[name]; ok {
		return id
	}
	id := uint32(len(ix.names))
	ix.names = append(ix.names, name)
	lvl := int32(0)
	if f != nil {
		if w, ok := f.Lookup(name); ok {
			lvl = int32(f.Level(w))
		}
	}
	ix.level = append(ix.level, lvl)
	ix.byName[name] = id
	return id
}

func seenBefore(prefix []uint32, w uint32) bool {
	for _, u := range prefix {
		if u == w {
			return true
		}
	}
	return false
}

// items returns pattern id's encoded item sequence (a view into the arena;
// callers must not modify it).
func (ix *Index) items(id uint32) []uint32 {
	return ix.arena[ix.offs[id]:ix.offs[id+1]]
}

// Len returns the number of indexed patterns.
func (ix *Index) Len() int { return len(ix.supports) }

// Support returns pattern id's support.
func (ix *Index) Support(id uint32) int64 { return ix.supports[id] }

// NumItems returns the size of the index's private vocabulary.
func (ix *Index) NumItems() int { return len(ix.names) }

// AppendItems appends pattern id's item names to dst and returns the
// extended slice — the allocation-free rendering primitive.
func (ix *Index) AppendItems(dst []string, id uint32) []string {
	for _, w := range ix.items(id) {
		dst = append(dst, ix.names[w])
	}
	return dst
}

// Items returns pattern id's item names as a fresh slice.
func (ix *Index) Items(id uint32) []string {
	return ix.AppendItems(make([]string, 0, len(ix.items(id))), id)
}

// SizeBytes returns the deterministic byte accounting of the index's
// retained layout: every backing array at its element width, plus the
// vocabulary strings and an amortized per-entry charge for the name map.
// Two builds over equal inputs report equal sizes, which makes the value
// safe to use as a cache charging key.
func (ix *Index) SizeBytes() int64 { return ix.size }

func (ix *Index) computeSize() int64 {
	const (
		wordBytes     = 8  // slice headers are charged via their arrays only
		mapEntryBytes = 48 // amortized bucket + header share per map entry
	)
	size := int64(0)
	size += int64(len(ix.arena)+len(ix.offs)+len(ix.lex)+len(ix.bySupport)+len(ix.rank)) * 4
	size += int64(len(ix.supports)) * 8
	size += int64(len(ix.level)+len(ix.parent))*4 + int64(len(ix.up))*4
	for _, name := range ix.names {
		size += int64(len(name)) + wordBytes*2 // string bytes + header
		size += int64(len(name)) + mapEntryBytes
	}
	for _, pl := range ix.postings {
		size += int64(len(pl))*4 + wordBytes*3
	}
	for _, ll := range ix.levels {
		size += int64(len(ll))*4 + wordBytes*3
	}
	return size
}

// MaxLevel returns the largest pattern level in the index (0 for a flat
// vocabulary or an empty index).
func (ix *Index) MaxLevel() int {
	if len(ix.levels) == 0 {
		return 0
	}
	return len(ix.levels) - 1
}

// lookupIDs finds the canonical id of the pattern with exactly the encoded
// item sequence want, via binary search over the lex table.
func (ix *Index) lookupIDs(want []uint32) (uint32, bool) {
	lo := sort.Search(len(ix.lex), func(i int) bool {
		return slices.Compare(ix.items(ix.lex[i]), want) >= 0
	})
	if lo < len(ix.lex) && slices.Compare(ix.items(ix.lex[lo]), want) == 0 {
		return ix.lex[lo], true
	}
	return 0, false
}

// Lookup finds the canonical id of the pattern with exactly the given
// items, if indexed.
func (ix *Index) Lookup(items []string) (uint32, bool) {
	ids := make([]uint32, len(items))
	for i, name := range items {
		id, ok := ix.byName[name]
		if !ok {
			return 0, false
		}
		ids[i] = id
	}
	return ix.lookupIDs(ids)
}

// Rollup returns the roll-up chain of the pattern with the given items: the
// pattern itself followed by successive parent generalizations present in
// the index (each one hierarchy step more general than the last). An empty
// chain means the pattern itself is not indexed.
func (ix *Index) Rollup(items []string) []uint32 {
	id, ok := ix.Lookup(items)
	if !ok {
		return nil
	}
	chain := []uint32{id}
	for ix.parent[id] != noParent {
		id = uint32(ix.parent[id])
		chain = append(chain, id)
	}
	return chain
}

// Parent returns the canonical id of pattern id's parent generalization,
// if one is indexed.
func (ix *Index) Parent(id uint32) (uint32, bool) {
	if p := ix.parent[id]; p != noParent {
		return uint32(p), true
	}
	return 0, false
}

// Query selects patterns. The zero value matches everything. Filters
// compose conjunctively.
type Query struct {
	// MinSupport keeps patterns with at least this support (0 = all).
	MinSupport int64
	// Contains keeps patterns mentioning every listed item.
	Contains []string
	// Prefix keeps patterns whose item sequence starts with these items.
	Prefix []string
	// Level, when ≥ 0, keeps patterns whose level (max hierarchy level over
	// their items) equals it. -1 matches every level; the zero value
	// therefore does NOT mean "any" — build queries with NoLevel.
	Level int
}

// NoLevel is the Query.Level value that matches every level.
const NoLevel = -1

// Search appends to dst the canonical ids of up to limit matching patterns
// in serving order (support descending, ties in canonical mining order),
// skipping the first offset matches, and returns the extended slice plus
// the total match count. limit < 0 means "no limit". The only allocations
// are dst growth and, for queries with postings or lex-range terms, one
// scratch list proportional to the smallest term — never to Len().
func (ix *Index) Search(dst []uint32, q Query, offset, limit int) ([]uint32, int) {
	if limit < 0 {
		limit = len(ix.supports)
	}
	// cut is the serving-rank cutoff of the min-support filter: supports
	// are non-increasing along bySupport, so ranks [0, cut) qualify.
	cut := len(ix.bySupport)
	if q.MinSupport > 0 {
		cut = sort.Search(len(ix.bySupport), func(r int) bool {
			return ix.supports[ix.bySupport[r]] < q.MinSupport
		})
	}

	lists, ok := ix.gatherLists(q)
	if !ok {
		return dst, 0 // a term referenced an unknown item: nothing matches
	}
	if lists == nil {
		// Pure permutation walk: the matches are exactly ranks [0, cut).
		total := cut
		for r := offset; r < cut && limit > 0; r++ {
			dst = append(dst, ix.bySupport[r])
			limit--
		}
		return dst, total
	}

	matches := intersectLists(lists)
	// Apply the min-support cutoff: ranks are ascending, qualifying ranks
	// are < cut, so the qualifying matches are a prefix.
	end := sort.Search(len(matches), func(i int) bool { return int(matches[i]) >= cut })
	matches = matches[:end]
	total := len(matches)
	for i := offset; i < len(matches) && limit > 0; i++ {
		dst = append(dst, ix.bySupport[matches[i]])
		limit--
	}
	return dst, total
}

// gatherLists collects the rank lists of every postings/prefix/level term
// of q. A nil result with ok=true means q has no such term; ok=false means
// a term cannot match anything.
func (ix *Index) gatherLists(q Query) ([][]uint32, bool) {
	var lists [][]uint32
	for _, name := range q.Contains {
		id, ok := ix.byName[name]
		if !ok {
			return nil, false
		}
		lists = append(lists, ix.postings[id])
	}
	if q.Level >= 0 {
		if q.Level >= len(ix.levels) {
			return nil, false
		}
		lists = append(lists, ix.levels[q.Level])
	}
	if len(q.Prefix) > 0 {
		ranks, ok := ix.prefixRanks(q.Prefix)
		if !ok {
			return nil, false
		}
		lists = append(lists, ranks)
	}
	return lists, true
}

// prefixRanks resolves a prefix term to its serving ranks (ascending): the
// lex range sharing the prefix, mapped through rank and sorted. Costs
// O(R log R) for a range of R patterns — proportional to the term's
// selectivity, never to Len().
func (ix *Index) prefixRanks(prefix []string) ([]uint32, bool) {
	want := make([]uint32, len(prefix))
	for i, name := range prefix {
		id, ok := ix.byName[name]
		if !ok {
			return nil, false
		}
		want[i] = id
	}
	cmpPrefix := func(id uint32) int {
		items := ix.items(id)
		if len(items) > len(want) {
			items = items[:len(want)]
		}
		return slices.Compare(items, want)
	}
	lo := sort.Search(len(ix.lex), func(i int) bool { return cmpPrefix(ix.lex[i]) >= 0 })
	hi := lo + sort.Search(len(ix.lex)-lo, func(i int) bool { return cmpPrefix(ix.lex[lo+i]) > 0 })
	if lo == hi {
		return nil, false
	}
	ranks := make([]uint32, 0, hi-lo)
	for _, id := range ix.lex[lo:hi] {
		ranks = append(ranks, ix.rank[id])
	}
	slices.Sort(ranks)
	return ranks, true
}

// intersectLists intersects rank lists (each ascending) into one ascending
// list. The scratch result is bounded by the smallest input.
func intersectLists(lists [][]uint32) []uint32 {
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	out := make([]uint32, 0, len(lists[smallest]))
	for _, r := range lists[smallest] {
		inAll := true
		for i, l := range lists {
			if i == smallest {
				continue
			}
			// Galloping membership probe; lists are sorted ascending.
			j := sort.Search(len(l), func(k int) bool { return l[k] >= r })
			if j == len(l) || l[j] != r {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, r)
		}
	}
	return out
}

package miner_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/miner"
	"lash/internal/paperex"
	"lash/internal/rewrite"
)

var allKinds = []miner.Kind{miner.KindPSM, miner.KindPSMNoIndex, miner.KindBFS, miner.KindDFS}

// paperPartition builds partition P_w of the running example (σ=2, γ=1, λ=3)
// through the real rewrite path, with duplicate aggregation (§4.4).
func paperPartition(t testing.TB, pivotName string) (*miner.Partition, *flist.FList) {
	t.Helper()
	db := paperex.Database()
	fl, err := flist.BuildFromDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := fl.Forest().Lookup(pivotName)
	if !ok {
		t.Fatalf("unknown pivot %q", pivotName)
	}
	pivot := fl.RankOf(w)
	rw := rewrite.NewRewriter(fl, 1, 3)
	agg := make(map[string]int64)
	var order []string
	for _, seq := range db.Seqs {
		out := rw.Rewrite(nil, seq, pivot)
		if out == nil {
			continue
		}
		k := rankKey(out)
		if _, dup := agg[k]; !dup {
			order = append(order, k)
		}
		agg[k]++
	}
	p := &miner.Partition{Pivot: pivot, Parent: fl.ParentTable()}
	for _, k := range order {
		p.Seqs = append(p.Seqs, miner.WSeq{Items: ranksFromKey(k), Weight: agg[k]})
	}
	return p, fl
}

func rankKey(rs []flist.Rank) string {
	b := make([]byte, 0, 4*len(rs))
	for _, r := range rs {
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

func ranksFromKey(k string) []flist.Rank {
	rs := make([]flist.Rank, len(k)/4)
	for i := range rs {
		rs[i] = flist.Rank(k[4*i]) | flist.Rank(k[4*i+1])<<8 |
			flist.Rank(k[4*i+2])<<16 | flist.Rank(k[4*i+3])<<24
	}
	return rs
}

func patStr(fl *flist.FList, s []flist.Rank) string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = fl.Forest().Name(fl.VocabOf(r))
	}
	return strings.Join(parts, " ")
}

// Golden: every miner reproduces Fig. 2's per-partition mining output.
func TestPaperPartitionsAllMiners(t *testing.T) {
	want := map[string]map[string]int64{
		"a":  {"a a": 2},
		"B":  {"a B": 3, "B a": 2},
		"b1": {"a b1": 2, "b1 a": 2},
		"c":  {"B c": 2, "a c": 2, "a B c": 2},
		"D":  {"b1 D": 2, "B D": 2},
	}
	cfg := miner.Config{Sigma: 2, Gamma: 1, Lambda: 3, PivotOnly: true}
	for pivotName, wantPats := range want {
		p, fl := paperPartition(t, pivotName)
		for _, kind := range allKinds {
			got, stats := miner.CollectPatterns(miner.New(kind), p, cfg)
			if len(got) != len(wantPats) {
				var names []string
				for _, g := range got {
					names = append(names, patStr(fl, g.Items))
				}
				t.Fatalf("%s on P_%s: got %d patterns %v, want %d", kind, pivotName, len(got), names, len(wantPats))
			}
			for _, g := range got {
				name := patStr(fl, g.Items)
				if wantPats[name] != g.Weight {
					t.Errorf("%s on P_%s: %q support %d, want %d", kind, pivotName, name, g.Weight, wantPats[name])
				}
			}
			if stats.Output != int64(len(wantPats)) {
				t.Errorf("%s on P_%s: Output = %d, want %d", kind, pivotName, stats.Output, len(wantPats))
			}
			if stats.Explored < stats.Output {
				t.Errorf("%s on P_%s: Explored %d < Output %d", kind, pivotName, stats.Explored, stats.Output)
			}
		}
	}
}

// Without the pivot filter, BFS and DFS also produce locally frequent
// non-pivot sequences (§5.1 "Overhead") — e.g. aB in partition P_c.
func TestPivotOnlyFilter(t *testing.T) {
	p, fl := paperPartition(t, "c")
	cfg := miner.Config{Sigma: 2, Gamma: 1, Lambda: 3, PivotOnly: false}
	for _, kind := range []miner.Kind{miner.KindBFS, miner.KindDFS} {
		got, _ := miner.CollectPatterns(miner.New(kind), p, cfg)
		found := false
		for _, g := range got {
			if patStr(fl, g.Items) == "a B" {
				found = true
				if g.Weight != 2 {
					t.Errorf("%s: aB support %d, want 2", kind, g.Weight)
				}
			}
		}
		if !found {
			t.Errorf("%s: non-pivot sequence aB not mined with PivotOnly=false", kind)
		}
	}
}

// --- randomized cross-validation ----------------------------------------

// randPartition builds a random rank-space partition: a random parent table
// (parent rank < child rank), a pivot, and sequences whose items are ≤ pivot
// with occasional blanks, with random weights.
func randPartition(r *rand.Rand) *miner.Partition {
	nRanks := 2 + r.Intn(6)
	parent := make([]flist.Rank, nRanks)
	for i := range parent {
		if i == 0 || r.Intn(2) == 0 {
			parent[i] = flist.NoRank
		} else {
			parent[i] = flist.Rank(r.Intn(i))
		}
	}
	pivot := flist.Rank(1 + r.Intn(nRanks-1))
	p := &miner.Partition{Pivot: pivot, Parent: parent}
	for i, k := 0, 1+r.Intn(6); i < k; i++ {
		l := 2 + r.Intn(7)
		items := make([]flist.Rank, l)
		for j := range items {
			if r.Intn(6) == 0 {
				items[j] = flist.NoRank
			} else {
				items[j] = flist.Rank(r.Intn(int(pivot) + 1))
			}
		}
		p.Seqs = append(p.Seqs, miner.WSeq{Items: items, Weight: 1 + int64(r.Intn(3))})
	}
	return p
}

// bruteMine is an independent rank-space reference: enumerate the distinct
// generalized subsequences of every sequence (via the parent table) and
// count weighted document frequency.
func bruteMine(p *miner.Partition, cfg miner.Config) map[string]int64 {
	counts := make(map[string]int64)
	for _, ws := range p.Seqs {
		seen := make(map[string]bool)
		var cur []flist.Rank
		var rec func(last int)
		selfAnc := func(r flist.Rank) []flist.Rank {
			var out []flist.Rank
			for r != flist.NoRank {
				out = append(out, r)
				if int(r) >= len(p.Parent) {
					break
				}
				r = p.Parent[r]
			}
			return out
		}
		rec = func(last int) {
			if len(cur) >= 2 {
				seen[rankKey(cur)] = true
			}
			if len(cur) == cfg.Lambda {
				return
			}
			hi := last + 1 + cfg.Gamma
			if hi >= len(ws.Items) {
				hi = len(ws.Items) - 1
			}
			for j := last + 1; j <= hi; j++ {
				if ws.Items[j] == flist.NoRank {
					continue
				}
				for _, a := range selfAnc(ws.Items[j]) {
					cur = append(cur, a)
					rec(j)
					cur = cur[:len(cur)-1]
				}
			}
		}
		for i := range ws.Items {
			if ws.Items[i] == flist.NoRank {
				continue
			}
			for _, a := range selfAnc(ws.Items[i]) {
				cur = append(cur[:0], a)
				rec(i)
			}
		}
		for k := range seen {
			counts[k] += ws.Weight
		}
	}
	out := make(map[string]int64)
	for k, n := range counts {
		if n < cfg.Sigma {
			continue
		}
		if cfg.PivotOnly && !miner.ContainsPivot(ranksFromKey(k), p.Pivot) {
			continue
		}
		out[k] = n
	}
	return out
}

func minerOutputMap(m miner.Miner, p *miner.Partition, cfg miner.Config) (map[string]int64, miner.Stats) {
	out := make(map[string]int64)
	stats := m.Mine(p, cfg, nil, func(pat []flist.Rank, sup int64) {
		out[rankKey(pat)] = sup
	})
	return out, stats
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Property: all four miners agree with the brute-force reference on random
// partitions, in pivot-only mode.
func TestQuickMinersMatchBrute(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPartition(r)
		cfg := miner.Config{
			Sigma:     1 + int64(r.Intn(4)),
			Gamma:     r.Intn(3),
			Lambda:    2 + r.Intn(3),
			PivotOnly: true,
		}
		want := bruteMine(p, cfg)
		for _, kind := range allKinds {
			got, _ := minerOutputMap(miner.New(kind), p, cfg)
			if !mapsEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS and DFS agree with brute force when mining everything
// (PivotOnly = false) — the whole-database mode.
func TestQuickFullMiningMatchesBrute(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPartition(r)
		cfg := miner.Config{
			Sigma:  1 + int64(r.Intn(4)),
			Gamma:  r.Intn(3),
			Lambda: 2 + r.Intn(3),
		}
		want := bruteMine(p, cfg)
		for _, kind := range []miner.Kind{miner.KindBFS, miner.KindDFS} {
			got, _ := minerOutputMap(miner.New(kind), p, cfg)
			if !mapsEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the right-expansion index never changes PSM's output and never
// increases the explored count (Fig. 4d).
func TestQuickIndexPrunesSafely(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPartition(r)
		cfg := miner.Config{
			Sigma:     1 + int64(r.Intn(3)),
			Gamma:     r.Intn(3),
			Lambda:    2 + r.Intn(4),
			PivotOnly: true,
		}
		plain, sPlain := minerOutputMap(miner.New(miner.KindPSMNoIndex), p, cfg)
		idx, sIdx := minerOutputMap(miner.New(miner.KindPSM), p, cfg)
		return mapsEqual(plain, idx) && sIdx.Explored <= sPlain.Explored
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(107))}); err != nil {
		t.Fatal(err)
	}
}

// With σ=1 every candidate is frequent, so explored counts reduce to the
// sizes of the search spaces: PSM must explore no more than DFS (§5.2
// analysis).
func TestQuickPSMSearchSpaceSmaller(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPartition(r)
		cfg := miner.Config{Sigma: 1, Gamma: r.Intn(2), Lambda: 2 + r.Intn(3), PivotOnly: true}
		_, sPSM := minerOutputMap(miner.New(miner.KindPSMNoIndex), p, cfg)
		_, sDFS := minerOutputMap(miner.New(miner.KindDFS), p, cfg)
		return sPSM.Explored <= sDFS.Explored
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(109))}); err != nil {
		t.Fatal(err)
	}
}

// Weighted duplicate aggregation must contribute full weights to supports.
func TestWeightedSupport(t *testing.T) {
	// Partition with pivot 1, flat hierarchy: "0 1" x5 aggregated + "1 0" x1.
	p := &miner.Partition{
		Pivot:  1,
		Parent: []flist.Rank{flist.NoRank, flist.NoRank},
		Seqs: []miner.WSeq{
			{Items: []flist.Rank{0, 1}, Weight: 5},
			{Items: []flist.Rank{1, 0}, Weight: 1},
		},
	}
	cfg := miner.Config{Sigma: 5, Gamma: 0, Lambda: 2, PivotOnly: true}
	for _, kind := range allKinds {
		got, _ := minerOutputMap(miner.New(kind), p, cfg)
		if len(got) != 1 || got[rankKey([]flist.Rank{0, 1})] != 5 {
			t.Errorf("%s: weighted support wrong: %v", kind, got)
		}
	}
}

// λ bounds the pattern length; γ=0 requires adjacency.
func TestConstraintEdges(t *testing.T) {
	p := &miner.Partition{
		Pivot:  1,
		Parent: []flist.Rank{flist.NoRank, flist.NoRank},
		Seqs: []miner.WSeq{
			{Items: []flist.Rank{0, 1, 0, 1, 0}, Weight: 1},
		},
	}
	for _, kind := range allKinds {
		cfg := miner.Config{Sigma: 1, Gamma: 0, Lambda: 3, PivotOnly: true}
		got, _ := minerOutputMap(miner.New(kind), p, cfg)
		for k := range got {
			if n := len(ranksFromKey(k)); n > 3 || n < 2 {
				t.Errorf("%s: pattern length %d outside [2,3]", kind, n)
			}
		}
		// γ=0: "0 1 0" occurs (adjacent); "1 1" must not (needs gap 1).
		if _, ok := got[rankKey([]flist.Rank{0, 1, 0})]; !ok {
			t.Errorf("%s: missing adjacent pattern 0 1 0", kind)
		}
		if _, ok := got[rankKey([]flist.Rank{1, 1})]; ok {
			t.Errorf("%s: gap-violating pattern 1 1 mined at γ=0", kind)
		}
	}
}

// Blanks are placeholders: they match nothing but still consume gap budget.
func TestBlankSemantics(t *testing.T) {
	p := &miner.Partition{
		Pivot:  1,
		Parent: []flist.Rank{flist.NoRank, flist.NoRank},
		Seqs: []miner.WSeq{
			{Items: []flist.Rank{1, flist.NoRank, 0}, Weight: 1},
		},
	}
	// γ=0: 1 and 0 are 2 apart → no pattern. γ=1: "1 0" appears.
	for _, kind := range allKinds {
		got0, _ := minerOutputMap(miner.New(kind), p, miner.Config{Sigma: 1, Gamma: 0, Lambda: 2, PivotOnly: true})
		if len(got0) != 0 {
			t.Errorf("%s: blank did not consume gap budget: %v", kind, got0)
		}
		got1, _ := minerOutputMap(miner.New(kind), p, miner.Config{Sigma: 1, Gamma: 1, Lambda: 2, PivotOnly: true})
		if len(got1) != 1 || got1[rankKey([]flist.Rank{1, 0})] != 1 {
			t.Errorf("%s: pattern across blank missing: %v", kind, got1)
		}
	}
}

// An empty partition or a partition without pivot occurrences mines nothing.
func TestEmptyPartitions(t *testing.T) {
	for _, kind := range allKinds {
		empty := &miner.Partition{Pivot: 0, Parent: []flist.Rank{flist.NoRank}}
		if got, _ := minerOutputMap(miner.New(kind), empty, miner.Config{Sigma: 1, Gamma: 1, Lambda: 3, PivotOnly: true}); len(got) != 0 {
			t.Errorf("%s: mined from empty partition", kind)
		}
	}
	noPivot := &miner.Partition{
		Pivot:  1,
		Parent: []flist.Rank{flist.NoRank, flist.NoRank},
		Seqs:   []miner.WSeq{{Items: []flist.Rank{0, 0}, Weight: 1}},
	}
	got, _ := minerOutputMap(miner.New(miner.KindPSM), noPivot, miner.Config{Sigma: 1, Gamma: 1, Lambda: 3, PivotOnly: true})
	if len(got) != 0 {
		t.Errorf("PSM mined pivot sequences without pivot occurrences: %v", got)
	}
}

// Mining the paper's database as one whole partition (items pre-generalized
// to their closest frequent ancestor) with PivotOnly=false reproduces the
// paper's full expected output — a second, independent path to the golden
// result of §2.
func TestWholeDatabaseMining(t *testing.T) {
	db := paperex.Database()
	fl, err := flist.BuildFromDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := &miner.Partition{Pivot: flist.NoRank, Parent: fl.ParentTable()}
	for _, seq := range db.Seqs {
		items := make([]flist.Rank, len(seq))
		for i, w := range seq {
			items[i] = fl.FrequentRank(w)
		}
		p.Seqs = append(p.Seqs, miner.WSeq{Items: items, Weight: 1})
	}
	cfg := miner.Config{Sigma: 2, Gamma: 1, Lambda: 3, PivotOnly: false}
	want := paperex.Expected(db.Forest)
	for _, kind := range []miner.Kind{miner.KindBFS, miner.KindDFS} {
		got, _ := minerOutputMap(miner.New(kind), p, cfg)
		if len(got) != len(want) {
			t.Fatalf("%s whole-DB: %d patterns, want %d", kind, len(got), len(want))
		}
		for _, wp := range want {
			ranks := make([]flist.Rank, len(wp.Items))
			for i, w := range wp.Items {
				ranks[i] = fl.RankOf(w)
			}
			if got[rankKey(ranks)] != wp.Support {
				t.Errorf("%s whole-DB: %s = %d, want %d", kind,
					gsm.String(db.Forest, wp.Items), got[rankKey(ranks)], wp.Support)
			}
		}
	}
}

package miner

import (
	"slices"

	"lash/internal/flist"
)

// BFS is a hierarchy-aware adaptation of SPADE (§5.1 of the paper). It keeps
// a vertical representation of the partition: posting lists mapping each
// pattern to the sequences it occurs in together with the occurrence end
// positions. Length-2 patterns are seeded by scanning G2(T) for every
// sequence T (this is the hierarchy-aware step); longer candidates are
// generated GSP-style — candidate S·a requires both its length-l prefix and
// suffix to be frequent — and counted with a gap-constrained temporal join
// of posting(S) with the single-item posting of a.
//
// Patterns are interned into a per-level rank-slice table (ids assigned in
// generation order, postings flattened); the per-occurrence string keys of
// the original formulation are gone — the only remaining per-pattern
// allocation is the interning key itself, paid once per distinct pattern.
// Each level emits its frequent patterns in rank-lexicographic order.
type BFS struct{}

// bfsScratch is the reusable BFS state inside Scratch.
type bfsScratch struct {
	items      postTable // hierarchy-aware single-item postings
	f1         []flist.Rank
	f1set      []bool
	cur        bfsLevel
	next       bfsLevel
	keyBuf     []byte
	seedPrefix [1]flist.Rank
	joinBuf    bfsPosting
	emitIDs    []int32
}

// bfsLevel interns the candidate patterns of one level: pattern id i has
// ranks pats[i*l:(i+1)*l] and flattened posting posts[i].
type bfsLevel struct {
	l     int
	n     int
	pats  []flist.Rank
	ids   map[string]int32
	posts []bfsPosting
}

func (lv *bfsLevel) reset(l int) {
	lv.l = l
	lv.n = 0
	lv.pats = lv.pats[:0]
	if lv.ids == nil {
		lv.ids = make(map[string]int32)
	} else {
		clear(lv.ids)
	}
}

func (lv *bfsLevel) pat(id int32) []flist.Rank {
	return lv.pats[int(id)*lv.l : (int(id)+1)*lv.l]
}

// lookup resolves an interned pattern by its key bytes without allocating.
func (lv *bfsLevel) lookup(key []byte) (int32, bool) {
	id, ok := lv.ids[string(key)]
	return id, ok
}

// getOrAdd interns the pattern encoded in key (ranks pat·last), resetting
// the posting row of a newly created id.
func (lv *bfsLevel) getOrAdd(key []byte, pat []flist.Rank, last flist.Rank) int32 {
	if id, ok := lv.ids[string(key)]; ok {
		return id
	}
	id := int32(lv.n)
	lv.ids[string(key)] = id
	lv.pats = append(lv.pats, pat...)
	lv.pats = append(lv.pats, last)
	if lv.n == len(lv.posts) {
		lv.posts = append(lv.posts, bfsPosting{})
	}
	p := &lv.posts[lv.n]
	p.support = 0
	p.tids = p.tids[:0]
	p.offs = p.offs[:0]
	p.ends = p.ends[:0]
	lv.n++
	return id
}

// bfsPosting is a flattened vertical posting list (see postList); offs
// carries the closing sentinel once the posting is sealed.
type bfsPosting struct {
	support int64
	tids    []int32
	offs    []int32
	ends    []int32
}

func (p *bfsPosting) add(tid int32, w int64, q int32) {
	if n := len(p.tids); n == 0 || p.tids[n-1] != tid {
		p.tids = append(p.tids, tid)
		p.offs = append(p.offs, int32(len(p.ends)))
		p.support += w
	}
	p.ends = append(p.ends, q)
}

// appendRankKey appends the 4-byte interning key of a rank.
func appendRankKey(b []byte, r flist.Rank) []byte {
	return append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
}

// Mine implements Miner.
func (BFS) Mine(p *Partition, cfg Config, sc *Scratch, emit Emit) Stats {
	if sc == nil {
		sc = NewScratch()
	}
	//lashvet:ignore emitgo bfsRun is call-scoped traversal state; Mine returns before the struct is released and emit never crosses a goroutine
	b := &bfsRun{p: p, cfg: cfg, emit: emit, bound: cfg.bound(p), sc: sc, n: maxRankPlus1(p)}
	b.run()
	cfg.record(b.stats)
	return b.stats
}

type bfsRun struct {
	p     *Partition
	cfg   Config
	emit  Emit
	stats Stats
	bound flist.Rank
	sc    *Scratch
	n     int // dense table size (1 + max rank in the partition)
}

func (b *bfsRun) run() {
	bs := &b.sc.bfs
	items := b.itemPostings()
	// Frequent single items, in rank order.
	bs.f1 = bs.f1[:0]
	if len(bs.f1set) < b.n {
		bs.f1set = append(bs.f1set, make([]bool, b.n-len(bs.f1set))...)
	}
	clear(bs.f1set[:b.n])
	for _, a := range items {
		b.stats.Explored++
		if bs.items.rows[a].support >= b.cfg.Sigma {
			bs.f1 = append(bs.f1, a)
			bs.f1set[a] = true
		}
	}
	if b.cfg.Lambda < 2 || len(bs.f1) == 0 {
		return
	}

	// Level 2: seed postings from G2(T) scans.
	level := &bs.cur
	b.seedLevel2(level)
	b.emitLevel(level)

	// Levels 3..λ: GSP-style candidate generation + temporal joins.
	next := &bs.next
	for l := 3; l <= b.cfg.Lambda && level.n > 0; l++ {
		next.reset(l)
		for id := int32(0); int(id) < level.n; id++ {
			pl := &level.posts[id]
			if pl.support < b.cfg.Sigma {
				continue
			}
			prefix := level.pat(id)
			for _, a := range bs.f1 {
				// Apriori: the suffix extended by a must be frequent.
				key := appendRanksKey(bs.keyBuf[:0], prefix[1:])
				key = appendRankKey(key, a)
				bs.keyBuf = key
				sid, ok := level.lookup(key)
				if !ok || level.posts[sid].support < b.cfg.Sigma {
					continue
				}
				b.join(pl, bs.items.rows[a].list(), &bs.joinBuf)
				b.stats.Explored++
				if bs.joinBuf.support >= b.cfg.Sigma {
					key = appendRanksKey(bs.keyBuf[:0], prefix)
					key = appendRankKey(key, a)
					bs.keyBuf = key
					nid := next.getOrAdd(key, prefix, a)
					next.posts[nid], bs.joinBuf = bs.joinBuf, next.posts[nid]
				}
			}
		}
		level, next = next, level
		b.emitLevel(level)
	}
}

func appendRanksKey(b []byte, rs []flist.Rank) []byte {
	for _, r := range rs {
		b = appendRankKey(b, r)
	}
	return b
}

// itemPostings builds the vertical single-item index, hierarchy-aware: the
// posting of item a holds every position where a or a descendant occurs.
// It returns the occurring ranks ascending; postings stay valid (and are
// joined against) for the whole run.
func (b *bfsRun) itemPostings() []flist.Rank {
	t := &b.sc.bfs.items
	t.begin(b.n)
	for tid, ws := range b.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			b.sc.anc = b.p.SelfAnc(b.sc.anc[:0], r)
			for _, a := range b.sc.anc {
				if a > b.bound {
					continue
				}
				t.add(a, int32(tid), ws.Weight, int32(pos), true)
			}
		}
	}
	return t.finish()
}

// seedLevel2 scans each sequence for G2(T): all generalized 2-subsequences
// within the gap constraint whose items are locally frequent.
func (b *bfsRun) seedLevel2(lv *bfsLevel) {
	bs := &b.sc.bfs
	lv.reset(2)
	gamma := b.cfg.Gamma
	for tid, ws := range b.p.Seqs {
		seq := ws.Items
		for i := 0; i < len(seq); i++ {
			if seq[i] == flist.NoRank {
				continue
			}
			hi := i + 1 + gamma
			if hi >= len(seq) {
				hi = len(seq) - 1
			}
			for j := i + 1; j <= hi; j++ {
				if seq[j] == flist.NoRank {
					continue
				}
				b.sc.anc = b.p.SelfAnc(b.sc.anc[:0], seq[i])
				b.sc.anc2 = b.p.SelfAnc(b.sc.anc2[:0], seq[j])
				for _, u := range b.sc.anc {
					if !bs.f1set[u] {
						continue
					}
					for _, v := range b.sc.anc2 {
						if !bs.f1set[v] {
							continue
						}
						key := appendRankKey(appendRankKey(bs.keyBuf[:0], u), v)
						bs.keyBuf = key
						bs.seedPrefix[0] = u
						id := lv.getOrAdd(key, bs.seedPrefix[:], v) // pat = u·v
						lv.posts[id].add(int32(tid), ws.Weight, int32(j))
					}
				}
			}
		}
	}
	// The scan can record the same end twice (different first positions);
	// sort + dedupe each entry, seal the offsets, then account one
	// exploration per candidate.
	for id := 0; id < lv.n; id++ {
		b.stats.Explored++
		p := &lv.posts[id]
		ends := p.ends
		w := int32(0)
		for i := range p.tids {
			lo := p.offs[i]
			hi := int32(len(ends))
			if i+1 < len(p.offs) {
				hi = p.offs[i+1]
			}
			region := ends[lo:hi]
			slices.Sort(region)
			p.offs[i] = w
			for k := range region {
				if k > 0 && region[k] == region[k-1] {
					continue
				}
				ends[w] = region[k]
				w++
			}
		}
		p.ends = ends[:w]
		p.offs = append(p.offs, w)
	}
}

// join computes the posting of pattern S·a from posting(S) and the item
// posting of a into out: an occurrence of S ending at e extends to one
// ending at q when 0 < q−e ≤ γ+1.
func (b *bfsRun) join(pl *bfsPosting, item postList, out *bfsPosting) {
	out.support = 0
	out.tids = out.tids[:0]
	out.offs = out.offs[:0]
	out.ends = out.ends[:0]
	gamma := int32(b.cfg.Gamma)
	i, j := 0, 0
	for i < len(pl.tids) && j < len(item.tids) {
		switch {
		case pl.tids[i] < item.tids[j]:
			i++
		case pl.tids[i] > item.tids[j]:
			j++
		default:
			start := int32(len(out.ends))
			pe := pl.ends[pl.offs[i]:pl.offs[i+1]]
			ei := 0
			for _, q := range item.ends[item.offs[j]:item.offs[j+1]] {
				// Advance past ends too far left to reach q.
				for ei < len(pe) && q-pe[ei] > gamma+1 {
					ei++
				}
				if ei < len(pe) && pe[ei] < q {
					out.ends = append(out.ends, q)
				}
			}
			if int32(len(out.ends)) > start {
				out.tids = append(out.tids, pl.tids[i])
				out.offs = append(out.offs, start)
				out.support += b.p.Seqs[pl.tids[i]].Weight
			}
			i++
			j++
		}
	}
	out.offs = append(out.offs, int32(len(out.ends)))
}

// emitLevel outputs the frequent patterns of a level in rank-lexicographic
// order.
func (b *bfsRun) emitLevel(lv *bfsLevel) {
	bs := &b.sc.bfs
	bs.emitIDs = bs.emitIDs[:0]
	for id := int32(0); int(id) < lv.n; id++ {
		if lv.posts[id].support >= b.cfg.Sigma {
			bs.emitIDs = append(bs.emitIDs, id)
		}
	}
	slices.SortFunc(bs.emitIDs, func(a, c int32) int {
		return slices.Compare(lv.pat(a), lv.pat(c))
	})
	for _, id := range bs.emitIDs {
		pat := lv.pat(id)
		if b.cfg.PivotOnly && !ContainsPivot(pat, b.p.Pivot) {
			continue
		}
		b.emit(pat, lv.posts[id].support)
		b.stats.Output++
	}
}

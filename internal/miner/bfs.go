package miner

import (
	"sort"

	"lash/internal/flist"
)

// BFS is a hierarchy-aware adaptation of SPADE (§5.1 of the paper). It keeps
// a vertical representation of the partition: posting lists mapping each
// pattern to the sequences it occurs in together with the occurrence end
// positions. Length-2 patterns are seeded by scanning G2(T) for every
// sequence T (this is the hierarchy-aware step); longer candidates are
// generated GSP-style — candidate S·a requires both its length-l prefix and
// suffix to be frequent — and counted with a gap-constrained temporal join
// of posting(S) with the single-item posting of a.
type BFS struct{}

// plEntry is one vertical posting entry: sequence id plus sorted distinct
// end positions of the pattern's occurrences.
type plEntry struct {
	tid  int32
	ends []int32
}

type posting struct {
	entries []plEntry
	support int64
}

// Mine implements Miner.
func (BFS) Mine(p *Partition, cfg Config, emit Emit) Stats {
	b := &bfsRun{p: p, cfg: cfg, emit: emit, bound: cfg.bound(p)}
	b.run()
	return b.stats
}

type bfsRun struct {
	p     *Partition
	cfg   Config
	emit  Emit
	stats Stats
	bound flist.Rank
	anc   []flist.Rank
	anc2  []flist.Rank
}

func (b *bfsRun) run() {
	items := b.itemPostings()
	// Frequent single items, in rank order.
	f1 := make([]flist.Rank, 0, len(items))
	for a, pl := range items {
		b.stats.Explored++
		if pl.support >= b.cfg.Sigma {
			f1 = append(f1, a)
		}
	}
	sortRanks(f1)
	f1set := make(map[flist.Rank]bool, len(f1))
	for _, a := range f1 {
		f1set[a] = true
	}
	if b.cfg.Lambda < 2 || len(f1) == 0 {
		return
	}

	// Level 2: seed postings from G2(T) scans.
	level := b.seedLevel2(f1set)
	b.emitLevel(level)

	// Levels 3..λ: GSP-style candidate generation + temporal joins.
	for l := 3; l <= b.cfg.Lambda && len(level) > 0; l++ {
		next := make(map[string]*posting)
		for key, pl := range level {
			if pl.support < b.cfg.Sigma {
				continue
			}
			prefix := ranksFromKey(key)
			suffixKey := rankKey(prefix[1:])
			for _, a := range f1 {
				// Apriori: the suffix extended by a must be frequent.
				sfx, ok := level[suffixKey+rankKey1(a)]
				if !ok || sfx.support < b.cfg.Sigma {
					continue
				}
				cand := b.join(pl, items[a])
				b.stats.Explored++
				if cand.support >= b.cfg.Sigma {
					next[key+rankKey1(a)] = cand
				}
			}
		}
		level = next
		b.emitLevel(level)
	}
}

// itemPostings builds the vertical single-item index, hierarchy-aware: the
// posting of item a holds every position where a or a descendant occurs.
func (b *bfsRun) itemPostings() map[flist.Rank]*posting {
	out := make(map[flist.Rank]*posting)
	for tid, ws := range b.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			b.anc = b.p.SelfAnc(b.anc[:0], r)
			for _, a := range b.anc {
				if a > b.bound {
					continue
				}
				pl := out[a]
				if pl == nil {
					pl = &posting{}
					out[a] = pl
				}
				if n := len(pl.entries); n == 0 || pl.entries[n-1].tid != int32(tid) {
					pl.entries = append(pl.entries, plEntry{tid: int32(tid)})
					pl.support += ws.Weight
				}
				e := &pl.entries[len(pl.entries)-1]
				if n := len(e.ends); n == 0 || e.ends[n-1] != int32(pos) {
					e.ends = append(e.ends, int32(pos))
				}
			}
		}
	}
	return out
}

// seedLevel2 scans each sequence for G2(T): all generalized 2-subsequences
// within the gap constraint whose items are locally frequent.
func (b *bfsRun) seedLevel2(f1 map[flist.Rank]bool) map[string]*posting {
	out := make(map[string]*posting)
	gamma := b.cfg.Gamma
	for tid, ws := range b.p.Seqs {
		seq := ws.Items
		for i := 0; i < len(seq); i++ {
			if seq[i] == flist.NoRank {
				continue
			}
			hi := i + 1 + gamma
			if hi >= len(seq) {
				hi = len(seq) - 1
			}
			for j := i + 1; j <= hi; j++ {
				if seq[j] == flist.NoRank {
					continue
				}
				b.anc = b.p.SelfAnc(b.anc[:0], seq[i])
				b.anc2 = b.p.SelfAnc(b.anc2[:0], seq[j])
				for _, u := range b.anc {
					if !f1[u] {
						continue
					}
					for _, v := range b.anc2 {
						if !f1[v] {
							continue
						}
						key := rankKey1(u) + rankKey1(v)
						pl := out[key]
						if pl == nil {
							pl = &posting{}
							out[key] = pl
						}
						if n := len(pl.entries); n == 0 || pl.entries[n-1].tid != int32(tid) {
							pl.entries = append(pl.entries, plEntry{tid: int32(tid)})
							pl.support += ws.Weight
						}
						e := &pl.entries[len(pl.entries)-1]
						e.ends = append(e.ends, int32(j)) // deduped below
					}
				}
			}
		}
	}
	// The scan can record the same end twice (different first positions);
	// sort + dedupe each entry, then account one exploration per candidate.
	for _, pl := range out {
		b.stats.Explored++
		for i := range pl.entries {
			pl.entries[i].ends = sortUnique(pl.entries[i].ends)
		}
	}
	return out
}

// join computes the posting of pattern S·a from posting(S) and the item
// posting of a: an occurrence of S ending at e extends to one ending at q
// when 0 < q−e ≤ γ+1.
func (b *bfsRun) join(pl *posting, item *posting) *posting {
	out := &posting{}
	gamma := int32(b.cfg.Gamma)
	i, j := 0, 0
	for i < len(pl.entries) && j < len(item.entries) {
		pe, ie := &pl.entries[i], &item.entries[j]
		switch {
		case pe.tid < ie.tid:
			i++
		case pe.tid > ie.tid:
			j++
		default:
			var ends []int32
			ei := 0
			for _, q := range ie.ends {
				// Advance past ends too far left to reach q.
				for ei < len(pe.ends) && q-pe.ends[ei] > gamma+1 {
					ei++
				}
				if ei < len(pe.ends) && pe.ends[ei] < q {
					ends = append(ends, q)
				}
			}
			if len(ends) > 0 {
				out.entries = append(out.entries, plEntry{tid: pe.tid, ends: ends})
				out.support += b.p.Seqs[pe.tid].Weight
			}
			i++
			j++
		}
	}
	return out
}

// emitLevel outputs the frequent patterns of a level.
func (b *bfsRun) emitLevel(level map[string]*posting) {
	keys := make([]string, 0, len(level))
	for k, pl := range level {
		if pl.support >= b.cfg.Sigma {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pat := ranksFromKey(k)
		if b.cfg.PivotOnly && !ContainsPivot(pat, b.p.Pivot) {
			continue
		}
		b.emit(pat, level[k].support)
		b.stats.Output++
	}
}

func rankKey1(r flist.Rank) string {
	return string([]byte{byte(r), byte(r >> 8), byte(r >> 16), byte(r >> 24)})
}

func rankKey(rs []flist.Rank) string {
	b := make([]byte, 0, 4*len(rs))
	for _, r := range rs {
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

func ranksFromKey(k string) []flist.Rank {
	rs := make([]flist.Rank, len(k)/4)
	for i := range rs {
		rs[i] = flist.Rank(k[4*i]) | flist.Rank(k[4*i+1])<<8 |
			flist.Rank(k[4*i+2])<<16 | flist.Rank(k[4*i+3])<<24
	}
	return rs
}

func sortUnique(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

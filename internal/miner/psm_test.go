package miner_test

import (
	"testing"

	"lash/internal/flist"
	"lash/internal/miner"
)

// flatPartition builds a partition over a flat rank space (no hierarchy).
func flatPartition(pivot flist.Rank, nRanks int, weights []int64, seqs ...[]flist.Rank) *miner.Partition {
	parent := make([]flist.Rank, nRanks)
	for i := range parent {
		parent[i] = flist.NoRank
	}
	p := &miner.Partition{Pivot: pivot, Parent: parent}
	for i, s := range seqs {
		w := int64(1)
		if weights != nil {
			w = weights[i]
		}
		p.Seqs = append(p.Seqs, miner.WSeq{Items: s, Weight: w})
	}
	return p
}

// The right-expansion index scenario of §5.2: if Sw' is an infrequent right
// expansion of S, then w”Sw' is pruned without a support computation. We
// build a partition where pattern "pivot·x" is infrequent but after the left
// expansion "y·pivot" the item x would still be collected as a candidate —
// the indexed run must explore strictly fewer candidates and emit the same
// patterns.
func TestPSMIndexPruningScenario(t *testing.T) {
	// Ranks: 0=y, 1=x, 2=pivot.
	const y, x, pivot = flist.Rank(0), flist.Rank(1), flist.Rank(2)
	p := flatPartition(pivot, 3, nil,
		[]flist.Rank{y, pivot, x}, // y·pivot frequent; pivot·x occurs once
		[]flist.Rank{y, pivot, y},
		[]flist.Rank{y, pivot, y},
	)
	cfg := miner.Config{Sigma: 2, Gamma: 0, Lambda: 3, PivotOnly: true}
	noIdx, sPlain := miner.CollectPatterns(miner.New(miner.KindPSMNoIndex), p, cfg)
	withIdx, sIdx := miner.CollectPatterns(miner.New(miner.KindPSM), p, cfg)
	if len(noIdx) != len(withIdx) {
		t.Fatalf("index changed output: %d vs %d patterns", len(noIdx), len(withIdx))
	}
	for i := range noIdx {
		if noIdx[i].Weight != withIdx[i].Weight {
			t.Fatalf("index changed supports")
		}
	}
	if sIdx.Explored >= sPlain.Explored {
		t.Fatalf("index did not prune: explored %d vs %d", sIdx.Explored, sPlain.Explored)
	}
	// Expected frequent pivot patterns: y·pivot (3), pivot·y (2), y·pivot·y (2).
	want := map[string]int64{
		rankKey([]flist.Rank{y, pivot}):    3,
		rankKey([]flist.Rank{pivot, y}):    2,
		rankKey([]flist.Rank{y, pivot, y}): 2,
	}
	if len(noIdx) != len(want) {
		t.Fatalf("got %d patterns, want %d", len(noIdx), len(want))
	}
	for _, g := range noIdx {
		if want[rankKey(g.Items)] != g.Weight {
			t.Fatalf("unexpected pattern %v:%d", g.Items, g.Weight)
		}
	}
}

// A pattern whose unique decomposition has the pivot in the middle must be
// built by left-expansions first, then right-expansions — and only once.
func TestPSMUniqueDecomposition(t *testing.T) {
	// Ranks: 0=a, 1=pivot. Sequence a·p·a·p contains p a p (pivot twice).
	const a, pv = flist.Rank(0), flist.Rank(1)
	p := flatPartition(pv, 2, nil,
		[]flist.Rank{a, pv, a, pv},
		[]flist.Rank{a, pv, a, pv},
	)
	cfg := miner.Config{Sigma: 2, Gamma: 0, Lambda: 4, PivotOnly: true}
	got, _ := minerOutputMap(miner.New(miner.KindPSMNoIndex), p, cfg)
	want := bruteMine(p, cfg)
	if !mapsEqual(got, want) {
		t.Fatalf("PSM output %v != brute %v", got, want)
	}
	// p·a·p must be present exactly once with support 2 — the duplicate-free
	// enumeration of Fig. 3's discussion.
	if got[rankKey([]flist.Rank{pv, a, pv})] != 2 {
		t.Fatalf("pivot-in-middle pattern wrong: %v", got)
	}
}

// Isolated pivot occurrences (beyond gap range of everything) contribute no
// patterns but must not break counting of other occurrences.
func TestPSMRepeatedPivotOccurrences(t *testing.T) {
	const a, pv = flist.Rank(0), flist.Rank(1)
	p := flatPartition(pv, 2, nil,
		[]flist.Rank{pv, flist.NoRank, flist.NoRank, pv, a},
	)
	cfg := miner.Config{Sigma: 1, Gamma: 0, Lambda: 2, PivotOnly: true}
	got, _ := minerOutputMap(miner.New(miner.KindPSM), p, cfg)
	if len(got) != 1 || got[rankKey([]flist.Rank{pv, a})] != 1 {
		t.Fatalf("got %v, want only pv·a", got)
	}
}

// Weighted left-expansion counting: distinct tids accumulate weights once
// even with multiple occurrence pairs.
func TestPSMWeightedLeftExpansion(t *testing.T) {
	const a, pv = flist.Rank(0), flist.Rank(1)
	p := flatPartition(pv, 2, []int64{3},
		[]flist.Rank{a, pv, a, pv}, // two occurrences of a·pv in one tid
	)
	cfg := miner.Config{Sigma: 1, Gamma: 0, Lambda: 2, PivotOnly: true}
	got, _ := minerOutputMap(miner.New(miner.KindPSM), p, cfg)
	if got[rankKey([]flist.Rank{a, pv})] != 3 {
		t.Fatalf("weighted support = %v, want 3", got)
	}
}

// Package miner implements the sequential GSM algorithms LASH runs inside
// each partition (§5 of the paper):
//
//   - BFS: a hierarchy-aware adaptation of SPADE — vertical posting lists,
//     level-wise candidate generation, gap-constrained temporal joins
//     (bfs.go).
//   - DFS: a hierarchy-aware adaptation of PrefixSpan — pattern growth with
//     projected databases of occurrence end positions (dfs.go).
//   - PSM: the pivot sequence miner — starts at the pivot and grows patterns
//     with left and right expansions so that only pivot sequences are ever
//     explored; optionally maintains the right-expansion index (psm.go).
//
// All miners operate in rank space (see internal/flist): items are dense
// frequency ranks, blanks are flist.NoRank and match nothing, and the item
// hierarchy is the rank-parent table. Support is weighted: partitions store
// aggregated duplicate sequences (§4.4).
//
// The miners share a reusable working set, Scratch: dense rank-indexed
// candidate tables (candidate ranks inside a partition are bounded by the
// pivot's rank, §4.2), flattened arena-backed posting lists, and per-depth
// bitsets for PSM's right-expansion index. Callers that mine many partitions
// should pool Scratch values (one per worker) and pass them to Mine; the
// hot path then performs no per-expansion allocation.
package miner

import (
	"fmt"
	"slices"

	"lash/internal/flist"
	"lash/internal/obs"
)

// WSeq is a rank-space sequence with an aggregation weight (the number of
// identical input sequences it stands for).
type WSeq struct {
	Items  []flist.Rank
	Weight int64
}

// Partition is the unit of local mining: the pivot, the rewritten sequences,
// and the rank-parent table describing the hierarchy among frequent items.
type Partition struct {
	Pivot  flist.Rank
	Seqs   []WSeq
	Parent []flist.Rank
}

// SelfAnc appends r and its ancestors (via the rank-parent table) to dst.
func (p *Partition) SelfAnc(dst []flist.Rank, r flist.Rank) []flist.Rank {
	for r != flist.NoRank {
		dst = append(dst, r)
		if int(r) >= len(p.Parent) {
			break
		}
		r = p.Parent[r]
	}
	return dst
}

// Config carries the local mining parameters.
type Config struct {
	Sigma  int64
	Gamma  int
	Lambda int
	// PivotOnly restricts output to pivot sequences (p(S) = pivot), which is
	// what LASH requires; BFS and DFS still *explore* non-pivot sequences
	// (§5.1 "Overhead") and merely filter at emission. PivotOnly also bounds
	// candidate items to ranks ≤ pivot: on w-generalized partitions this
	// changes nothing (no larger items survive the rewrite), but it keeps
	// p(S) = pivot emission exact on un-rewritten partitions
	// (rewrite.ModeNone, used by the ablation study). When false, all
	// locally frequent sequences of length ≥ 2 are emitted (used for whole-
	// database mining and tests).
	PivotOnly bool

	// Obs, when non-nil, receives the mine's work counters (explored
	// candidates, emitted patterns) in one flush when Mine returns — never
	// per expansion, so the mining hot loop stays alloc- and atomic-free.
	Obs *obs.MinerCounters
}

// record flushes one finished mine's Stats into cfg.Obs (no-op when unset).
func (c Config) record(st Stats) {
	c.Obs.Record(st.Explored, st.Output)
}

// bound returns the largest admissible candidate rank for a partition.
func (c Config) bound(p *Partition) flist.Rank {
	if c.PivotOnly {
		return p.Pivot
	}
	return flist.NoRank
}

// Stats reports the work a miner performed. Explored counts candidate
// sequences whose support was computed — the quantity behind Fig. 4(d).
type Stats struct {
	Explored int64
	Output   int64
}

// Add accumulates counters from another Stats.
func (s *Stats) Add(o Stats) {
	s.Explored += o.Explored
	s.Output += o.Output
}

// Emit receives each frequent pattern (rank space) and its support. The
// pattern slice is only valid during the call.
type Emit func(pattern []flist.Rank, support int64)

// Miner is a local GSM mining algorithm. Mine accumulates all intermediate
// state in sc, which may be reused across calls (see Scratch for the reuse
// contract); a nil sc makes Mine allocate a private scratch.
type Miner interface {
	Mine(p *Partition, cfg Config, sc *Scratch, emit Emit) Stats
}

// Kind selects a local miner implementation.
type Kind int

const (
	// KindPSM is the pivot sequence miner with the right-expansion index
	// (the paper's "PSM + Index", LASH's default).
	KindPSM Kind = iota
	// KindPSMNoIndex is PSM without the right-expansion index.
	KindPSMNoIndex
	// KindBFS is the hierarchy-aware SPADE adaptation.
	KindBFS
	// KindDFS is the hierarchy-aware PrefixSpan adaptation.
	KindDFS
)

// String names the miner kind as used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case KindPSM:
		return "PSM+Index"
	case KindPSMNoIndex:
		return "PSM"
	case KindBFS:
		return "BFS"
	case KindDFS:
		return "DFS"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// New constructs the local miner of the given kind.
func New(k Kind) Miner {
	switch k {
	case KindPSM:
		return &PSM{UseIndex: true}
	case KindPSMNoIndex:
		return &PSM{}
	case KindBFS:
		return BFS{}
	case KindDFS:
		return DFS{}
	}
	panic("miner: unknown kind")
}

// ContainsPivot reports whether a rank pattern contains the pivot. Because
// partition items never exceed the pivot, this is equivalent to
// p(S) = pivot.
func ContainsPivot(pattern []flist.Rank, pivot flist.Rank) bool {
	for _, r := range pattern {
		if r == pivot {
			return true
		}
	}
	return false
}

// sortUniqueTail sorts dst[start:] ascending, removes duplicates in place,
// and returns dst truncated after the unique region.
func sortUniqueTail(dst []int32, start int) []int32 {
	region := dst[start:]
	slices.Sort(region)
	return dst[:start+len(slices.Compact(region))]
}

// CollectPatterns is a test convenience: runs a miner (with a private
// scratch) and returns patterns sorted canonically (by length, then
// rank-lexicographic).
func CollectPatterns(m Miner, p *Partition, cfg Config) ([]WSeq, Stats) {
	var out []WSeq
	stats := m.Mine(p, cfg, nil, func(pattern []flist.Rank, support int64) {
		out = append(out, WSeq{Items: append([]flist.Rank(nil), pattern...), Weight: support})
	})
	slices.SortFunc(out, func(a, b WSeq) int {
		if len(a.Items) != len(b.Items) {
			return len(a.Items) - len(b.Items)
		}
		return slices.Compare(a.Items, b.Items)
	})
	return out, stats
}

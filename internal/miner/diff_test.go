package miner_test

// Differential tests for the dense-table miner rewrite: on randomized
// weighted partitions across PivotOnly/γ/λ/σ configurations, every new miner
// must produce byte-identical patterns and supports and identical
// Stats.Explored/Output to the preserved PR 2 implementations
// (refminer_test.go) — including when one Scratch is reused across
// partitions, kinds, and configurations.

import (
	"fmt"
	"math/rand"
	"testing"

	"lash/internal/flist"
	"lash/internal/miner"
)

// diffPartition builds a random weighted partition. Unlike randPartition it
// also exercises large rank spaces (ranks ≥ 256, multi-byte interning keys)
// and deeper hierarchies.
func diffPartition(r *rand.Rand) *miner.Partition {
	nRanks := 2 + r.Intn(8)
	if r.Intn(4) == 0 {
		nRanks = 250 + r.Intn(300) // stress multi-byte rank keys
	}
	parent := make([]flist.Rank, nRanks)
	for i := range parent {
		if i == 0 || r.Intn(3) == 0 {
			parent[i] = flist.NoRank
		} else {
			parent[i] = flist.Rank(r.Intn(i))
		}
	}
	pivot := flist.Rank(1 + r.Intn(nRanks-1))
	p := &miner.Partition{Pivot: pivot, Parent: parent}
	for i, k := 0, 1+r.Intn(7); i < k; i++ {
		l := 2 + r.Intn(9)
		items := make([]flist.Rank, l)
		for j := range items {
			if r.Intn(6) == 0 {
				items[j] = flist.NoRank
			} else {
				items[j] = flist.Rank(r.Intn(int(pivot) + 1))
			}
		}
		p.Seqs = append(p.Seqs, miner.WSeq{Items: items, Weight: 1 + int64(r.Intn(4))})
	}
	return p
}

func diffConfig(r *rand.Rand) miner.Config {
	return miner.Config{
		Sigma:     1 + int64(r.Intn(4)),
		Gamma:     r.Intn(3),
		Lambda:    2 + r.Intn(4),
		PivotOnly: r.Intn(2) == 0,
	}
}

// collect runs a miner and returns its output in canonical order plus stats.
func collect(m miner.Miner, p *miner.Partition, cfg miner.Config, sc *miner.Scratch) ([]miner.WSeq, miner.Stats) {
	var out []miner.WSeq
	stats := m.Mine(p, cfg, sc, func(pat []flist.Rank, sup int64) {
		out = append(out, miner.WSeq{Items: append([]flist.Rank(nil), pat...), Weight: sup})
	})
	sortWSeqs(out)
	return out, stats
}

func sortWSeqs(out []miner.WSeq) {
	// Canonical order: length, then rank-lexicographic (matches
	// CollectPatterns).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessWSeq(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func lessWSeq(a, b miner.WSeq) bool {
	if len(a.Items) != len(b.Items) {
		return len(a.Items) < len(b.Items)
	}
	for k := range a.Items {
		if a.Items[k] != b.Items[k] {
			return a.Items[k] < b.Items[k]
		}
	}
	return false
}

func equalWSeqs(a, b []miner.WSeq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || len(a[i].Items) != len(b[i].Items) {
			return false
		}
		for k := range a[i].Items {
			if a[i].Items[k] != b[i].Items[k] {
				return false
			}
		}
	}
	return true
}

func TestDiffMinersMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	sawOutput := false
	for trial := 0; trial < 400; trial++ {
		p := diffPartition(r)
		cfg := diffConfig(r)
		for _, kind := range allKinds {
			want, wantStats := collect(refNew(kind), p, cfg, nil)
			got, gotStats := collect(miner.New(kind), p, cfg, nil)
			if !equalWSeqs(got, want) {
				t.Fatalf("trial %d %s cfg %+v: output diverges\n got: %v\nwant: %v", trial, kind, cfg, got, want)
			}
			if gotStats != wantStats {
				t.Fatalf("trial %d %s cfg %+v: stats diverge: got %+v want %+v", trial, kind, cfg, gotStats, wantStats)
			}
			if wantStats.Output > 0 {
				sawOutput = true
			}
		}
	}
	if !sawOutput {
		t.Fatal("differential test vacuous: no trial produced patterns")
	}
}

// A single Scratch reused across partitions, miner kinds, and configurations
// must behave exactly like a fresh one — stale epochs, arenas, or index
// bitsets from a previous call must never leak into the next.
func TestDiffScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	sc := miner.NewScratch()
	for trial := 0; trial < 300; trial++ {
		p := diffPartition(r)
		cfg := diffConfig(r)
		kind := allKinds[r.Intn(len(allKinds))]
		want, wantStats := collect(refNew(kind), p, cfg, nil)
		got, gotStats := collect(miner.New(kind), p, cfg, sc)
		if !equalWSeqs(got, want) {
			t.Fatalf("trial %d %s cfg %+v: reused scratch diverges\n got: %v\nwant: %v", trial, kind, cfg, got, want)
		}
		if gotStats != wantStats {
			t.Fatalf("trial %d %s cfg %+v: reused scratch stats diverge: got %+v want %+v", trial, kind, cfg, gotStats, wantStats)
		}
	}
}

// PSM and DFS expand candidates in ascending rank order at every node, so
// even their emission *order* (not just the sorted output) must match the
// reference exactly.
func TestDiffEmissionOrderPSMDFS(t *testing.T) {
	r := rand.New(rand.NewSource(227))
	sc := miner.NewScratch()
	for trial := 0; trial < 200; trial++ {
		p := diffPartition(r)
		cfg := diffConfig(r)
		for _, kind := range []miner.Kind{miner.KindPSM, miner.KindPSMNoIndex, miner.KindDFS} {
			var want, got []string
			refNew(kind).Mine(p, cfg, nil, func(pat []flist.Rank, sup int64) {
				want = append(want, fmt.Sprintf("%v:%d", pat, sup))
			})
			miner.New(kind).Mine(p, cfg, sc, func(pat []flist.Rank, sup int64) {
				got = append(got, fmt.Sprintf("%v:%d", pat, sup))
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d emissions, want %d", trial, kind, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: emission %d = %s, want %s", trial, kind, i, got[i], want[i])
				}
			}
		}
	}
}

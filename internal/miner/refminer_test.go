package miner_test

// This file preserves the PR 2 local miners verbatim (hash-map candidate
// tables, per-candidate slices, string pattern keys) as the differential-
// testing reference for the dense-table rewrite. The production miners must
// reproduce their patterns, supports, and Stats counters exactly; see
// diff_test.go.

import (
	"sort"

	"lash/internal/flist"
	"lash/internal/miner"
)

func refNew(k miner.Kind) miner.Miner {
	switch k {
	case miner.KindPSM:
		return &refPSM{UseIndex: true}
	case miner.KindPSMNoIndex:
		return &refPSM{}
	case miner.KindBFS:
		return refBFS{}
	case miner.KindDFS:
		return refDFS{}
	}
	panic("refminer: unknown kind")
}

func refSortRanks(rs []flist.Rank) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

func refSortUnique(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// --- PSM (reference) --------------------------------------------------------

type refPSM struct {
	UseIndex bool
}

type refOccPair struct {
	start, end int32
}

type refAEntry struct {
	tid  int32
	occs []refOccPair
}

type refREntry struct {
	tid  int32
	ends []int32
}

type refRIndex struct {
	levels []map[flist.Rank]bool
}

func newRefRIndex(lambda int) *refRIndex {
	return &refRIndex{levels: make([]map[flist.Rank]bool, lambda)}
}

func (x *refRIndex) add(depth int, a flist.Rank) {
	if x == nil {
		return
	}
	if x.levels[depth-1] == nil {
		x.levels[depth-1] = make(map[flist.Rank]bool)
	}
	x.levels[depth-1][a] = true
}

func (x *refRIndex) has(depth int, a flist.Rank) bool {
	return x.levels[depth-1][a]
}

func (m *refPSM) Mine(p *miner.Partition, cfg miner.Config, _ *miner.Scratch, emit miner.Emit) miner.Stats {
	run := &refPSMRun{p: p, cfg: cfg, emit: emit, useIndex: m.UseIndex, bound: p.Pivot}
	run.run()
	return run.stats
}

type refPSMRun struct {
	p        *miner.Partition
	cfg      miner.Config
	emit     miner.Emit
	useIndex bool
	stats    miner.Stats
	bound    flist.Rank

	pattern []flist.Rank
	anc     []flist.Rank
	qbuf    []int32
}

func (d *refPSMRun) run() {
	var anchor []refAEntry
	for tid, ws := range d.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a != d.p.Pivot {
					continue
				}
				if n := len(anchor); n == 0 || anchor[n-1].tid != int32(tid) {
					anchor = append(anchor, refAEntry{tid: int32(tid)})
				}
				e := &anchor[len(anchor)-1]
				e.occs = append(e.occs, refOccPair{int32(pos), int32(pos)})
				break
			}
		}
	}
	if len(anchor) == 0 {
		return
	}
	d.pattern = append(d.pattern[:0], d.p.Pivot)
	d.expandAnchor(anchor, nil)
}

func (d *refPSMRun) expandAnchor(anchor []refAEntry, parentIdx *refRIndex) {
	var myIdx *refRIndex
	if d.useIndex {
		myIdx = newRefRIndex(d.cfg.Lambda)
	}
	d.expandRight(d.endsOf(anchor), 1, parentIdx, myIdx)

	if len(d.pattern) == d.cfg.Lambda {
		return
	}
	cands, order := d.collectLeft(anchor)
	for _, a := range order {
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern, 0)
		copy(d.pattern[1:], d.pattern)
		d.pattern[0] = a
		d.emit(d.pattern, c.support)
		d.stats.Output++
		d.expandAnchor(c.entries, myIdx)
		copy(d.pattern, d.pattern[1:])
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

func (d *refPSMRun) expandRight(state []refREntry, depth int, parentIdx, myIdx *refRIndex) {
	if len(d.pattern) == d.cfg.Lambda || len(state) == 0 {
		return
	}
	cands, order := d.collectRight(state)
	for _, a := range order {
		if a == d.p.Pivot {
			continue
		}
		if parentIdx != nil && !parentIdx.has(depth, a) {
			continue
		}
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		myIdx.add(depth, a)
		d.pattern = append(d.pattern, a)
		d.emit(d.pattern, c.support)
		d.stats.Output++
		d.expandRight(c.entries, depth+1, parentIdx, myIdx)
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

type refRCand struct {
	entries []refREntry
	support int64
}

func (d *refPSMRun) collectRight(state []refREntry) (map[flist.Rank]*refRCand, []flist.Rank) {
	cands := make(map[flist.Rank]*refRCand)
	gamma := int32(d.cfg.Gamma)
	for _, e := range state {
		ws := d.p.Seqs[e.tid]
		seq := ws.Items
		n := int32(len(seq))
		d.qbuf = d.qbuf[:0]
		next := int32(0)
		for _, end := range e.ends {
			lo := end + 1
			if lo < next {
				lo = next
			}
			hi := end + 1 + gamma
			if hi >= n {
				hi = n - 1
			}
			for q := lo; q <= hi; q++ {
				d.qbuf = append(d.qbuf, q)
			}
			if hi+1 > next {
				next = hi + 1
			}
		}
		for _, q := range d.qbuf {
			r := seq[q]
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a > d.bound {
					continue
				}
				c := cands[a]
				if c == nil {
					c = &refRCand{}
					cands[a] = c
				}
				if n := len(c.entries); n == 0 || c.entries[n-1].tid != e.tid {
					c.entries = append(c.entries, refREntry{tid: e.tid})
					c.support += ws.Weight
				}
				ce := &c.entries[len(c.entries)-1]
				ce.ends = append(ce.ends, q)
			}
		}
	}
	order := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		order = append(order, a)
	}
	refSortRanks(order)
	return cands, order
}

type refACand struct {
	entries []refAEntry
	support int64
}

func (d *refPSMRun) collectLeft(anchor []refAEntry) (map[flist.Rank]*refACand, []flist.Rank) {
	cands := make(map[flist.Rank]*refACand)
	gamma := int32(d.cfg.Gamma)
	for _, e := range anchor {
		ws := d.p.Seqs[e.tid]
		seq := ws.Items
		for _, oc := range e.occs {
			lo := oc.start - 1 - gamma
			if lo < 0 {
				lo = 0
			}
			for q := lo; q < oc.start; q++ {
				r := seq[q]
				if r == flist.NoRank {
					continue
				}
				d.anc = d.p.SelfAnc(d.anc[:0], r)
				for _, a := range d.anc {
					if a > d.bound {
						continue
					}
					c := cands[a]
					if c == nil {
						c = &refACand{}
						cands[a] = c
					}
					if n := len(c.entries); n == 0 || c.entries[n-1].tid != e.tid {
						c.entries = append(c.entries, refAEntry{tid: e.tid})
						c.support += ws.Weight
					}
					ce := &c.entries[len(c.entries)-1]
					ce.occs = append(ce.occs, refOccPair{q, oc.end})
				}
			}
		}
	}
	for _, c := range cands {
		for i := range c.entries {
			c.entries[i].occs = refSortUniquePairs(c.entries[i].occs)
		}
	}
	order := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		order = append(order, a)
	}
	refSortRanks(order)
	return cands, order
}

func (d *refPSMRun) endsOf(anchor []refAEntry) []refREntry {
	out := make([]refREntry, 0, len(anchor))
	for _, e := range anchor {
		ends := make([]int32, 0, len(e.occs))
		for _, oc := range e.occs {
			ends = append(ends, oc.end)
		}
		out = append(out, refREntry{tid: e.tid, ends: refSortUnique(ends)})
	}
	return out
}

func refSortUniquePairs(ps []refOccPair) []refOccPair {
	if len(ps) < 2 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].start != ps[j].start {
			return ps[i].start < ps[j].start
		}
		return ps[i].end < ps[j].end
	})
	out := ps[:1]
	for _, p := range ps[1:] {
		last := out[len(out)-1]
		if p != last {
			out = append(out, p)
		}
	}
	return out
}

// --- DFS (reference) --------------------------------------------------------

type refDFS struct{}

type refDProj struct {
	tid  int32
	ends []int32
}

type refDCand struct {
	proj    []refDProj
	support int64
}

func refBound(cfg miner.Config, p *miner.Partition) flist.Rank {
	if cfg.PivotOnly {
		return p.Pivot
	}
	return flist.NoRank
}

func (refDFS) Mine(p *miner.Partition, cfg miner.Config, _ *miner.Scratch, emit miner.Emit) miner.Stats {
	d := &refDFSRun{p: p, cfg: cfg, emit: emit, bound: refBound(cfg, p)}
	d.run()
	return d.stats
}

type refDFSRun struct {
	p     *miner.Partition
	cfg   miner.Config
	emit  miner.Emit
	stats miner.Stats
	bound flist.Rank

	pattern []flist.Rank
	anc     []flist.Rank
	qbuf    []int32
}

func (d *refDFSRun) run() {
	cands := make(map[flist.Rank]*refDCand)
	for tid, ws := range d.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a > d.bound {
					continue
				}
				c := cands[a]
				if c == nil {
					c = &refDCand{}
					cands[a] = c
				}
				if n := len(c.proj); n == 0 || c.proj[n-1].tid != int32(tid) {
					c.proj = append(c.proj, refDProj{tid: int32(tid)})
					c.support += ws.Weight
				}
				e := &c.proj[len(c.proj)-1]
				if n := len(e.ends); n == 0 || e.ends[n-1] != int32(pos) {
					e.ends = append(e.ends, int32(pos))
				}
			}
		}
	}
	items := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		items = append(items, a)
	}
	refSortRanks(items)
	for _, a := range items {
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern[:0], a)
		d.expand(c.proj, a == d.p.Pivot)
	}
}

func (d *refDFSRun) expand(proj []refDProj, hasPivot bool) {
	if len(d.pattern) == d.cfg.Lambda {
		return
	}
	gamma := int32(d.cfg.Gamma)
	cands := make(map[flist.Rank]*refDCand)
	for _, e := range proj {
		seq := d.p.Seqs[e.tid].Items
		d.qbuf = d.qbuf[:0]
		n := int32(len(seq))
		next := int32(0)
		for _, end := range e.ends {
			lo := end + 1
			if lo < next {
				lo = next
			}
			hi := end + 1 + gamma
			if hi >= n {
				hi = n - 1
			}
			for q := lo; q <= hi; q++ {
				d.qbuf = append(d.qbuf, q)
			}
			if hi+1 > next {
				next = hi + 1
			}
		}
		w := d.p.Seqs[e.tid].Weight
		for _, q := range d.qbuf {
			r := seq[q]
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a > d.bound {
					continue
				}
				c := cands[a]
				if c == nil {
					c = &refDCand{}
					cands[a] = c
				}
				if n := len(c.proj); n == 0 || c.proj[n-1].tid != e.tid {
					c.proj = append(c.proj, refDProj{tid: e.tid})
					c.support += w
				}
				pe := &c.proj[len(c.proj)-1]
				pe.ends = append(pe.ends, q)
			}
		}
	}
	items := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		items = append(items, a)
	}
	refSortRanks(items)
	for _, a := range items {
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern, a)
		hp := hasPivot || a == d.p.Pivot
		if len(d.pattern) >= 2 && (!d.cfg.PivotOnly || hp) {
			d.emit(d.pattern, c.support)
			d.stats.Output++
		}
		d.expand(c.proj, hp)
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

// --- BFS (reference) --------------------------------------------------------

type refBFS struct{}

type refPLEntry struct {
	tid  int32
	ends []int32
}

type refPosting struct {
	entries []refPLEntry
	support int64
}

func (refBFS) Mine(p *miner.Partition, cfg miner.Config, _ *miner.Scratch, emit miner.Emit) miner.Stats {
	b := &refBFSRun{p: p, cfg: cfg, emit: emit, bound: refBound(cfg, p)}
	b.run()
	return b.stats
}

type refBFSRun struct {
	p     *miner.Partition
	cfg   miner.Config
	emit  miner.Emit
	stats miner.Stats
	bound flist.Rank
	anc   []flist.Rank
	anc2  []flist.Rank
}

func (b *refBFSRun) run() {
	items := b.itemPostings()
	f1 := make([]flist.Rank, 0, len(items))
	for a, pl := range items {
		b.stats.Explored++
		if pl.support >= b.cfg.Sigma {
			f1 = append(f1, a)
		}
	}
	refSortRanks(f1)
	f1set := make(map[flist.Rank]bool, len(f1))
	for _, a := range f1 {
		f1set[a] = true
	}
	if b.cfg.Lambda < 2 || len(f1) == 0 {
		return
	}

	level := b.seedLevel2(f1set)
	b.emitLevel(level)

	for l := 3; l <= b.cfg.Lambda && len(level) > 0; l++ {
		next := make(map[string]*refPosting)
		for key, pl := range level {
			if pl.support < b.cfg.Sigma {
				continue
			}
			prefix := ranksFromKey(key)
			suffixKey := rankKey(prefix[1:])
			for _, a := range f1 {
				sfx, ok := level[suffixKey+refRankKey1(a)]
				if !ok || sfx.support < b.cfg.Sigma {
					continue
				}
				cand := b.join(pl, items[a])
				b.stats.Explored++
				if cand.support >= b.cfg.Sigma {
					next[key+refRankKey1(a)] = cand
				}
			}
		}
		level = next
		b.emitLevel(level)
	}
}

func (b *refBFSRun) itemPostings() map[flist.Rank]*refPosting {
	out := make(map[flist.Rank]*refPosting)
	for tid, ws := range b.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			b.anc = b.p.SelfAnc(b.anc[:0], r)
			for _, a := range b.anc {
				if a > b.bound {
					continue
				}
				pl := out[a]
				if pl == nil {
					pl = &refPosting{}
					out[a] = pl
				}
				if n := len(pl.entries); n == 0 || pl.entries[n-1].tid != int32(tid) {
					pl.entries = append(pl.entries, refPLEntry{tid: int32(tid)})
					pl.support += ws.Weight
				}
				e := &pl.entries[len(pl.entries)-1]
				if n := len(e.ends); n == 0 || e.ends[n-1] != int32(pos) {
					e.ends = append(e.ends, int32(pos))
				}
			}
		}
	}
	return out
}

func (b *refBFSRun) seedLevel2(f1 map[flist.Rank]bool) map[string]*refPosting {
	out := make(map[string]*refPosting)
	gamma := b.cfg.Gamma
	for tid, ws := range b.p.Seqs {
		seq := ws.Items
		for i := 0; i < len(seq); i++ {
			if seq[i] == flist.NoRank {
				continue
			}
			hi := i + 1 + gamma
			if hi >= len(seq) {
				hi = len(seq) - 1
			}
			for j := i + 1; j <= hi; j++ {
				if seq[j] == flist.NoRank {
					continue
				}
				b.anc = b.p.SelfAnc(b.anc[:0], seq[i])
				b.anc2 = b.p.SelfAnc(b.anc2[:0], seq[j])
				for _, u := range b.anc {
					if !f1[u] {
						continue
					}
					for _, v := range b.anc2 {
						if !f1[v] {
							continue
						}
						key := refRankKey1(u) + refRankKey1(v)
						pl := out[key]
						if pl == nil {
							pl = &refPosting{}
							out[key] = pl
						}
						if n := len(pl.entries); n == 0 || pl.entries[n-1].tid != int32(tid) {
							pl.entries = append(pl.entries, refPLEntry{tid: int32(tid)})
							pl.support += ws.Weight
						}
						e := &pl.entries[len(pl.entries)-1]
						e.ends = append(e.ends, int32(j))
					}
				}
			}
		}
	}
	for _, pl := range out {
		b.stats.Explored++
		for i := range pl.entries {
			pl.entries[i].ends = refSortUnique(pl.entries[i].ends)
		}
	}
	return out
}

func (b *refBFSRun) join(pl *refPosting, item *refPosting) *refPosting {
	out := &refPosting{}
	gamma := int32(b.cfg.Gamma)
	i, j := 0, 0
	for i < len(pl.entries) && j < len(item.entries) {
		pe, ie := &pl.entries[i], &item.entries[j]
		switch {
		case pe.tid < ie.tid:
			i++
		case pe.tid > ie.tid:
			j++
		default:
			var ends []int32
			ei := 0
			for _, q := range ie.ends {
				for ei < len(pe.ends) && q-pe.ends[ei] > gamma+1 {
					ei++
				}
				if ei < len(pe.ends) && pe.ends[ei] < q {
					ends = append(ends, q)
				}
			}
			if len(ends) > 0 {
				out.entries = append(out.entries, refPLEntry{tid: pe.tid, ends: ends})
				out.support += b.p.Seqs[pe.tid].Weight
			}
			i++
			j++
		}
	}
	return out
}

func (b *refBFSRun) emitLevel(level map[string]*refPosting) {
	keys := make([]string, 0, len(level))
	for k, pl := range level {
		if pl.support >= b.cfg.Sigma {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pat := ranksFromKey(k)
		if b.cfg.PivotOnly && !miner.ContainsPivot(pat, b.p.Pivot) {
			continue
		}
		b.emit(pat, level[k].support)
		b.stats.Output++
	}
}

func refRankKey1(r flist.Rank) string {
	return string([]byte{byte(r), byte(r >> 8), byte(r >> 16), byte(r >> 24)})
}

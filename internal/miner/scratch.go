package miner

import (
	"slices"

	"lash/internal/flist"
)

// Scratch is the reusable working set of the local miners. All candidate
// tables, posting arenas, and traversal buffers live here, so that a miner
// invoked repeatedly (one call per partition inside a Reduce worker) performs
// almost no heap allocation after the first few partitions have grown the
// buffers.
//
// The key structural idea (§4.2 of the paper): inside a w-generalized
// partition every rank is bounded by the pivot's rank, so candidate items fit
// a dense rank-indexed table instead of a hash map. Rows carry an epoch
// counter and are invalidated lazily — starting a new expansion node is one
// counter increment, never a table clear. Posting lists are flattened
// (tids/offs/ends arrays) into per-row arenas whose capacity persists across
// expansion nodes, partitions, and miner kinds.
//
// Contract:
//
//   - A Scratch may be reused freely across Mine calls, partitions, miner
//     kinds, and configurations; every Mine call leaves it ready for the
//     next. This includes Mine calls abandoned mid-run by a panic out of
//     the emit callback (how the cancellation and streaming-abort paths of
//     core.mineJob stop an in-flight miner): all per-call state is
//     re-established at the start of each call and expansion node via
//     epoch bumps, length resets, and cleared-on-reuse buffers, so no
//     structure depends on the previous call having completed.
//   - A Scratch must not be used by two Mine calls concurrently. Give each
//     worker goroutine its own (e.g. via sync.Pool, as core.mineJob does).
//   - Passing a nil *Scratch to Mine is allowed: the miner allocates a
//     private one for that call.
type Scratch struct {
	// RankArena and Seqs are reusable partition-materialization buffers for
	// callers: decode every sequence of a partition back-to-back into
	// RankArena (subslices stay valid even if a later decode grows it) and
	// build the WSeq headers in Seqs. The miners never touch these fields;
	// core.mineJob uses them for zero-alloc partition decode.
	RankArena []flist.Rank
	Seqs      []WSeq

	pattern []flist.Rank
	anc     []flist.Rank
	anc2    []flist.Rank
	qbuf    []int32

	// Per-pattern-length stacks of candidate tables. Tables at different
	// lengths are live simultaneously (a node iterates its table while its
	// children fill deeper ones); tables at the same length are reused
	// across sibling nodes via the epoch counter.
	right []*postTable // PSM right expansions + DFS projections
	left  []*occTable  // PSM left expansions
	ends  []*endsBuf   // PSM endsOf projections

	// PSM anchor scan (flattened aEntry list).
	anchorTids []int32
	anchorOffs []int32
	anchorOccs []occPair

	// PSM right-expansion indexes: one per anchor depth, bitset levels drawn
	// from a shared free list.
	ridx     []rIndex
	bitsFree [][]uint64

	bfs bfsScratch
}

// NewScratch returns an empty Scratch; all buffers grow on demand.
func NewScratch() *Scratch { return &Scratch{} }

func (sc *Scratch) rightAt(level int) *postTable {
	for len(sc.right) <= level {
		sc.right = append(sc.right, &postTable{})
	}
	return sc.right[level]
}

func (sc *Scratch) leftAt(level int) *occTable {
	for len(sc.left) <= level {
		sc.left = append(sc.left, &occTable{})
	}
	return sc.left[level]
}

func (sc *Scratch) endsAt(level int) *endsBuf {
	for len(sc.ends) <= level {
		sc.ends = append(sc.ends, &endsBuf{})
	}
	return sc.ends[level]
}

// maxRankPlus1 returns 1 + the largest real rank occurring in the partition
// (0 when it holds no items): the size of the dense candidate tables.
// Ancestors have strictly smaller ranks than their descendants, so every
// candidate a miner can generate is below this bound.
func maxRankPlus1(p *Partition) int {
	maxR := -1
	for _, ws := range p.Seqs {
		for _, r := range ws.Items {
			if r != flist.NoRank && int(r) > maxR {
				maxR = int(r)
			}
		}
	}
	return maxR + 1
}

// --- flattened posting lists ------------------------------------------------

// postList is a flattened vertical posting list: entry i is sequence tids[i]
// with occurrence end positions ends[offs[i]:offs[i+1]] (offs carries the
// closing sentinel, so len(offs) == len(tids)+1).
type postList struct {
	tids []int32
	offs []int32
	ends []int32
}

// postRow is one dense-table row accumulating a candidate's posting list.
type postRow struct {
	epoch   uint64
	support int64
	tids    []int32
	offs    []int32
	ends    []int32
}

func (r *postRow) list() postList { return postList{r.tids, r.offs, r.ends} }

// postTable is a dense rank-indexed candidate table. begin bumps the epoch
// (lazily invalidating every row), add accumulates an occurrence, finish
// seals the rows and returns the touched ranks in ascending order.
type postTable struct {
	epoch   uint64
	rows    []postRow
	touched []flist.Rank
}

func (t *postTable) begin(n int) {
	if len(t.rows) < n {
		t.rows = append(t.rows, make([]postRow, n-len(t.rows))...)
	}
	t.epoch++
	t.touched = t.touched[:0]
}

// add records occurrence end q of candidate a in sequence tid (weight w).
// Scans visit sequences in ascending tid order and positions in ascending
// order, so entries and per-entry ends stay sorted by construction. With
// dedup, a repeated trailing end position is dropped (the hierarchy-aware
// single-item scans of BFS/DFS).
func (t *postTable) add(a flist.Rank, tid int32, w int64, q int32, dedup bool) {
	row := &t.rows[a]
	if row.epoch != t.epoch {
		row.epoch = t.epoch
		row.support = 0
		row.tids = row.tids[:0]
		row.offs = row.offs[:0]
		row.ends = row.ends[:0]
		t.touched = append(t.touched, a)
	}
	if n := len(row.tids); n == 0 || row.tids[n-1] != tid {
		row.tids = append(row.tids, tid)
		row.offs = append(row.offs, int32(len(row.ends)))
		row.support += w
	}
	if dedup {
		if n := len(row.ends); n > int(row.offs[len(row.offs)-1]) && row.ends[n-1] == q {
			return
		}
	}
	row.ends = append(row.ends, q)
}

func (t *postTable) finish() []flist.Rank {
	slices.Sort(t.touched)
	for _, a := range t.touched {
		row := &t.rows[a]
		row.offs = append(row.offs, int32(len(row.ends)))
	}
	return t.touched
}

// --- flattened occurrence-pair lists (PSM left expansions) ------------------

// occPair is one occurrence of a left-anchor pattern: the positions of its
// first and last matched items.
type occPair struct {
	start, end int32
}

// occList is the flattened aEntry list: entry i is sequence tids[i] with
// occurrence pairs occs[offs[i]:offs[i+1]].
type occList struct {
	tids []int32
	offs []int32
	occs []occPair
}

type occRow struct {
	epoch   uint64
	support int64
	tids    []int32
	offs    []int32
	occs    []occPair
}

func (r *occRow) list() occList { return occList{r.tids, r.offs, r.occs} }

type occTable struct {
	epoch   uint64
	rows    []occRow
	touched []flist.Rank
}

func (t *occTable) begin(n int) {
	if len(t.rows) < n {
		t.rows = append(t.rows, make([]occRow, n-len(t.rows))...)
	}
	t.epoch++
	t.touched = t.touched[:0]
}

func (t *occTable) add(a flist.Rank, tid int32, w int64, pr occPair) {
	row := &t.rows[a]
	if row.epoch != t.epoch {
		row.epoch = t.epoch
		row.support = 0
		row.tids = row.tids[:0]
		row.offs = row.offs[:0]
		row.occs = row.occs[:0]
		t.touched = append(t.touched, a)
	}
	if n := len(row.tids); n == 0 || row.tids[n-1] != tid {
		row.tids = append(row.tids, tid)
		row.offs = append(row.offs, int32(len(row.occs)))
		row.support += w
	}
	row.occs = append(row.occs, pr)
}

// finish deduplicates each entry's occurrence pairs (the same (start,end)
// can arise from different parent occurrences), compacts the arena, seals
// the offsets, and returns the touched ranks ascending.
func (t *occTable) finish() []flist.Rank {
	slices.Sort(t.touched)
	for _, a := range t.touched {
		row := &t.rows[a]
		occs := row.occs
		w := int32(0)
		for i := range row.tids {
			lo := row.offs[i]
			hi := int32(len(occs))
			if i+1 < len(row.offs) {
				hi = row.offs[i+1]
			}
			region := occs[lo:hi]
			slices.SortFunc(region, func(a, b occPair) int {
				if a.start != b.start {
					return int(a.start - b.start)
				}
				return int(a.end - b.end)
			})
			row.offs[i] = w
			for k := range region {
				if k > 0 && region[k] == region[k-1] {
					continue
				}
				occs[w] = region[k]
				w++
			}
		}
		row.occs = occs[:w]
		row.offs = append(row.offs, w)
	}
	return t.touched
}

// endsBuf backs a postList projected from an occList (PSM's endsOf).
type endsBuf struct {
	tids []int32
	offs []int32
	ends []int32
}

// --- right-expansion index (PSM+Index) --------------------------------------

// rIndex is the right-expansion index of §5.2: levels[d-1] holds, as a
// bitset over ranks, the items that were frequent as the d-th right
// expansion of the anchor it was recorded for. Bitset levels are drawn
// lazily from the Scratch free list (mirroring the lazy map allocation this
// replaces) and recycled when the anchor depth is revisited.
type rIndex struct {
	sc     *Scratch
	words  int
	levels [][]uint64
}

// ridxAt returns the rIndex for the given anchor depth, reset for a new
// anchor node. Indexes at different depths are live simultaneously along an
// anchor chain (a child is pruned by its parent's index), so each depth owns
// its own instance.
func (sc *Scratch) ridxAt(level, lambda, words int) *rIndex {
	for len(sc.ridx) <= level {
		sc.ridx = append(sc.ridx, rIndex{})
	}
	x := &sc.ridx[level]
	x.sc = sc
	x.words = words
	full := x.levels[:cap(x.levels)]
	for i := range full {
		if full[i] != nil {
			sc.bitsFree = append(sc.bitsFree, full[i])
			full[i] = nil
		}
	}
	if cap(x.levels) < lambda {
		x.levels = make([][]uint64, lambda)
	} else {
		x.levels = full[:lambda]
	}
	return x
}

func (sc *Scratch) getBits(words int) []uint64 {
	if n := len(sc.bitsFree); n > 0 {
		b := sc.bitsFree[n-1]
		sc.bitsFree = sc.bitsFree[:n-1]
		if cap(b) >= words {
			b = b[:words]
			clear(b)
			return b
		}
	}
	return make([]uint64, words)
}

func (x *rIndex) add(depth int, a flist.Rank) {
	if x == nil {
		return
	}
	lvl := x.levels[depth-1]
	if lvl == nil {
		lvl = x.sc.getBits(x.words)
		x.levels[depth-1] = lvl
	}
	lvl[a>>6] |= 1 << (a & 63)
}

func (x *rIndex) has(depth int, a flist.Rank) bool {
	lvl := x.levels[depth-1]
	return lvl != nil && lvl[a>>6]&(1<<(a&63)) != 0
}

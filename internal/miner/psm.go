package miner

import (
	"sort"

	"lash/internal/flist"
)

// PSM is the pivot sequence miner (§5.2 of the paper). It explores only
// pivot sequences by growing patterns from the pivot item outwards, using
// the unique decomposition S = Sl·w·Sr with w ∉ Sr:
//
//   - right expansions never append the pivot (those patterns are reached
//     through a longer left part instead), and
//   - left expansions are never applied to a pattern that resulted from a
//     right expansion.
//
// With UseIndex, PSM additionally records, for every left-anchor and depth d,
// the set of items that were frequent as the d-th right expansion; after a
// further left expansion, right candidates at depth d are restricted to that
// set (sound by support monotonicity, Lemma 1) without computing their
// support — the "PSM + Index" variant of Fig. 4(c,d).
type PSM struct {
	UseIndex bool
}

// occPair is one occurrence of a left-anchor pattern: the positions of its
// first and last matched items.
type occPair struct {
	start, end int32
}

// aEntry is the per-sequence state of a left-anchor pattern.
type aEntry struct {
	tid  int32
	occs []occPair
}

// rEntry is the per-sequence state inside a right-expansion chain: only the
// distinct occurrence end positions matter there.
type rEntry struct {
	tid  int32
	ends []int32
}

// rIndex is the right-expansion index: levels[d-1] holds the items that were
// frequent as the d-th right expansion of the anchor it was recorded for.
type rIndex struct {
	levels []map[flist.Rank]bool
}

func newRIndex(lambda int) *rIndex {
	return &rIndex{levels: make([]map[flist.Rank]bool, lambda)}
}

func (x *rIndex) add(depth int, a flist.Rank) {
	if x == nil {
		return
	}
	if x.levels[depth-1] == nil {
		x.levels[depth-1] = make(map[flist.Rank]bool)
	}
	x.levels[depth-1][a] = true
}

func (x *rIndex) has(depth int, a flist.Rank) bool {
	return x.levels[depth-1][a]
}

// Mine implements Miner. PSM produces pivot sequences natively, so the
// PivotOnly flag is effectively always on.
func (m *PSM) Mine(p *Partition, cfg Config, emit Emit) Stats {
	run := &psmRun{p: p, cfg: cfg, emit: emit, useIndex: m.UseIndex, bound: p.Pivot}
	run.run()
	return run.stats
}

type psmRun struct {
	p        *Partition
	cfg      Config
	emit     Emit
	useIndex bool
	stats    Stats
	bound    flist.Rank // pivot sequences never contain larger items

	pattern []flist.Rank
	anc     []flist.Rank
	qbuf    []int32
}

func (d *psmRun) run() {
	// Occurrences of the pivot itself: positions whose item generalizes to
	// the pivot. (After w-generalization these are exactly the positions
	// equal to the pivot, but accepting descendants keeps PSM correct on
	// arbitrary partitions.)
	var anchor []aEntry
	for tid, ws := range d.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a != d.p.Pivot {
					continue
				}
				if n := len(anchor); n == 0 || anchor[n-1].tid != int32(tid) {
					anchor = append(anchor, aEntry{tid: int32(tid)})
				}
				e := &anchor[len(anchor)-1]
				e.occs = append(e.occs, occPair{int32(pos), int32(pos)})
				break
			}
		}
	}
	if len(anchor) == 0 {
		return
	}
	d.pattern = append(d.pattern[:0], d.p.Pivot)
	d.expandAnchor(anchor, nil)
}

// expandAnchor handles a left-anchor pattern (of the form Sl·w): first all
// right-expansion chains, then the left expansions, each recursing as a new
// anchor (Alg. 2 lines 16-22).
func (d *psmRun) expandAnchor(anchor []aEntry, parentIdx *rIndex) {
	var myIdx *rIndex
	if d.useIndex {
		myIdx = newRIndex(d.cfg.Lambda)
	}
	d.expandRight(d.endsOf(anchor), 1, parentIdx, myIdx)

	if len(d.pattern) == d.cfg.Lambda {
		return
	}
	cands, order := d.collectLeft(anchor)
	for _, a := range order {
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		// Prepend a to the pattern.
		d.pattern = append(d.pattern, 0)
		copy(d.pattern[1:], d.pattern)
		d.pattern[0] = a
		d.emit(d.pattern, c.support)
		d.stats.Output++
		d.expandAnchor(c.entries, myIdx)
		copy(d.pattern, d.pattern[1:])
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

// expandRight extends the current pattern to the right (never with the
// pivot), restricted by the parent anchor's right-expansion index.
func (d *psmRun) expandRight(state []rEntry, depth int, parentIdx, myIdx *rIndex) {
	if len(d.pattern) == d.cfg.Lambda || len(state) == 0 {
		return
	}
	cands, order := d.collectRight(state)
	for _, a := range order {
		if a == d.p.Pivot {
			continue // pivot never appears in Sr (unique decomposition)
		}
		if parentIdx != nil && !parentIdx.has(depth, a) {
			continue // pruned by the index: support not even computed
		}
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		myIdx.add(depth, a)
		d.pattern = append(d.pattern, a)
		d.emit(d.pattern, c.support)
		d.stats.Output++
		d.expandRight(c.entries, depth+1, parentIdx, myIdx)
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

type rCand struct {
	entries []rEntry
	support int64
}

// collectRight gathers W^right: the generalizations of items occurring within
// gap γ after any occurrence end.
func (d *psmRun) collectRight(state []rEntry) (map[flist.Rank]*rCand, []flist.Rank) {
	cands := make(map[flist.Rank]*rCand)
	gamma := int32(d.cfg.Gamma)
	for _, e := range state {
		ws := d.p.Seqs[e.tid]
		seq := ws.Items
		n := int32(len(seq))
		d.qbuf = d.qbuf[:0]
		next := int32(0)
		for _, end := range e.ends {
			lo := end + 1
			if lo < next {
				lo = next
			}
			hi := end + 1 + gamma
			if hi >= n {
				hi = n - 1
			}
			for q := lo; q <= hi; q++ {
				d.qbuf = append(d.qbuf, q)
			}
			if hi+1 > next {
				next = hi + 1
			}
		}
		for _, q := range d.qbuf {
			r := seq[q]
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a > d.bound {
					continue
				}
				c := cands[a]
				if c == nil {
					c = &rCand{}
					cands[a] = c
				}
				if n := len(c.entries); n == 0 || c.entries[n-1].tid != e.tid {
					c.entries = append(c.entries, rEntry{tid: e.tid})
					c.support += ws.Weight
				}
				ce := &c.entries[len(c.entries)-1]
				ce.ends = append(ce.ends, q)
			}
		}
	}
	return cands, sortedCandRanks(cands)
}

type aCand struct {
	entries []aEntry
	support int64
}

// collectLeft gathers W^left: the generalizations of items occurring within
// gap γ before any occurrence start; new occurrences keep the old ends so
// that subsequent right expansions of the extended anchor stay exact.
func (d *psmRun) collectLeft(anchor []aEntry) (map[flist.Rank]*aCand, []flist.Rank) {
	cands := make(map[flist.Rank]*aCand)
	gamma := int32(d.cfg.Gamma)
	for _, e := range anchor {
		ws := d.p.Seqs[e.tid]
		seq := ws.Items
		for _, oc := range e.occs {
			lo := oc.start - 1 - gamma
			if lo < 0 {
				lo = 0
			}
			for q := lo; q < oc.start; q++ {
				r := seq[q]
				if r == flist.NoRank {
					continue
				}
				d.anc = d.p.SelfAnc(d.anc[:0], r)
				for _, a := range d.anc {
					if a > d.bound {
						continue
					}
					c := cands[a]
					if c == nil {
						c = &aCand{}
						cands[a] = c
					}
					if n := len(c.entries); n == 0 || c.entries[n-1].tid != e.tid {
						c.entries = append(c.entries, aEntry{tid: e.tid})
						c.support += ws.Weight
					}
					ce := &c.entries[len(c.entries)-1]
					ce.occs = append(ce.occs, occPair{q, oc.end})
				}
			}
		}
	}
	// Deduplicate occurrence pairs (the same (start,end) can arise from
	// different parent occurrences).
	for _, c := range cands {
		for i := range c.entries {
			c.entries[i].occs = sortUniquePairs(c.entries[i].occs)
		}
	}
	return cands, sortedLeftRanks(cands)
}

// endsOf projects anchor occurrences to their distinct end positions.
func (d *psmRun) endsOf(anchor []aEntry) []rEntry {
	out := make([]rEntry, 0, len(anchor))
	for _, e := range anchor {
		ends := make([]int32, 0, len(e.occs))
		for _, oc := range e.occs {
			ends = append(ends, oc.end)
		}
		out = append(out, rEntry{tid: e.tid, ends: sortUnique(ends)})
	}
	return out
}

func sortedCandRanks(cands map[flist.Rank]*rCand) []flist.Rank {
	out := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		out = append(out, a)
	}
	sortRanks(out)
	return out
}

func sortedLeftRanks(cands map[flist.Rank]*aCand) []flist.Rank {
	out := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		out = append(out, a)
	}
	sortRanks(out)
	return out
}

func sortUniquePairs(ps []occPair) []occPair {
	if len(ps) < 2 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].start != ps[j].start {
			return ps[i].start < ps[j].start
		}
		return ps[i].end < ps[j].end
	})
	out := ps[:1]
	for _, p := range ps[1:] {
		last := out[len(out)-1]
		if p != last {
			out = append(out, p)
		}
	}
	return out
}

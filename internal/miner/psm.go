package miner

import "lash/internal/flist"

// PSM is the pivot sequence miner (§5.2 of the paper). It explores only
// pivot sequences by growing patterns from the pivot item outwards, using
// the unique decomposition S = Sl·w·Sr with w ∉ Sr:
//
//   - right expansions never append the pivot (those patterns are reached
//     through a longer left part instead), and
//   - left expansions are never applied to a pattern that resulted from a
//     right expansion.
//
// With UseIndex, PSM additionally records, for every left-anchor and depth d,
// the set of items that were frequent as the d-th right expansion; after a
// further left expansion, right candidates at depth d are restricted to that
// set (sound by support monotonicity, Lemma 1) without computing their
// support — the "PSM + Index" variant of Fig. 4(c,d).
//
// Candidates are accumulated in the dense rank-indexed tables of Scratch
// (every rank in the partition is bounded by the pivot's rank, §4.2), and
// the index is a per-depth bitset; the hot path allocates nothing once the
// scratch buffers have grown.
type PSM struct {
	UseIndex bool
}

// Mine implements Miner. PSM produces pivot sequences natively, so the
// PivotOnly flag is effectively always on.
func (m *PSM) Mine(p *Partition, cfg Config, sc *Scratch, emit Emit) Stats {
	if sc == nil {
		sc = NewScratch()
	}
	n := maxRankPlus1(p)
	run := &psmRun{
		//lashvet:ignore emitgo psmRun is call-scoped traversal state; Mine returns before the struct is released and emit never crosses a goroutine
		p: p, cfg: cfg, emit: emit, useIndex: m.UseIndex,
		bound: p.Pivot, sc: sc, n: n, words: (n + 63) / 64,
	}
	run.run()
	sc.pattern = run.pattern[:0]
	cfg.record(run.stats)
	return run.stats
}

type psmRun struct {
	p        *Partition
	cfg      Config
	emit     Emit
	useIndex bool
	stats    Stats
	bound    flist.Rank // pivot sequences never contain larger items
	sc       *Scratch
	n        int // dense table size (1 + max rank in the partition)
	words    int // bitset words per index level

	pattern []flist.Rank
}

func (d *psmRun) run() {
	// Occurrences of the pivot itself: positions whose item generalizes to
	// the pivot. (After w-generalization these are exactly the positions
	// equal to the pivot, but accepting descendants keeps PSM correct on
	// arbitrary partitions.)
	sc := d.sc
	sc.anchorTids = sc.anchorTids[:0]
	sc.anchorOffs = sc.anchorOffs[:0]
	sc.anchorOccs = sc.anchorOccs[:0]
	for tid, ws := range d.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			sc.anc = d.p.SelfAnc(sc.anc[:0], r)
			for _, a := range sc.anc {
				if a != d.p.Pivot {
					continue
				}
				if n := len(sc.anchorTids); n == 0 || sc.anchorTids[n-1] != int32(tid) {
					sc.anchorTids = append(sc.anchorTids, int32(tid))
					sc.anchorOffs = append(sc.anchorOffs, int32(len(sc.anchorOccs)))
				}
				sc.anchorOccs = append(sc.anchorOccs, occPair{int32(pos), int32(pos)})
				break
			}
		}
	}
	if len(sc.anchorTids) == 0 {
		return
	}
	sc.anchorOffs = append(sc.anchorOffs, int32(len(sc.anchorOccs)))
	d.pattern = append(sc.pattern[:0], d.p.Pivot)
	d.expandAnchor(occList{sc.anchorTids, sc.anchorOffs, sc.anchorOccs}, nil)
}

// expandAnchor handles a left-anchor pattern (of the form Sl·w): first all
// right-expansion chains, then the left expansions, each recursing as a new
// anchor (Alg. 2 lines 16-22).
func (d *psmRun) expandAnchor(anchor occList, parentIdx *rIndex) {
	var myIdx *rIndex
	if d.useIndex {
		myIdx = d.sc.ridxAt(len(d.pattern), d.cfg.Lambda, d.words)
	}
	d.expandRight(d.endsOf(anchor), 1, parentIdx, myIdx)

	if len(d.pattern) == d.cfg.Lambda {
		return
	}
	lt := d.sc.leftAt(len(d.pattern))
	order := d.collectLeft(anchor, lt)
	for _, a := range order {
		row := &lt.rows[a]
		d.stats.Explored++
		if row.support < d.cfg.Sigma {
			continue
		}
		// Prepend a to the pattern.
		d.pattern = append(d.pattern, 0)
		copy(d.pattern[1:], d.pattern)
		d.pattern[0] = a
		d.emit(d.pattern, row.support)
		d.stats.Output++
		d.expandAnchor(row.list(), myIdx)
		copy(d.pattern, d.pattern[1:])
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

// expandRight extends the current pattern to the right (never with the
// pivot), restricted by the parent anchor's right-expansion index.
func (d *psmRun) expandRight(state postList, depth int, parentIdx, myIdx *rIndex) {
	if len(d.pattern) == d.cfg.Lambda || len(state.tids) == 0 {
		return
	}
	rt := d.sc.rightAt(len(d.pattern))
	order := d.collectRight(state, rt)
	for _, a := range order {
		if a == d.p.Pivot {
			continue // pivot never appears in Sr (unique decomposition)
		}
		if parentIdx != nil && !parentIdx.has(depth, a) {
			continue // pruned by the index: support not even computed
		}
		row := &rt.rows[a]
		d.stats.Explored++
		if row.support < d.cfg.Sigma {
			continue
		}
		myIdx.add(depth, a)
		d.pattern = append(d.pattern, a)
		d.emit(d.pattern, row.support)
		d.stats.Output++
		d.expandRight(row.list(), depth+1, parentIdx, myIdx)
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

// collectRight gathers W^right: the generalizations of items occurring within
// gap γ after any occurrence end, accumulated into the dense table rt.
func (d *psmRun) collectRight(state postList, rt *postTable) []flist.Rank {
	rt.begin(d.n)
	gamma := int32(d.cfg.Gamma)
	for i := range state.tids {
		tid := state.tids[i]
		ws := d.p.Seqs[tid]
		seq := ws.Items
		n := int32(len(seq))
		qbuf := d.sc.qbuf[:0]
		next := int32(0)
		for _, end := range state.ends[state.offs[i]:state.offs[i+1]] {
			lo := end + 1
			if lo < next {
				lo = next
			}
			hi := end + 1 + gamma
			if hi >= n {
				hi = n - 1
			}
			for q := lo; q <= hi; q++ {
				qbuf = append(qbuf, q)
			}
			if hi+1 > next {
				next = hi + 1
			}
		}
		d.sc.qbuf = qbuf
		for _, q := range qbuf {
			r := seq[q]
			if r == flist.NoRank {
				continue
			}
			d.sc.anc = d.p.SelfAnc(d.sc.anc[:0], r)
			for _, a := range d.sc.anc {
				if a > d.bound {
					continue
				}
				rt.add(a, tid, ws.Weight, q, false)
			}
		}
	}
	return rt.finish()
}

// collectLeft gathers W^left: the generalizations of items occurring within
// gap γ before any occurrence start; new occurrences keep the old ends so
// that subsequent right expansions of the extended anchor stay exact.
func (d *psmRun) collectLeft(anchor occList, lt *occTable) []flist.Rank {
	lt.begin(d.n)
	gamma := int32(d.cfg.Gamma)
	for i := range anchor.tids {
		tid := anchor.tids[i]
		ws := d.p.Seqs[tid]
		seq := ws.Items
		for _, oc := range anchor.occs[anchor.offs[i]:anchor.offs[i+1]] {
			lo := oc.start - 1 - gamma
			if lo < 0 {
				lo = 0
			}
			for q := lo; q < oc.start; q++ {
				r := seq[q]
				if r == flist.NoRank {
					continue
				}
				d.sc.anc = d.p.SelfAnc(d.sc.anc[:0], r)
				for _, a := range d.sc.anc {
					if a > d.bound {
						continue
					}
					lt.add(a, tid, ws.Weight, occPair{q, oc.end})
				}
			}
		}
	}
	// finish deduplicates occurrence pairs (the same (start,end) can arise
	// from different parent occurrences).
	return lt.finish()
}

// endsOf projects anchor occurrences to their distinct end positions.
func (d *psmRun) endsOf(anchor occList) postList {
	eb := d.sc.endsAt(len(d.pattern))
	eb.tids = eb.tids[:0]
	eb.offs = eb.offs[:0]
	eb.ends = eb.ends[:0]
	for i := range anchor.tids {
		start := len(eb.ends)
		for _, oc := range anchor.occs[anchor.offs[i]:anchor.offs[i+1]] {
			eb.ends = append(eb.ends, oc.end)
		}
		eb.ends = sortUniqueTail(eb.ends, start)
		eb.tids = append(eb.tids, anchor.tids[i])
		eb.offs = append(eb.offs, int32(start))
	}
	eb.offs = append(eb.offs, int32(len(eb.ends)))
	return postList{eb.tids, eb.offs, eb.ends}
}

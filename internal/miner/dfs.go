package miner

import "lash/internal/flist"

// DFS is a hierarchy-aware adaptation of PrefixSpan (§5.1 of the paper).
// Pattern growth starts from every locally frequent item and repeatedly
// right-expands: for the current pattern S, the projected database holds the
// end positions of S's occurrences per sequence; the right items of a
// sequence are the generalizations of the items within gap γ after any end.
//
// Projected databases are accumulated in the dense rank-indexed tables of
// Scratch, one table per pattern length, reused across sibling expansions
// via the epoch counter.
type DFS struct{}

// Mine implements Miner.
func (DFS) Mine(p *Partition, cfg Config, sc *Scratch, emit Emit) Stats {
	if sc == nil {
		sc = NewScratch()
	}
	//lashvet:ignore emitgo dfsRun is call-scoped traversal state; Mine returns before the struct is released and emit never crosses a goroutine
	d := &dfsRun{p: p, cfg: cfg, emit: emit, bound: cfg.bound(p), sc: sc, n: maxRankPlus1(p)}
	d.run()
	sc.pattern = d.pattern[:0]
	cfg.record(d.stats)
	return d.stats
}

type dfsRun struct {
	p     *Partition
	cfg   Config
	emit  Emit
	stats Stats
	bound flist.Rank
	sc    *Scratch
	n     int // dense table size (1 + max rank in the partition)

	pattern []flist.Rank
}

func (d *dfsRun) run() {
	// Initial projections: one per locally frequent item; the "ends" of a
	// single-item pattern are all positions where the item or one of its
	// descendants occurs.
	rt := d.sc.rightAt(0)
	rt.begin(d.n)
	for tid, ws := range d.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			d.sc.anc = d.p.SelfAnc(d.sc.anc[:0], r)
			for _, a := range d.sc.anc {
				if a > d.bound {
					continue
				}
				rt.add(a, int32(tid), ws.Weight, int32(pos), true)
			}
		}
	}
	d.pattern = d.sc.pattern[:0]
	for _, a := range rt.finish() {
		row := &rt.rows[a]
		d.stats.Explored++ // the frequency of each single item is computed
		if row.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern[:0], a)
		d.expand(row.list(), a == d.p.Pivot)
	}
}

// expand grows the current pattern (already frequent) to the right.
func (d *dfsRun) expand(proj postList, hasPivot bool) {
	if len(d.pattern) == d.cfg.Lambda {
		return
	}
	gamma := int32(d.cfg.Gamma)
	rt := d.sc.rightAt(len(d.pattern))
	rt.begin(d.n)
	for i := range proj.tids {
		tid := proj.tids[i]
		ws := d.p.Seqs[tid]
		seq := ws.Items
		// Merge the per-end windows into a sorted, distinct position list.
		qbuf := d.sc.qbuf[:0]
		n := int32(len(seq))
		next := int32(0) // next unvisited position, keeps qbuf sorted+unique
		for _, end := range proj.ends[proj.offs[i]:proj.offs[i+1]] {
			lo := end + 1
			if lo < next {
				lo = next
			}
			hi := end + 1 + gamma
			if hi >= n {
				hi = n - 1
			}
			for q := lo; q <= hi; q++ {
				qbuf = append(qbuf, q)
			}
			if hi+1 > next {
				next = hi + 1
			}
		}
		d.sc.qbuf = qbuf
		for _, q := range qbuf {
			r := seq[q]
			if r == flist.NoRank {
				continue
			}
			d.sc.anc = d.p.SelfAnc(d.sc.anc[:0], r)
			for _, a := range d.sc.anc {
				if a > d.bound {
					continue
				}
				rt.add(a, tid, ws.Weight, q, false) // q ascending per tid → sorted+unique
			}
		}
	}
	for _, a := range rt.finish() {
		row := &rt.rows[a]
		d.stats.Explored++
		if row.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern, a)
		hp := hasPivot || a == d.p.Pivot
		if len(d.pattern) >= 2 && (!d.cfg.PivotOnly || hp) {
			d.emit(d.pattern, row.support)
			d.stats.Output++
		}
		d.expand(row.list(), hp)
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

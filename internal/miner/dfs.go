package miner

import "lash/internal/flist"

// DFS is a hierarchy-aware adaptation of PrefixSpan (§5.1 of the paper).
// Pattern growth starts from every locally frequent item and repeatedly
// right-expands: for the current pattern S, the projected database holds the
// end positions of S's occurrences per sequence; the right items of a
// sequence are the generalizations of the items within gap γ after any end.
type DFS struct{}

// dproj is one projected-database entry: a sequence id and the sorted,
// distinct end positions of the current pattern's occurrences in it.
type dproj struct {
	tid  int32
	ends []int32
}

// dcand accumulates a right-expansion candidate during a scan.
type dcand struct {
	proj    []dproj
	support int64
}

// Mine implements Miner.
func (DFS) Mine(p *Partition, cfg Config, emit Emit) Stats {
	d := &dfsRun{p: p, cfg: cfg, emit: emit, bound: cfg.bound(p)}
	d.run()
	return d.stats
}

type dfsRun struct {
	p     *Partition
	cfg   Config
	emit  Emit
	stats Stats
	bound flist.Rank

	pattern []flist.Rank
	anc     []flist.Rank
	qbuf    []int32
}

func (d *dfsRun) run() {
	// Initial projections: one per locally frequent item; the "ends" of a
	// single-item pattern are all positions where the item or one of its
	// descendants occurs.
	cands := make(map[flist.Rank]*dcand)
	for tid, ws := range d.p.Seqs {
		for pos, r := range ws.Items {
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a > d.bound {
					continue
				}
				c := cands[a]
				if c == nil {
					c = &dcand{}
					cands[a] = c
				}
				if n := len(c.proj); n == 0 || c.proj[n-1].tid != int32(tid) {
					c.proj = append(c.proj, dproj{tid: int32(tid)})
					c.support += ws.Weight
				}
				e := &c.proj[len(c.proj)-1]
				if n := len(e.ends); n == 0 || e.ends[n-1] != int32(pos) {
					e.ends = append(e.ends, int32(pos))
				}
			}
		}
	}
	items := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		items = append(items, a)
	}
	sortRanks(items)
	for _, a := range items {
		c := cands[a]
		d.stats.Explored++ // the frequency of each single item is computed
		if c.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern[:0], a)
		d.expand(c.proj, a == d.p.Pivot)
	}
	return
}

// expand grows the current pattern (already frequent) to the right.
func (d *dfsRun) expand(proj []dproj, hasPivot bool) {
	if len(d.pattern) == d.cfg.Lambda {
		return
	}
	gamma := int32(d.cfg.Gamma)
	cands := make(map[flist.Rank]*dcand)
	for _, e := range proj {
		seq := d.p.Seqs[e.tid].Items
		// Merge the per-end windows into a sorted, distinct position list.
		d.qbuf = d.qbuf[:0]
		n := int32(len(seq))
		next := int32(0) // next unvisited position, keeps qbuf sorted+unique
		for _, end := range e.ends {
			lo := end + 1
			if lo < next {
				lo = next
			}
			hi := end + 1 + gamma
			if hi >= n {
				hi = n - 1
			}
			for q := lo; q <= hi; q++ {
				d.qbuf = append(d.qbuf, q)
			}
			if hi+1 > next {
				next = hi + 1
			}
		}
		w := d.p.Seqs[e.tid].Weight
		for _, q := range d.qbuf {
			r := seq[q]
			if r == flist.NoRank {
				continue
			}
			d.anc = d.p.SelfAnc(d.anc[:0], r)
			for _, a := range d.anc {
				if a > d.bound {
					continue
				}
				c := cands[a]
				if c == nil {
					c = &dcand{}
					cands[a] = c
				}
				if n := len(c.proj); n == 0 || c.proj[n-1].tid != e.tid {
					c.proj = append(c.proj, dproj{tid: e.tid})
					c.support += w
				}
				pe := &c.proj[len(c.proj)-1]
				pe.ends = append(pe.ends, q) // q ascending per tid → sorted+unique
			}
		}
	}
	items := make([]flist.Rank, 0, len(cands))
	for a := range cands {
		items = append(items, a)
	}
	sortRanks(items)
	for _, a := range items {
		c := cands[a]
		d.stats.Explored++
		if c.support < d.cfg.Sigma {
			continue
		}
		d.pattern = append(d.pattern, a)
		hp := hasPivot || a == d.p.Pivot
		if len(d.pattern) >= 2 && (!d.cfg.PivotOnly || hp) {
			d.emit(d.pattern, c.support)
			d.stats.Output++
		}
		d.expand(c.proj, hp)
		d.pattern = d.pattern[:len(d.pattern)-1]
	}
}

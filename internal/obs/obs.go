// Package obs is the repro's dependency-free observability substrate:
// atomic metric primitives behind a Prometheus-compatible Registry, plus
// lightweight span tracing (trace.go) and the pipeline-wide handle bundles
// the mining phases record into (pipeline.go).
//
// # The hot-path handle contract
//
// Metrics are registered once, up front, and recording happens through the
// returned handles (*Counter, *Gauge, *Histogram): a record is one or two
// atomic operations — no map lookup, no lock, and no allocation. Code on a
// hot path must never call a Registry method per record; it holds the
// handle (pre-registered by the component that owns the registry) and the
// registry is only consulted again at scrape time. All handle methods are
// nil-receiver safe, so instrumented code needs no "is observability on?"
// branches: a nil handle records into the void at the cost of one branch.
//
// Handles also work standalone — a zero &Counter{} counts without any
// registry — which lets per-run counters (see RunCounters) share the
// implementation without polluting the process-wide scrape.
//
// # Exposition
//
// Registry.WritePrometheus renders the classic Prometheus text exposition
// format (version 0.0.4): one HELP and TYPE line per family, families
// sorted by name, children sorted by label signature, histograms expanded
// into cumulative _bucket/_sum/_count series. Registration panics on
// malformed names, label sets, or a re-registration that changes a
// family's type or help text — these are programmer errors, and
// cmd/metriclint re-checks the rendered output in CI.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-receiver safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be ≥ 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are nil-receiver safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed, ascending buckets (upper
// bounds; a +Inf bucket is implicit) and tracks their sum. Observations
// are lock-free: one atomic add on the bucket, a CAS loop on the float sum,
// one add on the count. Construct with NewHistogram or Registry.Histogram;
// all methods are nil-receiver safe.
type Histogram struct {
	bounds  []float64      // ascending upper bounds, +Inf excluded
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

// NewHistogram returns a standalone histogram over the given ascending
// upper bounds (the +Inf bucket is added implicitly).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// DurationBuckets are the default upper bounds (seconds) for phase and job
// timing histograms: 500µs to 2 minutes.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// ByteBuckets are the default upper bounds (bytes) for size histograms:
// 1 KiB to 1 GiB.
var ByteBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series of a family. Exactly one of the handle
// fields is set, matching the family's type.
type child struct {
	labels  string // rendered `{k="v",...}` block, "" for the unlabeled series
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one metric family: a name, help text, a type, and its labeled
// children.
type family struct {
	name     string
	help     string
	typ      metricType
	children []*child
	index    map[string]*child // label signature → child
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: re-registering the same
// (name, label set) returns the existing handle; changing a family's type
// or help text panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	labelRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// labelSignature renders a label pair list ("k1", "v1", "k2", "v2", ...)
// into the canonical `{k1="v1",k2="v2"}` block, sorted by label name.
func labelSignature(name string, labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %q (want key, value pairs)", name, labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !labelRe.MatchString(labels[i]) {
			panic(fmt.Sprintf("obs: metric %s: bad label name %q", name, labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register resolves (or creates) the family and child for a registration.
// The child's handle is allocated under the registry lock, so concurrent
// registrations of the same series (e.g. lazily labeled request counters)
// race-freely receive the same handle.
func (r *Registry) register(name, help string, typ metricType, bounds []float64, labels []string) *child {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: bad metric name %q", name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %s registered without help text", name))
	}
	if typ == typeCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %s must end in _total", name))
	}
	if typ != typeCounter && strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: %s %s must not end in _total", typ, name))
	}
	sig := labelSignature(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, index: make(map[string]*child)}
		r.families[name] = fam
	} else {
		if fam.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, fam.typ))
		}
		if fam.help != help {
			panic(fmt.Sprintf("obs: metric %s re-registered with different help text", name))
		}
	}
	if c, ok := fam.index[sig]; ok {
		return c
	}
	c := &child{labels: sig}
	switch typ {
	case typeCounter:
		c.counter = &Counter{}
	case typeGauge:
		c.gauge = &Gauge{}
	case typeHistogram:
		c.hist = NewHistogram(bounds)
	}
	fam.index[sig] = c
	fam.children = append(fam.children, c)
	return c
}

// Counter registers (or finds) a counter series and returns its handle.
// labels are key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.register(name, help, typeCounter, nil, labels).counter
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.register(name, help, typeGauge, nil, labels).gauge
}

// Histogram registers (or finds) a histogram series over the given
// ascending bucket upper bounds and returns its handle. Re-registration
// ignores bounds and returns the existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.register(name, help, typeHistogram, bounds, labels).hist
}

// OnScrape registers a hook run at the start of every WritePrometheus call
// — the place to refresh pull-style gauges (Go runtime stats, uptime)
// exactly once per scrape.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format (0.0.4):
// families sorted by name, children by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		children := append([]*child(nil), fam.children...)
		sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
		for _, c := range children {
			switch fam.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, c.labels, c.counter.Value())
			case typeGauge:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, c.labels, c.gauge.Value())
			case typeHistogram:
				writeHistogram(&b, fam.name, c)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram child: cumulative buckets with the
// le label merged into the child's label block, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, c *child) {
	h := c.hist
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(c.labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, c.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, c.labels, h.Count())
}

// mergeLabel appends one more label pair to a rendered label block.
func mergeLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// RegisterGoCollector registers the Go runtime gauges (goroutines, heap,
// GC) on r, refreshed once per scrape via an OnScrape hook. GC pause time
// and cycle counts are exposed as counters fed by deltas between scrapes.
func RegisterGoCollector(r *Registry) {
	goroutines := r.Gauge("go_goroutines", "Number of goroutines that currently exist.")
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.Gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	heapObjects := r.Gauge("go_heap_objects", "Number of allocated heap objects.")
	gcCycles := r.Counter("go_gc_cycles_total", "Completed GC cycles.")
	gcPause := r.Counter("go_gc_pause_nanoseconds_total", "Cumulative GC stop-the-world pause time in nanoseconds.")
	var lastCycles, lastPause uint64
	var mu sync.Mutex
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		heapObjects.Set(int64(ms.HeapObjects))
		mu.Lock()
		gcCycles.Add(int64(uint64(ms.NumGC) - lastCycles))
		gcPause.Add(int64(ms.PauseTotalNs - lastPause))
		lastCycles, lastPause = uint64(ms.NumGC), ms.PauseTotalNs
		mu.Unlock()
	})
}

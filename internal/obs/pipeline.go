package obs

import (
	"sync/atomic"
)

// RunCounters are the per-run live counters of one mining run — the single
// source of truth behind progress snapshots (lash.ProgressEvent) and the
// run's final shuffle/spill statistics. The MapReduce substrate increments
// them as tasks retire and spill runs are written; everything user-visible
// is a read of these atomics.
type RunCounters struct {
	MapTasksDone    atomic.Int64
	ReduceTasksDone atomic.Int64
	ShuffleRecords  atomic.Int64
	ShuffleBytes    atomic.Int64
	SpillFlushes    atomic.Int64
	SpillRuns       atomic.Int64
	SpillBytes      atomic.Int64
	SpillRecords    atomic.Int64

	// Fault tolerance: task re-executions after transient failures,
	// synthetic faults injected (chaos runs), and spill cleanup failures
	// (leaked temp dirs/files — see spillState.cleanup).
	TaskRetries        atomic.Int64
	FaultsInjected     atomic.Int64
	SpillCleanupErrors atomic.Int64
}

// JobPhases bundles one job family's per-phase duration histograms. The
// nil receiver observes nothing, so callers need no nil checks.
type JobPhases struct {
	Map     *Histogram
	Shuffle *Histogram
	Reduce  *Histogram
}

// Observe records one job's phase wall times, in seconds.
func (p *JobPhases) Observe(mapS, shuffleS, reduceS float64) {
	if p == nil {
		return
	}
	p.Map.Observe(mapS)
	p.Shuffle.Observe(shuffleS)
	p.Reduce.Observe(reduceS)
}

// MinerCounters are the local miners' work counters, flushed once per
// partition mined (never per expansion — the mining hot loop stays
// alloc- and atomic-free). The nil receiver records nothing.
type MinerCounters struct {
	Explored *Counter
	Output   *Counter
}

// Record adds one partition's exploration counters.
func (c *MinerCounters) Record(explored, output int64) {
	if c == nil {
		return
	}
	c.Explored.Add(explored)
	c.Output.Add(output)
}

// PipelineMetrics are the process-wide, pre-registered handles the mining
// pipeline records into (the hot-path handle contract: registration at
// construction, atomics at record time). One PipelineMetrics serves every
// run in the process; per-run numbers live in RunCounters.
type PipelineMetrics struct {
	// Per-phase wall-time histograms, one fixed label set per job family.
	FList     JobPhases
	Mine      JobPhases
	Naive     JobPhases
	SemiNaive JobPhases
	Other     JobPhases

	// Shuffle volume (post-aggregation, what actually ships).
	ShuffleRecords *Counter
	ShuffleBytes   *Counter

	// Spill activity of budgeted shuffles: table flushes, sorted runs
	// written, physical bytes and records spilled, and the duration of each
	// spilled partition's k-way merge + reduce.
	SpillFlushes *Counter
	SpillRuns    *Counter
	SpillBytes   *Counter
	SpillRecords *Counter
	MergeSeconds *Histogram

	// Fault tolerance: retried tasks, injected faults, and spill cleanup
	// failures (each leaked temp dir/file is one increment).
	TaskRetries        *Counter
	FaultsInjected     *Counter
	SpillCleanupErrors *Counter

	// Local mining: partitions mined, per-partition mining duration, and
	// the miners' work counters.
	PartitionsMined      *Counter
	PartitionMineSeconds *Histogram
	Miner                MinerCounters

	// Preprocessing: corpus load/decode and f-list rank-space build times.
	CorpusLoadSeconds *Histogram
	FListBuildSeconds *Histogram
}

// NewPipelineMetrics registers the pipeline's metric families on r and
// returns their handles.
func NewPipelineMetrics(r *Registry) *PipelineMetrics {
	phases := func(job string) JobPhases {
		h := func(phase string) *Histogram {
			return r.Histogram("lash_phase_duration_seconds",
				"Wall time of one MapReduce phase, per job family. On the streaming aggregated path phases overlap; times are cumulative watermarks that sum to job wall time.",
				DurationBuckets, "job", job, "phase", phase)
		}
		return JobPhases{Map: h("map"), Shuffle: h("shuffle"), Reduce: h("reduce")}
	}
	return &PipelineMetrics{
		FList:     phases("flist"),
		Mine:      phases("partition_mine"),
		Naive:     phases("naive"),
		SemiNaive: phases("semi_naive"),
		Other:     phases("other"),

		ShuffleRecords: r.Counter("lash_shuffle_records_total", "Aggregated records shuffled between map and reduce (after combining)."),
		ShuffleBytes:   r.Counter("lash_shuffle_bytes_total", "Encoded bytes shuffled between map and reduce (MAP_OUTPUT_BYTES)."),

		SpillFlushes: r.Counter("lash_spill_flushes_total", "Times a map task's aggregation tables were flushed to disk because the memory budget was exceeded (final end-of-task flushes included)."),
		SpillRuns:    r.Counter("lash_spill_runs_total", "Sorted runs written to spill files by budgeted shuffles."),
		SpillBytes:   r.Counter("lash_spill_bytes_total", "Physical bytes written to spill files by budgeted shuffles."),
		SpillRecords: r.Counter("lash_spill_records_total", "Aggregated entries written to spill runs (an entry spilled in several runs counts once per run)."),
		MergeSeconds: r.Histogram("lash_spill_merge_seconds", "Duration of one spilled partition's k-way merge and reduce.", DurationBuckets),

		TaskRetries:        r.Counter("lash_task_retries_total", "Map/reduce task re-executions after transient failures (Config.Retry)."),
		FaultsInjected:     r.Counter("lash_faults_injected_total", "Synthetic faults injected through the fault-injection registry (chaos runs)."),
		SpillCleanupErrors: r.Counter("lash_spill_cleanup_errors_total", "Spill cleanup failures; each increment is a potentially leaked temp file or directory."),

		PartitionsMined:      r.Counter("lash_partitions_mined_total", "Partitions handed to a local miner."),
		PartitionMineSeconds: r.Histogram("lash_partition_mine_seconds", "Duration of one partition's decode and local mining.", DurationBuckets),
		Miner: MinerCounters{
			Explored: r.Counter("lash_miner_explored_total", "Candidate sequences whose support the local miners computed."),
			Output:   r.Counter("lash_miner_output_total", "Frequent patterns emitted by the local miners."),
		},

		CorpusLoadSeconds: r.Histogram("lash_corpus_load_seconds", "Duration of one corpus load/decode into an immutable database.", DurationBuckets),
		FListBuildSeconds: r.Histogram("lash_flist_build_seconds", "Duration of one f-list rank-space build from item frequencies.", DurationBuckets),
	}
}

// Phases selects the job family's phase histograms by MapReduce job name.
// Unknown names land in the "other" family; the nil receiver returns nil
// (which observes nothing).
func (m *PipelineMetrics) Phases(job string) *JobPhases {
	if m == nil {
		return nil
	}
	switch job {
	case "flist":
		return &m.FList
	case "partition+mine":
		return &m.Mine
	case "naive":
		return &m.Naive
	case "semi-naive":
		return &m.SemiNaive
	}
	return &m.Other
}

// Run is the observability carrier threaded through one mining run:
// an optional tracer (with the run's root span id) and optional
// process-wide metrics. A nil *Run disables both; a non-nil Run with nil
// fields enables either independently.
type Run struct {
	Tracer  *Tracer
	Metrics *PipelineMetrics
	// Root is the parent for the run's job spans (0 = top level).
	Root SpanID

	jobSpan atomic.Uint64
}

// SetJobSpan publishes the span id of the currently executing MapReduce
// job, so deeper layers (per-partition mining) can parent their spans to
// it. Jobs within one run execute sequentially.
func (r *Run) SetJobSpan(id SpanID) {
	if r != nil {
		r.jobSpan.Store(uint64(id))
	}
}

// JobSpan returns the current job's span id (0 when none).
func (r *Run) JobSpan() SpanID {
	if r == nil {
		return 0
	}
	return SpanID(r.jobSpan.Load())
}

// PipelineMetricsOf returns the run's metrics handle bundle (nil-safe).
func (r *Run) PipelineMetricsOf() *PipelineMetrics {
	if r == nil {
		return nil
	}
	return r.Metrics
}

// TracerOf returns the run's tracer (nil-safe).
func (r *Run) TracerOf() *Tracer {
	if r == nil {
		return nil
	}
	return r.Tracer
}

package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.NextID() != 0 {
		t.Fatal("nil NextID")
	}
	sp := tr.Start("x", 0)
	sp.End() // must not panic
	if tr.Record(SpanRecord{Name: "y"}) != 0 {
		t.Fatal("nil Record")
	}
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil accessors")
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(SpanRecord{Name: "s", Start: base.Add(time.Duration(i) * time.Millisecond)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// The retained spans are the 4 most recent ones.
	if got := spans[0].Start; got != base.Add(6*time.Millisecond) {
		t.Fatalf("oldest retained span at +%v, want +6ms", got.Sub(base))
	}
}

func TestBuildTree(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	root := tr.Record(SpanRecord{Name: "run", Start: base, Duration: 100 * time.Millisecond})
	job := tr.Record(SpanRecord{Name: "job", Job: "flist", Parent: root, Start: base.Add(time.Millisecond), Duration: 40 * time.Millisecond})
	tr.Record(SpanRecord{Name: "phase", Phase: "map", Parent: job, Start: base.Add(2 * time.Millisecond), Duration: 10 * time.Millisecond, Partition: -1})
	tr.Record(SpanRecord{Name: "orphan", Parent: 9999, Start: base.Add(3 * time.Millisecond), Duration: time.Millisecond})

	doc := BuildTree(tr.Spans(), tr.Dropped())
	if doc.Spans != 4 || doc.Dropped != 0 {
		t.Fatalf("counts: %+v", doc)
	}
	if len(doc.Roots) != 2 {
		t.Fatalf("roots = %d, want 2 (run + orphan)", len(doc.Roots))
	}
	run := doc.Roots[0]
	if run.Name != "run" || len(run.Children) != 1 || run.Children[0].Name != "job" {
		t.Fatalf("tree shape wrong: %+v", run)
	}
	if run.Children[0].Children[0].Phase != "map" {
		t.Fatal("phase label lost")
	}
	if doc.WallMS < 100 || doc.WallMS > 101 {
		t.Fatalf("wall = %v, want ~100ms", doc.WallMS)
	}
}

func TestWriteTraceJSON(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now()
	tr.Record(SpanRecord{Name: "run", Start: base, Duration: 5 * time.Millisecond, Partition: -1})
	var b strings.Builder
	if err := WriteTraceJSON(&b, tr.Spans(), tr.Dropped()); err != nil {
		t.Fatal(err)
	}
	var doc TraceDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v\n%s", err, b.String())
	}
	if doc.Spans != 1 || len(doc.Roots) != 1 || doc.Roots[0].Name != "run" {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestSpanStartEnd(t *testing.T) {
	tr := NewTracer(8)
	parent := tr.NextID()
	sp := tr.Start("work", parent)
	sp.Job = "partition+mine"
	sp.Partition = 7
	time.Sleep(2 * time.Millisecond)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	got := spans[0]
	if got.Parent != parent || got.Job != "partition+mine" || got.Partition != 7 {
		t.Fatalf("labels lost: %+v", got)
	}
	if got.Duration < 2*time.Millisecond {
		t.Fatalf("duration = %v", got.Duration)
	}
}

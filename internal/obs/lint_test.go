package obs

import (
	"strings"
	"testing"
)

func lintProblems(t *testing.T, text string) []Problem {
	t.Helper()
	problems, err := LintPrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

func wantProblem(t *testing.T, text, substr string) {
	t.Helper()
	problems := lintProblems(t, text)
	for _, p := range problems {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Fatalf("no problem containing %q in %v", substr, problems)
}

func TestLintCleanExposition(t *testing.T) {
	clean := `# HELP app_jobs_total Jobs processed.
# TYPE app_jobs_total counter
app_jobs_total{state="done"} 4
app_jobs_total{state="failed"} 1
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 10.5
app_latency_seconds_count 3
# HELP app_queue_depth Queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 2
`
	if problems := lintProblems(t, clean); len(problems) != 0 {
		t.Fatalf("clean exposition flagged: %v", problems)
	}
}

func TestLintMissingHelp(t *testing.T) {
	wantProblem(t, "# TYPE app_x_total counter\napp_x_total 1\n", "no HELP")
}

func TestLintEmptyHelp(t *testing.T) {
	wantProblem(t, "# HELP app_x_total \n# TYPE app_x_total counter\napp_x_total 1\n", "empty help")
}

func TestLintMissingType(t *testing.T) {
	wantProblem(t, "# HELP app_x_total X.\napp_x_total 1\n", "no TYPE")
}

func TestLintCounterSuffix(t *testing.T) {
	wantProblem(t, "# HELP app_x X.\n# TYPE app_x counter\napp_x 1\n", "must end in _total")
	wantProblem(t, "# HELP app_x_total X.\n# TYPE app_x_total gauge\napp_x_total 1\n", "must not end in _total")
}

func TestLintDuplicates(t *testing.T) {
	wantProblem(t, `# HELP app_x_total X.
# TYPE app_x_total counter
# HELP app_x_total X.
app_x_total 1
`, "duplicate HELP")
	wantProblem(t, `# HELP app_x_total X.
# TYPE app_x_total counter
app_x_total{k="v"} 1
app_x_total{k="v"} 2
`, "duplicate sample")
}

func TestLintNonContiguousFamily(t *testing.T) {
	wantProblem(t, `# HELP app_a_total A.
# TYPE app_a_total counter
# HELP app_b_total B.
# TYPE app_b_total counter
app_a_total 1
app_b_total 1
app_a_total{k="v"} 1
`, "not contiguous")
}

func TestLintHistogramShape(t *testing.T) {
	wantProblem(t, `# HELP app_h H.
# TYPE app_h histogram
app_h_bucket{le="0.1"} 1
app_h_sum 1
app_h_count 1
`, "+Inf bucket")
	wantProblem(t, `# HELP app_h H.
# TYPE app_h histogram
app_h_bucket{le="0.1"} 5
app_h_bucket{le="+Inf"} 3
app_h_sum 1
app_h_count 3
`, "not cumulative")
	wantProblem(t, `# HELP app_h H.
# TYPE app_h histogram
app_h_bucket{le="1"} 1
app_h_bucket{le="0.5"} 2
app_h_bucket{le="+Inf"} 3
app_h_sum 1
app_h_count 3
`, "not ascending")
	wantProblem(t, `# HELP app_h H.
# TYPE app_h histogram
app_h_bucket 1
app_h_sum 1
app_h_count 1
`, "lacks an le label")
}

func TestLintUndeclaredSample(t *testing.T) {
	wantProblem(t, "app_x_total 1\n", "no preceding HELP/TYPE")
}

func TestLintBadValue(t *testing.T) {
	wantProblem(t, "# HELP app_x_total X.\n# TYPE app_x_total counter\napp_x_total banana\n", "unparseable value")
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("nil histogram state")
	}
	var p *JobPhases
	p.Observe(1, 2, 3)
	var mc *MinerCounters
	mc.Record(10, 20)
	var run *Run
	run.SetJobSpan(7)
	if run.JobSpan() != 0 || run.TracerOf() != nil || run.PipelineMetricsOf() != nil {
		t.Fatal("nil Run accessors")
	}
}

func TestStandaloneHandles(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	var g Gauge
	g.Set(10)
	g.Dec()
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); math.Abs(got-105) > 1e-9 {
		t.Fatalf("sum = %v, want 105", got)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("test_jobs_total", "Jobs processed.", "state", "done")
	jobs.Add(4)
	r.Counter("test_jobs_total", "Jobs processed.", "state", "failed").Inc()
	r.Gauge("test_queue_depth", "Jobs waiting.").Set(2)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP test_jobs_total Jobs processed.
# TYPE test_jobs_total counter
test_jobs_total{state="done"} 4
test_jobs_total{state="failed"} 1
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 10.55
test_latency_seconds_count 3
# HELP test_queue_depth Jobs waiting.
# TYPE test_queue_depth gauge
test_queue_depth 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if problems, err := LintPrometheus(strings.NewReader(got)); err != nil || len(problems) > 0 {
		t.Fatalf("self-lint: err=%v problems=%v", err, problems)
	}
}

func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_x_total", "X.", "k", "v")
	b := r.Counter("test_x_total", "X.", "k", "v")
	if a != b {
		t.Fatal("re-registration did not return the same handle")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad name", func() { r.Counter("Bad-Name_total", "help") })
	mustPanic("empty help", func() { r.Counter("test_y_total", "") })
	mustPanic("counter without _total", func() { r.Counter("test_y", "help") })
	mustPanic("gauge with _total", func() { r.Gauge("test_y_total", "help") })
	mustPanic("type change", func() {
		r.Gauge("test_q", "Q.")
		r.Histogram("test_q", "Q.", []float64{1})
	})
	mustPanic("help change", func() { r.Counter("test_x_total", "different help", "k", "v") })
	mustPanic("odd labels", func() { r.Counter("test_z_total", "help", "k") })
	mustPanic("bad label name", func() { r.Counter("test_z_total", "help", "Bad-Key", "v") })
	mustPanic("descending bounds", func() { NewHistogram([]float64{2, 1}) })
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("test_esc", "Escapes.", "k", "a\"b\\c\nd").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_esc{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestGoCollector(t *testing.T) {
	r := NewRegistry()
	RegisterGoCollector(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, "# TYPE "+fam) {
			t.Fatalf("missing %s in:\n%s", fam, out)
		}
	}
	if strings.Contains(out, "go_goroutines 0\n") {
		t.Fatal("go_goroutines not refreshed on scrape")
	}
	if problems, err := LintPrometheus(strings.NewReader(out)); err != nil || len(problems) > 0 {
		t.Fatalf("go collector lint: err=%v problems=%v", err, problems)
	}
}

// TestConcurrentRecordAndScrape is the -race hammer: 32 goroutines record
// into counters, gauges, and histograms while the registry is scraped
// concurrently.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hammer_total", "Hammered counter.")
	g := r.Gauge("test_hammer_gauge", "Hammered gauge.")
	h := r.Histogram("test_hammer_seconds", "Hammered histogram.", DurationBuckets)
	tr := NewTracer(128)

	const goroutines = 32
	const iters = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Observe(float64(seed*j) * 1e-6)
				sp := tr.Start("hammer", 0)
				sp.End()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			tr.Spans()
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := tr.Dropped() + len(tr.Spans()); got != goroutines*iters {
		t.Fatalf("spans retained+dropped = %d, want %d", got, goroutines*iters)
	}
}

func TestPipelineMetricsPhases(t *testing.T) {
	r := NewRegistry()
	pm := NewPipelineMetrics(r)
	pm.Phases("flist").Observe(1, 2, 3)
	pm.Phases("partition+mine").Observe(1, 2, 3)
	pm.Phases("naive").Observe(1, 2, 3)
	pm.Phases("semi-naive").Observe(1, 2, 3)
	pm.Phases("mystery").Observe(1, 2, 3)
	if pm.FList.Map.Count() != 1 || pm.Mine.Shuffle.Count() != 1 ||
		pm.Naive.Reduce.Count() != 1 || pm.SemiNaive.Map.Count() != 1 ||
		pm.Other.Map.Count() != 1 {
		t.Fatal("phase routing wrong")
	}
	var nilPM *PipelineMetrics
	if nilPM.Phases("flist") != nil {
		t.Fatal("nil PipelineMetrics should route to nil")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems, err := LintPrometheus(strings.NewReader(b.String())); err != nil || len(problems) > 0 {
		t.Fatalf("pipeline metrics lint: err=%v problems=%v", err, problems)
	}
}
